(* Benchmark harness.

   Two halves:

   1. The paper reproduction — regenerates every table and figure of the
      evaluation section (Tables 2-6, Figures 1, 2, 9-14) plus the
      ablations, printing measured values next to the paper's.  Run all
      with no arguments, or a subset with e.g.
        dune exec bench/main.exe -- table3 fig9
   2. Bechamel micro-benchmarks of the analysis algorithms (one
      Test.make group per pipeline stage), enabled with the `micro`
      argument.

   Plus `throughput [--benches a,b] [--out FILE]`: replay every
   benchmark's Profiling-scale trace per policy through both executor
   paths (boxed reference vs packed struct-of-arrays), print events/s,
   and write BENCH_replay.json; exits non-zero if the paths' outcomes
   ever differ.

   And `stream [--benches a,b] [--scale long|huge] [--out FILE]`: replay
   each benchmark's evaluation-scale trace through the bounded-memory
   streaming engine and the materialized packed path, print events/s and
   peak heap for both, and write BENCH_stream.json; exits non-zero if
   the outcomes ever differ.

   And `columnar [--benches a,b] [--scale long|huge] [--out FILE]`:
   spool each benchmark's evaluation trace to disk as a framed v2 and a
   columnar v3 container, time a full decode+replay pass from each,
   print events/s and bytes/event, and write BENCH_columnar.json; exits
   non-zero if either streamed outcome differs from the materialized
   packed replay.

   And `telemetry [--benches a,b] [--out FILE]`: replay each benchmark's
   Profiling-scale trace with the continuous flight recorder off and on,
   print the throughput cost of telemetry, and write
   BENCH_telemetry.json; exits non-zero if the geomean overhead exceeds
   the 3% budget.

   And `checkpoint [--benches a,b] [--out FILE]`: replay each
   benchmark's Long-scale trace through the segment-session path with
   checkpointing off and on (full session snapshots at segment cadence,
   wall-clock throttled as in the durable runner, measured over chains
   of back-to-back replays), print the throughput cost of crash safety,
   and write BENCH_checkpoint.json; exits non-zero if the geomean
   overhead exceeds the 3% budget.

   And `pipeline [--benches a,b] [--scale long|huge] [--out FILE]`:
   spool each benchmark's evaluation trace into a columnar v3
   container, then replay all seven harness policies from it two ways —
   seven independent decode+replay passes (the per-policy path) vs one
   decode-once fan-out over a prefetch-pipelined stream — print
   events/s for both, and write BENCH_pipeline.json; exits non-zero if
   any of the fourteen streamed outcomes differs from the materialized
   packed replay.

   And `block [--benches a,b] [--out FILE]`: replay each benchmark's
   Profiling-scale trace under baseline, the Immix-style Block policy,
   and PreFix:HDS+Hot planned twice — modulo-N recycling vs greedy
   interval coloring — print simulated cycles, recycling evictions and
   events/s, and write BENCH_block.json; exits non-zero if any replay
   breaks the footprint invariants (placement must never change the
   memory-reference stream, and interval coloring must never evict
   more than modulo does).

   Every BENCH_*.json carries a provenance header (ocaml_version,
   word_size, reps, scale) so stored artifacts remain interpretable.

   `--jobs N` (anywhere on the command line) sizes the domain pool used
   by the paper-reproduction harness and the `reps` repetition sweep;
   the default is the runtime's recommended domain count.  Reports are
   bit-identical for every N. *)

module R = Prefix_experiments.Report
module Harness = Prefix_experiments.Harness
module Pool = Prefix_parallel.Pool
module Rng = Prefix_util.Rng
module Stats = Prefix_util.Stats

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  (* A mid-size synthetic input shared by the analysis benches. *)
  let wl = Prefix_workloads.Registry.find "libc" in
  let trace = wl.generate ~scale:Profiling ~seed:7 () in
  let stats = Prefix_trace.Trace_stats.analyze trace in
  let seq = Prefix_hds.Detector.hot_sequence stats trace in
  let seq = Array.sub seq 0 (min 2048 (Array.length seq)) in
  let ohds = Prefix_hds.Detector.detect_with_stats stats trace in
  let tests =
    [ Test.make ~name:"trace-stats" (Staged.stage (fun () ->
          ignore (Prefix_trace.Trace_stats.analyze trace)));
      Test.make ~name:"lcs-dp" (Staged.stage (fun () ->
          let a = Array.sub seq 0 (min 256 (Array.length seq)) in
          ignore (Prefix_hds.Lcs.lcs a a)));
      Test.make ~name:"sequitur" (Staged.stage (fun () ->
          ignore (Prefix_hds.Sequitur.build seq)));
      Test.make ~name:"detector-lcs" (Staged.stage (fun () ->
          ignore (Prefix_hds.Detector.detect_with_stats stats trace)));
      Test.make ~name:"detector-sequitur" (Staged.stage (fun () ->
          ignore
            (Prefix_hds.Detector.detect_with_stats ~method_:Prefix_hds.Detector.Sequitur
               stats trace)));
      Test.make ~name:"reconstitute" (Staged.stage (fun () ->
          ignore (Prefix_core.Layout.reconstitute ohds)));
      Test.make ~name:"plan-pipeline" (Staged.stage (fun () ->
          ignore
            (Prefix_core.Pipeline.plan_with_stats ~variant:Prefix_core.Plan.HdsHot stats
               trace)));
      Test.make ~name:"allocator-churn" (Staged.stage (fun () ->
          let a = Prefix_heap.Allocator.create () in
          let addrs = Array.init 512 (fun i -> Prefix_heap.Allocator.malloc a (16 + (i mod 8 * 16))) in
          Array.iter (fun addr -> Prefix_heap.Allocator.free a addr) addrs));
      Test.make ~name:"cache-access" (Staged.stage (fun () ->
          let h = Prefix_cachesim.Hierarchy.create ~config:Prefix_cachesim.Hierarchy.scaled_config () in
          for i = 0 to 4095 do
            Prefix_cachesim.Hierarchy.access h (i * 48)
          done));
      (* Observability must be free when off: these measure the
         disabled-mode cost of the span and metric fast paths (a single
         bool-ref check each). *)
      Test.make ~name:"obs-span-off" (Staged.stage (fun () ->
          for _ = 1 to 1024 do
            ignore (Prefix_obs.Span.with_ "bench" (fun () -> ()))
          done));
      Test.make ~name:"obs-metric-off" (Staged.stage (
          let c = Prefix_obs.Metric.counter "bench.counter" in
          fun () ->
            for _ = 1 to 1024 do
              Prefix_obs.Metric.incr c
            done)) ]
  in
  let benchmark test =
    let quota = Time.second 0.25 in
    Benchmark.all (Benchmark.cfg ~limit:1000 ~quota ~kde:None ()) Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-20s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-20s (no estimate)\n%!" name)
        results)
    tests

(* Repetition sweep: re-measure the seed-sensitive benchmarks' best
   PreFix delta across [n] fresh workload seeds, fanned out over the
   pool.  Each repetition's generator is split off a fixed root
   sequentially *before* the fan-out, so the seeds (and therefore every
   number printed) are identical whatever --jobs is. *)
let run_reps ~jobs n =
  let benchmarks = [ "mcf"; "libc" ] in
  let root = Rng.create 0xC0FFEE in
  let rngs = List.init n (fun _ -> Rng.split root) in
  let reps =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map pool
          (fun rng ->
            let seed = Rng.int rng 1_000_000 in
            let deltas =
              List.map
                (fun b -> Prefix_experiments.Exp_stability.delta_for b seed)
                benchmarks
            in
            (seed, Stats.mean deltas))
          rngs)
  in
  Printf.printf "=== %d repetitions over %s (%d jobs) ===\n" n
    (String.concat ", " benchmarks) jobs;
  List.iteri
    (fun i (seed, d) -> Printf.printf "rep %2d  seed %6d  best-PreFix %+.2f%%\n" i seed d)
    reps;
  let ds = List.map snd reps in
  Printf.printf "mean %+.2f%%  min %+.2f%%  max %+.2f%%  stddev(n-1) %.3f\n"
    (Stats.mean ds)
    (List.fold_left min infinity ds)
    (List.fold_left max neg_infinity ds)
    (Stats.stddev_sample ds)

(* Provenance header for every BENCH_*.json artifact: enough to
   interpret a stored run later — which compiler and bitness produced
   the numbers, how many repetitions backed each figure, and at what
   workload scale. *)
let provenance_json ~reps ~scale =
  Printf.sprintf
    "  \"ocaml_version\": %S,\n  \"word_size\": %d,\n  \"reps\": %d,\n  \
     \"scale\": %S,\n"
    Sys.ocaml_version Sys.word_size reps scale

(* Replay-throughput comparison: every benchmark's Profiling-scale trace
   replayed under each policy through both executor paths — the boxed
   reference interpreter and the packed struct-of-arrays fast path.
   Beyond the events/s table this doubles as a differential test: the
   two paths must produce structurally identical metrics (same counters,
   same cycles, same recovery), and any divergence fails the run. *)
let run_throughput ~benches ~out =
  let module Trace_stats = Prefix_trace.Trace_stats in
  let module Packed = Prefix_trace.Packed in
  let module Executor = Prefix_runtime.Executor in
  let module Policy = Prefix_runtime.Policy in
  let module Pipeline = Prefix_core.Pipeline in
  let module Plan = Prefix_core.Plan in
  let costs = Executor.default_config.costs in
  let reps = 10 in
  let time_ns f =
    (* Best of [reps] after one warmup — replays are deterministic, so
       min is the least-noise estimator. *)
    ignore (f ());
    let best = ref Int64.max_int in
    for _ = 1 to reps do
      let t0 = Prefix_obs.Clock.now_ns () in
      ignore (f ());
      let dt = Int64.sub (Prefix_obs.Clock.now_ns ()) t0 in
      if dt < !best then best := dt
    done;
    Int64.to_float !best /. 1e9
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf ("{\n" ^ provenance_json ~reps ~scale:"profiling" ^ "  \"benches\": [");
  let speedups = ref [] in
  let all_equal = ref true in
  Printf.printf "=== replay throughput: boxed vs packed (Profiling scale) ===\n";
  Printf.printf "%-10s %-12s %14s %14s %8s  %s\n" "bench" "policy" "boxed ev/s"
    "packed ev/s" "speedup" "metrics";
  List.iteri
    (fun bi name ->
      let wl = Prefix_workloads.Registry.find name in
      let trace = wl.generate ~scale:Profiling ~seed:7 () in
      let packed = Packed.of_trace trace in
      let events = Packed.length packed in
      let stats = Trace_stats.analyze_packed packed in
      let hds_plan = Prefix_runtime.Hds_policy.plan_of_trace stats trace in
      let halo_plan = Prefix_halo.Halo.plan_of_trace stats trace in
      let prefix_plan = Pipeline.plan_with_stats ~variant:Plan.HdsHot stats trace in
      let policies =
        [ ("baseline", fun heap -> Policy.baseline costs heap);
          ("HDS",
           fun heap ->
             Prefix_runtime.Hds_policy.policy costs heap hds_plan Policy.no_classification);
          ("HALO",
           fun heap ->
             Prefix_runtime.Halo_policy.policy costs heap halo_plan
               Policy.no_classification);
          ("PreFix",
           fun heap ->
             Prefix_runtime.Prefix_policy.policy costs heap prefix_plan
               Policy.no_classification) ]
      in
      if bi > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf "\n    { \"bench\": %S, \"events\": %d, \"policies\": [" name
           events);
      List.iteri
        (fun pi (pname, policy) ->
          let boxed = Executor.run_boxed ~policy trace in
          let packed_o = Executor.run_packed ~policy packed in
          let equal =
            boxed.Executor.metrics = packed_o.Executor.metrics
            && boxed.Executor.recovery = packed_o.Executor.recovery
          in
          if not equal then all_equal := false;
          let t_boxed = time_ns (fun () -> Executor.run_boxed ~policy trace) in
          let t_packed = time_ns (fun () -> Executor.run_packed ~policy packed) in
          let rate t = if t > 0. then float_of_int events /. t else 0. in
          let speedup = if t_packed > 0. then t_boxed /. t_packed else 0. in
          speedups := speedup :: !speedups;
          Printf.printf "%-10s %-12s %14.0f %14.0f %7.2fx  %s\n" name pname
            (rate t_boxed) (rate t_packed) speedup
            (if equal then "identical" else "MISMATCH");
          if pi > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n      { \"policy\": %S, \"boxed_events_per_sec\": %.0f, \
                \"packed_events_per_sec\": %.0f, \"speedup\": %.3f, \
                \"metrics_equal\": %b }"
               pname (rate t_boxed) (rate t_packed) speedup equal))
        policies;
      Buffer.add_string buf " ] }")
    benches;
  let geomean =
    match !speedups with
    | [] -> 1.
    | ss ->
      exp (List.fold_left (fun a s -> a +. log (max 1e-9 s)) 0. ss
           /. float_of_int (List.length ss))
  in
  Buffer.add_string buf
    (Printf.sprintf " ],\n  \"geomean_speedup\": %.3f,\n  \"all_equal\": %b\n}\n"
       geomean !all_equal);
  Prefix_util.Fsio.atomic_write_string out (Buffer.contents buf);
  Printf.printf "geomean speedup %.2fx over %d (bench, policy) pairs; wrote %s\n"
    geomean (List.length !speedups) out;
  if not !all_equal then begin
    prerr_endline "bench: packed and boxed replay outcomes differ";
    exit 1
  end

(* Streaming-engine comparison: replay each benchmark's evaluation-scale
   trace under the baseline policy through the bounded-memory streaming
   path and through the materialized packed path, reporting events/s and
   peak heap for both.  The streamed leg runs FIRST — top-heap-words and
   VmHWM are monotonic over the process lifetime, so its peak reading is
   only meaningful before anything materializes the trace.  Differential
   too: the two outcomes must be structurally identical. *)
let run_stream_bench ~benches ~scale ~out =
  let module Stream = Prefix_trace.Stream in
  let module Executor = Prefix_runtime.Executor in
  let module Policy = Prefix_runtime.Policy in
  let costs = Executor.default_config.costs in
  let word_bytes = Sys.word_size / 8 in
  let top_heap_bytes () =
    Gc.compact ();
    (Gc.quick_stat ()).Gc.top_heap_words * word_bytes
  in
  let vm_hwm_kb () =
    (* Linux-only high-water RSS; 0 where /proc is absent. *)
    match open_in "/proc/self/status" with
    | exception Sys_error _ -> 0
    | ic ->
      Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
      let rec go () =
        match input_line ic with
        | exception End_of_file -> 0
        | line ->
          if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
            Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
          else go ()
      in
      go ()
  in
  let time_ns f =
    let t0 = Prefix_obs.Clock.now_ns () in
    let r = f () in
    (r, Int64.to_float (Int64.sub (Prefix_obs.Clock.now_ns ()) t0) /. 1e9)
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    ("{\n"
    ^ provenance_json ~reps:1 ~scale:(Prefix_workloads.Workload.scale_name scale)
    ^ "  \"benches\": [");
  let all_equal = ref true in
  Printf.printf "=== streamed vs materialized replay (%s scale, baseline policy) ===\n"
    (Prefix_workloads.Workload.scale_name scale);
  Printf.printf "%-10s %10s %14s %14s %12s %12s  %s\n" "bench" "events"
    "stream ev/s" "packed ev/s" "stream peakB" "packed peakB" "metrics";
  List.iteri
    (fun bi name ->
      let wl = Prefix_workloads.Registry.find name in
      let stream () = Prefix_workloads.Workload.generate_stream wl ~scale ~seed:8 () in
      let policy heap = Policy.baseline costs heap in
      (* Leg 1: streamed — nothing ever materializes the full trace. *)
      let streamed, t_stream = time_ns (fun () -> Executor.run_stream ~policy (stream ())) in
      let stream_peak = top_heap_bytes () in
      let stream_hwm = vm_hwm_kb () in
      (* Leg 2: materialize the identical trace, replay the fast path. *)
      let packed = Stream.to_packed (stream ()) in
      let events = Prefix_trace.Packed.length packed in
      let materialized, t_packed = time_ns (fun () -> Executor.run_packed ~policy packed) in
      let packed_peak = top_heap_bytes () in
      let packed_hwm = vm_hwm_kb () in
      let equal =
        streamed.Executor.metrics = materialized.Executor.metrics
        && streamed.Executor.recovery = materialized.Executor.recovery
      in
      if not equal then all_equal := false;
      let rate t = if t > 0. then float_of_int events /. t else 0. in
      Printf.printf "%-10s %10d %14.0f %14.0f %12d %12d  %s\n" name events
        (rate t_stream) (rate t_packed) stream_peak packed_peak
        (if equal then "identical" else "MISMATCH");
      if bi > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"bench\": %S, \"events\": %d, \
            \"stream_events_per_sec\": %.0f, \"packed_events_per_sec\": %.0f, \
            \"stream_peak_heap_bytes\": %d, \"packed_peak_heap_bytes\": %d, \
            \"stream_vm_hwm_kb\": %d, \"packed_vm_hwm_kb\": %d, \
            \"metrics_equal\": %b }"
           name events (rate t_stream) (rate t_packed) stream_peak packed_peak
           stream_hwm packed_hwm equal))
    benches;
  Buffer.add_string buf
    (Printf.sprintf " ],\n  \"all_equal\": %b\n}\n" !all_equal);
  Prefix_util.Fsio.atomic_write_string out (Buffer.contents buf);
  Printf.printf "wrote %s\n" out;
  if not !all_equal then begin
    prerr_endline "bench: streamed and materialized replay outcomes differ";
    exit 1
  end

(* Columnar container comparison: spool each benchmark's evaluation
   trace to disk twice — framed v2 and columnar v3 — then time a full
   decode+replay pass ([Executor.run_stream] over
   [Stream.of_binary_file]) from each container, reporting events/s and
   bytes/event.  Differential: both streamed outcomes must be
   structurally identical to [Executor.run_packed] on the materialized
   trace, and any divergence fails the run. *)
let run_columnar_bench ~benches ~scale ~out =
  let module Stream = Prefix_trace.Stream in
  let module Packed = Prefix_trace.Packed in
  let module Executor = Prefix_runtime.Executor in
  let module Policy = Prefix_runtime.Policy in
  let costs = Executor.default_config.costs in
  let reps = 15 in
  let time_ns f =
    (* Best of [reps] after one warmup (deterministic replays; min is
       the least-noise estimator). *)
    ignore (f ());
    let best = ref Int64.max_int in
    for _ = 1 to reps do
      let t0 = Prefix_obs.Clock.now_ns () in
      ignore (f ());
      let dt = Int64.sub (Prefix_obs.Clock.now_ns ()) t0 in
      if dt < !best then best := dt
    done;
    Int64.to_float !best /. 1e9
  in
  let file_size path = (Unix.stat path).Unix.st_size in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    ("{\n"
    ^ provenance_json ~reps ~scale:(Prefix_workloads.Workload.scale_name scale)
    ^ "  \"benches\": [");
  let all_equal = ref true in
  let speedups = ref [] in
  Printf.printf
    "=== columnar (v3) vs framed (v2) container: decode+replay (%s scale) ===\n"
    (Prefix_workloads.Workload.scale_name scale);
  Printf.printf "%-10s %10s %12s %12s %8s %7s %7s  %s\n" "bench" "events"
    "v2 ev/s" "v3 ev/s" "speedup" "v2 B/ev" "v3 B/ev" "metrics";
  List.iteri
    (fun bi name ->
      let wl = Prefix_workloads.Registry.find name in
      let packed =
        Stream.to_packed (Prefix_workloads.Workload.generate_stream wl ~scale ~seed:8 ())
      in
      let events = Packed.length packed in
      let policy heap = Policy.baseline costs heap in
      let reference = Executor.run_packed ~policy packed in
      let v2_path = Filename.temp_file ("prefix-" ^ name ^ "-v2-") ".pfxt" in
      let v3_path = Filename.temp_file ("prefix-" ^ name ^ "-v3-") ".pfxt" in
      Fun.protect
        ~finally:(fun () ->
          (try Sys.remove v2_path with Sys_error _ -> ());
          try Sys.remove v3_path with Sys_error _ -> ())
        (fun () ->
          Prefix_trace.Binfmt.write_file_framed v2_path (Packed.to_trace packed);
          Prefix_trace.Columnar.write_file v3_path packed;
          (* One re-iterable stream per container, reused across reps —
             the production pattern (the harness replays one spooled
             file once per policy), so per-pass figures exclude the
             one-time segment-buffer/decoder setup. *)
          let v2_stream = Stream.of_binary_file v2_path in
          let v3_stream = Stream.of_binary_file v3_path in
          let replay_stream s = Executor.run_stream ~policy s in
          let check what (o : Executor.outcome) =
            let equal =
              o.Executor.metrics = reference.Executor.metrics
              && o.Executor.recovery = reference.Executor.recovery
            in
            if not equal then begin
              all_equal := false;
              Printf.eprintf "bench: %s: %s replay diverges from run_packed\n" name what
            end;
            equal
          in
          let eq_v2 = check "v2" (replay_stream v2_stream) in
          let eq_v3 = check "v3" (replay_stream v3_stream) in
          let t_v2 = time_ns (fun () -> replay_stream v2_stream) in
          let t_v3 = time_ns (fun () -> replay_stream v3_stream) in
          let rate t = if t > 0. then float_of_int events /. t else 0. in
          let speedup = if t_v3 > 0. then t_v2 /. t_v3 else 0. in
          speedups := speedup :: !speedups;
          let bpe path =
            if events > 0 then float_of_int (file_size path) /. float_of_int events
            else 0.
          in
          Printf.printf "%-10s %10d %12.0f %12.0f %7.2fx %7.2f %7.2f  %s\n" name
            events (rate t_v2) (rate t_v3) speedup (bpe v2_path) (bpe v3_path)
            (if eq_v2 && eq_v3 then "identical" else "MISMATCH");
          if bi > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n    { \"bench\": %S, \"events\": %d, \
                \"v2_events_per_sec\": %.0f, \"v3_events_per_sec\": %.0f, \
                \"speedup\": %.3f, \
                \"v2_bytes\": %d, \"v3_bytes\": %d, \
                \"v2_bytes_per_event\": %.3f, \"v3_bytes_per_event\": %.3f, \
                \"metrics_equal\": %b }"
               name events (rate t_v2) (rate t_v3) speedup (file_size v2_path)
               (file_size v3_path) (bpe v2_path) (bpe v3_path) (eq_v2 && eq_v3))))
    benches;
  let geomean =
    match !speedups with
    | [] -> 1.
    | ss ->
      exp (List.fold_left (fun a s -> a +. log (max 1e-9 s)) 0. ss
           /. float_of_int (List.length ss))
  in
  Buffer.add_string buf
    (Printf.sprintf " ],\n  \"geomean_speedup\": %.3f,\n  \"all_equal\": %b\n}\n"
       geomean !all_equal);
  Prefix_util.Fsio.atomic_write_string out (Buffer.contents buf);
  Printf.printf "geomean decode+replay speedup %.2fx over %d benches; wrote %s\n"
    geomean (List.length !speedups) out;
  if not !all_equal then begin
    prerr_endline "bench: containerized replay outcomes differ from run_packed";
    exit 1
  end

(* Flight-recorder overhead: replay each benchmark's Profiling-scale
   packed trace under the baseline policy with observability on, first
   with the recorder disabled and then recording at the default cadence,
   and report the throughput cost of continuous telemetry.  Both legs
   pay the same span/metric cost, so the delta isolates the recorder:
   one integer compare per event plus a registry snapshot every 2^16
   events.  Budget: 3% geomean. *)
let run_telemetry ~benches ~out =
  let module Packed = Prefix_trace.Packed in
  let module Executor = Prefix_runtime.Executor in
  let module Policy = Prefix_runtime.Policy in
  let costs = Executor.default_config.costs in
  let reps = 8 in
  let time1 f =
    let t0 = Prefix_obs.Clock.now_ns () in
    ignore (f ());
    Int64.sub (Prefix_obs.Clock.now_ns ()) t0
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("{\n" ^ provenance_json ~reps ~scale:"long" ^ "  \"benches\": [");
  let ratios = ref [] in
  (* Long-scale traces: each timed replay runs ~10^2 ms, long enough
     that container noise stays small next to the work being gated. *)
  Printf.printf "=== flight-recorder overhead (Long scale, baseline policy) ===\n";
  Printf.printf "%-10s %14s %14s %9s\n" "bench" "off ev/s" "on ev/s" "overhead";
  List.iteri
    (fun bi name ->
      let wl = Prefix_workloads.Registry.find name in
      let packed = Packed.of_trace (wl.generate ~scale:Long ~seed:8 ()) in
      let events = Packed.length packed in
      let run () =
        Executor.run_packed ~policy:(fun heap -> Policy.baseline costs heap) packed
      in
      (* Each rep times the two legs back to back (off, then on) and
         contributes one paired ratio; the overhead estimate is the
         median ratio.  Pairing cancels slow drift, the median discards
         the noise spikes a shared machine throws at individual reps,
         and taking the per-leg min of the same samples gives the
         throughput figures. *)
      Prefix_obs.Control.set true;
      ignore (run ());
      let best_off = ref Int64.max_int and best_on = ref Int64.max_int in
      let pair_ratios =
        Array.init reps (fun _ ->
            Prefix_obs.Recorder.disable ();
            let d_off = time1 run in
            if d_off < !best_off then best_off := d_off;
            Prefix_obs.Recorder.configure ();
            let d_on = time1 run in
            if d_on < !best_on then best_on := d_on;
            Int64.to_float d_on /. Int64.to_float d_off)
      in
      Prefix_obs.Recorder.disable ();
      Prefix_obs.Control.set false;
      Array.sort compare pair_ratios;
      let median =
        let n = Array.length pair_ratios in
        if n land 1 = 1 then pair_ratios.(n / 2)
        else (pair_ratios.((n / 2) - 1) +. pair_ratios.(n / 2)) /. 2.
      in
      let t_off = Int64.to_float !best_off /. 1e9 in
      let t_on = Int64.to_float !best_on /. 1e9 in
      let rate t = if t > 0. then float_of_int events /. t else 0. in
      let overhead = median -. 1. in
      ratios := (1. +. max 0. overhead) :: !ratios;
      Printf.printf "%-10s %14.0f %14.0f %8.2f%%\n" name (rate t_off) (rate t_on)
        (100. *. overhead);
      if bi > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"bench\": %S, \"events\": %d, \"off_events_per_sec\": %.0f, \
            \"on_events_per_sec\": %.0f, \"overhead_pct\": %.2f }"
           name events (rate t_off) (rate t_on) (100. *. overhead)))
    benches;
  let geomean =
    match !ratios with
    | [] -> 1.
    | rs ->
      exp (List.fold_left (fun a r -> a +. log r) 0. rs /. float_of_int (List.length rs))
  in
  let geomean_pct = 100. *. (geomean -. 1.) in
  let budget_pct = 3.0 in
  Buffer.add_string buf
    (Printf.sprintf " ],\n  \"geomean_overhead_pct\": %.2f,\n  \"budget_pct\": %.1f\n}\n"
       geomean_pct budget_pct);
  Prefix_util.Fsio.atomic_write_string out (Buffer.contents buf);
  Printf.printf "geomean recorder overhead %.2f%% (budget %.1f%%); wrote %s\n" geomean_pct
    budget_pct out;
  if geomean_pct > budget_pct then begin
    Printf.eprintf "bench: recorder overhead %.2f%% exceeds %.1f%% budget\n" geomean_pct
      budget_pct;
    exit 1
  end

(* Checkpointing overhead: replay each benchmark's Long-scale trace
   under the baseline policy through the segment-session path, first
   without checkpoints and then with the durable runner's save policy —
   a full session snapshot (atomic write + fsync) at segment cadence,
   wall-clock throttled to one save per [default_throttle_ms].  Each
   timed sample chains several back-to-back replays with the throttle
   clock carried across them, so it measures the steady state of a
   long-running job rather than a single short replay's worth of save
   alignment.  The JSON reports the observed save count per sample so
   a passing gate is demonstrably non-vacuous.  Same paired-median
   methodology as the telemetry gate, same 3% budget. *)
let run_checkpoint_bench ~benches ~out =
  let module Packed = Prefix_trace.Packed in
  let module Stream = Prefix_trace.Stream in
  let module Executor = Prefix_runtime.Executor in
  let module Policy = Prefix_runtime.Policy in
  let module Checkpoint = Prefix_runtime.Checkpoint in
  let costs = Executor.default_config.costs in
  let reps = 5 in
  (* Several replays per timed sample, so each on-leg sample spans
     multiple throttle windows (a Long replay alone can finish inside
     one). *)
  let chain = 10 in
  (* Small segments: dense save *opportunities*, as a real long run
     with --checkpoint-every would have.  The throttle, not the
     cadence, must be what bounds the cost. *)
  let segment_events = 8192 in
  let every = 4 in
  let throttle_ms = Checkpoint.default_throttle_ms in
  let dir = Filename.temp_file "bench-ckpt" "" in
  Sys.remove dir;
  Prefix_util.Fsio.mkdir_p dir;
  let now_ms () = Int64.to_float (Prefix_obs.Clock.now_ns ()) /. 1e6 in
  let time1 f =
    let t0 = Prefix_obs.Clock.now_ns () in
    ignore (f ());
    Int64.sub (Prefix_obs.Clock.now_ns ()) t0
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf ("{\n" ^ provenance_json ~reps ~scale:"long" ^ "  \"benches\": [");
  let ratios = ref [] in
  Printf.printf
    "=== checkpointing overhead (Long scale, baseline policy, %d-replay \
     chains, save cadence %d x %d events, throttle %.0fms) ===\n"
    chain every segment_events throttle_ms;
  Printf.printf "%-10s %14s %14s %9s %7s\n" "bench" "off ev/s" "on ev/s"
    "overhead" "saves";
  List.iteri
    (fun bi name ->
      let wl = Prefix_workloads.Registry.find name in
      let packed = Packed.of_trace (wl.generate ~scale:Long ~seed:8 ()) in
      let events = Packed.length packed in
      let ckpt_path = Filename.concat dir (name ^ ".ckpt") in
      let saves_last = ref 0 in
      let run ~save () =
        let saved = ref 0 in
        let last_save = ref (now_ms ()) in
        for _ = 1 to chain do
          let heap = Prefix_heap.Allocator.create () in
          let p = Policy.baseline costs heap in
          let st =
            Executor.session_create ~config:Executor.default_config
              ~mode:Policy.Strict ~heatmap_objs:None ~attribute:false ~heap ~p
          in
          let segs = ref 0 in
          Stream.iter_segments (Stream.of_packed ~segment_events packed)
            (fun ~base seg ->
              Executor.replay_segment st ~base seg;
              incr segs;
              if
                save && !segs mod every = 0
                && now_ms () -. !last_save >= throttle_ms
              then begin
                Checkpoint.save ~path:ckpt_path
                  { Checkpoint.kind = "session";
                    meta = [ ("bench", name) ];
                    event_index = Executor.session_events st }
                  ~payload:(Executor.session_serialize st);
                incr saved;
                last_save := now_ms ()
              end);
          ignore (Executor.session_finish st)
        done;
        saves_last := !saved
      in
      run ~save:false ();
      let best_off = ref Int64.max_int and best_on = ref Int64.max_int in
      let total_saves = ref 0 in
      let pair_ratios =
        Array.init reps (fun _ ->
            let d_off = time1 (run ~save:false) in
            if d_off < !best_off then best_off := d_off;
            let d_on = time1 (run ~save:true) in
            total_saves := !total_saves + !saves_last;
            if d_on < !best_on then best_on := d_on;
            Int64.to_float d_on /. Int64.to_float d_off)
      in
      Array.sort compare pair_ratios;
      let median =
        let n = Array.length pair_ratios in
        if n land 1 = 1 then pair_ratios.(n / 2)
        else (pair_ratios.((n / 2) - 1) +. pair_ratios.(n / 2)) /. 2.
      in
      let chain_events = events * chain in
      let t_off = Int64.to_float !best_off /. 1e9 in
      let t_on = Int64.to_float !best_on /. 1e9 in
      let rate t = if t > 0. then float_of_int chain_events /. t else 0. in
      let overhead = median -. 1. in
      ratios := (1. +. max 0. overhead) :: !ratios;
      Printf.printf "%-10s %14.0f %14.0f %8.2f%% %7d\n" name (rate t_off)
        (rate t_on)
        (100. *. overhead)
        !total_saves;
      if bi > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"bench\": %S, \"events\": %d, \"off_events_per_sec\": %.0f, \
            \"on_events_per_sec\": %.0f, \"overhead_pct\": %.2f, \"saves\": %d }"
           name chain_events (rate t_off) (rate t_on)
           (100. *. overhead)
           !total_saves))
    benches;
  let geomean =
    match !ratios with
    | [] -> 1.
    | rs ->
      exp (List.fold_left (fun a r -> a +. log r) 0. rs /. float_of_int (List.length rs))
  in
  let geomean_pct = 100. *. (geomean -. 1.) in
  let budget_pct = 3.0 in
  Buffer.add_string buf
    (Printf.sprintf
       " ],\n  \"checkpoint_every_segments\": %d,\n  \
        \"segment_events\": %d,\n  \"throttle_ms\": %.0f,\n  \
        \"replays_per_sample\": %d,\n  \
        \"geomean_overhead_pct\": %.2f,\n  \"budget_pct\": %.1f\n}\n"
       every segment_events throttle_ms chain geomean_pct budget_pct);
  Prefix_util.Fsio.atomic_write_string out (Buffer.contents buf);
  Printf.printf "geomean checkpoint overhead %.2f%% (budget %.1f%%); wrote %s\n"
    geomean_pct budget_pct out;
  if geomean_pct > budget_pct then begin
    Printf.eprintf "bench: checkpoint overhead %.2f%% exceeds %.1f%% budget\n"
      geomean_pct budget_pct;
    exit 1
  end

(* Decode-once pipelined replay vs the per-policy columnar path: spool
   each benchmark's evaluation trace into a columnar (v3) container,
   build the six harness policies from Profiling-scale plans, then time
   two ways of replaying all six from the file —

   - per-policy (the PR 8 production path, reproduced faithfully): six
     independent [Executor.run_stream] passes, each decoding the
     container end to end through the channel reader, with the widened
     batched-probe fast path disabled ([Executor.probe_widening]) —
     PR 8's executor probed strictly per event;
   - decode-once: a single [Executor.run_stream_many] fan-out over an
     mmap-backed, prefetch-pipelined stream (segment N+1 decodes on a
     spawned domain while segment N replays through all six sessions),
     widened probes on.

   The decode-once leg wraps the stream in [Stream.prefetched] only
   when [jobs >= 2] — mirroring the harness gate: on a single
   hardware thread a producer domain just contends with the consumer.

   Differential: all fourteen streamed outcomes must be structurally
   identical to [Executor.run_packed] on the materialized trace; any
   divergence fails the run.  The JSON carries the 1.3x geomean target
   the roadmap gates on next to the measured geomean. *)
let run_pipeline_bench ~benches ~scale ~jobs ~out =
  let module Stream = Prefix_trace.Stream in
  let module Packed = Prefix_trace.Packed in
  let module Executor = Prefix_runtime.Executor in
  let module Policy = Prefix_runtime.Policy in
  let module Pipeline = Prefix_core.Pipeline in
  let module Plan = Prefix_core.Plan in
  let module Trace_stats = Prefix_trace.Trace_stats in
  let costs = Executor.default_config.costs in
  let reps = 5 in
  let time_ns f =
    (* Best of [reps] after one warmup — replays are deterministic, so
       min is the least-noise estimator. *)
    ignore (f ());
    let best = ref Int64.max_int in
    for _ = 1 to reps do
      let t0 = Prefix_obs.Clock.now_ns () in
      ignore (f ());
      let dt = Int64.sub (Prefix_obs.Clock.now_ns ()) t0 in
      if dt < !best then best := dt
    done;
    Int64.to_float !best /. 1e9
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    ("{\n"
    ^ provenance_json ~reps ~scale:(Prefix_workloads.Workload.scale_name scale)
    ^ "  \"benches\": [");
  let all_equal = ref true in
  let speedups = ref [] in
  Printf.printf
    "=== decode-once pipelined replay vs per-policy columnar (%s scale, 7 \
     policies) ===\n"
    (Prefix_workloads.Workload.scale_name scale);
  Printf.printf "%-10s %10s %14s %14s %8s  %s\n" "bench" "events"
    "per-pol ev/s" "dec-once ev/s" "speedup" "metrics";
  List.iteri
    (fun bi name ->
      let wl = Prefix_workloads.Registry.find name in
      (* Profiling-side plans, exactly as the harness builds them. *)
      let ptrace = wl.generate ~scale:Profiling ~seed:7 () in
      let pstats = Trace_stats.analyze_packed (Packed.of_trace ptrace) in
      let hds_plan = Prefix_runtime.Hds_policy.plan_of_trace pstats ptrace in
      let halo_plan = Prefix_halo.Halo.plan_of_trace pstats ptrace in
      let plan v = Pipeline.plan_with_stats ~variant:v pstats ptrace in
      let plan_hot = plan Plan.Hot in
      let plan_hds = plan Plan.Hds in
      let plan_hdshot = plan Plan.HdsHot in
      let block_plan = Prefix_runtime.Block_policy.plan_of_trace ptrace in
      let cls = Policy.no_classification in
      let policies =
        [ ("baseline", fun heap -> Policy.baseline costs heap);
          ("HDS", fun heap -> Prefix_runtime.Hds_policy.policy costs heap hds_plan cls);
          ("HALO", fun heap -> Prefix_runtime.Halo_policy.policy costs heap halo_plan cls);
          ("Block",
           fun heap -> Prefix_runtime.Block_policy.policy costs heap block_plan cls);
          ("PreFix-Hot", fun heap -> Prefix_runtime.Prefix_policy.policy costs heap plan_hot cls);
          ("PreFix-HDS", fun heap -> Prefix_runtime.Prefix_policy.policy costs heap plan_hds cls);
          ("PreFix-HDS+Hot",
           fun heap -> Prefix_runtime.Prefix_policy.policy costs heap plan_hdshot cls) ]
      in
      let packed =
        Stream.to_packed (Prefix_workloads.Workload.generate_stream wl ~scale ~seed:8 ())
      in
      let events = Packed.length packed in
      let path = Filename.temp_file ("prefix-" ^ name ^ "-pipe-") ".pfxt" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          Prefix_trace.Columnar.write_file path packed;
          (* Re-iterable streams, reused across reps (the production
             pattern): the channel stream re-opens the file per pass,
             the mmap stream maps it once and keeps the decoder. *)
          let ch_stream = Stream.of_binary_file ~backend:`Channel path in
          let fan_stream =
            let s = Stream.of_binary_file path in
            if jobs >= 2 then Stream.prefetched s else s
          in
          let widened on f x =
            Executor.probe_widening := on;
            Fun.protect ~finally:(fun () -> Executor.probe_widening := true) (fun () -> f x)
          in
          let per_policy () =
            widened false
              (List.map (fun (_, policy) -> Executor.run_stream ~policy ch_stream))
              policies
          in
          let decode_once () =
            widened true
              (Executor.run_stream_many ~policies:(List.map snd policies))
              fan_stream
          in
          (* Differential leg (untimed): every streamed outcome must
             match the materialized replay. *)
          let references =
            List.map (fun (_, policy) -> Executor.run_packed ~policy packed) policies
          in
          let bench_equal = ref true in
          let check what (pname, _) (reference : Executor.outcome)
              (o : Executor.outcome) =
            if
              o.Executor.metrics <> reference.Executor.metrics
              || o.Executor.recovery <> reference.Executor.recovery
            then begin
              all_equal := false;
              bench_equal := false;
              Printf.eprintf "bench: %s: %s %s replay diverges from run_packed\n"
                name what pname
            end
          in
          let check_all what outcomes =
            List.iter2 (fun (p, r) o -> check what p r o)
              (List.combine policies references) outcomes
          in
          check_all "per-policy" (per_policy ());
          check_all "decode-once" (decode_once ());
          let t_old = time_ns per_policy in
          let t_new = time_ns decode_once in
          let total = 7 * events in
          let rate t = if t > 0. then float_of_int total /. t else 0. in
          let speedup = if t_new > 0. then t_old /. t_new else 0. in
          speedups := speedup :: !speedups;
          Printf.printf "%-10s %10d %14.0f %14.0f %7.2fx  %s\n" name events
            (rate t_old) (rate t_new) speedup
            (if !bench_equal then "identical" else "MISMATCH");
          if bi > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\n    { \"bench\": %S, \"events\": %d, \
                \"per_policy_events_per_sec\": %.0f, \
                \"decode_once_events_per_sec\": %.0f, \"speedup\": %.3f }"
               name events (rate t_old) (rate t_new) speedup)))
    benches;
  let geomean =
    match !speedups with
    | [] -> 1.
    | ss ->
      exp (List.fold_left (fun a s -> a +. log (max 1e-9 s)) 0. ss
           /. float_of_int (List.length ss))
  in
  Buffer.add_string buf
    (Printf.sprintf
       " ],\n  \"geomean_speedup\": %.3f,\n  \"target_speedup\": 1.3,\n  \
        \"all_equal\": %b\n}\n"
       geomean !all_equal);
  Prefix_util.Fsio.atomic_write_string out (Buffer.contents buf);
  Printf.printf
    "geomean decode-once speedup %.2fx over %d benches (target 1.30x); wrote %s\n"
    geomean (List.length !speedups) out;
  if not !all_equal then begin
    prerr_endline "bench: pipelined replay outcomes differ from run_packed";
    exit 1
  end

(* Interval-colored vs modulo-N recycling, plus the Block policy itself.
   Each benchmark's Profiling-scale trace (the input whose liveness the
   interval pass saw, so coloring covers every instance) is replayed
   under four policies: baseline, Block, and PreFix:HDS+Hot planned with
   --slots modulo and --slots interval.  All four replays are
   deterministic, so the gate is on simulated metrics, not wall time:

   - footprint invariants: placement never changes the memory-reference
     stream (all four replays must agree on mem_refs), and interval
     coloring — which provably never double-books a slot the profile
     covers — must not evict more than modulo-N does;
   - the headline: cycles(modulo) / cycles(interval), geomean'd, which
     shows the coloring win on lifetime-skewed workloads.

   Wall-clock events/s for the two PreFix replays is reported too
   (best-of-reps), but only the metric gate can fail the run. *)
let run_block_bench ~benches ~out =
  let module Packed = Prefix_trace.Packed in
  let module Executor = Prefix_runtime.Executor in
  let module Policy = Prefix_runtime.Policy in
  let module Pipeline = Prefix_core.Pipeline in
  let module Plan = Prefix_core.Plan in
  let module Trace_stats = Prefix_trace.Trace_stats in
  let costs = Executor.default_config.costs in
  let reps = 5 in
  let time_ns f =
    (* Best of [reps] after one warmup — replays are deterministic, so
       min is the least-noise estimator. *)
    ignore (f ());
    let best = ref Int64.max_int in
    for _ = 1 to reps do
      let t0 = Prefix_obs.Clock.now_ns () in
      ignore (f ());
      let dt = Int64.sub (Prefix_obs.Clock.now_ns ()) t0 in
      if dt < !best then best := dt
    done;
    Int64.to_float !best /. 1e9
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    ("{\n" ^ provenance_json ~reps ~scale:"profiling" ^ "  \"benches\": [");
  let all_equal = ref true in
  let speedups = ref [] in
  Printf.printf
    "=== block policy + interval-colored vs modulo-N recycling (Profiling \
     scale) ===\n";
  Printf.printf "%-10s %10s %11s %14s %14s %8s  %s\n" "bench" "events"
    "evictions" "modulo cyc" "interval cyc" "speedup" "invariants";
  List.iteri
    (fun bi name ->
      let wl = Prefix_workloads.Registry.find name in
      let trace = wl.generate ~scale:Profiling ~seed:7 () in
      let packed = Packed.of_trace trace in
      let events = Packed.length packed in
      let stats = Trace_stats.analyze_packed packed in
      let plan_with mode =
        Pipeline.plan_with_stats
          ~config:{ Pipeline.default_config with slot_mode = mode }
          ~variant:Plan.HdsHot stats trace
      in
      let plan_mod = plan_with Pipeline.Modulo in
      let plan_int = plan_with Pipeline.Interval in
      let block_plan = Prefix_runtime.Block_policy.plan_of_trace trace in
      let cls = Policy.no_classification in
      (* Replay capturing the policy record, for its eviction counters. *)
      let replay mk =
        let p = ref None in
        let policy heap =
          let pol = mk heap in
          p := Some pol;
          pol
        in
        let o = Executor.run_packed ~policy packed in
        (o, Option.get !p)
      in
      let base_o, _ = replay (fun heap -> Policy.baseline costs heap) in
      let block_o, _ =
        replay (fun heap ->
            Prefix_runtime.Block_policy.policy costs heap block_plan cls)
      in
      let prefix_replay plan () =
        replay (fun heap -> Prefix_runtime.Prefix_policy.policy costs heap plan cls)
      in
      let mod_o, mod_p = prefix_replay plan_mod () in
      let int_o, int_p = prefix_replay plan_int () in
      let cyc (o : Executor.outcome) = o.metrics.cycles.total_cycles in
      let refs (o : Executor.outcome) = o.metrics.mem_refs in
      let mod_ev = mod_p.Policy.stats.recycle_evictions in
      let int_ev = int_p.Policy.stats.recycle_evictions in
      let refs_equal =
        refs mod_o = refs base_o && refs int_o = refs base_o
        && refs block_o = refs base_o
      in
      let ok = refs_equal && int_ev <= mod_ev in
      if not ok then all_equal := false;
      let speedup = if cyc int_o > 0. then cyc mod_o /. cyc int_o else 0. in
      speedups := speedup :: !speedups;
      let t_mod = time_ns (fun () -> prefix_replay plan_mod ()) in
      let t_int = time_ns (fun () -> prefix_replay plan_int ()) in
      let rate t = if t > 0. then float_of_int events /. t else 0. in
      let block_pct =
        100. *. (cyc block_o -. cyc base_o) /. Float.max 1. (cyc base_o)
      in
      Printf.printf "%-10s %10d %5d->%-5d %14.0f %14.0f %7.3fx  %s\n" name events
        mod_ev int_ev (cyc mod_o) (cyc int_o) speedup
        (if ok then "ok" else "VIOLATED");
      if bi > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    { \"bench\": %S, \"events\": %d, \"baseline_cycles\": %.0f, \
            \"block_cycles\": %.0f, \"block_vs_baseline_pct\": %.2f, \
            \"modulo_cycles\": %.0f, \"interval_cycles\": %.0f, \
            \"cycle_speedup\": %.4f, \"modulo_evictions\": %d, \
            \"interval_evictions\": %d, \"modulo_events_per_sec\": %.0f, \
            \"interval_events_per_sec\": %.0f, \"invariants_ok\": %b }"
           name events (cyc base_o) (cyc block_o) block_pct (cyc mod_o)
           (cyc int_o) speedup mod_ev int_ev (rate t_mod) (rate t_int) ok))
    benches;
  let geomean =
    match !speedups with
    | [] -> 1.
    | ss ->
      exp (List.fold_left (fun a s -> a +. log (max 1e-9 s)) 0. ss
           /. float_of_int (List.length ss))
  in
  Buffer.add_string buf
    (Printf.sprintf
       " ],\n  \"geomean_cycle_speedup\": %.4f,\n  \"all_equal\": %b\n}\n"
       geomean !all_equal);
  Prefix_util.Fsio.atomic_write_string out (Buffer.contents buf);
  Printf.printf
    "geomean interval-over-modulo cycle speedup %.3fx over %d benches; wrote %s\n"
    geomean (List.length !speedups) out;
  if not !all_equal then begin
    prerr_endline "bench: block/interval replay broke a footprint invariant";
    exit 1
  end

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Pull a `--jobs N` pair out of the argument list wherever it sits. *)
  let rec extract_jobs acc = function
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n -> (Some n, List.rev_append acc rest)
      | None ->
        prerr_endline "bench: --jobs expects an integer";
        exit 2)
    | [ "--jobs" ] ->
      prerr_endline "bench: --jobs expects an integer";
      exit 2
    | a :: rest -> extract_jobs (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let jobs_opt, args = extract_jobs [] args in
  let jobs = match jobs_opt with Some j -> max 1 j | None -> Pool.default_jobs () in
  Harness.set_jobs jobs;
  match args with
  | [ "micro" ] ->
    print_endline "=== Bechamel micro-benchmarks (analysis pipeline) ===";
    run_micro ()
  | "csv" :: rest ->
    let dir = match rest with [ d ] -> d | _ -> "results" in
    Prefix_experiments.Export.write_all dir
  | "reps" :: rest ->
    let n = match rest with [ n ] -> int_of_string n | _ -> 10 in
    run_reps ~jobs n
  | "throughput" :: rest ->
    let rec parse ~benches ~out = function
      | "--benches" :: bs :: rest ->
        parse ~benches:(String.split_on_char ',' bs) ~out rest
      | "--out" :: f :: rest -> parse ~benches ~out:f rest
      | [] -> (benches, out)
      | a :: _ ->
        Printf.eprintf "bench: throughput: unknown argument %S\n" a;
        exit 2
    in
    let benches, out =
      parse ~benches:Prefix_workloads.Registry.names ~out:"BENCH_replay.json" rest
    in
    run_throughput ~benches ~out
  | "stream" :: rest ->
    let rec parse ~benches ~scale ~out = function
      | "--benches" :: bs :: rest ->
        parse ~benches:(String.split_on_char ',' bs) ~scale ~out rest
      | "--scale" :: s :: rest -> (
        match s with
        | "profiling" -> parse ~benches ~scale:Prefix_workloads.Workload.Profiling ~out rest
        | "long" -> parse ~benches ~scale:Prefix_workloads.Workload.Long ~out rest
        | "huge" -> parse ~benches ~scale:Prefix_workloads.Workload.Huge ~out rest
        | _ ->
          Printf.eprintf "bench: stream: unknown scale %S\n" s;
          exit 2)
      | "--out" :: f :: rest -> parse ~benches ~scale ~out:f rest
      | [] -> (benches, scale, out)
      | a :: _ ->
        Printf.eprintf "bench: stream: unknown argument %S\n" a;
        exit 2
    in
    let benches, scale, out =
      parse ~benches:Prefix_workloads.Registry.names
        ~scale:Prefix_workloads.Workload.Long ~out:"BENCH_stream.json" rest
    in
    run_stream_bench ~benches ~scale ~out
  | "columnar" :: rest ->
    let rec parse ~benches ~scale ~out = function
      | "--benches" :: bs :: rest ->
        parse ~benches:(String.split_on_char ',' bs) ~scale ~out rest
      | "--scale" :: s :: rest -> (
        match s with
        | "profiling" -> parse ~benches ~scale:Prefix_workloads.Workload.Profiling ~out rest
        | "long" -> parse ~benches ~scale:Prefix_workloads.Workload.Long ~out rest
        | "huge" -> parse ~benches ~scale:Prefix_workloads.Workload.Huge ~out rest
        | _ ->
          Printf.eprintf "bench: columnar: unknown scale %S\n" s;
          exit 2)
      | "--out" :: f :: rest -> parse ~benches ~scale ~out:f rest
      | [] -> (benches, scale, out)
      | a :: _ ->
        Printf.eprintf "bench: columnar: unknown argument %S\n" a;
        exit 2
    in
    let benches, scale, out =
      parse ~benches:Prefix_workloads.Registry.names
        ~scale:Prefix_workloads.Workload.Long ~out:"BENCH_columnar.json" rest
    in
    run_columnar_bench ~benches ~scale ~out
  | "pipeline" :: rest ->
    let rec parse ~benches ~scale ~out = function
      | "--benches" :: bs :: rest ->
        parse ~benches:(String.split_on_char ',' bs) ~scale ~out rest
      | "--scale" :: s :: rest -> (
        match s with
        | "profiling" -> parse ~benches ~scale:Prefix_workloads.Workload.Profiling ~out rest
        | "long" -> parse ~benches ~scale:Prefix_workloads.Workload.Long ~out rest
        | "huge" -> parse ~benches ~scale:Prefix_workloads.Workload.Huge ~out rest
        | _ ->
          Printf.eprintf "bench: pipeline: unknown scale %S\n" s;
          exit 2)
      | "--out" :: f :: rest -> parse ~benches ~scale ~out:f rest
      | [] -> (benches, scale, out)
      | a :: _ ->
        Printf.eprintf "bench: pipeline: unknown argument %S\n" a;
        exit 2
    in
    let benches, scale, out =
      parse ~benches:Prefix_workloads.Registry.names
        ~scale:Prefix_workloads.Workload.Long ~out:"BENCH_pipeline.json" rest
    in
    run_pipeline_bench ~benches ~scale ~jobs ~out
  | "block" :: rest ->
    let rec parse ~benches ~out = function
      | "--benches" :: bs :: rest ->
        parse ~benches:(String.split_on_char ',' bs) ~out rest
      | "--out" :: f :: rest -> parse ~benches ~out:f rest
      | [] -> (benches, out)
      | a :: _ ->
        Printf.eprintf "bench: block: unknown argument %S\n" a;
        exit 2
    in
    let benches, out =
      parse ~benches:Prefix_workloads.Registry.names ~out:"BENCH_block.json" rest
    in
    run_block_bench ~benches ~out
  | "telemetry" :: rest ->
    let rec parse ~benches ~out = function
      | "--benches" :: bs :: rest ->
        parse ~benches:(String.split_on_char ',' bs) ~out rest
      | "--out" :: f :: rest -> parse ~benches ~out:f rest
      | [] -> (benches, out)
      | a :: _ ->
        Printf.eprintf "bench: telemetry: unknown argument %S\n" a;
        exit 2
    in
    let benches, out =
      parse ~benches:Prefix_workloads.Registry.names ~out:"BENCH_telemetry.json" rest
    in
    run_telemetry ~benches ~out
  | "checkpoint" :: rest ->
    let rec parse ~benches ~out = function
      | "--benches" :: bs :: rest ->
        parse ~benches:(String.split_on_char ',' bs) ~out rest
      | "--out" :: f :: rest -> parse ~benches ~out:f rest
      | [] -> (benches, out)
      | a :: _ ->
        Printf.eprintf "bench: checkpoint: unknown argument %S\n" a;
        exit 2
    in
    let benches, out =
      parse ~benches:Prefix_workloads.Registry.names ~out:"BENCH_checkpoint.json" rest
    in
    run_checkpoint_bench ~benches ~out
  | [] ->
    print_endline "=== PreFix paper reproduction: all tables and figures ===";
    (* Replay the 13 benchmarks across the pool once; every experiment
       below then hits the memo cache. *)
    ignore (Harness.run_all ());
    print_string (R.run_all ());
    print_endline "=== done ==="
  | ids ->
    List.iter
      (fun id ->
        match R.find id with
        | Some e -> print_string (e.run ())
        | None ->
          Printf.printf "unknown experiment %S; available: %s, micro\n" id
            (String.concat ", " (List.map (fun (e : R.experiment) -> e.id) R.all
                                  @ [ "csv"; "reps"; "throughput"; "stream";
                                      "columnar"; "pipeline"; "block";
                                      "telemetry"; "checkpoint" ])))
      ids
