(* Benchmark harness.

   Two halves:

   1. The paper reproduction — regenerates every table and figure of the
      evaluation section (Tables 2-6, Figures 1, 2, 9-14) plus the
      ablations, printing measured values next to the paper's.  Run all
      with no arguments, or a subset with e.g.
        dune exec bench/main.exe -- table3 fig9
   2. Bechamel micro-benchmarks of the analysis algorithms (one
      Test.make group per pipeline stage), enabled with the `micro`
      argument. *)

module R = Prefix_experiments.Report

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  (* A mid-size synthetic input shared by the analysis benches. *)
  let wl = Prefix_workloads.Registry.find "libc" in
  let trace = wl.generate ~scale:Profiling ~seed:7 () in
  let stats = Prefix_trace.Trace_stats.analyze trace in
  let seq = Prefix_hds.Detector.hot_sequence stats trace in
  let seq = Array.sub seq 0 (min 2048 (Array.length seq)) in
  let ohds = Prefix_hds.Detector.detect_with_stats stats trace in
  let tests =
    [ Test.make ~name:"trace-stats" (Staged.stage (fun () ->
          ignore (Prefix_trace.Trace_stats.analyze trace)));
      Test.make ~name:"lcs-dp" (Staged.stage (fun () ->
          let a = Array.sub seq 0 (min 256 (Array.length seq)) in
          ignore (Prefix_hds.Lcs.lcs a a)));
      Test.make ~name:"sequitur" (Staged.stage (fun () ->
          ignore (Prefix_hds.Sequitur.build seq)));
      Test.make ~name:"detector-lcs" (Staged.stage (fun () ->
          ignore (Prefix_hds.Detector.detect_with_stats stats trace)));
      Test.make ~name:"detector-sequitur" (Staged.stage (fun () ->
          ignore
            (Prefix_hds.Detector.detect_with_stats ~method_:Prefix_hds.Detector.Sequitur
               stats trace)));
      Test.make ~name:"reconstitute" (Staged.stage (fun () ->
          ignore (Prefix_core.Layout.reconstitute ohds)));
      Test.make ~name:"plan-pipeline" (Staged.stage (fun () ->
          ignore
            (Prefix_core.Pipeline.plan_with_stats ~variant:Prefix_core.Plan.HdsHot stats
               trace)));
      Test.make ~name:"allocator-churn" (Staged.stage (fun () ->
          let a = Prefix_heap.Allocator.create () in
          let addrs = Array.init 512 (fun i -> Prefix_heap.Allocator.malloc a (16 + (i mod 8 * 16))) in
          Array.iter (fun addr -> Prefix_heap.Allocator.free a addr) addrs));
      Test.make ~name:"cache-access" (Staged.stage (fun () ->
          let h = Prefix_cachesim.Hierarchy.create ~config:Prefix_cachesim.Hierarchy.scaled_config () in
          for i = 0 to 4095 do
            Prefix_cachesim.Hierarchy.access h (i * 48)
          done));
      (* Observability must be free when off: these measure the
         disabled-mode cost of the span and metric fast paths (a single
         bool-ref check each). *)
      Test.make ~name:"obs-span-off" (Staged.stage (fun () ->
          for _ = 1 to 1024 do
            ignore (Prefix_obs.Span.with_ "bench" (fun () -> ()))
          done));
      Test.make ~name:"obs-metric-off" (Staged.stage (
          let c = Prefix_obs.Metric.counter "bench.counter" in
          fun () ->
            for _ = 1 to 1024 do
              Prefix_obs.Metric.incr c
            done)) ]
  in
  let benchmark test =
    let quota = Time.second 0.25 in
    Benchmark.all (Benchmark.cfg ~limit:1000 ~quota ~kde:None ()) Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-20s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-20s (no estimate)\n%!" name)
        results)
    tests

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  match args with
  | [ "micro" ] ->
    print_endline "=== Bechamel micro-benchmarks (analysis pipeline) ===";
    run_micro ()
  | "csv" :: rest ->
    let dir = match rest with [ d ] -> d | _ -> "results" in
    Prefix_experiments.Export.write_all dir
  | [] ->
    print_endline "=== PreFix paper reproduction: all tables and figures ===";
    print_string (R.run_all ());
    print_endline "=== done ==="
  | ids ->
    List.iter
      (fun id ->
        match R.find id with
        | Some e -> print_string (e.run ())
        | None ->
          Printf.printf "unknown experiment %S; available: %s, micro\n" id
            (String.concat ", " (List.map (fun (e : R.experiment) -> e.id) R.all
                                  @ [ "csv" ])))
      ids
