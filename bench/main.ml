(* Benchmark harness.

   Two halves:

   1. The paper reproduction — regenerates every table and figure of the
      evaluation section (Tables 2-6, Figures 1, 2, 9-14) plus the
      ablations, printing measured values next to the paper's.  Run all
      with no arguments, or a subset with e.g.
        dune exec bench/main.exe -- table3 fig9
   2. Bechamel micro-benchmarks of the analysis algorithms (one
      Test.make group per pipeline stage), enabled with the `micro`
      argument.

   `--jobs N` (anywhere on the command line) sizes the domain pool used
   by the paper-reproduction harness and the `reps` repetition sweep;
   the default is the runtime's recommended domain count.  Reports are
   bit-identical for every N. *)

module R = Prefix_experiments.Report
module Harness = Prefix_experiments.Harness
module Pool = Prefix_parallel.Pool
module Rng = Prefix_util.Rng
module Stats = Prefix_util.Stats

let run_micro () =
  let open Bechamel in
  let open Toolkit in
  (* A mid-size synthetic input shared by the analysis benches. *)
  let wl = Prefix_workloads.Registry.find "libc" in
  let trace = wl.generate ~scale:Profiling ~seed:7 () in
  let stats = Prefix_trace.Trace_stats.analyze trace in
  let seq = Prefix_hds.Detector.hot_sequence stats trace in
  let seq = Array.sub seq 0 (min 2048 (Array.length seq)) in
  let ohds = Prefix_hds.Detector.detect_with_stats stats trace in
  let tests =
    [ Test.make ~name:"trace-stats" (Staged.stage (fun () ->
          ignore (Prefix_trace.Trace_stats.analyze trace)));
      Test.make ~name:"lcs-dp" (Staged.stage (fun () ->
          let a = Array.sub seq 0 (min 256 (Array.length seq)) in
          ignore (Prefix_hds.Lcs.lcs a a)));
      Test.make ~name:"sequitur" (Staged.stage (fun () ->
          ignore (Prefix_hds.Sequitur.build seq)));
      Test.make ~name:"detector-lcs" (Staged.stage (fun () ->
          ignore (Prefix_hds.Detector.detect_with_stats stats trace)));
      Test.make ~name:"detector-sequitur" (Staged.stage (fun () ->
          ignore
            (Prefix_hds.Detector.detect_with_stats ~method_:Prefix_hds.Detector.Sequitur
               stats trace)));
      Test.make ~name:"reconstitute" (Staged.stage (fun () ->
          ignore (Prefix_core.Layout.reconstitute ohds)));
      Test.make ~name:"plan-pipeline" (Staged.stage (fun () ->
          ignore
            (Prefix_core.Pipeline.plan_with_stats ~variant:Prefix_core.Plan.HdsHot stats
               trace)));
      Test.make ~name:"allocator-churn" (Staged.stage (fun () ->
          let a = Prefix_heap.Allocator.create () in
          let addrs = Array.init 512 (fun i -> Prefix_heap.Allocator.malloc a (16 + (i mod 8 * 16))) in
          Array.iter (fun addr -> Prefix_heap.Allocator.free a addr) addrs));
      Test.make ~name:"cache-access" (Staged.stage (fun () ->
          let h = Prefix_cachesim.Hierarchy.create ~config:Prefix_cachesim.Hierarchy.scaled_config () in
          for i = 0 to 4095 do
            Prefix_cachesim.Hierarchy.access h (i * 48)
          done));
      (* Observability must be free when off: these measure the
         disabled-mode cost of the span and metric fast paths (a single
         bool-ref check each). *)
      Test.make ~name:"obs-span-off" (Staged.stage (fun () ->
          for _ = 1 to 1024 do
            ignore (Prefix_obs.Span.with_ "bench" (fun () -> ()))
          done));
      Test.make ~name:"obs-metric-off" (Staged.stage (
          let c = Prefix_obs.Metric.counter "bench.counter" in
          fun () ->
            for _ = 1 to 1024 do
              Prefix_obs.Metric.incr c
            done)) ]
  in
  let benchmark test =
    let quota = Time.second 0.25 in
    Benchmark.all (Benchmark.cfg ~limit:1000 ~quota ~kde:None ()) Instance.[ monotonic_clock ] test
  in
  let analyze raw =
    Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]) Instance.monotonic_clock raw
  in
  List.iter
    (fun test ->
      let results = analyze (benchmark (Test.make_grouped ~name:"g" [ test ])) in
      Hashtbl.iter
        (fun name ols ->
          match Bechamel.Analyze.OLS.estimates ols with
          | Some [ est ] -> Printf.printf "%-20s %12.1f ns/run\n%!" name est
          | _ -> Printf.printf "%-20s (no estimate)\n%!" name)
        results)
    tests

(* Repetition sweep: re-measure the seed-sensitive benchmarks' best
   PreFix delta across [n] fresh workload seeds, fanned out over the
   pool.  Each repetition's generator is split off a fixed root
   sequentially *before* the fan-out, so the seeds (and therefore every
   number printed) are identical whatever --jobs is. *)
let run_reps ~jobs n =
  let benchmarks = [ "mcf"; "libc" ] in
  let root = Rng.create 0xC0FFEE in
  let rngs = List.init n (fun _ -> Rng.split root) in
  let reps =
    Pool.with_pool ~jobs (fun pool ->
        Pool.map pool
          (fun rng ->
            let seed = Rng.int rng 1_000_000 in
            let deltas =
              List.map
                (fun b -> Prefix_experiments.Exp_stability.delta_for b seed)
                benchmarks
            in
            (seed, Stats.mean deltas))
          rngs)
  in
  Printf.printf "=== %d repetitions over %s (%d jobs) ===\n" n
    (String.concat ", " benchmarks) jobs;
  List.iteri
    (fun i (seed, d) -> Printf.printf "rep %2d  seed %6d  best-PreFix %+.2f%%\n" i seed d)
    reps;
  let ds = List.map snd reps in
  Printf.printf "mean %+.2f%%  min %+.2f%%  max %+.2f%%  stddev(n-1) %.3f\n"
    (Stats.mean ds)
    (List.fold_left min infinity ds)
    (List.fold_left max neg_infinity ds)
    (Stats.stddev_sample ds)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Pull a `--jobs N` pair out of the argument list wherever it sits. *)
  let rec extract_jobs acc = function
    | "--jobs" :: n :: rest -> (
      match int_of_string_opt n with
      | Some n -> (Some n, List.rev_append acc rest)
      | None ->
        prerr_endline "bench: --jobs expects an integer";
        exit 2)
    | [ "--jobs" ] ->
      prerr_endline "bench: --jobs expects an integer";
      exit 2
    | a :: rest -> extract_jobs (a :: acc) rest
    | [] -> (None, List.rev acc)
  in
  let jobs_opt, args = extract_jobs [] args in
  let jobs = match jobs_opt with Some j -> max 1 j | None -> Pool.default_jobs () in
  Harness.set_jobs jobs;
  match args with
  | [ "micro" ] ->
    print_endline "=== Bechamel micro-benchmarks (analysis pipeline) ===";
    run_micro ()
  | "csv" :: rest ->
    let dir = match rest with [ d ] -> d | _ -> "results" in
    Prefix_experiments.Export.write_all dir
  | "reps" :: rest ->
    let n = match rest with [ n ] -> int_of_string n | _ -> 10 in
    run_reps ~jobs n
  | [] ->
    print_endline "=== PreFix paper reproduction: all tables and figures ===";
    (* Replay the 13 benchmarks across the pool once; every experiment
       below then hits the memo cache. *)
    ignore (Harness.run_all ());
    print_string (R.run_all ());
    print_endline "=== done ==="
  | ids ->
    List.iter
      (fun id ->
        match R.find id with
        | Some e -> print_string (e.run ())
        | None ->
          Printf.printf "unknown experiment %S; available: %s, micro\n" id
            (String.concat ", " (List.map (fun (e : R.experiment) -> e.id) R.all
                                  @ [ "csv"; "reps" ])))
      ids
