(* prefix — command-line front end for the PreFix reproduction.

   Sub-commands:
     list                      benchmarks and experiments
     trace <bench>             generate and dump a workload trace
     plan <bench>              show the PreFix plans for a benchmark
     run <bench>               replay a benchmark under all seven policies
     stats <bench>             replay and print span timings + metrics
     fuzz                      fault-injection campaign over corrupted traces
     experiment <id>...        reproduce specific tables/figures
     top <bench>               replay with a live telemetry dashboard
     all                       reproduce everything

   Observability: --log-level LEVEL turns on structured logging
   (--verbose is shorthand for --log-level info), and --obs-out FILE
   additionally collects spans/metrics and writes a Chrome trace-event
   JSON loadable in chrome://tracing or https://ui.perfetto.dev.
   --telemetry FILE turns on the continuous flight recorder and writes
   the run's timeline (.csv / .json) or an OpenMetrics exposition (any
   other extension) on exit; --telemetry-interval N sets the event
   cadence.  Missing parent directories of either output path are
   created.

   Parallelism: run/stats/experiment/all/fuzz take --jobs N to spread
   independent benchmark replays (or campaign runs) across a domain
   pool; --jobs 1 is the exact legacy sequential path and every report
   is byte-identical whatever N is. *)

open Cmdliner

module Workload = Prefix_workloads.Workload
module Registry = Prefix_workloads.Registry
module Trace_stats = Prefix_trace.Trace_stats
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Harness = Prefix_experiments.Harness
module Report = Prefix_experiments.Report
module M = Prefix_runtime.Metrics

let bench_arg =
  let doc = "Benchmark name (one of the 13 workload models)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let scale_conv =
  Arg.enum
    [ ("profiling", Workload.Profiling);
      ("long", Workload.Long);
      ("huge", Workload.Huge) ]

let scale_arg =
  let doc = "Input scale: 'profiling' (training input), 'long' or 'huge'." in
  Arg.(value & opt scale_conv Workload.Long & info [ "scale" ] ~doc)

let stream_arg =
  let doc =
    "Evaluate the long run through the bounded-memory streaming engine: the \
     evaluation trace is never materialized, only one segment lives in memory \
     at a time.  Reports are byte-identical to the materialized path."
  in
  Arg.(value & flag & info [ "stream" ] ~doc)

let segment_events_arg =
  let doc = "Events per stream segment (with --stream; default 65536)." in
  Arg.(value & opt (some int) None & info [ "segment-events" ] ~docv:"N" ~doc)

let set_streaming stream segment_events =
  Harness.set_streaming stream;
  Harness.set_segment_events segment_events

let seed_arg =
  let doc = "Deterministic seed." in
  Arg.(value & opt int 7 & info [ "seed" ] ~doc)

let slots_arg =
  let doc =
    "Recycling-slot assignment for the PreFix plans: 'modulo' (default, the \
     paper's (id-1) mod N rotation, Figure 7) or 'interval' (greedy coloring \
     of profiled liveness intervals — overlapping lifetimes never share a \
     slot when the profile covers them; unprofiled instances fall back to \
     modulo)."
  in
  Arg.(value
       & opt (enum [ ("modulo", Pipeline.Modulo); ("interval", Pipeline.Interval) ])
           Pipeline.Modulo
       & info [ "slots" ] ~docv:"MODE" ~doc)

let verbose_arg =
  let doc = "Print progress to stderr (same as --log-level info)." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let jobs_arg =
  let doc =
    "Run independent benchmark replays / campaign runs across $(docv) domains \
     (default: the runtime's recommended domain count).  Results are \
     bit-identical to --jobs 1; only wall time changes."
  in
  Arg.(value
       & opt int (Prefix_parallel.Pool.default_jobs ())
       & info [ "j"; "jobs" ] ~docv:"N" ~doc)

let log_level_arg =
  let level_conv =
    let parse s =
      match Logs.level_of_string s with
      | Ok l -> Ok l
      | Error (`Msg m) -> Error (`Msg m)
    in
    Arg.conv (parse, fun ppf l -> Format.pp_print_string ppf (Logs.level_to_string l))
  in
  let doc =
    "Log verbosity: one of quiet, error, warning, info, debug.  Enables the \
     stderr reporter for the prefix.* log sources."
  in
  Arg.(value & opt (some level_conv) None & info [ "log-level" ] ~docv:"LEVEL" ~doc)

let obs_out_arg =
  let doc =
    "Collect observability spans and metrics during the command and write a \
     Chrome trace-event JSON file to $(docv) (open in chrome://tracing or \
     https://ui.perfetto.dev)."
  in
  Arg.(value & opt (some string) None & info [ "obs-out" ] ~docv:"FILE" ~doc)

let telemetry_arg =
  let doc =
    "Record continuous telemetry (bounded flight recorder over every counter, \
     gauge and histogram quantile) during the command and write it to $(docv): \
     a CSV timeline for .csv, a JSON timeline for .json, an \
     OpenMetrics/Prometheus text exposition otherwise."
  in
  Arg.(value & opt (some string) None & info [ "telemetry" ] ~docv:"FILE" ~doc)

let telemetry_interval_arg =
  let doc = "Telemetry sample cadence in replay events (default 65536)." in
  Arg.(value
       & opt int 65536
       & info [ "telemetry-interval" ] ~docv:"N" ~doc)

(* Output files (--obs-out, --telemetry) may point into directories that
   do not exist yet; create them, and turn an uncreatable path into a
   clean exit-2 error naming the path instead of a backtrace. *)
let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let open_out_path ~flag file =
  let dir = Filename.dirname file in
  match mkdir_p dir with
  | exception Unix.Unix_error (e, _, _) ->
    Error
      (Printf.sprintf "%s %s: cannot create directory %s (%s)" flag file dir
         (Unix.error_message e))
  | () -> (
    match open_out file with
    | exception Sys_error msg -> Error (Printf.sprintf "%s %s: %s" flag file msg)
    | oc -> Ok oc)

(* Install the Logs reporter when asked; leave the default nop reporter
   (complete silence) otherwise. *)
let setup_logs log_level verbose =
  match (log_level, verbose) with
  | Some level, _ -> Prefix_obs.Log.setup ~level ()
  | None, true -> Prefix_obs.Log.setup ~level:(Some Logs.Info) ()
  | None, false -> ()

(* Probe an output path up front (create parent directories, check it
   opens) so a bad path fails before the expensive run, not after it.
   The actual content is written at the end via an atomic
   temp+fsync+rename, so a crash mid-run never leaves a partial file
   where the report should be. *)
let probe_out_path ~flag file =
  match open_out_path ~flag file with
  | Error _ as e -> e
  | Ok oc ->
    close_out oc;
    Ok ()

let atomic_out ~what file data =
  Prefix_util.Fsio.atomic_write_string file data;
  Printf.eprintf "%s written to %s\n%!" what file

(* Run [k] with span/metric collection on when a trace file was
   requested, and write the trace afterwards. *)
let with_obs obs_out k =
  match obs_out with
  | None -> k ()
  | Some file -> (
    match probe_out_path ~flag:"--obs-out" file with
    | Error msg ->
      Printf.eprintf "prefix: error: %s\n" msg;
      2
    | Ok () ->
      Prefix_obs.Control.set true;
      let rc = k () in
      atomic_out ~what:"chrome trace" file (Prefix_obs.Export.chrome_trace ());
      rc)

(* Same shape for --telemetry: configure the flight recorder around the
   command and dump the timeline (or an OpenMetrics exposition) on the
   way out. *)
let with_telemetry ?on_sample telemetry interval k =
  match telemetry with
  | None -> k ()
  | Some _ when interval <= 0 ->
    Printf.eprintf "prefix: error: --telemetry-interval must be positive\n";
    2
  | Some file -> (
    match probe_out_path ~flag:"--telemetry" file with
    | Error msg ->
      Printf.eprintf "prefix: error: %s\n" msg;
      2
    | Ok () ->
      Prefix_obs.Control.set true;
      Prefix_obs.Recorder.configure ~interval_events:interval ?on_sample ();
      let rc = k () in
      Prefix_obs.Recorder.disable ();
      let data =
        if Filename.check_suffix file ".csv" then Prefix_obs.Export.timeline_csv ()
        else if Filename.check_suffix file ".json" then
          Prefix_obs.Export.timeline_json ()
        else Prefix_obs.Export.openmetrics ()
      in
      atomic_out ~what:"telemetry" file data;
      rc)

(* Replay and parse failures surface as clean one-line errors with exit
   code 2 instead of an uncaught exception and a backtrace.  Strict-mode
   replays of corrupt traces land here. *)
let guard k =
  match k () with
  | rc -> rc
  | exception (Invalid_argument msg | Failure msg | Sys_error msg) ->
    Printf.eprintf "prefix: error: %s\n" msg;
    2

(* A resource-guardrail breach is not an error: the run flushed a final
   checkpoint and can be finished with `prefix resume`.  It gets its own
   exit code (3) so scripts can tell it from success (0), failed
   validation (1) and hard errors (2).  Placed inside with_obs /
   with_telemetry so those outputs — including the guardrail.* metrics —
   are still written. *)
let catch_breach k =
  match k () with
  | rc -> rc
  | exception Prefix_runtime.Checkpoint.Breach msg ->
    Printf.eprintf
      "prefix: guardrail: %s (checkpoint flushed; finish with `prefix resume`)\n"
      msg;
    3

let get_workload name =
  match List.find_opt (fun (w : Workload.t) -> w.name = name) Registry.all with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %S (try: %s)" name
         (String.concat ", " Registry.names))

(* --- list *)

let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter
      (fun (w : Workload.t) -> Printf.printf "  %-9s %s\n" w.name w.description)
      Registry.all;
    print_endline "experiments:";
    List.iter
      (fun (e : Report.experiment) -> Printf.printf "  %-9s %s\n" e.id e.what)
      Report.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and experiments")
    Term.(const run $ const ())

(* --- trace *)

let trace_cmd =
  let run name scale seed limit format out =
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      guard @@ fun () ->
      let trace = w.generate ~scale ~seed () in
      let n = Prefix_trace.Trace.length trace in
      match format with
      | `Text ->
        let shown = match limit with Some l -> min l n | None -> n in
        for i = 0 to shown - 1 do
          print_endline
            (Prefix_trace.Serialize.event_to_line (Prefix_trace.Trace.get trace i))
        done;
        if shown < n then Printf.eprintf "(%d of %d events shown)\n" shown n;
        0
      | (`Binary | `Columnar) as fmt -> (
        match out with
        | None ->
          Printf.eprintf "prefix: error: --format %s requires --out FILE\n"
            (match fmt with `Binary -> "binary" | `Columnar -> "columnar");
          2
        | Some path ->
          (match fmt with
          | `Binary -> Prefix_trace.Binfmt.write_file_framed path trace
          | `Columnar ->
            Prefix_trace.Columnar.write_file path (Prefix_trace.Packed.of_trace trace));
          Printf.eprintf "%s: %d events, %d bytes\n" path n
            (match Prefix_util.Fsio.read_file path with
            | Ok s -> String.length s
            | Error _ -> 0);
          0)
  in
  let limit =
    Arg.(value
         & opt (some int) None
         & info [ "limit" ] ~doc:"Print at most N events (text format only).")
  in
  let format =
    let doc =
      "Output format: 'text' dumps one event per line to stdout; 'binary' \
       writes a framed Binfmt v2 file to --out; 'columnar' writes the \
       compressed columnar v3 container to --out.  Both binary containers \
       replay through `--stream` (the reader auto-detects the container)."
    in
    Arg.(value
         & opt (enum [ ("text", `Text); ("binary", `Binary); ("columnar", `Columnar) ]) `Text
         & info [ "format" ] ~docv:"FORMAT" ~doc)
  in
  let out =
    Arg.(value
         & opt (some string) None
         & info [ "out" ] ~docv:"FILE" ~doc:"Output file for the binary formats.")
  in
  Cmd.v (Cmd.info "trace" ~doc:"Generate and dump or convert a workload trace")
    Term.(const run $ bench_arg $ scale_arg $ seed_arg $ limit $ format $ out)

(* --- plan *)

let plan_cmd =
  let run name seed slots =
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      let trace = w.generate ~scale:Workload.Profiling ~seed () in
      let stats = Trace_stats.analyze trace in
      List.iter
        (fun variant ->
          let plan =
            Pipeline.plan_with_stats
              ~config:{ Harness.pipeline_config with slot_mode = slots }
              ~variant stats trace
          in
          Format.printf "%a@." Plan.pp_summary plan;
          List.iter
            (fun (cp : Plan.counter_plan) ->
              Format.printf "  counter %d: sites [%s], pattern %a, %s@." cp.counter
                (String.concat ";" (List.map string_of_int cp.counter_sites))
                Prefix_core.Context.pp cp.pattern
                (match cp.recycle with
                | Some rb ->
                  Printf.sprintf "recycling %d slots of %d B%s" rb.n_slots rb.slot_bytes
                    (if rb.assignment = [] then ""
                     else
                       Printf.sprintf " (%d interval-colored instances)"
                         (List.length rb.assignment))
                | None -> Printf.sprintf "%d placements" (List.length cp.placements)))
            plan.counters;
          print_newline ())
        [ Plan.Hot; Plan.Hds; Plan.HdsHot ];
      0
  in
  Cmd.v (Cmd.info "plan" ~doc:"Show the PreFix plans built from a profiling run")
    Term.(const run $ bench_arg $ seed_arg $ slots_arg)

(* --- run *)

module Durable = Prefix_experiments.Durable
module Checkpoint = Prefix_runtime.Checkpoint

let checkpoint_arg =
  let doc =
    "Write self-validating checkpoints under $(docv) at stream segment \
     boundaries.  A killed (or guardrail-stopped) run is finished by `prefix \
     resume $(docv)` with a byte-identical report."
  in
  Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)

let checkpoint_every_arg =
  let doc = "Checkpoint every $(docv)-th stream segment (default 8)." in
  Arg.(value & opt int 8 & info [ "checkpoint-every" ] ~docv:"N" ~doc)

let deadline_arg =
  let doc =
    "Stop the run after $(docv) seconds of wall clock (checked at segment \
     boundaries): flush a final checkpoint and exit with code 3.  Requires \
     --checkpoint."
  in
  Arg.(value & opt (some float) None & info [ "deadline-s" ] ~docv:"SECONDS" ~doc)

let max_rss_arg =
  let doc =
    "Stop the run when resident memory exceeds $(docv) megabytes (checked at \
     segment boundaries): flush a final checkpoint and exit with code 3.  \
     Requires --checkpoint."
  in
  Arg.(value & opt (some int) None & info [ "max-rss-mb" ] ~docv:"MB" ~doc)

let stream_container_arg =
  let doc =
    "Source backing the streamed evaluation (with --stream): 'generator' \
     (default) re-runs the deterministic workload generator each pass; \
     'columnar' spools the stream once into a compressed columnar (v3) \
     container and replays from the file — same segments, byte-identical \
     report, with the on-disk decode path exercised end to end."
  in
  Arg.(value
       & opt (enum [ ("generator", `Generator); ("columnar", `Columnar) ]) `Generator
       & info [ "stream-container" ] ~docv:"CONTAINER" ~doc)

let decode_once_arg =
  let doc =
    "With --stream: replay all seven policies as consumers of a single decode \
     pass over the evaluation stream (decode once, replay many) instead of \
     re-decoding it per policy.  The report is byte-identical either way."
  in
  Arg.(value & flag & info [ "decode-once" ] ~doc)

let run_cmd =
  let run name scale stream segment_events stream_container decode_once slots
      jobs verbose log_level obs_out telemetry telemetry_interval checkpoint
      checkpoint_every deadline_s max_rss_mb =
    setup_logs log_level verbose;
    Harness.set_jobs jobs;
    set_streaming stream segment_events;
    Harness.set_stream_container stream_container;
    Harness.set_decode_once decode_once;
    Harness.set_slot_mode slots;
    Harness.set_eval_scale scale;
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      if checkpoint = None && (deadline_s <> None || max_rss_mb <> None) then begin
        Printf.eprintf
          "prefix: error: --deadline-s / --max-rss-mb require --checkpoint (a \
           guardrail stop must leave something to resume)\n";
        2
      end
      else if checkpoint_every <= 0 then begin
        Printf.eprintf "prefix: error: --checkpoint-every must be positive\n";
        2
      end
      else
        guard @@ fun () ->
        with_obs obs_out @@ fun () ->
        with_telemetry telemetry telemetry_interval @@ fun () ->
        catch_breach @@ fun () ->
        let r =
          match checkpoint with
          | None -> Harness.find w.name
          | Some dir ->
            let cfg =
              { Durable.dir;
                every = checkpoint_every;
                throttle_ms = Checkpoint.default_throttle_ms;
                guardrails = { Checkpoint.deadline_s; max_rss_mb };
                jobs;
                scale;
                streaming = stream;
                segment_events }
            in
            Durable.run_benchmark cfg w
        in
        print_string (Durable.render r);
        0
  in
  let eval_scale_arg =
    let doc = "Evaluation-run scale: 'long' (default) or 'huge' (~10x)." in
    Arg.(value & opt scale_conv Workload.Long & info [ "scale" ] ~doc)
  in
  Cmd.v (Cmd.info "run" ~doc:"Replay one benchmark under all seven policies")
    Term.(const run $ bench_arg $ eval_scale_arg $ stream_arg
          $ segment_events_arg $ stream_container_arg $ decode_once_arg
          $ slots_arg $ jobs_arg $ verbose_arg $ log_level_arg $ obs_out_arg
          $ telemetry_arg $ telemetry_interval_arg $ checkpoint_arg
          $ checkpoint_every_arg $ deadline_arg $ max_rss_arg)

(* --- resume *)

let resume_cmd =
  let run dir check checkpoint_every deadline_s max_rss_mb verbose log_level =
    setup_logs log_level verbose;
    if check then
      match Durable.check ~dir with
      | Ok report ->
        print_string report;
        print_endline "all checkpoints valid";
        0
      | Error report ->
        print_string report;
        prerr_endline "prefix: error: invalid checkpoints found";
        1
    else
      guard @@ fun () ->
      catch_breach @@ fun () ->
      let names, results =
        Durable.resume ~dir ~every:checkpoint_every
          ~guardrails:{ Checkpoint.deadline_s; max_rss_mb }
      in
      (match (names, results) with
      | [ _ ], [ r ] -> print_string (Durable.render r)
      | _ ->
        List.iter2
          (fun n r ->
            Printf.printf "== %s ==\n" n;
            print_string (Durable.render r))
          names results);
      0
  in
  let dir_arg =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"DIR" ~doc:"Checkpoint directory of an earlier run.")
  in
  let check_arg =
    let doc =
      "Only validate the checkpoints (magic, CRCs, run identity) and exit; \
       nothing is replayed."
    in
    Arg.(value & flag & info [ "check" ] ~doc)
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Finish an interrupted checkpointed run.  The report is \
          byte-identical to the uninterrupted run's")
    Term.(const run $ dir_arg $ check_arg $ checkpoint_every_arg $ deadline_arg
          $ max_rss_arg $ verbose_arg $ log_level_arg)

(* --- stats *)

let stats_cmd =
  let run name stream segment_events jobs verbose log_level obs_out telemetry
      telemetry_interval =
    setup_logs log_level verbose;
    Harness.set_jobs jobs;
    set_streaming stream segment_events;
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      guard @@ fun () ->
      (* Spans and metrics are the whole point of this command. *)
      Prefix_obs.Control.set true;
      Prefix_obs.Span.reset ();
      Prefix_obs.Metric.reset ();
      with_obs obs_out @@ fun () ->
      with_telemetry telemetry telemetry_interval @@ fun () ->
      let r = Harness.find w.name in
      Printf.printf "%s: %d profiling events, %d long events, 7 policies replayed\n\n"
        w.name
        (Prefix_trace.Trace.length r.profiling_trace)
        r.long_events;
      print_string (Prefix_obs.Export.report ());
      0
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:
         "Replay one benchmark with observability on and print the per-stage \
          span timing table and the metrics report")
    Term.(const run $ bench_arg $ stream_arg $ segment_events_arg $ jobs_arg
          $ verbose_arg $ log_level_arg $ obs_out_arg $ telemetry_arg
          $ telemetry_interval_arg)

(* --- fuzz *)

let fuzz_cmd =
  let module Injector = Prefix_faults.Injector in
  let module Campaign = Prefix_faults.Campaign in
  let kind_conv =
    Arg.enum (List.map (fun k -> (Injector.kind_name k, k)) Injector.all_kinds)
  in
  let policy_conv =
    Arg.enum
      (List.map
         (fun p -> (String.lowercase_ascii (Campaign.policy_name p), p))
         Campaign.all_policies)
  in
  let seeds_arg =
    Arg.(value & opt int 8
         & info [ "seeds" ] ~docv:"N" ~doc:"Fault seeds 0..N-1 per combination.")
  in
  let rate_arg =
    Arg.(value & opt float 0.01
         & info [ "rate" ] ~docv:"R"
             ~doc:"Fraction of candidate events corrupted per injection.")
  in
  let benches_arg =
    Arg.(value & opt (list string) Registry.names
         & info [ "benches" ] ~docv:"B1,B2,.." ~doc:"Benchmarks to sweep.")
  in
  let kinds_arg =
    let doc =
      Printf.sprintf "Fault kinds to inject (default all: %s)."
        (String.concat ", " (List.map Injector.kind_name Injector.all_kinds))
    in
    Arg.(value & opt (list kind_conv) Injector.all_kinds
         & info [ "kinds" ] ~docv:"K1,K2,.." ~doc)
  in
  let policies_arg =
    Arg.(value & opt (list policy_conv) Campaign.all_policies
         & info [ "policies" ] ~docv:"P1,P2,.."
             ~doc:"Policies to replay under (hds, halo, block, prefix).")
  in
  let region_cap_arg =
    Arg.(value & opt (some int) None
         & info [ "region-cap" ] ~docv:"BYTES"
             ~doc:
               "Cap each HDS/HALO region (and the Block policy's block space) \
                at $(docv) during the lenient replay so exhaustion degrades \
                to malloc fallback.")
  in
  let crash_arg =
    let doc =
      "Run the crash-recovery leg instead: SIGKILL checkpointed runs at \
       randomized segment boundaries (plus torn-checkpoint injection), resume \
       them, and require byte-identical reports."
    in
    Arg.(value & flag & info [ "crash" ] ~doc)
  in
  let crash_kills_arg =
    Arg.(value & opt int 20
         & info [ "crash-kills" ] ~docv:"N"
             ~doc:"Keep killing until $(docv) kill points were exercised.")
  in
  let crash_dir_arg =
    Arg.(value & opt (some string) None
         & info [ "crash-dir" ] ~docv:"DIR"
             ~doc:
               "Campaign working directory (default: a fresh directory under \
                the system temp dir; kept on failure for inspection).")
  in
  let crash_seed_arg =
    Arg.(value & opt int 42
         & info [ "crash-seed" ] ~docv:"SEED"
             ~doc:"Seed for kill points and torn-write injection.")
  in
  let run seeds rate benches kinds policies region_cap stream jobs verbose
      log_level obs_out telemetry telemetry_interval crash crash_kills crash_dir
      crash_seed =
    setup_logs log_level verbose;
    match
      List.filter_map
        (fun b -> match get_workload b with Error e -> Some e | Ok _ -> None)
        benches
    with
    | e :: _ -> prerr_endline e; 1
    | [] ->
      guard @@ fun () ->
      with_obs obs_out @@ fun () ->
      with_telemetry telemetry telemetry_interval @@ fun () ->
      let progress m =
        if verbose || log_level <> None then Printf.eprintf "%s\n%!" m
      in
      if crash then begin
        let module Crash = Prefix_faults.Crash in
        let dir =
          match crash_dir with
          | Some d -> d
          | None ->
            let d =
              Filename.temp_file "prefix-crash" ""
            in
            Sys.remove d;
            d
        in
        let cfg =
          { (Crash.default_config ~dir) with
            benches =
              (* Keep the default pair unless the user narrowed the sweep. *)
              (if benches = Registry.names then (Crash.default_config ~dir).benches
               else benches);
            seed = crash_seed;
            target_kills = crash_kills }
        in
        let s = Crash.run ~progress cfg in
        print_string (Crash.report s);
        if Crash.ok s then 0 else 1
      end
      else begin
        let cfg =
          { Campaign.benches; policies; kinds; seeds; rate; region_cap; stream }
        in
        let s = Campaign.run ~jobs ~progress cfg in
        print_string (Campaign.report s);
        if Campaign.ok s then 0 else 1
      end
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:
         "Run the fault-injection campaign: corrupt benchmark traces with \
          seeded faults, assert lenient replay is crash-free with bounded \
          metric drift, and that sanitized traces replay strictly")
    Term.(const run $ seeds_arg $ rate_arg $ benches_arg $ kinds_arg
          $ policies_arg $ region_cap_arg $ stream_arg $ jobs_arg $ verbose_arg
          $ log_level_arg $ obs_out_arg $ telemetry_arg
          $ telemetry_interval_arg $ crash_arg $ crash_kills_arg
          $ crash_dir_arg $ crash_seed_arg)

(* --- experiment *)

let experiment_cmd =
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.")
  in
  let run ids jobs verbose log_level obs_out =
    setup_logs log_level verbose;
    Harness.set_jobs jobs;
    with_obs obs_out @@ fun () ->
    List.fold_left
      (fun rc id ->
        match Report.find id with
        | Some e -> print_string (e.run ()); rc
        | None ->
          Printf.eprintf "unknown experiment %S\n" id;
          1)
      0 ids
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Reproduce specific tables/figures")
    Term.(const run $ ids $ jobs_arg $ verbose_arg $ log_level_arg $ obs_out_arg)

(* --- hotspots *)

let hotspots_cmd =
  let run name =
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      let trace = w.generate ~scale:Workload.Long ~seed:8 () in
      let prof = w.generate ~scale:Workload.Profiling ~seed:7 () in
      let stats = Trace_stats.analyze prof in
      let plan = Pipeline.plan_with_stats ~config:Harness.pipeline_config
          ~variant:Plan.HdsHot stats prof in
      let costs = Prefix_runtime.Executor.default_config.costs in
      let run_with label policy =
        let o = Prefix_runtime.Executor.run ~attribute:true ~policy trace in
        Printf.printf "--- %s: top allocation sites by L1 misses ---\n" label;
        match o.Prefix_runtime.Executor.attribution with
        | Some a -> print_string (Prefix_runtime.Attribution.render ~n:8 a)
        | None -> ()
      in
      run_with "baseline" (fun heap -> Prefix_runtime.Policy.baseline costs heap);
      run_with "PreFix" (fun heap ->
          Prefix_runtime.Prefix_policy.policy costs heap plan
            Prefix_runtime.Policy.no_classification);
      0
  in
  Cmd.v
    (Cmd.info "hotspots"
       ~doc:"Attribute cache/TLB misses to allocation sites, baseline vs PreFix")
    Term.(const run $ bench_arg)

(* --- lifetimes *)

let lifetimes_cmd =
  let run name =
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      let trace = w.generate ~scale:Workload.Profiling ~seed:7 () in
      let stats = Trace_stats.analyze trace in
      let plan = Pipeline.plan_with_stats ~config:Harness.pipeline_config
          ~variant:Plan.HdsHot stats trace in
      print_string
        (Prefix_core.Lifetimes.report stats
           ~trace_len:(Prefix_trace.Trace.length trace)
           plan.placed_objects);
      0
  in
  Cmd.v
    (Cmd.info "lifetimes"
       ~doc:"Classify a benchmark's placed objects by profiled lifetime range")
    Term.(const run $ bench_arg)

(* --- validate *)

let validate_cmd =
  let run () =
    let failures = ref 0 in
    let check name ok detail =
      if not ok then begin
        incr failures;
        Printf.printf "FAIL %-30s %s\n" name detail
      end
      else Printf.printf "ok   %s\n" name
    in
    List.iter
      (fun (w : Workload.t) ->
        List.iter
          (fun scale ->
            let trace = w.generate ~scale ~seed:7 () in
            let violations = Prefix_trace.Trace.validate trace in
            check
              (Printf.sprintf "%s/%s trace" w.name (Workload.scale_name scale))
              (violations = [])
              (match violations with
              | [] -> ""
              | v :: _ -> Format.asprintf "%a" Prefix_trace.Trace.pp_violation v);
            if scale = Workload.Profiling then begin
              let stats = Trace_stats.analyze trace in
              List.iter
                (fun variant ->
                  let plan =
                    Pipeline.plan_with_stats ~config:Harness.pipeline_config ~variant stats
                      trace
                  in
                  check
                    (Printf.sprintf "%s plan %s" w.name (Plan.variant_name variant))
                    (Plan.validate plan = Ok ())
                    (match Plan.validate plan with Error e -> e | Ok () -> ""))
                [ Plan.Hot; Plan.Hds; Plan.HdsHot ]
            end)
          [ Workload.Profiling; Workload.Long ])
      Registry.all;
    if !failures = 0 then begin
      print_endline "all checks passed";
      0
    end
    else begin
      Printf.printf "%d failures\n" !failures;
      1
    end
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate every workload trace and every generated plan")
    Term.(const run $ const ())

(* --- top *)

(* Live telemetry dashboard: a streamed replay of one benchmark with the
   flight recorder on, rendering every sample as it is recorded.  On a
   TTY the frame is redrawn in place with ANSI escapes; when stdout is a
   pipe (CI, redirects) each sample degrades to one plain line starting
   with "sample ", so scripts can assert on the output. *)
let top_cmd =
  let run name scale segment_events interval verbose log_level =
    setup_logs log_level verbose;
    Harness.set_jobs 1;
    set_streaming true segment_events;
    Harness.set_eval_scale scale;
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      if interval <= 0 then begin
        Printf.eprintf "prefix: error: --interval must be positive\n";
        2
      end
      else
        guard @@ fun () ->
        Prefix_obs.Control.set true;
        let tty = Unix.isatty Unix.stdout in
        let n_samples = ref 0 in
        let frame_lines = ref 0 in
        let fmt v =
          if Float.is_nan v then "-"
          else if Float.is_integer v && Float.abs v < 1e15 then
            Printf.sprintf "%.0f" v
          else Printf.sprintf "%.4g" v
        in
        let render (s : Prefix_obs.Recorder.sample) =
          incr n_samples;
          let get k =
            match List.assoc_opt k s.Prefix_obs.Recorder.s_values with
            | Some v -> fmt v
            | None -> "-"
          in
          if tty then begin
            let lines =
              [ Printf.sprintf "prefix top — %s  [%s]  sample %d  events %d"
                  w.name s.s_label !n_samples s.s_ev;
                Printf.sprintf "  events/s (segment) %-14s live objects %s"
                  (get "executor.segment_events_per_sec")
                  (get "executor.live_objects");
                Printf.sprintf "  heap live bytes    %-14s cache hit    %s"
                  (get "executor.heap_live_bytes")
                  (get "executor.cache_hit_rate");
                Printf.sprintf "  region peak bytes  %-14s recoveries   %s"
                  (get "executor.region_peak_bytes") (get "executor.recoveries");
                Printf.sprintf "  alloc bytes        p50 %-8s p95 %-8s p99 %s"
                  (get "executor.alloc_bytes.p50") (get "executor.alloc_bytes.p95")
                  (get "executor.alloc_bytes.p99") ]
            in
            (* Move back over the previous frame and redraw each line. *)
            if !frame_lines > 0 then Printf.printf "\027[%dA" !frame_lines;
            List.iter (fun l -> Printf.printf "\027[2K%s\n" l) lines;
            frame_lines := List.length lines;
            flush stdout
          end
          else
            Printf.printf
              "sample %d events=%d label=%s live=%s heap=%s hit=%s evps=%s p99=%s\n%!"
              !n_samples s.s_ev s.s_label
              (get "executor.live_objects")
              (get "executor.heap_live_bytes")
              (get "executor.cache_hit_rate")
              (get "executor.segment_events_per_sec")
              (get "executor.alloc_bytes.p99")
        in
        Prefix_obs.Recorder.configure ~interval_events:interval
          ~wall_interval_ns:250_000_000L ~on_sample:render ();
        let r = Harness.find w.name in
        Prefix_obs.Recorder.disable ();
        Printf.printf "%d samples over %d events x 7 policies (%s)\n" !n_samples
          r.Harness.long_events w.name;
        0
  in
  let interval_arg =
    let doc = "Sample cadence in replay events (default 65536)." in
    Arg.(value & opt int 65536 & info [ "interval" ] ~docv:"N" ~doc)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Replay one benchmark through the streaming engine with a live \
          telemetry dashboard (plain per-sample lines when stdout is not a \
          TTY)")
    Term.(const run $ bench_arg $ scale_arg $ segment_events_arg $ interval_arg
          $ verbose_arg $ log_level_arg)

(* --- all *)

let all_cmd =
  let run jobs verbose log_level =
    setup_logs log_level verbose;
    Harness.set_jobs jobs;
    (* Warm the memo cache across the pool up front; the experiments
       then find every benchmark already replayed. *)
    ignore (Harness.run_all ());
    print_string (Report.run_all ());
    0
  in
  Cmd.v (Cmd.info "all" ~doc:"Reproduce every table and figure")
    Term.(const run $ jobs_arg $ verbose_arg $ log_level_arg)

let () =
  let info =
    Cmd.info "prefix" ~version:"1.0.0"
      ~doc:"PreFix (CGO 2025) reproduction: profile-guided heap layout optimization"
  in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; trace_cmd; plan_cmd; run_cmd; resume_cmd; stats_cmd; fuzz_cmd; hotspots_cmd; lifetimes_cmd; experiment_cmd; validate_cmd; top_cmd; all_cmd ]))
