(* prefix — command-line front end for the PreFix reproduction.

   Sub-commands:
     list                      benchmarks and experiments
     trace <bench>             generate and dump a workload trace
     plan <bench>              show the PreFix plans for a benchmark
     run <bench>               replay a benchmark under all six policies
     experiment <id>...        reproduce specific tables/figures
     all                       reproduce everything *)

open Cmdliner

module Workload = Prefix_workloads.Workload
module Registry = Prefix_workloads.Registry
module Trace_stats = Prefix_trace.Trace_stats
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Harness = Prefix_experiments.Harness
module Report = Prefix_experiments.Report
module M = Prefix_runtime.Metrics

let bench_arg =
  let doc = "Benchmark name (one of the 13 workload models)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"BENCH" ~doc)

let scale_arg =
  let doc = "Input scale: 'profiling' (training input) or 'long'." in
  let scale =
    Arg.enum [ ("profiling", Workload.Profiling); ("long", Workload.Long) ]
  in
  Arg.(value & opt scale Workload.Long & info [ "scale" ] ~doc)

let seed_arg =
  let doc = "Deterministic seed." in
  Arg.(value & opt int 7 & info [ "seed" ] ~doc)

let verbose_arg =
  let doc = "Print progress to stderr." in
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc)

let get_workload name =
  match List.find_opt (fun (w : Workload.t) -> w.name = name) Registry.all with
  | Some w -> Ok w
  | None ->
    Error
      (Printf.sprintf "unknown benchmark %S (try: %s)" name
         (String.concat ", " Registry.names))

(* --- list *)

let list_cmd =
  let run () =
    print_endline "benchmarks:";
    List.iter
      (fun (w : Workload.t) -> Printf.printf "  %-9s %s\n" w.name w.description)
      Registry.all;
    print_endline "experiments:";
    List.iter
      (fun (e : Report.experiment) -> Printf.printf "  %-9s %s\n" e.id e.what)
      Report.all;
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"List benchmarks and experiments")
    Term.(const run $ const ())

(* --- trace *)

let trace_cmd =
  let run name scale seed limit =
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      let trace = w.generate ~scale ~seed () in
      let n = Prefix_trace.Trace.length trace in
      let shown = match limit with Some l -> min l n | None -> n in
      for i = 0 to shown - 1 do
        print_endline
          (Prefix_trace.Serialize.event_to_line (Prefix_trace.Trace.get trace i))
      done;
      if shown < n then Printf.eprintf "(%d of %d events shown)\n" shown n;
      0
  in
  let limit =
    Arg.(value & opt (some int) None & info [ "limit" ] ~doc:"Print at most N events.")
  in
  Cmd.v (Cmd.info "trace" ~doc:"Generate and dump a workload trace")
    Term.(const run $ bench_arg $ scale_arg $ seed_arg $ limit)

(* --- plan *)

let plan_cmd =
  let run name seed =
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      let trace = w.generate ~scale:Workload.Profiling ~seed () in
      let stats = Trace_stats.analyze trace in
      List.iter
        (fun variant ->
          let plan =
            Pipeline.plan_with_stats ~config:Harness.pipeline_config ~variant stats trace
          in
          Format.printf "%a@." Plan.pp_summary plan;
          List.iter
            (fun (cp : Plan.counter_plan) ->
              Format.printf "  counter %d: sites [%s], pattern %a, %s@." cp.counter
                (String.concat ";" (List.map string_of_int cp.counter_sites))
                Prefix_core.Context.pp cp.pattern
                (match cp.recycle with
                | Some rb -> Printf.sprintf "recycling %d slots of %d B" rb.n_slots rb.slot_bytes
                | None -> Printf.sprintf "%d placements" (List.length cp.placements)))
            plan.counters;
          print_newline ())
        [ Plan.Hot; Plan.Hds; Plan.HdsHot ];
      0
  in
  Cmd.v (Cmd.info "plan" ~doc:"Show the PreFix plans built from a profiling run")
    Term.(const run $ bench_arg $ seed_arg)

(* --- run *)

let run_cmd =
  let run name verbose =
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      Harness.verbose := verbose;
      let r = Harness.find w.name in
      let line label (pr : Harness.policy_run) =
        Printf.printf "%-14s %12.0f cycles  %+7.2f%%  L1 %5.2f%%  LLC %7.4f%%  peak %s B\n"
          label pr.metrics.M.cycles.total_cycles
          (Harness.time_delta r pr)
          (100. *. pr.metrics.M.l1_miss_rate)
          (100. *. pr.metrics.M.llc_miss_rate)
          (Prefix_util.Tablefmt.fmt_int pr.metrics.M.peak_bytes)
      in
      line "baseline" r.baseline;
      line "HDS [8]" r.hds;
      line "HALO" r.halo;
      line "PreFix:Hot" r.prefix_hot;
      line "PreFix:HDS" r.prefix_hds;
      line "PreFix:HDS+Hot" r.prefix_hdshot;
      0
  in
  Cmd.v (Cmd.info "run" ~doc:"Replay one benchmark under all six policies")
    Term.(const run $ bench_arg $ verbose_arg)

(* --- experiment *)

let experiment_cmd =
  let ids =
    Arg.(non_empty & pos_all string [] & info [] ~docv:"ID" ~doc:"Experiment ids.")
  in
  let run ids verbose =
    Harness.verbose := verbose;
    List.fold_left
      (fun rc id ->
        match Report.find id with
        | Some e -> print_string (e.run ()); rc
        | None ->
          Printf.eprintf "unknown experiment %S\n" id;
          1)
      0 ids
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Reproduce specific tables/figures")
    Term.(const run $ ids $ verbose_arg)

(* --- hotspots *)

let hotspots_cmd =
  let run name =
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      let trace = w.generate ~scale:Workload.Long ~seed:8 () in
      let prof = w.generate ~scale:Workload.Profiling ~seed:7 () in
      let stats = Trace_stats.analyze prof in
      let plan = Pipeline.plan_with_stats ~config:Harness.pipeline_config
          ~variant:Plan.HdsHot stats prof in
      let costs = Prefix_runtime.Executor.default_config.costs in
      let run_with label policy =
        let o = Prefix_runtime.Executor.run ~attribute:true ~policy trace in
        Printf.printf "--- %s: top allocation sites by L1 misses ---\n" label;
        match o.Prefix_runtime.Executor.attribution with
        | Some a -> print_string (Prefix_runtime.Attribution.render ~n:8 a)
        | None -> ()
      in
      run_with "baseline" (fun heap -> Prefix_runtime.Policy.baseline costs heap);
      run_with "PreFix" (fun heap ->
          Prefix_runtime.Prefix_policy.policy costs heap plan
            Prefix_runtime.Policy.no_classification);
      0
  in
  Cmd.v
    (Cmd.info "hotspots"
       ~doc:"Attribute cache/TLB misses to allocation sites, baseline vs PreFix")
    Term.(const run $ bench_arg)

(* --- lifetimes *)

let lifetimes_cmd =
  let run name =
    match get_workload name with
    | Error e -> prerr_endline e; 1
    | Ok w ->
      let trace = w.generate ~scale:Workload.Profiling ~seed:7 () in
      let stats = Trace_stats.analyze trace in
      let plan = Pipeline.plan_with_stats ~config:Harness.pipeline_config
          ~variant:Plan.HdsHot stats trace in
      print_string
        (Prefix_core.Lifetimes.report stats
           ~trace_len:(Prefix_trace.Trace.length trace)
           plan.placed_objects);
      0
  in
  Cmd.v
    (Cmd.info "lifetimes"
       ~doc:"Classify a benchmark's placed objects by profiled lifetime range")
    Term.(const run $ bench_arg)

(* --- validate *)

let validate_cmd =
  let run () =
    let failures = ref 0 in
    let check name ok detail =
      if not ok then begin
        incr failures;
        Printf.printf "FAIL %-30s %s\n" name detail
      end
      else Printf.printf "ok   %s\n" name
    in
    List.iter
      (fun (w : Workload.t) ->
        List.iter
          (fun scale ->
            let trace = w.generate ~scale ~seed:7 () in
            let violations = Prefix_trace.Trace.validate trace in
            check
              (Printf.sprintf "%s/%s trace" w.name (Workload.scale_name scale))
              (violations = [])
              (match violations with
              | [] -> ""
              | v :: _ -> Format.asprintf "%a" Prefix_trace.Trace.pp_violation v);
            if scale = Workload.Profiling then begin
              let stats = Trace_stats.analyze trace in
              List.iter
                (fun variant ->
                  let plan =
                    Pipeline.plan_with_stats ~config:Harness.pipeline_config ~variant stats
                      trace
                  in
                  check
                    (Printf.sprintf "%s plan %s" w.name (Plan.variant_name variant))
                    (Plan.validate plan = Ok ())
                    (match Plan.validate plan with Error e -> e | Ok () -> ""))
                [ Plan.Hot; Plan.Hds; Plan.HdsHot ]
            end)
          [ Workload.Profiling; Workload.Long ])
      Registry.all;
    if !failures = 0 then begin
      print_endline "all checks passed";
      0
    end
    else begin
      Printf.printf "%d failures\n" !failures;
      1
    end
  in
  Cmd.v
    (Cmd.info "validate"
       ~doc:"Validate every workload trace and every generated plan")
    Term.(const run $ const ())

(* --- all *)

let all_cmd =
  let run verbose =
    Harness.verbose := verbose;
    print_string (Report.run_all ());
    0
  in
  Cmd.v (Cmd.info "all" ~doc:"Reproduce every table and figure")
    Term.(const run $ verbose_arg)

let () =
  let info =
    Cmd.info "prefix" ~version:"1.0.0"
      ~doc:"PreFix (CGO 2025) reproduction: profile-guided heap layout optimization"
  in
  exit (Cmd.eval' (Cmd.group info [ list_cmd; trace_cmd; plan_cmd; run_cmd; hotspots_cmd; lifetimes_cmd; experiment_cmd; validate_cmd; all_cmd ]))
