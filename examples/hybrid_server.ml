(* The hybrid approach of §2.2.2: object ids *and* calling context.

   The paper notes that on non-deterministic programs (large server
   applications) neither mechanism alone is enough: calling context is
   imprecise (many objects share a call stack), and dynamic instance ids
   assume the allocation interleaving of the training run.  This example
   builds a "server" whose one allocation site is reached from two call
   paths whose interleaving depends on request arrival order, shows the
   id-only plan misfiring on a differently-ordered run, and the hybrid
   plan staying precise.

   Run with:  dune exec examples/hybrid_server.exe *)

module B = Prefix_workloads.Builder
module Rng = Prefix_util.Rng
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy

let ctx_conn = 100 (* accept path: allocates the hot connection state *)
let ctx_log = 200 (* logging path: allocates cold records *)

(* [arrival_seed] shuffles how the two paths interleave — the
   non-determinism of a real server. *)
let server ~arrival_seed () =
  let b = B.create ~seed:3 () in
  let rng = Rng.create arrival_seed in
  let conns = ref [] in
  let n_conn = ref 0 in
  for _ = 1 to 30 do
    if Rng.int rng 3 = 0 && !n_conn < 4 then begin
      (* accept(): connection state, hot *)
      incr n_conn;
      conns := B.alloc b ~site:1 ~ctx:ctx_conn 48 :: !conns
    end
    else begin
      (* log(): record, written once *)
      let r = B.alloc b ~site:1 ~ctx:ctx_log 48 in
      B.access b r 0
    end
  done;
  (* Request processing hammers the connection state. *)
  for _ = 1 to 500 do
    List.iter (fun c -> B.access b c 0) (List.rev !conns)
  done;
  B.trace b

let capture_stats plan trace =
  let stats = Prefix_trace.Trace_stats.analyze trace in
  let hot = Prefix_trace.Trace_stats.hot_objects stats in
  let hot_set = Hashtbl.create 8 in
  List.iter
    (fun (o : Prefix_trace.Trace_stats.obj_info) -> Hashtbl.replace hot_set o.obj ())
    hot;
  let cls = { Policy.is_hot = Hashtbl.mem hot_set; is_hds = (fun _ -> false) } in
  let outcome =
    Executor.run
      ~policy:(fun heap ->
        Prefix_runtime.Prefix_policy.policy Executor.default_config.costs heap plan cls)
      trace
  in
  (outcome.metrics.region_hot_objects, outcome.metrics.region_objects)

let () =
  let training = server ~arrival_seed:1 () in
  let production = server ~arrival_seed:42 () in

  let id_only = Pipeline.plan ~variant:Plan.Hot training in
  let hybrid =
    Pipeline.plan
      ~config:{ Pipeline.default_config with hybrid_context = true }
      ~variant:Plan.Hot training
  in
  List.iter
    (fun (cp : Plan.counter_plan) ->
      Format.printf "hybrid plan counter %d: pattern %a, gate ctx %s@." cp.counter
        Prefix_core.Context.pp cp.pattern
        (match cp.required_ctx with Some c -> string_of_int c | None -> "-"))
    hybrid.counters;

  let report label plan =
    let hot, all = capture_stats plan production in
    Printf.printf "%-22s placed %d objects, %d of them hot\n" label all hot
  in
  print_endline "--- production run with a different arrival order ---";
  report "object ids only:" id_only;
  report "ids + calling context:" hybrid;
  print_endline
    "(the id-only plan spends preallocated slots on whatever allocation\n\
    \ happens to carry the profiled instance number; the gated counter\n\
    \ numbers the accept path's allocations only, so the connection\n\
    \ state is captured regardless of the interleaving)"
