(* Crash safety walkthrough: framed traces, lenient decode, and
   kill-then-resume durable runs.

   Three acts:
   1. Write a trace in the framed (v2) binary format, flip one byte,
      and watch the strict reader reject it while the lenient reader
      recovers everything except the corrupted frame — reporting the
      exact event range that was lost.
   2. Hand the survivors to the sanitizer, which repairs the dangling
      frees/accesses the hole left behind into a strictly replayable
      trace.
   3. Run a benchmark durably (checkpointing at segment boundaries),
      "crash" it right after its third checkpoint write, resume from
      the directory, and check the resumed report is byte-identical to
      an uninterrupted run.

   Run with:  dune exec examples/crash_safety.exe *)

module Binfmt = Prefix_trace.Binfmt
module Trace = Prefix_trace.Trace
module Sanitizer = Prefix_trace.Sanitizer
module Workload = Prefix_workloads.Workload
module Checkpoint = Prefix_runtime.Checkpoint
module Durable = Prefix_experiments.Durable
module Executor = Prefix_runtime.Executor

let temp_dir name =
  let dir = Filename.temp_file name "" in
  Sys.remove dir;
  Prefix_util.Fsio.mkdir_p dir;
  dir

let () =
  let wl = Prefix_workloads.Registry.find "libc" in
  let trace = wl.generate ~scale:Workload.Profiling ~seed:7 () in

  (* --- Act 1: one flipped byte in a framed trace ------------------- *)
  let data = Binfmt.to_bytes_framed ~frame_events:4096 trace in
  Printf.printf "framed v2 encoding: %d events in %d bytes\n"
    (Trace.length trace) (Bytes.length data);
  let pos = Bytes.length data / 2 in
  Bytes.set data pos (Char.chr (Char.code (Bytes.get data pos) lxor 0x10));
  (match Binfmt.read data with
  | Ok _ -> assert false
  | Error e -> Printf.printf "strict reader: rejected (%s)\n" e);
  let lenient =
    match Binfmt.read_lenient data with Ok l -> l | Error e -> failwith e
  in
  Printf.printf "lenient reader: %d/%d events recovered, %d frame(s) skipped\n"
    (Trace.length lenient.lr_trace)
    (Trace.length trace) lenient.lr_frames_skipped;
  List.iter
    (fun r -> Format.printf "  lost %a@." Binfmt.pp_lost_range r)
    lenient.lr_lost;

  (* --- Act 2: repair the hole -------------------------------------- *)
  let repaired, report = Sanitizer.sanitize lenient.lr_trace in
  Printf.printf
    "sanitizer: %d dropped, %d synthesized, %d rewritten -> strict replay: "
    report.dropped report.synthesized report.rewritten;
  let outcome = Executor.run_baseline repaired in
  Printf.printf "%.0f cycles, no exceptions\n"
    outcome.metrics.cycles.total_cycles;

  (* --- Act 3: kill a durable run, then resume it ------------------- *)
  let cfg dir =
    { (Durable.default ~dir) with
      every = 1;
      throttle_ms = 0.;
      scale = Workload.Profiling;
      streaming = true;
      segment_events = Some 1024 }
  in
  let clean =
    Durable.render (Durable.run_benchmark (cfg (temp_dir "prefix-clean")) wl)
  in
  let dir = temp_dir "prefix-crash" in
  let exception Crash in
  Checkpoint.set_after_save (fun n -> if n >= 3 then raise Crash);
  (match Durable.run_benchmark (cfg dir) wl with
  | _ -> assert false
  | exception Crash ->
    Printf.printf "durable run: crashed after checkpoint #3 in %s\n" dir);
  Checkpoint.set_after_save (fun _ -> ());
  let resumed = Durable.render (Durable.run_benchmark (cfg dir) wl) in
  Printf.printf "resumed run:\n%s" resumed;
  Printf.printf "byte-identical to the uninterrupted run: %b\n"
    (String.equal clean resumed)
