(* Object recycling (§2.4, Figure 7) on a swissmap-style workload: one
   allocation site creates an endless stream of short-lived objects; the
   plan preallocates a handful of slots and maps the stream onto them
   modulo N, with liveness checks guaranteeing correctness even when the
   profile underestimates concurrency.

   Run with:  dune exec examples/recycling_demo.exe *)

module B = Prefix_workloads.Builder
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Prefix_policy = Prefix_runtime.Prefix_policy
module M = Prefix_runtime.Metrics

(* Groups of [group] tables created, probed and destroyed, [rounds]
   times over; metadata allocations fragment the freed space so the
   baseline keeps moving. *)
let program ~rounds ~group () =
  let b = B.create ~seed:11 () in
  for r = 0 to rounds - 1 do
    let tables = List.init group (fun _ -> B.alloc b ~site:1 256) in
    List.iter (fun t -> Prefix_workloads.Patterns.sweep b ~write:true ~stride:64 t) tables;
    Prefix_workloads.Patterns.random_accesses b tables ~n:64;
    if r mod 3 = 0 then ignore (Prefix_workloads.Patterns.cold_block b ~site:5 ~size:144 1);
    B.compute b 500;
    List.iter (fun t -> B.free b t) tables
  done;
  B.trace b

let () =
  let prof = program ~rounds:60 ~group:6 () in
  let plan = Pipeline.plan ~variant:Plan.Hot prof in
  Format.printf "plan: %a@." Plan.pp_summary plan;
  List.iter
    (fun (cp : Plan.counter_plan) ->
      match cp.recycle with
      | Some rb ->
        Printf.printf "counter %d recycles %d slots of %d B for site(s) [%s]\n" cp.counter
          rb.n_slots rb.slot_bytes
          (String.concat ";" (List.map string_of_int cp.counter_sites))
      | None -> Printf.printf "counter %d: no recycling\n" cp.counter)
    plan.counters;

  (* Replay a longer run — more rounds AND a bigger group than profiled,
     to show the overflow fallback keeping things correct. *)
  List.iter
    (fun (label, group) ->
      let long = program ~rounds:600 ~group () in
      let base = Executor.run_baseline long in
      let opt =
        Executor.run
          ~policy:(fun heap ->
            Prefix_policy.policy Executor.default_config.costs heap plan
              Policy.no_classification)
          long
      in
      Printf.printf
        "%s: time %+.2f%%, malloc/free calls avoided %s, peak %s -> %s B\n" label
        (M.time_pct_change ~baseline:base.metrics opt.metrics)
        (Prefix_util.Tablefmt.fmt_int opt.metrics.calls_avoided)
        (Prefix_util.Tablefmt.fmt_int base.metrics.peak_bytes)
        (Prefix_util.Tablefmt.fmt_int opt.metrics.peak_bytes))
    [ ("same concurrency (group=6) ", 6); ("higher concurrency (group=12)", 12) ]
