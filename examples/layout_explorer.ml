(* Layout explorer: run Algorithm 1 on hand-written stream sets and
   compare the resulting layouts, including the paper's Figure 2 input.

   Run with:  dune exec examples/layout_explorer.exe *)

module Hds = Prefix_hds.Hds
module Layout = Prefix_core.Layout
module Offsets = Prefix_core.Offsets

let show name streams =
  Printf.printf "--- %s\n" name;
  let ohds = List.map (fun (objs, refs) -> Hds.make ~objs ~refs) streams in
  let r = Layout.reconstitute ohds in
  List.iter (fun h -> Format.printf "  rhds: %a@." Hds.pp h) r.rhds;
  if r.singletons <> [] then
    Printf.printf "  singletons: [%s]\n"
      (String.concat ";" (List.map string_of_int r.singletons));
  let order = Layout.placement_order r in
  Printf.printf "  order: [%s]\n" (String.concat "; " (List.map string_of_int order));
  (* Give every object 32 bytes and show the offsets. *)
  let offsets = Offsets.assign ~size_of:(fun _ -> 32) order in
  List.iteri
    (fun i (s : Offsets.slot) ->
      Printf.printf "  slot %d: offset %4d (obj %d)\n" i s.offset (List.nth order i))
    (Offsets.slots offsets);
  assert (Layout.disjoint r.rhds)

let () =
  (* Two disjoint streams: both included unchanged. *)
  show "disjoint" [ ([ 1; 2; 3 ], 100); ([ 4; 5 ], 50) ];
  (* Overlap on one object: merged around the shared member. *)
  show "overlapping pair" [ ([ 1; 2 ], 100); ([ 3; 1 ], 80) ];
  (* A third stream overlapping an already-merged one: split, remainder
     becomes its own stream (or a singleton). *)
  show "split" [ ([ 1; 2 ], 100); ([ 3; 1 ], 80); ([ 2; 4; 5 ], 60); ([ 2; 6 ], 40) ];
  (* The paper's Figure 2 example. *)
  show "figure 2 (cc1)"
    [ ([ 2012; 2009 ], 1000);
      ([ 2018; 2009 ], 900);
      ([ 2012; 1963 ], 800);
      ([ 1963; 1967 ], 700);
      ([ 2419; 24 ], 600);
      ([ 2017; 22 ], 500);
      ([ 22; 23 ], 400);
      ([ 2419; 2422 ], 300);
      ([ 2012; 2016 ], 200);
      ([ 2017; 2018 ], 100) ]
