(* mcf end to end: the paper's running example (§2.2.1), shown in full —
   profile a short training run, inspect the detected streams and the
   inferred (site, instance-id) contexts, then evaluate the plans on the
   long input against the HDS [8] and HALO baselines.

   Run with:  dune exec examples/mcf_pipeline.exe *)

module Workload = Prefix_workloads.Workload
module Registry = Prefix_workloads.Registry
module Trace_stats = Prefix_trace.Trace_stats
module Detector = Prefix_hds.Detector
module Hds = Prefix_hds.Hds
module Layout = Prefix_core.Layout
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Context = Prefix_core.Context
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy

let () =
  let wl = Registry.find "mcf" in

  (* --- Profiling run (the training input). *)
  let prof = wl.generate ~scale:Workload.Profiling ~seed:7 () in
  let stats = Trace_stats.analyze prof in
  Printf.printf "profiling trace: %d events\n" (Prefix_trace.Trace.length prof);
  let hot = Trace_stats.hot_objects stats in
  Printf.printf "hot objects (%d):\n" (List.length hot);
  List.iter
    (fun (o : Trace_stats.obj_info) ->
      Printf.printf "  obj %d: site %d, instance #%d, %d B, %d accesses\n" o.obj o.site
        o.instance (max o.size o.alloc_size) o.accesses)
    hot;

  (* --- Stream detection and reconstitution (Algorithm 1). *)
  let ohds = Detector.detect_with_stats stats prof in
  Printf.printf "detected %d streams; top:\n" (List.length ohds);
  List.iteri
    (fun i h -> if i < 3 then Format.printf "  %a@." Hds.pp h)
    ohds;
  let layout = Layout.reconstitute ohds in
  Format.printf "placement order: [%s]@."
    (String.concat "; " (List.map string_of_int (Layout.placement_order layout)));

  (* --- Context inference: the paper's two tandem trios on two shared
     counters. *)
  let plan = Pipeline.plan_with_stats ~variant:Plan.HdsHot stats prof in
  List.iter
    (fun (cp : Plan.counter_plan) ->
      Format.printf "counter %d <- sites [%s], pattern %a@." cp.counter
        (String.concat ";" (List.map string_of_int cp.counter_sites))
        Context.pp cp.pattern)
    plan.counters;

  (* --- Evaluation on the long input. *)
  let long = wl.generate ~scale:Workload.Long ~seed:8 () in
  let costs = Executor.default_config.costs in
  let base = Executor.run_baseline long in
  let delta m = Prefix_runtime.Metrics.time_pct_change ~baseline:base.metrics m in
  let hds_plan = Prefix_runtime.Hds_policy.plan_of_trace stats prof in
  let halo_plan = Prefix_halo.Halo.plan_of_trace stats prof in
  let run name policy =
    let o = Executor.run ~policy long in
    Printf.printf "%-14s %+6.2f%% vs baseline\n" name (delta o.metrics)
  in
  run "HDS [8]" (fun heap -> Prefix_runtime.Hds_policy.policy costs heap hds_plan Policy.no_classification);
  run "HALO" (fun heap -> Prefix_runtime.Halo_policy.policy costs heap halo_plan Policy.no_classification);
  run "PreFix" (fun heap -> Prefix_runtime.Prefix_policy.policy costs heap plan Policy.no_classification)
