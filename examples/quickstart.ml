(* Quickstart: the whole PreFix pipeline on a tiny hand-written program.

   A "program" here is a memory trace: allocations, accesses, frees.  We
   write one with a few hot objects buried among cold ones, profile it,
   build a PreFix plan, and replay it under the baseline and the
   optimized policy to see the difference.

   Run with:  dune exec examples/quickstart.exe *)

module B = Prefix_workloads.Builder
module Patterns = Prefix_workloads.Patterns
module Trace_stats = Prefix_trace.Trace_stats
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Prefix_policy = Prefix_runtime.Prefix_policy

(* A toy program: 256 small "node" objects (site 1) that a loop keeps
   visiting in order, each separated at allocation time by cold config
   blocks from site 9 — so the baseline spreads the hot set across far
   more cache lines and pages than it needs. *)
let program () =
  let b = B.create ~seed:42 () in
  let hot =
    List.init 256 (fun _ ->
        let n = B.alloc b ~site:1 32 in
        ignore (Patterns.cold_block b ~site:9 ~size:1024 2);
        n)
  in
  for _round = 1 to 150 do
    (* The hot data stream: all nodes, touched in the same order. *)
    List.iter (fun n -> B.access b n 0) hot;
    B.compute b 400
  done;
  List.iter (fun n -> B.free b n) hot;
  B.trace b

let () =
  let trace = program () in
  Printf.printf "trace: %d events, %d objects, %d heap accesses\n"
    (Prefix_trace.Trace.length trace)
    (Prefix_trace.Trace.num_objects trace)
    (Prefix_trace.Trace.num_accesses trace);

  (* 1. Profile. *)
  let stats = Trace_stats.analyze trace in
  let hot = Trace_stats.hot_objects stats in
  Printf.printf "profile: %d hot objects cover %.1f%% of heap accesses\n"
    (List.length hot)
    (100.
    *. Trace_stats.heap_access_share stats
         (List.map (fun (o : Trace_stats.obj_info) -> o.obj) hot));

  (* 2. Plan: detect streams, reconstitute, infer id patterns, assign
     offsets in the preallocated region. *)
  let plan = Pipeline.plan ~variant:Plan.HdsHot trace in
  Format.printf "%a@." Plan.pp_summary plan;

  (* 3. Replay under baseline and PreFix. *)
  let base = Executor.run_baseline trace in
  let opt =
    Executor.run
      ~policy:(fun heap ->
        Prefix_policy.policy Executor.default_config.costs heap plan
          Policy.no_classification)
      trace
  in
  Printf.printf "baseline: %.0f cycles (L1 miss %.2f%%)\n"
    base.metrics.cycles.total_cycles
    (100. *. base.metrics.l1_miss_rate);
  Printf.printf "PreFix:   %.0f cycles (L1 miss %.2f%%)  => %+.2f%% execution time\n"
    opt.metrics.cycles.total_cycles
    (100. *. opt.metrics.l1_miss_rate)
    (Prefix_runtime.Metrics.time_pct_change ~baseline:base.metrics opt.metrics)
