(* Tests for Prefix_heap: Allocator and Arena. *)

open Prefix_heap

let check_ok a =
  match Allocator.check_invariants a with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_malloc_basics () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 10 in
  Alcotest.(check bool) "allocated" true (Allocator.is_allocated a p);
  Alcotest.(check (option int)) "rounded to granule" (Some 16) (Allocator.block_size a p);
  Alcotest.(check int) "live bytes" 16 (Allocator.live_bytes a);
  check_ok a

let test_malloc_alignment () =
  let a = Allocator.create () in
  for i = 1 to 50 do
    let p = Allocator.malloc a i in
    Alcotest.(check int) "16-aligned" 0 (p mod Allocator.alignment)
  done;
  check_ok a

let test_malloc_disjoint () =
  let a = Allocator.create () in
  let blocks = List.init 64 (fun i -> (Allocator.malloc a ((i mod 7 * 24) + 8), ())) in
  let addrs = List.map fst blocks in
  let sorted = List.sort compare addrs in
  let rec disjoint = function
    | x :: (y :: _ as rest) ->
      (match Allocator.block_size a x with
      | Some s -> Alcotest.(check bool) "no overlap" true (x + s <= y)
      | None -> Alcotest.fail "lost block");
      disjoint rest
    | _ -> ()
  in
  disjoint sorted;
  check_ok a

let test_free_reuse () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 64 in
  Allocator.free a p;
  Alcotest.(check int) "live zero" 0 (Allocator.live_bytes a);
  let q = Allocator.malloc a 64 in
  Alcotest.(check int) "freed space reused" p q;
  check_ok a

let test_free_errors () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 64 in
  Allocator.free a p;
  Alcotest.check_raises "double free" (Invalid_argument "Allocator.free: address not allocated")
    (fun () -> Allocator.free a p);
  Alcotest.check_raises "wild free" (Invalid_argument "Allocator.free: address not allocated")
    (fun () -> Allocator.free a 12345)

let test_coalescing () =
  let a = Allocator.create () in
  let p1 = Allocator.malloc a 32 in
  let p2 = Allocator.malloc a 32 in
  let p3 = Allocator.malloc a 32 in
  ignore p3;
  Allocator.free a p1;
  Allocator.free a p2;
  check_ok a;
  (* A request the size of both coalesced blocks must fit at p1. *)
  let q = Allocator.malloc a 64 in
  Alcotest.(check int) "coalesced" p1 q;
  check_ok a

let test_best_fit () =
  let a = Allocator.create () in
  let small = Allocator.malloc a 32 in
  let sep1 = Allocator.malloc a 16 in
  let big = Allocator.malloc a 128 in
  let sep2 = Allocator.malloc a 16 in
  ignore sep1;
  ignore sep2;
  Allocator.free a small;
  Allocator.free a big;
  (* A 32-byte request should take the 32-byte hole, not split the 128. *)
  let q = Allocator.malloc a 32 in
  Alcotest.(check int) "best fit" small q;
  check_ok a

let test_realloc_in_place () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 64 in
  Alcotest.(check int) "shrink stays" p (Allocator.realloc a p 32);
  Alcotest.(check int) "grow within rounding stays" p (Allocator.realloc a p 64);
  check_ok a

let test_realloc_move () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 32 in
  let _wall = Allocator.malloc a 32 in
  let q = Allocator.realloc a p 256 in
  Alcotest.(check bool) "moved" true (q <> p);
  Alcotest.(check bool) "old freed" false (Allocator.is_allocated a p);
  Alcotest.(check (option int)) "new size" (Some 256) (Allocator.block_size a q);
  check_ok a

let test_peak_tracking () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 1000 in
  Allocator.free a p;
  ignore (Allocator.malloc a 10);
  Alcotest.(check int) "peak is high-water mark" 1008 (Allocator.peak_bytes a)

let test_counters () =
  let a = Allocator.create () in
  let p = Allocator.malloc a 8 in
  let p = Allocator.realloc a p 512 in
  Allocator.free a p;
  Alcotest.(check int) "mallocs" 1 (Allocator.malloc_calls a);
  Alcotest.(check int) "frees" 1 (Allocator.free_calls a);
  Alcotest.(check int) "reallocs" 1 (Allocator.realloc_calls a)

(* Random operation sequences preserve all invariants. *)
let prop_random_ops =
  QCheck.Test.make ~name:"allocator invariants under random ops" ~count:60
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 200) (int_range 0 99)))
    (fun (seed, ops) ->
      let a = Allocator.create () in
      let rng = Prefix_util.Rng.create seed in
      let live = ref [] in
      List.iter
        (fun op ->
          if op < 60 || !live = [] then begin
            let size = 1 + Prefix_util.Rng.int rng 300 in
            live := Allocator.malloc a size :: !live
          end
          else if op < 90 then begin
            let i = Prefix_util.Rng.int rng (List.length !live) in
            let p = List.nth !live i in
            Allocator.free a p;
            live := List.filteri (fun j _ -> j <> i) !live
          end
          else begin
            let i = Prefix_util.Rng.int rng (List.length !live) in
            let p = List.nth !live i in
            let q = Allocator.realloc a p (1 + Prefix_util.Rng.int rng 400) in
            live := List.mapi (fun j x -> if j = i then q else x) !live
          end)
        ops;
      Allocator.check_invariants a = Ok ())

(* ---- Arena ---- *)

let slots l = List.map (fun (o, s) -> { Arena.slot_offset = o; slot_size = s }) l

let test_arena_geometry () =
  let a = Allocator.create () in
  let ar = Arena.create a (slots [ (0, 64); (64, 32); (96, 128) ]) in
  Alcotest.(check int) "slots" 3 (Arena.num_slots ar);
  Alcotest.(check int) "size" 224 (Arena.size ar);
  Alcotest.(check int) "slot addr" (Arena.base ar + 64) (Arena.slot_addr ar 1);
  Alcotest.(check int) "slot size" 128 (Arena.slot_size ar 2)

let test_arena_overlap_rejected () =
  let a = Allocator.create () in
  Alcotest.check_raises "overlap" (Invalid_argument "Arena.create: overlapping slots")
    (fun () -> ignore (Arena.create a (slots [ (0, 64); (32, 32) ])))

let test_arena_contains () =
  let a = Allocator.create () in
  let ar = Arena.create a (slots [ (0, 64); (64, 32) ]) in
  Alcotest.(check bool) "inside" true (Arena.contains ar (Arena.base ar + 50));
  Alcotest.(check bool) "past end" false (Arena.contains ar (Arena.base ar + 96));
  Alcotest.(check bool) "before" false (Arena.contains ar (Arena.base ar - 1))

let test_arena_slot_of_addr () =
  let a = Allocator.create () in
  let ar = Arena.create a (slots [ (0, 64); (64, 32); (112, 16) ]) in
  let base = Arena.base ar in
  Alcotest.(check (option int)) "first" (Some 0) (Arena.slot_of_addr ar base);
  Alcotest.(check (option int)) "second" (Some 1) (Arena.slot_of_addr ar (base + 80));
  Alcotest.(check (option int)) "gap" None (Arena.slot_of_addr ar (base + 100));
  Alcotest.(check (option int)) "third" (Some 2) (Arena.slot_of_addr ar (base + 112))

let test_arena_occupancy () =
  let a = Allocator.create () in
  let ar = Arena.create a (slots [ (0, 64) ]) in
  Alcotest.(check bool) "starts free" true (Arena.is_free ar 0);
  Arena.occupy ar 0;
  Alcotest.(check int) "live" 1 (Arena.live_slots ar);
  Alcotest.check_raises "double occupy" (Invalid_argument "Arena.occupy: slot already live")
    (fun () -> Arena.occupy ar 0);
  Arena.release ar 0;
  Alcotest.check_raises "double release" (Invalid_argument "Arena.release: slot already free")
    (fun () -> Arena.release ar 0)

let test_arena_empty () =
  let a = Allocator.create () in
  let ar = Arena.create a [] in
  Alcotest.(check bool) "contains nothing" false (Arena.contains ar 0);
  Arena.dispose ar a (* must be a no-op *)

let test_arena_dispose () =
  let a = Allocator.create () in
  let before = Allocator.live_bytes a in
  let ar = Arena.create a (slots [ (0, 1024) ]) in
  Alcotest.(check bool) "reserved" true (Allocator.live_bytes a > before);
  Arena.dispose ar a;
  Alcotest.(check int) "returned" before (Allocator.live_bytes a)

let suite =
  [ ( "allocator",
      [ Alcotest.test_case "malloc basics" `Quick test_malloc_basics;
        Alcotest.test_case "alignment" `Quick test_malloc_alignment;
        Alcotest.test_case "disjoint blocks" `Quick test_malloc_disjoint;
        Alcotest.test_case "free + reuse" `Quick test_free_reuse;
        Alcotest.test_case "free errors" `Quick test_free_errors;
        Alcotest.test_case "coalescing" `Quick test_coalescing;
        Alcotest.test_case "best fit" `Quick test_best_fit;
        Alcotest.test_case "realloc in place" `Quick test_realloc_in_place;
        Alcotest.test_case "realloc move" `Quick test_realloc_move;
        Alcotest.test_case "peak tracking" `Quick test_peak_tracking;
        Alcotest.test_case "call counters" `Quick test_counters;
        QCheck_alcotest.to_alcotest prop_random_ops ] );
    ( "arena",
      [ Alcotest.test_case "geometry" `Quick test_arena_geometry;
        Alcotest.test_case "overlap rejected" `Quick test_arena_overlap_rejected;
        Alcotest.test_case "contains" `Quick test_arena_contains;
        Alcotest.test_case "slot_of_addr" `Quick test_arena_slot_of_addr;
        Alcotest.test_case "occupancy" `Quick test_arena_occupancy;
        Alcotest.test_case "empty arena" `Quick test_arena_empty;
        Alcotest.test_case "dispose" `Quick test_arena_dispose ] ) ]
