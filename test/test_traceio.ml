(* Tests for the trace pruner and the binary trace format. *)

open Prefix_trace
module B = Prefix_workloads.Builder

(* ---- Pruner ---- *)

let pruner_input () =
  let b = B.create ~seed:21 () in
  let hot = B.alloc b ~site:1 64 in
  let cold = B.alloc b ~site:2 64 in
  for _ = 1 to 50 do
    (* a long same-object run on the hot object, one cold access *)
    for k = 0 to 9 do
      B.access b hot (k * 4 mod 64)
    done;
    B.access b cold 0
  done;
  B.free b hot;
  B.free b cold;
  (B.trace b, hot, cold)

let test_prune_drops_cold_accesses () =
  let trace, hot, _cold = pruner_input () in
  let cfg = { Pruner.keep_objects = (fun o -> o = hot); max_run = max_int } in
  let pruned = Pruner.prune cfg trace in
  Trace.iter
    (fun e ->
      match (e : Event.t) with
      | Access { obj; _ } -> Alcotest.(check int) "only hot accesses" hot obj
      | _ -> ())
    pruned;
  (* All non-access events survive: 2 allocs + 2 frees. *)
  let non_access =
    Trace.fold (fun n e -> if Event.is_heap_access e then n else n + 1) 0 pruned
  in
  Alcotest.(check int) "alloc/free preserved" 4 non_access

let test_prune_caps_runs () =
  let trace, hot, _ = pruner_input () in
  let cfg = { Pruner.keep_objects = (fun o -> o = hot); max_run = 3 } in
  let pruned = Pruner.prune cfg trace in
  (* Each 10-access run is capped at 3: 50 runs * 3 accesses. *)
  Alcotest.(check int) "runs capped" 150 (Trace.num_accesses pruned)

let test_prune_preserves_validity () =
  let trace, hot, _ = pruner_input () in
  let cfg = { Pruner.keep_objects = (fun o -> o = hot); max_run = 2 } in
  let pruned = Pruner.prune cfg trace in
  Alcotest.(check int) "valid" 0 (List.length (Trace.validate pruned))

let test_prune_config_for_hot () =
  let trace, hot, _ = pruner_input () in
  let stats = Trace_stats.analyze trace in
  let cfg = Pruner.config_for_hot stats in
  Alcotest.(check bool) "hot kept" true (cfg.keep_objects hot);
  let pruned = Pruner.prune cfg trace in
  Alcotest.(check bool) "reduction positive" true
    (Pruner.reduction ~before:trace ~after:pruned > 0.3)

let test_prune_keeps_instance_numbering () =
  (* Instance numbering over the pruned trace must match the original. *)
  let trace, _, _ = pruner_input () in
  let stats = Trace_stats.analyze trace in
  let cfg = Pruner.config_for_hot stats in
  let pruned = Pruner.prune cfg trace in
  let s1 = Trace_stats.analyze trace and s2 = Trace_stats.analyze pruned in
  List.iter
    (fun (o : Trace_stats.obj_info) ->
      let o' = Trace_stats.obj_info s2 o.obj in
      Alcotest.(check int) "same instance" o.instance o'.instance;
      Alcotest.(check int) "same site" o.site o'.site)
    (Trace_stats.objects s1)

(* ---- Binary format ---- *)

let test_binfmt_roundtrip_workloads () =
  List.iter
    (fun name ->
      let w = Prefix_workloads.Registry.find name in
      let trace = w.generate ~scale:Prefix_workloads.Workload.Profiling ~seed:7 () in
      match Binfmt.read (Binfmt.to_bytes trace) with
      | Error e -> Alcotest.failf "%s: %s" name e
      | Ok trace' ->
        Alcotest.(check int) (name ^ " length") (Trace.length trace) (Trace.length trace');
        (* spot-check a few events *)
        List.iter
          (fun i ->
            Alcotest.(check string) (name ^ " event")
              (Event.to_string (Trace.get trace i))
              (Event.to_string (Trace.get trace' i)))
          [ 0; Trace.length trace / 2; Trace.length trace - 1 ])
    [ "mcf"; "libc"; "swissmap" ]

let test_binfmt_compact () =
  let w = Prefix_workloads.Registry.find "libc" in
  let trace = w.generate ~scale:Prefix_workloads.Workload.Profiling ~seed:7 () in
  let binary = Bytes.length (Binfmt.to_bytes trace) in
  let text = String.length (Serialize.to_string trace) in
  Alcotest.(check bool)
    (Printf.sprintf "binary (%d B) at most half of text (%d B)" binary text)
    true
    (binary * 2 < text)

let test_binfmt_rejects_garbage () =
  (match Binfmt.read (Bytes.of_string "nope") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad magic");
  (match Binfmt.read (Bytes.of_string "PFXT") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncation");
  (* valid header claiming one event but no payload *)
  let buf = Buffer.create 8 in
  Buffer.add_string buf "PFXT\001\001";
  match Binfmt.read (Buffer.to_bytes buf) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted missing event"

let test_binfmt_file_io () =
  let w = Prefix_workloads.Registry.find "mcf" in
  let trace = w.generate ~scale:Prefix_workloads.Workload.Profiling ~seed:7 () in
  let path = Filename.temp_file "prefix_trace" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Binfmt.write_file path trace;
      match Binfmt.read_file path with
      | Ok t -> Alcotest.(check int) "roundtrip" (Trace.length trace) (Trace.length t)
      | Error e -> Alcotest.fail e)

let prop_binfmt_roundtrip =
  let gen =
    QCheck.Gen.(
      list_size (int_range 0 80)
        (oneof
           [ map3
               (fun o s size -> Event.Alloc { obj = o; site = s; ctx = s; size = size + 1; thread = 0 })
               (int_range 1 1000) (int_range 1 50) (int_range 0 5000);
             map2
               (fun o off -> Event.Access { obj = o; offset = off; write = off mod 2 = 0; thread = 0 })
               (int_range 1 1000) (int_range 0 10_000);
             map (fun o -> Event.Free { obj = o; thread = 0 }) (int_range 1 1000);
             map2 (fun o s -> Event.Realloc { obj = o; new_size = s + 1; thread = 0 })
               (int_range 1 1000) (int_range 0 5000);
             map (fun n -> Event.Compute { instrs = n; thread = 0 }) (int_range 0 100_000) ]))
  in
  QCheck.Test.make ~name:"binfmt roundtrips arbitrary event lists" ~count:300
    (QCheck.make gen)
    (fun es ->
      let t = Trace.of_list es in
      match Binfmt.read (Binfmt.to_bytes t) with
      | Ok t' -> Trace.to_list t' = es
      | Error _ -> false)

(* Decode fuzz: random byte flips and truncations of a valid encoding
   must yield [Ok] or [Error] — never an exception (and never an
   absurd allocation). *)
let prop_binfmt_decode_fuzz =
  let base =
    let b = B.create ~seed:33 () in
    let objs = Array.init 8 (fun i -> B.alloc b ~site:(i + 1) (32 * (i + 1))) in
    for k = 0 to 199 do
      B.access b objs.(k mod 8) (k mod 32)
    done;
    Array.iter (fun o -> B.free b o) objs;
    Binfmt.to_bytes (B.trace b)
  in
  let n = Bytes.length base in
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 8) (pair (int_range 0 (n - 1)) (int_range 0 255)))
        (int_range 0 n))
  in
  QCheck.Test.make ~name:"binfmt decode survives byte flips and truncation"
    ~count:500 (QCheck.make gen)
    (fun (flips, keep) ->
      let data = Bytes.sub base 0 keep in
      List.iter
        (fun (pos, v) ->
          if pos < keep then Bytes.set data pos (Char.chr v))
        flips;
      match Binfmt.read data with
      | Ok _ | Error _ -> true
      | exception _ -> false)

(* ---- varint extremes ---- *)

(* The signed (zig-zag) varint must round-trip the full 63-bit [int]
   range: [zigzag min_int] has bit 62 set, so the unsigned encoder
   must not reject it as "negative" (it only looks negative after the
   shift) and the decoder must accept an accumulator whose top bit is
   set.  This was broken before [put_uvarint63]/[get_uvarint63]. *)
let varint_roundtrip n =
  let buf = Buffer.create 10 in
  Binfmt.put_varint buf n;
  let c = { Binfmt.data = Buffer.to_bytes buf; pos = 0 } in
  match Binfmt.get_varint c with
  | Error e -> Alcotest.failf "varint %d: %s" n e
  | Ok n' ->
    Alcotest.(check int) (Printf.sprintf "varint %d" n) n n';
    Alcotest.(check int) "all bytes consumed" (Bytes.length c.Binfmt.data) c.Binfmt.pos

let test_varint_extremes () =
  List.iter varint_roundtrip
    [ 0; 1; -1; 63; 64; -64; -65; max_int; min_int; max_int - 1; min_int + 1;
      1 lsl 62; -(1 lsl 62); 0x7fffffff; -0x80000000 ]

let prop_varint_roundtrip =
  QCheck.Test.make ~name:"signed varint roundtrips the full int range" ~count:1000
    QCheck.(set_gen QCheck.Gen.int int)
    (fun n ->
      let buf = Buffer.create 10 in
      Binfmt.put_varint buf n;
      let c = { Binfmt.data = Buffer.to_bytes buf; pos = 0 } in
      Binfmt.get_varint c = Ok n && c.Binfmt.pos = Bytes.length c.Binfmt.data)

let test_event_int_extremes () =
  (* Whole events at the integer extremes, through v1 and v2.  The
     signed (delta-coded) fields — obj, site, ctx — span the full
     [int] range; sizes, offsets, threads and instruction counts are
     unsigned on this wire, so their extreme is [max_int]. *)
  let es : Event.t list =
    [ Alloc { obj = max_int; site = max_int; ctx = max_int; size = max_int; thread = max_int };
      Access { obj = min_int; offset = max_int; write = true; thread = 0 };
      Alloc { obj = min_int; site = min_int; ctx = min_int; size = 0; thread = 0 };
      Realloc { obj = min_int; new_size = max_int; thread = 0 };
      Compute { instrs = max_int; thread = 1 };
      Free { obj = max_int; thread = max_int } ]
  in
  let t = Trace.of_list es in
  (match Binfmt.read (Binfmt.to_bytes t) with
  | Error e -> Alcotest.failf "v1: %s" e
  | Ok t' -> Alcotest.(check bool) "v1 roundtrip" true (Trace.to_list t' = es));
  match Binfmt.read (Binfmt.to_bytes_framed ~frame_events:2 t) with
  | Error e -> Alcotest.failf "v2: %s" e
  | Ok t' -> Alcotest.(check bool) "v2 roundtrip" true (Trace.to_list t' = es)

(* ---- framed (v2) format ---- *)

let framed_input =
  lazy
    (let w = Prefix_workloads.Registry.find "libc" in
     w.generate ~scale:Prefix_workloads.Workload.Profiling ~seed:7 ())

let check_same_trace name a b =
  Alcotest.(check int) (name ^ " length") (Trace.length a) (Trace.length b);
  List.iter
    (fun i ->
      Alcotest.(check string)
        (Printf.sprintf "%s event %d" name i)
        (Event.to_string (Trace.get a i))
        (Event.to_string (Trace.get b i)))
    [ 0; Trace.length a / 3; Trace.length a / 2; Trace.length a - 1 ]

let test_framed_roundtrip_small_frames () =
  let trace = Lazy.force framed_input in
  List.iter
    (fun frame_events ->
      match Binfmt.read (Binfmt.to_bytes_framed ~frame_events trace) with
      | Error e -> Alcotest.failf "frame_events %d: %s" frame_events e
      | Ok t ->
        check_same_trace (Printf.sprintf "frames of %d" frame_events) trace t)
    [ 1; 7; 1000; 1_000_000 ]

let test_framed_matches_v1_decode () =
  let trace = Lazy.force framed_input in
  match
    (Binfmt.read (Binfmt.to_bytes trace),
     Binfmt.read (Binfmt.to_bytes_framed ~frame_events:999 trace))
  with
  | Ok v1, Ok v2 -> check_same_trace "v1 vs v2" v1 v2
  | Error e, _ | _, Error e -> Alcotest.fail e

let test_framed_strict_rejects_corruption () =
  let trace = Lazy.force framed_input in
  let data = Binfmt.to_bytes_framed ~frame_events:1000 trace in
  let n = Bytes.length data in
  List.iter
    (fun pos ->
      let d = Bytes.copy data in
      Bytes.set d pos (Char.chr (Char.code (Bytes.get d pos) lxor 0x01));
      match Binfmt.read d with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted a flipped byte at offset %d" pos)
    [ n / 4; n / 2; (3 * n) / 4 ];
  (* Losing the footer is also corruption for the strict reader. *)
  match Binfmt.read (Bytes.sub data 0 (n - 8)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a truncated file"

(* Byte offsets of every frame marker, so corruption can be aimed at
   one specific frame. *)
let frame_offsets data =
  let n = Bytes.length data in
  let acc = ref [] in
  for p = n - 4 downto 0 do
    if Bytes.sub_string data p 4 = "FRME" then acc := p :: !acc
  done;
  !acc

let test_framed_lenient_exact_loss () =
  let trace = Lazy.force framed_input in
  let total = Trace.length trace in
  let frame_events = 1000 in
  let data = Binfmt.to_bytes_framed ~frame_events trace in
  let offsets = frame_offsets data in
  let frames = List.length offsets in
  Alcotest.(check int) "frame count"
    ((total + frame_events - 1) / frame_events)
    frames;
  (* Corrupt exactly the k-th frame (a byte past its marker + header)
     and expect exactly its event range reported lost. *)
  List.iter
    (fun k ->
      let d = Bytes.copy data in
      let pos = List.nth offsets k + 24 in
      Bytes.set d pos (Char.chr (Char.code (Bytes.get d pos) lxor 0x40));
      match Binfmt.read_lenient d with
      | Error e -> Alcotest.fail e
      | Ok l ->
        let lost_from = k * frame_events in
        let lost_to = min total ((k + 1) * frame_events) in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "lost range of frame %d" k)
          [ (lost_from, lost_to) ]
          (List.map
             (fun r -> (r.Binfmt.lost_from, r.Binfmt.lost_to))
             l.Binfmt.lr_lost);
        Alcotest.(check int) "events lost" (lost_to - lost_from)
          (Binfmt.lenient_events_lost l);
        Alcotest.(check int) "events recovered"
          (total - (lost_to - lost_from))
          (Trace.length l.Binfmt.lr_trace);
        Alcotest.(check int) "frames ok" (frames - 1) l.Binfmt.lr_frames_ok;
        Alcotest.(check int) "frames skipped" 1 l.Binfmt.lr_frames_skipped;
        Alcotest.(check (option int)) "footer total" (Some total)
          l.Binfmt.lr_total_events)
    [ 0; frames / 2; frames - 1 ]

let test_framed_lenient_truncation () =
  let trace = Lazy.force framed_input in
  let data = Binfmt.to_bytes_framed ~frame_events:1000 trace in
  (* Cut mid-way: the tail (and the footer) are gone, so the total is
     unknowable and the surviving prefix is whole frames only. *)
  match Binfmt.read_lenient (Bytes.sub data 0 (Bytes.length data / 2)) with
  | Error e -> Alcotest.fail e
  | Ok l ->
    Alcotest.(check (option int)) "no footer" None l.Binfmt.lr_total_events;
    Alcotest.(check int) "whole frames only" 0
      (Trace.length l.Binfmt.lr_trace mod 1000);
    Alcotest.(check bool) "something recovered" true
      (Trace.length l.Binfmt.lr_trace > 0)

let test_binfmt_empty_file_message () =
  List.iter
    (fun data ->
      match Binfmt.read data with
      | Ok _ -> Alcotest.fail "accepted an empty/truncated input"
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "%S mentions truncation" e)
          true
          (let prefix = "empty or truncated file" in
           String.length e >= String.length prefix
           && String.sub e 0 (String.length prefix) = prefix))
    [ Bytes.create 0; Bytes.of_string "PF" ]

let test_stream_of_binary_file_frame_boundaries () =
  let trace = Lazy.force framed_input in
  let total = Trace.length trace in
  let frame_events = 512 in
  let path = Filename.temp_file "prefix_framed" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Binfmt.write_file_framed ~frame_events path trace;
      let stream = Stream.of_binary_file ~segment_events:frame_events path in
      let seen = ref 0 in
      Stream.iter_segments stream (fun ~base seg ->
          Alcotest.(check int) "segment starts on a frame boundary" 0
            (base mod frame_events);
          Alcotest.(check int) "segment base is the running total" !seen base;
          seen := !seen + Packed.length seg);
      Alcotest.(check int) "all events streamed" total !seen)

let suite =
  [ ( "pruner",
      [ Alcotest.test_case "drops cold accesses" `Quick test_prune_drops_cold_accesses;
        Alcotest.test_case "caps runs" `Quick test_prune_caps_runs;
        Alcotest.test_case "preserves validity" `Quick test_prune_preserves_validity;
        Alcotest.test_case "config for hot" `Quick test_prune_config_for_hot;
        Alcotest.test_case "keeps instance numbering" `Quick
          test_prune_keeps_instance_numbering ] );
    ( "binfmt",
      [ Alcotest.test_case "roundtrips workload traces" `Quick test_binfmt_roundtrip_workloads;
        Alcotest.test_case "compact vs text" `Quick test_binfmt_compact;
        Alcotest.test_case "rejects garbage" `Quick test_binfmt_rejects_garbage;
        Alcotest.test_case "file io" `Quick test_binfmt_file_io;
        QCheck_alcotest.to_alcotest prop_binfmt_roundtrip;
        QCheck_alcotest.to_alcotest prop_binfmt_decode_fuzz;
        Alcotest.test_case "varint extremes" `Quick test_varint_extremes;
        QCheck_alcotest.to_alcotest prop_varint_roundtrip;
        Alcotest.test_case "events at int extremes" `Quick test_event_int_extremes ] );
    ( "binfmt-v2",
      [ Alcotest.test_case "framed roundtrip, small frames" `Quick
          test_framed_roundtrip_small_frames;
        Alcotest.test_case "v2 decodes identically to v1" `Quick
          test_framed_matches_v1_decode;
        Alcotest.test_case "strict read rejects corruption" `Quick
          test_framed_strict_rejects_corruption;
        Alcotest.test_case "lenient read pins the exact lost range" `Quick
          test_framed_lenient_exact_loss;
        Alcotest.test_case "lenient read of a truncated file" `Quick
          test_framed_lenient_truncation;
        Alcotest.test_case "empty file error message" `Quick
          test_binfmt_empty_file_message;
        Alcotest.test_case "of_binary_file cuts segments at frame boundaries"
          `Quick test_stream_of_binary_file_frame_boundaries ] ) ]
