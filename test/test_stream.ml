(* The bounded-memory streaming engine, tested differentially against
   the materialized paths it mirrors:

   - Executor.run_stream ≡ Executor.run_packed (strict and lenient, on
     workload traces, injector-corrupted streams and arbitrary soup);
   - Trace_stats.analyze_stream ≡ Trace_stats.analyze_packed;
   - Detector over a stream ≡ Detector over the materialized trace;
   - Workload.generate_stream ≡ Workload.generate, for all 13 models;
   - the streaming text/binary file decoders round-trip.

   Streams are exercised with deliberately small, non-power-of-two
   segment sizes so every property crosses segment boundaries. *)

module Trace = Prefix_trace.Trace
module Event = Prefix_trace.Event
module Packed = Prefix_trace.Packed
module Stream = Prefix_trace.Stream
module Trace_stats = Prefix_trace.Trace_stats
module Serialize = Prefix_trace.Serialize
module Binfmt = Prefix_trace.Binfmt
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Detector = Prefix_hds.Detector
module Hds = Prefix_hds.Hds
module Workload = Prefix_workloads.Workload
module Registry = Prefix_workloads.Registry
module Injector = Prefix_faults.Injector

let costs = Executor.default_config.costs

let baseline heap = Policy.baseline costs heap

let recovery_list (r : Executor.recovery) =
  [ r.double_allocs; r.unknown_accesses; r.unknown_frees; r.unknown_reallocs;
    r.invalid_sizes; r.policy_failures ]

let seg = 61 (* prime, small: every test crosses many segment boundaries *)

let check_same ~what ?mode ?heatmap_objs ?attribute trace =
  let packed =
    Executor.run_packed ?mode ?heatmap_objs ?attribute ~policy:baseline
      (Packed.of_trace trace)
  in
  let streamed =
    Executor.run_stream ?mode ?heatmap_objs ?attribute ~policy:baseline
      (Stream.of_trace ~segment_events:seg trace)
  in
  Alcotest.(check bool) (what ^ ": metrics") true
    (streamed.Executor.metrics = packed.Executor.metrics);
  Alcotest.(check (list int)) (what ^ ": recovery")
    (recovery_list packed.Executor.recovery)
    (recovery_list streamed.Executor.recovery);
  (packed, streamed)

let workload_trace () =
  let wl = Registry.find "libc" in
  wl.generate ~scale:Workload.Profiling ~seed:7 ()

(* ---- segment plumbing ---- *)

let test_segment_bases () =
  let trace = workload_trace () in
  let n = Trace.length trace in
  let stream = Stream.of_trace ~segment_events:seg trace in
  let expected_base = ref 0 in
  Stream.iter_segments stream (fun ~base packed ->
      Alcotest.(check int) "bases are cumulative" !expected_base base;
      Alcotest.(check bool) "segments are full except the last" true
        (Packed.length packed = seg || base + Packed.length packed = n);
      expected_base := base + Packed.length packed);
  Alcotest.(check int) "segments cover the trace" n !expected_base;
  Alcotest.(check int) "length agrees" n (Stream.length stream);
  (* Streams are re-iterable: a second pass sees the same events. *)
  Alcotest.(check int) "re-iterable" n (Stream.length stream)

let test_roundtrips () =
  let trace = workload_trace () in
  let via_trace = Stream.to_trace (Stream.of_trace ~segment_events:seg trace) in
  Alcotest.(check bool) "of_trace/to_trace" true
    (Trace.to_list via_trace = Trace.to_list trace);
  let packed = Packed.of_trace trace in
  let via_packed = Stream.to_packed (Stream.of_packed ~segment_events:seg packed) in
  Alcotest.(check bool) "of_packed/to_packed" true
    (Trace.to_list (Packed.to_trace via_packed) = Trace.to_list trace)

(* ---- executor differential ---- *)

let test_strict_workload () =
  ignore (check_same ~what:"libc strict" (workload_trace ()))

let test_lenient_workload () =
  let _, streamed =
    check_same ~what:"libc lenient" ~mode:Policy.Lenient (workload_trace ())
  in
  Alcotest.(check int) "nothing recovered" 0
    (Executor.recovery_total streamed.Executor.recovery)

let test_heatmap_attribution () =
  (* Snapshot timing and heatmap time both key off the *global* event
     index, which only a correct [base] threading preserves across
     segments. *)
  let trace = workload_trace () in
  let packed, streamed =
    check_same ~what:"diagnostics" ~heatmap_objs:(fun obj -> obj mod 2 = 0)
      ~attribute:true trace
  in
  let render_hm = function
    | Some hm -> Prefix_cachesim.Heatmap.render hm
    | None -> "none"
  in
  Alcotest.(check string) "heatmap" (render_hm packed.Executor.heatmap)
    (render_hm streamed.Executor.heatmap);
  let render_at = function
    | Some a -> Prefix_runtime.Attribution.render a
    | None -> "none"
  in
  Alcotest.(check string) "attribution" (render_at packed.Executor.attribution)
    (render_at streamed.Executor.attribution)

let test_lenient_corrupted_every_kind () =
  let trace = workload_trace () in
  List.iter
    (fun kind ->
      List.iter
        (fun fault_seed ->
          let corrupted = Injector.inject kind ~seed:fault_seed ~rate:0.05 trace in
          ignore
            (check_same
               ~what:(Printf.sprintf "%s/seed %d" (Injector.kind_name kind) fault_seed)
               ~mode:Policy.Lenient corrupted))
        [ 0; 1; 2 ])
    Injector.all_kinds

let soup_gen =
  QCheck.Gen.(
    let ev =
      oneof
        [ (fun st ->
            (Event.Alloc
               { obj = int_range 0 30 st; site = int_range 1 5 st;
                 ctx = int_range 1 5 st; size = int_range (-8) 128 st;
                 thread = int_range 0 2 st } : Event.t));
          (fun st ->
            Event.Access
              { obj = int_range 0 30 st; offset = int_range 0 127 st; write = bool st;
                thread = int_range 0 2 st });
          (fun st -> Event.Free { obj = int_range 0 30 st; thread = int_range 0 2 st });
          (fun st ->
            Event.Realloc
              { obj = int_range 0 30 st; new_size = int_range (-8) 256 st;
                thread = int_range 0 2 st });
          (fun st ->
            Event.Compute { instrs = int_range 1 50 st; thread = int_range 0 2 st }) ]
    in
    pair (list_size (int_range 0 300) ev) (int_range 1 64))

let prop_lenient_soup =
  QCheck.Test.make ~name:"run_stream ≡ run_packed on arbitrary lenient replays"
    ~count:300 (QCheck.make soup_gen)
    (fun (es, segment_events) ->
      let trace = Trace.of_list es in
      let packed =
        Executor.run_packed ~mode:Policy.Lenient ~policy:baseline (Packed.of_trace trace)
      in
      let streamed =
        Executor.run_stream ~mode:Policy.Lenient ~policy:baseline
          (Stream.of_trace ~segment_events trace)
      in
      streamed.Executor.metrics = packed.Executor.metrics
      && recovery_list streamed.Executor.recovery = recovery_list packed.Executor.recovery)

let prop_strict_raises_same =
  QCheck.Test.make ~name:"run_stream ≡ run_packed on strict anomaly detection"
    ~count:200 (QCheck.make soup_gen)
    (fun (es, segment_events) ->
      let trace = Trace.of_list es in
      let outcome_of run =
        match run () with
        | (o : Executor.outcome) -> Ok o.Executor.metrics
        | exception Invalid_argument m -> Error m
      in
      let packed =
        outcome_of (fun () -> Executor.run_packed ~policy:baseline (Packed.of_trace trace))
      in
      let streamed =
        outcome_of (fun () ->
            Executor.run_stream ~policy:baseline (Stream.of_trace ~segment_events trace))
      in
      streamed = packed)

(* ---- analysis differential ---- *)

let stats_fingerprint s =
  ( Trace_stats.objects s,
    Trace_stats.sites s,
    Trace_stats.total_heap_accesses s,
    Trace_stats.max_live_objects s,
    Trace_stats.reused_ids s,
    Trace_stats.trace_length s )

let test_analyze_stream_workload () =
  let trace = workload_trace () in
  let materialized = Trace_stats.analyze_packed (Packed.of_trace trace) in
  let streamed = Trace_stats.analyze_stream (Stream.of_trace ~segment_events:seg trace) in
  Alcotest.(check bool) "identical statistics" true
    (stats_fingerprint streamed = stats_fingerprint materialized)

let prop_analyze_stream_soup =
  QCheck.Test.make ~name:"analyze_stream ≡ analyze_packed on arbitrary traces"
    ~count:300 (QCheck.make soup_gen)
    (fun (es, segment_events) ->
      let trace = Trace.of_list es in
      stats_fingerprint (Trace_stats.analyze_stream (Stream.of_trace ~segment_events trace))
      = stats_fingerprint (Trace_stats.analyze_packed (Packed.of_trace trace)))

let test_analyze_stream_corrupted () =
  let trace = workload_trace () in
  List.iter
    (fun kind ->
      let corrupted = Injector.inject kind ~seed:1 ~rate:0.05 trace in
      Alcotest.(check bool)
        (Injector.kind_name kind ^ ": identical statistics")
        true
        (stats_fingerprint
           (Trace_stats.analyze_stream (Stream.of_trace ~segment_events:seg corrupted))
        = stats_fingerprint (Trace_stats.analyze_packed (Packed.of_trace corrupted))))
    Injector.all_kinds

let test_detector_stream () =
  let trace = workload_trace () in
  let stats = Trace_stats.analyze trace in
  let seq = Detector.hot_sequence stats trace in
  let seq' =
    Detector.hot_sequence_stream stats (Stream.of_trace ~segment_events:seg trace)
  in
  Alcotest.(check (array int)) "hot sequences equal" seq seq';
  let objs hs = List.map Hds.objs hs in
  Alcotest.(check bool) "detected streams equal" true
    (objs (Detector.detect_stream stats (Stream.of_trace ~segment_events:seg trace))
    = objs (Detector.detect_with_stats stats trace))

(* ---- workload generation differential ---- *)

let test_generate_stream_all_workloads () =
  (* Every model, Profiling scale: the push-based stream must emit
     event-for-event what the materializing generator records. *)
  List.iter
    (fun name ->
      let wl = Registry.find name in
      let trace = wl.generate ~scale:Workload.Profiling ~seed:7 () in
      let stream =
        Workload.generate_stream wl ~scale:Workload.Profiling ~seed:7
          ~segment_events:997 ()
      in
      Alcotest.(check bool) (name ^ ": identical events") true
        (Trace.to_list (Stream.to_trace stream) = Trace.to_list trace))
    Registry.names

let test_generate_stream_threaded () =
  let wl = Registry.find "mcf" in
  let trace = wl.generate ~threads:3 ~scale:Workload.Profiling ~seed:7 () in
  let stream =
    Workload.generate_stream wl ~threads:3 ~scale:Workload.Profiling ~seed:7 ()
  in
  Alcotest.(check bool) "threads reach the fill" true
    (Trace.to_list (Stream.to_trace stream) = Trace.to_list trace)

let test_huge_tier () =
  Alcotest.(check int) "profiling is base/8" 10
    (Workload.iterations Workload.Profiling ~base:80);
  Alcotest.(check int) "long is base" 80 (Workload.iterations Workload.Long ~base:80);
  Alcotest.(check int) "huge is 10x long" 800
    (Workload.iterations Workload.Huge ~base:80);
  Alcotest.(check int) "profiling never degenerates" 1
    (Workload.iterations Workload.Profiling ~base:4);
  Alcotest.(check string) "scale name" "huge" (Workload.scale_name Workload.Huge)

(* ---- streaming file decoders ---- *)

let with_temp_file suffix body =
  let path = Filename.temp_file "prefix_stream" suffix in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> body path)

let test_text_file_stream () =
  let trace = workload_trace () in
  with_temp_file ".txt" @@ fun path ->
  let oc = open_out path in
  Serialize.write oc trace;
  close_out oc;
  let stream = Stream.of_text_file ~segment_events:seg path in
  Alcotest.(check bool) "text round-trip" true
    (Trace.to_list (Stream.to_trace stream) = Trace.to_list trace)

let test_text_file_stream_error () =
  with_temp_file ".txt" @@ fun path ->
  let oc = open_out path in
  output_string oc "# ok\nC 10 0\nnot an event\n";
  close_out oc;
  let stream = Stream.of_text_file path in
  match Stream.length stream with
  | _ -> Alcotest.fail "accepted a malformed line"
  | exception Failure msg ->
    Alcotest.(check bool) ("error carries file and line: " ^ msg) true
      (let has needle =
         let nl = String.length needle and ml = String.length msg in
         let rec go i = i + nl <= ml && (String.sub msg i nl = needle || go (i + 1)) in
         go 0
       in
       has path && has "line 3")

let test_binary_file_stream () =
  let trace = workload_trace () in
  with_temp_file ".bin" @@ fun path ->
  Binfmt.write_file path trace;
  let stream = Stream.of_binary_file ~segment_events:seg path in
  Alcotest.(check bool) "binary round-trip" true
    (Trace.to_list (Stream.to_trace stream) = Trace.to_list trace);
  (* The channel decoder must agree with the buffered one. *)
  let via_read = Result.get_ok (Binfmt.read_file path) in
  Alcotest.(check int) "lengths agree" (Trace.length via_read) (Stream.length stream)

let test_binary_file_stream_truncated () =
  let trace = workload_trace () in
  with_temp_file ".bin" @@ fun path ->
  Binfmt.write_file path trace;
  let full = In_channel.with_open_bin path In_channel.input_all in
  let oc = open_out_bin path in
  output_string oc (String.sub full 0 (String.length full - 7));
  close_out oc;
  match Stream.length (Stream.of_binary_file path) with
  | _ -> Alcotest.fail "accepted a truncated file"
  | exception Failure _ -> ()

let suite =
  [ ( "stream",
      [ Alcotest.test_case "segment bases" `Quick test_segment_bases;
        Alcotest.test_case "round-trips" `Quick test_roundtrips;
        Alcotest.test_case "strict workload" `Quick test_strict_workload;
        Alcotest.test_case "lenient workload" `Quick test_lenient_workload;
        Alcotest.test_case "heatmap + attribution" `Quick test_heatmap_attribution;
        Alcotest.test_case "corrupted traces" `Quick test_lenient_corrupted_every_kind;
        QCheck_alcotest.to_alcotest prop_lenient_soup;
        QCheck_alcotest.to_alcotest prop_strict_raises_same;
        Alcotest.test_case "analyze_stream workload" `Quick test_analyze_stream_workload;
        QCheck_alcotest.to_alcotest prop_analyze_stream_soup;
        Alcotest.test_case "analyze_stream corrupted" `Quick test_analyze_stream_corrupted;
        Alcotest.test_case "detector over streams" `Quick test_detector_stream;
        Alcotest.test_case "generate_stream ≡ generate" `Quick
          test_generate_stream_all_workloads;
        Alcotest.test_case "generate_stream threaded" `Quick test_generate_stream_threaded;
        Alcotest.test_case "huge tier" `Quick test_huge_tier;
        Alcotest.test_case "text file stream" `Quick test_text_file_stream;
        Alcotest.test_case "text file error" `Quick test_text_file_stream_error;
        Alcotest.test_case "binary file stream" `Quick test_binary_file_stream;
        Alcotest.test_case "binary truncated" `Quick test_binary_file_stream_truncated ] ) ]
