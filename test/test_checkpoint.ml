(* Crash-safety tests: session snapshot/restore determinism, the
   checkpoint container (CRC, rotation, torn-write fallback), and
   durable benchmark runs resuming to byte-identical reports. *)

module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Metrics = Prefix_runtime.Metrics
module Workload = Prefix_workloads.Workload
module Stream = Prefix_trace.Stream
module Packed = Prefix_trace.Packed

let costs = Executor.default_config.costs

(* A small but representative workload trace: enough events for several
   segments, exercised under every policy family. *)
let eval_trace =
  lazy
    (let w = Prefix_workloads.Registry.find "libc" in
     w.generate ~scale:Workload.Profiling ~seed:7 ())

let policies () =
  let w = Prefix_workloads.Registry.find "libc" in
  let prof = w.generate ~scale:Workload.Profiling ~seed:7 () in
  let stats = Prefix_trace.Trace_stats.analyze prof in
  let plan =
    Prefix_core.Pipeline.plan_with_stats ~variant:Prefix_core.Plan.HdsHot stats prof
  in
  let hds_plan = Prefix_runtime.Hds_policy.plan_of_trace stats prof in
  let halo_plan = Prefix_halo.Halo.plan_of_trace stats prof in
  [ ("baseline", fun heap -> Policy.baseline costs heap);
    ( "hds",
      fun heap ->
        Prefix_runtime.Hds_policy.policy costs heap hds_plan Policy.no_classification );
    ( "halo",
      fun heap ->
        Prefix_runtime.Halo_policy.policy costs heap halo_plan Policy.no_classification );
    ( "prefix",
      fun heap ->
        Prefix_runtime.Prefix_policy.policy costs heap plan Policy.no_classification ) ]

let run_clean policy stream =
  let heap = Prefix_heap.Allocator.create () in
  let p = policy heap in
  let st =
    Executor.session_create ~config:Executor.default_config ~mode:Policy.Strict
      ~heatmap_objs:None ~attribute:false ~heap ~p
  in
  Stream.iter_segments stream (fun ~base seg -> Executor.replay_segment st ~base seg);
  Executor.session_finish st

(* Replay up to segment [k], serialize + deserialize the session there,
   and finish on the restored copy. *)
let run_snapshotted policy stream ~snap_at =
  let heap = Prefix_heap.Allocator.create () in
  let p = policy heap in
  let st =
    ref
      (Executor.session_create ~config:Executor.default_config ~mode:Policy.Strict
         ~heatmap_objs:None ~attribute:false ~heap ~p)
  in
  let seg_idx = ref 0 in
  Stream.iter_segments stream (fun ~base seg ->
      Executor.replay_segment !st ~base seg;
      incr seg_idx;
      if !seg_idx = snap_at then begin
        let s = Executor.session_serialize !st in
        match Executor.session_deserialize s with
        | Ok st' -> st := st'
        | Error e -> Alcotest.fail e
      end);
  Executor.session_finish !st

let check_same_outcome name (a : Executor.outcome) (b : Executor.outcome) =
  Alcotest.(check bool)
    (name ^ ": identical metrics") true (a.metrics = b.metrics);
  Alcotest.(check bool)
    (name ^ ": identical recovery") true (a.recovery = b.recovery)

let test_session_snapshot_roundtrip () =
  let trace = Lazy.force eval_trace in
  let packed = Packed.of_trace trace in
  let segs = 1 + (Packed.length packed / 2048) in
  List.iter
    (fun (name, policy) ->
      let stream () = Stream.of_packed ~segment_events:2048 packed in
      let clean = run_clean policy (stream ()) in
      (* Snapshot at the first, a middle, and the last boundary. *)
      List.iter
        (fun snap_at ->
          let resumed = run_snapshotted policy (stream ()) ~snap_at in
          check_same_outcome (Printf.sprintf "%s@%d" name snap_at) clean resumed)
        [ 1; segs / 2; segs ])
    (policies ())

(* ---- checkpoint container ---- *)

module Checkpoint = Prefix_runtime.Checkpoint
module Fsio = Prefix_util.Fsio

let sample_header =
  { Checkpoint.kind = "session";
    meta = [ ("bench", "libc"); ("scale", "long"); ("seed", "1234") ];
    event_index = 987654 }

let test_container_roundtrip () =
  let payload = String.init 4096 (fun i -> Char.chr (i * 31 mod 256)) in
  let data = Checkpoint.encode sample_header ~payload in
  match Checkpoint.decode data with
  | Error e -> Alcotest.fail e
  | Ok (h, p) ->
    Alcotest.(check string) "kind" sample_header.kind h.Checkpoint.kind;
    Alcotest.(check int) "event index" sample_header.event_index
      h.Checkpoint.event_index;
    Alcotest.(check (list (pair string string)))
      "meta" sample_header.meta h.Checkpoint.meta;
    Alcotest.(check string) "payload" payload p

let test_container_rejects_corruption () =
  let payload = String.init 4096 (fun i -> Char.chr (i * 31 mod 256)) in
  let data = Checkpoint.encode sample_header ~payload in
  let n = String.length data in
  (* A flip anywhere — magic, header, payload — must be caught. *)
  List.iter
    (fun pos ->
      let b = Bytes.of_string data in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x04));
      match Checkpoint.decode (Bytes.to_string b) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted a flip at offset %d" pos)
    [ 0; 5; n / 2; n - 1 ];
  (* ... and so must any truncation. *)
  List.iter
    (fun keep ->
      match Checkpoint.decode (String.sub data 0 keep) with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted truncation to %d bytes" keep)
    [ 0; 3; n / 2; n - 1 ]

let test_container_meta_check () =
  (match
     Checkpoint.check_meta sample_header ~kind:"session"
       ~meta:[ ("bench", "libc"); ("seed", "1234") ]
   with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  List.iter
    (fun (kind, meta) ->
      match Checkpoint.check_meta sample_header ~kind ~meta with
      | Error _ -> ()
      | Ok () -> Alcotest.fail "accepted mismatched identity")
    [ ("stats", [ ("bench", "libc") ]);  (* wrong kind *)
      ("session", [ ("bench", "mcf") ]);  (* wrong value *)
      ("session", [ ("trace_digest", "d41d8") ]) (* missing key *) ]

let with_temp_dir f =
  let dir = Filename.temp_file "prefix_ckpt" "" in
  Sys.remove dir;
  Fsio.mkdir_p dir;
  let rec rm p =
    if Sys.is_directory p then begin
      Array.iter (fun e -> rm (Filename.concat p e)) (Sys.readdir p);
      Sys.rmdir p
    end
    else Sys.remove p
  in
  Fun.protect ~finally:(fun () -> try rm dir with Sys_error _ -> ()) (fun () -> f dir)

let test_save_rotation_and_torn_fallback () =
  with_temp_dir @@ fun dir ->
  let path = Filename.concat dir "x.ckpt" in
  let header i = { sample_header with Checkpoint.event_index = i } in
  Checkpoint.save ~path (header 1) ~payload:"first";
  Checkpoint.save ~path (header 2) ~payload:"second";
  (* Intact: the current copy wins. *)
  (match Checkpoint.load ~path with
  | Ok (h, p, `Current) ->
    Alcotest.(check int) "current event" 2 h.Checkpoint.event_index;
    Alcotest.(check string) "current payload" "second" p
  | Ok (_, _, `Previous) -> Alcotest.fail "read .prev despite intact current"
  | Error e -> Alcotest.fail e);
  (* Tear the current copy mid-write: .prev must absorb it. *)
  let oc = open_out_bin path in
  output_string oc "PFXC\001torn";
  close_out oc;
  (match Checkpoint.validate ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "validated a torn file");
  (match Checkpoint.load ~path with
  | Ok (h, p, `Previous) ->
    Alcotest.(check int) "prev event" 1 h.Checkpoint.event_index;
    Alcotest.(check string) "prev payload" "first" p
  | Ok (_, _, `Current) -> Alcotest.fail "read the torn current copy"
  | Error e -> Alcotest.fail e);
  (* Both copies torn: the loss is reported, not masked. *)
  let oc = open_out_bin (Checkpoint.prev_path path) in
  output_string oc "garbage";
  close_out oc;
  match Checkpoint.load ~path with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "loaded from two torn copies"

(* ---- durable runs: interruption, torn state, identity ---- *)

module Durable = Prefix_experiments.Durable
module Registry = Prefix_workloads.Registry

let durable_cfg ~dir =
  { Durable.dir;
    every = 1;
    throttle_ms = 0.;  (* checkpoint at full cadence: more kill points *)
    guardrails = Checkpoint.no_guardrails;
    jobs = 1;
    scale = Workload.Profiling;
    streaming = true;
    segment_events = Some 1024 }

exception Killed

(* Run [wl] durably but abort (in-process) right after the [k]-th
   checkpoint write, as a crash there would. *)
let run_killed cfg wl ~kill_after =
  Checkpoint.reset_saves ();
  Checkpoint.set_after_save (fun n -> if n >= kill_after then raise Killed);
  Fun.protect
    ~finally:(fun () ->
      Checkpoint.set_after_save (fun _ -> ());
      Checkpoint.reset_saves ())
    (fun () ->
      match Durable.run_benchmark cfg wl with
      | r -> Some (Durable.render r)  (* fewer saves than k: ran to the end *)
      | exception Killed -> None)

let test_durable_resume_after_every_kill_point () =
  let wl = Registry.find "libc" in
  with_temp_dir @@ fun clean_dir ->
  let clean = Durable.render (Durable.run_benchmark (durable_cfg ~dir:clean_dir) wl) in
  (* Re-running over the finished directory replays nothing and renders
     the same report. *)
  Alcotest.(check string) "finished dir is idempotent" clean
    (Durable.render (Durable.run_benchmark (durable_cfg ~dir:clean_dir) wl));
  (* Kill after the 1st, 2nd, ... save until a run completes instead;
     every interrupted directory must resume to the clean report. *)
  let rec go kill_after =
    if kill_after > 500 then Alcotest.fail "durable run never completed"
    else
      with_temp_dir @@ fun dir ->
      let cfg = durable_cfg ~dir in
      match run_killed cfg wl ~kill_after with
      | Some report ->
        Alcotest.(check string) "uninterrupted report" clean report
      | None ->
        let resumed = Durable.render (Durable.run_benchmark cfg wl) in
        Alcotest.(check string)
          (Printf.sprintf "resume after kill at save %d" kill_after)
          clean resumed;
        go (kill_after + 1)
  in
  go 1

let test_durable_resume_with_torn_checkpoint () =
  let wl = Registry.find "libc" in
  with_temp_dir @@ fun clean_dir ->
  let clean = Durable.render (Durable.run_benchmark (durable_cfg ~dir:clean_dir) wl) in
  with_temp_dir @@ fun dir ->
  let cfg = durable_cfg ~dir in
  (match run_killed cfg wl ~kill_after:4 with
  | None -> ()
  | Some _ -> Alcotest.fail "expected the run to be interrupted");
  (* Tear every rolling snapshot the kill left behind; resume must fall
     back to .prev (or restart the phase) and still converge. *)
  let bdir = Filename.concat dir wl.name in
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".ckpt" then begin
        let p = Filename.concat bdir f in
        let data =
          match Fsio.read_file p with Ok d -> d | Error e -> Alcotest.fail e
        in
        let oc = open_out_bin p in
        output_string oc (String.sub data 0 (String.length data / 2));
        close_out oc
      end)
    (Sys.readdir bdir);
  let resumed = Durable.render (Durable.run_benchmark cfg wl) in
  Alcotest.(check string) "resume over torn snapshots" clean resumed

(* The materialized (non-streamed) evaluation path checkpoints and
   resumes identically. *)
let test_durable_materialized_kill_resume () =
  let wl = Registry.find "libc" in
  let cfg ~dir = { (durable_cfg ~dir) with streaming = false } in
  with_temp_dir @@ fun clean_dir ->
  let clean = Durable.render (Durable.run_benchmark (cfg ~dir:clean_dir) wl) in
  List.iter
    (fun kill_after ->
      with_temp_dir @@ fun dir ->
      match run_killed (cfg ~dir) wl ~kill_after with
      | Some report -> Alcotest.(check string) "ran to the end" clean report
      | None ->
        let resumed = Durable.render (Durable.run_benchmark (cfg ~dir) wl) in
        Alcotest.(check string)
          (Printf.sprintf "materialized resume after save %d" kill_after)
          clean resumed)
    [ 2; 5; 9 ]

(* Killing a pooled (jobs=2) durable run mid-flight and resuming it
   must converge on the sequential run's reports, for both benchmarks. *)
let test_durable_jobs2_kill_resume () =
  let names = [ "libc"; "swissmap" ] in
  let cfg2 ~dir = { (durable_cfg ~dir) with jobs = 2 } in
  with_temp_dir @@ fun clean_dir ->
  let clean =
    String.concat ""
      (List.map Durable.render (Durable.run_many (cfg2 ~dir:clean_dir) names))
  in
  with_temp_dir @@ fun dir ->
  let cfg = cfg2 ~dir in
  Checkpoint.reset_saves ();
  Checkpoint.set_after_save (fun n -> if n >= 5 then raise Killed);
  (match Durable.run_many cfg names with
  | _ -> Alcotest.fail "expected the pooled run to be interrupted"
  | exception Killed -> ()
  | exception _ -> () (* a pool domain died mid-kill; same crash site *));
  Checkpoint.set_after_save (fun _ -> ());
  Checkpoint.reset_saves ();
  let resumed =
    String.concat "" (List.map Durable.render (Durable.run_many cfg names))
  in
  Alcotest.(check string) "pooled resume" clean resumed

let test_durable_refuses_foreign_directory () =
  let wl = Registry.find "libc" in
  with_temp_dir @@ fun dir ->
  let cfg = durable_cfg ~dir in
  (match run_killed cfg wl ~kill_after:2 with
  | None -> ()
  | Some _ -> Alcotest.fail "expected the run to be interrupted");
  (* Same directory, different run identity: refused loudly rather than
     silently blending two runs' state. *)
  let other = { cfg with segment_events = Some 2048 } in
  match Durable.run_benchmark other wl with
  | _ -> Alcotest.fail "resumed under a mismatched configuration"
  | exception Failure msg ->
    Alcotest.(check bool) "names the mismatch" true
      (String.length msg > 0)

let suite =
  [ ( "checkpoint",
      [ Alcotest.test_case "session snapshot roundtrips mid-replay" `Quick
          test_session_snapshot_roundtrip;
        Alcotest.test_case "container roundtrip" `Quick test_container_roundtrip;
        Alcotest.test_case "container rejects corruption" `Quick
          test_container_rejects_corruption;
        Alcotest.test_case "container identity check" `Quick test_container_meta_check;
        Alcotest.test_case "save rotation and torn fallback" `Quick
          test_save_rotation_and_torn_fallback ] );
    ( "durable",
      [ Alcotest.test_case "resume after every kill point" `Slow
          test_durable_resume_after_every_kill_point;
        Alcotest.test_case "resume over torn checkpoints" `Quick
          test_durable_resume_with_torn_checkpoint;
        Alcotest.test_case "materialized kill/resume" `Quick
          test_durable_materialized_kill_resume;
        Alcotest.test_case "pooled (jobs=2) kill/resume" `Quick
          test_durable_jobs2_kill_resume;
        Alcotest.test_case "refuses a foreign directory" `Quick
          test_durable_refuses_foreign_directory ] ) ]
