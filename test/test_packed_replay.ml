(* Differential tests: Executor.run_packed vs the boxed reference
   interpreter (Executor.run_boxed).  The packed fast path must be
   observationally identical — same Metrics.t (every counter, cycle
   estimate and rate), same lenient-mode recovery tallies, same
   heatmaps and attribution — on well-formed workload traces, on
   injector-corrupted streams of every fault kind, and on arbitrary
   event soup. *)

module Trace = Prefix_trace.Trace
module Event = Prefix_trace.Event
module Packed = Prefix_trace.Packed
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Injector = Prefix_faults.Injector

let costs = Executor.default_config.costs

let baseline heap = Policy.baseline costs heap

let recovery_list (r : Executor.recovery) =
  [ r.double_allocs; r.unknown_accesses; r.unknown_frees; r.unknown_reallocs;
    r.invalid_sizes; r.policy_failures ]

let check_same ~what ?mode ?heatmap_objs ?attribute trace =
  let boxed = Executor.run_boxed ?mode ?heatmap_objs ?attribute ~policy:baseline trace in
  let packed =
    Executor.run_packed ?mode ?heatmap_objs ?attribute ~policy:baseline
      (Packed.of_trace trace)
  in
  Alcotest.(check bool) (what ^ ": metrics") true
    (boxed.Executor.metrics = packed.Executor.metrics);
  Alcotest.(check (list int)) (what ^ ": recovery")
    (recovery_list boxed.Executor.recovery)
    (recovery_list packed.Executor.recovery);
  (boxed, packed)

let workload_trace () =
  let wl = Prefix_workloads.Registry.find "libc" in
  wl.generate ~scale:Profiling ~seed:7 ()

let test_strict_workload () = ignore (check_same ~what:"libc strict" (workload_trace ()))

let test_lenient_workload () =
  (* On a well-formed trace, lenient must equal strict and recover
     nothing. *)
  let boxed, _ = check_same ~what:"libc lenient" ~mode:Policy.Lenient (workload_trace ()) in
  Alcotest.(check int) "nothing recovered" 0
    (Executor.recovery_total boxed.Executor.recovery)

let test_heatmap_attribution () =
  let trace = workload_trace () in
  let boxed, packed =
    check_same ~what:"diagnostics" ~heatmap_objs:(fun obj -> obj mod 2 = 0)
      ~attribute:true trace
  in
  let render_hm = function
    | Some hm ->
      Printf.sprintf "%d samples, %d bytes" (Prefix_cachesim.Heatmap.samples hm)
        (Prefix_cachesim.Heatmap.footprint_bytes hm)
    | None -> "none"
  in
  Alcotest.(check string) "heatmap" (render_hm boxed.Executor.heatmap)
    (render_hm packed.Executor.heatmap);
  let render_at = function
    | Some a -> Prefix_runtime.Attribution.render a
    | None -> "none"
  in
  Alcotest.(check string) "attribution" (render_at boxed.Executor.attribution)
    (render_at packed.Executor.attribution)

let test_lenient_corrupted_every_kind () =
  let trace = workload_trace () in
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let corrupted = Injector.inject kind ~seed ~rate:0.05 trace in
          let boxed, _ =
            check_same
              ~what:(Printf.sprintf "%s/seed %d" (Injector.kind_name kind) seed)
              ~mode:Policy.Lenient corrupted
          in
          (* The fault must actually exercise the recovery machinery
             for the kinds that corrupt replay state.  Dropped frees
             and truncation only leak, reordering can land in a
             still-consistent order, and size mutations may only shrink
             or inflate (still-valid sizes). *)
          match kind with
          | Injector.Duplicate_frees | Injector.Collide_ids ->
            Alcotest.(check bool)
              (Injector.kind_name kind ^ ": recovery exercised")
              true
              (Executor.recovery_total boxed.Executor.recovery > 0)
          | Injector.Drop_frees | Injector.Reorder | Injector.Truncate
          | Injector.Mutate_sizes -> ())
        [ 0; 1; 2 ])
    Injector.all_kinds

let test_negative_object_ids () =
  (* Hand-built traces may use negative ids; the dense table's Hashtbl
     fallback must agree with the boxed path in both modes. *)
  let es : Event.t list =
    [ Alloc { obj = -3; site = 1; ctx = 1; size = 64; thread = 0 };
      Access { obj = -3; offset = 0; write = false; thread = 0 };
      Alloc { obj = 7; site = 2; ctx = 2; size = 32; thread = 1 };
      Access { obj = -3; offset = 32; write = true; thread = 0 };
      Realloc { obj = -3; new_size = 128; thread = 0 };
      Access { obj = -3; offset = 96; write = false; thread = 0 };
      Access { obj = 7; offset = 0; write = false; thread = 1 };
      Free { obj = -3; thread = 0 };
      Free { obj = 7; thread = 1 } ]
  in
  ignore (check_same ~what:"negative ids strict" (Trace.of_list es));
  let abuse : Event.t list =
    es @ [ Free { obj = -3; thread = 0 };
           Access { obj = -99; offset = 0; write = false; thread = 0 } ]
  in
  let boxed, _ =
    check_same ~what:"negative ids lenient" ~mode:Policy.Lenient (Trace.of_list abuse)
  in
  Alcotest.(check int) "recovered stray free + access" 2
    (Executor.recovery_total boxed.Executor.recovery)

(* Arbitrary event soup, replayed leniently: ids collide, sizes go
   non-positive, frees dangle — every anomaly the recovery paths
   handle.  Offsets/sizes stay small and non-negative-address so the
   allocator's address space stays sane. *)
let soup_gen =
  QCheck.Gen.(
    let ev =
      oneof
        [ (fun st ->
            (Event.Alloc
               { obj = int_range 0 30 st; site = int_range 1 5 st;
                 ctx = int_range 1 5 st; size = int_range (-8) 128 st;
                 thread = int_range 0 2 st } : Event.t));
          (fun st ->
            Event.Access
              { obj = int_range 0 30 st; offset = int_range 0 127 st; write = bool st;
                thread = int_range 0 2 st });
          (fun st -> Event.Free { obj = int_range 0 30 st; thread = int_range 0 2 st });
          (fun st ->
            Event.Realloc
              { obj = int_range 0 30 st; new_size = int_range (-8) 256 st;
                thread = int_range 0 2 st });
          (fun st ->
            Event.Compute { instrs = int_range 1 50 st; thread = int_range 0 2 st }) ]
    in
    list_size (int_range 0 300) ev)

let prop_lenient_soup =
  QCheck.Test.make ~name:"packed ≡ boxed on arbitrary lenient replays" ~count:300
    (QCheck.make soup_gen)
    (fun es ->
      let trace = Trace.of_list es in
      let boxed = Executor.run_boxed ~mode:Policy.Lenient ~policy:baseline trace in
      let packed =
        Executor.run_packed ~mode:Policy.Lenient ~policy:baseline (Packed.of_trace trace)
      in
      boxed.Executor.metrics = packed.Executor.metrics
      && recovery_list boxed.Executor.recovery = recovery_list packed.Executor.recovery)

let prop_strict_raises_same =
  QCheck.Test.make ~name:"packed ≡ boxed on strict anomaly detection" ~count:200
    (QCheck.make soup_gen)
    (fun es ->
      let trace = Trace.of_list es in
      let outcome_of run arg =
        match run ~policy:baseline arg with
        | (o : Executor.outcome) -> Ok o.Executor.metrics
        | exception Invalid_argument m -> Error m
      in
      let boxed = outcome_of (fun ~policy t -> Executor.run_boxed ~policy t) trace in
      let packed =
        outcome_of (fun ~policy p -> Executor.run_packed ~policy p) (Packed.of_trace trace)
      in
      (* Same verdict: either both replay to the same metrics or both
         reject with the same message. *)
      boxed = packed)

let suite =
  [ ( "packed-replay",
      [ Alcotest.test_case "strict workload" `Quick test_strict_workload;
        Alcotest.test_case "lenient workload" `Quick test_lenient_workload;
        Alcotest.test_case "heatmap + attribution" `Quick test_heatmap_attribution;
        Alcotest.test_case "corrupted traces" `Quick test_lenient_corrupted_every_kind;
        Alcotest.test_case "negative ids" `Quick test_negative_object_ids;
        QCheck_alcotest.to_alcotest prop_lenient_soup;
        QCheck_alcotest.to_alcotest prop_strict_raises_same ] ) ]
