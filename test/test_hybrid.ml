(* Tests for the hybrid (object id + calling context) mechanism of
   §2.2.2, implemented as `Pipeline.config.hybrid_context` and the
   per-counter ctx gate in the PreFix policy. *)

module Allocator = Prefix_heap.Allocator
module Arena = Prefix_heap.Arena
module Plan = Prefix_core.Plan
module Context = Prefix_core.Context
module Pipeline = Prefix_core.Pipeline
module Prefix_policy = Prefix_runtime.Prefix_policy
module Policy = Prefix_runtime.Policy
module Executor = Prefix_runtime.Executor
module Costs = Prefix_runtime.Costs
module B = Prefix_workloads.Builder

let costs = Costs.default

let hybrid_config = { Pipeline.default_config with hybrid_context = true }

(* A "non-deterministic server" program: one malloc site reached through
   two call paths.  Path A (ctx 100) allocates the hot connection state;
   path B (ctx 200) allocates cold log records.  The *interleaving* of
   the two paths depends on request arrival order, so plain instance ids
   are unstable across runs — but within path A the numbering is stable.

   [pattern] gives the per-step path order; hot objects are always the
   first three A-allocations. *)
let server_trace ~interleave () =
  let b = B.create ~seed:9 () in
  let hot = ref [] in
  let n_a = ref 0 in
  List.iter
    (fun path ->
      match path with
      | `A ->
        let o = B.alloc b ~site:1 ~ctx:100 32 in
        incr n_a;
        if !n_a <= 3 then hot := o :: !hot else B.access b o 0
      | `B ->
        let o = B.alloc b ~site:1 ~ctx:200 32 in
        B.access b o 0)
    interleave;
  let hot = List.rev !hot in
  for _ = 1 to 200 do
    List.iter (fun o -> B.access b o 0) hot
  done;
  B.trace b

(* Training-run arrival order vs evaluation-run arrival order: the B
   allocations land at different global positions, but A's own
   subsequence is the same. *)
let profile_order = [ `A; `B; `A; `B; `B; `A; `B; `A; `A ]
let long_order = [ `B; `B; `A; `A; `B; `A; `B; `A; `B; `A ]

let place_count trace plan =
  let outcome =
    Executor.run
      ~policy:(fun heap -> Prefix_policy.policy costs heap plan Policy.no_classification)
      trace
  in
  outcome.metrics.region_objects

let hot_captured trace plan =
  (* Count placements that landed on genuinely hot objects of this run. *)
  let stats = Prefix_trace.Trace_stats.analyze trace in
  let hot = Prefix_trace.Trace_stats.hot_objects stats in
  let hot_set = Hashtbl.create 8 in
  List.iter (fun (o : Prefix_trace.Trace_stats.obj_info) -> Hashtbl.replace hot_set o.obj ()) hot;
  let cls = { Policy.is_hot = Hashtbl.mem hot_set; is_hds = (fun _ -> false) } in
  let outcome =
    Executor.run ~policy:(fun heap -> Prefix_policy.policy costs heap plan cls) trace
  in
  outcome.metrics.region_hot_objects

let test_hybrid_plan_gates_counter () =
  let prof = server_trace ~interleave:profile_order () in
  let plan = Pipeline.plan ~config:hybrid_config ~variant:Plan.Hot prof in
  let gated =
    List.filter (fun (cp : Plan.counter_plan) -> cp.required_ctx = Some 100) plan.counters
  in
  Alcotest.(check int) "one gated counter" 1 (List.length gated);
  (* Within path A the hot objects are simply the first three. *)
  match (List.hd gated).pattern with
  | Context.Fixed [ 1; 2; 3 ] | Context.All _ -> ()
  | p -> Alcotest.failf "unexpected gated pattern %s" (Format.asprintf "%a" Context.pp p)

let test_plain_ids_unstable_across_interleavings () =
  (* Without the gate, the profiled hot instance ids pick up B-path
     allocations on the evaluation input. *)
  let prof = server_trace ~interleave:profile_order () in
  let long = server_trace ~interleave:long_order () in
  let plain_plan = Pipeline.plan ~variant:Plan.Hot prof in
  let hybrid_plan = Pipeline.plan ~config:hybrid_config ~variant:Plan.Hot prof in
  let plain_hot = hot_captured long plain_plan in
  let hybrid_hot = hot_captured long hybrid_plan in
  Alcotest.(check int) "hybrid captures all three hot objects" 3 hybrid_hot;
  Alcotest.(check bool)
    (Printf.sprintf "plain ids misfire under reordering (%d vs %d)" plain_hot hybrid_hot)
    true
    (plain_hot < hybrid_hot)

let test_hybrid_gate_runtime_semantics () =
  (* Manual plan: counter gated on ctx 100, hot id {1}. *)
  let heap = Allocator.create () in
  let plan =
    { Plan.variant = Plan.Hot;
      slots = [ { Prefix_core.Offsets.offset = 0; size = 64 } ];
      region_bytes = 64;
      site_counter = [ (1, 0) ];
      counters =
        [ { Plan.counter = 0;
            counter_sites = [ 1 ];
            pattern = Context.Fixed [ 1 ];
            placements = [ (1, 0) ];
            recycle = None;
            required_ctx = Some 100 } ];
      placed_objects = [];
      profile =
        { hot_count = 0; hds_count = 0; heap_access_share = 0.; ohds_count = 0; rhds_count = 0 }
    }
  in
  let p = Prefix_policy.policy costs heap plan Policy.no_classification in
  let arena = Option.get (Prefix_policy.arena_of p) in
  (* A wrong-context allocation must not consume instance id 1. *)
  let a1 = p.alloc ~obj:1 ~site:1 ~ctx:200 ~size:32 in
  Alcotest.(check bool) "wrong ctx goes to heap" false (Arena.contains arena a1);
  let a2 = p.alloc ~obj:2 ~site:1 ~ctx:100 ~size:32 in
  Alcotest.(check int) "first gated allocation is placed" (Arena.slot_addr arena 0) a2;
  p.finish ()

let test_hybrid_off_by_default () =
  let prof = server_trace ~interleave:profile_order () in
  let plan = Pipeline.plan ~variant:Plan.Hot prof in
  Alcotest.(check bool) "no gates without opt-in" true
    (List.for_all (fun (cp : Plan.counter_plan) -> cp.required_ctx = None) plan.counters)

let test_hybrid_no_gate_for_single_ctx_site () =
  (* If all of a site's allocations share one ctx, gating buys nothing
     and must not be applied. *)
  let b = B.create ~seed:10 () in
  let hot = List.init 3 (fun _ -> B.alloc b ~site:1 ~ctx:5 32) in
  for _ = 1 to 100 do
    List.iter (fun o -> B.access b o 0) hot
  done;
  let plan = Pipeline.plan ~config:hybrid_config ~variant:Plan.Hot (B.trace b) in
  Alcotest.(check bool) "no gate" true
    (List.for_all (fun (cp : Plan.counter_plan) -> cp.required_ctx = None) plan.counters)

let suite =
  [ ( "hybrid-context",
      [ Alcotest.test_case "plan gates counter" `Quick test_hybrid_plan_gates_counter;
        Alcotest.test_case "plain ids unstable, hybrid stable" `Quick
          test_plain_ids_unstable_across_interleavings;
        Alcotest.test_case "runtime gate semantics" `Quick test_hybrid_gate_runtime_semantics;
        Alcotest.test_case "off by default" `Quick test_hybrid_off_by_default;
        Alcotest.test_case "no gate for single-ctx site" `Quick
          test_hybrid_no_gate_for_single_ctx_site ] ) ]
