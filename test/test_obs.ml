(* Tests for Prefix_obs: span nesting invariants, metric registry
   semantics, exporter well-formedness, and the pipeline/executor
   wiring (span names the `stats` subcommand relies on). *)

module Control = Prefix_obs.Control
module Span = Prefix_obs.Span
module Metric = Prefix_obs.Metric
module Export = Prefix_obs.Export

let check = Alcotest.check
let ci = Alcotest.int

(* Every test runs against the process-global sink; serialise through a
   fixture that starts from a clean, enabled state and always disables
   collection afterwards so unrelated suites stay unobserved. *)
let with_obs f () =
  Control.set true;
  Span.reset ();
  Metric.reset ();
  Fun.protect ~finally:(fun () -> Control.set false) f

(* ---- minimal JSON parser (no JSON library in the image) ----
   Just enough to check that exporters emit parseable JSON: objects,
   arrays, strings with escapes, numbers, true/false/null. *)

type json =
  | Obj of (string * json) list
  | Arr of json list
  | Str of string
  | Num of float
  | Bool of bool
  | Null

exception Parse_error of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then s.[!pos] else fail "unexpected end" in
  let advance () = incr pos in
  let rec skip_ws () =
    if !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    then begin advance (); skip_ws () end
  in
  let expect c = if peek () <> c then fail (Printf.sprintf "expected %c" c) else advance () in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | '"' -> advance (); Buffer.contents b
      | '\\' ->
        advance ();
        (match peek () with
        | '"' -> Buffer.add_char b '"'; advance ()
        | '\\' -> Buffer.add_char b '\\'; advance ()
        | '/' -> Buffer.add_char b '/'; advance ()
        | 'n' -> Buffer.add_char b '\n'; advance ()
        | 'r' -> Buffer.add_char b '\r'; advance ()
        | 't' -> Buffer.add_char b '\t'; advance ()
        | 'b' -> Buffer.add_char b '\b'; advance ()
        | 'f' -> Buffer.add_char b '\012'; advance ()
        | 'u' ->
          advance ();
          if !pos + 4 > n then fail "truncated \\u escape";
          let hex = String.sub s !pos 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code -> Buffer.add_char b (Char.chr (code land 0xff))
          | None -> fail "bad \\u escape");
          pos := !pos + 4
        | _ -> fail "bad escape");
        go ()
      | c -> Buffer.add_char b c; advance (); go ()
    in
    go ()
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | '{' ->
      advance ();
      skip_ws ();
      if peek () = '}' then begin advance (); Obj [] end
      else begin
        let rec members acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); members ((k, v) :: acc)
          | '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected , or }"
        in
        members []
      end
    | '[' ->
      advance ();
      skip_ws ();
      if peek () = ']' then begin advance (); Arr [] end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | ',' -> advance (); items (v :: acc)
          | ']' -> advance (); Arr (List.rev (v :: acc))
          | _ -> fail "expected , or ]"
        in
        items []
      end
    | '"' -> Str (parse_string ())
    | 't' -> pos := !pos + 4; Bool true
    | 'f' -> pos := !pos + 5; Bool false
    | 'n' -> pos := !pos + 4; Null
    | _ ->
      let start = !pos in
      let num_char c =
        (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
      in
      while !pos < n && num_char s.[!pos] do advance () done;
      if !pos = start then fail "unexpected character";
      (match float_of_string_opt (String.sub s start (!pos - start)) with
      | Some f -> Num f
      | None -> fail "bad number")
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member name = function
  | Obj fields -> List.assoc_opt name fields
  | _ -> None

(* ---- spans ---- *)

let test_span_disabled () =
  Control.set false;
  Span.reset ();
  check ci "body still runs" 42 (Span.with_ "off" (fun () -> 42));
  check ci "nothing recorded" 0 (List.length (Span.completed ()))

let test_span_nesting =
  with_obs (fun () ->
      let r =
        Span.with_ "parent" (fun () ->
            let a = Span.with_ "child-a" (fun () -> 1) in
            let b = Span.with_ "child-b" (fun () -> 2) in
            a + b)
      in
      check ci "value" 3 r;
      match Span.completed () with
      | [ a; b; p ] ->
        check Alcotest.string "a first" "child-a" a.Span.name;
        check Alcotest.string "b second" "child-b" b.Span.name;
        check Alcotest.string "parent closes last" "parent" p.Span.name;
        check ci "root depth" 0 p.Span.depth;
        check ci "child depth" 1 a.Span.depth;
        Alcotest.(check (option string)) "a's parent" (Some "parent") a.Span.parent;
        Alcotest.(check (option string)) "root has no parent" None p.Span.parent;
        Alcotest.(check bool) "durations non-negative" true
          (List.for_all (fun (s : Span.completed) -> s.dur_ns >= 0L) [ a; b; p ]);
        (* Children are contained in the parent's interval. *)
        let ends (s : Span.completed) = Int64.add s.start_ns s.dur_ns in
        Alcotest.(check bool) "a within parent" true
          (a.start_ns >= p.start_ns && ends a <= ends p);
        Alcotest.(check bool) "b after a" true (b.start_ns >= ends a)
      | l -> Alcotest.failf "expected 3 spans, got %d" (List.length l))

let test_span_exception =
  with_obs (fun () ->
      (try Span.with_ "raises" (fun () -> failwith "boom") with Failure _ -> ());
      check ci "span recorded despite exception" 1 (List.length (Span.completed ()));
      check ci "stack popped" 0 (Span.open_count ()))

(* qcheck: run an arbitrary nesting script and verify the completed
   records always form a well-formed forest. *)
let rec exec_script depth = function
  | [] -> ()
  | go_deeper :: rest ->
    if go_deeper && depth < 6 then
      Span.with_ (Printf.sprintf "d%d" depth) (fun () -> exec_script (depth + 1) rest)
    else begin
      Span.with_ (Printf.sprintf "leaf%d" depth) (fun () -> ());
      exec_script depth rest
    end

let prop_span_forest_well_formed =
  QCheck.Test.make ~name:"interleaved spans form a well-formed forest" ~count:100
    QCheck.(small_list bool)
    (fun script ->
      Control.set true;
      Span.reset ();
      Fun.protect ~finally:(fun () -> Control.set false) @@ fun () ->
      exec_script 0 script;
      let spans = Span.completed () in
      let ends (s : Span.completed) = Int64.add s.start_ns s.dur_ns in
      (* Replaying completion order against a stack must be consistent:
         each completed span's children (deeper spans completed since
         the last same-or-shallower depth) closed before it. *)
      Span.open_count () = 0
      && List.for_all (fun (s : Span.completed) -> s.dur_ns >= 0L) spans
      && List.for_all
           (fun (s : Span.completed) ->
             match s.parent with
             | None -> s.depth = 0
             | Some pname -> (
               (* the parent completes later and contains the child *)
               match
                 List.find_opt
                   (fun (p : Span.completed) ->
                     p.Span.name = pname
                     && p.depth = s.depth - 1
                     && p.start_ns <= s.start_ns
                     && ends p >= ends s)
                   spans
               with
               | Some _ -> true
               | None -> false))
           spans)

(* ---- metrics ---- *)

let test_metric_counter =
  with_obs (fun () ->
      let a = Metric.counter "test.c" in
      let b = Metric.counter "test.c" in
      Metric.incr a;
      Metric.add b 4;
      let snap = Metric.snapshot () in
      check ci "same name, same cell" 5 (List.assoc "test.c" snap.counters))

let test_metric_gauge =
  with_obs (fun () ->
      let g = Metric.gauge "test.g" in
      Metric.set g 2.5;
      Metric.set_max g 1.0;
      check (Alcotest.float 1e-9) "set_max keeps max" 2.5
        (List.assoc "test.g" (Metric.snapshot ()).gauges);
      Metric.set_max g 7.0;
      check (Alcotest.float 1e-9) "set_max raises" 7.0
        (List.assoc "test.g" (Metric.snapshot ()).gauges))

let test_metric_histogram =
  with_obs (fun () ->
      let h = Metric.histogram ~lo:0. ~hi:10. ~buckets:5 "test.h" in
      List.iter (Metric.observe h) [ 1.; 5.; -1.; 99. ];
      let v = List.assoc "test.h" (Metric.snapshot ()).histograms in
      check ci "total" 4 v.Metric.h_total;
      check ci "underflow" 1 v.Metric.h_underflow;
      check ci "overflow" 1 v.Metric.h_overflow;
      check ci "in-range" 2 (Array.fold_left ( + ) 0 v.Metric.h_counts))

let test_metric_disabled =
  with_obs (fun () ->
      let c = Metric.counter "test.off" in
      Control.set false;
      Metric.incr c;
      Metric.add c 10;
      Control.set true;
      check ci "updates while off are dropped" 0
        (List.assoc "test.off" (Metric.snapshot ()).counters))

(* ---- exporters ---- *)

let record_sample_run () =
  Span.with_ ~cat:"t" ~args:[ ("k", "v\"with\\quotes") ] "outer" (fun () ->
      Span.with_ ~cat:"t" "inner" (fun () -> ());
      Span.counter "heap" [ ("live", 123.); ("peak", 456.) ])

let test_chrome_trace_valid =
  with_obs (fun () ->
      record_sample_run ();
      let j = parse_json (Export.chrome_trace ()) in
      match member "traceEvents" j with
      | Some (Arr events) ->
        check Alcotest.bool "has events" true (List.length events >= 4);
        let names = ref [] in
        List.iter
          (fun e ->
            (match member "name" e with
            | Some (Str s) -> names := s :: !names
            | _ -> Alcotest.fail "event without name");
            match member "ph" e with
            | Some (Str "X") ->
              (match (member "ts" e, member "dur" e) with
              | Some (Num _), Some (Num d) ->
                Alcotest.(check bool) "dur >= 0" true (d >= 0.)
              | _ -> Alcotest.fail "X event missing ts/dur")
            | Some (Str "C") ->
              (match member "args" e with
              | Some (Obj (_ :: _)) -> ()
              | _ -> Alcotest.fail "C event without args")
            | Some (Str "M") -> ()
            | _ -> Alcotest.fail "unexpected phase")
          events;
        List.iter
          (fun n ->
            Alcotest.(check bool) (n ^ " present") true (List.mem n !names))
          [ "outer"; "inner"; "heap" ]
      | _ -> Alcotest.fail "no traceEvents array")

let test_json_valid =
  with_obs (fun () ->
      record_sample_run ();
      Metric.incr (Metric.counter "test.json");
      let j = parse_json (Export.json ()) in
      (match member "spans" j with
      | Some (Arr (_ :: _)) -> ()
      | _ -> Alcotest.fail "spans missing");
      match member "counters" j with
      | Some (Obj fields) ->
        Alcotest.(check bool) "counter exported" true (List.mem_assoc "test.json" fields)
      | _ -> Alcotest.fail "counters missing")

let test_text_report =
  with_obs (fun () ->
      record_sample_run ();
      Metric.incr (Metric.counter "test.report");
      let r = Export.report () in
      let mentions sub =
        let n = String.length r and m = String.length sub in
        let rec go i = i + m <= n && (String.sub r i m = sub || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "mentions span" true (mentions "outer");
      Alcotest.(check bool) "mentions counter" true (mentions "test.report"))

(* ---- wiring: pipeline stages and executor replay ---- *)

let test_pipeline_and_executor_spans =
  with_obs (fun () ->
      let wl = Prefix_workloads.Registry.find "mcf" in
      let trace = wl.generate ~scale:Profiling ~seed:7 () in
      let plan = Prefix_core.Pipeline.plan ~variant:Prefix_core.Plan.HdsHot trace in
      let costs = Prefix_runtime.Executor.default_config.costs in
      let _ =
        Prefix_runtime.Executor.run
          ~policy:(fun heap ->
            Prefix_runtime.Prefix_policy.policy costs heap plan
              Prefix_runtime.Policy.no_classification)
          trace
      in
      let names = List.map (fun (s : Span.completed) -> s.Span.name) (Span.completed ()) in
      List.iter
        (fun stage ->
          Alcotest.(check bool) ("stage span " ^ stage) true (List.mem stage names))
        [ "trace-analysis"; "hot-selection"; "hds-detection"; "reconstitution";
          "offset-assignment"; "plan"; "pipeline"; "replay:PreFix:HDS+Hot" ];
      (* the executor also feeds the metrics registry *)
      let snap = Metric.snapshot () in
      check ci "events replayed counted"
        (Prefix_trace.Trace.length trace)
        (List.assoc "executor.events_replayed" snap.counters);
      Alcotest.(check bool) "heap peak gauge set" true
        (List.assoc "executor.heap_peak_bytes" snap.gauges > 0.))

let test_zero_overhead_off () =
  Control.set false;
  Span.reset ();
  Metric.reset ();
  let wl = Prefix_workloads.Registry.find "mcf" in
  let trace = wl.generate ~scale:Profiling ~seed:7 () in
  let _ = Prefix_core.Pipeline.plan ~variant:Prefix_core.Plan.Hot trace in
  let _ = Prefix_runtime.Executor.run_baseline trace in
  check ci "no spans when off" 0 (List.length (Span.completed ()));
  let snap = Metric.snapshot () in
  Alcotest.(check bool) "no metric mass when off" true
    (List.for_all (fun (_, v) -> v = 0) snap.counters)

let suite =
  [ ( "obs",
      [ Alcotest.test_case "span disabled" `Quick test_span_disabled;
        Alcotest.test_case "span nesting" `Quick test_span_nesting;
        Alcotest.test_case "span exception safety" `Quick test_span_exception;
        QCheck_alcotest.to_alcotest prop_span_forest_well_formed;
        Alcotest.test_case "counter semantics" `Quick test_metric_counter;
        Alcotest.test_case "gauge semantics" `Quick test_metric_gauge;
        Alcotest.test_case "histogram semantics" `Quick test_metric_histogram;
        Alcotest.test_case "disabled metrics drop updates" `Quick test_metric_disabled;
        Alcotest.test_case "chrome trace parses" `Quick test_chrome_trace_valid;
        Alcotest.test_case "json export parses" `Quick test_json_valid;
        Alcotest.test_case "text report" `Quick test_text_report;
        Alcotest.test_case "pipeline+executor wiring" `Quick test_pipeline_and_executor_spans;
        Alcotest.test_case "zero overhead when off" `Quick test_zero_overhead_off ] ) ]
