(* Structure tests: each of the 13 benchmark models must keep the plan
   shape it was designed to have (DESIGN.md §3, paper Table 2) — these
   pin the reproduction against accidental workload regressions. *)

module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Workload = Prefix_workloads.Workload
module Registry = Prefix_workloads.Registry
module Trace_stats = Prefix_trace.Trace_stats

let plan_of name variant =
  let w = Registry.find name in
  let trace = w.generate ~scale:Workload.Profiling ~seed:7 () in
  Pipeline.plan ~variant trace

let has_recycling (plan : Plan.t) =
  List.exists (fun (cp : Plan.counter_plan) -> cp.recycle <> None) plan.counters

let kinds plan = Plan.context_kinds plan

let check_shape name ~sites ~counters ~kind ~recycles =
  let plan = plan_of name Plan.HdsHot in
  Alcotest.(check int) (name ^ " sites") sites (Plan.num_sites plan);
  Alcotest.(check int) (name ^ " counters") counters (Plan.num_counters plan);
  Alcotest.(check string) (name ^ " kinds") kind (kinds plan);
  Alcotest.(check bool) (name ^ " recycling") recycles (has_recycling plan);
  match Plan.validate plan with Ok () -> () | Error e -> Alcotest.fail e

(* The expected values are this reproduction's measured shapes; where
   they differ from the paper's Table 2 the delta is recorded in
   EXPERIMENTS.md. *)

let test_mysql () = check_shape "mysql" ~sites:10 ~counters:4 ~kind:"fixed" ~recycles:false
let test_perl () = check_shape "perl" ~sites:16 ~counters:2 ~kind:"fixed & regular" ~recycles:false
let test_mcf () = check_shape "mcf" ~sites:6 ~counters:2 ~kind:"fixed" ~recycles:false
let test_omnetpp () = check_shape "omnetpp" ~sites:52 ~counters:6 ~kind:"fixed" ~recycles:false
let test_xalanc () = check_shape "xalanc" ~sites:2 ~counters:2 ~kind:"fixed" ~recycles:false
let test_povray () = check_shape "povray" ~sites:8 ~counters:1 ~kind:"all" ~recycles:true
let test_roms () = check_shape "roms" ~sites:20 ~counters:1 ~kind:"all" ~recycles:true
let test_leela () = check_shape "leela" ~sites:4 ~counters:1 ~kind:"all" ~recycles:true
let test_swissmap () = check_shape "swissmap" ~sites:1 ~counters:1 ~kind:"all" ~recycles:true

let test_health () =
  let plan = plan_of "health" Plan.HdsHot in
  Alcotest.(check int) "sites" 3 (Plan.num_sites plan);
  Alcotest.(check int) "counters" 2 (Plan.num_counters plan);
  Alcotest.(check string) "kinds" "all & fixed" (kinds plan);
  (* nothing is ever freed: recycling must NOT trigger *)
  Alcotest.(check bool) "no recycling" false (has_recycling plan)

let test_ft () =
  let plan = plan_of "ft" Plan.HdsHot in
  Alcotest.(check int) "sites" 3 (Plan.num_sites plan);
  Alcotest.(check bool) "regular ids for the vertex/heap sites" true
    (List.exists
       (fun (cp : Plan.counter_plan) ->
         match cp.pattern with Prefix_core.Context.Regular _ -> true | _ -> false)
       plan.counters)

let test_analyzer () =
  let plan = plan_of "analyzer" Plan.HdsHot in
  Alcotest.(check int) "counters" 3 (Plan.num_counters plan);
  Alcotest.(check string) "kinds" "all & fixed" (kinds plan)

(* The HDS variant places only stream objects for the stream-poor
   benchmarks. *)
let test_hds_variant_is_small_where_expected () =
  List.iter
    (fun name ->
      let hdshot = plan_of name Plan.HdsHot in
      let hds = plan_of name Plan.Hds in
      Alcotest.(check bool)
        (name ^ " HDS variant places far fewer objects")
        true
        (List.length hds.slots * 4 < List.length hdshot.slots))
    [ "health"; "ft"; "analyzer" ]

(* Recycling benchmarks: all three variants produce the same slot count
   (the merged cells of Table 3). *)
let test_recycling_variants_identical () =
  List.iter
    (fun name ->
      let p1 = plan_of name Plan.Hot and p2 = plan_of name Plan.Hds in
      Alcotest.(check int) (name ^ " same slots") (List.length p1.slots)
        (List.length p2.slots))
    [ "povray"; "roms"; "leela"; "swissmap" ]

(* mcf's six hot objects are the documented two tandem trios. *)
let test_mcf_trios () =
  let plan = plan_of "mcf" Plan.HdsHot in
  let site_lists =
    List.map (fun (cp : Plan.counter_plan) -> List.sort compare cp.counter_sites) plan.counters
    |> List.sort compare
  in
  Alcotest.(check (list (list int))) "two trios" [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ] site_lists

(* Profiling hot-object shares stay in the neighbourhood the models were
   designed for (Table 5 HA column). *)
let test_hot_share_band () =
  List.iter
    (fun (name, lo) ->
      let w = Registry.find name in
      let trace = w.generate ~scale:Workload.Profiling ~seed:7 () in
      let stats = Trace_stats.analyze trace in
      let hot = Trace_stats.hot_objects ~coverage:0.95 stats in
      let share =
        Trace_stats.heap_access_share stats
          (List.map (fun (o : Trace_stats.obj_info) -> o.obj) hot)
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s share %.2f >= %.2f" name share lo)
        true (share >= lo))
    [ ("mcf", 0.95); ("mysql", 0.85); ("health", 0.85); ("ft", 0.75); ("analyzer", 0.9) ]

let suite =
  [ ( "benchmark-shapes",
      [ Alcotest.test_case "mysql" `Quick test_mysql;
        Alcotest.test_case "perl" `Quick test_perl;
        Alcotest.test_case "mcf" `Quick test_mcf;
        Alcotest.test_case "omnetpp" `Quick test_omnetpp;
        Alcotest.test_case "xalanc" `Quick test_xalanc;
        Alcotest.test_case "povray" `Quick test_povray;
        Alcotest.test_case "roms" `Quick test_roms;
        Alcotest.test_case "leela" `Quick test_leela;
        Alcotest.test_case "swissmap" `Quick test_swissmap;
        Alcotest.test_case "health" `Quick test_health;
        Alcotest.test_case "ft" `Quick test_ft;
        Alcotest.test_case "analyzer" `Quick test_analyzer;
        Alcotest.test_case "HDS variant small where expected" `Quick
          test_hds_variant_is_small_where_expected;
        Alcotest.test_case "recycling variants identical" `Quick
          test_recycling_variants_identical;
        Alcotest.test_case "mcf trios" `Quick test_mcf_trios;
        Alcotest.test_case "hot share bands" `Quick test_hot_share_band ] ) ]
