(* Tests for the experiments layer: paper-data integrity and the key
   end-to-end claims on the two smallest benchmarks. *)

module P = Prefix_experiments.Paper_data
module H = Prefix_experiments.Harness
module M = Prefix_runtime.Metrics

let test_paper_data_complete () =
  Alcotest.(check int) "13 benchmarks" 13 (List.length P.benchmarks);
  List.iter
    (fun name ->
      ignore (P.find_table2 name);
      ignore (P.find_table3 name);
      ignore (P.find_table4 name);
      ignore (P.find_table5 name);
      ignore (P.find_table6 name))
    P.benchmarks

let test_paper_headline () =
  (* The abstract's headline: average best-PreFix reduction 21.7%, range
     2.77%..74%. *)
  let bests = List.map (fun (r : P.table3_row) -> -.r.best_pct) P.table3 in
  let avg = Prefix_util.Stats.mean bests in
  Alcotest.(check bool) "average ~21.7" true (abs_float (avg -. 21.7) < 0.5);
  Alcotest.(check (Alcotest.float 0.01)) "min 2.77" 2.77
    (List.fold_left min infinity bests);
  Alcotest.(check (Alcotest.float 0.01)) "max 74" 74. (List.fold_left max 0. bests)

let test_fig2_layout_matches_paper () =
  let r = Prefix_experiments.Exp_fig2.reconstitute () in
  let order = Prefix_core.Layout.placement_order r in
  Alcotest.(check (list int)) "same object set as the paper's layout"
    (List.sort compare Prefix_experiments.Exp_fig2.paper_layout)
    (List.sort compare order)

(* End-to-end claims on one small benchmark (libc is the smallest). *)

let test_libc_end_to_end () =
  let r = H.find "libc" in
  let d p = H.time_delta r p in
  (* PreFix beats the baseline. *)
  Alcotest.(check bool) "best PreFix wins" true (d (fst (H.best_prefix r)) < -1.);
  (* PreFix beats HDS [8]. *)
  Alcotest.(check bool) "beats HDS" true (d (fst (H.best_prefix r)) < d r.hds);
  (* No pollution: every object PreFix captured is profiled-hot or at
     least vastly better than HDS's ratio. *)
  let purity (pr : H.policy_run) =
    if pr.metrics.M.region_objects = 0 then 1.
    else
      float_of_int pr.metrics.M.region_hot_objects
      /. float_of_int pr.metrics.M.region_objects
  in
  Alcotest.(check bool) "PreFix purer than HDS" true
    (purity r.prefix_hdshot >= purity r.hds)

let test_swissmap_recycling_claims () =
  let r = H.find "swissmap" in
  (* All three PreFix variants perform the same on recycling benchmarks
     (§3.3). *)
  let c (p : H.policy_run) = p.metrics.M.cycles.total_cycles in
  let hot = c r.prefix_hot and hds = c r.prefix_hds and both = c r.prefix_hdshot in
  Alcotest.(check bool) "variants equal" true
    (abs_float (hot -. hds) /. hot < 0.01 && abs_float (hot -. both) /. hot < 0.01);
  (* Recycling avoids a large number of malloc/free calls. *)
  Alcotest.(check bool) "calls avoided" true
    (r.prefix_hot.metrics.M.calls_avoided > 1000);
  (* And wins time. *)
  Alcotest.(check bool) "faster" true (H.time_delta r r.prefix_hot < -5.)

let test_report_registry () =
  let module R = Prefix_experiments.Report in
  Alcotest.(check bool) "all experiments present" true (List.length R.all >= 12);
  Alcotest.(check bool) "find" true (R.find "table3" <> None);
  Alcotest.(check bool) "unknown" true (R.find "nope" = None)

let suite =
  [ ( "experiments",
      [ Alcotest.test_case "paper data complete" `Quick test_paper_data_complete;
        Alcotest.test_case "paper headline" `Quick test_paper_headline;
        Alcotest.test_case "fig2 layout" `Quick test_fig2_layout_matches_paper;
        Alcotest.test_case "libc end to end" `Slow test_libc_end_to_end;
        Alcotest.test_case "swissmap recycling" `Slow test_swissmap_recycling_claims;
        Alcotest.test_case "report registry" `Quick test_report_registry ] ) ]
