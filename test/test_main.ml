let () =
  Alcotest.run "prefix"
    (Test_util.suite @ Test_trace.suite @ Test_heap.suite @ Test_cachesim.suite
   @ Test_hds.suite @ Test_core.suite @ Test_runtime.suite @ Test_halo_wl.suite
   @ Test_patterns.suite @ Test_detector_internals.suite @ Test_traceio.suite @ Test_hybrid.suite @ Test_oracles.suite @ Test_benchmarks.suite @ Test_headline.suite @ Test_experiments.suite @ Test_obs.suite @ Test_faults.suite @ Test_parallel.suite @ Test_packed_replay.suite @ Test_stream.suite @ Test_columnar.suite @ Test_telemetry.suite @ Test_checkpoint.suite @ Test_mmap.suite @ Test_blockpolicy.suite)
