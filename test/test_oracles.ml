(* Oracle-based property tests.

   1. The set-associative cache is compared against a straightforward
      reference implementation (association list per set, explicit
      recency ordering) on random access streams.
   2. Every allocation policy is replayed over random valid traces while
      an interval map checks that no two live objects ever overlap and
      that every returned address is properly aligned — the fundamental
      memory-safety property that the paper's "correctness of
      transformations" argument (§2.3) rests on. *)

module Cache = Prefix_cachesim.Cache
module Rng = Prefix_util.Rng
module B = Prefix_workloads.Builder
module Policy = Prefix_runtime.Policy
module Costs = Prefix_runtime.Costs
module Allocator = Prefix_heap.Allocator
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan

(* ---- 1. Reference LRU cache ---- *)

module Ref_cache = struct
  type t = {
    sets : int;
    assoc : int;
    line_bits : int;
    contents : (int, int list ref) Hashtbl.t; (* set -> tags, MRU first *)
  }

  let create ~sets ~assoc ~line_bits = { sets; assoc; line_bits; contents = Hashtbl.create 64 }

  let access t addr =
    let line = addr lsr t.line_bits in
    let set = line mod t.sets in
    let tags =
      match Hashtbl.find_opt t.contents set with
      | Some l -> l
      | None ->
        let l = ref [] in
        Hashtbl.replace t.contents set l;
        l
    in
    let hit = List.mem line !tags in
    let without = List.filter (fun x -> x <> line) !tags in
    let updated = line :: without in
    tags := if List.length updated > t.assoc then List.filteri (fun i _ -> i < t.assoc) updated
            else updated;
    hit
end

let prop_cache_matches_reference =
  QCheck.Test.make ~name:"cache agrees with reference LRU" ~count:100
    QCheck.(pair small_int (list_of_size Gen.(int_range 1 400) (int_bound 8191)))
    (fun (_, addrs) ->
      let c = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 () in
      let r = Ref_cache.create ~sets:8 ~assoc:2 ~line_bits:6 in
      List.for_all (fun a -> Cache.access c a = Ref_cache.access r a) addrs)

let prop_tlb_matches_reference =
  QCheck.Test.make ~name:"tlb agrees with reference LRU" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 300) (int_bound 1_000_000))
    (fun addrs ->
      let c = Cache.create_entries ~entries:16 ~assoc:4 ~page_bytes:4096 () in
      let r = Ref_cache.create ~sets:4 ~assoc:4 ~line_bits:12 in
      List.for_all (fun a -> Cache.access c a = Ref_cache.access r a) addrs)

(* ---- 2. Policy address-safety ---- *)

(* Random-but-valid trace: allocations from a handful of sites, hot
   accesses, frees, reallocs. *)
let random_trace seed =
  let rng = Rng.create seed in
  let b = B.create ~seed () in
  let live = ref [] in
  (* a few long-lived hot objects so plans are non-trivial *)
  let hot =
    List.init 4 (fun _ -> B.alloc b ~site:1 (16 + (16 * Rng.int rng 4)))
  in
  for _ = 1 to 60 do
    List.iter (fun o -> B.access b o 0) hot
  done;
  for _ = 1 to 150 do
    match Rng.int rng 10 with
    | 0 | 1 | 2 | 3 ->
      let size = 16 + (16 * Rng.int rng 20) in
      let o = B.alloc b ~site:(2 + Rng.int rng 3) size in
      B.access b o 0;
      live := o :: !live
    | 4 | 5 when !live <> [] ->
      let i = Rng.int rng (List.length !live) in
      B.free b (List.nth !live i);
      live := List.filteri (fun j _ -> j <> i) !live
    | 6 when !live <> [] ->
      let o = List.nth !live (Rng.int rng (List.length !live)) in
      B.realloc b o (16 + (16 * Rng.int rng 25))
    | _ -> List.iter (fun o -> B.access b o 0) hot
  done;
  B.trace b

(* Replay a trace through a policy, checking interval disjointness. *)
let safe_replay (policy : Policy.t) trace =
  let live : (int, int * int) Hashtbl.t = Hashtbl.create 64 in
  let overlaps addr size =
    Hashtbl.fold
      (fun _ (a, s) bad -> bad || (addr < a + s && a < addr + size))
      live false
  in
  let ok = ref true in
  Prefix_trace.Trace.iter
    (fun e ->
      match (e : Prefix_trace.Event.t) with
      | Alloc { obj; site; ctx; size; _ } ->
        let addr = policy.alloc ~obj ~site ~ctx ~size in
        if addr mod 16 <> 0 then ok := false;
        if overlaps addr size then ok := false;
        Hashtbl.replace live obj (addr, size)
      | Free { obj; _ } ->
        let addr, size = Hashtbl.find live obj in
        policy.dealloc ~obj ~addr ~size;
        Hashtbl.remove live obj
      | Realloc { obj; new_size; _ } ->
        let addr, old_size = Hashtbl.find live obj in
        Hashtbl.remove live obj;
        let fresh = policy.realloc ~obj ~addr ~old_size ~new_size in
        if overlaps fresh new_size then ok := false;
        Hashtbl.replace live obj (fresh, new_size)
      | Access _ | Compute _ -> ())
    trace;
  policy.finish ();
  !ok

let policies_for trace =
  let costs = Costs.default in
  let stats = Prefix_trace.Trace_stats.analyze trace in
  let prefix_plan = Pipeline.plan_with_stats ~variant:Plan.HdsHot stats trace in
  let hds_plan = Prefix_runtime.Hds_policy.plan_of_trace stats trace in
  let halo_plan = Prefix_halo.Halo.plan_of_trace stats trace in
  [ ("baseline", fun heap -> Policy.baseline costs heap);
    ("hds", fun heap -> Prefix_runtime.Hds_policy.policy costs heap hds_plan Policy.no_classification);
    ("halo", fun heap -> Prefix_runtime.Halo_policy.policy costs heap halo_plan Policy.no_classification);
    ("prefix", fun heap -> Prefix_runtime.Prefix_policy.policy costs heap prefix_plan Policy.no_classification) ]

let prop_policies_memory_safe =
  QCheck.Test.make ~name:"all policies keep live objects disjoint" ~count:40
    QCheck.small_int
    (fun seed ->
      let trace = random_trace seed in
      List.for_all
        (fun (_, mk) ->
          let heap = Allocator.create () in
          safe_replay (mk heap) trace)
        (policies_for trace))

(* Plans generated from any of the 13 profiling workloads validate. *)
let test_all_workload_plans_validate () =
  List.iter
    (fun (w : Prefix_workloads.Workload.t) ->
      let trace = w.generate ~scale:Prefix_workloads.Workload.Profiling ~seed:7 () in
      let stats = Prefix_trace.Trace_stats.analyze trace in
      List.iter
        (fun variant ->
          let plan = Pipeline.plan_with_stats ~variant stats trace in
          match Plan.validate plan with
          | Ok () -> ()
          | Error e ->
            Alcotest.failf "%s/%s: %s" w.name (Plan.variant_name variant) e)
        [ Plan.Hot; Plan.Hds; Plan.HdsHot ])
    Prefix_workloads.Registry.all

(* Barchart sanity (lives here to keep util tests focused). *)
let test_barchart () =
  let c = Prefix_util.Barchart.create ~width:10 ~unit_label:"%" ~title:"t" () in
  Prefix_util.Barchart.add c ~label:"a" (-50.);
  Prefix_util.Barchart.add_pair c ~label:"b" 100. 25.;
  let s = Prefix_util.Barchart.render c in
  Alcotest.(check bool) "renders title" true (String.length s > 1);
  Alcotest.(check bool) "negative marker" true (String.contains s '<');
  Alcotest.(check bool) "positive marker" true (String.contains s '#')

let suite =
  [ ( "oracles",
      [ QCheck_alcotest.to_alcotest prop_cache_matches_reference;
        QCheck_alcotest.to_alcotest prop_tlb_matches_reference;
        QCheck_alcotest.to_alcotest prop_policies_memory_safe;
        Alcotest.test_case "all workload plans validate" `Slow
          test_all_workload_plans_validate;
        Alcotest.test_case "barchart" `Quick test_barchart ] ) ]
