(* Tests for the continuous-telemetry engine: monotonic clock
   guarantees, the mergeable quantile sketch and its rank-error bound,
   the coarsening time-series ring, the flight recorder's tick/poll
   semantics, the OpenMetrics/CSV exporters (including a golden file
   and a 4-domain concurrent-emission property), and the
   streamed-vs-materialized equality of recorder timelines. *)

module Clock = Prefix_obs.Clock
module Control = Prefix_obs.Control
module Metric = Prefix_obs.Metric
module Sketch = Prefix_obs.Sketch
module Timeseries = Prefix_obs.Timeseries
module Recorder = Prefix_obs.Recorder
module Export = Prefix_obs.Export

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* Serialise against the process-global registry/recorder; always leave
   both off so unrelated suites stay unobserved. *)
let with_rec f () =
  Control.set true;
  Metric.reset ();
  Fun.protect
    ~finally:(fun () ->
      Recorder.disable ();
      Metric.reset ();
      Control.set false)
    f

(* ---- clock ---- *)

let nondecreasing arr =
  let ok = ref true in
  for i = 1 to Array.length arr - 1 do
    if Int64.compare arr.(i) arr.(i - 1) < 0 then ok := false
  done;
  !ok

let test_clock_monotonic () =
  let samples = Array.init 10_000 (fun _ -> Clock.now_ns ()) in
  check cb "10k samples non-decreasing" true (nondecreasing samples)

let test_clock_monotonic_domains () =
  (* The high-water clamp is process-wide: every domain's own sample
     sequence must be non-decreasing even while three others race it. *)
  let run () = nondecreasing (Array.init 10_000 (fun _ -> Clock.now_ns ())) in
  let ds = Array.init 4 (fun _ -> Domain.spawn run) in
  Array.iteri
    (fun i d -> check cb (Printf.sprintf "domain %d non-decreasing" i) true (Domain.join d))
    ds

(* ---- sketch ---- *)

(* The documented contract: the estimate for rank [q * (n-1)] is off by
   at most [rank_error_bound] ranks (a couple extra for interpolation
   across a centroid boundary). *)
let check_rank_bound ~msg xs sk q =
  let n = Array.length xs in
  let est = Sketch.quantile sk q in
  let below = Array.fold_left (fun a x -> if x < est then a + 1 else a) 0 xs in
  let above = Array.fold_left (fun a x -> if x > est then a + 1 else a) 0 xs in
  let bound = float_of_int (Sketch.rank_error_bound sk) +. 2. in
  let target = q *. float_of_int (n - 1) in
  let lower_ok = float_of_int below <= target +. bound in
  let upper_ok = float_of_int above <= (float_of_int (n - 1) -. target) +. bound in
  if not (lower_ok && upper_ok) then
    Alcotest.failf "%s: q=%g est=%g below=%d above=%d n=%d bound=%g" msg q est below
      above n bound

let test_sketch_basics () =
  let sk = Sketch.create ~capacity:16 () in
  check ci "empty count" 0 (Sketch.count sk);
  check cb "empty quantile nan" true (Float.is_nan (Sketch.quantile sk 0.5));
  check cb "empty min nan" true (Float.is_nan (Sketch.min_value sk));
  Sketch.add sk 42.;
  Sketch.add sk nan;
  check ci "nan dropped" 1 (Sketch.count sk);
  check (Alcotest.float 0.) "single value is every quantile" 42. (Sketch.quantile sk 0.99);
  for i = 1 to 1000 do
    Sketch.add sk (float_of_int i)
  done;
  check cb "min" true (Sketch.min_value sk = 1.);
  check cb "max" true (Sketch.max_value sk = 1000.);
  check cb "q0 clamps to min" true (Sketch.quantile sk 0. = 1.);
  check cb "q1 clamps to max" true (Sketch.quantile sk 1. = 1000.);
  Alcotest.check_raises "q out of range" (Invalid_argument "Sketch.quantile: q outside [0, 1]")
    (fun () -> ignore (Sketch.quantile sk 1.5));
  Sketch.reset sk;
  check ci "reset empties" 0 (Sketch.count sk)

(* Regression: while [count <= capacity] every sample stays a singleton
   centroid, so quantiles must be exact order statistics.  The seed's
   weight limit jumped to 2 as soon as count exceeded capacity/2 —
   cap 8 with [0;0;10;10;10;10;10] answered q=1/6 with 2.5, not 0. *)
let test_sketch_exact_small () =
  let sk = Sketch.create ~capacity:8 () in
  List.iter (Sketch.add sk) [ 0.; 0.; 10.; 10.; 10.; 10.; 10. ];
  check (Alcotest.float 0.) "q=1/6 is the second-smallest sample" 0.
    (Sketch.quantile sk (1. /. 6.));
  check (Alcotest.float 0.) "q=0 exact min" 0. (Sketch.quantile sk 0.);
  check (Alcotest.float 0.) "q=1 exact max" 10. (Sketch.quantile sk 1.);
  (* every integer rank is exact below capacity (up to the float
     rounding in q * (n-1) itself) *)
  let sorted = [| 0.; 0.; 10.; 10.; 10.; 10.; 10. |] in
  Array.iteri
    (fun r v ->
      check (Alcotest.float 1e-9) (Printf.sprintf "rank %d exact" r) v
        (Sketch.quantile sk (float_of_int r /. 6.)))
    sorted

let prop_sketch_exact_under_capacity =
  QCheck.Test.make ~count:80 ~name:"sketch exact while count <= capacity"
    QCheck.(pair (int_range 8 64) (list_of_size Gen.(int_range 1 64) (int_bound 1_000)))
    (fun (cap, ints) ->
      QCheck.assume (List.length ints <= cap);
      let sk = Sketch.create ~capacity:cap () in
      List.iter (fun v -> Sketch.add sk (float_of_int v)) ints;
      let sorted = Array.of_list (List.map float_of_int (List.sort compare ints)) in
      let n = Array.length sorted in
      Array.iteri
        (fun r v ->
          let q = if n = 1 then 0.5 else float_of_int r /. float_of_int (n - 1) in
          let est = Sketch.quantile sk q in
          if Float.abs (est -. v) > 1e-6 then
            Alcotest.failf "n=%d cap=%d rank %d: est %g <> exact %g" n cap r est v)
        sorted;
      true)

let prop_sketch_rank_error =
  QCheck.Test.make ~count:60 ~name:"sketch quantiles within rank error bound"
    QCheck.(pair (list_of_size Gen.(int_range 1 800) (int_bound 10_000)) (int_range 8 96))
    (fun (ints, cap) ->
      let xs = Array.of_list (List.map float_of_int ints) in
      let sk = Sketch.create ~capacity:cap () in
      Array.iter (Sketch.add sk) xs;
      List.iter
        (fun q -> check_rank_bound ~msg:"add-only" xs sk q)
        [ 0.; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1. ];
      true)

let prop_sketch_merge =
  QCheck.Test.make ~count:40 ~name:"sketch merge summarizes the union"
    QCheck.(pair (list (int_bound 5_000)) (list (int_bound 5_000)))
    (fun (la, lb) ->
      let a = Sketch.create ~capacity:32 () in
      let b = Sketch.create ~capacity:64 () in
      List.iter (fun v -> Sketch.add a (float_of_int v)) la;
      List.iter (fun v -> Sketch.add b (float_of_int v)) lb;
      let m = Sketch.merge a b in
      check ci "merged count" (List.length la + List.length lb) (Sketch.count m);
      check ci "merged capacity" 64 (Sketch.capacity m);
      let union = Array.of_list (List.map float_of_int (la @ lb)) in
      if Array.length union > 0 then begin
        check cb "merged min" true (Sketch.min_value m = Array.fold_left min infinity union);
        check cb "merged max" true
          (Sketch.max_value m = Array.fold_left max neg_infinity union);
        List.iter (fun q -> check_rank_bound ~msg:"merged" union m q) [ 0.25; 0.5; 0.9 ]
      end;
      (* inputs unchanged *)
      check ci "a unchanged" (List.length la) (Sketch.count a);
      true)

(* ---- timeseries ---- *)

let test_timeseries_coarsening () =
  let ts = Timeseries.create ~capacity:8 () in
  let c_cum = Timeseries.add_column ts ~name:"events" Timeseries.Cum in
  let c_inst = Timeseries.add_column ts ~name:"rate" Timeseries.Inst in
  for i = 1 to 16 do
    let v = float_of_int i in
    let values = Array.make 2 nan in
    values.(c_cum) <- v;
    values.(c_inst) <- v;
    Timeseries.append ts ~ts_ns:(Int64.of_int i) ~ev:i ~label:"t" values
  done;
  check ci "bounded" 8 (Timeseries.length ts);
  check ci "coarsened once" 1 (Timeseries.coarsenings ts);
  let rows = Timeseries.rows ts in
  let cums = List.map (fun (r : Timeseries.row) -> r.r_values.(c_cum)) rows in
  let insts = List.map (fun (r : Timeseries.row) -> r.r_values.(c_inst)) rows in
  (* 16 appends into 8 slots: pairs (1,2)..(15,16) merged once.  Cum
     keeps the later value, Inst averages. *)
  check (Alcotest.list (Alcotest.float 0.)) "cum keeps later"
    [ 2.; 4.; 6.; 8.; 10.; 12.; 14.; 16. ] cums;
  check (Alcotest.list (Alcotest.float 0.)) "inst averages"
    [ 1.5; 3.5; 5.5; 7.5; 9.5; 11.5; 13.5; 15.5 ] insts;
  (* timestamps/event indices keep the later of each merged pair *)
  (match Timeseries.last ts with
  | Some r -> check ci "last ev" 16 r.r_ev
  | None -> Alcotest.fail "no rows");
  (* a column registered late pads old rows with nan *)
  let c_new = Timeseries.add_column ts ~name:"late" Timeseries.Inst in
  let r0 = List.hd (Timeseries.rows ts) in
  check cb "late column reads nan in old rows" true (Float.is_nan r0.r_values.(c_new))

(* Regression: coarsening an odd number of slots keeps the trailing row
   (and its fill) as-is instead of dropping or double-counting it. *)
let test_timeseries_odd_coarsen () =
  let ts = Timeseries.create ~capacity:9 () in
  let c = Timeseries.add_column ts ~name:"v" Timeseries.Inst in
  for i = 1 to 10 do
    let values = Array.make 1 nan in
    values.(c) <- float_of_int i;
    Timeseries.append ts ~ts_ns:(Int64.of_int i) ~ev:i ~label:"" values
  done;
  (* 9 full slots coarsen on the 10th append: four pairs plus the odd
     ninth row, then the fresh sample opens a new slot. *)
  check ci "coarsened once" 1 (Timeseries.coarsenings ts);
  check ci "rows after odd coarsen" 6 (Timeseries.length ts);
  check (Alcotest.list ci) "fills: pairs, odd survivor, fresh tail"
    [ 2; 2; 2; 2; 1; 1 ] (Timeseries.fills ts);
  let vals =
    List.map (fun (r : Timeseries.row) -> r.r_values.(c)) (Timeseries.rows ts)
  in
  check (Alcotest.list (Alcotest.float 0.)) "odd row merged as itself"
    [ 1.5; 3.5; 5.5; 7.5; 9.; 10. ] vals

(* Regression: rows recorded before a column existed are narrower than
   the current schema; merging a missing (nan) cell with a recorded one
   must keep the recorded value, for both kinds. *)
let test_timeseries_ragged_columns () =
  let ts = Timeseries.create ~capacity:8 () in
  let a = Timeseries.add_column ts ~name:"a" Timeseries.Inst in
  for i = 1 to 3 do
    let values = Array.make 1 nan in
    values.(a) <- float_of_int i;
    Timeseries.append ts ~ts_ns:(Int64.of_int i) ~ev:i ~label:"" values
  done;
  let b = Timeseries.add_column ts ~name:"b" Timeseries.Cum in
  for i = 4 to 8 do
    let values = Array.make 2 nan in
    values.(a) <- float_of_int i;
    values.(b) <- float_of_int (10 * i);
    Timeseries.append ts ~ts_ns:(Int64.of_int i) ~ev:i ~label:"" values
  done;
  (* 9th append coarsens; the pair (3, 4) straddles the schema growth *)
  let values = Array.make 2 nan in
  values.(a) <- 9.;
  values.(b) <- 90.;
  Timeseries.append ts ~ts_ns:9L ~ev:9 ~label:"" values;
  check ci "coarsened once" 1 (Timeseries.coarsenings ts);
  let rows = Array.of_list (Timeseries.rows ts) in
  check ci "rows" 5 (Array.length rows);
  (* rows: (1,2) (3,4) (5,6) (7,8) (9) *)
  check cb "b nan before it existed" true (Float.is_nan rows.(0).r_values.(b));
  check (Alcotest.float 0.) "nan-merge keeps the recorded value" 40.
    rows.(1).r_values.(b);
  check (Alcotest.float 0.) "inst averages across the straddle" 3.5
    rows.(1).r_values.(a);
  check (Alcotest.float 0.) "cum keeps later across pair" 60. rows.(2).r_values.(b);
  check (Alcotest.float 0.) "inst still averages" 5.5 rows.(2).r_values.(a);
  check (Alcotest.float 0.) "fresh tail" 90. rows.(4).r_values.(b)

(* Coarsening conserves raw samples: however many times the ring halves,
   the fills sum to the append count and the fill-weighted mean of an
   Inst column equals the mean of everything ever appended. *)
let prop_timeseries_conservation =
  QCheck.Test.make ~count:60 ~name:"timeseries coarsening conserves samples"
    QCheck.(pair (int_range 8 24) (int_range 0 2_000))
    (fun (cap, n) ->
      let ts = Timeseries.create ~capacity:cap () in
      let c = Timeseries.add_column ts ~name:"x" Timeseries.Inst in
      for i = 1 to n do
        let values = Array.make 1 nan in
        values.(c) <- float_of_int i;
        Timeseries.append ts ~ts_ns:(Int64.of_int i) ~ev:i ~label:"" values
      done;
      let fills = Timeseries.fills ts in
      let rows = Timeseries.rows ts in
      let total = List.fold_left ( + ) 0 fills in
      if total <> n then Alcotest.failf "fills sum %d <> %d appends" total n;
      if Timeseries.length ts > cap then Alcotest.fail "ring exceeded capacity";
      let weighted =
        List.fold_left2
          (fun acc w (r : Timeseries.row) ->
            acc +. (float_of_int w *. r.r_values.(c)))
          0. fills rows
      in
      let exact = float_of_int (n * (n + 1)) /. 2. in
      if Float.abs (weighted -. exact) > 1e-6 *. Float.max 1. exact then
        Alcotest.failf "weighted sum %g <> exact %g (n=%d cap=%d)" weighted exact n cap;
      (* event indices stay strictly increasing oldest-first *)
      let evs = List.map (fun (r : Timeseries.row) -> r.r_ev) rows in
      if List.sort compare evs <> evs then Alcotest.fail "event order broken";
      true)

let test_timeseries_long_run_bounded () =
  let ts = Timeseries.create ~capacity:16 () in
  let c = Timeseries.add_column ts ~name:"n" Timeseries.Cum in
  for i = 1 to 10_000 do
    let values = [| 0. |] in
    values.(c) <- float_of_int i;
    Timeseries.append ts ~ts_ns:(Int64.of_int i) ~ev:i ~label:"" values
  done;
  check cb "still bounded after 10k appends" true (Timeseries.length ts <= 16);
  (match Timeseries.last ts with
  | Some r -> check (Alcotest.float 0.) "newest value survives" 10_000. r.r_values.(c)
  | None -> Alcotest.fail "no rows");
  check cb "coarsened repeatedly" true (Timeseries.coarsenings ts >= 9)

(* ---- recorder ---- *)

let test_recorder_tick_and_poll =
  with_rec (fun () ->
      let seen = ref [] in
      Recorder.configure ~capacity:32 ~interval_events:100
        ~wall_interval_ns:Int64.max_int
        ~on_sample:(fun s -> seen := s :: !seen)
        ();
      check cb "enabled after configure" true (Recorder.enabled ());
      check ci "configured cadence" 100 (Recorder.interval_events ());
      Metric.add (Metric.counter "rec.test_counter") 7;
      Metric.set (Metric.gauge "rec.test_gauge") 1.5;
      Recorder.tick ~label:"a" ~events:100 ();
      Metric.add (Metric.counter "rec.test_counter") 3;
      Recorder.tick ~label:"b" ~events:200 ();
      (* the wall interval is maxed out, so poll must record nothing *)
      Recorder.poll ~label:"p" ();
      let ts = match Recorder.timeseries () with Some ts -> ts | None -> Alcotest.fail "no ts" in
      check ci "two rows (poll suppressed)" 2 (Timeseries.length ts);
      check ci "on_sample fired per row" 2 (List.length !seen);
      let col name =
        match Timeseries.find_column ts name with
        | Some i -> i
        | None -> Alcotest.failf "missing column %s" name
      in
      let rows = Timeseries.rows ts in
      let r1 = List.nth rows 0 and r2 = List.nth rows 1 in
      check ci "row events" 100 r1.Timeseries.r_ev;
      check (Alcotest.string) "row label" "b" r2.r_label;
      check (Alcotest.float 0.) "counter column row1" 7. r1.r_values.(col "rec.test_counter");
      check (Alcotest.float 0.) "counter column row2" 10. r2.r_values.(col "rec.test_counter");
      check (Alcotest.float 0.) "gauge column" 1.5 r2.r_values.(col "rec.test_gauge");
      (* disabled: entry points are inert, timeline stays readable *)
      Recorder.disable ();
      Recorder.tick ~label:"dead" ();
      check ci "tick after disable records nothing" 2 (Timeseries.length ts);
      (* a tiny wall interval lets poll record *)
      Recorder.configure ~capacity:32 ~interval_events:100 ~wall_interval_ns:1L ();
      Recorder.poll ~label:"p" ();
      let ts = match Recorder.timeseries () with Some ts -> ts | None -> Alcotest.fail "no ts" in
      check ci "poll records once elapsed" 1 (Timeseries.length ts))

let test_recorder_histogram_columns =
  with_rec (fun () ->
      Recorder.configure ~capacity:16 ~wall_interval_ns:Int64.max_int ();
      let h = Metric.histogram ~lo:0. ~hi:100. ~buckets:10 "rec.lat" in
      for i = 1 to 100 do
        Metric.observe h (float_of_int i)
      done;
      Recorder.tick ~events:1 ();
      let ts = match Recorder.timeseries () with Some ts -> ts | None -> Alcotest.fail "no ts" in
      let r = match Timeseries.last ts with Some r -> r | None -> Alcotest.fail "no row" in
      let get name =
        match Timeseries.find_column ts name with
        | Some i -> r.Timeseries.r_values.(i)
        | None -> Alcotest.failf "missing column %s" name
      in
      check (Alcotest.float 0.) "count column" 100. (get "rec.lat.count");
      let p50 = get "rec.lat.p50" in
      check cb "p50 near median" true (p50 >= 40. && p50 <= 60.);
      let p99 = get "rec.lat.p99" in
      check cb "p99 near tail" true (p99 >= 90. && p99 <= 100.))

(* ---- exporters ---- *)

(* OpenMetrics text: every line up to the terminating "# EOF" is either
   a comment or `name[{quantile="q"}] value` with a float value and a
   sanitized name. *)
let check_openmetrics_wellformed om =
  let lines = String.split_on_char '\n' om in
  let rec last_nonempty = function
    | [] -> ""
    | [ x ] -> x
    | "" :: rest -> last_nonempty rest
    | x :: rest -> ( match last_nonempty rest with "" -> x | y -> y)
  in
  check (Alcotest.string) "terminator" "# EOF" (last_nonempty lines);
  List.iter
    (fun line ->
      if line <> "" && not (String.length line >= 1 && line.[0] = '#') then begin
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "malformed line: %s" line
        | Some sp ->
          let value = String.sub line (sp + 1) (String.length line - sp - 1) in
          (match float_of_string_opt value with
          | Some _ -> ()
          | None -> Alcotest.failf "unparseable value in: %s" line);
          let name =
            match String.index_opt line '{' with
            | Some b -> String.sub line 0 b
            | None -> String.sub line 0 sp
          in
          String.iter
            (fun c ->
              let ok =
                (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
                || (c >= '0' && c <= '9')
                || c = '_' || c = ':'
              in
              if not ok then Alcotest.failf "unsanitized name in: %s" line)
            name
      end)
    lines

let check_csv_wellformed csv =
  match String.split_on_char '\n' (String.trim csv) with
  | [] -> Alcotest.fail "empty csv"
  | header :: rows ->
    let width = List.length (String.split_on_char ',' header) in
    check cb "csv has header" true (width >= 3);
    List.iter
      (fun row ->
        if row <> "" then
          check ci "csv row width" width (List.length (String.split_on_char ',' row)))
      rows

let test_openmetrics_golden =
  with_rec (fun () ->
      Metric.add (Metric.counter "golden.events") 42;
      Metric.incr (Metric.counter "golden.errors!total");
      Metric.set (Metric.gauge "golden.queue-depth") 3.5;
      let h = Metric.histogram ~lo:0. ~hi:100. ~buckets:10 "golden.latency_ms" in
      for i = 1 to 100 do
        Metric.observe h (float_of_int i)
      done;
      let got = Export.openmetrics () in
      let ic = open_in "golden_openmetrics.expected" in
      let n = in_channel_length ic in
      let expected = really_input_string ic n in
      close_in ic;
      check (Alcotest.string) "openmetrics golden" expected got)

let test_timeline_exports =
  with_rec (fun () ->
      Recorder.configure ~capacity:16 ~wall_interval_ns:Int64.max_int ();
      Metric.add (Metric.counter "tl.n") 1;
      Recorder.tick ~label:"with,comma" ~events:10 ();
      Metric.add (Metric.counter "tl.n") 1;
      Recorder.tick ~events:20 ();
      let csv = Export.timeline_csv () in
      check_csv_wellformed csv;
      (* The label's comma must be escaped: a naive comma-split of any
         row yields exactly the header's field count. *)
      let lines = String.split_on_char '\n' (String.trim csv) in
      let width = List.length (String.split_on_char ',' (List.hd lines)) in
      check cb "label comma escaped" true
        (not (List.exists (fun l -> List.length (String.split_on_char ',' l) > width) lines));
      let json = Export.timeline_json () in
      let mentions sub str =
        let n = String.length str and m = String.length sub in
        let rec go i = i + m <= n && (String.sub str i m = sub || go (i + 1)) in
        go 0
      in
      check cb "json mentions columns" true (mentions "\"columns\"" json))

(* 4 domains hammer the registry while the main domain exports; the
   exports must stay well-formed throughout, and the final quantiles
   must satisfy the sketch bound over everything emitted. *)
let prop_concurrent_export =
  QCheck.Test.make ~count:10 ~name:"exports well-formed under 4-domain emission"
    QCheck.(list_of_size Gen.(int_range 64 256) (int_bound 1_000))
    (fun ints ->
      Control.set true;
      Metric.reset ();
      Fun.protect
        ~finally:(fun () ->
          Recorder.disable ();
          Metric.reset ();
          Control.set false)
        (fun () ->
          Recorder.configure ~capacity:32 ~wall_interval_ns:Int64.max_int ();
          let xs = Array.of_list (List.map float_of_int ints) in
          let domains =
            Array.init 4 (fun d ->
                Domain.spawn (fun () ->
                    let h = Metric.histogram ~lo:0. ~hi:1000. ~buckets:16 "conc.lat" in
                    let c = Metric.counter "conc.n" in
                    Array.iter
                      (fun x ->
                        Metric.observe h x;
                        Metric.incr c)
                      xs;
                    ignore d))
          in
          (* export (and tick) while the domains are emitting *)
          for i = 1 to 5 do
            Recorder.tick ~events:i ();
            check_openmetrics_wellformed (Export.openmetrics ());
            check_csv_wellformed (Export.timeline_csv ())
          done;
          Array.iter Domain.join domains;
          Recorder.tick ~events:99 ();
          check_openmetrics_wellformed (Export.openmetrics ());
          check_csv_wellformed (Export.timeline_csv ());
          let snap = Metric.snapshot () in
          check ci "all increments landed" (4 * Array.length xs)
            (List.assoc "conc.n" snap.Metric.counters);
          let h = Metric.histogram "conc.lat" in
          let all = Array.concat [ xs; xs; xs; xs ] in
          check ci "all observations landed" (Array.length all)
            (Sketch.count (Metric.sketch h));
          List.iter
            (fun q -> check_rank_bound ~msg:"concurrent" all (Metric.sketch h) q)
            [ 0.5; 0.95; 0.99 ];
          true))

(* ---- executor integration: streamed = materialized timelines ---- *)

(* Event-derived timeline values must be identical between run_packed
   and run_stream at every event-cadence tick, whatever the segment
   size.  (Wall-clock poll rows are suppressed via a huge interval;
   wall-derived columns like segment throughput are excluded.) *)
let event_columns =
  [ "executor.live_objects"; "executor.heap_live_bytes"; "executor.cache_hit_rate";
    "executor.region_peak_bytes"; "executor.recoveries"; "executor.alloc_bytes.count";
    "executor.alloc_bytes.p50"; "executor.alloc_bytes.p95"; "executor.alloc_bytes.p99" ]

let recorder_rows_of run =
  Metric.reset ();
  Recorder.configure ~capacity:4096 ~interval_events:10_000
    ~wall_interval_ns:Int64.max_int ();
  ignore (run ());
  Recorder.disable ();
  let ts = match Recorder.timeseries () with Some ts -> ts | None -> Alcotest.fail "no ts" in
  List.map
    (fun (r : Timeseries.row) ->
      ( r.r_ev,
        List.map
          (fun name ->
            match Timeseries.find_column ts name with
            | Some i ->
              let v = r.r_values.(i) in
              if Float.is_nan v then "nan" else Printf.sprintf "%.17g" v
            | None -> "absent")
          event_columns ))
    (Timeseries.rows ts)

let test_stream_timeline_matches_packed =
  with_rec (fun () ->
      let wl = Prefix_workloads.Registry.find "mcf" in
      let trace = wl.generate ~scale:Prefix_workloads.Workload.Profiling ~seed:7 () in
      let packed = Prefix_trace.Packed.of_trace trace in
      let costs = Prefix_runtime.Executor.default_config.costs in
      let policy heap = Prefix_runtime.Policy.baseline costs heap in
      let rows_packed =
        recorder_rows_of (fun () -> Prefix_runtime.Executor.run_packed ~policy packed)
      in
      let rows_streamed =
        recorder_rows_of (fun () ->
            Prefix_runtime.Executor.run_stream ~policy
              (Prefix_trace.Stream.of_packed ~segment_events:7_777 packed))
      in
      check ci "same number of samples" (List.length rows_packed)
        (List.length rows_streamed);
      check cb "several samples recorded" true (List.length rows_packed >= 3);
      List.iter2
        (fun (ev_p, vs_p) (ev_s, vs_s) ->
          check ci "tick at same event index" ev_p ev_s;
          List.iter2 (check (Alcotest.string) "event-derived value") vs_p vs_s)
        rows_packed rows_streamed)

let suite =
  [ ( "telemetry",
      [ Alcotest.test_case "clock monotonic 10k" `Quick test_clock_monotonic;
        Alcotest.test_case "clock monotonic across domains" `Quick
          test_clock_monotonic_domains;
        Alcotest.test_case "sketch basics" `Quick test_sketch_basics;
        Alcotest.test_case "sketch exact at small counts" `Quick test_sketch_exact_small;
        QCheck_alcotest.to_alcotest prop_sketch_exact_under_capacity;
        QCheck_alcotest.to_alcotest prop_sketch_rank_error;
        QCheck_alcotest.to_alcotest prop_sketch_merge;
        Alcotest.test_case "timeseries odd-slot coarsen" `Quick test_timeseries_odd_coarsen;
        Alcotest.test_case "timeseries ragged columns" `Quick test_timeseries_ragged_columns;
        QCheck_alcotest.to_alcotest prop_timeseries_conservation;
        Alcotest.test_case "timeseries coarsening semantics" `Quick
          test_timeseries_coarsening;
        Alcotest.test_case "timeseries bounded over 10k appends" `Quick
          test_timeseries_long_run_bounded;
        Alcotest.test_case "recorder tick/poll" `Quick test_recorder_tick_and_poll;
        Alcotest.test_case "recorder histogram columns" `Quick
          test_recorder_histogram_columns;
        Alcotest.test_case "openmetrics golden file" `Quick test_openmetrics_golden;
        Alcotest.test_case "timeline csv/json exports" `Quick test_timeline_exports;
        QCheck_alcotest.to_alcotest prop_concurrent_export;
        Alcotest.test_case "streamed timeline = materialized" `Quick
          test_stream_timeline_matches_packed ] ) ]
