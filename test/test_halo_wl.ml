(* Tests for the HALO baseline analysis and the 13 workload models. *)

module Halo = Prefix_halo.Halo
module Trace_stats = Prefix_trace.Trace_stats
module Trace = Prefix_trace.Trace
module Workload = Prefix_workloads.Workload
module Registry = Prefix_workloads.Registry
module B = Prefix_workloads.Builder

(* ---- HALO analysis ---- *)

(* Two hot contexts whose objects are accessed together, one hot context
   accessed far away, one cold context. *)
let halo_trace () =
  let b = B.create ~seed:4 () in
  let a1 = B.alloc b ~site:1 ~ctx:100 32 in
  let a2 = B.alloc b ~site:2 ~ctx:200 32 in
  let far = B.alloc b ~site:3 ~ctx:300 32 in
  let cold = B.alloc b ~site:4 ~ctx:400 32 in
  B.access b cold 0;
  for _ = 1 to 100 do
    (* a1 and a2 co-accessed; far accessed in its own phase *)
    B.access b a1 0;
    B.access b a2 0
  done;
  for _ = 1 to 100 do
    B.access b far 0
  done;
  B.trace b

let test_halo_grouping () =
  let trace = halo_trace () in
  let stats = Trace_stats.analyze trace in
  let plan = Halo.plan_of_trace stats trace in
  Alcotest.(check bool) "cold ctx not in plan" true
    (not (List.mem 400 plan.hot_ctxs));
  let g1 = Halo.ctx_in_plan plan 100 and g2 = Halo.ctx_in_plan plan 200 in
  Alcotest.(check bool) "co-accessed ctxs share a group" true (g1 = g2 && g1 <> None);
  Alcotest.(check bool) "hot ctx 300 captured" true (Halo.ctx_in_plan plan 300 <> None)

let test_halo_unknown_ctx () =
  let trace = halo_trace () in
  let stats = Trace_stats.analyze trace in
  let plan = Halo.plan_of_trace stats trace in
  Alcotest.(check (option int)) "unknown" None (Halo.ctx_in_plan plan 99999)

(* ---- Workload models ---- *)

let test_all_traces_valid () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun scale ->
          let t = w.generate ~scale ~seed:7 () in
          match Trace.validate t with
          | [] -> ()
          | v :: _ ->
            Alcotest.failf "%s (%s): %s" w.name (Workload.scale_name scale)
              (Format.asprintf "%a" Trace.pp_violation v))
        [ Workload.Profiling; Workload.Long ])
    Registry.all

let test_deterministic () =
  List.iter
    (fun (w : Workload.t) ->
      let t1 = w.generate ~scale:Workload.Profiling ~seed:7 () in
      let t2 = w.generate ~scale:Workload.Profiling ~seed:7 () in
      Alcotest.(check int) (w.name ^ " same length") (Trace.length t1) (Trace.length t2);
      Alcotest.(check string) (w.name ^ " same content")
        (Prefix_trace.Serialize.event_to_line (Trace.get t1 (Trace.length t1 / 2)))
        (Prefix_trace.Serialize.event_to_line (Trace.get t2 (Trace.length t2 / 2))))
    Registry.all

let test_scales_differ () =
  List.iter
    (fun (w : Workload.t) ->
      let p = w.generate ~scale:Workload.Profiling ~seed:7 () in
      let l = w.generate ~scale:Workload.Long ~seed:7 () in
      Alcotest.(check bool) (w.name ^ " long is longer") true
        (Trace.length l > Trace.length p))
    Registry.all

let test_allocation_prefix_stable_across_scales () =
  (* Fixed instance ids only work if the allocation *order* of the setup
     phase is identical in profiling and long runs. *)
  List.iter
    (fun name ->
      let w = Registry.find name in
      let p = w.generate ~scale:Workload.Profiling ~seed:7 () in
      let l = w.generate ~scale:Workload.Long ~seed:7 () in
      let allocs t =
        let out = ref [] in
        Trace.iter
          (fun e ->
            match (e : Prefix_trace.Event.t) with
            | Alloc { obj; site; size; _ } -> out := (obj, site, size) :: !out
            | _ -> ())
          t;
        List.rev !out
      in
      let ap = allocs p and al = allocs l in
      let rec prefix_eq n a b =
        if n = 0 then true
        else
          match (a, b) with
          | x :: a', y :: b' -> x = y && prefix_eq (n - 1) a' b'
          | _ -> false
      in
      (* The first 50 allocations (the setup phase) must agree. *)
      Alcotest.(check bool) (name ^ " setup allocations stable") true
        (prefix_eq (min 50 (List.length ap)) ap al))
    [ "mcf"; "mysql"; "xalanc"; "health"; "ft"; "analyzer"; "libc"; "omnetpp"; "perl" ]

let test_threads_honoured () =
  List.iter
    (fun (w : Workload.t) ->
      if w.bench_threads then begin
        let t = w.generate ~threads:4 ~scale:Workload.Profiling ~seed:7 () in
        let threads = Hashtbl.create 8 in
        Trace.iter (fun e -> Hashtbl.replace threads (Prefix_trace.Event.thread e) ()) t;
        Alcotest.(check bool) (w.name ^ " uses 4 threads") true (Hashtbl.length threads >= 4)
      end)
    Registry.all

let test_registry () =
  Alcotest.(check int) "13 benchmarks" 13 (List.length Registry.all);
  Alcotest.(check bool) "find works" true ((Registry.find "mcf").name = "mcf");
  Alcotest.check_raises "unknown" Not_found (fun () -> ignore (Registry.find "nope"))

let test_builder_bounds () =
  let b = B.create () in
  let o = B.alloc b ~site:1 32 in
  Alcotest.check_raises "oob access"
    (Invalid_argument "Builder.access: offset 32 outside object 1 (size 32)") (fun () ->
      B.access b o 32);
  B.free b o;
  Alcotest.check_raises "use after free"
    (Invalid_argument "Builder.access: object 1 is not live") (fun () -> B.access b o 0)

let suite =
  [ ( "halo",
      [ Alcotest.test_case "grouping" `Quick test_halo_grouping;
        Alcotest.test_case "unknown ctx" `Quick test_halo_unknown_ctx ] );
    ( "workloads",
      [ Alcotest.test_case "all traces valid" `Slow test_all_traces_valid;
        Alcotest.test_case "deterministic" `Quick test_deterministic;
        Alcotest.test_case "scales differ" `Quick test_scales_differ;
        Alcotest.test_case "setup allocations stable" `Quick
          test_allocation_prefix_stable_across_scales;
        Alcotest.test_case "threads honoured" `Quick test_threads_honoured;
        Alcotest.test_case "registry" `Quick test_registry;
        Alcotest.test_case "builder bounds" `Quick test_builder_bounds ] ) ]
