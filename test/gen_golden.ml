(* Regenerates the OpenMetrics golden file used by
   test_telemetry.ml's "openmetrics golden file" test.  The registry
   contents here must stay in sync with that test:

     dune exec test/gen_golden.exe > test/golden_openmetrics.expected *)

module Metric = Prefix_obs.Metric

let () =
  Prefix_obs.Control.set true;
  Metric.reset ();
  Metric.add (Metric.counter "golden.events") 42;
  Metric.incr (Metric.counter "golden.errors!total");
  Metric.set (Metric.gauge "golden.queue-depth") 3.5;
  let h = Metric.histogram ~lo:0. ~hi:100. ~buckets:10 "golden.latency_ms" in
  for i = 1 to 100 do
    Metric.observe h (float_of_int i)
  done;
  print_string (Prefix_obs.Export.openmetrics ())
