(* Tests for Prefix_cachesim: Cache, Hierarchy, Cycles, Heatmap. *)

open Prefix_cachesim

let small_cache () = Cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 ()

let test_geometry () =
  let c = small_cache () in
  Alcotest.(check int) "sets" 8 (Cache.sets c);
  Alcotest.(check int) "assoc" 2 (Cache.assoc c);
  Alcotest.(check int) "line" 64 (Cache.line_bytes c)

let test_geometry_invalid () =
  Alcotest.check_raises "bad line" (Invalid_argument "Cache: line size must be a power of two")
    (fun () -> ignore (Cache.create ~size_bytes:960 ~assoc:2 ~line_bytes:48 ()))

let test_cold_miss_then_hit () =
  let c = small_cache () in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit" true (Cache.access c 0);
  Alcotest.(check bool) "same line hit" true (Cache.access c 63);
  Alcotest.(check bool) "next line misses" false (Cache.access c 64);
  Alcotest.(check int) "misses" 2 (Cache.misses c);
  Alcotest.(check int) "accesses" 4 (Cache.accesses c)

let test_lru_eviction () =
  let c = small_cache () in
  (* Three lines mapping to the same set (set stride = 8 lines * 64 B). *)
  let a = 0 and b = 8 * 64 and d = 16 * 64 in
  ignore (Cache.access c a);
  ignore (Cache.access c b);
  ignore (Cache.access c a); (* a is now MRU *)
  ignore (Cache.access c d); (* evicts b (LRU) *)
  Alcotest.(check bool) "a survives" true (Cache.access c a);
  Alcotest.(check bool) "b evicted" false (Cache.access c b)

let test_capacity () =
  let c = small_cache () in
  (* Touch exactly as many lines as the cache holds: all fit. *)
  for i = 0 to 15 do
    ignore (Cache.access c (i * 64))
  done;
  Cache.reset_counters c;
  for i = 0 to 15 do
    ignore (Cache.access c (i * 64))
  done;
  Alcotest.(check int) "fully resident" 0 (Cache.misses c)

let test_writebacks () =
  let c = small_cache () in
  (* Fill one set (2 ways) with dirty lines, then force evictions. *)
  let a = 0 and b = 8 * 64 and d = 16 * 64 in
  ignore (Cache.access ~write:true c a);
  ignore (Cache.access ~write:true c b);
  Alcotest.(check int) "no writebacks yet" 0 (Cache.writebacks c);
  ignore (Cache.access c d);
  (* evicts dirty a *)
  Alcotest.(check int) "one writeback" 1 (Cache.writebacks c);
  (* clean eviction: d was a read-only fill *)
  ignore (Cache.access c a);
  (* evicts dirty b *)
  ignore (Cache.access c b);
  (* evicts clean d -> still 2 *)
  Alcotest.(check int) "dirty only" 2 (Cache.writebacks c)

let test_flush () =
  let c = small_cache () in
  ignore (Cache.access c 0);
  Cache.flush c;
  Alcotest.(check int) "counters cleared" 0 (Cache.accesses c);
  Alcotest.(check bool) "contents cleared" false (Cache.access c 0)

let test_tlb_constructor () =
  let t = Cache.create_entries ~entries:16 ~assoc:4 ~page_bytes:4096 () in
  Alcotest.(check int) "sets" 4 (Cache.sets t);
  ignore (Cache.access t 0);
  Alcotest.(check bool) "same page hits" true (Cache.access t 4095);
  Alcotest.(check bool) "next page misses" false (Cache.access t 4096)

let test_hierarchy_counters () =
  let h = Hierarchy.create ~config:Hierarchy.scaled_config () in
  for i = 0 to 999 do
    Hierarchy.access h (i * 64)
  done;
  (* Second pass: 1000 lines = 62.5 KB exceeds the 8 KB L1 but fits LLC. *)
  for i = 0 to 999 do
    Hierarchy.access h (i * 64)
  done;
  let c = Hierarchy.counters h in
  Alcotest.(check int) "refs" 2000 c.refs;
  Alcotest.(check bool) "L1 thrashes" true (c.l1_misses > 1500);
  Alcotest.(check int) "LLC holds everything" 1000 c.llc_misses;
  Alcotest.(check bool) "rates consistent" true
    (Hierarchy.llc_miss_rate h <= Hierarchy.l1_miss_rate h)

let test_paper_config_geometry () =
  (* 32 KB 8-way 64 B lines = 64 sets; 40 MB 20-way = 32768 sets. *)
  let c = Hierarchy.paper_config in
  Alcotest.(check int) "l1" (32 * 1024) c.l1_size;
  Alcotest.(check int) "llc assoc" 20 c.llc_assoc;
  ignore (Hierarchy.create ~config:c ())

let test_cycles_compute_only () =
  let est =
    Cycles.estimate ~instructions:4000
      { refs = 0; l1_misses = 0; llc_misses = 0; l1_tlb_misses = 0; l2_tlb_misses = 0; writebacks = 0 }
  in
  Alcotest.(check (float 1e-9)) "width-4 issue" 1000. est.total_cycles;
  Alcotest.(check (float 1e-9)) "no stalls" 0. est.backend_stall_pct

let test_cycles_memory_monotone () =
  let base =
    Cycles.estimate ~instructions:1000
      { refs = 100; l1_misses = 10; llc_misses = 0; l1_tlb_misses = 0; l2_tlb_misses = 0; writebacks = 0 }
  in
  let worse =
    Cycles.estimate ~instructions:1000
      { refs = 100; l1_misses = 10; llc_misses = 10; l1_tlb_misses = 0; l2_tlb_misses = 0; writebacks = 0 }
  in
  Alcotest.(check bool) "dram misses cost more" true
    (worse.total_cycles > base.total_cycles);
  Alcotest.(check bool) "stall pct grows" true
    (worse.backend_stall_pct > base.backend_stall_pct)

let test_time_seconds () =
  let est =
    Cycles.estimate ~instructions:12_000_000_000
      { refs = 0; l1_misses = 0; llc_misses = 0; l1_tlb_misses = 0; l2_tlb_misses = 0; writebacks = 0 }
  in
  Alcotest.(check (float 1e-6)) "3 GHz" 1.0 (Cycles.time_seconds est)

(* In-test reference model: true-LRU set-associative cache with the
   same counters, no MRU shortcut.  The production [Cache.probe]'s
   MRU-first early exit must be behaviorally invisible against it. *)
module Ref_cache = struct
  type t = {
    sets : int;
    assoc : int;
    line_bits : int;
    tags : int array;
    stamps : int array;
    dirty : bool array;
    mutable clock : int;
    mutable accesses : int;
    mutable misses : int;
    mutable writebacks : int;
  }

  let create ~size_bytes ~assoc ~line_bytes =
    let sets = size_bytes / (assoc * line_bytes) in
    let rec log2 a n = if n <= 1 then a else log2 (a + 1) (n / 2) in
    { sets; assoc; line_bits = log2 0 line_bytes;
      tags = Array.make (sets * assoc) (-1);
      stamps = Array.make (sets * assoc) 0;
      dirty = Array.make (sets * assoc) false;
      clock = 0; accesses = 0; misses = 0; writebacks = 0 }

  let access t ~write addr =
    t.accesses <- t.accesses + 1;
    t.clock <- t.clock + 1;
    let line = addr lsr t.line_bits in
    let set = line mod t.sets in
    let base = set * t.assoc in
    let hit = ref (-1) in
    let lru = ref 0 in
    for w = 0 to t.assoc - 1 do
      if t.tags.(base + w) = line then hit := w;
      if t.stamps.(base + w) < t.stamps.(base + !lru) then lru := w
    done;
    if !hit >= 0 then begin
      t.stamps.(base + !hit) <- t.clock;
      if write then t.dirty.(base + !hit) <- true;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      let i = base + !lru in
      if t.tags.(i) >= 0 && t.dirty.(i) then t.writebacks <- t.writebacks + 1;
      t.tags.(i) <- line;
      t.stamps.(i) <- t.clock;
      t.dirty.(i) <- write;
      false
    end
end

let prop_mru_matches_reference =
  (* Random (addr, write) streams with few distinct lines so the same
     sets get revisited: hit/miss verdicts, counters and eviction
     decisions must match the plain-scan model access for access. *)
  QCheck.Test.make ~name:"MRU-first probe ≡ plain LRU scan" ~count:200
    (QCheck.make
       QCheck.Gen.(
         list_size (int_range 0 600) (pair (int_range 0 (24 * 64 - 1)) bool)))
    (fun stream ->
      let c = small_cache () in
      let r = Ref_cache.create ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
      List.for_all
        (fun (addr, write) -> Cache.probe c ~write addr = Ref_cache.access r ~write addr)
        stream
      && Cache.misses c = r.Ref_cache.misses
      && Cache.accesses c = r.Ref_cache.accesses
      && Cache.writebacks c = r.Ref_cache.writebacks)

let test_mru_fast_path_counts () =
  (* A same-line streak exercises the MRU early exit; the counters must
     be exactly those of the seed implementation (1 cold miss, rest
     hits), and a conflicting line must still evict true-LRU. *)
  let c = small_cache () in
  for _ = 1 to 100 do
    ignore (Cache.probe c ~write:false 0)
  done;
  Alcotest.(check int) "one cold miss" 1 (Cache.misses c);
  Alcotest.(check int) "all counted" 100 (Cache.accesses c);
  let b = 8 * 64 and d = 16 * 64 in
  ignore (Cache.probe c ~write:false b); (* fills the empty way of set 0 *)
  ignore (Cache.probe c ~write:false d); (* evicts line 0, the set's LRU *)
  Alcotest.(check bool) "LRU (line 0) evicted" false (Cache.probe c ~write:false 0);
  Alcotest.(check bool) "MRU survivor hits" true (Cache.probe c ~write:false d)

let test_probe_equals_access () =
  (* [probe] and [access] are the same function under two signatures. *)
  let c1 = small_cache () and c2 = small_cache () in
  for i = 0 to 200 do
    let addr = i * 48 mod 1500 in
    let w = i mod 3 = 0 in
    Alcotest.(check bool) "same verdict"
      (Cache.access ~write:w c1 addr)
      (Cache.probe c2 ~write:w addr)
  done;
  Alcotest.(check int) "same misses" (Cache.misses c1) (Cache.misses c2);
  Alcotest.(check int) "same writebacks" (Cache.writebacks c1) (Cache.writebacks c2)

let test_heatmap () =
  let h = Heatmap.create ~time_buckets:10 ~addr_buckets:5 () in
  Alcotest.(check int) "empty footprint" 0 (Heatmap.footprint_bytes h);
  Heatmap.record h ~time:0 ~addr:1000;
  Heatmap.record h ~time:50 ~addr:9000;
  (* Inclusive span: addresses 1000..9000 cover 8001 bytes, not 8000. *)
  Alcotest.(check int) "footprint" 8001 (Heatmap.footprint_bytes h);
  Alcotest.(check int) "samples" 2 (Heatmap.samples h);
  let s = Heatmap.render h in
  Alcotest.(check bool) "renders" true (String.length s > 0)

let test_heatmap_single_address () =
  (* Regression: a heatmap with samples at exactly one address used to
     report a footprint of 0 bytes (max - min). *)
  let h = Heatmap.create ~time_buckets:4 ~addr_buckets:4 () in
  Heatmap.record h ~time:0 ~addr:4096;
  Heatmap.record h ~time:9 ~addr:4096;
  Alcotest.(check int) "one byte footprint" 1 (Heatmap.footprint_bytes h)

let test_heatmap_thinning () =
  let h = Heatmap.create ~time_buckets:4 ~addr_buckets:4 () in
  for i = 0 to 500_000 do
    Heatmap.record h ~time:i ~addr:(i mod 1000);
    (* Regression: the thinning bookkeeping drifted from the real number
       of retained points, so the reservoir either over- or under-thinned. *)
    if i land 0xFFFF = 0 then
      Alcotest.(check int) "kept matches stored"
        (Heatmap.stored_points h) (Heatmap.kept_points h)
  done;
  Alcotest.(check int) "all samples counted" 500_001 (Heatmap.samples h);
  Alcotest.(check int) "kept matches stored at end"
    (Heatmap.stored_points h) (Heatmap.kept_points h);
  ignore (Heatmap.render h)

let suite =
  [ ( "cachesim",
      [ Alcotest.test_case "geometry" `Quick test_geometry;
        Alcotest.test_case "invalid geometry" `Quick test_geometry_invalid;
        Alcotest.test_case "miss then hit" `Quick test_cold_miss_then_hit;
        Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
        Alcotest.test_case "capacity" `Quick test_capacity;
        Alcotest.test_case "writebacks" `Quick test_writebacks;
        Alcotest.test_case "flush" `Quick test_flush;
        Alcotest.test_case "tlb constructor" `Quick test_tlb_constructor;
        Alcotest.test_case "hierarchy counters" `Quick test_hierarchy_counters;
        Alcotest.test_case "paper config" `Quick test_paper_config_geometry;
        Alcotest.test_case "cycles compute only" `Quick test_cycles_compute_only;
        Alcotest.test_case "cycles memory monotone" `Quick test_cycles_memory_monotone;
        Alcotest.test_case "time seconds" `Quick test_time_seconds;
        Alcotest.test_case "MRU fast path counts" `Quick test_mru_fast_path_counts;
        Alcotest.test_case "probe = access" `Quick test_probe_equals_access;
        QCheck_alcotest.to_alcotest prop_mru_matches_reference;
        Alcotest.test_case "heatmap" `Quick test_heatmap;
        Alcotest.test_case "heatmap single address" `Quick test_heatmap_single_address;
        Alcotest.test_case "heatmap thinning" `Quick test_heatmap_thinning ] ) ]
