(* Golden regression test for the headline result: the direction (and
   rough band) of every benchmark's Table 3 outcome.  This intentionally
   reruns the full harness, so it is tagged `Slow`; it is the guard that
   keeps workload or model changes from silently breaking the
   reproduction. *)

module H = Prefix_experiments.Harness
module P = Prefix_experiments.Paper_data

let test_every_benchmark_direction () =
  List.iter
    (fun name ->
      let r = H.find name in
      let best, _ = H.best_prefix r in
      let d = H.time_delta r best in
      let paper = (P.find_table3 name).best_pct in
      (* Best PreFix always wins, and lands within a generous band of
         the paper's value: at least a third of the paper's reduction,
         at most 3x of it (the known drifts in EXPERIMENTS.md fit). *)
      Alcotest.(check bool) (name ^ " wins") true (d < -1.0);
      Alcotest.(check bool)
        (Printf.sprintf "%s within band (measured %.1f, paper %.1f)" name d paper)
        true
        (d <= paper /. 3. && d >= paper *. 3.0))
    P.benchmarks

let test_mean_matches_paper () =
  let deltas =
    List.map
      (fun name ->
        let r = H.find name in
        H.time_delta r (fst (H.best_prefix r)))
      P.benchmarks
  in
  let mean = Prefix_util.Stats.mean deltas in
  (* paper: -21.7% *)
  Alcotest.(check bool) (Printf.sprintf "mean %.1f in [-27,-17]" mean) true
    (mean < -17. && mean > -27.)

let test_prefix_beats_hds_on_average () =
  let hds, best =
    List.fold_left
      (fun (h, b) name ->
        let r = H.find name in
        (h +. H.time_delta r r.hds, b +. H.time_delta r (fst (H.best_prefix r))))
      (0., 0.) P.benchmarks
  in
  Alcotest.(check bool) "PreFix mean below HDS mean" true (best < hds)

let test_pollution_ordering () =
  (* On every pollution benchmark, PreFix's region purity (hot/all) beats
     HDS's. *)
  List.iter
    (fun name ->
      let r = H.find name in
      let purity (p : H.policy_run) =
        if p.metrics.region_objects = 0 then 1.
        else
          float_of_int p.metrics.region_hot_objects
          /. float_of_int p.metrics.region_objects
      in
      let best, _ = H.best_prefix r in
      Alcotest.(check bool) (name ^ " purity") true (purity best >= purity r.hds))
    [ "perl"; "omnetpp"; "xalanc"; "ft" ]

let test_recycling_calls_avoided () =
  List.iter
    (fun (name, at_least) ->
      let r = H.find name in
      let best, _ = H.best_prefix r in
      Alcotest.(check bool)
        (Printf.sprintf "%s avoids >= %d calls" name at_least)
        true
        (best.metrics.calls_avoided >= at_least))
    [ ("povray", 10_000); ("roms", 10_000); ("leela", 40_000); ("swissmap", 8_000) ]

let suite =
  [ ( "headline",
      [ Alcotest.test_case "every benchmark direction" `Slow test_every_benchmark_direction;
        Alcotest.test_case "mean matches paper" `Slow test_mean_matches_paper;
        Alcotest.test_case "prefix beats HDS" `Slow test_prefix_beats_hds_on_average;
        Alcotest.test_case "pollution ordering" `Slow test_pollution_ordering;
        Alcotest.test_case "recycling calls avoided" `Slow test_recycling_calls_avoided ] ) ]
