(* Tests for Prefix_hds: Hds, Lcs, Sequitur, Detector. *)

module Hds = Prefix_hds.Hds
module Lcs = Prefix_hds.Lcs
module Sequitur = Prefix_hds.Sequitur
module Detector = Prefix_hds.Detector

(* ---- Hds ---- *)

let test_hds_dedup () =
  let h = Hds.make ~objs:[ 1; 2; 1; 3; 2 ] ~refs:10 in
  Alcotest.(check (list int)) "order preserved, dups dropped" [ 1; 2; 3 ] (Hds.objs h);
  Alcotest.(check int) "cardinal" 3 (Hds.cardinal h)

let test_hds_set_ops () =
  let a = Hds.make ~objs:[ 1; 2; 3 ] ~refs:5 in
  let b = Hds.make ~objs:[ 3; 4 ] ~refs:2 in
  let module IS = Set.Make (Int) in
  Alcotest.(check (list int)) "inter" [ 3 ] (IS.elements (Hds.inter a b));
  Alcotest.(check (list int)) "diff keeps order" [ 1; 2 ]
    (Hds.diff_objs a (Hds.obj_set b))

let test_hds_concat () =
  let a = Hds.make ~objs:[ 1; 2 ] ~refs:5 in
  let c = Hds.concat a [ 2; 3; 4 ] in
  Alcotest.(check (list int)) "appends new only" [ 1; 2; 3; 4 ] (Hds.objs c);
  Alcotest.(check int) "keeps refs" 5 (Hds.refs c)

let test_hds_compare () =
  let a = Hds.make ~objs:[ 1 ] ~refs:5 and b = Hds.make ~objs:[ 2 ] ~refs:9 in
  Alcotest.(check bool) "descending by refs" true (Hds.compare_by_refs b a < 0)

(* ---- Lcs ---- *)

let test_lcs_classic () =
  let a = [| 1; 3; 5; 9; 10; 11 |] and b = [| 1; 4; 5; 10; 11 |] in
  Alcotest.(check (array int)) "lcs" [| 1; 5; 10; 11 |] (Lcs.lcs a b)

let test_lcs_empty () =
  Alcotest.(check int) "empty" 0 (Lcs.length [||] [| 1; 2 |]);
  Alcotest.(check (Alcotest.float 1e-9)) "similarity 0" 0. (Lcs.similarity [||] [| 1 |])

let test_lcs_identical () =
  let a = Array.init 20 Fun.id in
  Alcotest.(check int) "full" 20 (Lcs.length a a);
  Alcotest.(check (Alcotest.float 1e-9)) "similarity 1" 1. (Lcs.similarity a a)

let test_split_runs () =
  (* Positions: two tight clusters separated by a big gap in `a`. *)
  let matches = [ (10, 0, 0); (11, 1, 2); (12, 2, 3); (13, 40, 4); (14, 41, 5) ] in
  let runs = Lcs.split_runs ~max_gap:4 matches in
  Alcotest.(check int) "two runs" 2 (List.length runs);
  Alcotest.(check (list int)) "first" [ 10; 11; 12 ] (List.nth runs 0);
  Alcotest.(check (list int)) "second" [ 13; 14 ] (List.nth runs 1)

let prop_lcs_is_common_subsequence =
  let is_subseq sub arr =
    let n = Array.length arr in
    let i = ref 0 in
    Array.for_all
      (fun x ->
        let rec find () = if !i >= n then false else if arr.(!i) = x then (incr i; true) else (incr i; find ()) in
        find ())
      sub
  in
  QCheck.Test.make ~name:"lcs is a subsequence of both inputs" ~count:300
    QCheck.(pair (array_of_size Gen.(int_range 0 30) (int_bound 5))
              (array_of_size Gen.(int_range 0 30) (int_bound 5)))
    (fun (a, b) ->
      let l = Lcs.lcs a b in
      is_subseq l a && is_subseq l b && Array.length l = Lcs.length a b)

let prop_lcs_length_bounds =
  QCheck.Test.make ~name:"lcs length bounded by inputs" ~count:300
    QCheck.(pair (array_of_size Gen.(int_range 0 40) (int_bound 8))
              (array_of_size Gen.(int_range 0 40) (int_bound 8)))
    (fun (a, b) ->
      let l = Lcs.length a b in
      l <= Array.length a && l <= Array.length b && l >= 0)

(* ---- Sequitur ---- *)

let test_sequitur_roundtrip () =
  let inputs =
    [ [| 1; 2; 1; 2; 1; 2; 1; 2 |]; [| 1; 1; 1; 1; 1 |]; [| 1; 2; 3; 1; 2; 3; 4; 1; 2; 3 |];
      [||]; [| 7 |] ]
  in
  List.iter
    (fun seq ->
      let g = Sequitur.build seq in
      Alcotest.(check (array int)) "expansion equals input" seq (Sequitur.expand_start g))
    inputs

let test_sequitur_finds_repeat () =
  let g = Sequitur.build [| 1; 2; 3; 1; 2; 3; 4; 1; 2; 3 |] in
  let rules = Sequitur.rules g in
  Alcotest.(check bool) "found the 123 phrase" true
    (List.exists (fun (exp_, usage) -> exp_ = [| 1; 2; 3 |] && usage = 3) rules)

let test_sequitur_rule_utility () =
  let g = Sequitur.build [| 5; 6; 5; 6; 5; 6 |] in
  List.iter
    (fun (_, usage) -> Alcotest.(check bool) "usage >= 2" true (usage >= 2))
    (Sequitur.rules g)

let prop_sequitur_roundtrip =
  QCheck.Test.make ~name:"sequitur expansion reproduces input" ~count:300
    QCheck.(array_of_size Gen.(int_range 0 200) (int_bound 6))
    (fun seq ->
      let g = Sequitur.build seq in
      Sequitur.expand_start g = seq && Sequitur.check_digram_uniqueness g)

(* ---- Detector ---- *)

module B = Prefix_workloads.Builder

(* A trace with a clear 3-object stream visited in the same order over
   many iterations, plus interleaved cold noise. *)
let stream_trace () =
  let b = B.create ~seed:1 () in
  let hot = List.init 3 (fun _ -> B.alloc b ~site:1 32) in
  let cold = List.init 4 (fun _ -> B.alloc b ~site:9 64) in
  for _ = 1 to 200 do
    List.iter (fun o -> B.access b o 0) hot;
    List.iter (fun o -> B.access b o 0) cold
  done;
  B.trace b

let test_detector_finds_stream () =
  let trace = stream_trace () in
  let ohds = Detector.detect trace in
  Alcotest.(check bool) "found streams" true (List.length ohds > 0);
  let top = List.hd ohds in
  Alcotest.(check bool) "top stream has the hot objects" true (Hds.cardinal top >= 2)

let test_detector_methods_agree () =
  let trace = stream_trace () in
  let objs m =
    Detector.detect ~method_:m trace
    |> List.concat_map Hds.objs |> List.sort_uniq compare
  in
  let lcs = objs Detector.Lcs and seqr = objs Detector.Sequitur in
  (* §3.1: LCS is as effective as Sequitur — on a clean stream both find
     the same hot objects. *)
  Alcotest.(check bool) "both found something" true (lcs <> [] && seqr <> []);
  Alcotest.(check bool) "substantial overlap" true
    (List.exists (fun o -> List.mem o seqr) lcs)

let test_hot_sequence_collapses () =
  let b = B.create ~seed:2 () in
  let o = B.alloc b ~site:1 64 in
  let p = B.alloc b ~site:1 64 in
  for _ = 1 to 10 do
    B.access b o 0;
    B.access b o 16;
    (* consecutive same-object accesses collapse *)
    B.access b p 0
  done;
  let trace = B.trace b in
  let stats = Prefix_trace.Trace_stats.analyze trace in
  let seq = Detector.hot_sequence stats trace in
  Alcotest.(check int) "collapsed" 20 (Array.length seq)

let test_dominant_periods () =
  (* A strict period-5 sequence. *)
  let seq = Array.init 200 (fun i -> i mod 5) in
  match Detector.dominant_periods seq with
  | p :: _ -> Alcotest.(check int) "period 5" 5 p
  | [] -> Alcotest.fail "no period found"

let test_dominant_periods_random () =
  let rng = Prefix_util.Rng.create 99 in
  let seq = Array.init 500 (fun _ -> Prefix_util.Rng.int rng 100000) in
  Alcotest.(check (list int)) "no spurious period" [] (Detector.dominant_periods seq)

let test_detector_no_streams_in_churn () =
  (* Transient objects never recur: no streams should be detected. *)
  let b = B.create ~seed:3 () in
  for _ = 1 to 300 do
    let o = B.alloc b ~site:1 32 in
    B.access b o 0;
    B.access b o 16;
    B.access b o 0;
    B.access b o 16;
    B.free b o
  done;
  let ohds = Detector.detect (B.trace b) in
  Alcotest.(check int) "no streams" 0 (List.length ohds)

let suite =
  [ ( "hds",
      [ Alcotest.test_case "dedup" `Quick test_hds_dedup;
        Alcotest.test_case "set ops" `Quick test_hds_set_ops;
        Alcotest.test_case "concat" `Quick test_hds_concat;
        Alcotest.test_case "compare" `Quick test_hds_compare ] );
    ( "lcs",
      [ Alcotest.test_case "classic" `Quick test_lcs_classic;
        Alcotest.test_case "empty" `Quick test_lcs_empty;
        Alcotest.test_case "identical" `Quick test_lcs_identical;
        Alcotest.test_case "split runs" `Quick test_split_runs;
        QCheck_alcotest.to_alcotest prop_lcs_is_common_subsequence;
        QCheck_alcotest.to_alcotest prop_lcs_length_bounds ] );
    ( "sequitur",
      [ Alcotest.test_case "roundtrip" `Quick test_sequitur_roundtrip;
        Alcotest.test_case "finds repeat" `Quick test_sequitur_finds_repeat;
        Alcotest.test_case "rule utility" `Quick test_sequitur_rule_utility;
        QCheck_alcotest.to_alcotest prop_sequitur_roundtrip ] );
    ( "detector",
      [ Alcotest.test_case "finds stream" `Quick test_detector_finds_stream;
        Alcotest.test_case "methods agree" `Quick test_detector_methods_agree;
        Alcotest.test_case "hot sequence collapses" `Quick test_hot_sequence_collapses;
        Alcotest.test_case "dominant periods" `Quick test_dominant_periods;
        Alcotest.test_case "no period in noise" `Quick test_dominant_periods_random;
        Alcotest.test_case "no streams in churn" `Quick test_detector_no_streams_in_churn ] ) ]
