(* Tests for Prefix_parallel.Pool and the parallel wiring: ordered
   deterministic map, exception propagation, metric-registry
   consistency under concurrent emission, and jobs-N ≡ jobs-1
   equivalence for the harness and the fuzz campaign. *)

module Pool = Prefix_parallel.Pool
module Control = Prefix_obs.Control
module Metric = Prefix_obs.Metric
module Harness = Prefix_experiments.Harness
module Injector = Prefix_faults.Injector
module Campaign = Prefix_faults.Campaign
module M = Prefix_runtime.Metrics

let check = Alcotest.check
let ci = Alcotest.int

(* ---- pool semantics ---- *)

let test_default_jobs () =
  Alcotest.(check bool) "at least 1" true (Pool.default_jobs () >= 1);
  Alcotest.(check bool) "bounded" true (Pool.default_jobs () <= 64)

let test_map_basic () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  check ci "jobs recorded" 4 (Pool.jobs pool);
  Alcotest.(check (list int)) "order preserved"
    [ 1; 4; 9; 16; 25 ]
    (Pool.map pool (fun x -> x * x) [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list int)) "empty" [] (Pool.map pool (fun x -> x) []);
  Alcotest.(check (list int)) "singleton" [ 7 ] (Pool.map pool (fun x -> x) [ 7 ]);
  (* The pool is reusable across maps. *)
  Alcotest.(check (list int)) "second map" [ 2; 3 ] (Pool.map pool succ [ 1; 2 ])

(* Uneven task durations must not reorder the merge. *)
let test_map_uneven_durations () =
  Pool.with_pool ~jobs:4 @@ fun pool ->
  let work x =
    (* Later items finish first. *)
    let spin = (32 - x) * 20_000 in
    let acc = ref 0 in
    for i = 1 to spin do
      acc := (!acc * 31) + i
    done;
    ignore !acc;
    x
  in
  let xs = List.init 32 (fun i -> i) in
  Alcotest.(check (list int)) "merge in input order" xs (Pool.map pool work xs)

exception Boom of int

let test_map_exception () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  (* The earliest failing index wins, however the schedule interleaves. *)
  (try
     ignore
       (Pool.map pool
          (fun x -> if x mod 2 = 1 then raise (Boom x) else x)
          [ 0; 1; 2; 3; 4 ]);
     Alcotest.fail "expected Boom"
   with Boom i -> check ci "earliest failure propagates" 1 i);
  (* The failed batch must not poison the pool. *)
  Alcotest.(check (list int)) "pool survives" [ 10; 20 ]
    (Pool.map pool (fun x -> 10 * x) [ 1; 2 ])

let test_map_after_shutdown () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* jobs > 1 so the pooled path (not the List.map shortcut) is hit. *)
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool (fun x -> x) [ 1; 2; 3 ]))

let prop_map_equals_list_map =
  QCheck.Test.make ~name:"Pool.map ≡ List.map for any jobs" ~count:30
    QCheck.(pair (int_range 1 5) (small_list small_int))
    (fun (jobs, xs) ->
      let f x = (x * 73) mod 41 in
      Pool.with_pool ~jobs (fun pool -> Pool.map pool f xs) = List.map f xs)

(* ---- metric registry under concurrent emission ---- *)

let with_obs f () =
  Control.set true;
  Prefix_obs.Span.reset ();
  Metric.reset ();
  Fun.protect ~finally:(fun () -> Control.set false) f

let prop_registry_consistent_concurrent =
  QCheck.Test.make
    ~name:"metric registry is consistent under concurrent emission" ~count:10
    QCheck.(pair (int_range 2 4) (int_range 1 200))
    (fun (jobs, bumps) ->
      Control.set true;
      Metric.reset ();
      Fun.protect ~finally:(fun () -> Control.set false) @@ fun () ->
      let tasks = List.init (2 * jobs) (fun i -> i) in
      Pool.with_pool ~jobs (fun pool ->
          ignore
            (Pool.map pool
               (fun i ->
                 (* Handles are (re-)registered concurrently on purpose:
                    same-name registration must return the same cell. *)
                 let shared = Metric.counter "t.shared" in
                 let own = Metric.counter (Printf.sprintf "t.own.%d" i) in
                 let g = Metric.gauge "t.gauge" in
                 let h = Metric.histogram ~lo:0. ~hi:10. ~buckets:4 "t.hist" in
                 for _ = 1 to bumps do
                   Metric.incr shared;
                   Metric.incr own;
                   Metric.observe h 5.
                 done;
                 Metric.set_max g (float_of_int i))
               tasks));
      let snap = Metric.snapshot () in
      let n = List.length tasks in
      List.assoc "t.shared" snap.counters = (n * bumps)
      && List.for_all
           (fun i -> List.assoc (Printf.sprintf "t.own.%d" i) snap.counters = bumps)
           tasks
      && List.assoc "t.gauge" snap.gauges = float_of_int (n - 1)
      &&
      let h = List.assoc "t.hist" snap.histograms in
      h.Metric.h_total = (n * bumps)
      && Array.fold_left ( + ) 0 h.Metric.h_counts = (n * bumps))

let test_pool_utilization_counters =
  with_obs (fun () ->
      Pool.with_pool ~jobs:3 @@ fun pool ->
      ignore (Pool.map pool (fun x -> x * 2) (List.init 64 (fun i -> i)));
      let snap = Metric.snapshot () in
      check ci "every task counted" 64 (List.assoc "parallel.tasks" snap.counters);
      let steals = List.assoc "parallel.steals" snap.counters in
      Alcotest.(check bool) "steals within bounds" true (steals >= 0 && steals <= 64);
      Alcotest.(check bool) "idle counter registered" true
        (List.mem_assoc "parallel.idle_ns" snap.counters))

(* Spans emitted from pool domains: one per task, all well-formed, each
   tagged with the domain that ran it. *)
let test_spans_from_domains =
  with_obs (fun () ->
      Pool.with_pool ~jobs:4 @@ fun pool ->
      ignore
        (Pool.map pool
           (fun i -> Prefix_obs.Span.with_ ~cat:"test" "task" (fun () -> i))
           (List.init 16 (fun i -> i)));
      let spans = Prefix_obs.Span.completed () in
      check ci "one span per task" 16 (List.length spans);
      check ci "no dangling opens" 0 (Prefix_obs.Span.open_count ());
      List.iter
        (fun (s : Prefix_obs.Span.completed) ->
          Alcotest.(check bool) "domain arg present" true
            (List.mem_assoc "domain" s.args))
        spans)

(* ---- jobs-N ≡ jobs-1 for the harness ---- *)

let render_result (r : Harness.result) =
  let line label (pr : Harness.policy_run) =
    Printf.sprintf "%-14s %12.0f cycles  %+7.2f%%  L1 %5.2f%%  LLC %7.4f%%  peak %d B"
      label pr.metrics.M.cycles.total_cycles (Harness.time_delta r pr)
      (100. *. pr.metrics.M.l1_miss_rate)
      (100. *. pr.metrics.M.llc_miss_rate)
      pr.metrics.M.peak_bytes
  in
  String.concat "\n"
    [ line "baseline" r.baseline; line "HDS [8]" r.hds; line "HALO" r.halo;
      line "PreFix:Hot" r.prefix_hot; line "PreFix:HDS" r.prefix_hds;
      line "PreFix:HDS+Hot" r.prefix_hdshot ]

let test_harness_jobs_equivalence () =
  let benches = [ "libc"; "swissmap" ] in
  Harness.clear_cache ();
  let seq = Harness.run_many ~jobs:1 benches in
  Harness.clear_cache ();
  let par = Harness.run_many ~jobs:4 benches in
  Harness.clear_cache ();
  List.iter2
    (fun (a : Harness.result) (b : Harness.result) ->
      check Alcotest.string ("report text " ^ a.wl.name) (render_result a)
        (render_result b);
      List.iter
        (fun proj ->
          Alcotest.(check bool)
            ("metrics identical " ^ a.wl.name)
            true
            (proj a = proj b))
        [ (fun (r : Harness.result) -> r.baseline.metrics);
          (fun r -> r.hds.metrics);
          (fun r -> r.halo.metrics);
          (fun r -> r.prefix_hot.metrics);
          (fun r -> r.prefix_hds.metrics);
          (fun r -> r.prefix_hdshot.metrics) ])
    seq par

(* ---- jobs-N ≡ jobs-1 for the fuzz campaign ---- *)

let test_campaign_jobs_equivalence () =
  let cfg =
    { Campaign.default_config with
      benches = [ "xalanc" ];
      kinds = [ Injector.Collide_ids; Injector.Mutate_sizes ];
      seeds = 2;
      region_cap = Some 65536 }
  in
  let seq = Campaign.run ~jobs:1 cfg in
  let par = Campaign.run ~jobs:4 cfg in
  check ci "same run count" (List.length seq.runs) (List.length par.runs);
  List.iter2
    (fun (a : Campaign.run) (b : Campaign.run) ->
      check Alcotest.string "grid order" (a.bench ^ "/" ^ a.policy)
        (b.bench ^ "/" ^ b.policy);
      check ci "fault seed" a.fault_seed b.fault_seed;
      Alcotest.(check bool) "identical verdicts" true
        (a.drift_ok = b.drift_ok && a.strict_rejected = b.strict_rejected
        && a.recovered = b.recovered && a.degraded = b.degraded
        && a.drift = b.drift))
    seq.runs par.runs;
  check Alcotest.string "byte-identical report" (Campaign.report seq)
    (Campaign.report par)

let suite =
  [ ( "parallel",
      [ Alcotest.test_case "default jobs" `Quick test_default_jobs;
        Alcotest.test_case "map basics" `Quick test_map_basic;
        Alcotest.test_case "uneven durations keep order" `Quick
          test_map_uneven_durations;
        Alcotest.test_case "exception propagation" `Quick test_map_exception;
        Alcotest.test_case "map after shutdown" `Quick test_map_after_shutdown;
        QCheck_alcotest.to_alcotest prop_map_equals_list_map;
        QCheck_alcotest.to_alcotest prop_registry_consistent_concurrent;
        Alcotest.test_case "pool utilization counters" `Quick
          test_pool_utilization_counters;
        Alcotest.test_case "spans from pool domains" `Quick test_spans_from_domains;
        Alcotest.test_case "harness jobs 1 = jobs 4" `Slow
          test_harness_jobs_equivalence;
        Alcotest.test_case "campaign jobs 1 = jobs 4" `Slow
          test_campaign_jobs_equivalence ] ) ]
