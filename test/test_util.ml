(* Tests for Prefix_util: Rng, Stats, Tablefmt. *)

open Prefix_util

let check = Alcotest.check
let ci = Alcotest.int
let cf = Alcotest.(float 1e-9)

(* ---- Rng ---- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "streams differ" true (!same < 4)

let test_rng_split_independent () =
  let a = Rng.create 7 in
  let b = Rng.split a in
  let xa = Rng.int a 1000 and xb = Rng.int b 1000 in
  ignore xa;
  ignore xb;
  (* After split, advancing one stream must not affect the other. *)
  let b' = Rng.copy b in
  ignore (Rng.int a 1000);
  check ci "split stream unaffected" (Rng.int b' 5) (Rng.int b 5)

let test_rng_int_bounds () =
  let r = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let r = Rng.create 3 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let test_rng_int_in () =
  let r = Rng.create 9 in
  for _ = 1 to 500 do
    let v = Rng.int_in r (-5) 5 in
    Alcotest.(check bool) "in closed range" true (v >= -5 && v <= 5)
  done

let test_rng_float_bounds () =
  let r = Rng.create 4 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    Alcotest.(check bool) "in [0, 2.5)" true (v >= 0. && v < 2.5)
  done

let test_rng_geometric () =
  let r = Rng.create 5 in
  check ci "p=1 is always 0" 0 (Rng.geometric r 1.0);
  let total = ref 0 in
  for _ = 1 to 2000 do
    total := !total + Rng.geometric r 0.5
  done;
  (* mean of Geom(0.5) failures = 1 *)
  let mean = float_of_int !total /. 2000. in
  Alcotest.(check bool) "mean near 1" true (mean > 0.8 && mean < 1.2)

let test_rng_zipf_bounds () =
  let r = Rng.create 6 in
  for _ = 1 to 2000 do
    let v = Rng.zipf r ~n:50 ~s:1.1 in
    Alcotest.(check bool) "rank in range" true (v >= 0 && v < 50)
  done

let test_rng_zipf_skew () =
  let r = Rng.create 8 in
  let counts = Array.make 20 0 in
  for _ = 1 to 5000 do
    let v = Rng.zipf r ~n:20 ~s:1.2 in
    counts.(v) <- counts.(v) + 1
  done;
  Alcotest.(check bool) "rank 0 most popular" true
    (counts.(0) > counts.(5) && counts.(0) > counts.(19))

let prop_shuffle_is_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:200
    QCheck.(pair small_int (small_list int))
    (fun (seed, l) ->
      let arr = Array.of_list l in
      let r = Rng.create seed in
      Rng.shuffle r arr;
      List.sort compare (Array.to_list arr) = List.sort compare l)

(* ---- Stats ---- *)

let test_mean () =
  check cf "empty" 0. (Stats.mean []);
  check cf "basic" 2. (Stats.mean [ 1.; 2.; 3. ])

let test_geomean () =
  check cf "pair" 2. (Stats.geomean [ 1.; 4. ]);
  check cf "empty" 0. (Stats.geomean [])

let test_geomean_domain () =
  let msg = "Stats.geomean: samples must be positive" in
  Alcotest.check_raises "zero sample" (Invalid_argument msg) (fun () ->
      ignore (Stats.geomean [ 1.; 0.; 4. ]));
  Alcotest.check_raises "negative sample" (Invalid_argument msg) (fun () ->
      ignore (Stats.geomean [ 2.; -3. ]));
  Alcotest.check_raises "nan sample" (Invalid_argument msg) (fun () ->
      ignore (Stats.geomean [ Float.nan ]))

let test_percentile () =
  let xs = [ 1.; 2.; 3.; 4.; 5. ] in
  check cf "p0" 1. (Stats.percentile 0. xs);
  check cf "p50" 3. (Stats.percentile 50. xs);
  check cf "p100" 5. (Stats.percentile 100. xs);
  check cf "p25 interpolates" 2. (Stats.percentile 25. xs)

let test_percentile_domain () =
  let msg = "Stats.percentile: p must be in [0, 100]" in
  let xs = [ 1.; 2.; 3. ] in
  (* p < 0 used to index the sorted array at -1; p > 100 interpolated
     past the end. *)
  Alcotest.check_raises "negative p" (Invalid_argument msg) (fun () ->
      ignore (Stats.percentile (-1.) xs));
  Alcotest.check_raises "p > 100" (Invalid_argument msg) (fun () ->
      ignore (Stats.percentile 100.5 xs));
  Alcotest.check_raises "nan p" (Invalid_argument msg) (fun () ->
      ignore (Stats.percentile Float.nan xs));
  check cf "empty list still fine" 0. (Stats.percentile 50. [])

let test_percentile_nan_samples () =
  (* Float.compare gives NaN a definite place (first), so the sorted
     order of the real samples survives a stray NaN. *)
  check cf "max unaffected by NaN" 9. (Stats.percentile 100. [ 4.; Float.nan; 9.; 1. ]);
  Alcotest.(check bool) "NaN sorts first" true
    (Float.is_nan (Stats.percentile 0. [ 4.; Float.nan; 9. ]))

let test_stddev () =
  check cf "constant" 0. (Stats.stddev [ 2.; 2.; 2. ]);
  check (Alcotest.float 1e-6) "known" 2. (Stats.stddev [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ])

let test_stddev_sample () =
  check cf "degenerate" 0. (Stats.stddev_sample [ 42. ]);
  (* For [2;4], population stddev is 1 while the n-1 estimator gives
     sqrt(2). *)
  check (Alcotest.float 1e-9) "bessel corrected" (Float.sqrt 2.)
    (Stats.stddev_sample [ 2.; 4. ]);
  let xs = [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ] in
  check (Alcotest.float 1e-6) "known"
    (2. *. Float.sqrt (8. /. 7.))
    (Stats.stddev_sample xs);
  Alcotest.(check bool) "sample >= population" true
    (Stats.stddev_sample xs >= Stats.stddev xs)

let test_pct_change () =
  check cf "down" (-50.) (Stats.pct_change ~before:2. ~after:1.);
  check cf "zero before" 0. (Stats.pct_change ~before:0. ~after:5.)

let test_histogram () =
  let h = Stats.histogram ~lo:0. ~hi:10. ~buckets:5 in
  List.iter (Stats.hist_add h) [ 0.5; 1.5; 9.9; -3.; 42. ];
  let counts = Stats.hist_counts h in
  check ci "total counts every sample" 5 (Stats.hist_total h);
  check ci "first bucket: 0.5 and 1.5 only" 2 counts.(0);
  check ci "last bucket: 9.9 only" 1 counts.(4);
  check ci "underflow recorded, not clamped" 1 (Stats.hist_underflow h);
  check ci "overflow recorded, not clamped" 1 (Stats.hist_overflow h);
  (* The top bucket is closed: a sample exactly at hi is in range, so
     histogram totals match the advertised [lo, hi] span. *)
  Stats.hist_add h 10.;
  check ci "hi lands in the top bucket" 2 (Stats.hist_counts h).(4);
  check ci "hi is not overflow" 1 (Stats.hist_overflow h);
  Stats.hist_add h 10.0000001;
  check ci "just above hi is overflow" 2 (Stats.hist_overflow h);
  check ci "in-range mass + out-of-range = total" (Stats.hist_total h)
    (Array.fold_left ( + ) 0 (Stats.hist_counts h)
    + Stats.hist_underflow h + Stats.hist_overflow h)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_bound_inclusive 100.))
    (fun xs ->
      let p25 = Stats.percentile 25. xs and p75 = Stats.percentile 75. xs in
      p25 <= p75 +. 1e-9)

(* ---- Tablefmt ---- *)

let test_table_render () =
  let t = Tablefmt.create ~headers:[ "a"; "b" ] in
  Tablefmt.add_row t [ "x"; "1" ];
  Tablefmt.add_row t [ "longer" ];
  let s = Tablefmt.render t in
  Alcotest.(check bool) "mentions header" true (String.length s > 0);
  (* Every line has the same width. *)
  let lines = String.split_on_char '\n' s |> List.filter (fun l -> l <> "") in
  let widths = List.map String.length lines in
  Alcotest.(check bool) "aligned" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_table_too_many_cells () =
  let t = Tablefmt.create ~headers:[ "a" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Tablefmt.add_row: too many cells")
    (fun () -> Tablefmt.add_row t [ "1"; "2" ])

let test_fmt_int () =
  check Alcotest.string "thousands" "1,733,376" (Tablefmt.fmt_int 1_733_376);
  check Alcotest.string "small" "42" (Tablefmt.fmt_int 42);
  check Alcotest.string "negative" "-1,000" (Tablefmt.fmt_int (-1000))

let test_fmt_pct () =
  check Alcotest.string "signed" "+3.90%" (Tablefmt.fmt_pct 3.9);
  check Alcotest.string "negative" "-21.70%" (Tablefmt.fmt_pct (-21.7))

(* ---- Fsio ---- *)

let test_atomic_write_perms () =
  (* [atomic_write_string] must produce a normally-readable file: 0o644
     filtered by the umask, not [Filename.temp_file]'s private 0o600. *)
  let dir = Filename.temp_file "prefix_fsio" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o755;
  let path = Filename.concat dir "out.txt" in
  Fun.protect
    ~finally:(fun () ->
      (try Sys.remove path with Sys_error _ -> ());
      Unix.rmdir dir)
    (fun () ->
      let umask = Unix.umask 0 in
      ignore (Unix.umask umask);
      Fsio.atomic_write_string path "hello";
      let st = Unix.stat path in
      check ci "permissions honor the umask" (0o644 land lnot umask)
        (st.Unix.st_perm land 0o777);
      check Alcotest.string "content" "hello"
        (match Fsio.read_file path with Ok s -> s | Error e -> Alcotest.fail e);
      (* Overwrite is atomic: the file always holds old or new content,
         and permissions stay sane. *)
      Fsio.atomic_write_string ~fsync:true path "world";
      check Alcotest.string "overwritten" "world"
        (match Fsio.read_file path with Ok s -> s | Error e -> Alcotest.fail e);
      let st = Unix.stat path in
      check ci "permissions after overwrite" (0o644 land lnot umask)
        (st.Unix.st_perm land 0o777))

let suite =
  [ ( "util",
      [ Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
        Alcotest.test_case "rng seed sensitivity" `Quick test_rng_seed_sensitivity;
        Alcotest.test_case "rng split" `Quick test_rng_split_independent;
        Alcotest.test_case "rng int bounds" `Quick test_rng_int_bounds;
        Alcotest.test_case "rng int invalid" `Quick test_rng_int_invalid;
        Alcotest.test_case "rng int_in" `Quick test_rng_int_in;
        Alcotest.test_case "rng float bounds" `Quick test_rng_float_bounds;
        Alcotest.test_case "rng geometric" `Quick test_rng_geometric;
        Alcotest.test_case "rng zipf bounds" `Quick test_rng_zipf_bounds;
        Alcotest.test_case "rng zipf skew" `Quick test_rng_zipf_skew;
        QCheck_alcotest.to_alcotest prop_shuffle_is_permutation;
        Alcotest.test_case "mean" `Quick test_mean;
        Alcotest.test_case "geomean" `Quick test_geomean;
        Alcotest.test_case "geomean domain" `Quick test_geomean_domain;
        Alcotest.test_case "percentile" `Quick test_percentile;
        Alcotest.test_case "percentile domain" `Quick test_percentile_domain;
        Alcotest.test_case "percentile NaN samples" `Quick test_percentile_nan_samples;
        Alcotest.test_case "stddev" `Quick test_stddev;
        Alcotest.test_case "stddev_sample" `Quick test_stddev_sample;
        Alcotest.test_case "pct_change" `Quick test_pct_change;
        Alcotest.test_case "histogram" `Quick test_histogram;
        QCheck_alcotest.to_alcotest prop_percentile_monotone;
        Alcotest.test_case "table render" `Quick test_table_render;
        Alcotest.test_case "table arity" `Quick test_table_too_many_cells;
        Alcotest.test_case "fmt_int" `Quick test_fmt_int;
        Alcotest.test_case "fmt_pct" `Quick test_fmt_pct;
        Alcotest.test_case "atomic write perms" `Quick test_atomic_write_perms ] ) ]
