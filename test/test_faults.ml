(* Tests for the robustness layer: trace sanitizer, fault injectors,
   lenient executor recovery, and the campaign driver. *)

open Prefix_trace
module Injector = Prefix_faults.Injector
module Campaign = Prefix_faults.Campaign
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Metric = Prefix_obs.Metric
module Control = Prefix_obs.Control
module B = Prefix_workloads.Builder

let ev_alloc ?(site = 1) ?(thread = 0) obj size =
  Event.Alloc { obj; site; ctx = site; size; thread }

let ev_access ?(write = false) ?(thread = 0) obj offset =
  Event.Access { obj; offset; write; thread }

let ev_free ?(thread = 0) obj = Event.Free { obj; thread }
let ev_realloc ?(thread = 0) obj new_size = Event.Realloc { obj; new_size; thread }
let ev_compute ?(thread = 0) instrs = Event.Compute { instrs; thread }

let check_counts what events expected =
  let r = Sanitizer.scan (Trace.of_list events) in
  List.iter
    (fun a ->
      let want = try List.assoc a expected with Not_found -> 0 in
      Alcotest.(check int)
        (Printf.sprintf "%s: %s" what (Sanitizer.name a))
        want (Sanitizer.count r a))
    Sanitizer.all

(* ---- sanitizer classification: one test per anomaly kind ---- *)

let test_sanitizer_clean () =
  let events = [ ev_alloc 1 64; ev_access 1 0; ev_free 1 ] in
  check_counts "clean" events [];
  let t = Trace.of_list events in
  let repaired, r = Sanitizer.sanitize t in
  Alcotest.(check bool) "clean" true (Sanitizer.clean r);
  Alcotest.(check bool) "round-trips" true (Trace.to_list repaired = events);
  match Sanitizer.check t with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "check rejected a clean trace"

let test_sanitizer_duplicate_alloc () =
  check_counts "dup alloc"
    [ ev_alloc 1 64; ev_alloc 1 64; ev_free 1 ]
    [ (Sanitizer.Duplicate_alloc, 1) ]

let test_sanitizer_use_after_free () =
  check_counts "uaf"
    [ ev_alloc 1 64; ev_free 1; ev_access 1 8 ]
    [ (Sanitizer.Use_after_free, 1); (Sanitizer.Leak, 1) ]
(* the synthesized replacement object stays live: one leak *)

let test_sanitizer_unknown_access () =
  check_counts "unknown access"
    [ ev_access 9 4 ]
    [ (Sanitizer.Unknown_access, 1); (Sanitizer.Leak, 1) ]

let test_sanitizer_out_of_bounds () =
  check_counts "oob"
    [ ev_alloc 1 16; ev_access 1 100; ev_free 1 ]
    [ (Sanitizer.Out_of_bounds, 1) ]

let test_sanitizer_double_free () =
  check_counts "double free"
    [ ev_alloc 1 64; ev_free 1; ev_free 1 ]
    [ (Sanitizer.Double_free, 1) ]

let test_sanitizer_unknown_free () =
  check_counts "unknown free" [ ev_free 5 ] [ (Sanitizer.Unknown_free, 1) ]

let test_sanitizer_unknown_realloc () =
  check_counts "unknown realloc"
    [ ev_realloc 5 32; ev_free 5 ]
    [ (Sanitizer.Unknown_realloc, 1) ]

let test_sanitizer_nonpositive_size () =
  check_counts "nonpositive size"
    [ ev_alloc 1 0; ev_free 1; ev_alloc 2 (-8); ev_free 2 ]
    [ (Sanitizer.Nonpositive_size, 2) ]

let test_sanitizer_negative_field () =
  check_counts "negative field"
    [ ev_compute (-5); ev_alloc 1 64 ~thread:0; ev_access 1 (-4); ev_free 1 ]
    [ (Sanitizer.Negative_field, 2) ]

let test_sanitizer_leak () =
  let events = [ ev_alloc 1 64; ev_access 1 0 ] in
  check_counts "leak" events [ (Sanitizer.Leak, 1) ];
  let r = Sanitizer.scan (Trace.of_list events) in
  (* A leak alone is not structural: real programs exit with live objects. *)
  Alcotest.(check int) "not structural" 0 (Sanitizer.structural r);
  Alcotest.(check bool) "still clean" true (Sanitizer.clean r)

(* ---- sanitizer repair ---- *)

(* Every repaired trace must satisfy the strict executor, whatever the
   corruption was. *)
let test_sanitize_repairs_for_strict_replay () =
  let cases =
    [ ("dup alloc", [ ev_alloc 1 64; ev_access 1 8; ev_alloc 1 32; ev_access 1 8 ]);
      ("uaf", [ ev_alloc 1 64; ev_free 1; ev_access 1 8 ]);
      ("unknown access", [ ev_access 9 4; ev_access 9 123 ]);
      ("oob", [ ev_alloc 1 16; ev_access 1 500 ]);
      ("double free", [ ev_alloc 1 16; ev_free 1; ev_free 1 ]);
      ("unknown free", [ ev_free 5; ev_alloc 5 16; ev_free 5 ]);
      ("unknown realloc", [ ev_realloc 5 32; ev_access 5 16 ]);
      ("bad sizes", [ ev_alloc 1 0; ev_access 1 0; ev_realloc 1 (-4); ev_free 1 ]);
      ("negative fields", [ ev_compute (-1); ev_alloc 1 16 ~thread:0; ev_access 1 (-9) ])
    ]
  in
  List.iter
    (fun (what, events) ->
      let repaired, r = Sanitizer.sanitize (Trace.of_list events) in
      Alcotest.(check bool) (what ^ ": anomalies found") true (Sanitizer.total r > 0);
      (* repaired trace scans clean, including leak-free *)
      Alcotest.(check int) (what ^ ": rescan")
        0 (Sanitizer.total (Sanitizer.scan repaired));
      match Executor.run_baseline repaired with
      | _ -> ()
      | exception e ->
        Alcotest.fail
          (Printf.sprintf "%s: strict replay of repaired trace raised %s" what
             (Printexc.to_string e)))
    cases

let test_check_rejects_with_report () =
  match Sanitizer.check (Trace.of_list [ ev_alloc 1 16; ev_free 1; ev_free 1 ]) with
  | Ok _ -> Alcotest.fail "accepted a double free"
  | Error r -> Alcotest.(check int) "double_free" 1 (Sanitizer.count r Sanitizer.Double_free)

let test_export_metrics () =
  Control.set true;
  Metric.reset ();
  let r = Sanitizer.scan (Trace.of_list [ ev_alloc 1 16; ev_free 1; ev_free 1 ]) in
  Sanitizer.export_metrics r;
  let v =
    match List.assoc_opt "sanitizer.double_free" (Metric.snapshot ()).counters with
    | Some v -> v
    | None -> Alcotest.fail "sanitizer.double_free not exported"
  in
  Control.set false;
  Metric.reset ();
  Alcotest.(check int) "counter value" 1 v

(* ---- injectors ---- *)

let sample_trace () =
  let w = Prefix_workloads.Registry.find "xalanc" in
  w.generate ~scale:Prefix_workloads.Workload.Profiling ~seed:7 ()

let test_injector_deterministic () =
  let t = sample_trace () in
  List.iter
    (fun kind ->
      let a = Injector.inject kind ~seed:3 t in
      let b = Injector.inject kind ~seed:3 t in
      Alcotest.(check bool)
        (Injector.kind_name kind ^ " deterministic")
        true
        (Trace.to_list a = Trace.to_list b);
      Alcotest.(check bool)
        (Injector.kind_name kind ^ " corrupts")
        true
        (Trace.to_list a <> Trace.to_list t))
    Injector.all_kinds

let test_injector_seeds_differ () =
  let t = sample_trace () in
  (* Not required kind-by-kind, but across all kinds at least one seed
     pair must differ — a constant injector is broken. *)
  let differs =
    List.exists
      (fun kind ->
        Trace.to_list (Injector.inject kind ~seed:0 t)
        <> Trace.to_list (Injector.inject kind ~seed:1 t))
      Injector.all_kinds
  in
  Alcotest.(check bool) "seeds matter" true differs

let test_injector_detected () =
  let t = sample_trace () in
  let base_leaks = Sanitizer.count (Sanitizer.scan t) Sanitizer.Leak in
  List.iter
    (fun kind ->
      let corrupted = Injector.inject kind ~seed:1 t in
      let r = Sanitizer.scan corrupted in
      let detected =
        match kind with
        | Injector.Truncate ->
          (* A truncation that cuts on an object boundary is
             indistinguishable from a shorter run — assert the cut
             itself, plus any extra leaks it may cause. *)
          Trace.length corrupted < Trace.length t
          && Sanitizer.count r Sanitizer.Leak >= base_leaks
        | _ ->
          Sanitizer.structural r > 0
          || Sanitizer.count r Sanitizer.Leak > base_leaks
      in
      Alcotest.(check bool)
        (Injector.kind_name kind ^ " detected by sanitizer")
        true detected)
    Injector.all_kinds

let test_kind_names_roundtrip () =
  List.iter
    (fun k ->
      match Injector.kind_of_name (Injector.kind_name k) with
      | Ok k' -> Alcotest.(check bool) (Injector.kind_name k) true (k = k')
      | Error e -> Alcotest.fail e)
    Injector.all_kinds;
  match Injector.kind_of_name "nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bogus kind name"

(* ---- lenient executor ---- *)

let test_lenient_executor_recovers () =
  let events =
    [ ev_alloc 1 64;
      ev_access 1 0;
      ev_access 9 4; (* unknown access *)
      ev_free 5; (* unknown free *)
      ev_free 1;
      ev_free 1; (* double free *)
      ev_realloc 7 32; (* unknown realloc *)
      ev_alloc 2 0; (* nonpositive size *)
      ev_free 2 ]
  in
  let t = Trace.of_list events in
  (* strict: first bad event raises *)
  (match Executor.run_baseline t with
  | _ -> Alcotest.fail "strict accepted a corrupt trace"
  | exception Invalid_argument _ -> ());
  (* lenient: full replay with per-kind recovery counts *)
  let o = Executor.run_baseline ~mode:Policy.Lenient t in
  let r = o.Executor.recovery in
  Alcotest.(check int) "unknown accesses" 1 r.unknown_accesses;
  Alcotest.(check int) "unknown frees" 2 r.unknown_frees;
  Alcotest.(check int) "unknown reallocs" 1 r.unknown_reallocs;
  Alcotest.(check int) "invalid sizes" 1 r.invalid_sizes;
  Alcotest.(check int) "total" 5 (Executor.recovery_total r)

let test_lenient_double_alloc () =
  let t = Trace.of_list [ ev_alloc 1 64; ev_access 1 0; ev_alloc 1 32; ev_access 1 8 ] in
  let o = Executor.run_baseline ~mode:Policy.Lenient t in
  Alcotest.(check int) "double allocs" 1 o.Executor.recovery.double_allocs;
  Alcotest.(check int) "no other recoveries" 1
    (Executor.recovery_total o.Executor.recovery)

let test_strict_unchanged_recovery_zero () =
  let b = B.create ~seed:3 () in
  let o = B.alloc b ~site:1 64 in
  B.access b o 0;
  B.free b o;
  let outcome = Executor.run_baseline (B.trace b) in
  Alcotest.(check int) "no recoveries" 0
    (Executor.recovery_total outcome.Executor.recovery)

(* ---- sanitizer idempotence ---- *)

(* Sanitizing is a repair fixpoint: whatever an injector (any kind, any
   seed, any rate) did to a well-formed trace, one sanitize pass must
   produce a trace a second pass finds nothing wrong with — no
   anomalies, no drops, no synthesis, no rewrites — and leaves
   byte-identical. *)
let prop_sanitize_idempotent =
  let base =
    lazy
      (let b = B.create ~seed:99 () in
       let objs = Array.init 12 (fun i -> B.alloc b ~site:(1 + (i mod 4)) (24 * (i + 1))) in
       for k = 0 to 399 do
         B.access b objs.(k mod 12) ~write:(k mod 3 = 0) (k mod 24);
         if k mod 17 = 0 then B.compute b (k * 10)
       done;
       Array.iteri (fun i o -> if i mod 3 <> 0 then B.free b o) objs;
       B.trace b)
  in
  let gen =
    QCheck.Gen.(
      triple (oneofl Injector.all_kinds) (int_range 0 9999)
        (oneofl [ 0.01; 0.05; 0.2; 0.5 ]))
  in
  let print (k, seed, rate) =
    Printf.sprintf "%s seed=%d rate=%.2f" (Injector.kind_name k) seed rate
  in
  QCheck.Test.make ~name:"sanitize is idempotent over every injector kind"
    ~count:200
    (QCheck.make ~print gen)
    (fun (kind, seed, rate) ->
      let corrupted = Injector.inject kind ~seed ~rate (Lazy.force base) in
      let repaired, _ = Sanitizer.sanitize corrupted in
      let again, r2 = Sanitizer.sanitize repaired in
      Trace.to_list again = Trace.to_list repaired
      && r2.Sanitizer.dropped = 0
      && r2.Sanitizer.synthesized = 0
      && r2.Sanitizer.rewritten = 0
      && List.for_all (fun (_, c) -> c = 0) r2.Sanitizer.counts)

(* ---- campaign smoke ---- *)

let test_campaign_smoke () =
  let cfg =
    { Campaign.default_config with
      benches = [ "xalanc" ];
      kinds = [ Injector.Collide_ids; Injector.Mutate_sizes ];
      seeds = 2;
      region_cap = Some 65536 }
  in
  let s = Campaign.run cfg in
  Alcotest.(check int) "runs" (1 * 4 * 2 * 2) (List.length s.runs);
  Alcotest.(check (list string)) "no exceptions" [] (Campaign.exceptions s);
  Alcotest.(check bool) "ok" true (Campaign.ok s);
  (* every corrupted trace was structurally anomalous and rejected *)
  List.iter
    (fun (r : Campaign.run) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s rejected" r.policy (Injector.kind_name r.kind))
        true r.strict_rejected)
    s.runs;
  let report = Campaign.report s in
  Alcotest.(check bool) "report has table" true
    (String.length report > 0 && String.contains report '|')

let suite =
  [ ( "sanitizer",
      [ Alcotest.test_case "clean round-trip" `Quick test_sanitizer_clean;
        Alcotest.test_case "duplicate alloc" `Quick test_sanitizer_duplicate_alloc;
        Alcotest.test_case "use after free" `Quick test_sanitizer_use_after_free;
        Alcotest.test_case "unknown access" `Quick test_sanitizer_unknown_access;
        Alcotest.test_case "out of bounds" `Quick test_sanitizer_out_of_bounds;
        Alcotest.test_case "double free" `Quick test_sanitizer_double_free;
        Alcotest.test_case "unknown free" `Quick test_sanitizer_unknown_free;
        Alcotest.test_case "unknown realloc" `Quick test_sanitizer_unknown_realloc;
        Alcotest.test_case "nonpositive size" `Quick test_sanitizer_nonpositive_size;
        Alcotest.test_case "negative field" `Quick test_sanitizer_negative_field;
        Alcotest.test_case "leak" `Quick test_sanitizer_leak;
        Alcotest.test_case "repairs for strict replay" `Quick
          test_sanitize_repairs_for_strict_replay;
        Alcotest.test_case "check rejects" `Quick test_check_rejects_with_report;
        Alcotest.test_case "metric export" `Quick test_export_metrics;
        QCheck_alcotest.to_alcotest prop_sanitize_idempotent ] );
    ( "injector",
      [ Alcotest.test_case "deterministic" `Quick test_injector_deterministic;
        Alcotest.test_case "seeds differ" `Quick test_injector_seeds_differ;
        Alcotest.test_case "faults detected" `Quick test_injector_detected;
        Alcotest.test_case "kind names" `Quick test_kind_names_roundtrip ] );
    ( "lenient executor",
      [ Alcotest.test_case "recovers" `Quick test_lenient_executor_recovers;
        Alcotest.test_case "double alloc" `Quick test_lenient_double_alloc;
        Alcotest.test_case "strict recovery zero" `Quick
          test_strict_unchanged_recovery_zero ] );
    ( "campaign",
      [ Alcotest.test_case "smoke" `Quick test_campaign_smoke ] ) ]
