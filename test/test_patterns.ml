(* Tests for the workload Patterns helpers. *)

module B = Prefix_workloads.Builder
module Patterns = Prefix_workloads.Patterns
module Trace = Prefix_trace.Trace
module Event = Prefix_trace.Event

let count_accesses b = Trace.num_accesses (B.trace b)

let test_sweep () =
  let b = B.create () in
  let o = B.alloc b ~site:1 256 in
  Patterns.sweep b ~stride:64 o;
  Alcotest.(check int) "256/64 touches" 4 (count_accesses b);
  Patterns.sweep b o;
  (* default stride 16: +16 touches *)
  Alcotest.(check int) "default stride" 20 (count_accesses b)

let test_sweep_write () =
  let b = B.create () in
  let o = B.alloc b ~site:1 64 in
  Patterns.sweep b ~write:true ~stride:32 o;
  let writes =
    Trace.fold
      (fun n e -> match (e : Event.t) with Access { write = true; _ } -> n + 1 | _ -> n)
      0 (B.trace b)
  in
  Alcotest.(check int) "all writes" 2 writes

let test_stream_sweep () =
  let b = B.create () in
  let objs = List.init 3 (fun _ -> B.alloc b ~site:1 64) in
  Patterns.stream_sweep b ~rounds:2 objs;
  (* 64/16 = 4 capped touches per visit, 3 objects, 2 rounds *)
  Alcotest.(check int) "touches" 24 (count_accesses b);
  (* tiny objects still get one touch *)
  let b2 = B.create () in
  let small = [ B.alloc b2 ~site:1 8 ] in
  Patterns.stream_sweep b2 small;
  Alcotest.(check int) "small object" 1 (count_accesses b2)

let test_cold_block () =
  let b = B.create () in
  let objs = Patterns.cold_block b ~site:5 ~size:128 4 in
  Alcotest.(check int) "four objects" 4 (List.length objs);
  Alcotest.(check int) "one touch each" 4 (count_accesses b);
  List.iter (fun o -> Alcotest.(check bool) "live" true (B.is_live b o)) objs

let test_churn () =
  let b = B.create () in
  Patterns.churn b ~site:5 ~size:64 ~touches:3 5;
  Alcotest.(check int) "touches" 15 (count_accesses b);
  Alcotest.(check (list int)) "all freed" [] (B.live_objects b);
  Alcotest.(check int) "valid" 0 (List.length (Trace.validate (B.trace b)))

let test_scan_working_set () =
  let b = B.create () in
  let objs = List.init 2 (fun _ -> B.alloc b ~site:1 128) in
  Patterns.scan_working_set b objs ~stride:64 ();
  Alcotest.(check int) "2*2 touches" 4 (count_accesses b)

let test_random_accesses () =
  let b = B.create ~seed:5 () in
  let objs = List.init 4 (fun _ -> B.alloc b ~site:1 256) in
  Patterns.random_accesses b objs ~n:100;
  Alcotest.(check int) "exactly n" 100 (count_accesses b);
  Alcotest.(check int) "all valid" 0 (List.length (Trace.validate (B.trace b)));
  (* empty object list: no accesses, no crash *)
  let b2 = B.create () in
  Patterns.random_accesses b2 [] ~n:10;
  Alcotest.(check int) "empty" 0 (count_accesses b2)

let suite =
  [ ( "patterns",
      [ Alcotest.test_case "sweep" `Quick test_sweep;
        Alcotest.test_case "sweep write" `Quick test_sweep_write;
        Alcotest.test_case "stream sweep" `Quick test_stream_sweep;
        Alcotest.test_case "cold block" `Quick test_cold_block;
        Alcotest.test_case "churn" `Quick test_churn;
        Alcotest.test_case "scan working set" `Quick test_scan_working_set;
        Alcotest.test_case "random accesses" `Quick test_random_accesses ] ) ]
