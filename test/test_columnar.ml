(* Tests for the columnar (v3) trace container:

   - round-trip: packed -> columnar bytes -> packed is the identity,
     for workload traces, injector-corrupted traces (negative values),
     hand-built extremes (min_int/max_int) and qcheck event soup;
   - replay equivalence: [Executor.run_stream] over a spooled columnar
     file produces the same outcome as [Executor.run_packed] on the
     original trace — strict, lenient, every injector fault kind, and
     strict-raise parity;
   - corruption: the strict reader rejects (never raises on) byte
     flips and truncations; the lenient reader pins the exact lost
     event range, mirroring the Binfmt v2 guarantees;
   - [Stream.of_binary_file] auto-detects the v3 container and cuts
     segments at frame boundaries. *)

open Prefix_trace
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Injector = Prefix_faults.Injector

let costs = Executor.default_config.costs

let baseline heap = Policy.baseline costs heap

let workload_trace () =
  let wl = Prefix_workloads.Registry.find "libc" in
  wl.generate ~scale:Profiling ~seed:7 ()

(* Column-by-column equality (metadata-free, so views and copies
   compare equal). *)
let check_packed_equal name (a : Packed.t) (b : Packed.t) =
  Alcotest.(check int) (name ^ ": length") (Packed.length a) (Packed.length b);
  for i = 0 to Packed.length a - 1 do
    if Packed.get a i <> Packed.get b i then
      Alcotest.failf "%s: event %d differs: %s vs %s" name i
        (Event.to_string (Packed.get a i))
        (Event.to_string (Packed.get b i))
  done

let roundtrip name ?frame_events p =
  match Columnar.read (Columnar.to_bytes ?frame_events p) with
  | Error e -> Alcotest.failf "%s: %s" name e
  | Ok p' -> check_packed_equal name p p'

(* ---- round-trip ---- *)

let test_roundtrip_workloads () =
  List.iter
    (fun name ->
      let w = Prefix_workloads.Registry.find name in
      let trace = w.generate ~scale:Prefix_workloads.Workload.Profiling ~seed:7 () in
      roundtrip name (Packed.of_trace trace))
    [ "mcf"; "libc"; "swissmap" ]

let test_roundtrip_small_frames () =
  let p = Packed.of_trace (workload_trace ()) in
  List.iter
    (fun frame_events ->
      roundtrip (Printf.sprintf "frames of %d" frame_events) ~frame_events p)
    [ 1; 7; 1000; 1_000_000 ]

let test_roundtrip_empty () =
  roundtrip "empty" (Packed.of_trace (Trace.of_list []))

let test_roundtrip_corrupted_every_kind () =
  (* Fault-injected traces carry negative sizes/offsets and colliding
     ids — every value column must round-trip them. *)
  let trace = workload_trace () in
  List.iter
    (fun kind ->
      let corrupted = Injector.inject kind ~seed:3 ~rate:0.1 trace in
      roundtrip (Injector.kind_name kind) (Packed.of_trace corrupted))
    Injector.all_kinds

let test_roundtrip_int_extremes () =
  let es : Event.t list =
    [ Alloc { obj = max_int; site = max_int; ctx = max_int; size = max_int; thread = max_int };
      Access { obj = max_int; offset = max_int; write = true; thread = max_int };
      Alloc { obj = min_int; site = min_int; ctx = min_int; size = min_int; thread = min_int };
      Access { obj = min_int; offset = min_int; write = false; thread = min_int };
      Realloc { obj = min_int; new_size = min_int; thread = 0 };
      Realloc { obj = max_int; new_size = max_int; thread = 0 };
      Compute { instrs = max_int; thread = 1 };
      Compute { instrs = min_int; thread = -1 };
      Free { obj = min_int; thread = min_int };
      Free { obj = max_int; thread = max_int } ]
  in
  roundtrip "int extremes" (Packed.of_trace (Trace.of_list es));
  roundtrip "int extremes, 1-event frames" ~frame_events:1
    (Packed.of_trace (Trace.of_list es))

let soup_gen =
  QCheck.Gen.(
    let ev =
      oneof
        [ (fun st ->
            (Event.Alloc
               { obj = int_range (-50) 50 st; site = int_range (-5) 5 st;
                 ctx = int_range (-5) 5 st; size = int_range (-200) 200 st;
                 thread = int_range (-2) 2 st } : Event.t));
          (fun st ->
            Event.Access
              { obj = int_range (-50) 50 st; offset = int_range (-200) 200 st;
                write = bool st; thread = int_range (-2) 2 st });
          (fun st -> Event.Free { obj = int_range (-50) 50 st; thread = int_range (-2) 2 st });
          (fun st ->
            Event.Realloc
              { obj = int_range (-50) 50 st; new_size = int_range (-200) 200 st;
                thread = int_range (-2) 2 st });
          (fun st ->
            Event.Compute { instrs = int_range (-100) 100 st; thread = int_range (-2) 2 st }) ]
    in
    list_size (int_range 0 400) ev)

let prop_roundtrip_soup =
  QCheck.Test.make ~name:"columnar roundtrips arbitrary event soup" ~count:300
    (QCheck.make soup_gen)
    (fun es ->
      let t = Trace.of_list es in
      match Columnar.read (Columnar.to_bytes ~frame_events:64 (Packed.of_trace t)) with
      | Ok p -> Packed.to_trace p |> Trace.to_list = es
      | Error _ -> false)

let test_compact_vs_v2 () =
  let trace = workload_trace () in
  let v2 = Bytes.length (Binfmt.to_bytes_framed trace) in
  let v3 = Bytes.length (Columnar.to_bytes (Packed.of_trace trace)) in
  Alcotest.(check bool)
    (Printf.sprintf "columnar (%d B) smaller than v2 framed (%d B)" v3 v2)
    true (v3 < v2)

(* ---- replay equivalence over the file path ---- *)

let with_columnar_file ?frame_events p k =
  let path = Filename.temp_file "prefix_columnar" ".pfxt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Columnar.write_file ?frame_events path p;
      k path)

let check_stream_same ~what ?mode ?heatmap_objs ?attribute trace =
  let p = Packed.of_trace trace in
  let packed = Executor.run_packed ?mode ?heatmap_objs ?attribute ~policy:baseline p in
  let streamed =
    with_columnar_file ~frame_events:700 p (fun path ->
        Executor.run_stream ?mode ?heatmap_objs ?attribute ~policy:baseline
          (Stream.of_binary_file path))
  in
  Alcotest.(check bool) (what ^ ": metrics") true
    (packed.Executor.metrics = streamed.Executor.metrics);
  Alcotest.(check bool) (what ^ ": recovery") true
    (packed.Executor.recovery = streamed.Executor.recovery);
  (packed, streamed)

let test_stream_replay_strict () =
  ignore (check_stream_same ~what:"libc strict" (workload_trace ()))

let test_stream_replay_lenient_corrupted () =
  let trace = workload_trace () in
  List.iter
    (fun kind ->
      List.iter
        (fun seed ->
          let corrupted = Injector.inject kind ~seed ~rate:0.05 trace in
          ignore
            (check_stream_same
               ~what:(Printf.sprintf "%s/seed %d" (Injector.kind_name kind) seed)
               ~mode:Policy.Lenient corrupted))
        [ 0; 1 ])
    Injector.all_kinds

let test_stream_replay_diagnostics () =
  let trace = workload_trace () in
  let packed, streamed =
    check_stream_same ~what:"diagnostics" ~heatmap_objs:(fun obj -> obj mod 2 = 0)
      ~attribute:true trace
  in
  let render_hm = function
    | Some hm ->
      Printf.sprintf "%d samples, %d bytes" (Prefix_cachesim.Heatmap.samples hm)
        (Prefix_cachesim.Heatmap.footprint_bytes hm)
    | None -> "none"
  in
  Alcotest.(check string) "heatmap" (render_hm packed.Executor.heatmap)
    (render_hm streamed.Executor.heatmap);
  let render_at = function
    | Some a -> Prefix_runtime.Attribution.render a
    | None -> "none"
  in
  Alcotest.(check string) "attribution" (render_at packed.Executor.attribution)
    (render_at streamed.Executor.attribution)

let prop_stream_strict_raises_same =
  QCheck.Test.make ~name:"columnar stream ≡ packed on strict anomaly detection"
    ~count:60 (QCheck.make soup_gen)
    (fun es ->
      let trace = Trace.of_list es in
      let p = Packed.of_trace trace in
      let outcome_of run =
        match run () with
        | (o : Executor.outcome) -> Ok o.Executor.metrics
        | exception Invalid_argument m -> Error m
      in
      let packed = outcome_of (fun () -> Executor.run_packed ~policy:baseline p) in
      let streamed =
        with_columnar_file ~frame_events:64 p (fun path ->
            outcome_of (fun () ->
                Executor.run_stream ~policy:baseline (Stream.of_binary_file path)))
      in
      packed = streamed)

(* ---- corruption ---- *)

let test_strict_rejects_corruption () =
  let p = Packed.of_trace (workload_trace ()) in
  let data = Columnar.to_bytes ~frame_events:1000 p in
  let n = Bytes.length data in
  List.iter
    (fun pos ->
      let d = Bytes.copy data in
      Bytes.set d pos (Char.chr (Char.code (Bytes.get d pos) lxor 0x01));
      match Columnar.read d with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "accepted a flipped byte at offset %d" pos)
    [ n / 4; n / 2; (3 * n) / 4 ];
  match Columnar.read (Bytes.sub data 0 (n - 8)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted a truncated file"

let prop_decode_fuzz =
  let base = Columnar.to_bytes ~frame_events:256 (Packed.of_trace (workload_trace ())) in
  let n = Bytes.length base in
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_range 1 8) (pair (int_range 0 (n - 1)) (int_range 0 255)))
        (int_range 0 n))
  in
  QCheck.Test.make ~name:"columnar decode survives byte flips and truncation"
    ~count:500 (QCheck.make gen)
    (fun (flips, keep) ->
      let data = Bytes.sub base 0 keep in
      List.iter (fun (pos, v) -> if pos < keep then Bytes.set data pos (Char.chr v)) flips;
      match (Columnar.read data, Columnar.read_lenient data) with
      | (Ok _ | Error _), (Ok _ | Error _) -> true
      | exception _ -> false)

let frame_offsets data =
  let n = Bytes.length data in
  let acc = ref [] in
  for p = n - 4 downto 0 do
    if Bytes.sub_string data p 4 = "FRME" then acc := p :: !acc
  done;
  !acc

let test_lenient_exact_loss () =
  let trace = workload_trace () in
  let total = Trace.length trace in
  let frame_events = 1000 in
  let data = Columnar.to_bytes ~frame_events (Packed.of_trace trace) in
  let offsets = frame_offsets data in
  let frames = List.length offsets in
  Alcotest.(check int) "frame count"
    ((total + frame_events - 1) / frame_events)
    frames;
  List.iter
    (fun k ->
      let d = Bytes.copy data in
      let pos = List.nth offsets k + 24 in
      Bytes.set d pos (Char.chr (Char.code (Bytes.get d pos) lxor 0x40));
      match Columnar.read_lenient d with
      | Error e -> Alcotest.fail e
      | Ok l ->
        let lost_from = k * frame_events in
        let lost_to = min total ((k + 1) * frame_events) in
        Alcotest.(check (list (pair int int)))
          (Printf.sprintf "lost range of frame %d" k)
          [ (lost_from, lost_to) ]
          (List.map
             (fun (r : Binfmt.lost_range) -> (r.lost_from, r.lost_to))
             l.Columnar.cl_lost);
        Alcotest.(check int) "events lost" (lost_to - lost_from)
          (Columnar.lenient_events_lost l);
        Alcotest.(check int) "events recovered"
          (total - (lost_to - lost_from))
          (Packed.length l.Columnar.cl_packed);
        Alcotest.(check int) "frames ok" (frames - 1) l.Columnar.cl_frames_ok;
        Alcotest.(check int) "frames skipped" 1 l.Columnar.cl_frames_skipped;
        Alcotest.(check (option int)) "footer total" (Some total)
          l.Columnar.cl_total_events)
    [ 0; frames / 2; frames - 1 ]

let test_lenient_truncation () =
  let trace = workload_trace () in
  let data = Columnar.to_bytes ~frame_events:1000 (Packed.of_trace trace) in
  match Columnar.read_lenient (Bytes.sub data 0 (Bytes.length data / 2)) with
  | Error e -> Alcotest.fail e
  | Ok l ->
    Alcotest.(check (option int)) "no footer" None l.Columnar.cl_total_events;
    Alcotest.(check int) "whole frames only" 0
      (Packed.length l.Columnar.cl_packed mod 1000);
    Alcotest.(check bool) "something recovered" true
      (Packed.length l.Columnar.cl_packed > 0)

let test_rejects_v2_version () =
  (* A v2 file is not a columnar container (and vice versa the version
     sniff in [Stream.of_binary_file] routes each to its decoder). *)
  let trace = workload_trace () in
  match Columnar.read (Binfmt.to_bytes_framed trace) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "columnar reader accepted a v2 file"

(* ---- stream integration ---- *)

let test_stream_of_binary_file_frame_boundaries () =
  let trace = workload_trace () in
  let total = Trace.length trace in
  let frame_events = 512 in
  with_columnar_file ~frame_events (Packed.of_trace trace) (fun path ->
      Alcotest.(check (result int string)) "version sniff" (Ok 3)
        (Binfmt.file_version path);
      let stream = Stream.of_binary_file ~segment_events:frame_events path in
      let seen = ref 0 in
      Stream.iter_segments stream (fun ~base seg ->
          Alcotest.(check int) "segment starts on a frame boundary" 0
            (base mod frame_events);
          Alcotest.(check int) "segment base is the running total" !seen base;
          seen := !seen + Packed.length seg);
      Alcotest.(check int) "all events streamed" total !seen;
      (* Re-iteration observes identical events (streams are re-iterable). *)
      let t2 = Stream.to_trace (Stream.of_binary_file path) in
      check_packed_equal "re-read" (Packed.of_trace trace) (Packed.of_trace t2))

let test_to_columnar_file_roundtrip () =
  let trace = workload_trace () in
  let path = Filename.temp_file "prefix_spool" ".pfxt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Stream.to_columnar_file (Stream.of_trace ~segment_events:333 trace) path;
      match Columnar.read_file path with
      | Error e -> Alcotest.fail e
      | Ok p -> check_packed_equal "spooled" (Packed.of_trace trace) p)

let suite =
  [ ( "columnar",
      [ Alcotest.test_case "roundtrips workload traces" `Quick test_roundtrip_workloads;
        Alcotest.test_case "roundtrip, small frames" `Quick test_roundtrip_small_frames;
        Alcotest.test_case "roundtrip, empty trace" `Quick test_roundtrip_empty;
        Alcotest.test_case "roundtrips every fault kind" `Quick
          test_roundtrip_corrupted_every_kind;
        Alcotest.test_case "roundtrips int extremes" `Quick test_roundtrip_int_extremes;
        QCheck_alcotest.to_alcotest prop_roundtrip_soup;
        Alcotest.test_case "smaller than v2" `Quick test_compact_vs_v2;
        Alcotest.test_case "rejects v2 input" `Quick test_rejects_v2_version ] );
    ( "columnar-replay",
      [ Alcotest.test_case "streamed replay ≡ packed, strict" `Quick
          test_stream_replay_strict;
        Alcotest.test_case "streamed replay ≡ packed, corrupted traces" `Quick
          test_stream_replay_lenient_corrupted;
        Alcotest.test_case "streamed replay ≡ packed, diagnostics" `Quick
          test_stream_replay_diagnostics;
        QCheck_alcotest.to_alcotest prop_stream_strict_raises_same ] );
    ( "columnar-corruption",
      [ Alcotest.test_case "strict read rejects corruption" `Quick
          test_strict_rejects_corruption;
        QCheck_alcotest.to_alcotest prop_decode_fuzz;
        Alcotest.test_case "lenient read pins the exact lost range" `Quick
          test_lenient_exact_loss;
        Alcotest.test_case "lenient read of a truncated file" `Quick
          test_lenient_truncation;
        Alcotest.test_case "of_binary_file auto-detects v3 and cuts at frames"
          `Quick test_stream_of_binary_file_frame_boundaries;
        Alcotest.test_case "to_columnar_file spools a readable container" `Quick
          test_to_columnar_file_roundtrip ] ) ]
