(* Tests for Prefix_core: Layout (Algorithm 1), Context, Counters,
   Offsets, Recycle, Plan, Instrument, Pipeline. *)

module Hds = Prefix_hds.Hds
module Layout = Prefix_core.Layout
module Context = Prefix_core.Context
module Counters = Prefix_core.Counters
module Offsets = Prefix_core.Offsets
module Recycle = Prefix_core.Recycle
module Plan = Prefix_core.Plan
module Instrument = Prefix_core.Instrument
module Pipeline = Prefix_core.Pipeline
module Trace_stats = Prefix_trace.Trace_stats
module B = Prefix_workloads.Builder

let mk objs refs = Hds.make ~objs ~refs

(* ---- Layout (Algorithm 1) ---- *)

let test_layout_unchanged_inclusion () =
  let r = Layout.reconstitute [ mk [ 1; 2 ] 10; mk [ 3; 4 ] 5 ] in
  Alcotest.(check int) "both kept" 2 (List.length r.rhds);
  Alcotest.(check (list int)) "no singletons" [] r.singletons

let test_layout_merge () =
  let r = Layout.reconstitute [ mk [ 1; 2 ] 10; mk [ 2; 3 ] 5 ] in
  Alcotest.(check int) "merged" 1 (List.length r.rhds);
  (* The shared object (2) must sit between the two private ones. *)
  Alcotest.(check (list int)) "order: shared in the middle" [ 1; 2; 3 ]
    (Hds.objs (List.hd r.rhds))

let test_layout_merge_once () =
  (* Third overlapping stream cannot merge into an already-merged RHDS:
     its remainder becomes a new stream. *)
  let r = Layout.reconstitute [ mk [ 1; 2 ] 10; mk [ 2; 3 ] 8; mk [ 1; 4; 5 ] 6 ] in
  Alcotest.(check int) "split produced a second stream" 2 (List.length r.rhds);
  Alcotest.(check bool) "remainder stream present" true
    (List.exists (fun h -> Hds.objs h = [ 4; 5 ]) r.rhds)

let test_layout_singleton () =
  let r = Layout.reconstitute [ mk [ 1; 2 ] 10; mk [ 2; 3 ] 8; mk [ 1; 6 ] 2 ] in
  Alcotest.(check (list int)) "lone leftover is a singleton" [ 6 ] r.singletons

let test_layout_duplicate_stream_skipped () =
  let r = Layout.reconstitute [ mk [ 1; 2 ] 10; mk [ 2; 1 ] 4 ] in
  Alcotest.(check int) "nothing to do for subset" 1 (List.length r.rhds)

let test_layout_fig2 () =
  (* The paper's Figure 2: all 12 objects placed, 10 in streams. *)
  let r = Prefix_experiments.Exp_fig2.reconstitute () in
  let order = Layout.placement_order r in
  Alcotest.(check int) "12 objects placed" 12 (List.length order);
  Alcotest.(check bool) "streams disjoint" true (Layout.disjoint r.rhds);
  (* Every object of the paper's final layout is placed. *)
  List.iter
    (fun o -> Alcotest.(check bool) (string_of_int o) true (List.mem o order))
    Prefix_experiments.Exp_fig2.paper_layout;
  (* The top stream matches the paper's {2018, 2009, 2012} with the
     shared object 2009 in the middle (the mirror order is an equally
     good layout, so we check adjacency rather than direction). *)
  (match Hds.objs (List.hd r.rhds) with
  | [ a; 2009; b ] when (a = 2018 && b = 2012) || (a = 2012 && b = 2018) -> ()
  | other ->
    Alcotest.failf "unexpected first stream order: [%s]"
      (String.concat ";" (List.map string_of_int other)))

let test_layout_coverage () =
  let r = Layout.reconstitute [ mk [ 1; 2 ] 10; mk [ 2; 3 ] 8 ] in
  Alcotest.(check int) "both covered" 2
    (List.length (List.filter (fun c -> c = Layout.Fully_covered) r.coverage))

let prop_layout_disjoint_and_complete =
  let gen =
    QCheck.Gen.(
      list_size (int_range 1 12)
        (pair (list_size (int_range 2 6) (int_range 1 20)) (int_range 1 1000)))
  in
  QCheck.Test.make ~name:"RHDS are disjoint; placement has no duplicates" ~count:300
    (QCheck.make gen)
    (fun streams ->
      let ohds =
        List.filter_map
          (fun (objs, refs) ->
            let h = mk objs refs in
            if Hds.cardinal h >= 2 then Some h else None)
          streams
      in
      if ohds = [] then true
      else begin
        let r = Layout.reconstitute ohds in
        let order = Layout.placement_order r in
        Layout.disjoint r.rhds
        && List.length order = List.length (List.sort_uniq compare order)
        (* singletons never overlap stream objects *)
        && List.for_all
             (fun s -> not (List.exists (fun h -> Hds.mem s h) r.rhds))
             r.singletons
      end)

(* ---- Context ---- *)

let test_context_all () =
  match Context.infer ~hot_instances:[ 1; 2; 3 ] ~total_instances:3 with
  | Context.All { upto = Some 3 } -> ()
  | p -> Alcotest.failf "expected All, got %s" (Format.asprintf "%a" Context.pp p)

let test_context_regular () =
  match Context.infer ~hot_instances:[ 1; 3; 5; 7 ] ~total_instances:20 with
  | Context.Regular { start = 1; step = 2; count = 4 } -> ()
  | p -> Alcotest.failf "expected Regular, got %s" (Format.asprintf "%a" Context.pp p)

let test_context_consecutive_is_fixed () =
  (* Step-1 runs report as fixed sets, matching Table 2's labels. *)
  match Context.infer ~hot_instances:[ 1; 2; 3 ] ~total_instances:33 with
  | Context.Fixed [ 1; 2; 3 ] -> ()
  | p -> Alcotest.failf "expected Fixed, got %s" (Format.asprintf "%a" Context.pp p)

let test_context_fixed () =
  match Context.infer ~hot_instances:[ 1; 3; 8 ] ~total_instances:10 with
  | Context.Fixed [ 1; 3; 8 ] -> ()
  | p -> Alcotest.failf "expected Fixed, got %s" (Format.asprintf "%a" Context.pp p)

let test_context_invalid () =
  Alcotest.check_raises "empty" (Invalid_argument "Context.infer: no hot instances")
    (fun () -> ignore (Context.infer ~hot_instances:[] ~total_instances:5));
  Alcotest.check_raises "out of range"
    (Invalid_argument "Context.infer: instance id out of range") (fun () ->
      ignore (Context.infer ~hot_instances:[ 7 ] ~total_instances:5))

let test_context_matches () =
  let reg = Context.Regular { start = 1; step = 2; count = 8 } in
  Alcotest.(check bool) "first odd" true (Context.matches reg 1);
  Alcotest.(check bool) "odd in range" true (Context.matches reg 15);
  Alcotest.(check bool) "even" false (Context.matches reg 4);
  Alcotest.(check bool) "past count" false (Context.matches reg 17);
  let all = Context.All { upto = None } in
  Alcotest.(check bool) "all unbounded" true (Context.matches all 1_000_000);
  let fixed = Context.Fixed [ 2; 5 ] in
  Alcotest.(check bool) "fixed member" true (Context.matches fixed 5);
  Alcotest.(check bool) "fixed non-member" false (Context.matches fixed 4)

let prop_context_roundtrip =
  QCheck.Test.make ~name:"inferred pattern matches exactly the hot ids" ~count:300
    QCheck.(list_of_size Gen.(int_range 1 12) (int_range 1 40))
    (fun ids ->
      let ids = List.sort_uniq compare ids in
      let total = 45 in
      let p = Context.infer ~hot_instances:ids ~total_instances:total in
      List.for_all (fun i -> Context.matches p i) ids
      &&
      (* no false positives within the profiled range, except that All
         legitimately covers everything when ids = all *)
      match p with
      | Context.All _ -> List.length ids = total
      | _ ->
        List.for_all
          (fun i -> List.mem i ids || not (Context.matches p i))
          (List.init total (fun i -> i + 1)))

let test_context_cost () =
  Alcotest.(check int) "all is free" 0 (Context.check_cost_instrs (Context.All { upto = None }));
  Alcotest.(check bool) "fixed costs more with more ids" true
    (Context.check_cost_instrs (Context.Fixed [ 1 ])
    < Context.check_cost_instrs (Context.Fixed [ 1; 2; 3; 4; 5 ]))

(* ---- Counters ---- *)

let alloc pos obj hot = { Counters.pos; obj; hot }

let test_counters_simulate () =
  let sites =
    [ { Counters.site = 1; allocs = [ alloc 0 10 true; alloc 4 12 false ] };
      { Counters.site = 2; allocs = [ alloc 2 11 true ] } ]
  in
  Alcotest.(check (list (triple int int bool)))
    "interleaved numbering"
    [ (1, 10, true); (2, 11, true); (3, 12, false) ]
    (Counters.simulate sites)

let test_counters_share_tandem () =
  (* Two sites alternating, hot first: combined ids {1,2} — shareable. *)
  let sites =
    [ { Counters.site = 1; allocs = [ alloc 0 10 true; alloc 10 20 false ] };
      { Counters.site = 2; allocs = [ alloc 1 11 true; alloc 11 21 false ] } ]
  in
  let groups = Counters.share sites in
  Alcotest.(check int) "one counter" 1 (Counters.num_counters groups)

let test_counters_no_share () =
  (* Hot ids would be {1, 12}: not consecutive, bigger than max_fixed 1. *)
  let cold_run base =
    List.init 10 (fun i -> alloc (base + i) (100 + base + i) false)
  in
  let sites =
    [ { Counters.site = 1; allocs = alloc 0 10 true :: cold_run 1 };
      { Counters.site = 2; allocs = alloc 20 11 true :: cold_run 21 } ]
  in
  let groups = Counters.share ~max_fixed:1 sites in
  Alcotest.(check int) "two counters" 2 (Counters.num_counters groups)

let test_counters_rejects_siteless_hot () =
  Alcotest.check_raises "no hot object"
    (Invalid_argument "Counters.share: site 3 allocates no hot object") (fun () ->
      ignore (Counters.share [ { Counters.site = 3; allocs = [ alloc 0 5 false ] } ]))

let test_counters_disable () =
  let sites =
    [ { Counters.site = 1; allocs = [ alloc 0 10 true ] };
      { Counters.site = 2; allocs = [ alloc 1 11 true ] } ]
  in
  Alcotest.(check int) "unshared" 2
    (Counters.num_counters (Counters.share ~enable:false sites))

(* ---- Offsets ---- *)

let test_offsets_assign () =
  let o = Offsets.assign ~size_of:(fun obj -> obj * 10) [ 3; 1; 2 ] in
  let slots = Offsets.slots o in
  Alcotest.(check int) "three slots" 3 (List.length slots);
  let s0 = List.nth slots 0 and s1 = List.nth slots 1 and s2 = List.nth slots 2 in
  Alcotest.(check int) "first at 0" 0 s0.offset;
  Alcotest.(check int) "rounded size" 32 s0.size;
  Alcotest.(check int) "packed" 32 s1.offset;
  Alcotest.(check int) "packed 2" 48 s2.offset;
  Alcotest.(check int) "total" 80 (Offsets.region_bytes o);
  Alcotest.(check (option int)) "index of 1" (Some 1) (Offsets.slot_of_obj o 1);
  Alcotest.(check (option int)) "unknown" None (Offsets.slot_of_obj o 99)

let test_offsets_duplicate () =
  Alcotest.check_raises "dup" (Invalid_argument "Offsets.assign: duplicate object")
    (fun () -> ignore (Offsets.assign ~size_of:(fun _ -> 16) [ 1; 1 ]))

let test_offsets_truncate () =
  let o = Offsets.assign ~size_of:(fun _ -> 32) [ 1; 2; 3; 4 ] in
  let o = Offsets.truncate o ~max_bytes:70 in
  Alcotest.(check int) "kept two" 2 (List.length (Offsets.slots o));
  Alcotest.(check (option int)) "third dropped" None (Offsets.slot_of_obj o 3)

let test_offsets_extend () =
  let o = Offsets.assign ~size_of:(fun _ -> 32) [ 1 ] in
  let o, first = Offsets.extend o ~count:3 ~size:64 in
  Alcotest.(check int) "first new slot" 1 first;
  Alcotest.(check int) "total slots" 4 (List.length (Offsets.slots o));
  Alcotest.(check int) "region grows" (32 + (3 * 64)) (Offsets.region_bytes o)

(* ---- Recycle ---- *)

let churn_trace ~live ~total () =
  let b = B.create ~seed:5 () in
  let q = Queue.create () in
  for _ = 1 to total do
    if Queue.length q >= live then B.free b (Queue.pop q);
    let o = B.alloc b ~site:1 64 in
    for k = 0 to 4 do
      B.access b o (k * 16 mod 64)
    done;
    Queue.push o q
  done;
  B.trace b

let test_recycle_accepts_churn () =
  let stats = Trace_stats.analyze (churn_trace ~live:4 ~total:200 ()) in
  match Recycle.analyze stats ~sites:[ 1 ] with
  | Some d ->
    Alcotest.(check int) "slots cover peak liveness with headroom" 5 d.n_slots;
    Alcotest.(check int) "slot bytes" 64 d.slot_bytes
  | None -> Alcotest.fail "expected recycling"

let test_recycle_rejects_long_lived () =
  (* Everything stays live: recycling impossible. *)
  let b = B.create ~seed:6 () in
  let objs = List.init 100 (fun _ -> B.alloc b ~site:1 64) in
  List.iter (fun o -> B.access b o 0) objs;
  let stats = Trace_stats.analyze (B.trace b) in
  Alcotest.(check bool) "no recycling" true (Recycle.analyze stats ~sites:[ 1 ] = None)

let test_recycle_rejects_few_allocs () =
  let stats = Trace_stats.analyze (churn_trace ~live:2 ~total:10 ()) in
  Alcotest.(check bool) "too few" true (Recycle.analyze stats ~sites:[ 1 ] = None)

let test_max_live_combined () =
  let stats = Trace_stats.analyze (churn_trace ~live:7 ~total:100 ()) in
  Alcotest.(check int) "peak" 7 (Recycle.max_live_combined stats [ 1 ])

(* ---- Plan validation + Instrument ---- *)

let tiny_plan () =
  let trace = churn_trace ~live:3 ~total:100 () in
  Pipeline.plan ~variant:Plan.Hot trace

let test_plan_validates () =
  let plan = tiny_plan () in
  match Plan.validate plan with
  | Ok () -> ()
  | Error e -> Alcotest.fail e

let test_plan_validate_catches_bad_slot () =
  let plan = tiny_plan () in
  let bad =
    { plan with
      counters =
        List.map
          (fun (cp : Plan.counter_plan) ->
            { cp with recycle = None; placements = [ (1, 9999) ] })
          plan.counters }
  in
  match Plan.validate bad with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "accepted out-of-range slot"

let test_instrument_monotone () =
  let plan = tiny_plan () in
  let size f r = Instrument.added_bytes ~plan ~free_sites:f ~realloc_sites:r () in
  Alcotest.(check bool) "more free sites cost more" true (size 10 0 > size 1 0);
  Alcotest.(check bool) "stub present" true (size 0 0 > 0);
  Alcotest.(check int) "optimized = base + added" (1000 + size 2 1)
    (Instrument.optimized_size ~baseline:1000 ~plan ~free_sites:2 ~realloc_sites:1 ())

(* ---- Pipeline ---- *)

let stream_trace () =
  let b = B.create ~seed:7 () in
  (* hot trio from site 1, each buried in cold blocks from site 9 *)
  let hot =
    List.init 3 (fun _ ->
        let o = B.alloc b ~site:1 32 in
        ignore (Prefix_workloads.Patterns.cold_block b ~site:9 ~size:128 3);
        o)
  in
  for _ = 1 to 120 do
    List.iter (fun o -> B.access b o 0) hot
  done;
  B.trace b

let test_pipeline_hot_variant () =
  let plan = Pipeline.plan ~variant:Plan.Hot (stream_trace ()) in
  Alcotest.(check int) "three placements" 3 (List.length plan.slots);
  Alcotest.(check int) "one site" 1 (Plan.num_sites plan);
  (match Plan.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  (* site 1's hot ids are 1,2,3 of 3 -> All *)
  let cp = List.hd plan.counters in
  Alcotest.(check string) "pattern" "all" (Prefix_core.Context.kind_name cp.pattern)

let test_pipeline_hds_variant_places_stream () =
  let plan = Pipeline.plan ~variant:Plan.Hds (stream_trace ()) in
  Alcotest.(check bool) "stream objects placed" true (List.length plan.slots >= 2)

let test_pipeline_cap () =
  let config = { Pipeline.default_config with max_prealloc_bytes = Some 64 } in
  let plan = Pipeline.plan ~config ~variant:Plan.Hot (stream_trace ()) in
  Alcotest.(check bool) "region capped" true (plan.region_bytes <= 64)

let test_pipeline_recycling_in_all_variants () =
  let trace = churn_trace ~live:3 ~total:300 () in
  List.iter
    (fun v ->
      let plan = Pipeline.plan ~variant:v trace in
      Alcotest.(check bool)
        (Plan.variant_name v ^ " recycles")
        true
        (List.exists (fun (cp : Plan.counter_plan) -> cp.recycle <> None) plan.counters))
    [ Plan.Hot; Plan.Hds; Plan.HdsHot ]

let test_pipeline_no_recycling_when_disabled () =
  let trace = churn_trace ~live:3 ~total:300 () in
  let config = { Pipeline.default_config with recycling = false } in
  let plan = Pipeline.plan ~config ~variant:Plan.Hot trace in
  Alcotest.(check bool) "no recycle blocks" true
    (List.for_all (fun (cp : Plan.counter_plan) -> cp.recycle = None) plan.counters)

(* ---- Lifetimes ---- *)

let lifetime_trace () =
  let b = B.create ~seed:31 () in
  (* persistent: never freed *)
  let p = B.alloc b ~site:1 32 in
  (* phase: freed two thirds in *)
  let ph = B.alloc b ~site:1 32 in
  (* transient: freed almost immediately *)
  let t = B.alloc b ~site:1 32 in
  for _ = 1 to 4 do
    B.access b t 0
  done;
  B.free b t;
  for _ = 1 to 80 do
    B.access b p 0;
    B.access b ph 0
  done;
  B.free b ph;
  for _ = 1 to 250 do
    B.access b p 0
  done;
  (B.trace b, p, ph, t)

let test_lifetime_classes () =
  let trace, p, ph, t = lifetime_trace () in
  let stats = Trace_stats.analyze trace in
  let n = Prefix_trace.Trace.length trace in
  let module L = Prefix_core.Lifetimes in
  Alcotest.(check string) "persistent" "persistent" (L.class_name (L.classify stats ~trace_len:n p));
  Alcotest.(check string) "phase" "phase" (L.class_name (L.classify stats ~trace_len:n ph));
  Alcotest.(check string) "transient" "transient" (L.class_name (L.classify stats ~trace_len:n t))

let test_lifetime_regroup () =
  let trace, p, ph, t = lifetime_trace () in
  let stats = Trace_stats.analyze trace in
  let n = Prefix_trace.Trace.length trace in
  let module L = Prefix_core.Lifetimes in
  (* Mixed input order comes back grouped longest-lived first. *)
  Alcotest.(check (list int)) "grouped" [ p; ph; t ] (L.regroup stats ~trace_len:n [ t; p; ph ]);
  (* Same multiset. *)
  let objs = [ ph; t; p ] in
  Alcotest.(check (list int)) "permutation" (List.sort compare objs)
    (List.sort compare (L.regroup stats ~trace_len:n objs));
  Alcotest.(check bool) "report renders" true
    (String.length (L.report stats ~trace_len:n objs) > 0)

let test_lifetime_pipeline_option () =
  let trace, p, ph, t = lifetime_trace () in
  let config = { Pipeline.default_config with lifetime_arenas = true; recycling = false } in
  let plan = Pipeline.plan ~config ~variant:Plan.Hot trace in
  (match Plan.validate plan with Ok () -> () | Error e -> Alcotest.fail e);
  (* With grouping on, the persistent object is placed before the
     transient one regardless of allocation order. *)
  let pos o =
    let rec go i = function
      | [] -> -1
      | x :: rest -> if x = o then i else go (i + 1) rest
    in
    go 0 plan.placed_objects
  in
  ignore ph;
  if pos p >= 0 && pos t >= 0 then
    Alcotest.(check bool) "persistent before transient" true (pos p < pos t)

let suite =
  [ ( "layout",
      [ Alcotest.test_case "unchanged inclusion" `Quick test_layout_unchanged_inclusion;
        Alcotest.test_case "merge" `Quick test_layout_merge;
        Alcotest.test_case "merge at most once" `Quick test_layout_merge_once;
        Alcotest.test_case "singleton" `Quick test_layout_singleton;
        Alcotest.test_case "duplicate skipped" `Quick test_layout_duplicate_stream_skipped;
        Alcotest.test_case "figure 2" `Quick test_layout_fig2;
        Alcotest.test_case "coverage" `Quick test_layout_coverage;
        QCheck_alcotest.to_alcotest prop_layout_disjoint_and_complete ] );
    ( "context",
      [ Alcotest.test_case "all" `Quick test_context_all;
        Alcotest.test_case "regular" `Quick test_context_regular;
        Alcotest.test_case "consecutive is fixed" `Quick test_context_consecutive_is_fixed;
        Alcotest.test_case "fixed" `Quick test_context_fixed;
        Alcotest.test_case "invalid" `Quick test_context_invalid;
        Alcotest.test_case "matches" `Quick test_context_matches;
        Alcotest.test_case "check cost" `Quick test_context_cost;
        QCheck_alcotest.to_alcotest prop_context_roundtrip ] );
    ( "counters",
      [ Alcotest.test_case "simulate" `Quick test_counters_simulate;
        Alcotest.test_case "share tandem" `Quick test_counters_share_tandem;
        Alcotest.test_case "no share" `Quick test_counters_no_share;
        Alcotest.test_case "rejects hot-free site" `Quick test_counters_rejects_siteless_hot;
        Alcotest.test_case "sharing disabled" `Quick test_counters_disable ] );
    ( "offsets",
      [ Alcotest.test_case "assign" `Quick test_offsets_assign;
        Alcotest.test_case "duplicate" `Quick test_offsets_duplicate;
        Alcotest.test_case "truncate" `Quick test_offsets_truncate;
        Alcotest.test_case "extend" `Quick test_offsets_extend ] );
    ( "recycle",
      [ Alcotest.test_case "accepts churn" `Quick test_recycle_accepts_churn;
        Alcotest.test_case "rejects long-lived" `Quick test_recycle_rejects_long_lived;
        Alcotest.test_case "rejects few allocs" `Quick test_recycle_rejects_few_allocs;
        Alcotest.test_case "max live combined" `Quick test_max_live_combined ] );
    ( "plan",
      [ Alcotest.test_case "validates" `Quick test_plan_validates;
        Alcotest.test_case "catches bad slot" `Quick test_plan_validate_catches_bad_slot;
        Alcotest.test_case "instrument model" `Quick test_instrument_monotone ] );
    ( "pipeline",
      [ Alcotest.test_case "hot variant" `Quick test_pipeline_hot_variant;
        Alcotest.test_case "hds variant" `Quick test_pipeline_hds_variant_places_stream;
        Alcotest.test_case "prealloc cap" `Quick test_pipeline_cap;
        Alcotest.test_case "recycling in all variants" `Quick
          test_pipeline_recycling_in_all_variants;
        Alcotest.test_case "recycling disabled" `Quick
          test_pipeline_no_recycling_when_disabled ] );
    ( "lifetimes",
      [ Alcotest.test_case "classes" `Quick test_lifetime_classes;
        Alcotest.test_case "regroup" `Quick test_lifetime_regroup;
        Alcotest.test_case "pipeline option" `Quick test_lifetime_pipeline_option ] ) ]
