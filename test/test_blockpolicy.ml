(* Tests for the interval-colored block policy layer: Blockalloc state
   transitions, line-granular reclamation, hole reuse and exact byte
   accounting, plus a differential check of the liveness-interval
   extraction against a naive O(n^2) oracle — over clean, corrupted
   and id-reusing traces. *)

module Allocator = Prefix_heap.Allocator
module Blockalloc = Prefix_blockpolicy.Blockalloc
module Intervals = Prefix_core.Intervals
module Trace = Prefix_trace.Trace
module Event = Prefix_trace.Event
module Injector = Prefix_faults.Injector

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* Tiny geometry so every transition is reachable in a few allocations:
   1 KiB blocks of four 256 B lines; one free line recycles. *)
let tiny =
  { Blockalloc.block_bytes = 1024;
    line_bytes = 256;
    recycle_free_lines = 0.25;
    max_bytes = None }

let test_block_states () =
  let heap = Allocator.create () in
  let t = Blockalloc.create ~config:tiny heap in
  check ci "no blocks yet" 0 (Blockalloc.block_count t);
  let addrs = Array.init 4 (fun _ -> Blockalloc.alloc t 256) in
  check ci "one block" 1 (Blockalloc.block_count t);
  check ci "live bytes exact" 1024 (Blockalloc.live_bytes t);
  check cb "bump is contiguous" true
    (Array.for_all (fun i -> addrs.(i) = addrs.(0) + (256 * i)) [| 0; 1; 2; 3 |]);
  (* a fifth object forces a second block; the first retires Full *)
  let b2 = Blockalloc.alloc t 256 in
  check ci "second block acquired" 2 (Blockalloc.blocks_acquired t);
  let free, recycled, full = Blockalloc.state_counts t in
  check ci "old block full" 1 full;
  check ci "no recycled yet" 0 recycled;
  check ci "current block free-queue state" 1 free;
  (* releasing one line of the Full block crosses the 25% threshold *)
  Blockalloc.release t addrs.(1);
  check ci "line reclaimed" 1 (Blockalloc.lines_reclaimed t);
  let _, recycled, full = Blockalloc.state_counts t in
  check ci "full -> recycled" 1 recycled;
  check ci "no full left" 0 full;
  (* draining the rest of the old block frees it outright *)
  Blockalloc.release t addrs.(0);
  Blockalloc.release t addrs.(2);
  Blockalloc.release t addrs.(3);
  let free, recycled, _ = Blockalloc.state_counts t in
  check ci "whole block free again" 2 free;
  check ci "recycled queue drained" 0 recycled;
  check ci "only the new object lives" 256 (Blockalloc.live_bytes t);
  check ci "peak was the full block plus one" (1024 + 256) (Blockalloc.peak_bytes t);
  check cb "survivor still live" true (Blockalloc.contains t b2);
  Blockalloc.dispose t

let test_block_hole_reuse () =
  let heap = Allocator.create () in
  let t = Blockalloc.create ~config:tiny heap in
  (* fill two blocks completely *)
  let a = Array.init 8 (fun _ -> Blockalloc.alloc t 256) in
  check ci "two blocks" 2 (Blockalloc.block_count t);
  (* punch a hole in the first (now Full) block *)
  Blockalloc.release t a.(1);
  (* the current block is full too, so the next allocation must come
     from the recycled block's hole — the exact freed line *)
  let n = Blockalloc.alloc t 200 in
  check ci "hole reused at the freed line" a.(1) n;
  check cb "hole reuse counted" true (Blockalloc.holes_reused t >= 1);
  check ci "charged rounded size" 208
    (Option.value ~default:0 (Blockalloc.charged_size t n));
  (* same hole cannot be handed out twice *)
  let m = Blockalloc.alloc t 256 in
  check cb "no double booking" true (m <> n);
  check ci "three blocks after holes exhausted" 3 (Blockalloc.block_count t);
  Blockalloc.dispose t

let test_block_guards () =
  let heap = Allocator.create () in
  let t = Blockalloc.create ~config:{ tiny with max_bytes = Some 1024 } heap in
  (* oversize requests are refused, not split across blocks *)
  check cb "oversize refused" true (Blockalloc.try_alloc t 2048 = None);
  let a = Blockalloc.alloc t 256 in
  ignore (Blockalloc.alloc t 768);
  (* cap reached and the block is full: degradation path *)
  check cb "exhausted under cap" true (Blockalloc.try_alloc t 256 = None);
  (* release then double release: the second must raise, and the first
     must have already credited the bytes *)
  Blockalloc.release t a;
  check ci "credit on release" 768 (Blockalloc.live_bytes t);
  (match Blockalloc.release t a with
  | () -> Alcotest.fail "double release succeeded"
  | exception Invalid_argument _ -> ());
  check ci "double release did not double-credit" 768 (Blockalloc.live_bytes t);
  check cb "freed addr no longer live" true (not (Blockalloc.contains t a));
  check cb "but still in block range" true (Blockalloc.in_range t a);
  (* the freed line is reusable within the cap *)
  check cb "free-list style reuse at cap" true (Blockalloc.try_alloc t 256 = Some a);
  Blockalloc.dispose t

(* Random alloc/release scripts against a live-set model: global and
   per-block accounting agree with the model after every operation. *)
let prop_block_accounting =
  QCheck.Test.make ~count:80 ~name:"blockalloc accounting matches live-set model"
    QCheck.(list_of_size Gen.(int_range 1 120) (pair bool (int_range 1 600)))
    (fun script ->
      let heap = Allocator.create () in
      let t = Blockalloc.create ~config:tiny heap in
      let round16 n = (n + 15) / 16 * 16 in
      let live = ref [] in
      let peak_seen = ref 0 in
      List.iter
        (fun (is_alloc, size) ->
          (if is_alloc || !live = [] then begin
             match Blockalloc.try_alloc t size with
             | Some addr -> live := (addr, round16 size) :: !live
             | None -> Alcotest.fail "uncapped allocator refused a fitting size"
           end
           else begin
             match !live with
             | (addr, _) :: rest ->
               live := rest;
               Blockalloc.release t addr
             | [] -> ()
           end);
          let expect_bytes = List.fold_left (fun a (_, s) -> a + s) 0 !live in
          if Blockalloc.live_bytes t <> expect_bytes then
            Alcotest.failf "live bytes %d <> model %d" (Blockalloc.live_bytes t)
              expect_bytes;
          if Blockalloc.live_objects t <> List.length !live then
            Alcotest.fail "live object count diverged";
          (* per-block stats roll up to the global totals *)
          let sum_objs, sum_bytes =
            List.fold_left
              (fun (o, b) (_, _, bo, bb, _) -> (o + bo, b + bb))
              (0, 0) (Blockalloc.block_stats t)
          in
          if sum_objs <> List.length !live || sum_bytes <> expect_bytes then
            Alcotest.fail "per-block stats disagree with totals";
          if Blockalloc.peak_bytes t < !peak_seen then Alcotest.fail "peak decreased";
          peak_seen := Blockalloc.peak_bytes t;
          if Blockalloc.peak_bytes t < Blockalloc.live_bytes t then
            Alcotest.fail "peak below live bytes")
        script;
      Blockalloc.dispose t;
      true)

(* ---- liveness-interval extraction vs naive oracle ---- *)

(* O(n^2) reference: for each Alloc, scan forward to the next Alloc of
   the same id (exclusive), tracking last touch, max size and whether a
   Free closed it; events after the Free are ignored, like the
   extractor's lenient handling of duplicate frees and use-after-free. *)
let oracle events =
  let arr = Array.of_list events in
  let n = Array.length arr in
  let incarnations = Hashtbl.create 16 in
  let out = ref [] in
  for i = 0 to n - 1 do
    match arr.(i) with
    | Event.Alloc { obj; site; ctx; size; _ } ->
      let inc = 1 + Option.value ~default:0 (Hashtbl.find_opt incarnations obj) in
      Hashtbl.replace incarnations obj inc;
      let stop = ref i and freed = ref false and sz = ref size in
      let j = ref (i + 1) in
      let scanning = ref true in
      while !scanning && !j < n do
        (match arr.(!j) with
        | Event.Alloc a when a.obj = obj -> scanning := false
        | Event.Access a when a.obj = obj && not !freed -> stop := !j
        | Event.Realloc r when r.obj = obj && not !freed ->
          stop := !j;
          sz := max !sz r.new_size
        | Event.Free f when f.obj = obj && not !freed ->
          stop := !j;
          freed := true
        | _ -> ());
        if !scanning then incr j
      done;
      out :=
        { Intervals.iv_obj = obj;
          iv_site = site;
          iv_ctx = ctx;
          iv_size = !sz;
          iv_incarnation = inc;
          iv_start = i;
          iv_stop = !stop;
          iv_freed = !freed }
        :: !out
    | _ -> ()
  done;
  List.rev !out

let check_against_oracle events =
  let got = Array.to_list (Intervals.intervals (Intervals.of_trace (Trace.of_list events))) in
  let want = oracle events in
  if List.length got <> List.length want then
    Alcotest.failf "interval count %d <> oracle %d" (List.length got) (List.length want);
  List.iter2
    (fun (g : Intervals.interval) (w : Intervals.interval) ->
      if g <> w then
        Alcotest.failf
          "interval mismatch: got obj=%d inc=%d [%d,%d] freed=%b size=%d, oracle \
           obj=%d inc=%d [%d,%d] freed=%b size=%d"
          g.iv_obj g.iv_incarnation g.iv_start g.iv_stop g.iv_freed g.iv_size w.iv_obj
          w.iv_incarnation w.iv_start w.iv_stop w.iv_freed w.iv_size)
    got want

(* Unconstrained event scripts: ids collide while live, frees arrive
   early, twice or never, accesses touch dead objects — the corrupted
   space the lenient pipeline replays. *)
let gen_events =
  let open QCheck.Gen in
  let ev =
    frequency
      [ (4, map2 (fun obj size ->
              Event.Alloc { obj; site = obj mod 4; ctx = obj mod 3; size; thread = 0 })
            (int_range 0 7) (int_range 1 256));
        (4, map (fun obj -> Event.Access { obj; offset = 0; write = false; thread = 0 })
            (int_range 0 7));
        (2, map (fun obj -> Event.Free { obj; thread = 0 }) (int_range 0 7));
        (1, map2 (fun obj new_size -> Event.Realloc { obj; new_size; thread = 0 })
            (int_range 0 7) (int_range 1 512));
        (1, map (fun instrs -> Event.Compute { instrs; thread = 0 }) (int_range 1 50)) ]
  in
  list_size (int_range 0 300) ev

let prop_intervals_differential =
  QCheck.Test.make ~count:200 ~name:"interval extraction matches O(n^2) oracle"
    (QCheck.make gen_events)
    (fun events ->
      check_against_oracle events;
      true)

(* The same differential over a real workload trace and its
   injector-corrupted variants (every fault kind). *)
let test_intervals_oracle_on_workload () =
  let wl = Prefix_workloads.Registry.find "mcf" in
  let trace = wl.generate ~scale:Profiling ~seed:11 () in
  let events =
    List.filteri (fun i _ -> i < 1500) (Trace.to_list trace)
  in
  check_against_oracle events;
  List.iter
    (fun kind ->
      let corrupted = Injector.inject kind ~seed:3 ~rate:0.05 (Trace.of_list events) in
      check_against_oracle (Trace.to_list corrupted))
    Injector.all_kinds

(* Reused ids produce one interval per incarnation, and the pinned
   coloring never shares a never-freed object's slot. *)
let test_intervals_incarnations () =
  let events =
    [ Event.Alloc { obj = 1; site = 5; ctx = 0; size = 32; thread = 0 };
      Event.Access { obj = 1; offset = 0; write = false; thread = 0 };
      Event.Alloc { obj = 1; site = 5; ctx = 0; size = 48; thread = 0 };
      (* reuse while live *)
      Event.Free { obj = 1; thread = 0 };
      Event.Alloc { obj = 1; site = 5; ctx = 0; size = 64; thread = 0 } ]
  in
  check_against_oracle events;
  let ivs = Intervals.intervals (Intervals.of_trace (Trace.of_list events)) in
  check ci "one interval per incarnation" 3 (Array.length ivs);
  check (Alcotest.list ci) "incarnations numbered in order" [ 1; 2; 3 ]
    (Array.to_list (Array.map (fun iv -> iv.Intervals.iv_incarnation) ivs));
  check cb "reuse closes unfreed" true (not ivs.(0).Intervals.iv_freed);
  check cb "free closes second" true ivs.(1).Intervals.iv_freed;
  (* Pinning: the first incarnation was never freed, so its slot stays
     private; the second was freed before the third allocated, so the
     third reuses exactly its slot. *)
  let assignment =
    Intervals.slot_assignment (Intervals.of_trace (Trace.of_list events)) ~sites:[ 5 ]
      ~n_slots:4 ()
  in
  check
    (Alcotest.list (Alcotest.pair ci ci))
    "pinned coloring: unfreed slot private, freed slot reused"
    [ (1, 0); (2, 1); (3, 1) ] assignment

let suite =
  [ ( "blockalloc",
      [ Alcotest.test_case "state transitions" `Quick test_block_states;
        Alcotest.test_case "hole reuse" `Quick test_block_hole_reuse;
        Alcotest.test_case "guards and double release" `Quick test_block_guards;
        QCheck_alcotest.to_alcotest prop_block_accounting ] );
    ( "intervals",
      [ QCheck_alcotest.to_alcotest prop_intervals_differential;
        Alcotest.test_case "oracle on workload + injected faults" `Quick
          test_intervals_oracle_on_workload;
        Alcotest.test_case "per-incarnation reuse" `Quick test_intervals_incarnations ] ) ]
