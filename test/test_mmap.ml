(* Tests for the zero-copy (mmap) decode path and the replay pipeline:

   - [Bigio]: mapped and read-fallback loads are byte-identical, empty
     files yield the empty region, slicing is bounds-checked;
   - differential decode: for every container version (v1, v2, v3) the
     bigstring decoders ([Binfmt.iter_big], [Columnar.iter_big], the
     [`Mmap] stream backend) observe exactly the events, frame cuts,
     strict rejections and lenient lost ranges of the channel decoders
     — on clean files, qcheck event soup and corrupted bytes alike;
   - pipeline equivalence: [Stream.prefetched] emits its inner
     stream's exact segment sequence, [Executor.run_stream_many]
     matches per-policy [Executor.run_stream] outcome-for-outcome, and
     [Executor.probe_widening] never changes an outcome. *)

open Prefix_trace
module Bigio = Prefix_util.Bigio
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy

let costs = Executor.default_config.costs

let baseline heap = Policy.baseline costs heap

let workload_trace () =
  let wl = Prefix_workloads.Registry.find "libc" in
  wl.generate ~scale:Prefix_workloads.Workload.Profiling ~seed:7 ()

let with_file data k =
  let path = Filename.temp_file "prefix_mmap" ".pfxt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_bytes oc data;
      close_out oc;
      k path)

(* ---- Bigio ---- *)

let test_bigio_load_equivalence () =
  let data = Binfmt.to_bytes_framed (workload_trace ()) in
  with_file data (fun path ->
      let mapped = Bigio.load path in
      let copied = Bigio.load ~mmap:false path in
      Alcotest.(check int) "mapped length" (Bytes.length data) (Bigio.length mapped);
      Alcotest.(check int) "copied length" (Bytes.length data) (Bigio.length copied);
      Alcotest.(check bytes) "mapped bytes" data (Bigio.to_bytes mapped);
      Alcotest.(check bytes) "copied bytes" data (Bigio.to_bytes copied))

let test_bigio_empty () =
  with_file Bytes.empty (fun path ->
      Alcotest.(check int) "mapped empty" 0 (Bigio.length (Bigio.load path));
      Alcotest.(check int) "copied empty" 0
        (Bigio.length (Bigio.load ~mmap:false path)))

let test_bigio_sub_string () =
  with_file (Bytes.of_string "hello, mapping") (fun path ->
      List.iter
        (fun mmap ->
          let b = Bigio.load ~mmap path in
          Alcotest.(check string) "slice" "lo, map" (Bigio.sub_string b ~pos:3 ~len:7);
          Alcotest.(check char) "get" 'h' (Bigio.get b 0);
          List.iter
            (fun (pos, len) ->
              match Bigio.sub_string b ~pos ~len with
              | _ -> Alcotest.failf "slice (%d, %d) out of bounds accepted" pos len
              | exception Invalid_argument _ -> ())
            [ (-1, 2); (0, 15); (14, 1); (7, max_int) ])
        [ true; false ])

let test_bigio_missing_file () =
  match Bigio.load "/nonexistent/prefix-bigio-test" with
  | _ -> Alcotest.fail "loaded a nonexistent file"
  | exception Sys_error _ -> ()

(* ---- differential decode: channel vs mapping ---- *)

(* Collect what a v1/v2 decode observes, tagging frame cuts, so the
   comparison covers segmentation, not just the event list. *)
type obs = Ev of Event.t | Frame

let binfmt_channel_obs path =
  let acc = ref [] in
  let r =
    Binfmt.iter_file ~on_frame:(fun () -> acc := Frame :: !acc) path
      ~f:(fun e -> acc := Ev e :: !acc)
  in
  (r, List.rev !acc)

let binfmt_big_obs big =
  let acc = ref [] in
  let r =
    Binfmt.iter_big ~on_frame:(fun () -> acc := Frame :: !acc) big
      ~f:(fun e -> acc := Ev e :: !acc)
  in
  (r, List.rev !acc)

let check_binfmt_same what data =
  with_file data (fun path ->
      let ch = binfmt_channel_obs path in
      List.iter
        (fun mmap ->
          let bg = binfmt_big_obs (Bigio.load ~mmap path) in
          if ch <> bg then
            Alcotest.failf "%s (mmap:%b): channel and bigstring decodes differ"
              what mmap)
        [ true; false ])

let test_binfmt_big_clean () =
  let trace = workload_trace () in
  check_binfmt_same "v1" (Binfmt.to_bytes trace);
  check_binfmt_same "v2" (Binfmt.to_bytes_framed trace);
  check_binfmt_same "v2, small frames" (Binfmt.to_bytes_framed ~frame_events:17 trace);
  check_binfmt_same "empty trace" (Binfmt.to_bytes_framed (Trace.of_list []))

let test_big_version () =
  let trace = workload_trace () in
  List.iter
    (fun (what, data, version) ->
      with_file data (fun path ->
          Alcotest.(check (result int string)) what (Ok version)
            (Binfmt.big_version (Bigio.load path));
          Alcotest.(check (result int string)) (what ^ " = file_version")
            (Binfmt.file_version path)
            (Binfmt.big_version (Bigio.load path))))
    [ ("v1", Binfmt.to_bytes trace, Binfmt.version);
      ("v2", Binfmt.to_bytes_framed trace, Binfmt.version_framed);
      ( "v3",
        Columnar.to_bytes (Packed.of_trace trace),
        Columnar.version_columnar ) ]

let columnar_channel_frames path =
  let acc = ref [] in
  let r = Columnar.iter_file path ~f:(fun p -> acc := Packed.to_trace p :: !acc) in
  (r, List.rev_map Trace.to_list !acc)

let columnar_big_frames big =
  let acc = ref [] in
  let r = Columnar.iter_big big ~f:(fun p -> acc := Packed.to_trace p :: !acc) in
  (r, List.rev_map Trace.to_list !acc)

let check_columnar_same what data =
  with_file data (fun path ->
      let ch = columnar_channel_frames path in
      List.iter
        (fun mmap ->
          let bg = columnar_big_frames (Bigio.load ~mmap path) in
          if ch <> bg then
            Alcotest.failf "%s (mmap:%b): channel and bigstring decodes differ"
              what mmap)
        [ true; false ])

let test_columnar_big_clean () =
  let p = Packed.of_trace (workload_trace ()) in
  check_columnar_same "v3" (Columnar.to_bytes p);
  check_columnar_same "v3, small frames" (Columnar.to_bytes ~frame_events:23 p);
  check_columnar_same "v3, empty" (Columnar.to_bytes (Packed.of_trace (Trace.of_list [])))

let soup_gen =
  QCheck.Gen.(
    let ev =
      oneof
        [ (fun st ->
            (Event.Alloc
               { obj = int_range (-50) 50 st; site = int_range (-5) 5 st;
                 ctx = int_range (-5) 5 st; size = int_range (-200) 200 st;
                 thread = int_range (-2) 2 st } : Event.t));
          (fun st ->
            Event.Access
              { obj = int_range (-50) 50 st; offset = int_range (-200) 200 st;
                write = bool st; thread = int_range (-2) 2 st });
          (fun st -> Event.Free { obj = int_range (-50) 50 st; thread = int_range (-2) 2 st });
          (fun st ->
            Event.Realloc
              { obj = int_range (-50) 50 st; new_size = int_range (-200) 200 st;
                thread = int_range (-2) 2 st });
          (fun st ->
            Event.Compute { instrs = int_range (-100) 100 st; thread = int_range (-2) 2 st }) ]
    in
    list_size (int_range 0 300) ev)

(* Corruption differential: flip bytes / truncate, then require the
   channel and bigstring strict decoders to agree on the full
   observation — same events, same frame cuts, same rejection (by
   message) or acceptance. *)
let corrupt_gen base =
  let n = Bytes.length base in
  QCheck.Gen.(
    pair
      (list_size (int_range 0 6) (pair (int_range 0 (max 0 (n - 1))) (int_range 0 255)))
      (int_range 0 n))

let corrupted base (flips, keep) =
  let data = Bytes.sub base 0 keep in
  List.iter (fun (pos, v) -> if pos < keep then Bytes.set data pos (Char.chr v)) flips;
  data

let prop_binfmt_big_differential =
  let base = Binfmt.to_bytes_framed ~frame_events:32 (workload_trace ()) in
  QCheck.Test.make ~name:"binfmt bigstring decode ≡ channel decode under corruption"
    ~count:250
    (QCheck.make (corrupt_gen base))
    (fun c ->
      with_file (corrupted base c) (fun path ->
          binfmt_channel_obs path = binfmt_big_obs (Bigio.load path)))

let prop_columnar_big_differential =
  let base =
    Columnar.to_bytes ~frame_events:32 (Packed.of_trace (workload_trace ()))
  in
  QCheck.Test.make
    ~name:"columnar bigstring decode ≡ channel decode under corruption" ~count:250
    (QCheck.make (corrupt_gen base))
    (fun c ->
      with_file (corrupted base c) (fun path ->
          columnar_channel_frames path = columnar_big_frames (Bigio.load path)))

(* The v2 writer encodes ids/sizes as unsigned varints, so feed it
   non-negative soup (the signed extremes are covered by the columnar
   round-trip tests). *)
let unsigned_soup_gen =
  QCheck.Gen.(
    let ev =
      oneof
        [ (fun st ->
            (Event.Alloc
               { obj = int_range 0 50 st; site = int_range 0 5 st;
                 ctx = int_range 0 5 st; size = int_range 1 200 st;
                 thread = int_range 0 2 st } : Event.t));
          (fun st ->
            Event.Access
              { obj = int_range 0 50 st; offset = int_range 0 200 st;
                write = bool st; thread = int_range 0 2 st });
          (fun st -> Event.Free { obj = int_range 0 50 st; thread = int_range 0 2 st });
          (fun st ->
            Event.Realloc
              { obj = int_range 0 50 st; new_size = int_range 1 200 st;
                thread = int_range 0 2 st });
          (fun st ->
            Event.Compute { instrs = int_range 0 100 st; thread = int_range 0 2 st }) ]
    in
    list_size (int_range 0 300) ev)

let prop_stream_backends_agree =
  QCheck.Test.make ~name:"stream `Mmap backend ≡ `Channel backend (v2 and v3)"
    ~count:120 (QCheck.make unsigned_soup_gen)
    (fun es ->
      let trace = Trace.of_list es in
      let same data =
        with_file data (fun path ->
            let segs backend =
              let acc = ref [] in
              Stream.iter_segments
                (Stream.of_binary_file ~segment_events:64 ~backend path)
                (fun ~base seg -> acc := (base, Trace.to_list (Packed.to_trace seg)) :: !acc);
              List.rev !acc
            in
            segs `Mmap = segs `Channel)
      in
      same (Binfmt.to_bytes_framed ~frame_events:48 trace)
      && same (Columnar.to_bytes ~frame_events:48 (Packed.of_trace trace)))

(* ---- pipeline equivalence ---- *)

let test_prefetched_segments () =
  let trace = workload_trace () in
  let stream = Stream.of_trace ~segment_events:700 trace in
  let collect s =
    let acc = ref [] in
    Stream.iter_segments s (fun ~base seg ->
        acc := (base, Trace.to_list (Packed.to_trace seg)) :: !acc);
    List.rev !acc
  in
  let plain = collect stream in
  let pre = Stream.prefetched stream in
  Alcotest.(check bool) "same segments" true (collect pre = plain);
  (* Re-iteration spawns a fresh producer; the hand-off scratch must not
     leak state between passes. *)
  Alcotest.(check bool) "same segments on re-iteration" true (collect pre = plain)

let test_prefetched_replay_equal () =
  let p = Packed.of_trace (workload_trace ()) in
  let path = Filename.temp_file "prefix_prefetch" ".pfxt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Columnar.write_file path p;
      let plain = Executor.run_stream ~policy:baseline (Stream.of_binary_file path) in
      let pre =
        Executor.run_stream ~policy:baseline
          (Stream.prefetched (Stream.of_binary_file path))
      in
      Alcotest.(check bool) "metrics" true
        (plain.Executor.metrics = pre.Executor.metrics);
      Alcotest.(check bool) "recovery" true
        (plain.Executor.recovery = pre.Executor.recovery))

let test_prefetched_consumer_abort () =
  let stream = Stream.of_trace ~segment_events:100 (workload_trace ()) in
  let pre = Stream.prefetched stream in
  (match
     Stream.iter_segments pre (fun ~base:_ _ -> failwith "consumer bails")
   with
  | () -> Alcotest.fail "consumer exception swallowed"
  | exception Failure m -> Alcotest.(check string) "re-raised" "consumer bails" m);
  (* The stream stays usable after an aborted pass. *)
  let n = ref 0 in
  Stream.iter_segments pre (fun ~base:_ seg -> n := !n + Packed.length seg);
  Alcotest.(check int) "events after abort" (Trace.length (workload_trace ())) !n

let six_policies () =
  let trace = workload_trace () in
  let stats = Trace_stats.analyze_packed (Packed.of_trace trace) in
  let cls = Policy.no_classification in
  let hds_plan = Prefix_runtime.Hds_policy.plan_of_trace stats trace in
  let halo_plan = Prefix_halo.Halo.plan_of_trace stats trace in
  let plan v = Prefix_core.Pipeline.plan_with_stats ~variant:v stats trace in
  let plan_hot = plan Prefix_core.Plan.Hot in
  let plan_hds = plan Prefix_core.Plan.Hds in
  [ (fun heap -> Policy.baseline costs heap);
    (fun heap -> Prefix_runtime.Hds_policy.policy costs heap hds_plan cls);
    (fun heap -> Prefix_runtime.Halo_policy.policy costs heap halo_plan cls);
    (fun heap -> Prefix_runtime.Prefix_policy.policy costs heap plan_hot cls);
    (fun heap -> Prefix_runtime.Prefix_policy.policy costs heap plan_hds cls);
    baseline ]

let test_run_stream_many_equal () =
  let p = Packed.of_trace (workload_trace ()) in
  let policies = six_policies () in
  let path = Filename.temp_file "prefix_fanout" ".pfxt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Columnar.write_file ~frame_events:700 path p;
      let stream = Stream.of_binary_file path in
      let fanned = Executor.run_stream_many ~policies stream in
      Alcotest.(check int) "outcome count" (List.length policies) (List.length fanned);
      List.iteri
        (fun i (policy, (o : Executor.outcome)) ->
          let solo = Executor.run_stream ~policy stream in
          Alcotest.(check bool) (Printf.sprintf "policy %d metrics" i) true
            (solo.Executor.metrics = o.Executor.metrics);
          Alcotest.(check bool) (Printf.sprintf "policy %d recovery" i) true
            (solo.Executor.recovery = o.Executor.recovery))
        (List.combine policies fanned))

let prop_run_stream_many_strict_raises_same =
  QCheck.Test.make ~name:"run_stream_many ≡ run_stream on strict anomaly detection"
    ~count:40 (QCheck.make soup_gen)
    (fun es ->
      let p = Packed.of_trace (Trace.of_list es) in
      let stream = Stream.of_packed ~segment_events:64 p in
      let solo =
        match Executor.run_stream ~policy:baseline stream with
        | (o : Executor.outcome) -> Ok o.Executor.metrics
        | exception Invalid_argument m -> Error m
      in
      let fanned =
        match Executor.run_stream_many ~policies:[ baseline; baseline ] stream with
        | [ a; b ] ->
          if a.Executor.metrics = b.Executor.metrics then Ok a.Executor.metrics
          else Error "fanned sessions diverge"
        | _ -> Error "wrong outcome arity"
        | exception Invalid_argument m -> Error m
      in
      solo = fanned)

let test_probe_widening_equal () =
  List.iter
    (fun name ->
      let wl = Prefix_workloads.Registry.find name in
      let p =
        Packed.of_trace (wl.generate ~scale:Prefix_workloads.Workload.Profiling ~seed:5 ())
      in
      let outcome on =
        Executor.probe_widening := on;
        Fun.protect
          ~finally:(fun () -> Executor.probe_widening := true)
          (fun () -> Executor.run_packed ~policy:baseline p)
      in
      let wide = outcome true and narrow = outcome false in
      Alcotest.(check bool) (name ^ ": metrics") true
        (wide.Executor.metrics = narrow.Executor.metrics);
      Alcotest.(check bool) (name ^ ": recovery") true
        (wide.Executor.recovery = narrow.Executor.recovery))
    [ "libc"; "mcf"; "swissmap" ]

let suite =
  [ ( "bigio",
      [ Alcotest.test_case "mmap and read-fallback loads agree" `Quick
          test_bigio_load_equivalence;
        Alcotest.test_case "empty file loads as the empty region" `Quick
          test_bigio_empty;
        Alcotest.test_case "sub_string slices and bounds-checks" `Quick
          test_bigio_sub_string;
        Alcotest.test_case "missing file raises Sys_error" `Quick
          test_bigio_missing_file ] );
    ( "mmap-decode",
      [ Alcotest.test_case "binfmt bigstring ≡ channel on clean v1/v2" `Quick
          test_binfmt_big_clean;
        Alcotest.test_case "big_version sniffs every container" `Quick
          test_big_version;
        Alcotest.test_case "columnar bigstring ≡ channel on clean v3" `Quick
          test_columnar_big_clean;
        QCheck_alcotest.to_alcotest prop_binfmt_big_differential;
        QCheck_alcotest.to_alcotest prop_columnar_big_differential;
        QCheck_alcotest.to_alcotest prop_stream_backends_agree ] );
    ( "replay-pipeline",
      [ Alcotest.test_case "prefetched emits identical segments" `Quick
          test_prefetched_segments;
        Alcotest.test_case "prefetched replay ≡ plain replay" `Quick
          test_prefetched_replay_equal;
        Alcotest.test_case "prefetched re-raises consumer exceptions" `Quick
          test_prefetched_consumer_abort;
        Alcotest.test_case "run_stream_many ≡ per-policy run_stream" `Quick
          test_run_stream_many_equal;
        QCheck_alcotest.to_alcotest prop_run_stream_many_strict_raises_same;
        Alcotest.test_case "probe widening never changes outcomes" `Quick
          test_probe_widening_equal ] ) ]
