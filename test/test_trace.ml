(* Tests for Prefix_trace: Event, Trace, Trace_stats, Serialize. *)

open Prefix_trace

let al thread obj site size : Event.t = Alloc { obj; site; ctx = site; size; thread }
let acc ?(write = false) ?(thread = 0) obj offset : Event.t =
  Access { obj; offset; write; thread }
let fr ?(thread = 0) obj : Event.t = Free { obj; thread }
let re ?(thread = 0) obj new_size : Event.t = Realloc { obj; new_size; thread }
let cp ?(thread = 0) instrs : Event.t = Compute { instrs; thread }

let valid_trace () =
  Trace.of_list
    [ al 0 1 10 64; acc 1 0; acc 1 48; cp 100; al 0 2 11 32; acc 2 16; re 2 64; acc 2 48;
      fr 1; fr 2 ]

(* ---- Trace buffer ---- *)

let test_add_get () =
  let t = Trace.create ~capacity:2 () in
  for i = 1 to 100 do
    Trace.add t (cp i)
  done;
  Alcotest.(check int) "length" 100 (Trace.length t);
  (match Trace.get t 41 with
  | Compute { instrs; _ } -> Alcotest.(check int) "get" 42 instrs
  | _ -> Alcotest.fail "wrong event");
  Alcotest.check_raises "oob" (Invalid_argument "Trace.get: index out of bounds") (fun () ->
      ignore (Trace.get t 100))

let test_roundtrip_list () =
  let t = valid_trace () in
  Alcotest.(check int) "of_list/to_list" (Trace.length t)
    (List.length (Trace.to_list t))

let test_append_filter () =
  let t = valid_trace () in
  let doubled = Trace.append t t in
  Alcotest.(check int) "append" (2 * Trace.length t) (Trace.length doubled);
  let only_access = Trace.filter Event.is_heap_access t in
  Alcotest.(check int) "filter" (Trace.num_accesses t) (Trace.length only_access)

let test_counts () =
  let t = valid_trace () in
  Alcotest.(check int) "objects" 2 (Trace.num_objects t);
  Alcotest.(check int) "accesses" 4 (Trace.num_accesses t);
  Alcotest.(check int) "instructions" 104 (Trace.total_instructions t)

(* ---- Validation ---- *)

let violations es = List.length (Trace.validate (Trace.of_list es))

let test_validate_ok () =
  Alcotest.(check int) "no violations" 0 (violations (Trace.to_list (valid_trace ())))

let test_validate_use_before_alloc () =
  Alcotest.(check int) "catches" 1 (violations [ acc 5 0 ])

let test_validate_double_alloc () =
  Alcotest.(check int) "catches" 1 (violations [ al 0 1 1 32; al 0 1 2 32 ])

let test_validate_double_free () =
  Alcotest.(check int) "catches" 1 (violations [ al 0 1 1 32; fr 1; fr 1 ])

let test_validate_use_after_free () =
  Alcotest.(check int) "catches" 1 (violations [ al 0 1 1 32; fr 1; acc 1 0 ])

let test_validate_oob_offset () =
  Alcotest.(check int) "catches" 1 (violations [ al 0 1 1 32; acc 1 32 ]);
  Alcotest.(check int) "boundary ok" 0 (violations [ al 0 1 1 32; acc 1 31 ])

let test_validate_realloc_bounds () =
  (* growing legitimizes larger offsets; shrinking invalidates them *)
  Alcotest.(check int) "grow ok" 0 (violations [ al 0 1 1 32; re 1 64; acc 1 48 ]);
  Alcotest.(check int) "shrink oob" 1 (violations [ al 0 1 1 64; re 1 32; acc 1 48 ])

let test_validate_free_before_alloc () =
  (* A Free of a never-allocated id is its own violation kind, not an
     access-before-alloc. *)
  match Trace.validate (Trace.of_list [ fr 5 ]) with
  | [ Trace.Free_before_alloc { obj = 5; index = 0 } ] -> ()
  | [ v ] -> Alcotest.failf "wrong kind: %a" Trace.pp_violation v
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

let test_validate_realloc_before_alloc () =
  match Trace.validate (Trace.of_list [ al 0 1 1 32; re 9 64; fr 1 ]) with
  | [ Trace.Realloc_before_alloc { obj = 9; index = 1 } ] -> ()
  | [ v ] -> Alcotest.failf "wrong kind: %a" Trace.pp_violation v
  | vs -> Alcotest.failf "expected 1 violation, got %d" (List.length vs)

(* ---- Serialize ---- *)

let test_serialize_roundtrip () =
  let t = valid_trace () in
  match Serialize.of_string (Serialize.to_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check int) "length" (Trace.length t) (Trace.length t');
    List.iter2
      (fun a b ->
        Alcotest.(check string) "event" (Event.to_string a) (Event.to_string b))
      (Trace.to_list t) (Trace.to_list t')

let test_serialize_comments () =
  match Serialize.of_string "# comment\n\nC 5 0\n" with
  | Ok t -> Alcotest.(check int) "one event" 1 (Trace.length t)
  | Error e -> Alcotest.fail e

let test_serialize_malformed () =
  (match Serialize.of_string "X 1 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad tag");
  match Serialize.of_string "A 1 x 3 4 5\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad int"

let event_gen =
  QCheck.Gen.(
    oneof
      [ map2 (fun o s -> al 0 o s 32) (int_range 1 50) (int_range 1 9);
        map (fun i -> cp (i + 1)) (int_range 0 1000) ])

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialize roundtrips arbitrary events" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 50) event_gen))
    (fun es ->
      (* Allocations may repeat ids; serialization does not care. *)
      let t = Trace.of_list es in
      match Serialize.of_string (Serialize.to_string t) with
      | Ok t' -> Trace.to_list t' = es
      | Error _ -> false)

(* ---- Packed (struct-of-arrays) ---- *)

let test_packed_roundtrip_basic () =
  let t = valid_trace () in
  let p = Packed.of_trace t in
  Alcotest.(check int) "length" (Trace.length t) (Packed.length p);
  Alcotest.(check bool) "events preserved" true
    (Trace.to_list (Packed.to_trace p) = Trace.to_list t);
  Alcotest.(check int) "instructions" (Trace.total_instructions t)
    (Packed.total_instructions p);
  Alcotest.(check int) "accesses" (Trace.num_accesses t) (Packed.num_accesses p)

let test_packed_get () =
  let t = valid_trace () in
  let p = Packed.of_trace t in
  for i = 0 to Trace.length t - 1 do
    if Packed.get p i <> Trace.get t i then
      Alcotest.failf "event %d differs: %s vs %s" i
        (Event.to_string (Packed.get p i))
        (Event.to_string (Trace.get t i))
  done

let test_packed_iteri_order () =
  let t = valid_trace () in
  let p = Packed.of_trace t in
  (* Selective callbacks must see exactly the events of their kind, at
     the original indices. *)
  let seen = ref [] in
  Packed.iteri
    ~alloc:(fun i ~obj ~site:_ ~ctx:_ ~size:_ ~thread:_ -> seen := (i, `A obj) :: !seen)
    ~free:(fun i ~obj ~thread:_ -> seen := (i, `F obj) :: !seen)
    p;
  let expected =
    List.mapi
      (fun i (e : Event.t) ->
        match e with
        | Alloc { obj; _ } -> Some (i, `A obj)
        | Free { obj; _ } -> Some (i, `F obj)
        | _ -> None)
      (Trace.to_list t)
    |> List.filter_map Fun.id
  in
  Alcotest.(check bool) "allocs and frees in order" true (List.rev !seen = expected)

(* Arbitrary events of every kind with adversarial field values:
   negative sizes/offsets (the injector produces those), id reuse,
   write flags, multiple threads. *)
let any_event_gen =
  QCheck.Gen.(
    let obj = int_range 0 40 in
    let thread = int_range 0 3 in
    oneof
      [ (fun st ->
          let o = obj st and s = int_range (-8) 9 st and sz = int_range (-16) 256 st
          and th = thread st in
          (Event.Alloc { obj = o; site = s; ctx = s * 31; size = sz; thread = th } : Event.t));
        (fun st ->
          let o = obj st and off = int_range (-4) 512 st and w = bool st
          and th = thread st in
          Event.Access { obj = o; offset = off; write = w; thread = th });
        (fun st ->
          let o = obj st and th = thread st in
          Event.Free { obj = o; thread = th });
        (fun st ->
          let o = obj st and sz = int_range (-16) 256 st and th = thread st in
          Event.Realloc { obj = o; new_size = sz; thread = th });
        (fun st ->
          let n = int_range 0 1000 st and th = thread st in
          Event.Compute { instrs = n; thread = th }) ])

let prop_packed_roundtrip =
  QCheck.Test.make ~name:"packed roundtrips arbitrary events" ~count:500
    (QCheck.make QCheck.Gen.(list_size (int_range 0 200) any_event_gen))
    (fun es ->
      let t = Trace.of_list es in
      Trace.to_list (Packed.to_trace (Packed.of_trace t)) = es)

(* ---- of_list / append / filter edges ---- *)

let test_of_list_empty () =
  let t = Trace.of_list [] in
  Alcotest.(check int) "empty" 0 (Trace.length t);
  (* The empty trace must still grow. *)
  Trace.add t (cp 1);
  Alcotest.(check int) "grows" 1 (Trace.length t)

let test_append_empty () =
  let t = valid_trace () in
  let e = Trace.of_list [] in
  Alcotest.(check bool) "left identity" true
    (Trace.to_list (Trace.append e t) = Trace.to_list t);
  Alcotest.(check bool) "right identity" true
    (Trace.to_list (Trace.append t e) = Trace.to_list t);
  let ee = Trace.append e e in
  Alcotest.(check int) "empty++empty" 0 (Trace.length ee);
  Trace.add ee (cp 1);
  Alcotest.(check int) "result grows" 1 (Trace.length ee)

let test_filter_all_out () =
  let t = valid_trace () in
  let none = Trace.filter (fun _ -> false) t in
  Alcotest.(check int) "empty result" 0 (Trace.length none);
  Trace.add none (cp 1);
  Alcotest.(check int) "result grows" 1 (Trace.length none);
  let all = Trace.filter (fun _ -> true) t in
  Alcotest.(check bool) "identity" true (Trace.to_list all = Trace.to_list t)

(* ---- Trace_stats ---- *)

let stats_trace () =
  Trace.of_list
    [ al 0 1 10 64; al 0 2 10 32; al 0 3 11 32;
      acc 1 0; acc 1 16; acc 1 32; acc 1 48; acc 2 0; acc 3 0; acc 3 16; acc 3 0;
      acc 3 16; fr 2; al 0 4 10 128; acc 4 0; fr 1; fr 3; fr 4 ]

let test_stats_objects () =
  let s = Trace_stats.analyze (stats_trace ()) in
  let o1 = Trace_stats.obj_info s 1 in
  Alcotest.(check int) "accesses" 4 o1.accesses;
  Alcotest.(check int) "site" 10 o1.site;
  Alcotest.(check int) "instance" 1 o1.instance;
  let o4 = Trace_stats.obj_info s 4 in
  Alcotest.(check int) "instance of third site-10 alloc" 3 o4.instance;
  Alcotest.(check bool) "freed" true (o1.free_index <> None)

let test_stats_sites () =
  let s = Trace_stats.analyze (stats_trace ()) in
  let site10 = Trace_stats.site_info s 10 in
  Alcotest.(check int) "alloc count" 3 site10.alloc_count;
  Alcotest.(check (list int)) "site objects in order" [ 1; 2; 4 ] site10.site_objects;
  Alcotest.(check int) "site accesses" 6 site10.site_accesses

let test_stats_hot () =
  let s = Trace_stats.analyze (stats_trace ()) in
  let hot = Trace_stats.hot_objects ~coverage:0.9 ~min_accesses:4 s in
  let ids = List.map (fun (o : Trace_stats.obj_info) -> o.obj) hot in
  Alcotest.(check (list int)) "objects 1 and 3 are hot (4 accesses each)" [ 1; 3 ] ids

let test_stats_hot_min_accesses () =
  let s = Trace_stats.analyze (stats_trace ()) in
  let hot = Trace_stats.hot_objects ~coverage:1.0 ~min_accesses:1 s in
  Alcotest.(check int) "full coverage takes all accessed objects" 4 (List.length hot)

let test_stats_max_live () =
  let s = Trace_stats.analyze (stats_trace ()) in
  Alcotest.(check int) "max simultaneous" 3 (Trace_stats.max_live_objects s)

let test_stats_share () =
  let s = Trace_stats.analyze (stats_trace ()) in
  Alcotest.(check (Alcotest.float 1e-9)) "share of obj1" (4. /. 10.)
    (Trace_stats.heap_access_share s [ 1 ]);
  Alcotest.(check (Alcotest.float 1e-9)) "duplicates not double-counted" (4. /. 10.)
    (Trace_stats.heap_access_share s [ 1; 1 ])

let test_stats_lifetimes () =
  let s = Trace_stats.analyze (stats_trace ()) in
  Alcotest.(check bool) "1 and 2 overlap" true (Trace_stats.lifetimes_overlap s 1 2);
  Alcotest.(check bool) "2 and 4 do not" false (Trace_stats.lifetimes_overlap s 2 4)

let test_stats_max_live_site () =
  let s = Trace_stats.analyze (stats_trace ()) in
  Alcotest.(check int) "site 10 peak" 2 (Trace_stats.max_live_objects_of_site s 10)

(* ---- regressions: the statistics fold on malformed traces ---- *)

let test_stats_duplicate_free () =
  (* A duplicate Free (tolerated by lenient replay) used to decrement
     the live counter twice, driving it negative and making max_live
     report 1 here instead of 2. *)
  let t =
    Trace.of_list
      [ al 0 1 10 64; fr 1; fr 1; al 0 2 10 64; al 0 3 10 64; fr 2; fr 3 ]
  in
  let s = Trace_stats.analyze t in
  Alcotest.(check int) "max live" 2 (Trace_stats.max_live_objects s);
  Alcotest.(check int) "first free wins"
    1
    (Option.get (Trace_stats.obj_info s 1).Trace_stats.free_index)

let test_stats_reused_id () =
  (* An id allocated twice (corrupted traces do this) used to keep only
     the second incarnation in [objects] — double-counting it against
     the first one's accesses — and to count the id as two live
     objects. *)
  let t =
    Trace.of_list [ al 0 1 10 64; acc 1 0; al 0 1 11 32; acc 1 8; acc 1 16; fr 1 ]
  in
  let s = Trace_stats.analyze t in
  Alcotest.(check int) "reused ids" 1 (Trace_stats.reused_ids s);
  (match Trace_stats.objects s with
  | [ a; b ] ->
    Alcotest.(check int) "first incarnation site" 10 a.Trace_stats.site;
    Alcotest.(check int) "first incarnation accesses" 1 a.Trace_stats.accesses;
    Alcotest.(check int) "second incarnation site" 11 b.Trace_stats.site;
    Alcotest.(check int) "second incarnation accesses" 2 b.Trace_stats.accesses
  | objs -> Alcotest.fail (Printf.sprintf "expected 2 incarnations, got %d" (List.length objs)));
  Alcotest.(check int) "lookup sees latest incarnation" 11
    (Trace_stats.obj_info s 1).Trace_stats.site;
  Alcotest.(check int) "an id is at most one live object" 1
    (Trace_stats.max_live_objects s);
  Alcotest.(check int) "well-formed traces report none" 0
    (Trace_stats.reused_ids (Trace_stats.analyze (valid_trace ())))

(* ---- regressions: line-by-line deserialization ---- *)

let with_temp_file body =
  let path = Filename.temp_file "prefix_serialize" ".txt" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> body path)

let test_serialize_error_line_numbers () =
  (* Blank lines and comments still count toward the reported (1-based)
     line number of the first malformed line. *)
  with_temp_file @@ fun path ->
  let oc = open_out path in
  output_string oc "# header\n\nC 10 0\nL 1 -3 0\n";
  close_out oc;
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  match Serialize.read ic with
  | Ok _ -> Alcotest.fail "accepted a negative offset"
  | Error msg ->
    Alcotest.(check bool) ("names line 4: " ^ msg) true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 4:")

let test_serialize_read_streams () =
  (* [read] used to slurp the entire channel into a string list before
     parsing anything.  With a malformed first line it must now stop
     after that line: allocation stays flat instead of growing with the
     ~100k lines that follow. *)
  with_temp_file @@ fun path ->
  let oc = open_out path in
  output_string oc "garbage\n";
  for _ = 1 to 100_000 do
    output_string oc "C 10 0\n"
  done;
  close_out oc;
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let before = Gc.minor_words () in
  (match Serialize.read ic with
  | Ok _ -> Alcotest.fail "accepted garbage"
  | Error msg ->
    Alcotest.(check bool) "fails on line 1" true
      (String.length msg >= 7 && String.sub msg 0 7 = "line 1:"));
  let words = Gc.minor_words () -. before in
  Alcotest.(check bool)
    (Printf.sprintf "bounded allocation (%.0f words)" words)
    true (words < 100_000.)

let suite =
  [ ( "trace",
      [ Alcotest.test_case "add/get" `Quick test_add_get;
        Alcotest.test_case "of_list/to_list" `Quick test_roundtrip_list;
        Alcotest.test_case "append/filter" `Quick test_append_filter;
        Alcotest.test_case "counts" `Quick test_counts;
        Alcotest.test_case "validate ok" `Quick test_validate_ok;
        Alcotest.test_case "use before alloc" `Quick test_validate_use_before_alloc;
        Alcotest.test_case "double alloc" `Quick test_validate_double_alloc;
        Alcotest.test_case "double free" `Quick test_validate_double_free;
        Alcotest.test_case "use after free" `Quick test_validate_use_after_free;
        Alcotest.test_case "offset bounds" `Quick test_validate_oob_offset;
        Alcotest.test_case "realloc bounds" `Quick test_validate_realloc_bounds;
        Alcotest.test_case "free before alloc" `Quick test_validate_free_before_alloc;
        Alcotest.test_case "realloc before alloc" `Quick test_validate_realloc_before_alloc;
        Alcotest.test_case "of_list empty" `Quick test_of_list_empty;
        Alcotest.test_case "append empty" `Quick test_append_empty;
        Alcotest.test_case "filter edges" `Quick test_filter_all_out;
        Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
        Alcotest.test_case "serialize comments" `Quick test_serialize_comments;
        Alcotest.test_case "serialize malformed" `Quick test_serialize_malformed;
        Alcotest.test_case "serialize error line numbers" `Quick
          test_serialize_error_line_numbers;
        Alcotest.test_case "serialize read streams" `Quick test_serialize_read_streams;
        QCheck_alcotest.to_alcotest prop_serialize_roundtrip ] );
    ( "packed",
      [ Alcotest.test_case "roundtrip" `Quick test_packed_roundtrip_basic;
        Alcotest.test_case "get" `Quick test_packed_get;
        Alcotest.test_case "iteri order" `Quick test_packed_iteri_order;
        QCheck_alcotest.to_alcotest prop_packed_roundtrip ] );
    ( "trace-stats",
      [ Alcotest.test_case "per-object info" `Quick test_stats_objects;
        Alcotest.test_case "per-site info" `Quick test_stats_sites;
        Alcotest.test_case "hot selection" `Quick test_stats_hot;
        Alcotest.test_case "min accesses filter" `Quick test_stats_hot_min_accesses;
        Alcotest.test_case "max live" `Quick test_stats_max_live;
        Alcotest.test_case "access share" `Quick test_stats_share;
        Alcotest.test_case "lifetimes overlap" `Quick test_stats_lifetimes;
        Alcotest.test_case "max live per site" `Quick test_stats_max_live_site;
        Alcotest.test_case "duplicate free" `Quick test_stats_duplicate_free;
        Alcotest.test_case "reused object id" `Quick test_stats_reused_id ] ) ]
