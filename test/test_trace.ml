(* Tests for Prefix_trace: Event, Trace, Trace_stats, Serialize. *)

open Prefix_trace

let al thread obj site size : Event.t = Alloc { obj; site; ctx = site; size; thread }
let acc ?(write = false) ?(thread = 0) obj offset : Event.t =
  Access { obj; offset; write; thread }
let fr ?(thread = 0) obj : Event.t = Free { obj; thread }
let re ?(thread = 0) obj new_size : Event.t = Realloc { obj; new_size; thread }
let cp ?(thread = 0) instrs : Event.t = Compute { instrs; thread }

let valid_trace () =
  Trace.of_list
    [ al 0 1 10 64; acc 1 0; acc 1 48; cp 100; al 0 2 11 32; acc 2 16; re 2 64; acc 2 48;
      fr 1; fr 2 ]

(* ---- Trace buffer ---- *)

let test_add_get () =
  let t = Trace.create ~capacity:2 () in
  for i = 1 to 100 do
    Trace.add t (cp i)
  done;
  Alcotest.(check int) "length" 100 (Trace.length t);
  (match Trace.get t 41 with
  | Compute { instrs; _ } -> Alcotest.(check int) "get" 42 instrs
  | _ -> Alcotest.fail "wrong event");
  Alcotest.check_raises "oob" (Invalid_argument "Trace.get: index out of bounds") (fun () ->
      ignore (Trace.get t 100))

let test_roundtrip_list () =
  let t = valid_trace () in
  Alcotest.(check int) "of_list/to_list" (Trace.length t)
    (List.length (Trace.to_list t))

let test_append_filter () =
  let t = valid_trace () in
  let doubled = Trace.append t t in
  Alcotest.(check int) "append" (2 * Trace.length t) (Trace.length doubled);
  let only_access = Trace.filter Event.is_heap_access t in
  Alcotest.(check int) "filter" (Trace.num_accesses t) (Trace.length only_access)

let test_counts () =
  let t = valid_trace () in
  Alcotest.(check int) "objects" 2 (Trace.num_objects t);
  Alcotest.(check int) "accesses" 4 (Trace.num_accesses t);
  Alcotest.(check int) "instructions" 104 (Trace.total_instructions t)

(* ---- Validation ---- *)

let violations es = List.length (Trace.validate (Trace.of_list es))

let test_validate_ok () =
  Alcotest.(check int) "no violations" 0 (violations (Trace.to_list (valid_trace ())))

let test_validate_use_before_alloc () =
  Alcotest.(check int) "catches" 1 (violations [ acc 5 0 ])

let test_validate_double_alloc () =
  Alcotest.(check int) "catches" 1 (violations [ al 0 1 1 32; al 0 1 2 32 ])

let test_validate_double_free () =
  Alcotest.(check int) "catches" 1 (violations [ al 0 1 1 32; fr 1; fr 1 ])

let test_validate_use_after_free () =
  Alcotest.(check int) "catches" 1 (violations [ al 0 1 1 32; fr 1; acc 1 0 ])

let test_validate_oob_offset () =
  Alcotest.(check int) "catches" 1 (violations [ al 0 1 1 32; acc 1 32 ]);
  Alcotest.(check int) "boundary ok" 0 (violations [ al 0 1 1 32; acc 1 31 ])

let test_validate_realloc_bounds () =
  (* growing legitimizes larger offsets; shrinking invalidates them *)
  Alcotest.(check int) "grow ok" 0 (violations [ al 0 1 1 32; re 1 64; acc 1 48 ]);
  Alcotest.(check int) "shrink oob" 1 (violations [ al 0 1 1 64; re 1 32; acc 1 48 ])

(* ---- Serialize ---- *)

let test_serialize_roundtrip () =
  let t = valid_trace () in
  match Serialize.of_string (Serialize.to_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
    Alcotest.(check int) "length" (Trace.length t) (Trace.length t');
    List.iter2
      (fun a b ->
        Alcotest.(check string) "event" (Event.to_string a) (Event.to_string b))
      (Trace.to_list t) (Trace.to_list t')

let test_serialize_comments () =
  match Serialize.of_string "# comment\n\nC 5 0\n" with
  | Ok t -> Alcotest.(check int) "one event" 1 (Trace.length t)
  | Error e -> Alcotest.fail e

let test_serialize_malformed () =
  (match Serialize.of_string "X 1 2\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad tag");
  match Serialize.of_string "A 1 x 3 4 5\n" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted bad int"

let event_gen =
  QCheck.Gen.(
    oneof
      [ map2 (fun o s -> al 0 o s 32) (int_range 1 50) (int_range 1 9);
        map (fun i -> cp (i + 1)) (int_range 0 1000) ])

let prop_serialize_roundtrip =
  QCheck.Test.make ~name:"serialize roundtrips arbitrary events" ~count:200
    (QCheck.make QCheck.Gen.(list_size (int_range 0 50) event_gen))
    (fun es ->
      (* Allocations may repeat ids; serialization does not care. *)
      let t = Trace.of_list es in
      match Serialize.of_string (Serialize.to_string t) with
      | Ok t' -> Trace.to_list t' = es
      | Error _ -> false)

(* ---- Trace_stats ---- *)

let stats_trace () =
  Trace.of_list
    [ al 0 1 10 64; al 0 2 10 32; al 0 3 11 32;
      acc 1 0; acc 1 16; acc 1 32; acc 1 48; acc 2 0; acc 3 0; acc 3 16; acc 3 0;
      acc 3 16; fr 2; al 0 4 10 128; acc 4 0; fr 1; fr 3; fr 4 ]

let test_stats_objects () =
  let s = Trace_stats.analyze (stats_trace ()) in
  let o1 = Trace_stats.obj_info s 1 in
  Alcotest.(check int) "accesses" 4 o1.accesses;
  Alcotest.(check int) "site" 10 o1.site;
  Alcotest.(check int) "instance" 1 o1.instance;
  let o4 = Trace_stats.obj_info s 4 in
  Alcotest.(check int) "instance of third site-10 alloc" 3 o4.instance;
  Alcotest.(check bool) "freed" true (o1.free_index <> None)

let test_stats_sites () =
  let s = Trace_stats.analyze (stats_trace ()) in
  let site10 = Trace_stats.site_info s 10 in
  Alcotest.(check int) "alloc count" 3 site10.alloc_count;
  Alcotest.(check (list int)) "site objects in order" [ 1; 2; 4 ] site10.site_objects;
  Alcotest.(check int) "site accesses" 6 site10.site_accesses

let test_stats_hot () =
  let s = Trace_stats.analyze (stats_trace ()) in
  let hot = Trace_stats.hot_objects ~coverage:0.9 ~min_accesses:4 s in
  let ids = List.map (fun (o : Trace_stats.obj_info) -> o.obj) hot in
  Alcotest.(check (list int)) "objects 1 and 3 are hot (4 accesses each)" [ 1; 3 ] ids

let test_stats_hot_min_accesses () =
  let s = Trace_stats.analyze (stats_trace ()) in
  let hot = Trace_stats.hot_objects ~coverage:1.0 ~min_accesses:1 s in
  Alcotest.(check int) "full coverage takes all accessed objects" 4 (List.length hot)

let test_stats_max_live () =
  let s = Trace_stats.analyze (stats_trace ()) in
  Alcotest.(check int) "max simultaneous" 3 (Trace_stats.max_live_objects s)

let test_stats_share () =
  let s = Trace_stats.analyze (stats_trace ()) in
  Alcotest.(check (Alcotest.float 1e-9)) "share of obj1" (4. /. 10.)
    (Trace_stats.heap_access_share s [ 1 ]);
  Alcotest.(check (Alcotest.float 1e-9)) "duplicates not double-counted" (4. /. 10.)
    (Trace_stats.heap_access_share s [ 1; 1 ])

let test_stats_lifetimes () =
  let s = Trace_stats.analyze (stats_trace ()) in
  Alcotest.(check bool) "1 and 2 overlap" true (Trace_stats.lifetimes_overlap s 1 2);
  Alcotest.(check bool) "2 and 4 do not" false (Trace_stats.lifetimes_overlap s 2 4)

let test_stats_max_live_site () =
  let s = Trace_stats.analyze (stats_trace ()) in
  Alcotest.(check int) "site 10 peak" 2 (Trace_stats.max_live_objects_of_site s 10)

let suite =
  [ ( "trace",
      [ Alcotest.test_case "add/get" `Quick test_add_get;
        Alcotest.test_case "of_list/to_list" `Quick test_roundtrip_list;
        Alcotest.test_case "append/filter" `Quick test_append_filter;
        Alcotest.test_case "counts" `Quick test_counts;
        Alcotest.test_case "validate ok" `Quick test_validate_ok;
        Alcotest.test_case "use before alloc" `Quick test_validate_use_before_alloc;
        Alcotest.test_case "double alloc" `Quick test_validate_double_alloc;
        Alcotest.test_case "double free" `Quick test_validate_double_free;
        Alcotest.test_case "use after free" `Quick test_validate_use_after_free;
        Alcotest.test_case "offset bounds" `Quick test_validate_oob_offset;
        Alcotest.test_case "realloc bounds" `Quick test_validate_realloc_bounds;
        Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
        Alcotest.test_case "serialize comments" `Quick test_serialize_comments;
        Alcotest.test_case "serialize malformed" `Quick test_serialize_malformed;
        QCheck_alcotest.to_alcotest prop_serialize_roundtrip ] );
    ( "trace-stats",
      [ Alcotest.test_case "per-object info" `Quick test_stats_objects;
        Alcotest.test_case "per-site info" `Quick test_stats_sites;
        Alcotest.test_case "hot selection" `Quick test_stats_hot;
        Alcotest.test_case "min accesses filter" `Quick test_stats_hot_min_accesses;
        Alcotest.test_case "max live" `Quick test_stats_max_live;
        Alcotest.test_case "access share" `Quick test_stats_share;
        Alcotest.test_case "lifetimes overlap" `Quick test_stats_lifetimes;
        Alcotest.test_case "max live per site" `Quick test_stats_max_live_site ] ) ]
