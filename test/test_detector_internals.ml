(* Deeper tests of the detection machinery: n-gram floors, stream caps,
   and the instrumentation size model's pattern-dependent table costs. *)

module D = Prefix_hds.Detector
module Hds = Prefix_hds.Hds
module B = Prefix_workloads.Builder
module Instrument = Prefix_core.Instrument
module Context = Prefix_core.Context
module Plan = Prefix_core.Plan

(* A fixed chain consulted from an otherwise random scan — the shape the
   n-gram miner exists for (no autocorrelation period). *)
let chain_in_noise ~chain_visits ~noise () =
  let b = B.create ~seed:13 () in
  let chain = List.init 3 (fun _ -> B.alloc b ~site:1 32) in
  let pool = Array.init 64 (fun _ -> B.alloc b ~site:2 32) in
  let rng = Prefix_util.Rng.create 5 in
  for _ = 1 to noise do
    (* random pool accesses, frequent enough to make the pool hot *)
    for _ = 1 to 8 do
      B.access b (Prefix_util.Rng.choose rng pool) 0
    done;
    ignore chain_visits
  done;
  for _ = 1 to chain_visits do
    for _ = 1 to 6 do
      B.access b (Prefix_util.Rng.choose rng pool) 0
    done;
    List.iter (fun o -> B.access b o 0) chain
  done;
  (B.trace b, chain)

let test_ngram_finds_chain_in_noise () =
  let trace, chain = chain_in_noise ~chain_visits:40 ~noise:40 () in
  let ohds = D.detect trace in
  Alcotest.(check bool) "chain found" true
    (List.exists
       (fun h -> List.for_all (fun o -> Hds.mem o h) chain)
       ohds)

let test_ngram_floor_suppresses_rare () =
  (* Four visits sit below the default floor of six. *)
  let trace, chain = chain_in_noise ~chain_visits:4 ~noise:60 () in
  let ohds = D.detect trace in
  Alcotest.(check bool) "rare chain suppressed" true
    (not
       (List.exists
          (fun h -> List.for_all (fun o -> Hds.mem o h) chain)
          ohds))

let test_stream_length_cap () =
  (* A long periodic traversal: every detected stream respects the cap. *)
  let b = B.create ~seed:14 () in
  let objs = List.init 200 (fun _ -> B.alloc b ~site:1 32) in
  for _ = 1 to 30 do
    List.iter (fun o -> B.access b o 0) objs
  done;
  let config = { D.default_config with max_stream_len = 8 } in
  let ohds = D.detect ~config (B.trace b) in
  Alcotest.(check bool) "found something" true (ohds <> []);
  List.iter
    (fun h -> Alcotest.(check bool) "capped" true (Hds.cardinal h <= 8))
    ohds

let test_max_streams_cap () =
  let b = B.create ~seed:15 () in
  (* many independent pairs, all recurring *)
  let pairs =
    List.init 30 (fun _ -> (B.alloc b ~site:1 32, B.alloc b ~site:1 32))
  in
  for _ = 1 to 20 do
    List.iter
      (fun (x, y) ->
        B.access b x 0;
        B.access b y 0)
      pairs
  done;
  let config = { D.default_config with max_streams = 5 } in
  let ohds = D.detect ~config (B.trace b) in
  Alcotest.(check bool) "at most 5" true (List.length ohds <= 5)

let test_ohds_sorted_by_refs () =
  let trace, _ = chain_in_noise ~chain_visits:40 ~noise:40 () in
  let ohds = D.detect trace in
  let refs = List.map Hds.refs ohds in
  Alcotest.(check (list int)) "descending" (List.sort (fun a b -> compare b a) refs) refs

(* ---- Instrument: pattern-dependent table bytes ---- *)

let plan_with_counter cp =
  { Plan.variant = Plan.Hot;
    slots = List.init 100 (fun i -> { Prefix_core.Offsets.offset = i * 64; size = 64 });
    region_bytes = 6400;
    site_counter = [ (1, 0) ];
    counters = [ cp ];
    placed_objects = [];
    profile =
      { hot_count = 0; hds_count = 0; heap_access_share = 0.; ohds_count = 0; rhds_count = 0 } }

let added cp =
  Instrument.added_bytes ~plan:(plan_with_counter cp) ~free_sites:0 ~realloc_sites:0 ()

let test_instrument_tables_fixed_only () =
  let fixed =
    { Plan.counter = 0; counter_sites = [ 1 ]; pattern = Context.Fixed (List.init 100 (fun i -> i + 1));
      placements = List.init 100 (fun i -> (i + 1, i)); recycle = None; required_ctx = None }
  in
  let all =
    { fixed with pattern = Context.All { upto = Some 100 } }
  in
  (* An arithmetic pattern with the same placement count embeds no big
     table: offsets are computed, not looked up. *)
  Alcotest.(check bool) "fixed pattern pays for its table" true (added fixed > added all + 500)

let test_instrument_recycle_flat () =
  let recycled =
    { Plan.counter = 0; counter_sites = [ 1 ]; pattern = Context.All { upto = None };
      placements = []; recycle = Some { first_slot = 0; n_slots = 100; slot_bytes = 64; assignment = [] };
      required_ctx = None }
  in
  let small =
    { recycled with recycle = Some { first_slot = 0; n_slots = 2; slot_bytes = 64; assignment = [] } }
  in
  Alcotest.(check int) "recycling cost independent of N" (added small) (added recycled)

let suite =
  [ ( "detector-internals",
      [ Alcotest.test_case "ngram finds chain in noise" `Quick test_ngram_finds_chain_in_noise;
        Alcotest.test_case "ngram floor suppresses rare" `Quick
          test_ngram_floor_suppresses_rare;
        Alcotest.test_case "stream length cap" `Quick test_stream_length_cap;
        Alcotest.test_case "max streams cap" `Quick test_max_streams_cap;
        Alcotest.test_case "ohds sorted" `Quick test_ohds_sorted_by_refs ] );
    ( "instrument",
      [ Alcotest.test_case "tables for fixed patterns only" `Quick
          test_instrument_tables_fixed_only;
        Alcotest.test_case "recycle cost flat" `Quick test_instrument_recycle_flat ] ) ]
