(* Tests for Prefix_runtime: Region, the four policies (Figures 4-7
   semantics), and the Executor. *)

module Allocator = Prefix_heap.Allocator
module Arena = Prefix_heap.Arena
module Region = Prefix_runtime.Region
module Policy = Prefix_runtime.Policy
module Hds_policy = Prefix_runtime.Hds_policy
module Halo_policy = Prefix_runtime.Halo_policy
module Prefix_policy = Prefix_runtime.Prefix_policy
module Executor = Prefix_runtime.Executor
module Costs = Prefix_runtime.Costs
module Plan = Prefix_core.Plan
module Context = Prefix_core.Context
module Pipeline = Prefix_core.Pipeline
module B = Prefix_workloads.Builder
module Trace = Prefix_trace.Trace

let costs = Costs.default

(* ---- Region ---- *)

let test_region_bump () =
  let heap = Allocator.create () in
  let r = Region.create heap ~chunk_bytes:256 in
  let a = Region.alloc r 48 in
  let b = Region.alloc r 48 in
  Alcotest.(check int) "bump allocation is contiguous" (a + 48) b;
  Alcotest.(check bool) "contains" true (Region.contains r a);
  Alcotest.(check int) "objects" 2 (Region.allocated_objects r)

let test_region_grows () =
  let heap = Allocator.create () in
  let r = Region.create heap ~chunk_bytes:128 in
  ignore (Region.alloc r 100);
  ignore (Region.alloc r 100); (* second chunk *)
  Alcotest.(check int) "two chunks" 2 (List.length (Region.chunks r))

let test_region_reuse () =
  let heap = Allocator.create () in
  let r = Region.create heap ~chunk_bytes:512 in
  let a = Region.alloc r 64 in
  Region.release r a 64;
  let b = Region.alloc r 64 in
  Alcotest.(check int) "freed block reused" a b;
  (* Different size class: not reused. *)
  let c = Region.alloc r 32 in
  Region.release r c 32;
  let d = Region.alloc r 64 in
  Alcotest.(check bool) "size classes separate" true (d <> c)

let test_region_exhaustion () =
  let heap = Allocator.create () in
  let r = Region.create ~max_bytes:256 heap ~chunk_bytes:128 in
  ignore (Region.alloc r 100);
  ignore (Region.alloc r 100);
  (* cap reached: try_alloc degrades to None, alloc raises *)
  Alcotest.(check bool) "try_alloc exhausted" true (Region.try_alloc r 100 = None);
  (match Region.alloc r 100 with
  | _ -> Alcotest.fail "alloc past the cap succeeded"
  | exception Invalid_argument _ -> ());
  (* free-list hits still work at the cap *)
  let a = Region.alloc r 16 in
  Region.release r a 16;
  Alcotest.(check bool) "free-list reuse at cap" true (Region.try_alloc r 16 = Some a);
  Alcotest.(check bool) "cap counts chunk bytes" true (Region.chunk_bytes_total r <= 256)

let test_arena_double_occupy_release () =
  let heap = Allocator.create () in
  let arena =
    Arena.create heap
      [ { Arena.slot_offset = 0; slot_size = 64 };
        { Arena.slot_offset = 64; slot_size = 64 } ]
  in
  let slot = 1 in
  Arena.occupy arena slot;
  (match Arena.occupy arena slot with
  | () -> Alcotest.fail "double occupy succeeded"
  | exception Invalid_argument _ -> ());
  Arena.release arena slot;
  (match Arena.release arena slot with
  | () -> Alcotest.fail "double release succeeded"
  | exception Invalid_argument _ -> ());
  Alcotest.(check bool) "slot free again" true (Arena.is_free arena slot)

let test_region_dispose () =
  let heap = Allocator.create () in
  let before = Allocator.live_bytes heap in
  let r = Region.create heap ~chunk_bytes:256 in
  ignore (Region.alloc r 64);
  Region.dispose r;
  Alcotest.(check int) "chunks returned" before (Allocator.live_bytes heap)

let test_region_byte_accounting () =
  (* Regression: [release] decremented [allocated_objects] but never
     [allocated_bytes], and a free-list hit incremented objects but not
     bytes — the two counters drifted apart on any alloc/release cycle. *)
  let heap = Allocator.create () in
  let r = Region.create heap ~chunk_bytes:512 in
  let a = Region.alloc r 64 in
  Alcotest.(check int) "bytes after alloc" 64 (Region.allocated_bytes r);
  Region.release r a 64;
  Alcotest.(check int) "bytes return on release" 0 (Region.allocated_bytes r);
  Alcotest.(check int) "objects return on release" 0 (Region.allocated_objects r);
  (* A free-list hit must count exactly like a bump allocation. *)
  let b = Region.alloc r 64 in
  Alcotest.(check int) "free-list hit reused" a b;
  Alcotest.(check int) "bytes after free-list hit" 64 (Region.allocated_bytes r);
  Alcotest.(check int) "objects after free-list hit" 1 (Region.allocated_objects r);
  ignore (Region.alloc r 32);
  Alcotest.(check int) "bytes accumulate" 96 (Region.allocated_bytes r);
  Alcotest.(check int) "peak tracks the high-water mark" 96 (Region.peak_bytes r);
  Region.release r b 64;
  Alcotest.(check int) "release is symmetric" 32 (Region.allocated_bytes r);
  Alcotest.(check int) "peak survives releases" 96 (Region.peak_bytes r)

let test_region_release_charged_size () =
  (* Regression: [release] keyed the free list and the byte decrement
     off the caller-passed size.  After an in-region realloc-shrink the
     policy frees with the smaller size, so [allocated_bytes] drifted
     up by the difference and the block landed in the wrong size
     class.  The charge recorded at alloc time must win. *)
  let heap = Allocator.create () in
  let r = Region.create heap ~chunk_bytes:512 in
  let a = Region.alloc r 100 in
  Alcotest.(check int) "charged rounded size" 112 (Region.allocated_bytes r);
  (* the policy shrank the object to 40 bytes, then freed it *)
  Region.release r a 40;
  Alcotest.(check int) "release credits the charge, not the hint" 0
    (Region.allocated_bytes r);
  Alcotest.(check int) "objects zero" 0 (Region.allocated_objects r);
  (* the block went back to its true size class *)
  let b = Region.alloc r 100 in
  Alcotest.(check int) "reused from the charged class" a b;
  (* double release is a no-op, not a double-credit *)
  Region.release r b 100;
  Region.release r b 100;
  Alcotest.(check int) "double release no-op (objects)" 0 (Region.allocated_objects r);
  Alcotest.(check int) "double release no-op (bytes)" 0 (Region.allocated_bytes r);
  (* the address is on the free list exactly once *)
  let c = Region.alloc r 100 in
  let d = Region.alloc r 100 in
  Alcotest.(check int) "first alloc reuses" b c;
  Alcotest.(check bool) "second alloc bumps fresh" true (d <> c)

let prop_region_accounting =
  (* Random alloc/shrinking-release scripts against a live-set model:
     [allocated_bytes] is always the sum of live rounded sizes, and
     [peak_bytes] is a monotone high-water mark of it. *)
  QCheck.Test.make ~count:100 ~name:"region bytes = sum of live rounded sizes"
    QCheck.(small_list (pair bool (int_range 1 300)))
    (fun script ->
      let heap = Allocator.create () in
      let r = Region.create heap ~chunk_bytes:1024 in
      let round16 n = (n + 15) / 16 * 16 in
      let live = ref [] (* (addr, rounded size) newest first *) in
      let peak_seen = ref 0 in
      List.iter
        (fun (is_alloc, size) ->
          (if is_alloc || !live = [] then begin
             let addr = Region.alloc r size in
             live := (addr, round16 size) :: !live
           end
           else begin
             match !live with
             | (addr, sz) :: rest ->
               live := rest;
               (* free with a deliberately smaller size hint *)
               Region.release r addr (max 1 (sz / 2))
             | [] -> ()
           end);
          let expect = List.fold_left (fun a (_, s) -> a + s) 0 !live in
          if Region.allocated_bytes r <> expect then
            Alcotest.failf "bytes %d <> live sum %d" (Region.allocated_bytes r) expect;
          if Region.allocated_objects r <> List.length !live then
            Alcotest.fail "object count diverged";
          if Region.peak_bytes r < !peak_seen then Alcotest.fail "peak decreased";
          peak_seen := Region.peak_bytes r;
          if Region.peak_bytes r < Region.allocated_bytes r then
            Alcotest.fail "peak below live bytes")
        script;
      true)

(* ---- Baseline policy ---- *)

let test_baseline_costs () =
  let heap = Allocator.create () in
  let p = Policy.baseline costs heap in
  let addr = p.alloc ~obj:1 ~site:1 ~ctx:1 ~size:64 in
  p.dealloc ~obj:1 ~addr ~size:64;
  Alcotest.(check int) "malloc+free instructions"
    (costs.malloc_instrs + costs.free_instrs)
    p.stats.mgmt_instrs;
  Alcotest.(check int) "no captures" 0 p.stats.region_objects

(* ---- HDS policy ---- *)

let test_hds_policy_redirects_whole_site () =
  let heap = Allocator.create () in
  let cls = { Policy.is_hot = (fun o -> o = 1); is_hds = (fun o -> o = 1) } in
  let p = Hds_policy.policy costs heap { interesting_sites = [ 7 ] } cls in
  let a1 = p.alloc ~obj:1 ~site:7 ~ctx:7 ~size:32 in
  let a2 = p.alloc ~obj:2 ~site:7 ~ctx:7 ~size:32 in
  (* hot or not *)
  let a3 = p.alloc ~obj:3 ~site:8 ~ctx:8 ~size:32 in
  Alcotest.(check int) "site 7 objects adjacent in region" (a1 + 32) a2;
  Alcotest.(check int) "pollution counted" 2 p.stats.region_objects;
  Alcotest.(check int) "hot counted" 1 p.stats.region_hot_objects;
  p.dealloc ~obj:1 ~addr:a1 ~size:32;
  p.dealloc ~obj:3 ~addr:a3 ~size:32;
  p.finish ()

(* ---- HALO policy ---- *)

let test_halo_policy_signature_check () =
  let heap = Allocator.create () in
  let plan = { Prefix_halo.Halo.groups = [ [ 100 ]; [ 200; 201 ] ]; hot_ctxs = [ 100; 200; 201 ] } in
  let p = Halo_policy.policy costs heap plan Policy.no_classification in
  let a1 = p.alloc ~obj:1 ~site:1 ~ctx:100 ~size:32 in
  let a2 = p.alloc ~obj:2 ~site:2 ~ctx:100 ~size:32 in
  (* same signature, same pool *)
  let a3 = p.alloc ~obj:3 ~site:3 ~ctx:999 ~size:32 in
  (* unknown signature: heap *)
  Alcotest.(check int) "pool is bump-ordered" (a1 + 32) a2;
  Alcotest.(check int) "two captures" 2 p.stats.region_objects;
  p.dealloc ~obj:2 ~addr:a2 ~size:32;
  let a4 = p.alloc ~obj:4 ~site:2 ~ctx:100 ~size:32 in
  Alcotest.(check int) "pool free list reuses" a2 a4;
  p.dealloc ~obj:3 ~addr:a3 ~size:32;
  p.finish ()

(* ---- PreFix policy (Figures 4-7) ---- *)

let manual_plan ~pattern ~placements ~slots ~recycle =
  { Plan.variant = Plan.Hot;
    slots;
    region_bytes = List.fold_left (fun a (s : Prefix_core.Offsets.slot) -> a + s.size) 0 slots;
    site_counter = [ (1, 0) ];
    counters =
      [ { Plan.counter = 0; counter_sites = [ 1 ]; pattern; placements; recycle;
          required_ctx = None } ];
    placed_objects = [];
    profile =
      { hot_count = 0; hds_count = 0; heap_access_share = 0.; ohds_count = 0; rhds_count = 0 } }

let slot offset size : Prefix_core.Offsets.slot = { offset; size }

let test_prefix_places_matching_instance () =
  let heap = Allocator.create () in
  let plan =
    manual_plan
      ~pattern:(Context.Fixed [ 2 ])
      ~placements:[ (2, 0) ]
      ~slots:[ slot 0 64 ] ~recycle:None
  in
  let p = Prefix_policy.policy costs heap plan Policy.no_classification in
  let arena = Option.get (Prefix_policy.arena_of p) in
  let a1 = p.alloc ~obj:1 ~site:1 ~ctx:1 ~size:32 in
  (* instance 1: cold *)
  let a2 = p.alloc ~obj:2 ~site:1 ~ctx:1 ~size:32 in
  (* instance 2: hot *)
  let a3 = p.alloc ~obj:3 ~site:1 ~ctx:1 ~size:32 in
  Alcotest.(check bool) "instance 1 on heap" false (Arena.contains arena a1);
  Alcotest.(check int) "instance 2 at its predetermined spot" (Arena.slot_addr arena 0) a2;
  Alcotest.(check bool) "instance 3 on heap" false (Arena.contains arena a3);
  Alcotest.(check int) "one call avoided" 1 p.stats.calls_avoided;
  p.finish ()

let test_prefix_size_check () =
  (* Figure 4: "ObjectSize <= PreallocSize" — oversize falls back. *)
  let heap = Allocator.create () in
  let plan =
    manual_plan ~pattern:(Context.Fixed [ 1 ]) ~placements:[ (1, 0) ]
      ~slots:[ slot 0 32 ] ~recycle:None
  in
  let p = Prefix_policy.policy costs heap plan Policy.no_classification in
  let arena = Option.get (Prefix_policy.arena_of p) in
  let a = p.alloc ~obj:1 ~site:1 ~ctx:1 ~size:100 in
  Alcotest.(check bool) "oversize object on heap" false (Arena.contains arena a);
  p.finish ()

let test_prefix_free_interception () =
  (* Figure 5: freeing a preallocated object only marks the slot. *)
  let heap = Allocator.create () in
  let plan =
    manual_plan ~pattern:(Context.Fixed [ 1 ]) ~placements:[ (1, 0) ]
      ~slots:[ slot 0 64 ] ~recycle:None
  in
  let p = Prefix_policy.policy costs heap plan Policy.no_classification in
  let arena = Option.get (Prefix_policy.arena_of p) in
  let a = p.alloc ~obj:1 ~site:1 ~ctx:1 ~size:64 in
  let frees_before = Allocator.free_calls heap in
  p.dealloc ~obj:1 ~addr:a ~size:64;
  Alcotest.(check int) "no heap free issued" frees_before (Allocator.free_calls heap);
  Alcotest.(check bool) "slot marked free" true (Arena.is_free arena 0);
  p.finish ()

let test_prefix_realloc_in_place_and_move () =
  (* Figure 6: fits -> same address; grows past the slot -> move out. *)
  let heap = Allocator.create () in
  let plan =
    manual_plan ~pattern:(Context.Fixed [ 1 ]) ~placements:[ (1, 0) ]
      ~slots:[ slot 0 64 ] ~recycle:None
  in
  let p = Prefix_policy.policy costs heap plan Policy.no_classification in
  let arena = Option.get (Prefix_policy.arena_of p) in
  let a = p.alloc ~obj:1 ~site:1 ~ctx:1 ~size:32 in
  Alcotest.(check int) "grow within slot stays" a (p.realloc ~obj:1 ~addr:a ~old_size:32 ~new_size:64);
  let b = p.realloc ~obj:1 ~addr:a ~old_size:64 ~new_size:128 in
  Alcotest.(check bool) "moved out" false (Arena.contains arena b);
  Alcotest.(check bool) "slot released" true (Arena.is_free arena 0);
  p.finish ()

let test_prefix_recycling_modulo () =
  (* Figure 7: ids map onto the block modulo N; occupied slots fall back. *)
  let heap = Allocator.create () in
  let plan =
    manual_plan
      ~pattern:(Context.All { upto = None })
      ~placements:[]
      ~slots:[ slot 0 64; slot 64 64 ]
      ~recycle:(Some { Plan.first_slot = 0; n_slots = 2; slot_bytes = 64; assignment = [] })
  in
  let p = Prefix_policy.policy costs heap plan Policy.no_classification in
  let arena = Option.get (Prefix_policy.arena_of p) in
  let a1 = p.alloc ~obj:1 ~site:1 ~ctx:1 ~size:48 in
  let a2 = p.alloc ~obj:2 ~site:1 ~ctx:1 ~size:48 in
  Alcotest.(check int) "slot 0" (Arena.slot_addr arena 0) a1;
  Alcotest.(check int) "slot 1" (Arena.slot_addr arena 1) a2;
  (* Both slots live: the third allocation must fall back to the heap. *)
  let a3 = p.alloc ~obj:3 ~site:1 ~ctx:1 ~size:48 in
  Alcotest.(check bool) "overflow to heap" false (Arena.contains arena a3);
  (* Free slot 0 (id 4 maps to slot 1, id 5 maps to slot 0 again). *)
  p.dealloc ~obj:1 ~addr:a1 ~size:48;
  let a4 = p.alloc ~obj:4 ~site:1 ~ctx:1 ~size:48 in
  Alcotest.(check bool) "id 4 wants busy slot 1 -> heap" false (Arena.contains arena a4);
  let a5 = p.alloc ~obj:5 ~site:1 ~ctx:1 ~size:48 in
  Alcotest.(check int) "id 5 recycles slot 0" (Arena.slot_addr arena 0) a5;
  p.dealloc ~obj:3 ~addr:a3 ~size:48;
  p.dealloc ~obj:4 ~addr:a4 ~size:48;
  p.finish ()

let test_prefix_uninstrumented_site () =
  let heap = Allocator.create () in
  let plan =
    manual_plan ~pattern:(Context.Fixed [ 1 ]) ~placements:[ (1, 0) ]
      ~slots:[ slot 0 64 ] ~recycle:None
  in
  let p = Prefix_policy.policy costs heap plan Policy.no_classification in
  let arena = Option.get (Prefix_policy.arena_of p) in
  let a = p.alloc ~obj:1 ~site:99 ~ctx:99 ~size:32 in
  Alcotest.(check bool) "other sites untouched" false (Arena.contains arena a);
  p.finish ()

(* ---- Executor ---- *)

let toy_trace () =
  let b = B.create ~seed:1 () in
  let o = B.alloc b ~site:1 64 in
  for _ = 1 to 10 do
    B.access b o 0;
    B.compute b 20
  done;
  B.free b o;
  B.trace b

let test_executor_baseline_metrics () =
  let outcome = Executor.run_baseline (toy_trace ()) in
  let m = outcome.metrics in
  Alcotest.(check int) "refs" 10 m.mem_refs;
  Alcotest.(check int) "one malloc" 1 m.malloc_calls;
  Alcotest.(check int) "one free" 1 m.free_calls;
  Alcotest.(check int) "instructions include program + management"
    (10 + 200 + costs.malloc_instrs + costs.free_instrs)
    m.instructions;
  Alcotest.(check bool) "cycles positive" true (m.cycles.total_cycles > 0.);
  Alcotest.(check int) "threads" 1 m.threads

let test_executor_rejects_invalid () =
  let bad =
    Trace.of_list [ Prefix_trace.Event.Access { obj = 5; offset = 0; write = false; thread = 0 } ]
  in
  Alcotest.check_raises "unknown object"
    (Invalid_argument "Executor: access to unknown object 5") (fun () ->
      ignore (Executor.run_baseline bad))

let test_executor_multithreaded () =
  let b = B.create ~seed:2 () in
  let o = B.alloc b ~site:1 64 in
  for t = 0 to 3 do
    B.set_thread b t;
    for _ = 1 to 25 do
      B.access b o 0
    done
  done;
  B.set_thread b 0;
  B.free b o;
  let outcome = Executor.run_baseline (B.trace b) in
  Alcotest.(check int) "four threads seen" 4 outcome.metrics.threads;
  Alcotest.(check int) "all refs counted" 100 outcome.metrics.mem_refs

let test_executor_prefix_end_to_end () =
  (* An optimized run of a hot-trio trace beats the baseline. *)
  let b = B.create ~seed:3 () in
  let hot =
    List.init 8 (fun _ ->
        let o = B.alloc b ~site:1 32 in
        ignore (Prefix_workloads.Patterns.cold_block b ~site:9 ~size:512 2);
        o)
  in
  for _ = 1 to 300 do
    List.iter (fun o -> B.access b o 0) hot
  done;
  let trace = B.trace b in
  let plan = Pipeline.plan ~variant:Plan.Hot trace in
  let base = Executor.run_baseline trace in
  let opt =
    Executor.run
      ~policy:(fun heap -> Prefix_policy.policy costs heap plan Policy.no_classification)
      trace
  in
  Alcotest.(check bool) "optimized is faster" true
    (opt.metrics.cycles.total_cycles < base.metrics.cycles.total_cycles);
  Alcotest.(check int) "all hot captured" 8 opt.metrics.region_objects

let test_executor_heatmap () =
  let outcome =
    Executor.run ~heatmap_objs:(fun _ -> true)
      ~policy:(fun heap -> Policy.baseline costs heap)
      (toy_trace ())
  in
  match outcome.heatmap with
  | Some h -> Alcotest.(check int) "samples" 10 (Prefix_cachesim.Heatmap.samples h)
  | None -> Alcotest.fail "expected heatmap"

(* ---- realloc paths of the baselines ---- *)

let test_hds_policy_realloc_paths () =
  let heap = Allocator.create () in
  let p = Hds_policy.policy costs heap { interesting_sites = [ 7 ] } Policy.no_classification in
  let a = p.alloc ~obj:1 ~site:7 ~ctx:7 ~size:64 in
  (* shrink inside the region stays put *)
  Alcotest.(check int) "shrink in region" a (p.realloc ~obj:1 ~addr:a ~old_size:64 ~new_size:32);
  (* growth moves out of the region to the heap *)
  let b = p.realloc ~obj:1 ~addr:a ~old_size:64 ~new_size:256 in
  Alcotest.(check bool) "moved to heap" true (Allocator.is_allocated heap b);
  (* heap-object realloc behaves normally *)
  let h = p.alloc ~obj:2 ~site:9 ~ctx:9 ~size:32 in
  let h' = p.realloc ~obj:2 ~addr:h ~old_size:32 ~new_size:512 in
  Alcotest.(check (option int)) "resized" (Some 512) (Allocator.block_size heap h');
  p.dealloc ~obj:1 ~addr:b ~size:256;
  p.dealloc ~obj:2 ~addr:h' ~size:512;
  p.finish ()

let test_halo_policy_realloc_paths () =
  let heap = Allocator.create () in
  let plan = { Prefix_halo.Halo.groups = [ [ 100 ] ]; hot_ctxs = [ 100 ] } in
  let p = Halo_policy.policy costs heap plan Policy.no_classification in
  let a = p.alloc ~obj:1 ~site:1 ~ctx:100 ~size:64 in
  Alcotest.(check int) "shrink in pool" a (p.realloc ~obj:1 ~addr:a ~old_size:64 ~new_size:48);
  let b = p.realloc ~obj:1 ~addr:a ~old_size:64 ~new_size:1024 in
  Alcotest.(check bool) "outgrown pool object moves to heap" true
    (Allocator.is_allocated heap b);
  p.dealloc ~obj:1 ~addr:b ~size:1024;
  p.finish ()

(* ---- Attribution ---- *)

let test_attribution () =
  let b = B.create ~seed:4 () in
  (* two sites: one pounded over an L1-overflowing working set, one cold *)
  let hot = List.init 300 (fun _ -> B.alloc b ~site:1 64) in
  let cold = B.alloc b ~site:2 64 in
  B.access b cold 0;
  for _ = 1 to 5 do
    List.iter (fun o -> B.access b o 0) hot
  done;
  let outcome = Executor.run ~attribute:true
      ~policy:(fun heap -> Policy.baseline costs heap) (B.trace b) in
  match outcome.attribution with
  | None -> Alcotest.fail "expected attribution"
  | Some a ->
    Alcotest.(check int) "total refs" outcome.metrics.mem_refs
      (Prefix_runtime.Attribution.total_accesses a);
    (match Prefix_runtime.Attribution.top ~n:1 a with
    | [ top ] ->
      Alcotest.(check int) "hot site dominates" 1 top.site;
      Alcotest.(check int) "its accesses" 1500 top.accesses;
      Alcotest.(check bool) "it misses (300 lines > L1)" true (top.l1_misses > 500)
    | _ -> Alcotest.fail "no top site");
    Alcotest.(check bool) "renders" true
      (String.length (Prefix_runtime.Attribution.render a) > 0)

let test_attribution_off_by_default () =
  let b = B.create ~seed:5 () in
  let o = B.alloc b ~site:1 64 in
  B.access b o 0;
  B.free b o;
  let outcome = Executor.run_baseline (B.trace b) in
  Alcotest.(check bool) "absent" true (outcome.attribution = None)

let suite =
  [ ( "region",
      [ Alcotest.test_case "bump" `Quick test_region_bump;
        Alcotest.test_case "grows" `Quick test_region_grows;
        Alcotest.test_case "free-list reuse" `Quick test_region_reuse;
        Alcotest.test_case "exhaustion" `Quick test_region_exhaustion;
        Alcotest.test_case "arena double occupy/release" `Quick
          test_arena_double_occupy_release;
        Alcotest.test_case "dispose" `Quick test_region_dispose;
        Alcotest.test_case "byte accounting" `Quick test_region_byte_accounting;
        Alcotest.test_case "release uses charged size" `Quick
          test_region_release_charged_size;
        QCheck_alcotest.to_alcotest prop_region_accounting ] );
    ( "policies",
      [ Alcotest.test_case "baseline costs" `Quick test_baseline_costs;
        Alcotest.test_case "HDS redirects whole site" `Quick test_hds_policy_redirects_whole_site;
        Alcotest.test_case "HALO signature check" `Quick test_halo_policy_signature_check;
        Alcotest.test_case "HDS realloc paths" `Quick test_hds_policy_realloc_paths;
        Alcotest.test_case "HALO realloc paths" `Quick test_halo_policy_realloc_paths;
        Alcotest.test_case "PreFix places matching instance" `Quick
          test_prefix_places_matching_instance;
        Alcotest.test_case "PreFix size check" `Quick test_prefix_size_check;
        Alcotest.test_case "PreFix free interception" `Quick test_prefix_free_interception;
        Alcotest.test_case "PreFix realloc" `Quick test_prefix_realloc_in_place_and_move;
        Alcotest.test_case "PreFix recycling modulo" `Quick test_prefix_recycling_modulo;
        Alcotest.test_case "PreFix other sites" `Quick test_prefix_uninstrumented_site ] );
    ( "executor",
      [ Alcotest.test_case "baseline metrics" `Quick test_executor_baseline_metrics;
        Alcotest.test_case "rejects invalid" `Quick test_executor_rejects_invalid;
        Alcotest.test_case "multithreaded" `Quick test_executor_multithreaded;
        Alcotest.test_case "prefix end to end" `Quick test_executor_prefix_end_to_end;
        Alcotest.test_case "heatmap" `Quick test_executor_heatmap;
        Alcotest.test_case "attribution" `Quick test_attribution;
        Alcotest.test_case "attribution off by default" `Quick
          test_attribution_off_by_default ] ) ]
