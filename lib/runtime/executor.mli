(** Trace replay: run a workload trace through a policy, feed the
    resulting address stream into the cache hierarchy, and produce the
    run's {!Metrics.t}.

    Multithreaded traces get one private L1 and TLB pair per thread and
    a shared LLC; total cycles are divided by the thread count (a
    perfectly-parallel model, adequate for the {e relative} comparisons
    of Figure 10). *)

type config = {
  hierarchy : Prefix_cachesim.Hierarchy.config;
  cycle_params : Prefix_cachesim.Cycles.params;
  costs : Costs.t;
}

val default_config : config
(** Scaled hierarchy (see {!Prefix_cachesim.Hierarchy.scaled_config}),
    default cycle parameters and costs. *)

type outcome = {
  metrics : Metrics.t;
  heatmap : Prefix_cachesim.Heatmap.t option;
  attribution : Attribution.t option;
      (** per-site miss attribution, when requested *)
}

val run :
  ?config:config ->
  ?heatmap_objs:(int -> bool) ->
  ?attribute:bool ->
  policy:(Prefix_heap.Allocator.t -> Policy.t) ->
  Prefix_trace.Trace.t ->
  outcome
(** [run ~policy trace] creates a fresh simulated heap, instantiates the
    policy on it, and replays every event.  [heatmap_objs] selects the
    objects whose accesses feed the Figure 9 heatmap; [attribute] turns
    on per-site miss attribution (both off by default — they cost
    memory).  Raises [Invalid_argument] on malformed traces (allocation
    of a live id, access to an unknown id, ...). *)

val run_baseline : ?config:config -> Prefix_trace.Trace.t -> outcome
(** Shorthand for running the {!Policy.baseline}. *)
