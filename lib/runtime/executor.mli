(** Trace replay: run a workload trace through a policy, feed the
    resulting address stream into the cache hierarchy, and produce the
    run's {!Metrics.t}.

    Multithreaded traces get one private L1 and TLB pair per thread and
    a shared LLC; total cycles are divided by the thread count (a
    perfectly-parallel model, adequate for the {e relative} comparisons
    of Figure 10). *)

type config = {
  hierarchy : Prefix_cachesim.Hierarchy.config;
  cycle_params : Prefix_cachesim.Cycles.params;
  costs : Costs.t;
}

val default_config : config
(** Scaled hierarchy (see {!Prefix_cachesim.Hierarchy.scaled_config}),
    default cycle parameters and costs. *)

type recovery = {
  double_allocs : int;  (** allocations of an already-live id (treated as implicit free) *)
  unknown_accesses : int;  (** accesses to never-allocated or freed ids (skipped) *)
  unknown_frees : int;  (** stray / double frees (skipped) *)
  unknown_reallocs : int;  (** reallocs of unknown ids (skipped) *)
  invalid_sizes : int;  (** non-positive alloc/realloc sizes (clamped / kept) *)
  policy_failures : int;
      (** policy calls that raised and degraded to a plain heap action *)
}
(** What a lenient replay recovered from.  All-zero in strict mode (the
    first anomaly raises) and on well-formed traces in either mode. *)

val no_recovery : recovery

val recovery_total : recovery -> int

val pp_recovery : Format.formatter -> recovery -> unit

type outcome = {
  metrics : Metrics.t;
  heatmap : Prefix_cachesim.Heatmap.t option;
  attribution : Attribution.t option;
      (** per-site miss attribution, when requested *)
  recovery : recovery;
      (** lenient-mode recovery actions taken during the replay *)
}

val probe_widening : bool ref
(** Enables the widened batched-probe fast path inside access runs
    (default [true]): a streak of same-object, same-thread, same-line
    accesses after a probed head is accounted in one batched MRU touch
    per cache instead of per-event probes.  Outcomes are identical
    either way — this is a perf-only differential knob, used by the
    pipeline benchmark to time the pre-widening replay as its baseline
    leg and by tests to check the equivalence. *)

val run :
  ?config:config ->
  ?mode:Policy.mode ->
  ?heatmap_objs:(int -> bool) ->
  ?attribute:bool ->
  policy:(Prefix_heap.Allocator.t -> Policy.t) ->
  Prefix_trace.Trace.t ->
  outcome
(** [run ~policy trace] creates a fresh simulated heap, instantiates the
    policy on it, and replays every event.  [heatmap_objs] selects the
    objects whose accesses feed the Figure 9 heatmap; [attribute] turns
    on per-site miss attribution (both off by default — they cost
    memory).

    [mode] defaults to [Strict], which raises [Invalid_argument] on
    malformed traces (allocation of a live id, access to an unknown id,
    ...).  [Lenient] never raises on malformed input: every anomaly
    becomes a counted recovery action (reported in the outcome's
    [recovery] field and, when observability is on, the
    [executor.recovered.*] metric counters).

    Equivalent to [run_packed ... (Packed.of_trace trace)] — callers
    that replay the same trace more than once should pack it themselves
    and call {!run_packed} directly. *)

val run_packed :
  ?config:config ->
  ?mode:Policy.mode ->
  ?heatmap_objs:(int -> bool) ->
  ?attribute:bool ->
  policy:(Prefix_heap.Allocator.t -> Policy.t) ->
  Prefix_trace.Packed.t ->
  outcome
(** The replay fast path: identical semantics, metrics, recovery
    counters and observability behavior to {!run}, but driven off the
    struct-of-arrays encoding with an allocation-free dispatch loop, a
    dense object table in place of the per-event [live] Hashtbl, and a
    memoized last-thread cache slot.  A packed trace is read-only here
    and can be shared across policies and worker domains. *)

val run_stream :
  ?config:config ->
  ?mode:Policy.mode ->
  ?heatmap_objs:(int -> bool) ->
  ?attribute:bool ->
  policy:(Prefix_heap.Allocator.t -> Policy.t) ->
  Prefix_trace.Stream.t ->
  outcome
(** Bounded-memory replay: the same per-segment loop as {!run_packed}
    folded over {!Prefix_trace.Stream.iter_segments}, holding one
    segment of trace memory at a time.  All replay state (heap, caches,
    object table, counters, observability snapshots keyed on the global
    event index) carries across segment boundaries, so the outcome —
    metrics, recovery counters, heatmap, attribution, and strict-mode
    exceptions — is exactly what {!run_packed} produces on the
    materialized trace. *)

val run_stream_many :
  ?config:config ->
  ?mode:Policy.mode ->
  policies:(Prefix_heap.Allocator.t -> Policy.t) list ->
  Prefix_trace.Stream.t ->
  outcome list
(** Decode-once fan-out: one pass over the stream hands each decoded
    segment to every policy's session in turn before the next segment
    is decoded, so N policies cost one decode instead of N.  Sessions
    are fully independent, and each observes exactly the segment
    sequence and global indices {!run_stream} would give it — every
    outcome (metrics, recovery, strict-mode exceptions) is identical
    to the corresponding per-policy {!run_stream}.  Outcomes are
    returned in [policies] order.  Heatmaps and attribution are not
    supported on this path (use {!run_stream} for diagnostics). *)

val run_boxed :
  ?config:config ->
  ?mode:Policy.mode ->
  ?heatmap_objs:(int -> bool) ->
  ?attribute:bool ->
  policy:(Prefix_heap.Allocator.t -> Policy.t) ->
  Prefix_trace.Trace.t ->
  outcome
(** The original event-by-event reference interpreter over the boxed
    trace, kept as the differential-testing oracle for {!run_packed}:
    tests and the throughput benchmark replay through both and require
    identical outcomes.  Not used on any hot path. *)

val run_baseline :
  ?config:config -> ?mode:Policy.mode -> Prefix_trace.Trace.t -> outcome
(** Shorthand for running the {!Policy.baseline}. *)

(** {2 Sessions}

    All state that crosses a segment boundary in a streamed replay —
    simulated heap, policy state (regions, arenas, recycle slots),
    cache/TLB arrays, dense object table, recovery counters,
    heatmap/attribution, telemetry cursor — lives in a [session].
    {!run_packed} is a session over one segment; {!run_stream} folds
    one over every segment.  Exposing the session lets callers pause a
    replay at a segment boundary, serialize it, and resume later (the
    checkpoint machinery of {!Checkpoint}). *)

type session

val session_create :
  config:config ->
  mode:Policy.mode ->
  heatmap_objs:(int -> bool) option ->
  attribute:bool ->
  heap:Prefix_heap.Allocator.t ->
  p:Policy.t ->
  session
(** [p] must have been instantiated on [heap]. *)

val replay_segment : session -> base:int -> Prefix_trace.Packed.t -> unit
(** Advance the session by one packed segment whose first event has
    global index [base].  Segments must arrive in stream order. *)

val session_events : session -> int
(** Events replayed so far (the resume cursor). *)

val session_finish : session -> outcome
(** Produce the outcome.  Call once, after the last segment. *)

val session_serialize : session -> string
(** Snapshot the complete session state (one [Marshal] with closures,
    preserving all internal sharing).  The encoding embeds code
    digests: a snapshot only deserializes in the binary that wrote
    it — a deliberate staleness guard for checkpoints. *)

val session_deserialize : string -> (session, string) result
(** Inverse of {!session_serialize}; [Error] (never an exception) when
    the snapshot is corrupt or was written by a different binary. *)
