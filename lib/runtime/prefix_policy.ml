module Allocator = Prefix_heap.Allocator
module Arena = Prefix_heap.Arena
module Plan = Prefix_core.Plan
module Context = Prefix_core.Context

(* Arena registry (keyed by the policy's stats record identity) so tests
   and the heatmap experiment can reach the arena behind a policy.  The
   mutex matters now that replays run on pool domains concurrently. *)
let arenas : (Policy.stats * Arena.t) list ref = ref []
let arenas_mutex = Mutex.create ()

let with_arenas f =
  Mutex.lock arenas_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock arenas_mutex) f

type counter_state = {
  mutable count : int;
  pattern : Context.pattern;
  placements : (int, int) Hashtbl.t; (* instance id -> slot *)
  recycle : Plan.recycle_block option;
  recycle_assign : (int, int) Hashtbl.t; (* instance id -> relative slot *)
  required_ctx : int option; (* hybrid gate (§2.2.2) *)
}

let policy ?(mode = Policy.Strict) (costs : Costs.t) heap (plan : Plan.t)
    (cls : Policy.classification) =
  let stats = Policy.fresh_stats () in
  let arena =
    Arena.create heap
      (List.map
         (fun (s : Prefix_core.Offsets.slot) ->
           { Arena.slot_offset = s.offset; slot_size = s.size })
         plan.slots)
  in
  let name = Plan.variant_name plan.variant in
  with_arenas (fun () -> arenas := (stats, arena) :: !arenas);
  let site_counter = Hashtbl.create 16 in
  List.iter (fun (s, c) -> Hashtbl.replace site_counter s c) plan.site_counter;
  let counter_states = Hashtbl.create 16 in
  List.iter
    (fun (cp : Plan.counter_plan) ->
      let placements = Hashtbl.create (List.length cp.placements) in
      List.iter (fun (id, slot) -> Hashtbl.replace placements id slot) cp.placements;
      let recycle_assign =
        match cp.recycle with
        | Some { assignment = (_ :: _) as a; _ } ->
          let h = Hashtbl.create (List.length a) in
          List.iter (fun (id, rel) -> Hashtbl.replace h id rel) a;
          h
        | _ -> Hashtbl.create 1
      in
      Hashtbl.replace counter_states cp.counter
        { count = 0;
          pattern = cp.pattern;
          placements;
          recycle = cp.recycle;
          recycle_assign;
          required_ctx = cp.required_ctx })
    plan.counters;
  let note_captured obj =
    stats.region_objects <- stats.region_objects + 1;
    if cls.is_hot obj then stats.region_hot_objects <- stats.region_hot_objects + 1;
    if cls.is_hds obj then stats.region_hds_objects <- stats.region_hds_objects + 1
  in
  let fallback_malloc size =
    stats.mgmt_instrs <- stats.mgmt_instrs + costs.malloc_instrs;
    Allocator.malloc heap size
  in
  let try_place obj slot size =
    if Arena.is_free arena slot && size <= Arena.slot_size arena slot then begin
      Arena.occupy arena slot;
      stats.mgmt_instrs <- stats.mgmt_instrs + costs.place_instrs;
      stats.calls_avoided <- stats.calls_avoided + 1;
      note_captured obj;
      Some (Arena.slot_addr arena slot)
    end
    else None
  in
  { Policy.name;
    alloc =
      (fun ~obj ~site ~ctx ~size ->
        match Hashtbl.find_opt site_counter site with
        | None -> fallback_malloc size
        | Some c -> (
          let st = Hashtbl.find counter_states c in
          match st.required_ctx with
          | Some required when ctx <> required ->
            (* Hybrid gate: a different calling context — this allocation
               neither advances the counter nor competes for a slot. *)
            stats.mgmt_instrs <- stats.mgmt_instrs + 2;
            fallback_malloc size
          | _ ->
          (* ObjectID = Counter + 1 (Figure 4). *)
          st.count <- st.count + 1;
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.counter_instrs;
          let id = st.count in
          match st.recycle with
          | Some block -> (
            (* Figure 7: Map = (Counter - 1) mod N — unless the plan
               carries an interval-colored assignment for this id. *)
            stats.mgmt_instrs <- stats.mgmt_instrs + 4 (* map + occupancy check *);
            let rel =
              match Hashtbl.find_opt st.recycle_assign id with
              | Some rel -> rel
              | None -> (id - 1) mod block.n_slots
            in
            let slot = block.first_slot + rel in
            match try_place obj slot size with
            | Some addr -> addr
            | None ->
              stats.recycle_evictions <- stats.recycle_evictions + 1;
              fallback_malloc size)
          | None ->
            stats.mgmt_instrs <- stats.mgmt_instrs + Context.check_cost_instrs st.pattern;
            if Context.matches st.pattern id then begin
              match Hashtbl.find_opt st.placements id with
              | Some slot -> (
                match try_place obj slot size with
                | Some addr -> addr
                | None -> fallback_malloc size)
              | None -> fallback_malloc size
            end
            else fallback_malloc size))
    ;
    dealloc =
      (fun ~obj:_ ~addr ~size:_ ->
        (* Figure 5: every free checks against the preallocated region. *)
        stats.mgmt_instrs <- stats.mgmt_instrs + costs.arena_free_instrs;
        match Arena.slot_of_addr arena addr with
        | Some slot when mode = Policy.Lenient && Arena.is_free arena slot ->
          (* Double release of a slot (corrupted trace): count and skip
             instead of letting [Arena.release] raise. *)
          stats.degraded_fallbacks <- stats.degraded_fallbacks + 1
        | Some slot ->
          Arena.release arena slot;
          stats.calls_avoided <- stats.calls_avoided + 1
        | None ->
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.free_instrs;
          Allocator.free heap addr);
    realloc =
      (fun ~obj:_ ~addr ~old_size ~new_size ->
        match Arena.slot_of_addr arena addr with
        | Some slot ->
          (* Figure 6. *)
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.arena_free_instrs;
          if new_size <= Arena.slot_size arena slot then begin
            stats.calls_avoided <- stats.calls_avoided + 1;
            addr
          end
          else begin
            let fresh = fallback_malloc new_size in
            stats.mgmt_instrs <-
              stats.mgmt_instrs + (old_size / 16 * costs.memcpy_instrs_per_16b);
            if mode = Policy.Lenient && Arena.is_free arena slot then
              (* Corrupted trace realloc'd an address whose slot is not
                 live; nothing to release. *)
              stats.degraded_fallbacks <- stats.degraded_fallbacks + 1
            else Arena.release arena slot;
            fresh
          end
        | None ->
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.realloc_instrs;
          Allocator.realloc heap addr new_size);
    finish =
      (fun () ->
        with_arenas (fun () ->
            arenas := List.filter (fun (s, _) -> s != stats) !arenas);
        Arena.dispose arena heap);
    stats;
    regions = (fun () -> if Arena.size arena = 0 then [] else [ (Arena.base arena, Arena.size arena) ]) }

let arena_of (p : Policy.t) =
  with_arenas (fun () ->
      List.find_opt (fun (s, _) -> s == p.Policy.stats) !arenas)
  |> Option.map snd
