module Allocator = Prefix_heap.Allocator
module Blockalloc = Prefix_blockpolicy.Blockalloc
module Intervals = Prefix_core.Intervals
module Metric = Prefix_obs.Metric

type plan = { block_sites : int list; prealloc_bytes : int }

type plan_config = {
  min_allocs : int;
  min_freed_fraction : float;
  max_obj_bytes : int;
  headroom : float;
}

let default_plan_config =
  { min_allocs = 8; min_freed_fraction = 0.5; max_obj_bytes = 16 * 1024; headroom = 1.25 }

(* Sites worth redirecting into blocks: enough allocations to matter,
   mostly freed (objects that die reclaim their lines — a site whose
   objects survive to the end would pin blocks forever), and small
   enough to bump inside a block. *)
let plan_of_intervals ?(config = default_plan_config) ivs =
  let per_site = Hashtbl.create 64 in
  Array.iter
    (fun (iv : Intervals.interval) ->
      let allocs, freed, max_size =
        Option.value ~default:(0, 0, 0) (Hashtbl.find_opt per_site iv.iv_site)
      in
      Hashtbl.replace per_site iv.iv_site
        ( allocs + 1,
          (freed + if iv.iv_freed then 1 else 0),
          max max_size iv.iv_size ))
    (Intervals.intervals ivs);
  let block_sites =
    Hashtbl.fold
      (fun site (allocs, freed, max_size) acc ->
        if
          allocs >= config.min_allocs
          && float_of_int freed >= config.min_freed_fraction *. float_of_int allocs
          && max_size <= config.max_obj_bytes
        then site :: acc
        else acc)
      per_site []
    |> List.sort compare
  in
  let prealloc_bytes =
    if block_sites = [] then 0
    else
      int_of_float
        (ceil
           (config.headroom
           *. float_of_int (Intervals.peak_live_bytes ivs ~sites:(Some block_sites))))
  in
  { block_sites; prealloc_bytes }

let plan_of_trace ?config trace = plan_of_intervals ?config (Intervals.of_trace trace)

let policy ?(mode = Policy.Strict) ?(config = Blockalloc.default_config) ?block_cap
    (costs : Costs.t) heap plan (cls : Policy.classification) =
  let stats = Policy.fresh_stats () in
  let config =
    match block_cap with Some _ -> { config with Blockalloc.max_bytes = block_cap } | None -> config
  in
  let blocks = Blockalloc.create ~config heap in
  let site_set = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace site_set s ()) plan.block_sites;
  let exhausted = Metric.counter "policy.block_exhausted" in
  let oversize = Metric.counter "policy.block_oversize" in
  Metric.set_max (Metric.gauge "policy.block_planned_bytes") (float_of_int plan.prealloc_bytes);
  let fallback_malloc size =
    stats.mgmt_instrs <- stats.mgmt_instrs + costs.malloc_instrs;
    Allocator.malloc heap size
  in
  { Policy.name = "Block";
    alloc =
      (fun ~obj ~site ~ctx:_ ~size ->
        if not (Hashtbl.mem site_set site) then fallback_malloc size
        else begin
          (* Bump allocation: a pointer add plus line bookkeeping. *)
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.place_instrs + 2;
          match Blockalloc.try_alloc blocks size with
          | Some addr ->
            stats.calls_avoided <- stats.calls_avoided + 1;
            stats.region_objects <- stats.region_objects + 1;
            if cls.is_hot obj then stats.region_hot_objects <- stats.region_hot_objects + 1;
            if cls.is_hds obj then stats.region_hds_objects <- stats.region_hds_objects + 1;
            addr
          | None ->
            if size > config.Blockalloc.block_bytes then begin
              (* Too big for any block — a plain heap object by design,
                 in both modes. *)
              Metric.incr oversize;
              fallback_malloc size
            end
            else begin
              match mode with
              | Policy.Strict -> Blockalloc.alloc blocks size (* raises: cap exceeded *)
              | Policy.Lenient ->
                stats.degraded_fallbacks <- stats.degraded_fallbacks + 1;
                Metric.incr exhausted;
                fallback_malloc size
            end
        end);
    dealloc =
      (fun ~obj:_ ~addr ~size:_ ->
        if Blockalloc.contains blocks addr then begin
          (* Line-count decrements; the heap free call is avoided. *)
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.arena_free_instrs + 2;
          stats.calls_avoided <- stats.calls_avoided + 1;
          Blockalloc.release blocks addr
        end
        else if mode = Policy.Lenient && Blockalloc.in_range blocks addr then
          (* Double free of block space (corrupted trace): count and
             skip rather than hand a block-interior address to the
             heap. *)
          stats.degraded_fallbacks <- stats.degraded_fallbacks + 1
        else begin
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.free_instrs;
          Allocator.free heap addr
        end);
    realloc =
      (fun ~obj:_ ~addr ~old_size ~new_size ->
        match Blockalloc.charged_size blocks addr with
        | Some charged ->
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.arena_free_instrs;
          if new_size <= charged then begin
            stats.calls_avoided <- stats.calls_avoided + 1;
            addr
          end
          else begin
            (* Objects never move within blocks; growth moves out, and
               the old space's lines are reclaimed. *)
            let fresh = fallback_malloc new_size in
            stats.mgmt_instrs <-
              stats.mgmt_instrs + (old_size / 16 * costs.memcpy_instrs_per_16b);
            Blockalloc.release blocks addr;
            fresh
          end
        | None ->
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.realloc_instrs;
          Allocator.realloc heap addr new_size);
    finish =
      (fun () ->
        stats.region_peak_bytes <- Blockalloc.peak_bytes blocks;
        Metric.add (Metric.counter "policy.block_lines_reclaimed")
          (Blockalloc.lines_reclaimed blocks);
        Metric.add (Metric.counter "policy.block_holes_reused")
          (Blockalloc.holes_reused blocks);
        Metric.add (Metric.counter "policy.block_blocks") (Blockalloc.blocks_acquired blocks);
        Blockalloc.dispose blocks);
    stats;
    regions = (fun () -> Blockalloc.blocks blocks) }
