module Allocator = Prefix_heap.Allocator
module Halo = Prefix_halo.Halo
module Metric = Prefix_obs.Metric

let policy ?(mode = Policy.Strict) ?region_cap (costs : Costs.t) heap (plan : Halo.plan)
    (cls : Policy.classification) =
  let stats = Policy.fresh_stats () in
  let group_of_ctx = Hashtbl.create 64 in
  List.iteri
    (fun i g -> List.iter (fun ctx -> Hashtbl.replace group_of_ctx ctx i) g)
    plan.groups;
  let pools =
    Array.init (List.length plan.groups) (fun _ ->
        Region.create ?max_bytes:region_cap heap ~chunk_bytes:(16 * 1024))
  in
  let exhausted = Metric.counter "policy.region_exhausted" in
  (* Pool full: lenient mode degrades to the plain heap (counted);
     strict mode lets [Region.alloc] raise. *)
  let pool_alloc pool size =
    match mode with
    | Policy.Strict -> Region.alloc pool size
    | Policy.Lenient -> (
      match Region.try_alloc pool size with
      | Some addr -> addr
      | None ->
        stats.degraded_fallbacks <- stats.degraded_fallbacks + 1;
        Metric.incr exhausted;
        Allocator.malloc heap size)
  in
  { Policy.name = "HALO";
    alloc =
      (fun ~obj ~site:_ ~ctx ~size ->
        (* Signature check on the allocation path. *)
        stats.mgmt_instrs <- stats.mgmt_instrs + costs.halo_check_instrs;
        match Hashtbl.find_opt group_of_ctx ctx with
        | Some g ->
          (* Pool management (size classes, growth checks, chunk
             bookkeeping) costs about as much as a regular malloc —
             HALO's savings are meant to come from locality, not from
             a cheaper allocation path. *)
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.malloc_instrs;
          stats.region_objects <- stats.region_objects + 1;
          if cls.is_hot obj then stats.region_hot_objects <- stats.region_hot_objects + 1;
          if cls.is_hds obj then stats.region_hds_objects <- stats.region_hds_objects + 1;
          pool_alloc pools.(g) size
        | None ->
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.malloc_instrs;
          Allocator.malloc heap size);
    dealloc =
      (fun ~obj:_ ~addr ~size ->
        match Array.find_opt (fun p -> Region.contains p addr) pools with
        | Some pool ->
          (* Returned to the pool's free list; the bookkeeping costs
             about as much as a regular free. *)
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.free_instrs;
          Region.release pool addr size
        | None ->
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.free_instrs;
          Allocator.free heap addr);
    realloc =
      (fun ~obj:_ ~addr ~old_size ~new_size ->
        stats.mgmt_instrs <- stats.mgmt_instrs + costs.realloc_instrs;
        match Array.find_opt (fun p -> Region.contains p addr) pools with
        | Some pool ->
          if new_size <= old_size then addr
          else begin
            (* Move out of the pool; release the old block back to its
               pool's free lists (the seed leaked it). *)
            stats.mgmt_instrs <-
              stats.mgmt_instrs + (old_size / 16 * costs.memcpy_instrs_per_16b);
            Region.release pool addr old_size;
            Allocator.malloc heap new_size
          end
        | None -> Allocator.realloc heap addr new_size);
    finish =
      (fun () ->
        stats.region_peak_bytes <-
          Array.fold_left (fun acc p -> acc + Region.peak_bytes p) 0 pools;
        Array.iter Region.dispose pools);
    stats;
    regions = (fun () -> Array.to_list pools |> List.concat_map Region.chunks) }
