(** The HALO [21] baseline at runtime: one pool per affinity group; an
    allocation whose call-stack signature belongs to a group goes to
    that group's pool, in allocation order.  Every allocation pays the
    signature check (Table 1: "get the call stack of the malloc
    instance and check against a signature"), and every object sharing
    a grouped signature lands in the pool whether hot or not (Table 4's
    pollution). *)

val policy :
  ?mode:Policy.mode ->
  ?region_cap:int ->
  Costs.t ->
  Prefix_heap.Allocator.t ->
  Prefix_halo.Halo.plan ->
  Policy.classification ->
  Policy.t
(** [mode] (default [Strict]) and [region_cap] (per-pool byte cap)
    behave as in {!Hds_policy.policy}: a full pool raises in strict
    mode and degrades to plain malloc (counted in
    [stats.degraded_fallbacks] / [policy.region_exhausted]) in lenient
    mode. *)
