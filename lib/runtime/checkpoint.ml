(* Self-validating checkpoint containers.

   A checkpoint file is

     "PFXC" | u8 version | u32le hlen | header | u32le crc(header)
            | u64le plen | payload | u32le crc(payload)

   where [header] is a Marshal of a plain record (no closures) that
   carries enough identity — kind, metadata key/values such as trace and
   config digests, event index — to refuse a checkpoint written by a
   different run, and [payload] is an opaque string (typically a
   marshaled {!Executor.session}).  The header has its own CRC so it can
   be validated without reading the payload.

   Writes are atomic (temp + fsync + rename, bounded retry) and rotate
   the previous file to [*.prev]; loads fall back to [*.prev] when the
   current file is torn or corrupt, so a crash mid-write never loses
   more than one checkpoint interval. *)

module Crc32 = Prefix_util.Crc32
module Fsio = Prefix_util.Fsio

let magic = "PFXC"
let version = 1

type header = {
  kind : string;
  meta : (string * string) list;
  event_index : int;
}

(* ---- binary helpers ------------------------------------------------- *)

let put_u32le buf v =
  for i = 0 to 3 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let put_u64le buf v =
  for i = 0 to 7 do
    Buffer.add_char buf (Char.chr ((v lsr (8 * i)) land 0xff))
  done

let get_u32le s pos =
  let b i = Char.code s.[pos + i] in
  b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24)

let get_u64le s pos =
  let b i = Char.code s.[pos + i] in
  let v = ref 0 in
  for i = 7 downto 0 do
    v := (!v lsl 8) lor b i
  done;
  !v

(* ---- after-save hook (used by the crash campaign) ------------------- *)

let save_count = Atomic.make 0
let after_save_hook : (int -> unit) ref = ref (fun _ -> ())
let saves () = Atomic.get save_count
let set_after_save f = after_save_hook := f
let reset_saves () = Atomic.set save_count 0

(* ---- encode / decode ------------------------------------------------ *)

let encode header ~payload =
  let hbytes = Marshal.to_string header [] in
  let buf = Buffer.create (String.length hbytes + String.length payload + 64) in
  Buffer.add_string buf magic;
  Buffer.add_char buf (Char.chr version);
  put_u32le buf (String.length hbytes);
  Buffer.add_string buf hbytes;
  put_u32le buf (Crc32.string hbytes);
  put_u64le buf (String.length payload);
  Buffer.add_string buf payload;
  put_u32le buf (Crc32.string payload);
  Buffer.contents buf

let decode_header data =
  let len = String.length data in
  if len < 9 then Error "truncated checkpoint (no header)"
  else if String.sub data 0 4 <> magic then Error "bad checkpoint magic"
  else if Char.code data.[4] <> version then
    Error
      (Printf.sprintf "unsupported checkpoint version %d (expected %d)"
         (Char.code data.[4]) version)
  else begin
    let hlen = get_u32le data 5 in
    if hlen < 0 || len < 9 + hlen + 4 then Error "truncated checkpoint header"
    else begin
      let hbytes = String.sub data 9 hlen in
      let hcrc = get_u32le data (9 + hlen) in
      if Crc32.string hbytes <> hcrc then Error "checkpoint header CRC mismatch"
      else
        match (Marshal.from_string hbytes 0 : header) with
        | h -> Ok (h, 9 + hlen + 4)
        | exception (Failure _ | Invalid_argument _) ->
          Error "checkpoint header does not match this binary"
    end
  end

let decode data =
  match decode_header data with
  | Error _ as e -> e
  | Ok (h, pos) ->
    let len = String.length data in
    if len < pos + 8 then Error "truncated checkpoint (no payload length)"
    else begin
      let plen = get_u64le data pos in
      if plen < 0 || len < pos + 8 + plen + 4 then
        Error "truncated checkpoint payload"
      else begin
        let payload = String.sub data (pos + 8) plen in
        let pcrc = get_u32le data (pos + 8 + plen) in
        if Crc32.string payload <> pcrc then
          Error "checkpoint payload CRC mismatch"
        else if len <> pos + 8 + plen + 4 then
          Error "trailing bytes after checkpoint payload"
        else Ok (h, payload)
      end
    end

(* ---- save / load ---------------------------------------------------- *)

let prev_path path = path ^ ".prev"

let save ~path header ~payload =
  let data = encode header ~payload in
  if Sys.file_exists path then
    Fsio.with_retry (fun () -> Sys.rename path (prev_path path));
  Fsio.atomic_write_string path data;
  let n = Atomic.fetch_and_add save_count 1 + 1 in
  !after_save_hook n

let load_file path =
  match Fsio.read_file path with
  | Error e -> Error e
  | Ok data -> decode data

let load ~path =
  match load_file path with
  | Ok (h, payload) -> Ok (h, payload, `Current)
  | Error e1 -> (
    match load_file (prev_path path) with
    | Ok (h, payload) -> Ok (h, payload, `Previous)
    | Error e2 ->
      Error
        (Printf.sprintf "%s: %s (fallback %s: %s)" path e1 (prev_path path) e2))

let validate ~path =
  match Fsio.read_file path with
  | Error e -> Error e
  | Ok data -> (
    match decode data with Ok (h, _) -> Ok h | Error _ as e -> e)

(* A checkpoint header is only acceptable for the run that wrote it. *)
let check_meta (h : header) ~kind ~meta =
  if h.kind <> kind then
    Error (Printf.sprintf "checkpoint kind %S does not match %S" h.kind kind)
  else
    let rec go = function
      | [] -> Ok ()
      | (k, v) :: rest -> (
        match List.assoc_opt k h.meta with
        | Some v' when v' = v -> go rest
        | Some v' ->
          Error (Printf.sprintf "checkpoint %s mismatch: %S, expected %S" k v' v)
        | None -> Error (Printf.sprintf "checkpoint is missing field %S" k))
    in
    go meta

(* A full session snapshot costs a few milliseconds (marshal + atomic
   write + fsync).  Saving at most once per throttle window bounds the
   steady-state replay overhead at roughly save_cost / window — ~2.5%
   at the default — independent of segment size or replay speed. *)
let default_throttle_ms = 100.

(* ---- resource guardrails -------------------------------------------- *)

type guardrails = {
  deadline_s : float option;
  max_rss_mb : int option;
}

let no_guardrails = { deadline_s = None; max_rss_mb = None }

exception Breach of string

type monitor = {
  g : guardrails;
  started : float;
}

let rss_mb () =
  (* VmRSS from /proc/self/status; absent on non-Linux — guardrail is
     then a no-op rather than an error. *)
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> None
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmRSS:" then
          Scanf.sscanf_opt (String.sub line 6 (String.length line - 6)) " %d kB"
            (fun kb -> kb / 1024)
        else scan ()
    in
    Fun.protect ~finally:(fun () -> close_in_noerr ic) scan

let start g = { g; started = Unix.gettimeofday () }

let breach ~metric msg =
  Prefix_obs.Metric.incr (Prefix_obs.Metric.counter "guardrail.breaches");
  Prefix_obs.Metric.incr (Prefix_obs.Metric.counter metric);
  raise (Breach msg)

let check m =
  (match m.g.deadline_s with
  | Some limit ->
    let elapsed = Unix.gettimeofday () -. m.started in
    if elapsed > limit then
      breach ~metric:"guardrail.deadline_breaches"
        (Printf.sprintf "deadline exceeded: %.1fs elapsed > %.1fs" elapsed limit)
  | None -> ());
  match m.g.max_rss_mb with
  | Some limit -> (
    match rss_mb () with
    | Some rss when rss > limit ->
      Prefix_obs.Metric.set (Prefix_obs.Metric.gauge "guardrail.rss_mb")
        (float_of_int rss);
      breach ~metric:"guardrail.rss_breaches"
        (Printf.sprintf "RSS limit exceeded: %d MB > %d MB" rss limit)
    | _ -> ())
  | None -> ()
