(** The PreFix runtime: instrumentation semantics of Figures 4–7 driven
    by a {!Prefix_core.Plan.t}.

    malloc sites listed in the plan increment their (possibly shared)
    counter, check the resulting dynamic instance id against the
    counter's pattern, and on a match place the object at its
    predetermined arena slot — provided the slot is unoccupied and the
    requested size fits (Figure 4).  Recycling counters map ids onto
    their block modulo N (Figure 7).  Every free checks the address
    against the preallocated region and only marks the slot free
    (Figure 5); reallocs move the object out when it outgrows its slot
    (Figure 6).  All fallbacks go to the normal allocator, so behaviour
    is correct whatever the real run does. *)

val policy :
  ?mode:Policy.mode ->
  Costs.t ->
  Prefix_heap.Allocator.t ->
  Prefix_core.Plan.t ->
  Policy.classification ->
  Policy.t
(** [mode] (default [Strict]): in lenient mode, arena-slot
    double-releases caused by corrupted traces are counted in
    [stats.degraded_fallbacks] and skipped instead of raising.  (The
    arena itself cannot be exhausted — unplaced allocations already
    fall back to malloc by construction.) *)

val arena_of : Policy.t -> Prefix_heap.Arena.t option
(** The preallocated arena behind a PreFix policy (for tests and the
    Figure 9 heatmap); [None] for other policies. *)
