(** Grow-on-demand bump regions — the "separate memory region" of
    HDS [8] and the per-group pools of HALO.  Objects are placed in
    allocation order (no reordering, by construction); freed blocks are
    recycled through per-size free lists inside the region, and whole
    chunks go back to the heap only on [dispose] (HALO's "managed
    chunked deallocation"). *)

type t

val create : ?max_bytes:int -> Prefix_heap.Allocator.t -> chunk_bytes:int -> t
(** [max_bytes] caps the total bytes of chunks the region may hold
    (rounded up to whole chunks); unbounded when omitted.  A capped
    region models a fixed-size preallocated area that can run out under
    deployment drift. *)

val alloc : t -> int -> int
(** Bump-allocate [size] bytes (16-byte aligned); grows by a new chunk
    when the current one is exhausted.  Oversized requests get a
    dedicated chunk.  Raises [Invalid_argument] when growing would
    exceed [max_bytes] — use {!try_alloc} for a non-raising variant. *)

val try_alloc : t -> int -> int option
(** Like {!alloc} but returns [None] instead of raising when the region
    is exhausted (the graceful-degradation path: callers fall back to
    plain malloc).  Still raises on non-positive sizes. *)

val contains : t -> int -> bool
(** Whether an address lies in any of the region's chunks. *)

val release : t -> int -> int -> unit
(** [release t addr size] returns a block to the region's internal
    size-class free lists for reuse by later [alloc]s of the same
    rounded size (how HDS's hot-object RAM and HALO's pools manage
    frees — space is reused within the region but never returned to
    the heap before [dispose]).  The free-list class and the byte
    decrement come from the size {e charged at allocation time}, not
    from [size] — a block shrunk by an in-region realloc still frees
    at its original rounded size, keeping {!allocated_bytes} equal to
    the sum of live charges.  Releasing an address the region does not
    currently own (never allocated, or already released) is a no-op
    rather than a free-list corruption. *)

val chunks : t -> (int * int) list
(** (base, size) of every chunk, newest first. *)

val allocated_objects : t -> int

val allocated_bytes : t -> int
(** Live bytes (rounded sizes) currently allocated from the region.
    Symmetric with {!allocated_objects}: grows on every successful
    alloc — bump {e and} free-list reuse — and shrinks on every
    {!release}. *)

val peak_bytes : t -> int
(** High-water mark of {!allocated_bytes} over the region's lifetime
    (the campaign's footprint leg). *)

val chunk_bytes_total : t -> int
(** Total bytes currently held in chunks (what [max_bytes] caps). *)

val dispose : t -> unit
(** Return all chunks to the heap. *)
