(** Grow-on-demand bump regions — the "separate memory region" of
    HDS [8] and the per-group pools of HALO.  Objects are placed in
    allocation order (no reordering, by construction); freed blocks are
    recycled through per-size free lists inside the region, and whole
    chunks go back to the heap only on [dispose] (HALO's "managed
    chunked deallocation"). *)

type t

val create : Prefix_heap.Allocator.t -> chunk_bytes:int -> t

val alloc : t -> int -> int
(** Bump-allocate [size] bytes (16-byte aligned); grows by a new chunk
    when the current one is exhausted.  Oversized requests get a
    dedicated chunk. *)

val contains : t -> int -> bool
(** Whether an address lies in any of the region's chunks. *)

val release : t -> int -> int -> unit
(** [release t addr size] returns a block to the region's internal
    size-class free lists for reuse by later [alloc]s of the same
    rounded size (how HDS's hot-object RAM and HALO's pools manage
    frees — space is reused within the region but never returned to
    the heap before [dispose]). *)

val chunks : t -> (int * int) list
(** (base, size) of every chunk, newest first. *)

val allocated_objects : t -> int
val allocated_bytes : t -> int

val dispose : t -> unit
(** Return all chunks to the heap. *)
