module Allocator = Prefix_heap.Allocator
module Detector = Prefix_hds.Detector
module Hds = Prefix_hds.Hds
module Trace_stats = Prefix_trace.Trace_stats
module Metric = Prefix_obs.Metric

type plan = { interesting_sites : int list }

let plan_of_trace ?detector stats trace =
  let config = Option.value ~default:Detector.default_config detector in
  let ohds = Detector.detect_with_stats ~config stats trace in
  let sites =
    List.concat_map Hds.objs ohds
    |> List.map (fun o -> (Trace_stats.obj_info stats o).site)
    |> List.sort_uniq compare
  in
  { interesting_sites = sites }

let policy ?(mode = Policy.Strict) ?region_cap (costs : Costs.t) heap plan
    (cls : Policy.classification) =
  let stats = Policy.fresh_stats () in
  let interesting = Hashtbl.create 16 in
  List.iter (fun s -> Hashtbl.replace interesting s ()) plan.interesting_sites;
  let region = Region.create ?max_bytes:region_cap heap ~chunk_bytes:(256 * 1024) in
  let exhausted = Metric.counter "policy.region_exhausted" in
  (* Region full: in lenient mode the object degrades to a plain heap
     allocation (counted); in strict mode [Region.alloc] raises. *)
  let region_alloc size =
    match mode with
    | Policy.Strict -> Region.alloc region size
    | Policy.Lenient -> (
      match Region.try_alloc region size with
      | Some addr -> addr
      | None ->
        stats.degraded_fallbacks <- stats.degraded_fallbacks + 1;
        Metric.incr exhausted;
        Allocator.malloc heap size)
  in
  { Policy.name = "HDS";
    alloc =
      (fun ~obj ~site ~ctx:_ ~size ->
        if Hashtbl.mem interesting site then begin
          (* Redirected wholesale: allocation order, no checks.  The cost
             is "similar to other heap objects" (Table 1). *)
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.malloc_instrs;
          stats.region_objects <- stats.region_objects + 1;
          if cls.is_hot obj then stats.region_hot_objects <- stats.region_hot_objects + 1;
          if cls.is_hds obj then stats.region_hds_objects <- stats.region_hds_objects + 1;
          region_alloc size
        end
        else begin
          stats.mgmt_instrs <- stats.mgmt_instrs + costs.malloc_instrs;
          Allocator.malloc heap size
        end);
    dealloc =
      (fun ~obj:_ ~addr ~size ->
        stats.mgmt_instrs <- stats.mgmt_instrs + costs.free_instrs;
        if Region.contains region addr then Region.release region addr size
        else Allocator.free heap addr);
    realloc =
      (fun ~obj:_ ~addr ~old_size ~new_size ->
        stats.mgmt_instrs <- stats.mgmt_instrs + costs.realloc_instrs;
        if Region.contains region addr then begin
          if new_size <= old_size then addr
          else begin
            (* Move out of the region; copy cost applies, and the old
               block goes back to the region's free lists — the seed
               leaked it, leaving [allocated_bytes] permanently
               inflated by every grown object. *)
            stats.mgmt_instrs <-
              stats.mgmt_instrs + (old_size / 16 * costs.memcpy_instrs_per_16b);
            Region.release region addr old_size;
            Allocator.malloc heap new_size
          end
        end
        else Allocator.realloc heap addr new_size);
    finish =
      (fun () ->
        stats.region_peak_bytes <- Region.peak_bytes region;
        Region.dispose region);
    stats;
    regions = (fun () -> Region.chunks region) }
