module Allocator = Prefix_heap.Allocator

type chunk = { base : int; size : int; mutable used : int }

type t = {
  heap : Allocator.t;
  chunk_bytes : int;
  mutable chunks : chunk list; (* newest first *)
  mutable objects : int;
  mutable bytes : int;
  free_lists : (int, int list ref) Hashtbl.t; (* rounded size -> addrs *)
}

let create heap ~chunk_bytes =
  if chunk_bytes <= 0 then invalid_arg "Region.create: chunk size must be positive";
  { heap; chunk_bytes; chunks = []; objects = 0; bytes = 0; free_lists = Hashtbl.create 8 }

let align = 16

let round_up n = (n + align - 1) / align * align

let pop_free t want =
  match Hashtbl.find_opt t.free_lists want with
  | Some ({ contents = addr :: rest } as l) ->
    l := rest;
    Some addr
  | _ -> None

let alloc t size =
  if size <= 0 then invalid_arg "Region.alloc: size must be positive";
  let want = round_up size in
  match pop_free t want with
  | Some addr ->
    t.objects <- t.objects + 1;
    addr
  | None ->
  let chunk =
    match t.chunks with
    | c :: _ when c.size - c.used >= want -> c
    | _ ->
      let csize = max t.chunk_bytes want in
      let base = Allocator.malloc t.heap csize in
      let c = { base; size = csize; used = 0 } in
      t.chunks <- c :: t.chunks;
      c
  in
  let addr = chunk.base + chunk.used in
  chunk.used <- chunk.used + want;
  t.objects <- t.objects + 1;
  t.bytes <- t.bytes + want;
  addr

let contains t addr =
  List.exists (fun c -> addr >= c.base && addr < c.base + c.size) t.chunks

let release t addr size =
  let want = round_up size in
  (match Hashtbl.find_opt t.free_lists want with
  | Some l -> l := addr :: !l
  | None -> Hashtbl.replace t.free_lists want (ref [ addr ]));
  t.objects <- t.objects - 1

let chunks t = List.map (fun c -> (c.base, c.size)) t.chunks

let allocated_objects t = t.objects
let allocated_bytes t = t.bytes

let dispose t =
  List.iter (fun c -> Allocator.free t.heap c.base) t.chunks;
  t.chunks <- [];
  Hashtbl.reset t.free_lists
