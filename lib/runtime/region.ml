module Allocator = Prefix_heap.Allocator

type chunk = { base : int; size : int; mutable used : int }

type t = {
  heap : Allocator.t;
  chunk_bytes : int;
  max_bytes : int option; (* cap on total chunk bytes; None = unbounded *)
  mutable chunks : chunk list; (* newest first *)
  mutable chunk_total : int; (* sum of chunk sizes *)
  mutable objects : int;
  mutable bytes : int;
  mutable peak_bytes : int;
  free_lists : (int, int list ref) Hashtbl.t; (* rounded size -> addrs *)
  charged : (int, int) Hashtbl.t; (* live addr -> rounded bytes charged at alloc *)
}

let create ?max_bytes heap ~chunk_bytes =
  if chunk_bytes <= 0 then invalid_arg "Region.create: chunk size must be positive";
  (match max_bytes with
  | Some m when m <= 0 -> invalid_arg "Region.create: max_bytes must be positive"
  | _ -> ());
  { heap;
    chunk_bytes;
    max_bytes;
    chunks = [];
    chunk_total = 0;
    objects = 0;
    bytes = 0;
    peak_bytes = 0;
    free_lists = Hashtbl.create 8;
    charged = Hashtbl.create 64 }

let align = 16

let round_up n = (n + align - 1) / align * align

let pop_free t want =
  match Hashtbl.find_opt t.free_lists want with
  | Some ({ contents = addr :: rest } as l) ->
    l := rest;
    Some addr
  | _ -> None

(* [try_alloc] returns [None] only when growing past [max_bytes] would
   be required: free-list reuse and space left in the current chunk
   never count against the cap. *)
(* [objects]/[bytes] move together: + on every successful alloc (bump
   or free-list reuse), - on every release.  The seed only counted
   [bytes] on the bump path, so the live-bytes figure drifted up and
   disagreed with [objects]. *)
let count_alloc t addr want =
  t.objects <- t.objects + 1;
  t.bytes <- t.bytes + want;
  Hashtbl.replace t.charged addr want;
  if t.bytes > t.peak_bytes then t.peak_bytes <- t.bytes

let try_alloc t size =
  if size <= 0 then invalid_arg "Region.alloc: size must be positive";
  let want = round_up size in
  match pop_free t want with
  | Some addr ->
    count_alloc t addr want;
    Some addr
  | None ->
    let chunk =
      match t.chunks with
      | c :: _ when c.size - c.used >= want -> Some c
      | _ ->
        let csize = max t.chunk_bytes want in
        let within_cap =
          match t.max_bytes with
          | Some m -> t.chunk_total + csize <= m
          | None -> true
        in
        if not within_cap then None
        else begin
          let base = Allocator.malloc t.heap csize in
          let c = { base; size = csize; used = 0 } in
          t.chunks <- c :: t.chunks;
          t.chunk_total <- t.chunk_total + csize;
          Some c
        end
    in
    match chunk with
    | None -> None
    | Some chunk ->
      let addr = chunk.base + chunk.used in
      chunk.used <- chunk.used + want;
      count_alloc t addr want;
      Some addr

let alloc t size =
  match try_alloc t size with
  | Some addr -> addr
  | None ->
    invalid_arg
      (Printf.sprintf "Region.alloc: region exhausted (%d chunk bytes, cap %d)"
         t.chunk_total
         (Option.value ~default:0 t.max_bytes))

let contains t addr =
  List.exists (fun c -> addr >= c.base && addr < c.base + c.size) t.chunks

(* The caller's [size] is deliberately not trusted: after an in-region
   realloc-shrink the policy frees with the {e new} size, but the block
   still occupies the bytes charged at alloc time.  Keying the free
   list and the byte decrement off the caller's size let [bytes] drift
   above the true live total and parked the block in a too-small size
   class.  Addresses with no charge record (already released) are
   ignored rather than pushed onto a free list twice — double-listing
   would hand the same address to two later allocations. *)
let release t addr _size =
  match Hashtbl.find_opt t.charged addr with
  | None -> ()
  | Some want ->
    Hashtbl.remove t.charged addr;
    (match Hashtbl.find_opt t.free_lists want with
    | Some l -> l := addr :: !l
    | None -> Hashtbl.replace t.free_lists want (ref [ addr ]));
    t.objects <- t.objects - 1;
    t.bytes <- t.bytes - want

let chunks t = List.map (fun c -> (c.base, c.size)) t.chunks

let allocated_objects t = t.objects
let allocated_bytes t = t.bytes
let peak_bytes t = t.peak_bytes
let chunk_bytes_total t = t.chunk_total

let dispose t =
  List.iter (fun c -> Allocator.free t.heap c.base) t.chunks;
  t.chunks <- [];
  t.chunk_total <- 0;
  Hashtbl.reset t.free_lists;
  Hashtbl.reset t.charged
