(** Instruction-cost constants for the allocation paths.

    Used by every policy to account for the dynamic instructions its
    memory management executes, feeding the Table 6 instruction-count
    deltas and, through the cycle model, Table 3.  Values are rough
    x86-64 footprints of the corresponding glibc / inlined code paths. *)

type t = {
  malloc_instrs : int;  (** a glibc-class malloc call (default 100) *)
  free_instrs : int;  (** a free call (default 80) *)
  realloc_instrs : int;  (** a realloc call (default 140) *)
  bump_alloc_instrs : int;  (** pointer-bump pool allocation (default 12) *)
  counter_instrs : int;  (** counter increment at a PreFix site (default 2) *)
  place_instrs : int;  (** placement-table lookup + bounds check (default 8) *)
  arena_free_instrs : int;  (** range check + occupancy mark (default 4) *)
  halo_check_instrs : int;  (** call-stack hash + signature compare (default 15) *)
  memcpy_instrs_per_16b : int;  (** realloc copy cost per 16 bytes (default 1) *)
}

val default : t
