(** The Block policy: an Immix/Nofl-style bump-pointer competitor to
    HDS/HALO/PreFix, driven by precise trace liveness.

    Profiled sites whose objects are numerous, mostly freed and
    block-sized are redirected into a {!Prefix_blockpolicy.Blockalloc}
    block space: allocation is a bump (plus line bookkeeping), frees
    reclaim lines, and blocks whose free-line density crosses the
    threshold are recycled hole by hole.  The plan comes from the
    liveness-interval layout pass ({!Prefix_core.Intervals}) — the same
    pass that colors PreFix's recycling slots. *)

type plan = {
  block_sites : int list;  (** sites redirected into block space *)
  prealloc_bytes : int;
      (** peak concurrently-live bytes over those sites (with
          headroom) — the footprint blocks must provision for *)
}

type plan_config = {
  min_allocs : int;  (** minimum profiled allocations (default 8) *)
  min_freed_fraction : float;
      (** minimum fraction of the site's objects that are freed
          (default 0.5) — unfreed objects pin lines forever *)
  max_obj_bytes : int;
      (** largest object a block site may allocate (default 16 KiB) *)
  headroom : float;  (** sizing margin on peak bytes (default 1.25) *)
}

val default_plan_config : plan_config

val plan_of_intervals : ?config:plan_config -> Prefix_core.Intervals.t -> plan

val plan_of_trace : ?config:plan_config -> Prefix_trace.Trace.t -> plan
(** Extract intervals from the profiling trace and plan from them. *)

val policy :
  ?mode:Policy.mode ->
  ?config:Prefix_blockpolicy.Blockalloc.config ->
  ?block_cap:int ->
  Costs.t ->
  Prefix_heap.Allocator.t ->
  plan ->
  Policy.classification ->
  Policy.t
(** In [Lenient] mode a cap-exhausted block space degrades to plain
    malloc (counted in [degraded_fallbacks] and the
    [policy.block_exhausted] metric) and double frees of block space
    are skipped; [Strict] raises on both.  Oversized allocations
    (larger than a block) go to the heap in both modes
    ([policy.block_oversize]).  [block_cap] overrides
    [config.max_bytes].  [finish] records the block space's peak bytes
    in [stats.region_peak_bytes] and exports the line-reclamation
    counters ([policy.block_lines_reclaimed], [policy.block_holes_reused],
    [policy.block_blocks]). *)
