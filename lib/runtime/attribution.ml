type site_counters = {
  site : int;
  accesses : int;
  l1_misses : int;
  llc_misses : int;
  tlb_misses : int;
}

type cell = {
  mutable acc : int;
  mutable l1 : int;
  mutable llc : int;
  mutable tlb : int;
}

type t = { cells : (int, cell) Hashtbl.t; mutable total : int }

let create () = { cells = Hashtbl.create 64; total = 0 }

let record t ~site ~l1_miss ~llc_miss ~tlb_miss =
  t.total <- t.total + 1;
  let c =
    match Hashtbl.find_opt t.cells site with
    | Some c -> c
    | None ->
      let c = { acc = 0; l1 = 0; llc = 0; tlb = 0 } in
      Hashtbl.replace t.cells site c;
      c
  in
  c.acc <- c.acc + 1;
  if l1_miss then c.l1 <- c.l1 + 1;
  if llc_miss then c.llc <- c.llc + 1;
  if tlb_miss then c.tlb <- c.tlb + 1

let sites t =
  Hashtbl.fold
    (fun site c acc ->
      { site; accesses = c.acc; l1_misses = c.l1; llc_misses = c.llc; tlb_misses = c.tlb }
      :: acc)
    t.cells []
  |> List.sort (fun a b -> compare b.l1_misses a.l1_misses)

let top ?(n = 10) t = List.filteri (fun i _ -> i < n) (sites t)

let total_accesses t = t.total

let render ?(n = 10) t =
  let tbl =
    Prefix_util.Tablefmt.create
      ~headers:[ "site"; "accesses"; "L1 misses"; "LLC misses"; "TLB misses"; "share %" ]
  in
  List.iter
    (fun s ->
      Prefix_util.Tablefmt.add_row tbl
        [ string_of_int s.site;
          Prefix_util.Tablefmt.fmt_int s.accesses;
          Prefix_util.Tablefmt.fmt_int s.l1_misses;
          Prefix_util.Tablefmt.fmt_int s.llc_misses;
          Prefix_util.Tablefmt.fmt_int s.tlb_misses;
          Prefix_util.Tablefmt.fmt_f
            (100. *. float_of_int s.accesses /. float_of_int (max 1 t.total)) ])
    (top ~n t);
  Prefix_util.Tablefmt.render tbl
