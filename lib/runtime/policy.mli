(** Allocation-policy interface.

    A policy is the runtime behaviour of one binary flavour: the
    baseline, the HDS [8] transformation, HALO, or a PreFix variant.
    The {!Executor} replays a workload trace through a policy; the
    policy decides where every object lives and accounts for the
    instructions its management code executes. *)

type mode = Strict | Lenient
(** Failure posture of a policy (and of the {!Executor}).  [Strict]
    preserves the fail-fast behaviour: malformed input and exhausted
    regions raise.  [Lenient] turns every such condition into a
    counted, logged recovery action (degrade to plain malloc, skip the
    event) so replay is guaranteed crash-free on corrupted traces. *)

val mode_name : mode -> string

type stats = {
  mutable mgmt_instrs : int;
      (** all instructions spent on the allocation paths (standard
          malloc/free costs included, so policies are comparable) *)
  mutable calls_avoided : int;
      (** malloc/free/realloc library calls avoided via preallocation
          or recycling (Table 6) *)
  mutable region_objects : int;
      (** objects directed to a special (hot/pool/preallocated) region
          — Table 4's "All" column *)
  mutable region_hot_objects : int;
      (** of those, objects that are profiled-hot — Table 4's "Hot" *)
  mutable region_hds_objects : int;
      (** of those, objects belonging to a detected HDS — Table 5 *)
  mutable recycle_evictions : int;
      (** recycled-slot allocations that found their slot still
          occupied by a live object and fell back to malloc (the
          Figure 7 map collided) *)
  mutable degraded_fallbacks : int;
      (** lenient-mode graceful degradations: region-exhaustion (or
          other recoverable failure) paths that fell back to plain
          malloc instead of raising *)
  mutable region_peak_bytes : int;
      (** high-water mark of live region bytes (summed over pools for
          HALO), recorded by [finish] — the campaign's footprint leg *)
}

val fresh_stats : unit -> stats

type t = {
  name : string;
  alloc : obj:int -> site:int -> ctx:int -> size:int -> int;
      (** Returns the object's address. *)
  dealloc : obj:int -> addr:int -> size:int -> unit;
  realloc : obj:int -> addr:int -> old_size:int -> new_size:int -> int;
      (** Returns the (possibly moved) address. *)
  finish : unit -> unit;
      (** End of run: release regions ("freed at the end", Table 1). *)
  stats : stats;
  regions : unit -> (int * int) list;
      (** Current special regions as (base, size), for analysis. *)
}

val baseline : Costs.t -> Prefix_heap.Allocator.t -> t
(** The untransformed program: every event goes straight to the heap
    allocator at standard cost. *)

(** Classification of objects for pollution accounting; built by the
    executor's caller from the long-run trace. *)
type classification = {
  is_hot : int -> bool;
  is_hds : int -> bool;
}

val no_classification : classification
(** Classifies nothing as hot; use when pollution numbers are not
    needed. *)
