(** The HDS [8] baseline transformation (§3.2: "exploits only those
    HDSs constructed by the technique in [8], that is, HDSs are not
    reconstituted").

    Profile side: the malloc sites that allocate members of any
    detected (non-reconstituted) hot data stream become "interesting".
    Runtime side: {e every} allocation from an interesting site is
    redirected to a separate bump region — the signature is the static
    site id alone, so all the site's other objects follow along.  That
    is the pollution the paper measures in Table 4, and the absence of
    any runtime check is Table 1's "no checks and no overhead". *)

type plan = { interesting_sites : int list }

val plan_of_trace :
  ?detector:Prefix_hds.Detector.config ->
  Prefix_trace.Trace_stats.t ->
  Prefix_trace.Trace.t ->
  plan

val policy :
  ?mode:Policy.mode ->
  ?region_cap:int ->
  Costs.t ->
  Prefix_heap.Allocator.t ->
  plan ->
  Policy.classification ->
  Policy.t
(** [mode] (default [Strict]) controls what happens when the bump
    region is exhausted (only possible with [region_cap], a byte cap on
    the region): strict raises, lenient degrades the allocation to
    plain malloc and counts it in [stats.degraded_fallbacks] and the
    [policy.region_exhausted] metric. *)
