(** Per-site miss attribution (the DrCacheSim-style diagnostic view).

    While replaying a trace, the executor can attribute every data
    reference — and the misses it causes — to the allocation site of
    the object being touched.  This is how one finds the "interesting
    malloc sites" of §2.1 by hand, and it makes before/after comparisons
    concrete: the optimized run should move a hot site's misses to
    (near) zero without touching the others. *)

type site_counters = {
  site : int;
  accesses : int;
  l1_misses : int;
  llc_misses : int;
  tlb_misses : int;  (** first-level TLB misses *)
}

type t

val create : unit -> t

val record :
  t -> site:int -> l1_miss:bool -> llc_miss:bool -> tlb_miss:bool -> unit
(** Account one data reference. *)

val sites : t -> site_counters list
(** All sites, descending by L1 misses. *)

val top : ?n:int -> t -> site_counters list
(** The [n] (default 10) sites with the most L1 misses. *)

val total_accesses : t -> int

val render : ?n:int -> t -> string
(** A table of the top sites. *)
