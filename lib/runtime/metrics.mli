(** Everything a single policy run produces, in the units the paper's
    tables and figures report. *)

type t = {
  policy_name : string;
  instructions : int;
      (** dynamic instructions: program work + memory management
          (Table 6's count) *)
  mem_refs : int;  (** heap data references (Table 3's "Mem. Refs.") *)
  cycles : Prefix_cachesim.Cycles.estimate;
  counters : Prefix_cachesim.Hierarchy.counters;
  l1_miss_rate : float;  (** Figure 11 *)
  llc_miss_rate : float;  (** Figure 12 (misses over all refs) *)
  l1_tlb_miss_rate : float;
  l2_tlb_miss_rate : float;
  backend_stall_pct : float;  (** Figure 13 *)
  peak_bytes : int;  (** Table 6's peak memory *)
  heap_extent : int;
  malloc_calls : int;
  free_calls : int;
  realloc_calls : int;
  calls_avoided : int;  (** Table 6 *)
  mgmt_instrs : int;
  region_objects : int;  (** Table 4 "All" *)
  region_hot_objects : int;  (** Table 4 "Hot" *)
  region_hds_objects : int;  (** Table 5 "HDS" *)
  threads : int;
}

val time_pct_change : baseline:t -> t -> float
(** Relative execution-time change in percent (negative = faster),
    comparing total cycles — Table 3's cells. *)

val instr_pct_change : baseline:t -> t -> float
(** Relative dynamic-instruction-count change — Table 6. *)

val pp : Format.formatter -> t -> unit
