module Allocator = Prefix_heap.Allocator

type mode = Strict | Lenient

let mode_name = function Strict -> "strict" | Lenient -> "lenient"

type stats = {
  mutable mgmt_instrs : int;
  mutable calls_avoided : int;
  mutable region_objects : int;
  mutable region_hot_objects : int;
  mutable region_hds_objects : int;
  mutable recycle_evictions : int;
  mutable degraded_fallbacks : int;
  mutable region_peak_bytes : int;
}

let fresh_stats () =
  { mgmt_instrs = 0;
    calls_avoided = 0;
    region_objects = 0;
    region_hot_objects = 0;
    region_hds_objects = 0;
    recycle_evictions = 0;
    degraded_fallbacks = 0;
    region_peak_bytes = 0 }

type t = {
  name : string;
  alloc : obj:int -> site:int -> ctx:int -> size:int -> int;
  dealloc : obj:int -> addr:int -> size:int -> unit;
  realloc : obj:int -> addr:int -> old_size:int -> new_size:int -> int;
  finish : unit -> unit;
  stats : stats;
  regions : unit -> (int * int) list;
}

type classification = { is_hot : int -> bool; is_hds : int -> bool }

let no_classification = { is_hot = (fun _ -> false); is_hds = (fun _ -> false) }

let baseline (costs : Costs.t) alloc =
  let stats = fresh_stats () in
  { name = "baseline";
    alloc =
      (fun ~obj:_ ~site:_ ~ctx:_ ~size ->
        stats.mgmt_instrs <- stats.mgmt_instrs + costs.malloc_instrs;
        Allocator.malloc alloc size);
    dealloc =
      (fun ~obj:_ ~addr ~size:_ ->
        stats.mgmt_instrs <- stats.mgmt_instrs + costs.free_instrs;
        Allocator.free alloc addr);
    realloc =
      (fun ~obj:_ ~addr ~old_size:_ ~new_size ->
        stats.mgmt_instrs <- stats.mgmt_instrs + costs.realloc_instrs;
        Allocator.realloc alloc addr new_size);
    finish = (fun () -> ());
    stats;
    regions = (fun () -> []) }
