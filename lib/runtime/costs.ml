type t = {
  malloc_instrs : int;
  free_instrs : int;
  realloc_instrs : int;
  bump_alloc_instrs : int;
  counter_instrs : int;
  place_instrs : int;
  arena_free_instrs : int;
  halo_check_instrs : int;
  memcpy_instrs_per_16b : int;
}

let default =
  { malloc_instrs = 100;
    free_instrs = 80;
    realloc_instrs = 140;
    bump_alloc_instrs = 12;
    counter_instrs = 2;
    place_instrs = 8;
    arena_free_instrs = 4;
    halo_check_instrs = 15;
    memcpy_instrs_per_16b = 1 }
