type t = {
  policy_name : string;
  instructions : int;
  mem_refs : int;
  cycles : Prefix_cachesim.Cycles.estimate;
  counters : Prefix_cachesim.Hierarchy.counters;
  l1_miss_rate : float;
  llc_miss_rate : float;
  l1_tlb_miss_rate : float;
  l2_tlb_miss_rate : float;
  backend_stall_pct : float;
  peak_bytes : int;
  heap_extent : int;
  malloc_calls : int;
  free_calls : int;
  realloc_calls : int;
  calls_avoided : int;
  mgmt_instrs : int;
  region_objects : int;
  region_hot_objects : int;
  region_hds_objects : int;
  threads : int;
}

let time_pct_change ~baseline t =
  Prefix_util.Stats.pct_change ~before:baseline.cycles.total_cycles
    ~after:t.cycles.total_cycles

let instr_pct_change ~baseline t =
  Prefix_util.Stats.pct_change
    ~before:(float_of_int baseline.instructions)
    ~after:(float_of_int t.instructions)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%s: %d refs, %d instrs, %.0f cycles (%.1f%% backend-stalled)@,\
     L1 %.2f%%  LLC %.4f%%  dTLB %.2f%%  peak %d B  calls avoided %d@]"
    t.policy_name t.mem_refs t.instructions t.cycles.total_cycles t.backend_stall_pct
    (t.l1_miss_rate *. 100.) (t.llc_miss_rate *. 100.) (t.l1_tlb_miss_rate *. 100.)
    t.peak_bytes t.calls_avoided
