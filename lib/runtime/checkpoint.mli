(** Self-validating checkpoint containers and resource guardrails.

    A checkpoint file carries a plain header (kind + metadata key/values
    + event index) and an opaque payload, each protected by a CRC-32.
    Saves are atomic (temp + fsync + rename) and rotate the previous
    file to [path ^ ".prev"]; {!load} falls back to the rotated copy
    when the current file is torn or corrupt, so a crash mid-write loses
    at most one checkpoint interval. *)

type header = {
  kind : string;  (** e.g. ["session"], ["stats"], ["outcome"] *)
  meta : (string * string) list;
      (** identity of the run that wrote the checkpoint (trace digest,
          config digest, bench name, ...) — validated on resume *)
  event_index : int;  (** events replayed when the snapshot was taken *)
}

val save : path:string -> header -> payload:string -> unit
(** Atomic write with bounded retry; an existing file at [path] is
    rotated to [path ^ ".prev"] first.  After a successful write the
    after-save hook runs (see {!set_after_save}). *)

val load : path:string -> (header * string * [ `Current | `Previous ], string) result
(** Read and CRC-validate [path]; on any failure, fall back to
    [path ^ ".prev"].  The third component says which copy was used. *)

val load_file : string -> (header * string, string) result
(** Read and validate exactly one file (no fallback). *)

val validate : path:string -> (header, string) result
(** Header-only validation of one file: magic, version, header CRC,
    payload length and payload CRC.  Used by [resume --check]. *)

val check_meta :
  header -> kind:string -> meta:(string * string) list -> (unit, string) result
(** Refuse a checkpoint whose kind differs or whose metadata lacks (or
    contradicts) any of the expected key/value pairs. *)

val encode : header -> payload:string -> string

val decode : string -> (header * string, string) result

val prev_path : string -> string

(** {1 After-save hook}

    The crash campaign registers a hook that SIGKILLs the process after
    its k-th checkpoint write, which is how kill points land exactly on
    save boundaries. *)

val saves : unit -> int
(** Number of successful {!save}s in this process. *)

val set_after_save : (int -> unit) -> unit
(** [f n] runs after the [n]-th successful save (1-based). *)

val reset_saves : unit -> unit

val default_throttle_ms : float
(** Default minimum wall-clock spacing between periodic checkpoint
    saves (100 ms).  A save costs a few milliseconds end to end, so
    throttling bounds steady-state checkpointing overhead at roughly
    [save_cost / throttle] — a few percent — independent of segment
    size and replay speed. *)

(** {1 Resource guardrails}

    Checked at segment boundaries by the durable runner; a breach
    flushes a final checkpoint and exits with code 3. *)

type guardrails = {
  deadline_s : float option;  (** wall-clock budget for the run *)
  max_rss_mb : int option;  (** resident-set ceiling, megabytes *)
}

val no_guardrails : guardrails

exception Breach of string

type monitor

val start : guardrails -> monitor
(** Capture the start time; {!check} measures elapsed time from here. *)

val check : monitor -> unit
(** Raise {!Breach} when a limit is exceeded.  RSS comes from
    [/proc/self/status]; on systems without it the RSS guardrail is
    inert. *)

val rss_mb : unit -> int option
