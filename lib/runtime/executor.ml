module Allocator = Prefix_heap.Allocator
module Trace = Prefix_trace.Trace
module Event = Prefix_trace.Event
module Packed = Prefix_trace.Packed
module Stream = Prefix_trace.Stream
module Cache = Prefix_cachesim.Cache
module Hierarchy = Prefix_cachesim.Hierarchy
module Cycles = Prefix_cachesim.Cycles
module Heatmap = Prefix_cachesim.Heatmap
module Obs = Prefix_obs.Control
module Span = Prefix_obs.Span
module Metric = Prefix_obs.Metric
module Recorder = Prefix_obs.Recorder
module Log = (val Logs.src_log Prefix_obs.Log.executor)

type config = {
  hierarchy : Hierarchy.config;
  cycle_params : Cycles.params;
  costs : Costs.t;
}

let default_config =
  { hierarchy = Hierarchy.scaled_config;
    cycle_params = Cycles.default_params;
    costs = Costs.default }

type recovery = {
  double_allocs : int;
  unknown_accesses : int;
  unknown_frees : int;
  unknown_reallocs : int;
  invalid_sizes : int;
  policy_failures : int;
}

let no_recovery =
  { double_allocs = 0;
    unknown_accesses = 0;
    unknown_frees = 0;
    unknown_reallocs = 0;
    invalid_sizes = 0;
    policy_failures = 0 }

let recovery_total r =
  r.double_allocs + r.unknown_accesses + r.unknown_frees + r.unknown_reallocs
  + r.invalid_sizes + r.policy_failures

let pp_recovery ppf r =
  Format.fprintf ppf
    "double-allocs %d, unknown accesses %d, unknown frees %d, unknown reallocs %d, \
     invalid sizes %d, policy failures %d"
    r.double_allocs r.unknown_accesses r.unknown_frees r.unknown_reallocs r.invalid_sizes
    r.policy_failures

type outcome = {
  metrics : Metrics.t;
  heatmap : Heatmap.t option;
  attribution : Attribution.t option;
  recovery : recovery;
}

(* Per-thread private L1 + TLBs, shared LLC. *)
type mem_system = {
  cfg : Hierarchy.config;
  llc : Cache.t;
  mutable l1s : Cache.t array; (* indexed by dense thread index *)
  mutable l1_tlbs : Cache.t array;
  mutable l2_tlbs : Cache.t array;
  thread_index : (int, int) Hashtbl.t;
}

let mem_create cfg =
  { cfg;
    llc =
      Cache.create ~name:"LLC" ~size_bytes:cfg.Hierarchy.llc_size ~assoc:cfg.llc_assoc
        ~line_bytes:cfg.line_bytes ();
    l1s = [||];
    l1_tlbs = [||];
    l2_tlbs = [||];
    thread_index = Hashtbl.create 4 }

let thread_slot m thread =
  match Hashtbl.find_opt m.thread_index thread with
  | Some i -> i
  | None ->
    let i = Array.length m.l1s in
    Hashtbl.replace m.thread_index thread i;
    let cfg = m.cfg in
    m.l1s <-
      Array.append m.l1s
        [| Cache.create ~name:"L1D" ~size_bytes:cfg.l1_size ~assoc:cfg.l1_assoc
             ~line_bytes:cfg.line_bytes () |];
    m.l1_tlbs <-
      Array.append m.l1_tlbs
        [| Cache.create_entries ~name:"L1TLB" ~entries:cfg.l1_tlb_entries
             ~assoc:cfg.l1_tlb_assoc ~page_bytes:cfg.page_bytes () |];
    m.l2_tlbs <-
      Array.append m.l2_tlbs
        [| Cache.create_entries ~name:"L2TLB" ~entries:cfg.l2_tlb_entries
             ~assoc:cfg.l2_tlb_assoc ~page_bytes:cfg.page_bytes () |];
    i

(* Returns (l1_miss, llc_miss, tlb1_miss) for attribution. *)
let mem_access m thread ~write addr =
  let i = thread_slot m thread in
  let l1_hit = Cache.access ~write m.l1s.(i) addr in
  let llc_miss = if l1_hit then false else not (Cache.access ~write m.llc addr) in
  let tlb1_hit = Cache.access m.l1_tlbs.(i) addr in
  if not tlb1_hit then ignore (Cache.access m.l2_tlbs.(i) addr);
  (not l1_hit, llc_miss, not tlb1_hit)

let mem_counters m : Hierarchy.counters =
  let sum f arr = Array.fold_left (fun acc c -> acc + f c) 0 arr in
  { refs = sum Cache.accesses m.l1s;
    l1_misses = sum Cache.misses m.l1s;
    llc_misses = Cache.misses m.llc;
    l1_tlb_misses = sum Cache.misses m.l1_tlbs;
    l2_tlb_misses = sum Cache.misses m.l2_tlbs;
    writebacks = Cache.writebacks m.llc }

let record_metrics ~(p : Policy.t) heap ~events counters ~mem_refs ~elapsed_ns =
  Metric.add (Metric.counter "executor.events_replayed") events;
  Metric.add (Metric.counter "executor.mem_refs") mem_refs;
  Metric.add (Metric.counter "executor.l1_misses") counters.Hierarchy.l1_misses;
  Metric.add (Metric.counter "executor.llc_misses") counters.Hierarchy.llc_misses;
  Metric.add (Metric.counter "executor.l1_tlb_misses") counters.Hierarchy.l1_tlb_misses;
  Metric.add (Metric.counter "executor.l2_tlb_misses") counters.Hierarchy.l2_tlb_misses;
  Metric.add (Metric.counter "executor.prealloc_hits") p.Policy.stats.calls_avoided;
  Metric.add (Metric.counter "executor.recycle_evictions") p.Policy.stats.recycle_evictions;
  Metric.set_max (Metric.gauge "executor.heap_peak_bytes")
    (float_of_int (Allocator.peak_bytes heap));
  let secs = Int64.to_float elapsed_ns /. 1e9 in
  let rate = if secs > 0. then float_of_int events /. secs else 0. in
  Metric.set (Metric.gauge "executor.events_per_sec") rate;
  Log.info (fun m ->
      m "%s: %d events in %.1f ms (%.0f events/s), %d prealloc hits, %d evictions"
        p.Policy.name events (secs *. 1e3) rate
        p.Policy.stats.calls_avoided p.Policy.stats.recycle_evictions)

(* Shared epilogue: recovery logging/metrics + the outcome record. *)
let finish_run ~config ~(p : Policy.t) ~lenient ~obs_on ~start_ns ~heap ~mem ~events
    ~instructions_base ~mem_refs ~heatmap ~attribution ~recovery =
  if lenient && recovery_total recovery > 0 then
    Log.warn (fun m ->
        m "%s: lenient replay recovered from %d anomalies (%a)" p.Policy.name
          (recovery_total recovery) pp_recovery recovery);
  let peak = Allocator.peak_bytes heap in
  let extent = Allocator.heap_extent heap in
  p.Policy.finish ();
  let counters = mem_counters mem in
  if obs_on then begin
    record_metrics ~p heap ~events counters ~mem_refs
      ~elapsed_ns:(Int64.sub (Prefix_obs.Clock.now_ns ()) start_ns);
    Metric.add (Metric.counter "executor.recovered.double_alloc") recovery.double_allocs;
    Metric.add (Metric.counter "executor.recovered.unknown_access") recovery.unknown_accesses;
    Metric.add (Metric.counter "executor.recovered.unknown_free") recovery.unknown_frees;
    Metric.add (Metric.counter "executor.recovered.unknown_realloc") recovery.unknown_reallocs;
    Metric.add (Metric.counter "executor.recovered.invalid_size") recovery.invalid_sizes;
    Metric.add (Metric.counter "executor.recovered.policy_failure") recovery.policy_failures
  end;
  let instructions = instructions_base + p.Policy.stats.mgmt_instrs in
  let threads = max 1 (Array.length mem.l1s) in
  let est = Cycles.estimate ~params:config.cycle_params ~instructions counters in
  (* Perfectly-parallel wall-clock model across threads. *)
  let est =
    if threads = 1 then est
    else
      { est with
        total_cycles = est.total_cycles /. float_of_int threads;
        compute_cycles = est.compute_cycles /. float_of_int threads;
        memory_stall_cycles = est.memory_stall_cycles /. float_of_int threads }
  in
  let rate num den = if den = 0 then 0. else float_of_int num /. float_of_int den in
  let metrics =
    { Metrics.policy_name = p.Policy.name;
      instructions;
      mem_refs;
      cycles = est;
      counters;
      l1_miss_rate = rate counters.l1_misses counters.refs;
      llc_miss_rate = rate counters.llc_misses counters.refs;
      l1_tlb_miss_rate = rate counters.l1_tlb_misses counters.refs;
      l2_tlb_miss_rate = rate counters.l2_tlb_misses counters.refs;
      backend_stall_pct = est.backend_stall_pct;
      peak_bytes = peak;
      heap_extent = extent;
      malloc_calls = Allocator.malloc_calls heap;
      free_calls = Allocator.free_calls heap;
      realloc_calls = Allocator.realloc_calls heap;
      calls_avoided = p.Policy.stats.calls_avoided;
      mgmt_instrs = p.Policy.stats.mgmt_instrs;
      region_objects = p.Policy.stats.region_objects;
      region_hot_objects = p.Policy.stats.region_hot_objects;
      region_hds_objects = p.Policy.stats.region_hds_objects;
      threads }
  in
  { metrics; heatmap; attribution; recovery }

(* ---- dense object table ----------------------------------------------

   The replay's per-object state (address, size, and — under
   attribution — allocation site) lives in flat arrays indexed by
   object id: workload object ids are dense small integers, so lookup
   is one bounds check and one load instead of a Hashtbl probe per
   event.  [not_live] marks dead/unseen slots.  Negative ids (possible
   only in hand-built traces; generators and the sanitizer never emit
   them) fall back to a Hashtbl so semantics match the boxed path
   exactly. *)

(* Differential/bench knob for the widened batched-probe fast path in
   access runs.  Outcomes are identical either way (the batch is an
   accounting-equivalent rewrite of per-event MRU hits); turning it off
   recovers the strictly per-event probe loop so the pipeline benchmark
   can time the pre-widening replay as its baseline leg. *)
let probe_widening = ref true

let not_live = min_int

type otbl = {
  mutable addrs : int array; (* not_live when the id is not live *)
  mutable sizes : int array;
  mutable sites : int array; (* written only under attribution *)
  neg : (int, int * int * int) Hashtbl.t; (* obj < 0: addr, size, site *)
}

let ot_create () =
  { addrs = Array.make 1024 not_live;
    sizes = Array.make 1024 0;
    sites = Array.make 1024 0;
    neg = Hashtbl.create 8 }

let ot_grow t obj =
  let cap = Array.length t.addrs in
  let ncap = ref cap in
  while obj >= !ncap do
    ncap := !ncap * 2
  done;
  let grow a fill =
    let b = Array.make !ncap fill in
    Array.blit a 0 b 0 cap;
    b
  in
  t.addrs <- grow t.addrs not_live;
  t.sizes <- grow t.sizes 0;
  t.sites <- grow t.sites 0

(* Address of a live object, or [not_live]. *)
let[@inline] ot_addr t obj =
  if obj >= 0 then
    if obj < Array.length t.addrs then Array.unsafe_get t.addrs obj else not_live
  else match Hashtbl.find_opt t.neg obj with Some (a, _, _) -> a | None -> not_live

let[@inline] ot_size t obj =
  if obj >= 0 then Array.unsafe_get t.sizes obj
  else match Hashtbl.find_opt t.neg obj with Some (_, s, _) -> s | None -> 0

let[@inline] ot_site t obj =
  if obj >= 0 then
    if obj < Array.length t.sites then Array.unsafe_get t.sites obj else 0
  else match Hashtbl.find_opt t.neg obj with Some (_, _, s) -> s | None -> 0

let ot_set t obj ~addr ~size =
  if obj >= 0 then begin
    if obj >= Array.length t.addrs then ot_grow t obj;
    Array.unsafe_set t.addrs obj addr;
    Array.unsafe_set t.sizes obj size
  end
  else
    let site = match Hashtbl.find_opt t.neg obj with Some (_, _, s) -> s | None -> 0 in
    Hashtbl.replace t.neg obj (addr, size, site)

let ot_set_site t obj site =
  if obj >= 0 then begin
    if obj >= Array.length t.sites then ot_grow t obj;
    Array.unsafe_set t.sites obj site
  end
  else
    let addr, size =
      match Hashtbl.find_opt t.neg obj with
      | Some (a, s, _) -> (a, s)
      | None -> (not_live, 0)
    in
    Hashtbl.replace t.neg obj (addr, size, site)

let ot_remove t obj =
  if obj >= 0 then begin
    if obj < Array.length t.addrs then Array.unsafe_set t.addrs obj not_live
  end
  else
    let site = ot_site t obj in
    Hashtbl.replace t.neg obj (not_live, 0, site)

(* ---- packed fast path ------------------------------------------------

   The replay loop is written against a [session]: all state that must
   survive a segment boundary (heap, policy, caches, object table,
   thread memo, counters) lives in the session, and [replay_segment]
   advances it by one packed segment whose first event has global index
   [base].  [run_packed] is then a session over a single segment and
   [run_stream] the same session folded over {!Stream.iter_segments} —
   by construction the two observe identical event sequences and global
   indices, which is what makes streamed outcomes exactly equal to
   materialized ones. *)

type session = {
  ss_config : config;
  ss_p : Policy.t;
  ss_heap : Allocator.t;
  ss_lenient : bool;
  ss_obs_on : bool;
  ss_start_ns : int64;
  ss_observe_alloc : int -> unit;
  ss_mem : mem_system;
  ss_heatmap : Heatmap.t option;
  ss_heatmap_pred : (int -> bool) option;
  ss_attribute : bool;
  ss_attribution : Attribution.t option;
  ss_ot : otbl;
  mutable ss_mem_refs : int;
  mutable ss_events : int;
  mutable ss_instrs : int;
  (* Lenient-mode recovery tallies.  In strict mode these stay zero —
     the first anomaly raises instead. *)
  mutable ss_double : int;
  mutable ss_access : int;
  mutable ss_free : int;
  mutable ss_realloc : int;
  mutable ss_size : int;
  mutable ss_policy_fail : int;
  (* Most traces run long single-thread streaks, so the dense cache
     slot of the previous event's thread is memoized and the
     [thread_slot] Hashtbl probe only runs when the thread changes. *)
  mutable ss_last_thread : int;
  mutable ss_last_slot : int;
  (* Flight-recorder cadence.  [ss_next_tick] is the next *global*
     event index at which to record a telemetry sample; [max_int] when
     the recorder is off, so the hot loop pays one integer compare per
     event either way.  Gating on the global index means streamed and
     materialized replays (whatever the segment size) tick at identical
     event boundaries and record identical event-derived values. *)
  ss_tick_every : int;
  mutable ss_next_tick : int;
  mutable ss_live : int; (* live object count, for the live_objects gauge *)
}

(* Top-level (not locally closed-over) so a serialized session can swap
   it in for the histogram-capturing observer below: Marshal refuses
   the histogram's internal mutex. *)
let ignore_alloc_size (_ : int) = ()

let mk_observe_alloc obs_on =
  if obs_on then begin
    let h = Metric.histogram ~lo:0. ~hi:4096. ~buckets:32 "executor.alloc_bytes" in
    fun size -> Metric.observe h (float_of_int size)
  end
  else ignore_alloc_size

let session_create ~config ~mode ~heatmap_objs ~attribute ~heap ~p =
  let obs_on = Obs.is_on () in
  let rec_on = Recorder.enabled () in
  let observe_alloc = mk_observe_alloc obs_on in
  { ss_config = config;
    ss_p = p;
    ss_heap = heap;
    ss_lenient = mode = Policy.Lenient;
    ss_obs_on = obs_on;
    ss_start_ns = (if obs_on || rec_on then Prefix_obs.Clock.now_ns () else 0L);
    ss_observe_alloc = observe_alloc;
    ss_mem = mem_create config.hierarchy;
    ss_heatmap =
      Option.map
        (fun _ -> Heatmap.create ~time_buckets:72 ~addr_buckets:24 ())
        heatmap_objs;
    ss_heatmap_pred = heatmap_objs;
    ss_attribute = attribute;
    ss_attribution = (if attribute then Some (Attribution.create ()) else None);
    ss_ot = ot_create ();
    ss_mem_refs = 0;
    ss_events = 0;
    ss_instrs = 0;
    ss_double = 0;
    ss_access = 0;
    ss_free = 0;
    ss_realloc = 0;
    ss_size = 0;
    ss_policy_fail = 0;
    ss_last_thread = min_int;
    ss_last_slot = 0;
    ss_tick_every = (if rec_on then Recorder.interval_events () else max_int);
    ss_next_tick = (if rec_on then 0 else max_int);
    ss_live = 0 }

(* One telemetry sample: publish the replay-derived gauges, then let
   the {!Recorder} snapshot the whole registry into its timeline.
   Replaces the PR 1 periodic [Span.counter] snapshots — the recorder
   is now the single sampling mechanism (bounded memory, exportable as
   OpenMetrics / CSV / JSON / Chrome counter tracks). *)
let session_tick st ~gindex =
  let c = mem_counters st.ss_mem in
  let hit_rate =
    if c.Hierarchy.refs = 0 then 1.
    else 1. -. (float_of_int c.l1_misses /. float_of_int c.refs)
  in
  let recoveries =
    st.ss_double + st.ss_access + st.ss_free + st.ss_realloc + st.ss_size
    + st.ss_policy_fail
  in
  Metric.set (Metric.gauge "executor.live_objects") (float_of_int st.ss_live);
  Metric.set (Metric.gauge "executor.heap_live_bytes")
    (float_of_int (Allocator.live_bytes st.ss_heap));
  Metric.set (Metric.gauge "executor.cache_hit_rate") hit_rate;
  Metric.set (Metric.gauge "executor.region_peak_bytes")
    (float_of_int st.ss_p.Policy.stats.region_peak_bytes);
  Metric.set (Metric.gauge "executor.recoveries") (float_of_int recoveries);
  Recorder.tick ~label:("replay:" ^ st.ss_p.Policy.name) ~events:gindex ();
  st.ss_next_tick <- gindex + st.ss_tick_every

let replay_segment st ~base packed =
  let seg_events = Packed.length packed in
  let seg_start_ns = if Recorder.enabled () then Prefix_obs.Clock.now_ns () else 0L in
  let p = st.ss_p in
  let heap = st.ss_heap in
  let mem = st.ss_mem in
  let ot = st.ss_ot in
  let lenient = st.ss_lenient in
  let attribution = st.ss_attribution in
  (* A policy whose internal state was corrupted by a malformed event
     stream may itself raise; in lenient mode that becomes a counted
     failure and the event degrades to the fallback action. *)
  let guarded ~fallback f =
    if not lenient then f ()
    else
      try f ()
      with Invalid_argument _ | Failure _ | Not_found ->
        st.ss_policy_fail <- st.ss_policy_fail + 1;
        fallback ()
  in
  let[@inline] slot_of thread =
    if thread = st.ss_last_thread then st.ss_last_slot
    else begin
      let s = thread_slot mem thread in
      st.ss_last_thread <- thread;
      st.ss_last_slot <- s;
      s
    end
  in
  let tags = packed.Packed.tag in
  let objs = packed.Packed.obj in
  let fas = packed.Packed.fa in
  let fbs = packed.Packed.fb in
  let fcs = packed.Packed.fc in
  let threads = packed.Packed.thread in
  (* Tag-specialized dispatch: the segment is walked as maximal
     same-tag runs (real traces are extremely run-heavy — allocation
     bursts, long access streaks, compute stretches), so the per-event
     branch on the tag disappears from the hot path and each run body
     is a tight, branch-predictable loop over the relevant columns.
     Events are still processed strictly in order with the same
     per-event telemetry gating on the *global* index, so outcomes are
     bit-identical to the former event-at-a-time loop (and to
     [run_boxed]) — only the dispatch cost changes. *)
  let run_alloc run_start run_stop =
    for index = run_start to run_stop - 1 do
      let gindex = base + index in
      if gindex >= st.ss_next_tick then session_tick st ~gindex;
      let obj = Array.unsafe_get objs index in
      let site = Array.unsafe_get fas index in
      let size = Array.unsafe_get fbs index in
      let ctx = Array.unsafe_get fcs index in
      let size =
        if size <= 0 && lenient then begin
          (* Mutated/corrupted size: clamp to one granule. *)
          st.ss_size <- st.ss_size + 1;
          16
        end
        else size
      in
      let oaddr = ot_addr ot obj in
      if oaddr <> not_live then begin
        if not lenient then
          invalid_arg (Printf.sprintf "Executor: object %d allocated twice" obj);
        (* Colliding id: treat the old object as implicitly freed so
           policy and allocator state stay consistent. *)
        st.ss_double <- st.ss_double + 1;
        let osize = ot_size ot obj in
        guarded
          ~fallback:(fun () ->
            if Allocator.is_allocated heap oaddr then Allocator.free heap oaddr)
          (fun () -> p.Policy.dealloc ~obj ~addr:oaddr ~size:osize);
        ot_remove ot obj;
        st.ss_live <- st.ss_live - 1
      end;
      let addr =
        if lenient then
          guarded
            ~fallback:(fun () -> Allocator.malloc heap size)
            (fun () -> p.Policy.alloc ~obj ~site ~ctx ~size)
        else p.Policy.alloc ~obj ~site ~ctx ~size
      in
      st.ss_observe_alloc size;
      if st.ss_attribute then ot_set_site ot obj site;
      ot_set ot obj ~addr ~size;
      st.ss_live <- st.ss_live + 1
    done
  in
  (* Access runs come in two specializations: the common case (no
     attribution, no heatmap) drops both per-event option matches and
     is nothing but batched cache probes over the memoized thread slot;
     the diagnostic variant keeps the exact original body.  Probe order
     is identical in both — and to the boxed path. *)
  (* Widened batch: after an access's probes, its line is the MRU way
     of its L1 set and its page the MRU way of its TLB set (any probe
     outcome establishes that).  The object table cannot change inside
     an access run (allocs/frees are other tags), so a following event
     with the same object, same thread and an offset on the same L1
     line — which, lines being no larger than pages, is also the same
     page — would deterministically take both MRU fast paths as pure
     hits.  Whole such streaks are therefore accounted in one
     {!Cache.touch_run} step per cache instead of per-event probes:
     same counters, same replacement state, same report.  The batch
     never crosses the next telemetry tick, so samples still fire at
     the exact same global indices. *)
  let run_access_fast run_start run_stop =
    let index = ref run_start in
    (* Lookahead cursors, hoisted: allocating refs per access head costs
       more than the batching saves (non-flambda refs are boxed).  The
       knob is read once per run — it cannot change mid-replay. *)
    let widen = !probe_widening in
    let j = ref 0 in
    let writes = ref false in
    while !index < run_stop do
      let idx = !index in
      let gindex = base + idx in
      if gindex >= st.ss_next_tick then session_tick st ~gindex;
      let obj = Array.unsafe_get objs idx in
      let addr = ot_addr ot obj in
      if addr = not_live then begin
        if lenient then st.ss_access <- st.ss_access + 1
        else invalid_arg (Printf.sprintf "Executor: access to unknown object %d" obj);
        index := idx + 1
      end
      else begin
        st.ss_mem_refs <- st.ss_mem_refs + 1;
        let offset = Array.unsafe_get fas idx in
        let write = Array.unsafe_get fbs idx <> 0 in
        let thread = Array.unsafe_get threads idx in
        let a = addr + offset in
        let i = slot_of thread in
        let l1 = Array.unsafe_get mem.l1s i in
        let tlb1 = Array.unsafe_get mem.l1_tlbs i in
        let l1_hit = Cache.probe l1 ~write a in
        if not l1_hit then ignore (Cache.probe mem.llc ~write a);
        let tlb1_hit = Cache.probe tlb1 ~write:false a in
        if not tlb1_hit then
          ignore (Cache.probe (Array.unsafe_get mem.l2_tlbs i) ~write:false a);
        let n = idx + 1 in
        let shift = Cache.line_bits l1 in
        let line = a lsr shift in
        (* The batch setup below costs more than a typical access, so it
           only runs once a two-compare gate (next event touches the
           same object AND the same line) says a streak is real; on the
           overwhelmingly common no-streak path the widening adds a few
           integer ops and no memory traffic beyond two array loads. *)
        if
          widen && n < run_stop
          && Array.unsafe_get objs n = obj
          && (addr + Array.unsafe_get fas n) lsr shift = line
        then begin
          (* [ss_next_tick > gindex] here (the tick above advanced it),
             so [stop > idx] and the head itself is never re-batched. *)
          let stop = min run_stop (st.ss_next_tick - base) in
          j := n;
          writes := false;
          while
            !j < stop
            && Array.unsafe_get objs !j = obj
            && Array.unsafe_get threads !j = thread
            && (addr + Array.unsafe_get fas !j) lsr shift = line
          do
            if Array.unsafe_get fbs !j <> 0 then writes := true;
            incr j
          done;
          let k = !j - n in
          if k > 0 then begin
            st.ss_mem_refs <- st.ss_mem_refs + k;
            Cache.touch_run l1 ~write:!writes ~n:k a;
            Cache.touch_run tlb1 ~write:false ~n:k a
          end;
          index := !j
        end
        else index := n
      end
    done
  in
  let run_access_diag run_start run_stop =
    for index = run_start to run_stop - 1 do
      let gindex = base + index in
      if gindex >= st.ss_next_tick then session_tick st ~gindex;
      let obj = Array.unsafe_get objs index in
      let addr = ot_addr ot obj in
      if addr = not_live then begin
        if lenient then st.ss_access <- st.ss_access + 1
        else invalid_arg (Printf.sprintf "Executor: access to unknown object %d" obj)
      end
      else begin
        st.ss_mem_refs <- st.ss_mem_refs + 1;
        let offset = Array.unsafe_get fas index in
        let write = Array.unsafe_get fbs index <> 0 in
        let thread = Array.unsafe_get threads index in
        let a = addr + offset in
        (* Inlined mem_access over the memoized thread slot; identical
           probe order to the boxed path. *)
        let i = slot_of thread in
        let l1_hit = Cache.probe (Array.unsafe_get mem.l1s i) ~write a in
        let llc_miss = if l1_hit then false else not (Cache.probe mem.llc ~write a) in
        let tlb1_hit = Cache.probe (Array.unsafe_get mem.l1_tlbs i) ~write:false a in
        if not tlb1_hit then
          ignore (Cache.probe (Array.unsafe_get mem.l2_tlbs i) ~write:false a);
        (match attribution with
        | Some attr ->
          Attribution.record attr ~site:(ot_site ot obj) ~l1_miss:(not l1_hit) ~llc_miss
            ~tlb_miss:(not tlb1_hit)
        | None -> ());
        match (st.ss_heatmap, st.ss_heatmap_pred) with
        | Some hm, Some pred -> if pred obj then Heatmap.record hm ~time:gindex ~addr:a
        | _ -> ()
      end
    done
  in
  let access_plain = Option.is_none attribution && Option.is_none st.ss_heatmap in
  let run_free run_start run_stop =
    for index = run_start to run_stop - 1 do
      let gindex = base + index in
      if gindex >= st.ss_next_tick then session_tick st ~gindex;
      let obj = Array.unsafe_get objs index in
      let addr = ot_addr ot obj in
      if addr = not_live then begin
        if lenient then st.ss_free <- st.ss_free + 1
        else invalid_arg (Printf.sprintf "Executor: free of unknown object %d" obj)
      end
      else begin
        let size = ot_size ot obj in
        if lenient then
          guarded
            ~fallback:(fun () ->
              if Allocator.is_allocated heap addr then Allocator.free heap addr)
            (fun () -> p.Policy.dealloc ~obj ~addr ~size)
        else p.Policy.dealloc ~obj ~addr ~size;
        ot_remove ot obj;
        st.ss_live <- st.ss_live - 1
      end
    done
  in
  let run_realloc run_start run_stop =
    for index = run_start to run_stop - 1 do
      let gindex = base + index in
      if gindex >= st.ss_next_tick then session_tick st ~gindex;
      let obj = Array.unsafe_get objs index in
      let addr = ot_addr ot obj in
      if addr = not_live then begin
        if lenient then st.ss_realloc <- st.ss_realloc + 1
        else invalid_arg (Printf.sprintf "Executor: realloc of unknown object %d" obj)
      end
      else begin
        let new_size = Array.unsafe_get fas index in
        if new_size <= 0 && lenient then
          (* Corrupted size: keep the object as it is. *)
          st.ss_size <- st.ss_size + 1
        else begin
          let old_size = ot_size ot obj in
          let fresh =
            if lenient then
              guarded
                ~fallback:(fun () -> addr)
                (fun () -> p.Policy.realloc ~obj ~addr ~old_size ~new_size)
            else p.Policy.realloc ~obj ~addr ~old_size ~new_size
          in
          ot_set ot obj ~addr:fresh ~size:new_size
        end
      end
    done
  in
  (* Compute events touch no replay state, so a whole run collapses to
     the telemetry-cadence check: only when the next tick falls inside
     the run does the per-event gating loop execute (ticks must fire at
     the exact same global indices as before). *)
  let run_compute run_start run_stop =
    if base + run_stop - 1 >= st.ss_next_tick then
      for index = run_start to run_stop - 1 do
        let gindex = base + index in
        if gindex >= st.ss_next_tick then session_tick st ~gindex
      done
  in
  let i = ref 0 in
  while !i < seg_events do
    let run_start = !i in
    let tag = Array.unsafe_get tags run_start in
    let j = ref (run_start + 1) in
    while !j < seg_events && Array.unsafe_get tags !j = tag do incr j done;
    let run_stop = !j in
    (match tag with
    | 1 (* Access *) ->
      if access_plain then run_access_fast run_start run_stop
      else run_access_diag run_start run_stop
    | 4 (* Compute *) -> run_compute run_start run_stop
    | 0 (* Alloc *) -> run_alloc run_start run_stop
    | 2 (* Free *) -> run_free run_start run_stop
    | _ (* Realloc *) -> run_realloc run_start run_stop);
    i := run_stop
  done;
  st.ss_events <- st.ss_events + seg_events;
  st.ss_instrs <- st.ss_instrs + Packed.total_instructions packed;
  (* Segment boundary: publish the segment's throughput and give the
     recorder its wall-clock fallback chance (rows recorded here carry
     wall-dependent values, so they ride on [poll], never [tick] — the
     event-cadence samples above stay path-independent). *)
  if Recorder.enabled () then begin
    let secs =
      Int64.to_float (Int64.sub (Prefix_obs.Clock.now_ns ()) seg_start_ns) /. 1e9
    in
    if secs > 0. then
      Metric.set
        (Metric.gauge "executor.segment_events_per_sec")
        (float_of_int seg_events /. secs);
    Recorder.poll ~label:("replay:" ^ p.Policy.name) ~events:(base + seg_events) ()
  end

let session_finish st =
  (* Closing sample at the final event index, so the timeline always
     ends with the run's end state even when the event count is not a
     multiple of the cadence. *)
  if st.ss_next_tick <> max_int then session_tick st ~gindex:st.ss_events;
  let recovery =
    { double_allocs = st.ss_double;
      unknown_accesses = st.ss_access;
      unknown_frees = st.ss_free;
      unknown_reallocs = st.ss_realloc;
      invalid_sizes = st.ss_size;
      policy_failures = st.ss_policy_fail }
  in
  finish_run ~config:st.ss_config ~p:st.ss_p ~lenient:st.ss_lenient ~obs_on:st.ss_obs_on
    ~start_ns:st.ss_start_ns ~heap:st.ss_heap ~mem:st.ss_mem ~events:st.ss_events
    ~instructions_base:st.ss_instrs ~mem_refs:st.ss_mem_refs ~heatmap:st.ss_heatmap
    ~attribution:st.ss_attribution ~recovery

let session_events st = st.ss_events

(* ---- session serialization -------------------------------------------

   The whole cross-segment state — heap, policy closures (and through
   them regions, arenas, plan tables and recycle slots), cache arrays,
   dense object table, recovery counters, heatmap/attribution — is one
   strongly-connected heap structure rooted at the session record, so a
   single [Marshal] call with [Closures] snapshots it with all internal
   sharing preserved.  Two deliberate consequences:

   - [Closures] embeds MD5 digests of the closures' code, so a snapshot
     written by a different binary fails to deserialize cleanly instead
     of resuming with mismatched code — exactly the staleness backstop
     a checkpoint header cannot provide on its own.
   - [ss_observe_alloc] may capture a {!Metric.histogram} whose mutex
     Marshal rejects; it is swapped for a top-level no-op before
     serializing and rebuilt from [ss_obs_on] on restore. *)

let session_serialize st =
  Marshal.to_string { st with ss_observe_alloc = ignore_alloc_size } [ Marshal.Closures ]

let session_deserialize s =
  match (Marshal.from_string s 0 : session) with
  | st -> Ok { st with ss_observe_alloc = mk_observe_alloc st.ss_obs_on }
  | exception (Failure msg | Invalid_argument msg) ->
    Error ("session snapshot does not match this binary: " ^ msg)

let run_packed ?(config = default_config) ?(mode = Policy.Strict) ?heatmap_objs
    ?(attribute = false) ~policy packed =
  let events = Packed.length packed in
  let heap = Allocator.create () in
  let p = policy heap in
  Span.with_ ~cat:"executor"
    ~args:[ ("policy", p.Policy.name); ("events", string_of_int events) ]
    ("replay:" ^ p.Policy.name)
  @@ fun () ->
  let st = session_create ~config ~mode ~heatmap_objs ~attribute ~heap ~p in
  replay_segment st ~base:0 packed;
  session_finish st

let run_stream ?(config = default_config) ?(mode = Policy.Strict) ?heatmap_objs
    ?(attribute = false) ~policy stream =
  let heap = Allocator.create () in
  let p = policy heap in
  (* The event count is unknown until the stream is consumed, so the
     span advertises the mode instead. *)
  Span.with_ ~cat:"executor"
    ~args:[ ("policy", p.Policy.name); ("events", "streamed") ]
    ("replay:" ^ p.Policy.name)
  @@ fun () ->
  let st = session_create ~config ~mode ~heatmap_objs ~attribute ~heap ~p in
  Stream.iter_segments stream (fun ~base seg -> replay_segment st ~base seg);
  session_finish st

(* Decode-once fan-out: one pass over the stream feeds every policy's
   session in turn before the next segment is decoded, so N replays
   cost one decode instead of N.  Sessions are fully independent (own
   heap, policy, caches, object table, counters) and each one sees
   exactly the segment sequence and global indices [run_stream] would
   hand it, so every outcome is identical to its per-policy run — the
   only thing that changes is how many times the file is decoded. *)
let run_stream_many ?(config = default_config) ?(mode = Policy.Strict) ~policies
    stream =
  let states =
    List.map
      (fun policy ->
        let heap = Allocator.create () in
        let p = policy heap in
        session_create ~config ~mode ~heatmap_objs:None ~attribute:false ~heap ~p)
      policies
  in
  let names = String.concat "," (List.map (fun st -> st.ss_p.Policy.name) states) in
  Span.with_ ~cat:"executor"
    ~args:[ ("policies", names); ("events", "streamed") ]
    "replay:fanout"
  @@ fun () ->
  Stream.iter_segments stream (fun ~base seg ->
      List.iter (fun st -> replay_segment st ~base seg) states);
  List.map session_finish states

(* ---- boxed reference path --------------------------------------------

   The seed implementation, kept verbatim as the differential oracle:
   tests, the throughput benchmark and the CI smoke step replay traces
   through both paths and require identical metrics and recovery
   counters.  Functional changes belong in [run_packed]; this loop only
   changes when the replay semantics themselves do. *)

let run_boxed ?(config = default_config) ?(mode = Policy.Strict) ?heatmap_objs
    ?(attribute = false) ~policy trace =
  let heap = Allocator.create () in
  let p = policy heap in
  Span.with_ ~cat:"executor"
    ~args:[ ("policy", p.Policy.name); ("events", string_of_int (Trace.length trace)) ]
    ("replay:" ^ p.Policy.name)
  @@ fun () ->
  let lenient = mode = Policy.Lenient in
  let obs_on = Obs.is_on () in
  let start_ns = if obs_on then Prefix_obs.Clock.now_ns () else 0L in
  let alloc_hist =
    if obs_on then
      Some (Metric.histogram ~lo:0. ~hi:4096. ~buckets:32 "executor.alloc_bytes")
    else None
  in
  let mem = mem_create config.hierarchy in
  let heatmap =
    Option.map (fun _ -> Heatmap.create ~time_buckets:72 ~addr_buckets:24 ()) heatmap_objs
  in
  let attribution = if attribute then Some (Attribution.create ()) else None in
  let site_of : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let live : (int, int * int) Hashtbl.t = Hashtbl.create 4096 in
  let mem_refs = ref 0 in
  let r_double = ref 0 and r_access = ref 0 and r_free = ref 0 in
  let r_realloc = ref 0 and r_size = ref 0 and r_policy = ref 0 in
  let guarded ~fallback f =
    if not lenient then f ()
    else try f () with Invalid_argument _ | Failure _ | Not_found -> incr r_policy; fallback ()
  in
  (* No flight-recorder wiring here: the boxed loop is a frozen
     differential oracle, and telemetry must not perturb the replay it
     is compared against.  (The PR 1 periodic [Span.counter] snapshots
     that used to live in both loops were removed when the {!Recorder}
     became the single sampling mechanism.) *)
  Trace.iteri
    (fun index e ->
      match (e : Event.t) with
      | Compute _ -> ()
      | Alloc { obj; site; ctx; size; _ } ->
        let size =
          if size <= 0 && lenient then begin
            (* Mutated/corrupted size: clamp to one granule. *)
            incr r_size;
            16
          end
          else size
        in
        if Hashtbl.mem live obj then begin
          if not lenient then
            invalid_arg (Printf.sprintf "Executor: object %d allocated twice" obj);
          (* Colliding id: treat the old object as implicitly freed so
             policy and allocator state stay consistent. *)
          incr r_double;
          (match Hashtbl.find_opt live obj with
          | Some (oaddr, osize) ->
            guarded
              ~fallback:(fun () ->
                if Allocator.is_allocated heap oaddr then Allocator.free heap oaddr)
              (fun () -> p.Policy.dealloc ~obj ~addr:oaddr ~size:osize)
          | None -> ());
          Hashtbl.remove live obj
        end;
        let addr =
          guarded
            ~fallback:(fun () -> Allocator.malloc heap size)
            (fun () -> p.Policy.alloc ~obj ~site ~ctx ~size)
        in
        (match alloc_hist with
        | Some h -> Metric.observe h (float_of_int size)
        | None -> ());
        if attribute then Hashtbl.replace site_of obj site;
        Hashtbl.replace live obj (addr, size)
      | Access { obj; offset; thread; write } -> (
        match Hashtbl.find_opt live obj with
        | None ->
          if lenient then incr r_access
          else invalid_arg (Printf.sprintf "Executor: access to unknown object %d" obj)
        | Some (addr, _) ->
          incr mem_refs;
          let a = addr + offset in
          let l1_miss, llc_miss, tlb_miss = mem_access mem thread ~write a in
          (match attribution with
          | Some attr ->
            let site = Option.value ~default:0 (Hashtbl.find_opt site_of obj) in
            Attribution.record attr ~site ~l1_miss ~llc_miss ~tlb_miss
          | None -> ());
          (match (heatmap, heatmap_objs) with
          | Some hm, Some pred -> if pred obj then Heatmap.record hm ~time:index ~addr:a
          | _ -> ()))
      | Free { obj; _ } -> (
        match Hashtbl.find_opt live obj with
        | None ->
          if lenient then incr r_free
          else invalid_arg (Printf.sprintf "Executor: free of unknown object %d" obj)
        | Some (addr, size) ->
          guarded
            ~fallback:(fun () ->
              if Allocator.is_allocated heap addr then Allocator.free heap addr)
            (fun () -> p.Policy.dealloc ~obj ~addr ~size);
          Hashtbl.remove live obj)
      | Realloc { obj; new_size; _ } -> (
        match Hashtbl.find_opt live obj with
        | None ->
          if lenient then incr r_realloc
          else invalid_arg (Printf.sprintf "Executor: realloc of unknown object %d" obj)
        | Some (addr, old_size) ->
          if new_size <= 0 && lenient then
            (* Corrupted size: keep the object as it is. *)
            incr r_size
          else begin
            let fresh =
              guarded
                ~fallback:(fun () -> addr)
                (fun () -> p.Policy.realloc ~obj ~addr ~old_size ~new_size)
            in
            Hashtbl.replace live obj (fresh, new_size)
          end))
    trace;
  let recovery =
    { double_allocs = !r_double;
      unknown_accesses = !r_access;
      unknown_frees = !r_free;
      unknown_reallocs = !r_realloc;
      invalid_sizes = !r_size;
      policy_failures = !r_policy }
  in
  finish_run ~config ~p ~lenient ~obs_on ~start_ns ~heap ~mem
    ~events:(Trace.length trace)
    ~instructions_base:(Trace.total_instructions trace)
    ~mem_refs:!mem_refs ~heatmap ~attribution ~recovery

let run ?config ?mode ?heatmap_objs ?attribute ~policy trace =
  run_packed ?config ?mode ?heatmap_objs ?attribute ~policy (Packed.of_trace trace)

let run_baseline ?config ?mode trace =
  let costs =
    match config with Some c -> c.costs | None -> default_config.costs
  in
  run ?config ?mode ~policy:(fun heap -> Policy.baseline costs heap) trace
