type t = {
  time_buckets : int;
  addr_buckets : int;
  mutable points : (int * int) list; (* (time, addr), reversed; sampled *)
  mutable count : int;
  mutable min_addr : int;
  mutable max_addr : int;
  mutable min_time : int;
  mutable max_time : int;
  mutable stride : int; (* keep every [stride]-th point to bound memory *)
  mutable kept : int;
}

let max_points = 200_000

let create ~time_buckets ~addr_buckets () =
  if time_buckets <= 0 || addr_buckets <= 0 then invalid_arg "Heatmap.create: bad grid";
  { time_buckets;
    addr_buckets;
    points = [];
    count = 0;
    min_addr = max_int;
    max_addr = min_int;
    min_time = max_int;
    max_time = min_int;
    stride = 1;
    kept = 0 }

let record t ~time ~addr =
  t.count <- t.count + 1;
  if addr < t.min_addr then t.min_addr <- addr;
  if addr > t.max_addr then t.max_addr <- addr;
  if time < t.min_time then t.min_time <- time;
  if time > t.max_time then t.max_time <- time;
  if t.count mod t.stride = 0 then begin
    t.points <- (time, addr) :: t.points;
    t.kept <- t.kept + 1;
    if t.kept > max_points then begin
      (* Thin the sample: drop every other point and double the stride. *)
      let rec thin i acc = function
        | [] -> acc
        | p :: rest -> thin (i + 1) (if i mod 2 = 0 then p :: acc else acc) rest
      in
      t.points <- thin 0 [] t.points;
      (* Recompute rather than halve: the arithmetic shortcut drifted
         from the real list length after odd-length thins. *)
      t.kept <- List.length t.points;
      t.stride <- t.stride * 2
    end
  end

(* Inclusive span: a byte at the max address still occupies it, so a
   single-address heatmap has a 1-byte footprint, not 0. *)
let footprint_bytes t = if t.count = 0 then 0 else t.max_addr - t.min_addr + 1

let samples t = t.count
let kept_points t = t.kept
let stored_points t = List.length t.points

let render t =
  if t.count = 0 then "(no samples)\n"
  else begin
    let grid = Array.make_matrix t.addr_buckets t.time_buckets 0 in
    let tspan = max 1 (t.max_time - t.min_time) in
    let aspan = max 1 (t.max_addr - t.min_addr) in
    List.iter
      (fun (time, addr) ->
        let x = (time - t.min_time) * t.time_buckets / (tspan + 1) in
        let y = (addr - t.min_addr) * t.addr_buckets / (aspan + 1) in
        let x = min x (t.time_buckets - 1) and y = min y (t.addr_buckets - 1) in
        grid.(y).(x) <- grid.(y).(x) + 1)
      t.points;
    let maxc = Array.fold_left (fun m row -> Array.fold_left max m row) 1 grid in
    let shades = [| ' '; '.'; ':'; '+'; '*'; '#'; '@' |] in
    let buf = Buffer.create (t.addr_buckets * (t.time_buckets + 1)) in
    Buffer.add_string buf
      (Printf.sprintf "footprint = %d bytes over %d refs (addr on Y, time on X)\n"
         (footprint_bytes t) t.count);
    for y = t.addr_buckets - 1 downto 0 do
      for x = 0 to t.time_buckets - 1 do
        let c = grid.(y).(x) in
        let idx =
          if c = 0 then 0
          else 1 + int_of_float (Float.of_int (c * (Array.length shades - 2)) /. Float.of_int maxc)
        in
        Buffer.add_char buf shades.(min idx (Array.length shades - 1))
      done;
      Buffer.add_char buf '\n'
    done;
    Buffer.contents buf
  end
