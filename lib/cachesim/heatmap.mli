(** Access heatmap collector for Figure 9.

    Buckets (time, relative heap offset) pairs of data references into a
    fixed grid and renders an ASCII density plot, plus the footprint
    statistic the paper quotes (the heap span covered by the tracked
    accesses: ~10 MB baseline vs ~0.2 MB optimized for leela). *)

type t

val create : time_buckets:int -> addr_buckets:int -> unit -> t

val record : t -> time:int -> addr:int -> unit
(** Accumulate one reference; the grid auto-scales by tracking min/max
    and re-binning on render, so pass raw trace positions/addresses. *)

val footprint_bytes : t -> int
(** Inclusive span [max addr - min addr + 1] over all recorded
    references (0 if none) — a non-empty heatmap always has a positive
    footprint, even when every sample shares one address. *)

val samples : t -> int

val kept_points : t -> int
(** Size of the thinned sample the renderer will draw; always equals
    {!stored_points}. *)

val stored_points : t -> int
(** Actual length of the stored point list (bounded by thinning). *)

val render : t -> string
(** ASCII-art density grid, time on X, address on Y (low at bottom). *)
