(** Cycle and backend-stall model.

    The paper reports wall-clock times on real hardware; we substitute a
    standard analytic model on top of the simulated miss counts (see
    DESIGN.md).  Cycles are split into a compute component (issue-limited)
    and a memory-stall component (miss-penalty-limited), which also gives
    the Figure 13 "percentage of cycles stalled by the backend" à la the
    Top-Down method [Yasin 2014]. *)

type params = {
  issue_width : float;  (** instructions retired per cycle when not stalled *)
  l1_hit_cycles : float;  (** hidden by the pipeline; kept for completeness *)
  llc_hit_cycles : float;  (** penalty of an L1 miss that hits LLC *)
  dram_cycles : float;  (** penalty of an LLC miss *)
  l2_tlb_hit_cycles : float;  (** penalty of an L1-TLB miss that hits L2 TLB *)
  page_walk_cycles : float;  (** penalty of a full TLB miss *)
  mlp : float;  (** memory-level parallelism divisor applied to miss penalties *)
}

val default_params : params
(** Skylake-class server values: 4-wide issue, 14-cycle LLC-hit penalty,
    220-cycle DRAM, 8-cycle L2-TLB hit, 120-cycle walk, MLP 3.0. *)

type estimate = {
  total_cycles : float;
  compute_cycles : float;
  memory_stall_cycles : float;
  backend_stall_pct : float;  (** memory stalls as % of total cycles *)
}

val estimate : ?params:params -> instructions:int -> Hierarchy.counters -> estimate
(** Combine an instruction count with miss counters into a cycle
    estimate. *)

val time_seconds : ?ghz:float -> estimate -> float
(** Convenience: cycles at a clock rate (default 3.0 GHz). *)
