(** The full memory hierarchy of the paper's testbed (§3.2):

    - L1D: 32 KB, 8-way, 64 B lines
    - LLC: 40 MB, 20-way, 64 B lines
    - L1 TLB: 64 entries, 4-way; L2 TLB: 1536 entries, 6-way; 4 KiB pages

    Each data reference walks L1 → LLC → DRAM and the TLB in parallel.
    Latencies feed the {!Cycles} model. *)

type t

type config = {
  l1_size : int;
  l1_assoc : int;
  llc_size : int;
  llc_assoc : int;
  line_bytes : int;
  l1_tlb_entries : int;
  l1_tlb_assoc : int;
  l2_tlb_entries : int;
  l2_tlb_assoc : int;
  page_bytes : int;
}

val paper_config : config
(** The exact geometry of the paper's Intel machine. *)

val scaled_config : config
(** A proportionally scaled-down hierarchy (8 KB L1, 1 MB LLC, 16/96
    TLB entries) used by the experiment harness: the synthetic
    workloads replay millions — not hundreds of billions — of memory
    references, so cache capacities shrink by the same factor to keep
    the working-set-to-cache ratios of the paper's testbed (see
    DESIGN.md). *)

val create : ?config:config -> unit -> t

val access : ?write:bool -> t -> int -> unit
(** Simulate one data reference at a byte address; [write] marks the
    line dirty for write-back accounting. *)

type counters = {
  refs : int;  (** total data references *)
  l1_misses : int;
  llc_misses : int;
  l1_tlb_misses : int;
  l2_tlb_misses : int;  (** page walks *)
  writebacks : int;  (** dirty LLC lines written back to memory *)
}

val counters : t -> counters

val l1_miss_rate : t -> float
val llc_miss_rate : t -> float
(** LLC misses over {e all} references, as Figure 12 plots. *)

val l1_tlb_miss_rate : t -> float
val l2_tlb_miss_rate : t -> float

val flush : t -> unit
