type params = {
  issue_width : float;
  l1_hit_cycles : float;
  llc_hit_cycles : float;
  dram_cycles : float;
  l2_tlb_hit_cycles : float;
  page_walk_cycles : float;
  mlp : float;
}

let default_params =
  { issue_width = 4.0;
    l1_hit_cycles = 4.0;
    llc_hit_cycles = 14.0;
    dram_cycles = 220.0;
    l2_tlb_hit_cycles = 8.0;
    page_walk_cycles = 120.0;
    mlp = 3.0 }

type estimate = {
  total_cycles : float;
  compute_cycles : float;
  memory_stall_cycles : float;
  backend_stall_pct : float;
}

let estimate ?(params = default_params) ~instructions (c : Hierarchy.counters) =
  let f = float_of_int in
  let compute_cycles = f instructions /. params.issue_width in
  let llc_hits = c.l1_misses - c.llc_misses in
  let l2_tlb_hits = c.l1_tlb_misses - c.l2_tlb_misses in
  let raw_stall =
    (f llc_hits *. params.llc_hit_cycles)
    +. (f c.llc_misses *. params.dram_cycles)
    +. (f l2_tlb_hits *. params.l2_tlb_hit_cycles)
    +. (f c.l2_tlb_misses *. params.page_walk_cycles)
    (* Write-backs mostly overlap with execution; charge a small
       fraction of a DRAM access for memory-bandwidth pressure. *)
    +. (f c.writebacks *. params.dram_cycles *. 0.1)
  in
  let memory_stall_cycles = raw_stall /. params.mlp in
  let total_cycles = compute_cycles +. memory_stall_cycles in
  let backend_stall_pct =
    if total_cycles = 0. then 0. else memory_stall_cycles /. total_cycles *. 100.
  in
  { total_cycles; compute_cycles; memory_stall_cycles; backend_stall_pct }

let time_seconds ?(ghz = 3.0) e = e.total_cycles /. (ghz *. 1e9)
