type t = {
  name : string;
  sets : int;
  assoc : int;
  line_bits : int;
  set_mask : int;
  tags : int array; (* sets * assoc; -1 = invalid *)
  stamps : int array; (* LRU timestamps, parallel to tags *)
  dirty : bool array; (* written since fill, parallel to tags *)
  mru : int array; (* per set, the way touched by the set's last access *)
  mutable clock : int;
  mutable accesses : int;
  mutable misses : int;
  mutable writebacks : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let log2 n =
  let rec go acc n = if n <= 1 then acc else go (acc + 1) (n lsr 1) in
  go 0 n

let make ~name ~sets ~assoc ~line_bytes =
  if not (is_pow2 line_bytes) then invalid_arg "Cache: line size must be a power of two";
  if not (is_pow2 sets) then invalid_arg "Cache: set count must be a power of two";
  if assoc <= 0 then invalid_arg "Cache: associativity must be positive";
  { name;
    sets;
    assoc;
    line_bits = log2 line_bytes;
    set_mask = sets - 1;
    tags = Array.make (sets * assoc) (-1);
    stamps = Array.make (sets * assoc) 0;
    dirty = Array.make (sets * assoc) false;
    mru = Array.make sets 0;
    clock = 0;
    accesses = 0;
    misses = 0;
    writebacks = 0 }

let create ?(name = "cache") ~size_bytes ~assoc ~line_bytes () =
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Cache.create: size not divisible by assoc * line";
  make ~name ~sets:(size_bytes / (assoc * line_bytes)) ~assoc ~line_bytes

let create_entries ?(name = "tlb") ~entries ~assoc ~page_bytes () =
  if entries mod assoc <> 0 then invalid_arg "Cache.create_entries: entries not divisible by assoc";
  make ~name ~sets:(entries / assoc) ~assoc ~line_bytes:page_bytes

let name t = t.name
let sets t = t.sets
let assoc t = t.assoc
let line_bytes t = 1 lsl t.line_bits

(* [probe] takes [write] as a plain labelled argument so the replay
   fast path pays no option boxing per reference; [access] keeps the
   original optional-argument API. *)
let probe t ~write addr =
  t.accesses <- t.accesses + 1;
  t.clock <- t.clock + 1;
  let line = addr lsr t.line_bits in
  let set = line land t.set_mask in
  let tag = line in
  let base = set * t.assoc in
  (* MRU-first: the set's last-touched way hits for the common
     same-line streak without scanning the other ways.  A hit never
     changes replacement state beyond its own stamp, so counters and
     evictions are exactly those of the full scan below. *)
  let m = base + Array.unsafe_get t.mru set in
  if Array.unsafe_get t.tags m = tag then begin
    Array.unsafe_set t.stamps m t.clock;
    if write then Array.unsafe_set t.dirty m true;
    true
  end
  else begin
    let hit = ref false in
    let way = ref (-1) in
    (* Look for the tag; remember the LRU way in case of a miss. *)
    let lru_way = ref 0 in
    let lru_stamp = ref max_int in
    for w = 0 to t.assoc - 1 do
      let i = base + w in
      if t.tags.(i) = tag then begin
        hit := true;
        way := w
      end;
      if t.stamps.(i) < !lru_stamp then begin
        lru_stamp := t.stamps.(i);
        lru_way := w
      end
    done;
    if !hit then begin
      let i = base + !way in
      t.stamps.(i) <- t.clock;
      if write then t.dirty.(i) <- true;
      t.mru.(set) <- !way;
      true
    end
    else begin
      t.misses <- t.misses + 1;
      let i = base + !lru_way in
      (* Write-back policy: evicting a dirty line costs a memory write. *)
      if t.tags.(i) >= 0 && t.dirty.(i) then t.writebacks <- t.writebacks + 1;
      t.tags.(i) <- tag;
      t.stamps.(i) <- t.clock;
      t.dirty.(i) <- write;
      t.mru.(set) <- !lru_way;
      false
    end
  end

let access ?(write = false) t addr = probe t ~write addr

let line_bits t = t.line_bits

(* [touch_run t ~write ~n addr] accounts [n] consecutive references to
   [addr]'s line in one step.  Precondition: the line is resident and
   is its set's MRU way (any {!probe} of [addr] — MRU hit, scan hit or
   miss install — establishes exactly that).  Then each of the [n]
   repeats would take the MRU fast path above: bump two counters, stamp
   the MRU way, or the dirty bit.  Only the final stamp value and the
   or-of-writes dirty state are observable afterwards, so one bulk
   update is exactly equivalent to [n] probes — same counters, same
   replacement state, all hits. *)
let touch_run t ~write ~n addr =
  let line = addr lsr t.line_bits in
  let set = line land t.set_mask in
  let i = (set * t.assoc) + Array.unsafe_get t.mru set in
  if Array.unsafe_get t.tags i <> line then
    invalid_arg "Cache.touch_run: line is not the set's MRU way";
  t.accesses <- t.accesses + n;
  t.clock <- t.clock + n;
  Array.unsafe_set t.stamps i t.clock;
  if write then Array.unsafe_set t.dirty i true

let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0. else float_of_int t.misses /. float_of_int t.accesses

let writebacks t = t.writebacks

let reset_counters t =
  t.accesses <- 0;
  t.misses <- 0;
  t.writebacks <- 0

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  Array.fill t.dirty 0 (Array.length t.dirty) false;
  Array.fill t.mru 0 (Array.length t.mru) 0;
  t.clock <- 0;
  reset_counters t
