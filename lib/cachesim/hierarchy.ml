type config = {
  l1_size : int;
  l1_assoc : int;
  llc_size : int;
  llc_assoc : int;
  line_bytes : int;
  l1_tlb_entries : int;
  l1_tlb_assoc : int;
  l2_tlb_entries : int;
  l2_tlb_assoc : int;
  page_bytes : int;
}

let paper_config =
  { l1_size = 32 * 1024;
    l1_assoc = 8;
    llc_size = 40 * 1024 * 1024;
    llc_assoc = 20;
    line_bytes = 64;
    l1_tlb_entries = 64;
    l1_tlb_assoc = 4;
    l2_tlb_entries = 1536;
    l2_tlb_assoc = 6;
    page_bytes = 4096 }

let scaled_config =
  { l1_size = 8 * 1024;
    l1_assoc = 8;
    llc_size = 1024 * 1024;
    llc_assoc = 16;
    line_bytes = 64;
    l1_tlb_entries = 16;
    l1_tlb_assoc = 4;
    l2_tlb_entries = 96;
    l2_tlb_assoc = 6;
    page_bytes = 4096 }

type t = {
  l1 : Cache.t;
  llc : Cache.t;
  l1_tlb : Cache.t;
  l2_tlb : Cache.t;
}

let create ?(config = paper_config) () =
  { l1 =
      Cache.create ~name:"L1D" ~size_bytes:config.l1_size ~assoc:config.l1_assoc
        ~line_bytes:config.line_bytes ();
    llc =
      Cache.create ~name:"LLC" ~size_bytes:config.llc_size ~assoc:config.llc_assoc
        ~line_bytes:config.line_bytes ();
    l1_tlb =
      Cache.create_entries ~name:"L1TLB" ~entries:config.l1_tlb_entries
        ~assoc:config.l1_tlb_assoc ~page_bytes:config.page_bytes ();
    l2_tlb =
      Cache.create_entries ~name:"L2TLB" ~entries:config.l2_tlb_entries
        ~assoc:config.l2_tlb_assoc ~page_bytes:config.page_bytes () }

let access ?(write = false) t addr =
  if not (Cache.access ~write t.l1 addr) then ignore (Cache.access ~write t.llc addr);
  if not (Cache.access t.l1_tlb addr) then ignore (Cache.access t.l2_tlb addr)

type counters = {
  refs : int;
  l1_misses : int;
  llc_misses : int;
  l1_tlb_misses : int;
  l2_tlb_misses : int;
  writebacks : int;
}

let counters t =
  { refs = Cache.accesses t.l1;
    l1_misses = Cache.misses t.l1;
    llc_misses = Cache.misses t.llc;
    l1_tlb_misses = Cache.misses t.l1_tlb;
    l2_tlb_misses = Cache.misses t.l2_tlb;
    writebacks = Cache.writebacks t.llc }

let rate num den = if den = 0 then 0. else float_of_int num /. float_of_int den

let l1_miss_rate t = Cache.miss_rate t.l1
let llc_miss_rate t = rate (Cache.misses t.llc) (Cache.accesses t.l1)
let l1_tlb_miss_rate t = Cache.miss_rate t.l1_tlb
let l2_tlb_miss_rate t = rate (Cache.misses t.l2_tlb) (Cache.accesses t.l1_tlb)

let flush t =
  Cache.flush t.l1;
  Cache.flush t.llc;
  Cache.flush t.l1_tlb;
  Cache.flush t.l2_tlb
