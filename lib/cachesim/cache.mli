(** Set-associative cache with true-LRU replacement.

    One structure serves both the data caches and (with block size = page
    size) the TLBs.  Geometry matches the paper's testbed: 32 KB 8-way L1
    with 64 B lines and a 40 MB 20-way LLC (§3.2). *)

type t

val create : ?name:string -> size_bytes:int -> assoc:int -> line_bytes:int -> unit -> t
(** Raises [Invalid_argument] unless [line_bytes] is a power of two,
    [size_bytes] is divisible by [assoc * line_bytes] and the resulting
    set count is a power of two. *)

val create_entries : ?name:string -> entries:int -> assoc:int -> page_bytes:int -> unit -> t
(** TLB-style constructor: [entries] translation entries covering pages
    of [page_bytes]. *)

val name : t -> string
val sets : t -> int
val assoc : t -> int
val line_bytes : t -> int

val access : ?write:bool -> t -> int -> bool
(** [access t addr] simulates one reference; [true] = hit.  The line is
    installed (and the LRU way evicted) on a miss.  [write] marks the
    line dirty (write-back policy; default false).

    The common case — another reference to the set's most recently
    touched line — is served by an MRU-first probe that checks one way
    and exits early; only on an MRU mismatch does the full way scan
    (and, on a miss, LRU eviction) run.  Hit/miss/writeback counts and
    replacement decisions are identical to the plain scan. *)

val probe : t -> write:bool -> int -> bool
(** Exactly {!access} with [write] as a required labelled argument —
    the replay hot loop uses this to avoid boxing an option per
    memory reference. *)

val line_bits : t -> int
(** log2 of {!line_bytes} — the replay fast path uses it to detect
    same-line access runs without a division. *)

val touch_run : t -> write:bool -> n:int -> int -> unit
(** [touch_run t ~write ~n addr] accounts [n] further references to a
    line that the immediately preceding {!probe} of [addr] made its
    set's MRU way, in one step: [n] accesses, [n] clock ticks, one
    stamp, dirty |= [write] — bit-for-bit what [n] MRU-fast-path
    probes (all hits) would do.  Raises [Invalid_argument] if the MRU
    way does not hold [addr]'s line (precondition violated). *)

val accesses : t -> int
val misses : t -> int

val writebacks : t -> int
(** Dirty lines evicted so far. *)

val miss_rate : t -> float
(** misses / accesses; 0 before the first access. *)

val reset_counters : t -> unit
(** Zero the hit/miss counters but keep cache contents (for warmup). *)

val flush : t -> unit
(** Invalidate all lines and zero counters. *)
