(** The new context definition (§2.2.1): hot objects are identified by
    (static malloc site, dynamic allocation instance) pairs, and the set
    of hot instance ids of a site is compressed into one of three
    patterns checked at runtime:

    - [Fixed ids]: an explicit small set, e.g. the 1st, 3rd and 8th
      allocation of the site;
    - [Regular ids]: an arithmetic progression, e.g. every odd instance
      among the first fifteen;
    - [All ids]: every instance is hot — no check needed at all.

    Instance ids are 1-based, matching the paper's "ObjectID = Counter+1"
    instrumentation (Figure 4). *)

type pattern =
  | All of { upto : int option }
      (** Every instance; [upto = Some n] bounds it to the first [n]
          (everything the profile saw), [None] means genuinely
          unbounded (recycling sites). *)
  | Regular of { start : int; step : int; count : int }
      (** [start, start+step, ..., start+(count-1)*step]. *)
  | Fixed of int list
      (** Explicit sorted instance ids. *)

val infer : hot_instances:int list -> total_instances:int -> pattern
(** Categorise a site's hot instance ids (1-based, duplicates ignored).
    Picks the cheapest pattern: [All] when every profiled instance is
    hot, [Regular] for arithmetic progressions of length >= 3, [Fixed]
    otherwise.  Raises [Invalid_argument] on an empty set or ids outside
    [1, total_instances]. *)

val matches : pattern -> int -> bool
(** Runtime check: is instance id [i] hot under the pattern? *)

val cardinal : pattern -> int option
(** Number of hot instances the pattern denotes; [None] for unbounded
    [All]. *)

val instances : pattern -> int option -> int list
(** [instances p limit] enumerates the ids (up to [limit] for unbounded
    patterns). *)

val check_cost_instrs : pattern -> int
(** Instructions executed per allocation for the runtime check: 0 for
    [All] (Table 1: "no check needed"), small constants otherwise. *)

val kind_name : pattern -> string
(** ["all"], ["regular"] or ["fixed"] — Table 2's type column. *)

val pp : Format.formatter -> pattern -> unit
