type alloc = { pos : int; obj : int; hot : bool }

type site_allocs = { site : int; allocs : alloc list }

type group = {
  counter : int;
  sites : int list;
  pattern : Context.pattern;
  hot_assignments : (int * int) list;
  total : int;
}

let simulate sites =
  let merged =
    List.concat_map (fun s -> s.allocs) sites |> List.sort (fun a b -> compare a.pos b.pos)
  in
  List.mapi (fun i a -> (i + 1, a.obj, a.hot)) merged

(* A candidate grouping is viable if its hot ids still form a supported
   pattern under the shared numbering: All and Regular always qualify; a
   Fixed set qualifies when it is a single consecutive run (sites working
   "in tandem", like mcf's three graph allocations) or stays very small. *)
let viable ~max_fixed sites =
  let numbered = simulate sites in
  let hot_ids = List.filter_map (fun (id, _, hot) -> if hot then Some id else None) numbered in
  match hot_ids with
  | [] -> None
  | first :: _ -> (
    let total = List.length numbered in
    let pattern = Context.infer ~hot_instances:hot_ids ~total_instances:total in
    match pattern with
    | Context.Fixed ids ->
      let n = List.length ids in
      let last = List.nth ids (n - 1) in
      let consecutive = last - first + 1 = n in
      if consecutive || n <= max_fixed then Some pattern else None
    | _ -> Some pattern)

let build_group counter sites =
  let numbered = simulate sites in
  let hot_ids = List.filter_map (fun (id, _, hot) -> if hot then Some id else None) numbered in
  let total = List.length numbered in
  let pattern = Context.infer ~hot_instances:hot_ids ~total_instances:total in
  { counter;
    sites = List.map (fun s -> s.site) sites;
    pattern;
    hot_assignments =
      List.filter_map (fun (id, obj, hot) -> if hot then Some (id, obj) else None) numbered;
    total }

let share ?(max_fixed = 3) ?(enable = true) sites =
  List.iter
    (fun s ->
      if not (List.exists (fun a -> a.hot) s.allocs) then
        invalid_arg
          (Printf.sprintf "Counters.share: site %d allocates no hot object" s.site))
    sites;
  let first_pos s = match s.allocs with [] -> max_int | a :: _ -> a.pos in
  let sites = List.sort (fun a b -> compare (first_pos a) (first_pos b)) sites in
  if not enable then List.mapi (fun i s -> build_group i [ s ]) sites
  else begin
    (* groups: list of site lists, in creation order. *)
    let groups : site_allocs list list ref = ref [] in
    List.iter
      (fun s ->
        let rec try_join acc = function
          | [] -> groups := !groups @ [ [ s ] ]
          | g :: rest -> (
            match viable ~max_fixed (g @ [ s ]) with
            | Some _ -> groups := List.rev_append acc ((g @ [ s ]) :: rest)
            | None -> try_join (g :: acc) rest)
        in
        try_join [] !groups)
      sites;
    List.mapi build_group !groups
  end

let num_counters groups = List.length groups
