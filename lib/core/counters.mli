(** Per-site counters and counter sharing (§2.2.1).

    Each instrumented malloc site gets a counter whose value is the
    dynamic allocation instance.  Multiple sites that "work in tandem"
    may share one counter when the combined instance ids of their hot
    objects still follow a supported pattern — the paper finds sharing
    by simulating it over the allocation trace, which is exactly what
    {!share} does. *)

type alloc = {
  pos : int;  (** trace position of the Alloc event (for interleaving) *)
  obj : int;  (** dynamic object id *)
  hot : bool;  (** selected as hot in the profile *)
}

type site_allocs = { site : int; allocs : alloc list (* ascending [pos] *) }

type group = {
  counter : int;  (** counter id, dense from 0 *)
  sites : int list;  (** sites sharing this counter *)
  pattern : Context.pattern;  (** hot-id pattern under the shared numbering *)
  hot_assignments : (int * int) list;
      (** (shared instance id, object) for each hot allocation, ascending *)
  total : int;  (** total profiled allocations under this counter *)
}

val simulate : site_allocs list -> (int * int * bool) list
(** Merge the sites' allocations by trace position and number them with
    one shared counter: [(instance id, obj, hot)], ids 1-based. *)

val share : ?max_fixed:int -> ?enable:bool -> site_allocs list -> group list
(** Greedy sharing: sites are considered in order of first allocation;
    a site joins the first existing group for which the combined hot
    ids still form a supported pattern ([All], [Regular], or [Fixed]
    with at most [max_fixed] ids (default 3) or forming one consecutive run), otherwise it opens a
    new group.  [enable:false] (default [true]) skips sharing and
    returns one group per site, for the ablation benchmarks.

    Sites whose allocations contain no hot object are rejected with
    [Invalid_argument] — they should not be instrumented at all. *)

val num_counters : group list -> int
