type pattern =
  | All of { upto : int option }
  | Regular of { start : int; step : int; count : int }
  | Fixed of int list

let infer ~hot_instances ~total_instances =
  let ids = List.sort_uniq compare hot_instances in
  (match ids with [] -> invalid_arg "Context.infer: no hot instances" | _ -> ());
  List.iter
    (fun i ->
      if i < 1 || i > total_instances then
        invalid_arg "Context.infer: instance id out of range")
    ids;
  let n = List.length ids in
  if n = total_instances then All { upto = Some total_instances }
  else
    match ids with
    | a :: b :: _ when n >= 3 ->
      let step = b - a in
      let arithmetic =
        step > 0
        && fst
             (List.fold_left
                (fun (ok, prev) x -> (ok && x - prev = step, x))
                (true, a - step) ids)
      in
      (* A contiguous run (step 1) is reported as a fixed set, matching the
         paper's Table 2 labelling (mcf's {1,2,3} is "fixed ids"); Regular
         is reserved for genuinely strided progressions such as the odd
         instances. *)
      if arithmetic && step >= 2 then Regular { start = a; step; count = n } else Fixed ids
    | _ -> Fixed ids

let matches p i =
  match p with
  | All { upto = None } -> i >= 1
  | All { upto = Some n } -> i >= 1 && i <= n
  | Regular { start; step; count } ->
    i >= start && (i - start) mod step = 0 && (i - start) / step < count
  | Fixed ids -> List.mem i ids

let cardinal = function
  | All { upto } -> upto
  | Regular { count; _ } -> Some count
  | Fixed ids -> Some (List.length ids)

let instances p limit =
  match p with
  | All { upto = Some n } -> List.init n (fun i -> i + 1)
  | All { upto = None } ->
    let n = Option.value ~default:0 limit in
    List.init n (fun i -> i + 1)
  | Regular { start; step; count } -> List.init count (fun i -> start + (i * step))
  | Fixed ids -> ids

(* Rough x86 instruction counts for the inlined id check of Figure 4. *)
let check_cost_instrs = function
  | All _ -> 0 (* no check, the id is used for placement only *)
  | Regular _ -> 6 (* sub, mod/and, cmp, branch *)
  | Fixed ids -> 2 + min (List.length ids) 8 (* short cmp chain or table probe *)

let kind_name = function All _ -> "all" | Regular _ -> "regular" | Fixed _ -> "fixed"

let pp ppf = function
  | All { upto = None } -> Format.fprintf ppf "all"
  | All { upto = Some n } -> Format.fprintf ppf "all(1..%d)" n
  | Regular { start; step; count } ->
    Format.fprintf ppf "regular(start=%d,step=%d,count=%d)" start step count
  | Fixed ids ->
    Format.fprintf ppf "fixed{%a}"
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
         Format.pp_print_int)
      ids
