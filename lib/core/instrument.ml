type model = {
  site_base_bytes : int;
  fixed_id_bytes : int;
  regular_bytes : int;
  recycle_bytes : int;
  free_site_bytes : int;
  realloc_site_bytes : int;
  stub_bytes : int;
  table_bytes_per_slot : int;
}

let default_model =
  { site_base_bytes = 48;
    fixed_id_bytes = 10;
    regular_bytes = 24;
    recycle_bytes = 40;
    free_site_bytes = 24;
    realloc_site_bytes = 40;
    stub_bytes = 1024;
    table_bytes_per_slot = 16 }

let pattern_bytes model (cp : Plan.counter_plan) =
  match cp.recycle with
  | Some _ -> model.recycle_bytes
  | None -> (
    match cp.pattern with
    | Context.All _ -> 0
    | Context.Regular _ -> model.regular_bytes
    | Context.Fixed ids -> model.fixed_id_bytes * min 16 (List.length ids))

(* Placement tables are only materialised for Fixed id patterns; Regular
   and All patterns (uniform slot sizes) compute the offset from the
   instance id arithmetically, and recycling blocks need just the modulo
   base — so a benchmark with many thousands of uniformly-sized hot
   objects (health, ft) does not embed a giant table in the binary. *)
let table_bytes model (plan : Plan.t) =
  List.fold_left
    (fun acc (cp : Plan.counter_plan) ->
      match (cp.recycle, cp.pattern) with
      | Some _, _ -> acc + 16
      | None, Context.Fixed _ ->
        acc + (model.table_bytes_per_slot * List.length cp.placements)
      | None, _ -> acc + 16)
    0 plan.counters

let added_bytes ?(model = default_model) ~(plan : Plan.t) ~free_sites ~realloc_sites () =
  let site_bytes =
    List.fold_left
      (fun acc (_, c) ->
        let cp = Plan.counter_plan plan c in
        acc + model.site_base_bytes + pattern_bytes model cp)
      0 plan.site_counter
  in
  site_bytes
  + (free_sites * model.free_site_bytes)
  + (realloc_sites * model.realloc_site_bytes)
  + model.stub_bytes
  + table_bytes model plan

let optimized_size ?model ~baseline ~plan ~free_sites ~realloc_sites () =
  baseline + added_bytes ?model ~plan ~free_sites ~realloc_sites ()
