module Trace_stats = Prefix_trace.Trace_stats

type decision = { n_slots : int; slot_bytes : int }

type config = {
  min_total_allocs : int;
  max_live_ratio : float;
  headroom : float;
  max_slot_bytes : int;
}

let default_config =
  { min_total_allocs = 64;
    max_live_ratio = 0.25;
    headroom = 1.25;
    max_slot_bytes = 1024 * 1024 }

let max_live_combined stats sites =
  let site_set = Hashtbl.create (List.length sites) in
  List.iter (fun s -> Hashtbl.replace site_set s ()) sites;
  let events =
    Trace_stats.objects stats
    |> List.filter (fun (o : Trace_stats.obj_info) -> Hashtbl.mem site_set o.site)
    |> List.concat_map (fun (o : Trace_stats.obj_info) ->
           let fin = match o.free_index with Some i -> i | None -> max_int in
           [ (o.alloc_index, 1); (fin, -1) ])
    |> List.sort compare
  in
  let live = ref 0 and best = ref 0 in
  List.iter
    (fun (_, d) ->
      live := !live + d;
      if !live > !best then best := !live)
    events;
  !best

let analyze ?(config = default_config) stats ~sites =
  let objs =
    Trace_stats.objects stats
    |> List.filter (fun (o : Trace_stats.obj_info) -> List.mem o.site sites)
  in
  let total = List.length objs in
  if total < config.min_total_allocs then None
  else begin
    let max_live = max_live_combined stats sites in
    let slot_bytes =
      List.fold_left (fun m (o : Trace_stats.obj_info) -> max m (max o.size o.alloc_size)) 0 objs
    in
    let ratio = float_of_int max_live /. float_of_int total in
    if ratio > config.max_live_ratio || slot_bytes > config.max_slot_bytes || max_live = 0 then
      None
    else
      let n_slots = int_of_float (ceil (float_of_int max_live *. config.headroom)) in
      Some { n_slots = max n_slots 1; slot_bytes }
  end
