type variant = Hot | Hds | HdsHot

let variant_name = function
  | Hot -> "PreFix:Hot"
  | Hds -> "PreFix:HDS"
  | HdsHot -> "PreFix:HDS+Hot"

type recycle_block = {
  first_slot : int;
  n_slots : int;
  slot_bytes : int;
  assignment : (int * int) list;
}

type counter_plan = {
  counter : int;
  counter_sites : int list;
  pattern : Context.pattern;
  placements : (int * int) list;
  recycle : recycle_block option;
  required_ctx : int option;
}

type profile_summary = {
  hot_count : int;
  hds_count : int;
  heap_access_share : float;
  ohds_count : int;
  rhds_count : int;
}

type t = {
  variant : variant;
  slots : Offsets.slot list;
  region_bytes : int;
  site_counter : (int * int) list;
  counters : counter_plan list;
  placed_objects : int list;
  profile : profile_summary;
}

let counter_of_site t site = List.assoc_opt site t.site_counter

let counter_plan t c = List.find (fun cp -> cp.counter = c) t.counters

let num_sites t = List.length t.site_counter

let num_counters t = List.length t.counters

let context_kinds t =
  let kinds =
    List.map (fun cp -> Context.kind_name cp.pattern) t.counters |> List.sort_uniq compare
  in
  String.concat " & " kinds

let validate t =
  let n = List.length t.slots in
  let used = Hashtbl.create n in
  let ( let* ) r f = Result.bind r f in
  let* () =
    List.fold_left
      (fun acc cp ->
        let* () = acc in
        let* () =
          List.fold_left
            (fun acc (id, slot) ->
              let* () = acc in
              if slot < 0 || slot >= n then
                Error (Printf.sprintf "counter %d: slot %d out of range" cp.counter slot)
              else if Hashtbl.mem used slot then
                Error (Printf.sprintf "counter %d: slot %d assigned twice" cp.counter slot)
              else if id < 1 then
                Error (Printf.sprintf "counter %d: non-positive instance id" cp.counter)
              else begin
                Hashtbl.replace used slot ();
                Ok ()
              end)
            (Ok ()) cp.placements
        in
        match cp.recycle with
        | None -> Ok ()
        | Some r ->
          if r.first_slot < 0 || r.first_slot + r.n_slots > n then
            Error (Printf.sprintf "counter %d: recycle block out of range" cp.counter)
          else if cp.placements <> [] then
            Error (Printf.sprintf "counter %d: recycling and direct placements mixed" cp.counter)
          else begin
            for i = r.first_slot to r.first_slot + r.n_slots - 1 do
              Hashtbl.replace used i ()
            done;
            let seen_ids = Hashtbl.create 16 in
            List.fold_left
              (fun acc (id, rel) ->
                let* () = acc in
                if id < 1 then
                  Error
                    (Printf.sprintf "counter %d: non-positive recycle instance id" cp.counter)
                else if Hashtbl.mem seen_ids id then
                  Error
                    (Printf.sprintf "counter %d: recycle instance %d assigned twice" cp.counter
                       id)
                else if rel < 0 || rel >= r.n_slots then
                  Error
                    (Printf.sprintf "counter %d: recycle slot %d outside block of %d"
                       cp.counter rel r.n_slots)
                else begin
                  Hashtbl.replace seen_ids id ();
                  Ok ()
                end)
              (Ok ()) r.assignment
          end)
      (Ok ()) t.counters
  in
  let* () =
    List.fold_left
      (fun acc (site, c) ->
        let* () = acc in
        if List.exists (fun cp -> cp.counter = c) t.counters then Ok ()
        else Error (Printf.sprintf "site %d mapped to unknown counter %d" site c))
      (Ok ()) t.site_counter
  in
  Ok ()

let pp_summary ppf t =
  Format.fprintf ppf
    "@[<v>%s plan: %d slots (%d bytes), %d sites, %d counters [%s]@,\
     profile: %d hot objects (%d in HDS), %.1f%% of heap accesses@]"
    (variant_name t.variant) (List.length t.slots) t.region_bytes (num_sites t)
    (num_counters t) (context_kinds t) t.profile.hot_count t.profile.hds_count
    (t.profile.heap_access_share *. 100.)
