(** Lifetime-range analysis — the paper's second future-work item
    ("using several arenas for objects with different lifetime ranges",
    §4 Related Work / arena allocators).

    Objects are classified by the fraction of the profiled run they
    stay live.  The pipeline can optionally regroup the preallocated
    region so that objects of one lifetime class are contiguous: when a
    class dies, its slots free together, so the region's live part
    stays dense instead of developing dead holes between long-lived
    objects. *)

type class_ = Transient | Phase | Persistent
(** Live for <5%, <60%, or the rest of the trace, respectively. *)

val class_name : class_ -> string

val classify : Prefix_trace.Trace_stats.t -> trace_len:int -> int -> class_
(** Classify one object by its profiled [alloc, free) interval.
    Objects never freed are [Persistent]. *)

val partition :
  Prefix_trace.Trace_stats.t -> trace_len:int -> int list -> (class_ * int list) list
(** Split an object list into lifetime classes, preserving the input
    order within each class; classes are returned longest-lived first
    (the order used for region grouping, so transients sit at the end
    of the region where the arena can shrink).  Empty classes are
    omitted. *)

val regroup : Prefix_trace.Trace_stats.t -> trace_len:int -> int list -> int list
(** The flattened partition: the same objects, grouped by class. *)

val report : Prefix_trace.Trace_stats.t -> trace_len:int -> int list -> string
(** Human-readable class histogram with byte totals. *)
