(** Static code-size model for the BOLT-style transformation (Figure 14).

    We do not rewrite binaries; instead the cost of doing so is modelled
    from the plan: each instrumented malloc site grows by a counter
    update plus the pattern check and placement lookup, every free and
    realloc site gains a range check against the preallocated region,
    and a fixed runtime stub (region setup/teardown, mapping tables) is
    linked in once. *)

type model = {
  site_base_bytes : int;  (** counter inc + branch scaffolding per site *)
  fixed_id_bytes : int;  (** per explicit id in a [Fixed] pattern *)
  regular_bytes : int;  (** extra bytes for a [Regular] check *)
  recycle_bytes : int;  (** modulo + occupancy check for recycling sites *)
  free_site_bytes : int;  (** range check per free site *)
  realloc_site_bytes : int;  (** range + size check per realloc site *)
  stub_bytes : int;  (** one-time runtime support *)
  table_bytes_per_slot : int;  (** placement/occupancy table data *)
}

val default_model : model

val added_bytes :
  ?model:model -> plan:Plan.t -> free_sites:int -> realloc_sites:int -> unit -> int
(** Total bytes added to the binary by the transformation. *)

val optimized_size :
  ?model:model -> baseline:int -> plan:Plan.t -> free_sites:int -> realloc_sites:int -> unit -> int
(** [baseline + added_bytes], the Figure 14 "Best PreFix" bar. *)
