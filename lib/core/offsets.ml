type slot = { offset : int; size : int }

type t = {
  slots : slot list; (* reversed during construction? no — kept forward *)
  index : (int, int) Hashtbl.t; (* obj -> slot index *)
  total : int;
}

let align = 16

let round_up n = (n + align - 1) / align * align

let assign ~size_of order =
  let index = Hashtbl.create (List.length order) in
  let slots, total =
    List.fold_left
      (fun (acc, off) obj ->
        if Hashtbl.mem index obj then invalid_arg "Offsets.assign: duplicate object";
        let size = size_of obj in
        if size <= 0 then invalid_arg "Offsets.assign: non-positive size";
        let size = round_up size in
        Hashtbl.replace index obj (List.length acc);
        ({ offset = off; size } :: acc, off + size))
      ([], 0) order
  in
  { slots = List.rev slots; index; total }

let slots t = t.slots

let slot_of_obj t obj = Hashtbl.find_opt t.index obj

let region_bytes t = t.total

let truncate t ~max_bytes =
  let kept = ref [] in
  let total = ref 0 in
  List.iter
    (fun s ->
      if s.offset + s.size <= max_bytes then begin
        kept := s :: !kept;
        total := s.offset + s.size
      end)
    t.slots;
  let n_kept = List.length !kept in
  let index = Hashtbl.create n_kept in
  Hashtbl.iter (fun obj i -> if i < n_kept then Hashtbl.replace index obj i) t.index;
  { slots = List.rev !kept; index; total = !total }

let extend t ~count ~size =
  if count <= 0 || size <= 0 then invalid_arg "Offsets.extend: bad geometry";
  let size = round_up size in
  let first = List.length t.slots in
  let extra = List.init count (fun i -> { offset = t.total + (i * size); size }) in
  ({ t with slots = t.slots @ extra; total = t.total + (count * size) }, first)
