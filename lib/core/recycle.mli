(** Object recycling analysis (§2.4).

    Some sites allocate huge numbers of objects of which only a handful
    are simultaneously live (swissmap's "small group created, used,
    freed, repeated").  For such sites PreFix preallocates only [N]
    slots and maps instance ids onto them modulo [N] (Figure 7); a slot
    is reused only when its previous occupant is dead, so correctness
    never depends on the profile being right — overflow allocations
    simply fall back to malloc. *)

type decision = {
  n_slots : int;  (** slots preallocated for the group *)
  slot_bytes : int;  (** bytes per slot (max profiled object size) *)
}

type config = {
  min_total_allocs : int;
      (** recycling only pays off for sites with many allocations
          (default 64) *)
  max_live_ratio : float;
      (** max simultaneously-live / total must be below this
          (default 0.25) *)
  headroom : float;
      (** slot count = ceil(max_live * headroom) (default 1.25) *)
  max_slot_bytes : int;
      (** give up on groups of huge objects (default 1 MiB) *)
}

val default_config : config

val analyze :
  ?config:config ->
  Prefix_trace.Trace_stats.t ->
  sites:int list ->
  decision option
(** Decide whether the counter group owning [sites] should recycle:
    measures the combined maximum number of simultaneously live objects
    across those sites and compares it with the total allocation count
    per the thresholds above. *)

val max_live_combined : Prefix_trace.Trace_stats.t -> int list -> int
(** Peak simultaneously-live object count across a set of sites
    (interval sweep over the profiled lifetimes). *)
