(** Layout determination via object reordering — Algorithm 1 of the
    paper (§2.1).

    The input is OHDS: all observed hot data streams in descending order
    of memory references.  OHDS are not directly exploitable because an
    object may appear in several streams; the algorithm reconstitutes
    them into RHDS, in which every object belongs to at most one stream,
    by one of three actions per input stream:

    - {e unchanged inclusion} when it shares no object with RHDS so far;
    - {e merging} its remainder into exactly one existing RHDS that
      shares objects with it (an RHDS merges at most once — two streams
      can always be laid out around their shared objects, three cannot
      in general);
    - {e splitting}: leftover objects form a new stream if there are at
      least two, otherwise the lone object joins the hot singletons
      placed at the end of the preallocated region. *)

module Hds = Prefix_hds.Hds

type result = {
  rhds : Hds.t list;
      (** Reconstituted streams, in placement order; object-disjoint. *)
  singletons : int list;
      (** Hot objects left over from splitting, placed after all RHDS. *)
  coverage : coverage list;
      (** Per input stream: how much of it survived reconstitution
          (the right-hand column of Figure 2). *)
}

and coverage = Fully_covered | Partially_covered | Not_covered

val reconstitute : Hds.t list -> result
(** Run Algorithm 1.  The input must be sorted in descending order of
    memory references (as {!Prefix_hds.Detector.detect} returns it);
    [reconstitute] re-sorts defensively. *)

val placement_order : result -> int list
(** The final object order for the preallocated region: RHDS objects in
    stream order, then singletons.  Contains no duplicates. *)

val disjoint : Hds.t list -> bool
(** Whether no object appears in more than one stream — the exploitable
    property that RHDS guarantees; exposed for tests. *)
