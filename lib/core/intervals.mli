(** Per-object liveness intervals, extracted in one pass over the trace.

    An interval spans an object's first allocation to the last event
    that touches it (access, realloc, or free) — the precise-liveness
    quantity of Kanvar et al. (*Which Part of the Heap is Useful?*).
    Intervals drive two layout consumers: greedy interval-graph
    coloring of recycling slots ({!slot_assignment}, replacing the
    modulo-N map of Figure 7 when the plan opts in) and the
    block-structured bump-pointer policy's sizing
    ({!Prefix_blockpolicy}).

    Reused object ids (corrupted / lenient traces) produce one interval
    {e per incarnation}: a reuse closes the previous incarnation at the
    last event that touched it. *)

type interval = {
  iv_obj : int;  (** dynamic object id *)
  iv_site : int;  (** static malloc site *)
  iv_ctx : int;  (** call-stack signature of the allocation *)
  iv_size : int;  (** max byte size over the lifetime (alloc + reallocs) *)
  iv_incarnation : int;  (** 1-based incarnation of this id *)
  iv_start : int;  (** global trace index of the Alloc *)
  iv_stop : int;
      (** global index of the last access/realloc/free; equals
          [iv_start] for an object never touched again *)
  iv_freed : bool;  (** whether a Free ended the interval *)
}

type t

val of_trace : Prefix_trace.Trace.t -> t
val of_packed : Prefix_trace.Packed.t -> t

val of_stream : Prefix_trace.Stream.t -> t
(** Identical intervals to {!of_packed} on the materialized trace, one
    segment of trace memory at a time. *)

val intervals : t -> interval array
(** All intervals sorted by [iv_start]; treat as read-only. *)

val length : t -> int
(** Number of intervals (= allocation events seen). *)

val n_events : t -> int
(** Events the extraction consumed. *)

val max_overlap : t -> int
(** Maximum number of simultaneously-live intervals (by last-touch
    liveness) — the chromatic number of the interval graph, i.e. the
    slot count interval coloring needs. *)

val color : t -> int array * int
(** Greedy coloring over the start-sorted intervals: [(colors, n)]
    where [colors.(i)] is interval [i]'s color in [0, n).  Greedy by
    start order is optimal on interval graphs, so [n] =
    {!max_overlap}. *)

val slot_assignment :
  t -> sites:int list -> ?required_ctx:int -> n_slots:int -> unit -> (int * int) list
(** [(instance_id, relative_slot)] pairs for a recycling counter over
    [sites]: instances are numbered 1.. in trace order over exactly the
    allocations that advance the runtime counter (filtered by site and,
    when given, the hybrid [required_ctx] gate), and slots come from
    interval coloring instead of [(id-1) mod n].  Never-freed objects
    are pinned open (their runtime slot is never released), so no later
    instance shares their color.  Colors are reduced [mod n_slots] as a
    defensive clamp; coloring needs at most the max overlap, which the
    recycling sizing ({!Recycle.analyze}) already bounds by [n_slots].
    Raises [Invalid_argument] when [n_slots <= 0]. *)

val peak_live_bytes : t -> sites:int list option -> int
(** Peak concurrently-live bytes (16-byte-aligned sizes) over the given
    sites ([None] = all), pinning never-freed objects open — the
    footprint a block allocator must provision for. *)

(** {2 Online collector}

    Same shape as {!Prefix_trace.Trace_stats.collector}: plain
    marshal-safe data, [feed] segments in stream order, [finish] once.
    [of_stream] is exactly collector/feed/finish. *)

type collector

val collector : unit -> collector
val feed : collector -> base:int -> Prefix_trace.Packed.t -> unit
val events_fed : collector -> int
val finish : collector -> t
