(** The optimization plan: everything the instrumented binary needs at
    runtime (Figure 8's "optimized executable", as data).

    A plan maps each instrumented malloc site to a counter; each counter
    carries the hot-id pattern to check (Figure 4) and either a direct
    [instance id -> slot] placement table or a recycling block
    (Figure 7).  The slot list describes the preallocated region
    geometry. *)

type variant = Hot | Hds | HdsHot

val variant_name : variant -> string
(** ["PreFix:Hot"], ["PreFix:HDS"], ["PreFix:HDS+Hot"]. *)

type recycle_block = {
  first_slot : int;  (** index of the block's first slot *)
  n_slots : int;
  slot_bytes : int;
  assignment : (int * int) list;
      (** interval-colored slot map: (instance id under the counter,
          slot index {e relative to} [first_slot]).  Instances not
          listed — and the whole block when the list is empty — fall
          back to Figure 7's [(id-1) mod n_slots].  Built by
          {!Intervals.slot_assignment} when the pipeline runs with
          [`Interval] slot mode. *)
}

type counter_plan = {
  counter : int;
  counter_sites : int list;
  pattern : Context.pattern;
  placements : (int * int) list;
      (** (instance id under this counter, slot index); empty when
          recycling *)
  recycle : recycle_block option;
  required_ctx : int option;
      (** The hybrid mechanism of §2.2.2: when set, only allocations
          carrying this call-stack signature advance the counter and are
          eligible for placement — object ids and calling context used
          together, for sites whose dynamic interleaving is not stable
          across inputs. *)
}

type profile_summary = {
  hot_count : int;  (** hot objects selected from the profile *)
  hds_count : int;  (** hot objects that are members of some RHDS *)
  heap_access_share : float;  (** fraction of heap accesses they cover *)
  ohds_count : int;  (** streams detected before reconstitution *)
  rhds_count : int;  (** streams after reconstitution *)
}

type t = {
  variant : variant;
  slots : Offsets.slot list;  (** preallocated region geometry, in order *)
  region_bytes : int;
  site_counter : (int * int) list;  (** instrumented site -> counter id *)
  counters : counter_plan list;
  placed_objects : int list;
      (** profiled object ids with a dedicated slot, in slot order *)
  profile : profile_summary;
}

val counter_of_site : t -> int -> int option

val counter_plan : t -> int -> counter_plan
(** Raises [Not_found] on unknown counter ids. *)

val num_sites : t -> int
val num_counters : t -> int

val context_kinds : t -> string
(** Table 2's "type" cell: comma-separated distinct pattern kinds in use,
    e.g. ["fixed"] or ["fixed & all"]. *)

val validate : t -> (unit, string) result
(** Structural checks: slot indices in range, no slot assigned twice
    outside recycling, recycling blocks within bounds, every site mapped
    to a live counter. *)

val pp_summary : Format.formatter -> t -> unit
