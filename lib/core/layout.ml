module Hds = Prefix_hds.Hds
module IntSet = Set.Make (Int)

type result = {
  rhds : Hds.t list;
  singletons : int list;
  coverage : coverage list;
}

and coverage = Fully_covered | Partially_covered | Not_covered

(* Merge [remaining] into an existing stream so that the shared objects sit
   between the two streams' private objects where possible: if the shared
   objects live near the front of the existing order, the newcomers go in
   front; otherwise they go at the back.  This realises the paper's "two
   HDS can always be laid out adjacent with common objects in the middle". *)
let merge_orders existing_order remaining shared =
  let n = List.length existing_order in
  let positions =
    List.mapi (fun i o -> (i, o)) existing_order
    |> List.filter (fun (_, o) -> IntSet.mem o shared)
    |> List.map fst
  in
  let front =
    match positions with
    | [] -> false
    | _ ->
      let avg =
        float_of_int (List.fold_left ( + ) 0 positions) /. float_of_int (List.length positions)
      in
      avg < float_of_int n /. 2.
  in
  if front then remaining @ existing_order else existing_order @ remaining

type entry = { mutable objs : int list; mutable set : IntSet.t; mutable merged : bool; refs : int }

let reconstitute ohds =
  let ohds = List.sort Hds.compare_by_refs ohds in
  let entries : entry list ref = ref [] in
  (* [entries] is kept in insertion order (head = oldest) via append. *)
  let singletons = ref [] in
  let all_objs () =
    List.fold_left (fun acc e -> IntSet.union acc e.set) IntSet.empty !entries
  in
  List.iter
    (fun current ->
      let cset = Hds.obj_set current in
      let placed = all_objs () in
      let remaining = Hds.diff_objs current placed in
      if remaining = [] then () (* fully represented already: nothing to do *)
      else if IntSet.is_empty (IntSet.inter cset placed) then
        (* Unchanged inclusion. *)
        entries :=
          !entries
          @ [ { objs = Hds.objs current;
                set = cset;
                merged = false;
                refs = Hds.refs current } ]
      else begin
        (* Shares objects with RHDS: try to merge the remainder into the
           first not-yet-merged stream that shares an object. *)
        let done_ = ref false in
        List.iter
          (fun e ->
            if (not !done_) && (not e.merged) && not (IntSet.is_empty (IntSet.inter cset e.set))
            then begin
              e.merged <- true;
              let shared = IntSet.inter cset e.set in
              e.objs <- merge_orders e.objs remaining shared;
              e.set <- IntSet.union e.set (IntSet.of_list remaining);
              done_ := true
            end)
          !entries;
        if not !done_ then begin
          match remaining with
          | [ single ] -> singletons := !singletons @ [ single ]
          | _ :: _ :: _ ->
            entries :=
              !entries
              @ [ { objs = remaining;
                    set = IntSet.of_list remaining;
                    merged = false;
                    refs = Hds.refs current } ]
          | [] -> assert false
        end
      end)
    ohds;
  let rhds = List.map (fun e -> Hds.make ~objs:e.objs ~refs:e.refs) !entries in
  let covered = all_objs () in
  let coverage =
    List.map
      (fun h ->
        let inter = IntSet.inter (Hds.obj_set h) covered in
        if IntSet.cardinal inter = Hds.cardinal h then Fully_covered
        else if IntSet.is_empty inter then Not_covered
        else Partially_covered)
      ohds
  in
  (* Singletons may have been absorbed into a later stream; drop those. *)
  let singletons = List.filter (fun o -> not (IntSet.mem o covered)) !singletons in
  { rhds; singletons; coverage }

let placement_order r =
  let seen = Hashtbl.create 64 in
  let keep o =
    if Hashtbl.mem seen o then false
    else begin
      Hashtbl.replace seen o ();
      true
    end
  in
  List.concat_map Hds.objs r.rhds @ r.singletons |> List.filter keep

let disjoint streams =
  let seen = Hashtbl.create 64 in
  List.for_all
    (fun h ->
      List.for_all
        (fun o ->
          if Hashtbl.mem seen o then false
          else begin
            Hashtbl.replace seen o ();
            true
          end)
        (Hds.objs h))
    streams
