(** End-to-end PreFix planning: trace in, optimization plan out
    (the analysis half of Figure 8).

    Steps: hot-object selection → HDS detection (LCS or Sequitur) →
    Algorithm 1 reconstitution → placement order per variant → site
    promotion (sites whose allocations are almost all hot are treated
    as "all ids" sites) → counter sharing → recycling analysis →
    offset assignment → plan. *)

type slot_mode =
  | Modulo  (** Figure 7: slot = (id - 1) mod N *)
  | Interval
      (** greedy interval-graph coloring over profiled liveness
          intervals ({!Intervals.slot_assignment}); instances outside
          the profile fall back to modulo *)

val slot_mode_name : slot_mode -> string
(** ["modulo"] / ["interval"] — the CLI's [--slots] values. *)

type config = {
  coverage : float;  (** hot-object coverage target (default 0.95) *)
  detector : Prefix_hds.Detector.config;
  method_ : Prefix_hds.Detector.method_;  (** default [Lcs] (§3.1) *)
  counter_sharing : bool;  (** default true *)
  recycling : bool;  (** default true *)
  recycle_config : Recycle.config;
  slot_mode : slot_mode;
      (** how recycling blocks map instance ids to slots (default
          [Modulo], the paper's scheme) *)
  max_prealloc_bytes : int option;
      (** cap on the preallocated region (§1: "controlled by limiting
          the size of the preallocated memory") *)
  promote_site_threshold : float;
      (** a site whose hot fraction is at least this becomes an
          "all ids" site (default 0.8) *)
  promote_site_min_allocs : int;  (** default 8 *)
  hybrid_context : bool;
      (** §2.2.2's hybrid mechanism: gate a site's counter on the single
          call-stack signature its hot objects share, so the instance
          numbering survives input-dependent interleaving with the
          site's other allocation paths (default false) *)
  lifetime_arenas : bool;
      (** group the region by {!Lifetimes} class — several arenas'
          worth of segregation inside one preallocated block (default
          false; the paper leaves per-lifetime arenas as future work) *)
}

val default_config : config

val analyze : Prefix_trace.Trace.t -> Prefix_trace.Trace_stats.t
(** [Trace_stats.analyze] under a "trace-analysis" observability span;
    use this instead of calling the analyzer directly when the run
    should show up in span reports and Chrome traces. *)

val analyze_packed : Prefix_trace.Packed.t -> Prefix_trace.Trace_stats.t
(** {!analyze} off an already-packed trace, avoiding a second packing
    when the caller also replays the packed form. *)

val analyze_stream : Prefix_trace.Stream.t -> Prefix_trace.Trace_stats.t
(** {!analyze} off a segment stream under the same "trace-analysis"
    span: identical statistics, one segment of trace memory. *)

val plan :
  ?config:config -> variant:Plan.variant -> Prefix_trace.Trace.t -> Plan.t

val plan_with_stats :
  ?config:config ->
  variant:Plan.variant ->
  Prefix_trace.Trace_stats.t ->
  Prefix_trace.Trace.t ->
  Plan.t
(** Like {!plan} but reuses an existing trace analysis. *)

val all_variants :
  ?config:config -> Prefix_trace.Trace.t -> (Plan.variant * Plan.t) list
(** Plans for Hot, Hds and HdsHot sharing one analysis pass. *)
