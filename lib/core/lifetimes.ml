module Trace_stats = Prefix_trace.Trace_stats

type class_ = Transient | Phase | Persistent

let class_name = function
  | Transient -> "transient"
  | Phase -> "phase"
  | Persistent -> "persistent"

let classify stats ~trace_len obj =
  let info = Trace_stats.obj_info stats obj in
  match info.free_index with
  | None -> Persistent
  | Some fin ->
    let span = float_of_int (fin - info.alloc_index) /. float_of_int (max 1 trace_len) in
    if span < 0.05 then Transient else if span < 0.6 then Phase else Persistent

let partition stats ~trace_len objs =
  let buckets = [ (Persistent, ref []); (Phase, ref []); (Transient, ref []) ] in
  List.iter
    (fun o ->
      let c = classify stats ~trace_len o in
      let r = List.assoc c buckets in
      r := o :: !r)
    objs;
  List.filter_map
    (fun (c, r) -> match List.rev !r with [] -> None | l -> Some (c, l))
    buckets

let regroup stats ~trace_len objs =
  List.concat_map snd (partition stats ~trace_len objs)

let report stats ~trace_len objs =
  let buf = Buffer.create 256 in
  let total_bytes l =
    List.fold_left
      (fun acc o ->
        let i = Trace_stats.obj_info stats o in
        acc + max i.size i.alloc_size)
      0 l
  in
  Buffer.add_string buf "lifetime classes (profiled):\n";
  List.iter
    (fun (c, l) ->
      Buffer.add_string buf
        (Printf.sprintf "  %-10s %6d objects, %s bytes\n" (class_name c) (List.length l)
           (Prefix_util.Tablefmt.fmt_int (total_bytes l))))
    (partition stats ~trace_len objs);
  Buffer.contents buf
