module Trace = Prefix_trace.Trace
module Trace_stats = Prefix_trace.Trace_stats
module Detector = Prefix_hds.Detector
module Hds = Prefix_hds.Hds
module Span = Prefix_obs.Span
module Log = (val Logs.src_log Prefix_obs.Log.pipeline)

(* Every planning stage runs under a span so `prefix stats` / --obs-out
   can show where pipeline time goes. *)
let stage name f = Span.with_ ~cat:"pipeline" name f

type slot_mode = Modulo | Interval

let slot_mode_name = function Modulo -> "modulo" | Interval -> "interval"

type config = {
  coverage : float;
  detector : Detector.config;
  method_ : Detector.method_;
  counter_sharing : bool;
  recycling : bool;
  recycle_config : Recycle.config;
  slot_mode : slot_mode;
  max_prealloc_bytes : int option;
  promote_site_threshold : float;
  promote_site_min_allocs : int;
  hybrid_context : bool;
  lifetime_arenas : bool;
}

let default_config =
  { coverage = 0.95;
    detector = Detector.default_config;
    method_ = Detector.Lcs;
    counter_sharing = true;
    recycling = true;
    recycle_config = Recycle.default_config;
    slot_mode = Modulo;
    max_prealloc_bytes = None;
    promote_site_threshold = 0.8;
    promote_site_min_allocs = 8;
    hybrid_context = false;
    lifetime_arenas = false }

let dedup_keep_first objs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun o ->
      if Hashtbl.mem seen o then false
      else begin
        Hashtbl.replace seen o ();
        true
      end)
    objs

(* Sites whose profiled allocations are (almost) all hot are handled as
   "all ids" sites: every allocation is of interest, which is what makes
   both bulk placement (health) and recycling (swissmap, leela) work. *)
let promoted_sites cfg stats hot_set =
  Trace_stats.sites stats
  |> List.filter_map (fun (s : Trace_stats.site_info) ->
         if s.alloc_count < cfg.promote_site_min_allocs then None
         else begin
           let hot = List.length (List.filter (fun o -> Hashtbl.mem hot_set o) s.site_objects) in
           if float_of_int hot >= cfg.promote_site_threshold *. float_of_int s.alloc_count
           then Some s.site_id
           else None
         end)

let plan_with_stats ?(config = default_config) ~variant stats trace =
  Span.with_ ~cat:"pipeline"
    ~args:[ ("variant", Plan.variant_name variant) ]
    "pipeline"
  @@ fun () ->
  let cfg = config in
  let hot_infos, hot_set =
    stage "hot-selection" (fun () ->
        let hot_infos = Trace_stats.hot_objects ~coverage:cfg.coverage stats in
        let hot_set = Hashtbl.create (List.length hot_infos) in
        List.iter
          (fun (o : Trace_stats.obj_info) -> Hashtbl.replace hot_set o.obj ())
          hot_infos;
        (hot_infos, hot_set))
  in
  (* HDS detection + reconstitution. *)
  let ohds =
    stage "hds-detection" (fun () ->
        Detector.detect_with_stats ~config:cfg.detector ~method_:cfg.method_ stats trace)
  in
  let layout = stage "reconstitution" (fun () -> Layout.reconstitute ohds) in
  Log.debug (fun m ->
      m "%s: %d hot objects, %d OHDS, %d RHDS" (Plan.variant_name variant)
        (List.length hot_infos) (List.length ohds)
        (List.length layout.rhds));
  let hds_objs = List.concat_map Hds.objs layout.rhds in
  let hds_set = Hashtbl.create 64 in
  List.iter (fun o -> Hashtbl.replace hds_set o ()) hds_objs;
  (* Placement order per variant. *)
  let alloc_order objs =
    List.sort
      (fun a b ->
        compare (Trace_stats.obj_info stats a).alloc_index
          (Trace_stats.obj_info stats b).alloc_index)
      objs
  in
  let hot_in_alloc_order = alloc_order (List.map (fun (o : Trace_stats.obj_info) -> o.obj) hot_infos) in
  let base_order =
    match (variant : Plan.variant) with
    | Hot -> hot_in_alloc_order
    | Hds -> hds_objs
    | HdsHot ->
      hds_objs @ alloc_order (List.filter (fun o -> not (Hashtbl.mem hds_set o)) hot_in_alloc_order)
  in
  (* Site promotion: append any not-yet-placed objects of promoted sites.
     The PreFix:HDS variant only places stream objects, so promoted sites
     join it solely when they are recyclable (recycling is orthogonal to
     the layout variants; without it the recycling benchmarks would lose
     their win in exactly one variant, which is not what §3.3 reports). *)
  let promoted = promoted_sites cfg stats hot_set in
  let promoted =
    match (variant : Plan.variant) with
    | Hot | HdsHot -> promoted
    | Hds ->
      (* A site qualifies if it recycles alone or as part of the whole
         promoted set (tandem sites only clear the minimum-allocation
         threshold together). *)
      let group_recycles =
        cfg.recycling
        && promoted <> []
        && Recycle.analyze ~config:cfg.recycle_config stats ~sites:promoted <> None
      in
      List.filter
        (fun site ->
          cfg.recycling
          && (group_recycles
             || Recycle.analyze ~config:cfg.recycle_config stats ~sites:[ site ] <> None))
        promoted
  in
  let promoted_objs =
    List.concat_map
      (fun site -> (Trace_stats.site_info stats site).site_objects)
      promoted
    |> alloc_order
  in
  let order = dedup_keep_first (base_order @ promoted_objs) in
  (* Enforce the prealloc cap before any further decisions. *)
  let size_of obj =
    let info = Trace_stats.obj_info stats obj in
    max info.size info.alloc_size
  in
  let order =
    match cfg.max_prealloc_bytes with
    | None -> order
    | Some cap ->
      let total = ref 0 in
      List.filter
        (fun o ->
          let s = (size_of o + 15) / 16 * 16 in
          if !total + s <= cap then begin
            total := !total + s;
            true
          end
          else false)
        order
  in
  let placed_set = Hashtbl.create (List.length order) in
  List.iter (fun o -> Hashtbl.replace placed_set o ()) order;
  (* Instrumented sites and counter groups. *)
  let sites =
    Trace_stats.sites stats
    |> List.filter (fun (s : Trace_stats.site_info) ->
           List.exists (fun o -> Hashtbl.mem placed_set o) s.site_objects)
  in
  (* The hybrid mechanism (§2.2.2): a site whose hot objects all carry
     one call-stack signature — while its other allocations do not — can
     gate its counter on that signature.  Instance ids are then numbered
     within the signature's own subsequence, which stays stable even when
     the interleaving with the site's other paths is input-dependent. *)
  let hybrid_ctx_of_site (s : Trace_stats.site_info) =
    if not cfg.hybrid_context then None
    else begin
      let infos = List.map (Trace_stats.obj_info stats) s.site_objects in
      let hot_ctxs =
        List.filter_map
          (fun (i : Trace_stats.obj_info) ->
            if Hashtbl.mem placed_set i.obj then Some i.ctx else None)
          infos
        |> List.sort_uniq compare
      in
      let all_ctxs =
        List.map (fun (i : Trace_stats.obj_info) -> i.ctx) infos |> List.sort_uniq compare
      in
      match hot_ctxs with
      | [ c ] when List.length all_ctxs > 1 -> Some c
      | _ -> None
    end
  in
  let site_hybrid = List.map (fun s -> (s.Trace_stats.site_id, hybrid_ctx_of_site s)) sites in
  let site_allocs =
    List.map
      (fun (s : Trace_stats.site_info) ->
        let required = List.assoc s.site_id site_hybrid in
        let objects =
          match required with
          | None -> s.site_objects
          | Some c ->
            (* Only the gated signature's allocations advance the counter. *)
            List.filter
              (fun o -> (Trace_stats.obj_info stats o).ctx = c)
              s.site_objects
        in
        { Counters.site = s.site_id;
          allocs =
            List.map
              (fun o ->
                let info = Trace_stats.obj_info stats o in
                { Counters.pos = info.alloc_index; obj = o; hot = Hashtbl.mem placed_set o })
              objects })
      sites
  in
  (* Sites gated on different signatures must not share a counter: gate
     compatibility is part of sharing viability, enforced by pre-grouping. *)
  let hybrid_sites, plain_sites =
    List.partition
      (fun (sa : Counters.site_allocs) -> List.assoc sa.site site_hybrid <> None)
      site_allocs
  in
  let groups =
    let plain = Counters.share ~enable:cfg.counter_sharing plain_sites in
    let base = List.length plain in
    let hybrid =
      List.mapi
        (fun i sa ->
          match Counters.share ~enable:false [ sa ] with
          | [ g ] -> { g with Counters.counter = base + i }
          | _ -> assert false)
        hybrid_sites
    in
    plain @ hybrid
  in
  (* Recycling decisions: only for all-ids groups. *)
  let recycling_of_group (g : Counters.group) =
    if not cfg.recycling then None
    else
      match g.pattern with
      | Context.All _ -> Recycle.analyze ~config:cfg.recycle_config stats ~sites:g.sites
      | _ -> None
  in
  let group_recycle = List.map (fun g -> (g, recycling_of_group g)) groups in
  let recycled_objs = Hashtbl.create 64 in
  List.iter
    (fun ((g : Counters.group), r) ->
      if r <> None then
        List.iter
          (fun site ->
            List.iter
              (fun o -> Hashtbl.replace recycled_objs o ())
              (Trace_stats.site_info stats site).site_objects)
          g.sites)
    group_recycle;
  let direct_order = List.filter (fun o -> not (Hashtbl.mem recycled_objs o)) order in
  (* Future-work extension: segregate the region by lifetime class so
     one class's deaths free a contiguous span (several arenas in one). *)
  let direct_order =
    if cfg.lifetime_arenas then
      Lifetimes.regroup stats ~trace_len:(Trace.length trace) direct_order
    else direct_order
  in
  (* Liveness intervals back the interval-colored slot maps; extracted
     once (lazily) from the profiling trace only when a recycling group
     will consume them. *)
  let profile_intervals =
    lazy (stage "liveness-intervals" (fun () -> Intervals.of_trace trace))
  in
  let hybrid_ctx_of_group (g : Counters.group) =
    match g.sites with
    | [ s ] -> Option.join (List.assoc_opt s site_hybrid)
    | _ -> None
  in
  (* Offsets: direct placements first, then one block per recycled group. *)
  let offsets, recycle_blocks =
    stage "offset-assignment" (fun () ->
        let offsets = ref (Offsets.assign ~size_of direct_order) in
        let recycle_blocks =
          List.filter_map
            (fun ((g : Counters.group), r) ->
              match r with
              | None -> None
              | Some (d : Recycle.decision) ->
                let off, first =
                  Offsets.extend !offsets ~count:d.n_slots ~size:d.slot_bytes
                in
                offsets := off;
                let assignment =
                  match cfg.slot_mode with
                  | Modulo -> []
                  | Interval ->
                    Intervals.slot_assignment (Lazy.force profile_intervals)
                      ~sites:g.sites ?required_ctx:(hybrid_ctx_of_group g)
                      ~n_slots:d.n_slots ()
                in
                Some
                  ( g.counter,
                    { Plan.first_slot = first;
                      n_slots = d.n_slots;
                      slot_bytes = d.slot_bytes;
                      assignment } ))
            group_recycle
        in
        (!offsets, recycle_blocks))
  in
  stage "plan"
  @@ fun () ->
  (* Counter plans. *)
  let counters =
    List.map
      (fun (g : Counters.group) ->
        let required_ctx =
          match g.sites with
          | [ s ] -> Option.join (List.assoc_opt s site_hybrid)
          | _ -> None
        in
        match List.assoc_opt g.counter recycle_blocks with
        | Some block ->
          { Plan.counter = g.counter;
            counter_sites = g.sites;
            pattern = Context.All { upto = None };
            placements = [];
            recycle = Some block;
            required_ctx }
        | None ->
          let placements =
            List.filter_map
              (fun (id, obj) ->
                match Offsets.slot_of_obj offsets obj with
                | Some slot -> Some (id, slot)
                | None -> None)
              g.hot_assignments
          in
          { Plan.counter = g.counter;
            counter_sites = g.sites;
            pattern = g.pattern;
            placements;
            recycle = None;
            required_ctx })
      groups
  in
  let site_counter =
    List.concat_map (fun (g : Counters.group) -> List.map (fun s -> (s, g.counter)) g.sites) groups
  in
  (* Profile summary for Table 5. *)
  let captured =
    order @ Hashtbl.fold (fun o () acc -> o :: acc) recycled_objs []
    |> dedup_keep_first
  in
  let profile =
    { Plan.hot_count = List.length captured;
      hds_count = List.length (List.filter (fun o -> Hashtbl.mem hds_set o) captured);
      heap_access_share = Trace_stats.heap_access_share stats captured;
      ohds_count = List.length ohds;
      rhds_count = List.length layout.rhds }
  in
  { Plan.variant;
    slots = Offsets.slots offsets;
    region_bytes = Offsets.region_bytes offsets;
    site_counter;
    counters;
    placed_objects = direct_order;
    profile }

let analyze trace = stage "trace-analysis" (fun () -> Trace_stats.analyze trace)

let analyze_packed packed =
  stage "trace-analysis" (fun () -> Trace_stats.analyze_packed packed)

let analyze_stream stream =
  stage "trace-analysis" (fun () -> Trace_stats.analyze_stream stream)

let plan ?config ~variant trace =
  let stats = analyze trace in
  plan_with_stats ?config ~variant stats trace

let all_variants ?config trace =
  let stats = analyze trace in
  List.map
    (fun v -> (v, plan_with_stats ?config ~variant:v stats trace))
    [ Plan.Hot; Plan.Hds; Plan.HdsHot ]
