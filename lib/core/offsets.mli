(** Offset assignment within the preallocated region (§2.1, last
    paragraph): once the placement order is fixed, each object gets a
    precomputed offset based on its profiled size.  The resulting
    mapping is what the instrumented program consults at runtime. *)

type slot = { offset : int; size : int }

type t

val assign : size_of:(int -> int) -> int list -> t
(** [assign ~size_of order] packs the objects of [order] back to back
    (16-byte aligned, matching the allocator granule).  [size_of]
    returns the profiled byte size of an object.  Raises
    [Invalid_argument] on duplicate objects or non-positive sizes. *)

val slots : t -> slot list
(** Slots in placement order. *)

val slot_of_obj : t -> int -> int option
(** Index of the slot assigned to a profiled object id. *)

val region_bytes : t -> int
(** Total bytes of the packed region. *)

val truncate : t -> max_bytes:int -> t
(** Drop trailing slots (the coldest placements) until the region fits
    in [max_bytes] — the paper's "controlled by limiting the size of
    the preallocated memory". *)

val extend : t -> count:int -> size:int -> t * int
(** [extend t ~count ~size] appends [count] uniform slots of [size]
    bytes (a recycling block) and returns the new mapping plus the
    index of the first appended slot. *)
