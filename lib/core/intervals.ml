module Packed = Prefix_trace.Packed
module Stream = Prefix_trace.Stream
module Trace = Prefix_trace.Trace

type interval = {
  iv_obj : int;
  iv_site : int;
  iv_ctx : int;
  iv_size : int;
  iv_incarnation : int;
  iv_start : int;
  iv_stop : int;
  iv_freed : bool;
}

type t = { ivs : interval array; n_events : int }

(* One live (not yet closed) incarnation. *)
type live = {
  l_site : int;
  l_ctx : int;
  mutable l_size : int;
  l_inc : int;
  l_start : int;
  mutable l_last : int;
}

type collector = {
  live : (int, live) Hashtbl.t;
  mutable closed : interval list;
  incarnations : (int, int) Hashtbl.t;
  mutable events : int;
}

let collector () =
  { live = Hashtbl.create 256; closed = []; incarnations = Hashtbl.create 256; events = 0 }

let close c obj (l : live) ~freed =
  c.closed <-
    { iv_obj = obj;
      iv_site = l.l_site;
      iv_ctx = l.l_ctx;
      iv_size = l.l_size;
      iv_incarnation = l.l_inc;
      iv_start = l.l_start;
      iv_stop = l.l_last;
      iv_freed = freed }
    :: c.closed

let feed c ~base packed =
  Packed.iteri
    ~alloc:(fun i ~obj ~site ~ctx ~size ~thread:_ ->
      (* A reused id (corrupted / lenient trace) ends the previous
         incarnation where it was last seen; each incarnation keeps its
         own interval. *)
      (match Hashtbl.find_opt c.live obj with
      | Some l ->
        close c obj l ~freed:false;
        Hashtbl.remove c.live obj
      | None -> ());
      let inc = 1 + Option.value ~default:0 (Hashtbl.find_opt c.incarnations obj) in
      Hashtbl.replace c.incarnations obj inc;
      let pos = base + i in
      Hashtbl.replace c.live obj
        { l_site = site; l_ctx = ctx; l_size = size; l_inc = inc; l_start = pos; l_last = pos })
    ~access:(fun i ~obj ~offset:_ ~write:_ ~thread:_ ->
      (* Accesses to unknown ids (use-after-free injected under lenient
         replay) extend nothing. *)
      match Hashtbl.find_opt c.live obj with
      | Some l -> l.l_last <- base + i
      | None -> ())
    ~free:(fun i ~obj ~thread:_ ->
      match Hashtbl.find_opt c.live obj with
      | Some l ->
        l.l_last <- base + i;
        close c obj l ~freed:true;
        Hashtbl.remove c.live obj
      | None -> () (* duplicate free: first free ended the interval *))
    ~realloc:(fun i ~obj ~new_size ~thread:_ ->
      match Hashtbl.find_opt c.live obj with
      | Some l ->
        l.l_last <- base + i;
        l.l_size <- max l.l_size new_size
      | None -> ())
    packed;
  c.events <- base + Packed.length packed

let events_fed c = c.events

let finish c =
  Hashtbl.iter (fun obj l -> close c obj l ~freed:false) c.live;
  Hashtbl.reset c.live;
  let ivs = Array.of_list c.closed in
  (* Starts are distinct event indices, so this order is total. *)
  Array.sort (fun a b -> compare a.iv_start b.iv_start) ivs;
  { ivs; n_events = c.events }

let of_packed p =
  let c = collector () in
  feed c ~base:0 p;
  finish c

let of_trace tr = of_packed (Packed.of_trace tr)

let of_stream s =
  let c = collector () in
  Stream.iter_segments s (fun ~base p -> feed c ~base p);
  finish c

let intervals t = t.ivs
let n_events t = t.n_events
let length t = Array.length t.ivs

(* ---- Greedy interval-graph coloring ---------------------------------- *)

(* Tiny binary min-heap over (key, payload) int pairs — enough for the
   active-interval sweep without pulling in a dependency. *)
module Heap = struct
  type t = { mutable keys : int array; mutable vals : int array; mutable n : int }

  let create () = { keys = Array.make 16 0; vals = Array.make 16 0; n = 0 }

  let grow h =
    let cap = 2 * Array.length h.keys in
    let nk = Array.make cap 0 and nv = Array.make cap 0 in
    Array.blit h.keys 0 nk 0 h.n;
    Array.blit h.vals 0 nv 0 h.n;
    h.keys <- nk;
    h.vals <- nv

  let swap h i j =
    let k = h.keys.(i) and v = h.vals.(i) in
    h.keys.(i) <- h.keys.(j);
    h.vals.(i) <- h.vals.(j);
    h.keys.(j) <- k;
    h.vals.(j) <- v

  let push h k v =
    if h.n = Array.length h.keys then grow h;
    h.keys.(h.n) <- k;
    h.vals.(h.n) <- v;
    h.n <- h.n + 1;
    let i = ref (h.n - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      if h.keys.(p) > h.keys.(!i) || (h.keys.(p) = h.keys.(!i) && h.vals.(p) > h.vals.(!i))
      then begin
        swap h p !i;
        i := p;
        true
      end
      else false
    do
      ()
    done

  let min_key h = if h.n = 0 then None else Some h.keys.(0)

  let pop h =
    let k = h.keys.(0) and v = h.vals.(0) in
    h.n <- h.n - 1;
    h.keys.(0) <- h.keys.(h.n);
    h.vals.(0) <- h.vals.(h.n);
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      let lt a b =
        h.keys.(a) < h.keys.(b) || (h.keys.(a) = h.keys.(b) && h.vals.(a) < h.vals.(b))
      in
      if l < h.n && lt l !smallest then smallest := l;
      if r < h.n && lt r !smallest then smallest := r;
      if !smallest <> !i then begin
        swap h !i !smallest;
        i := !smallest
      end
      else continue_ := false
    done;
    (k, v)
end

(* Sweep the (already start-sorted) intervals, releasing colors when an
   interval's [stop] has passed and reusing the smallest free color —
   greedy-by-start is optimal on interval graphs, so the color count is
   exactly the maximum overlap.  [stop_of] lets callers pin intervals
   whose end is not trusted (never-freed objects keep their slot). *)
let color_with t ~stop_of =
  let n = Array.length t.ivs in
  let colors = Array.make n 0 in
  let active = Heap.create () in
  let free = Heap.create () in
  let next = ref 0 in
  for i = 0 to n - 1 do
    let iv = t.ivs.(i) in
    let rec drain () =
      match Heap.min_key active with
      | Some stop when stop < iv.iv_start ->
        let _, c = Heap.pop active in
        Heap.push free c c;
        drain ()
      | _ -> ()
    in
    drain ();
    let c =
      if free.Heap.n > 0 then snd (Heap.pop free)
      else begin
        let c = !next in
        incr next;
        c
      end
    in
    colors.(i) <- c;
    Heap.push active (stop_of iv) c
  done;
  (colors, !next)

let color t = color_with t ~stop_of:(fun iv -> iv.iv_stop)

let max_overlap t = snd (color t)

let slot_assignment t ~sites ?required_ctx ~n_slots () =
  if n_slots <= 0 then invalid_arg "Intervals.slot_assignment: n_slots must be positive";
  let site_set = Hashtbl.create (List.length sites) in
  List.iter (fun s -> Hashtbl.replace site_set s ()) sites;
  let mine =
    Array.of_list
      (List.filter
         (fun iv ->
           Hashtbl.mem site_set iv.iv_site
           && match required_ctx with None -> true | Some c -> iv.iv_ctx = c)
         (Array.to_list t.ivs))
  in
  let sub = { ivs = mine; n_events = t.n_events } in
  (* A never-freed object never releases its arena slot at runtime, so
     its interval is pinned open: later instances must not share it. *)
  let colors, _ =
    color_with sub ~stop_of:(fun iv -> if iv.iv_freed then iv.iv_stop else max_int)
  in
  (* Instance ids are 1-based positions in trace order over exactly the
     allocations that advance the runtime counter — [mine] is already in
     that order (sorted by alloc index, filtered by site and gate). *)
  List.init (Array.length mine) (fun i -> (i + 1, colors.(i) mod n_slots))

let align16 n = (n + 15) / 16 * 16

let peak_live_bytes t ~sites =
  let site_set =
    Option.map
      (fun ss ->
        let h = Hashtbl.create (List.length ss) in
        List.iter (fun s -> Hashtbl.replace h s ()) ss;
        h)
      sites
  in
  let keep iv =
    match site_set with None -> true | Some h -> Hashtbl.mem h iv.iv_site
  in
  let events =
    Array.to_list t.ivs
    |> List.filter keep
    |> List.concat_map (fun iv ->
           let stop = if iv.iv_freed then iv.iv_stop else max_int in
           let b = align16 iv.iv_size in
           (* Deltas at equal indices: frees (at the free event) happen
              before the alloc that might reuse the space one event
              later, so order closes (+1 tiebreak) after opens would be
              wrong — distinct event indices make ties impossible except
              via the max_int pin, where order is irrelevant. *)
           [ ((iv.iv_start, 0), b); ((stop, 1), -b) ])
    |> List.sort compare
  in
  let live = ref 0 and peak = ref 0 in
  List.iter
    (fun (_, d) ->
      live := !live + d;
      if !live > !peak then peak := !live)
    events;
  !peak
