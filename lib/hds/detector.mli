(** Hot-data-stream detection from memory traces (the analysis step of
    Figure 8).

    Pipeline: select hot objects (Figure 1), prune the access trace to
    those objects (collapsing consecutive repeats, which carry no
    inter-object locality information), then mine recurring object
    sequences:

    - [Lcs] (the paper's choice, §3.1): find the dominant repeat
      periods of the pruned sequence by autocorrelation, then compute
      longest common subsequences between windows one period apart;
      temporally-coherent runs of the LCS are the candidate streams.
      Short fixed chains that recur at irregular distances are picked
      up by a complementary frequent-n-gram pass.
    - [Sequitur] (the original HDS work's choice): infer a grammar and
      read the streams off the repeated rules.

    The result is the ordered HDS list (OHDS) that feeds Algorithm 1. *)

type method_ = Lcs | Sequitur

type config = {
  coverage : float;  (** hot-object selection coverage target (default 0.9) *)
  segment : int;  (** LCS window length (default 256) *)
  max_gap : int;  (** max positional gap within one stream (default 4) *)
  min_occurrences : int;  (** occurrences for a candidate to count (default 2) *)
  max_streams : int;  (** cap on returned streams (default 64) *)
  max_stream_len : int;  (** cap on objects per stream (default 32) *)
  max_lag : int;  (** autocorrelation search horizon (default 16384) *)
  max_periods : int;  (** number of candidate periods to mine (default 3) *)
  windows_per_lag : int;  (** LCS windows sampled per period (default 32) *)
  ngram_max : int;  (** longest n-gram mined alongside the LCS (default 4) *)
  ngram_min_hits : int;  (** occurrence floor for n-gram candidates (default 6) *)
}

val default_config : config

val hot_sequence : Prefix_trace.Trace_stats.t -> Prefix_trace.Trace.t -> int array
(** The pruned hot-object access sequence: object ids of accesses to hot
    objects with consecutive duplicates collapsed. *)

val hot_sequence_stream :
  Prefix_trace.Trace_stats.t -> Prefix_trace.Stream.t -> int array
(** Same pruned sequence off a segment stream — the trace is never
    materialized, only the (much smaller) pruned sequence is. *)

val dominant_periods : ?config:config -> int array -> int list
(** Candidate repeat periods of a sequence, best first, by sampled
    autocorrelation (exposed for tests). *)

val detect :
  ?config:config -> ?method_:method_ -> Prefix_trace.Trace.t -> Hds.t list
(** OHDS: detected streams in descending order of memory references.
    Streams have at least two member objects. *)

val detect_with_stats :
  ?config:config ->
  ?method_:method_ ->
  Prefix_trace.Trace_stats.t ->
  Prefix_trace.Trace.t ->
  Hds.t list
(** Same, reusing an existing analysis to avoid a second trace pass. *)

val detect_stream :
  ?config:config ->
  ?method_:method_ ->
  Prefix_trace.Trace_stats.t ->
  Prefix_trace.Stream.t ->
  Hds.t list
(** {!detect_with_stats} off a segment stream: identical OHDS (the
    miners run on the same pruned sequence), bounded trace memory. *)
