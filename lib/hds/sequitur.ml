(* Faithful port of the classic Sequitur implementation (sequitur.info),
   maintaining digram uniqueness and rule utility online. *)

type value = Dummy | Guard of rule | Term of int | NonTerm of rule

and symbol = { mutable v : value; mutable prev : symbol; mutable next : symbol }

and rule = { id : int; mutable guard : symbol; mutable refcount : int }

type key = KT of int | KN of int

type grammar = {
  start : rule;
  index : (key * key, symbol) Hashtbl.t;
  mutable next_rule_id : int;
}

let new_rule g =
  let rec guard = { v = Dummy; prev = guard; next = guard } in
  let r = { id = g.next_rule_id; guard; refcount = 0 } in
  g.next_rule_id <- g.next_rule_id + 1;
  guard.v <- Guard r;
  r

let is_guard s = match s.v with Guard _ | Dummy -> true | _ -> false

let key_of s =
  match s.v with
  | Term t -> KT t
  | NonTerm r -> KN r.id
  | Guard _ | Dummy -> invalid_arg "Sequitur: guard has no digram key"

let dkey s = (key_of s, key_of s.next)

(* Remove the digram starting at [s] from the index iff the index entry is
   [s] itself. *)
let delete_digram g s =
  if (not (is_guard s)) && not (is_guard s.next) then
    match Hashtbl.find_opt g.index (dkey s) with
    | Some m when m == s -> Hashtbl.remove g.index (dkey s)
    | _ -> ()

let join left right =
  left.next <- right;
  right.prev <- left

(* Unlink and discard a symbol, maintaining the digram index and rule
   reference counts.  The value is tombstoned to [Dummy] so that stale
   index entries pointing at this symbol can never validate (the classic
   implementation achieves the same by re-comparing symbol values on
   every hash-table probe). *)
let delete_symbol g s =
  delete_digram g s;
  (match s.v with NonTerm r -> r.refcount <- r.refcount - 1 | _ -> ());
  join s.prev s.next;
  s.v <- Dummy

(* An index entry is only meaningful if the symbol it points at still
   forms exactly the digram used as the key. *)
let entry_valid k m =
  (not (is_guard m)) && (not (is_guard m.next)) && dkey m = k

let insert_after g left value =
  ignore g;
  let s = { v = value; prev = left; next = left.next } in
  (match value with NonTerm r -> r.refcount <- r.refcount + 1 | _ -> ());
  left.next.prev <- s;
  left.next <- s;
  s

let rule_of_nonterm s =
  match s.v with NonTerm r -> r | _ -> invalid_arg "Sequitur: not a nonterminal"

(* Expand a nonterminal symbol [s] whose rule is used exactly once:
   splice the rule body in place of [s] and delete the rule. *)
let expand g s =
  let r = rule_of_nonterm s in
  let left = s.prev and right = s.next in
  let first = r.guard.next and last = r.guard.prev in
  delete_digram g s;
  (* No refcount bookkeeping for body symbols: they move, not die. *)
  join left first;
  join last right;
  s.v <- Dummy;
  Hashtbl.replace g.index (dkey last) last

let rec check g s =
  if is_guard s || is_guard s.next then false
  else begin
    let k = dkey s in
    match Hashtbl.find_opt g.index k with
    | Some m when not (entry_valid k m) ->
      (* Stale entry from a deleted or rewritten digram: claim the slot. *)
      Hashtbl.replace g.index k s;
      false
    | None ->
      Hashtbl.replace g.index k s;
      false
    | Some m when m == s || m.next == s || s.next == m ->
      (* Same or overlapping occurrence (e.g. "aaa"): leave as is. *)
      false
    | Some m ->
      match_digrams g s m;
      true
  end

(* [s] and [m] are two non-overlapping occurrences of the same digram. *)
and match_digrams g s m =
  let r =
    if is_guard m.prev && is_guard m.next.next then begin
      (* [m..m.next] is the whole body of an existing rule: reuse it. *)
      let r = match m.prev.v with Guard r -> r | _ -> assert false in
      substitute g s r;
      r
    end
    else begin
      let r = new_rule g in
      (* Build the rule body as a copy of the digram. *)
      let a = insert_after g r.guard.prev s.v in
      let _b = insert_after g r.guard.prev s.next.v in
      substitute g m r;
      substitute g s r;
      Hashtbl.replace g.index (dkey a) a;
      r
    end
  in
  (* Rule utility: if the rule's first symbol is a nonterminal used once,
     inline it. *)
  let first = r.guard.next in
  match first.v with
  | NonTerm r' when r'.refcount = 1 -> expand g first
  | _ -> ()

(* Replace the digram [(s, s.next)] by nonterminal [r]. *)
and substitute g s r =
  let q = s.prev in
  let s2 = s.next in
  delete_symbol g s;
  delete_symbol g s2;
  let n = insert_after g q (NonTerm r) in
  if not (check g q) then ignore (check g n)

let append g value =
  let last = g.start.guard.prev in
  let s = insert_after g last value in
  ignore (check g s.prev)

let build seq =
  let rec guard = { v = Dummy; prev = guard; next = guard } in
  let start = { id = 0; guard; refcount = 0 } in
  guard.v <- Guard start;
  let g = { start; index = Hashtbl.create 1024; next_rule_id = 1 } in
  Array.iter (fun t -> append g (Term t)) seq;
  g

let iter_body r f =
  let rec go s = if not (is_guard s) then begin f s; go s.next end in
  go r.guard.next

let rec expand_rule acc r =
  iter_body r (fun s ->
      match s.v with
      | Term t -> acc := t :: !acc
      | NonTerm r' -> expand_rule acc r'
      | Guard _ | Dummy -> ())

let expand_start g =
  let acc = ref [] in
  expand_rule acc g.start;
  Array.of_list (List.rev !acc)

let collect_rules g =
  (* Walk the reachable grammar from the start rule. *)
  let seen = Hashtbl.create 64 in
  let out = ref [] in
  let rec visit r =
    if not (Hashtbl.mem seen r.id) then begin
      Hashtbl.replace seen r.id ();
      out := r :: !out;
      iter_body r (fun s -> match s.v with NonTerm r' -> visit r' | _ -> ())
    end
  in
  visit g.start;
  List.rev !out

let rules g =
  collect_rules g
  |> List.filter (fun r -> r.id <> g.start.id)
  |> List.map (fun r ->
         let acc = ref [] in
         expand_rule acc r;
         (Array.of_list (List.rev !acc), r.refcount))

let num_rules g = List.length (collect_rules g)

let check_digram_uniqueness g =
  let seen = Hashtbl.create 256 in
  let ok = ref true in
  List.iter
    (fun r ->
      let rec go s =
        if not (is_guard s) then begin
          if not (is_guard s.next) then begin
            let k = dkey s in
            (* Same-symbol digrams ("aa") are exempt: the classic
               algorithm skips overlapping occurrences inside runs like
               "aaa", and after surrounding deletions such a skipped
               digram can legitimately coexist with an indexed one.  The
               uniqueness guarantee only covers digrams of distinct
               symbols. *)
            (match k with
            | ka, kb when ka = kb -> ()
            | _ -> (
              match Hashtbl.find_opt seen k with
              | Some m when m != s && m.next != s && s.next != m -> ok := false
              | Some _ -> ()
              | None -> Hashtbl.replace seen k s));
            go s.next
          end
        end
      in
      go r.guard.next)
    (collect_rules g);
  !ok
