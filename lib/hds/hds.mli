(** Hot data streams.

    Following Chilimbi & Shaham [8], a hot data stream is a set of hot
    objects that are accessed together; colocating its members improves
    inter-object spatial locality.  We keep the member objects in their
    preferred adjacency order (the order in which the stream visits
    them), since PreFix — unlike prior work — can realise that order in
    the preallocated region. *)

type t

val make : objs:int list -> refs:int -> t
(** [make ~objs ~refs] builds a stream over the distinct object ids
    [objs] (order preserved, duplicates dropped) that accounted for
    [refs] memory references in the profile. *)

val objs : t -> int list
(** Member objects in preferred adjacency order. *)

val obj_set : t -> Set.Make(Int).t

val refs : t -> int
(** Profile weight: memory references attributed to the stream. *)

val cardinal : t -> int

val mem : int -> t -> bool

val inter : t -> t -> Set.Make(Int).t
(** Objects shared by two streams. *)

val diff_objs : t -> Set.Make(Int).t -> int list
(** Members not in the given set, order preserved. *)

val concat : t -> int list -> t
(** [concat t extra] appends [extra] objects (deduplicated) at the end
    of [t]'s order, keeping [t]'s weight. *)

val equal_sets : t -> t -> bool

val compare_by_refs : t -> t -> int
(** Descending by [refs], ties broken deterministically by members. *)

val pp : Format.formatter -> t -> unit
