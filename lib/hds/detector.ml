module Trace = Prefix_trace.Trace
module Trace_stats = Prefix_trace.Trace_stats
module Event = Prefix_trace.Event
module Packed = Prefix_trace.Packed
module Stream = Prefix_trace.Stream

type method_ = Lcs | Sequitur

type config = {
  coverage : float;
  segment : int;
  max_gap : int;
  min_occurrences : int;
  max_streams : int;
  max_stream_len : int;
  max_lag : int;
  max_periods : int;
  windows_per_lag : int;
  ngram_max : int;
  ngram_min_hits : int;
}

let default_config =
  { coverage = 0.9;
    segment = 256;
    max_gap = 4;
    min_occurrences = 2;
    max_streams = 64;
    max_stream_len = 32;
    max_lag = 16384;
    max_periods = 3;
    windows_per_lag = 32;
    ngram_max = 4;
    ngram_min_hits = 6 }

let hot_table stats =
  let hot = Hashtbl.create 256 in
  List.iter
    (fun (o : Trace_stats.obj_info) -> Hashtbl.replace hot o.obj ())
    (Trace_stats.hot_objects stats);
  hot

let hot_sequence stats trace =
  let hot = hot_table stats in
  let out = ref [] in
  let last = ref min_int in
  Trace.iter
    (fun e ->
      match (e : Event.t) with
      | Access { obj; _ } when Hashtbl.mem hot obj && obj <> !last ->
        out := obj :: !out;
        last := obj
      | _ -> ())
    trace;
  Array.of_list (List.rev !out)

(* Streaming variant: the pruned sequence (hot accesses, adjacent
   duplicates collapsed) is far smaller than the trace, so mining stays
   in memory while the trace itself never is. *)
let hot_sequence_stream stats stream =
  let hot = hot_table stats in
  let out = ref [] in
  let last = ref min_int in
  Stream.iter_segments stream (fun ~base:_ seg ->
      Packed.iteri
        ~access:(fun _ ~obj ~offset:_ ~write:_ ~thread:_ ->
          if Hashtbl.mem hot obj && obj <> !last then begin
            out := obj :: !out;
            last := obj
          end)
        seg);
  Array.of_list (List.rev !out)

(* Sampled autocorrelation: for each candidate lag, the fraction of
   sampled positions i with seq.(i) = seq.(i + lag).  Periodic traversal
   patterns light up at (multiples of) their period. *)
let dominant_periods ?(config = default_config) seq =
  let n = Array.length seq in
  if n < 8 then []
  else begin
    let max_lag = min config.max_lag (n / 2) in
    let samples = 192 in
    let score lag =
      let span = n - lag in
      if span <= 0 then 0.
      else begin
        let stride = max 1 (span / samples) in
        let hits = ref 0 and total = ref 0 in
        let i = ref 0 in
        while !i < span do
          incr total;
          if seq.(!i) = seq.(!i + lag) then incr hits;
          i := !i + stride
        done;
        if !total = 0 then 0. else float_of_int !hits /. float_of_int !total
      end
    in
    (* Periods are exact in pruned-sequence position space and object
       ids rarely repeat within a period, so near-miss lags score zero:
       every lag must be probed.  The sampled score keeps the full scan
       cheap (max_lag * samples comparisons). *)
    let scored = ref [] in
    for lag = 1 to max_lag do
      let s = score lag in
      if s >= 0.5 then scored := (lag, s) :: !scored
    done;
    (* Prefer the smallest strong lags (fundamental periods rather than
       their multiples), dropping near-multiples of already-chosen ones. *)
    let by_lag = List.sort (fun (a, _) (b, _) -> compare a b) !scored in
    let chosen = ref [] in
    List.iter
      (fun (l, _) ->
        let is_multiple l0 = l mod l0 = 0 || (l mod l0 < l0 / 16) || (l0 - (l mod l0) < l0 / 16) in
        if List.length !chosen < config.max_periods
           && not (List.exists is_multiple !chosen)
        then chosen := !chosen @ [ l ])
      by_lag;
    !chosen
  end

(* Candidate accumulation: canonical key is the sorted member list; we keep
   the first-seen adjacency order and count occurrences. *)
type candidate = { order : int list; mutable hits : int }

let add_candidate tbl objs =
  let distinct =
    let seen = Hashtbl.create 8 in
    List.filter
      (fun o ->
        if Hashtbl.mem seen o then false
        else begin
          Hashtbl.replace seen o ();
          true
        end)
      objs
  in
  if List.length distinct >= 2 then begin
    let key = List.sort compare distinct in
    match Hashtbl.find_opt tbl key with
    | Some c -> c.hits <- c.hits + 1
    | None -> Hashtbl.replace tbl key { order = distinct; hits = 1 }
  end

let cap_run cfg run =
  if List.length run > cfg.max_stream_len then
    List.filteri (fun i _ -> i < cfg.max_stream_len) run
  else run

(* Windows are sampled at period-aligned positions: the window at phase
   [p] is compared with the windows exactly one and two periods later,
   so the same recurring content is matched repeatedly and candidate
   occurrence counts accumulate (a window compared at arbitrary offsets
   would see different objects every time and never reach the
   min_occurrences threshold). *)
let mine_lcs cfg seq tbl =
  let n = Array.length seq in
  let periods = dominant_periods ~config:cfg seq in
  List.iter
    (fun lag ->
      (* Short sequences (or short periods) get proportionally smaller
         windows so that there is always room for two recurrences. *)
      let segment = min cfg.segment (max 8 (min lag ((n - lag) / 3))) in
      let span = n - lag - segment in
      if span > 0 then begin
        (* Phases cover the period at [segment] granularity, bounded by
           the window budget. *)
        let n_phases = max 1 (min cfg.windows_per_lag (lag / segment)) in
        let phase_stride = max segment (lag / n_phases) in
        for k = 0 to n_phases - 1 do
          let base = k * phase_stride in
          (* Compare the phase window against its next two recurrences. *)
          List.iter
            (fun rep ->
              let a = base and b = base + (rep * lag) in
              if b + segment <= n && a + segment <= n then begin
                let w1 = Array.sub seq a segment in
                let w2 = Array.sub seq b segment in
                let matches = Lcs.lcs_with_positions w1 w2 in
                let runs = Lcs.split_runs ~max_gap:cfg.max_gap matches in
                List.iter (fun run -> add_candidate tbl (cap_run cfg run)) runs
              end)
            [ 1; 2 ]
        done
      end)
    periods

(* Frequent n-gram mining: hot data streams that recur at irregular
   distances (a fixed chain consulted from otherwise unordered scans)
   have no usable autocorrelation peak, but their adjacent k-grams
   repeat verbatim.  Count every k-gram of distinct objects and promote
   the frequent ones to candidates.  Incidental repeats of unrelated
   digrams are filtered by the [ngram_min_hits] floor. *)
let mine_ngrams cfg seq tbl =
  let n = Array.length seq in
  let counts : (int list, candidate) Hashtbl.t = Hashtbl.create 4096 in
  for k = 2 to cfg.ngram_max do
    for i = 0 to n - k do
      let gram = Array.to_list (Array.sub seq i k) in
      let distinct = List.length (List.sort_uniq compare gram) = k in
      if distinct then begin
        match Hashtbl.find_opt counts gram with
        | Some c -> c.hits <- c.hits + 1
        | None -> Hashtbl.replace counts gram { order = gram; hits = 1 }
      end
    done
  done;
  (* The floor adapts to the strongest candidate: a stream consulted
     thousands of times (analyzer's index trio) makes coincidental
     neighbours look frequent in absolute terms, while a genuinely
     recurring chain in a short profile may only repeat a handful of
     times. *)
  let top = Hashtbl.fold (fun _ c acc -> max acc c.hits) counts 0 in
  let floor = max (max cfg.min_occurrences cfg.ngram_min_hits) (top / 50) in
  Hashtbl.iter
    (fun gram c ->
      if c.hits >= floor then begin
        match Hashtbl.find_opt tbl (List.sort compare gram) with
        | Some existing -> existing.hits <- existing.hits + c.hits
        | None ->
          Hashtbl.replace tbl (List.sort compare gram) { order = c.order; hits = c.hits }
      end)
    counts

let mine_sequitur cfg seq tbl =
  let g = Sequitur.build seq in
  List.iter
    (fun (expansion, usage) ->
      if usage >= cfg.min_occurrences then begin
        let objs = cap_run cfg (Array.to_list expansion) in
        (* Register once per usage so occurrence thresholds mean the same
           thing for both miners. *)
        for _ = 1 to usage do
          add_candidate tbl objs
        done
      end)
    (Sequitur.rules g)

(* Mining operates on the pruned hot-access sequence only; the trace
   source (boxed or streamed) matters solely to [hot_sequence*]. *)
let detect_seq ~config ~method_ stats seq =
  let tbl : (int list, candidate) Hashtbl.t = Hashtbl.create 256 in
  (match method_ with
  | Lcs ->
    mine_lcs config seq tbl;
    mine_ngrams config seq tbl
  | Sequitur -> mine_sequitur config seq tbl);
  let weight_of objs =
    List.fold_left (fun acc o -> acc + (Trace_stats.obj_info stats o).accesses) 0 objs
  in
  Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
  |> List.filter (fun c -> c.hits >= config.min_occurrences)
  |> List.map (fun c -> Hds.make ~objs:c.order ~refs:(weight_of c.order * c.hits))
  |> List.sort Hds.compare_by_refs
  |> List.filteri (fun i _ -> i < config.max_streams)

let detect_with_stats ?(config = default_config) ?(method_ = Lcs) stats trace =
  detect_seq ~config ~method_ stats (hot_sequence stats trace)

let detect_stream ?(config = default_config) ?(method_ = Lcs) stats stream =
  detect_seq ~config ~method_ stats (hot_sequence_stream stats stream)

let detect ?config ?method_ trace =
  let stats = Trace_stats.analyze trace in
  detect_with_stats ?config ?method_ stats trace
