module IntSet = Set.Make (Int)

type t = {
  objs : int list; (* distinct, in preferred adjacency order *)
  set : IntSet.t;
  refs : int;
}

let dedup objs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun o ->
      if Hashtbl.mem seen o then false
      else begin
        Hashtbl.replace seen o ();
        true
      end)
    objs

let make ~objs ~refs =
  let objs = dedup objs in
  { objs; set = IntSet.of_list objs; refs }

let objs t = t.objs
let obj_set t = t.set
let refs t = t.refs
let cardinal t = IntSet.cardinal t.set
let mem o t = IntSet.mem o t.set
let inter a b = IntSet.inter a.set b.set
let diff_objs t set = List.filter (fun o -> not (IntSet.mem o set)) t.objs

let concat t extra =
  let extra = List.filter (fun o -> not (IntSet.mem o t.set)) (dedup extra) in
  { objs = t.objs @ extra; set = IntSet.union t.set (IntSet.of_list extra); refs = t.refs }

let equal_sets a b = IntSet.equal a.set b.set

let compare_by_refs a b =
  match compare b.refs a.refs with 0 -> compare a.objs b.objs | c -> c

let pp ppf t =
  Format.fprintf ppf "{%a | refs=%d}"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
       Format.pp_print_int)
    t.objs t.refs
