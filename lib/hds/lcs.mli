(** Longest common subsequence over integer sequences.

    The paper (§3.1) replaces Sequitur with LCS for hot-data-stream
    mining: recurring access patterns are exactly the subsequences that
    consecutive trace segments have in common. *)

val lcs : int array -> int array -> int array
(** Classic O(nm) dynamic program; returns one longest common
    subsequence. *)

val lcs_with_positions : int array -> int array -> (int * int * int) list
(** The LCS as [(value, index_in_a, index_in_b)] triples, in order. *)

val length : int array -> int array -> int
(** Length of the LCS only, in O(nm) time and O(min n m) space. *)

val similarity : int array -> int array -> float
(** [2 * |lcs| / (|a| + |b|)] in [0,1]; 0 when either input is empty. *)

val split_runs : max_gap:int -> (int * int * int) list -> int list list
(** Cut a positioned common subsequence into temporally coherent runs:
    a new run starts whenever consecutive matches are more than
    [max_gap] apart in either original sequence. *)
