(** Sequitur grammar inference (Nevill-Manning & Witten 1997).

    The original HDS work [8] mined hot data streams with Sequitur; the
    paper replaces it with LCS, claiming equal effectiveness at lower
    cost (§3.1).  We implement both so the claim can be benchmarked
    (see the ablation benches).

    Sequitur builds a context-free grammar from a sequence online while
    maintaining two invariants: {e digram uniqueness} (no pair of
    adjacent symbols occurs twice in the grammar) and {e rule utility}
    (every rule other than the start rule is used at least twice). *)

type grammar

val build : int array -> grammar
(** Infer a grammar for the whole sequence. *)

val expand_start : grammar -> int array
(** Expansion of the start rule — always equal to the input sequence
    (checked by property tests). *)

val rules : grammar -> (int array * int) list
(** Every non-start rule as [(terminal expansion, usage count)], where
    usage is the number of references to the rule from other rules.
    By rule utility, usage >= 2. *)

val num_rules : grammar -> int
(** Number of rules, start rule included. *)

val check_digram_uniqueness : grammar -> bool
(** Verify the digram-uniqueness invariant; exposed for tests. *)
