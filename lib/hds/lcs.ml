let table a b =
  let n = Array.length a and m = Array.length b in
  let dp = Array.make_matrix (n + 1) (m + 1) 0 in
  for i = 1 to n do
    for j = 1 to m do
      dp.(i).(j) <-
        (if a.(i - 1) = b.(j - 1) then dp.(i - 1).(j - 1) + 1
         else max dp.(i - 1).(j) dp.(i).(j - 1))
    done
  done;
  dp

let lcs_with_positions a b =
  let dp = table a b in
  let rec back i j acc =
    if i = 0 || j = 0 then acc
    else if a.(i - 1) = b.(j - 1) && dp.(i).(j) = dp.(i - 1).(j - 1) + 1 then
      back (i - 1) (j - 1) ((a.(i - 1), i - 1, j - 1) :: acc)
    else if dp.(i - 1).(j) >= dp.(i).(j - 1) then back (i - 1) j acc
    else back i (j - 1) acc
  in
  back (Array.length a) (Array.length b) []

let lcs a b = Array.of_list (List.map (fun (v, _, _) -> v) (lcs_with_positions a b))

let length a b =
  (* Two-row DP; keep the shorter sequence as the row. *)
  let a, b = if Array.length a < Array.length b then (b, a) else (a, b) in
  let m = Array.length b in
  let prev = Array.make (m + 1) 0 and cur = Array.make (m + 1) 0 in
  Array.iter
    (fun ai ->
      for j = 1 to m do
        cur.(j) <- (if ai = b.(j - 1) then prev.(j - 1) + 1 else max prev.(j) cur.(j - 1))
      done;
      Array.blit cur 0 prev 0 (m + 1);
      Array.fill cur 0 (m + 1) 0)
    a;
  prev.(m)

let similarity a b =
  let n = Array.length a and m = Array.length b in
  if n = 0 || m = 0 then 0.
  else 2. *. float_of_int (length a b) /. float_of_int (n + m)

let split_runs ~max_gap matches =
  let rec go acc cur last = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | (v, i, j) :: rest -> (
      match last with
      | Some (pi, pj) when i - pi > max_gap || j - pj > max_gap ->
        go (List.rev cur :: acc) [ v ] (Some (i, j)) rest
      | _ -> go acc (v :: cur) (Some (i, j)) rest)
  in
  go [] [] None matches |> List.filter (fun r -> r <> [])
