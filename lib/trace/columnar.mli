(** Columnar compressed trace container (format v3).

    Same file skeleton as the framed {!Binfmt} v2 — ["PFXT"] magic, a
    version varint, then CRC32-checksummed ["FRME"] frames and a
    checksummed ["FEND"] totals footer — but each frame's payload
    stores the events {e column by column} in the {!Packed.t} layout:
    a run-length tag index, a sorted dictionary of allocation sites,
    then one delta/zig-zag-varint (or bit-packed, for access write
    flags) column per field.  See [doc/columnar.md] for the exact
    byte layout.

    Because the frame machinery is shared, crash safety (truncation is
    detected by the footer), strict rejection of corruption, and
    marker-resync lenient recovery all behave exactly as for v2; and
    {!Stream.of_binary_file} cuts stream segments at frame boundaries
    for either container.

    The decoder is {e zero-copy} in the sense that no per-event value
    is ever boxed: columns decode straight into flat int arrays that
    are handed to consumers as a {!Packed.t} view, replay-ready.
    Compared with v2 this removes the per-event [Event.t] allocation
    and re-packing, and the RLE tag/thread indexes shrink the file
    (typically well under v2's 3-5 bytes/event). *)

val version_columnar : int
(** 3 — the columnar container version (shares {!Binfmt.magic}). *)

val default_frame_events : int
(** = {!Binfmt.default_frame_events} (65536). *)

(** {2 Writing} *)

(** Incremental frame writer, for spooling a segment stream to a
    container without materializing the trace ({!Stream.to_columnar_file}). *)
module Writer : sig
  type t

  val create : ?frame_events:int -> Buffer.t -> t
  (** Write the container header into [buf] and return a writer.
      Raises [Invalid_argument] when [frame_events <= 0]. *)

  val add_segment : t -> Packed.t -> unit
  (** Encode a packed segment as one frame ([frame_events]-sized slices
      when the segment is larger).  Raises [Invalid_argument] after
      {!finish}. *)

  val finish : t -> unit
  (** Write the checksummed totals footer.  Raises [Invalid_argument]
      when called twice. *)
end

val write_buffer : ?frame_events:int -> Buffer.t -> Packed.t -> unit
(** Whole-trace convenience: header, [frame_events]-sized frames,
    footer. *)

val to_bytes : ?frame_events:int -> Packed.t -> bytes

val write_file : ?frame_events:int -> string -> Packed.t -> unit
(** Atomic (temp + rename, via {!Prefix_util.Fsio}) container write. *)

(** {2 Strict decode} *)

val read : bytes -> (Packed.t, string) result
(** Decode a whole container; [Error] on bad magic/version, any CRC or
    footer mismatch, and on every structural violation inside a frame
    payload (tag/thread runs that disagree with the event count, site
    indices outside the dictionary, column bytes left over or missing).
    Never raises on arbitrary input. *)

val read_file : string -> (Packed.t, string) result

(** {2 Lenient decode} *)

type lenient = {
  cl_packed : Packed.t;  (** surviving events, in stream order *)
  cl_lost : Binfmt.lost_range list;  (** ascending, non-overlapping *)
  cl_frames_ok : int;
  cl_frames_skipped : int;  (** resynchronization count *)
  cl_total_events : int option;
      (** footer total when a valid footer survived; [None] means the
          tail loss is unknowable *)
}

val read_lenient : bytes -> (lenient, string) result
(** Best-effort recovery mirroring {!Binfmt.read_lenient}: corrupt
    frames are skipped by scanning for the next marker, and cumulative
    counts pin the exact lost event ranges.  [Error] only when the
    header itself is unusable. *)

val read_file_lenient : string -> (lenient, string) result

val lenient_events_lost : lenient -> int

(** {2 Streaming decode} *)

type decoder
(** Reusable frame-decode scratch (column arrays, run/dictionary
    tables), resized geometrically — a streaming pass allocates
    O(largest frame) total. *)

val decoder_create : unit -> decoder

val iter_channel :
  ?decoder:decoder -> in_channel -> f:(Packed.t -> unit) -> (unit, string) result
(** Strict frame-at-a-time walk: [f] receives each frame as a packed
    view {e sharing the decoder scratch} — valid only for the duration
    of the call, never to be retained.  O(frame) memory; same errors
    as {!read}. *)

val iter_file :
  ?decoder:decoder -> string -> f:(Packed.t -> unit) -> (unit, string) result
(** {!iter_channel} over a freshly opened file (always closed); raises
    [Sys_error] if the file cannot be opened. *)

val iter_big :
  ?decoder:decoder -> Prefix_util.Bigio.t -> f:(Packed.t -> unit) ->
  (unit, string) result
(** {!iter_channel} over an mmapped container ({!Prefix_util.Bigio}):
    markers, CRCs and column bytes all read straight from the mapping —
    no channel, no payload copy.  Same validation, same errors, and the
    same scratch-sharing contract for the frames handed to [f]. *)
