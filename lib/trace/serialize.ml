let event_to_line (e : Event.t) =
  match e with
  | Alloc { obj; site; ctx; size; thread } ->
    Printf.sprintf "A %d %d %d %d %d" obj site ctx size thread
  | Access { obj; offset; write = false; thread } -> Printf.sprintf "L %d %d %d" obj offset thread
  | Access { obj; offset; write = true; thread } -> Printf.sprintf "S %d %d %d" obj offset thread
  | Free { obj; thread } -> Printf.sprintf "F %d %d" obj thread
  | Realloc { obj; new_size; thread } -> Printf.sprintf "R %d %d %d" obj new_size thread
  | Compute { instrs; thread } -> Printf.sprintf "C %d %d" instrs thread

let split_ws s =
  String.split_on_char ' ' s |> List.filter (fun x -> x <> "")

let event_of_line line : (Event.t, string) result =
  let ints parts =
    try Ok (List.map int_of_string parts)
    with _ -> Error (Printf.sprintf "malformed integer in %S" line)
  in
  (* Field sanity: negative ids/threads/offsets and non-positive sizes
     describe no real allocation and are rejected here, not deferred to
     a crash deep inside replay. *)
  let ( let* ) = Result.bind in
  let nonneg what v =
    if v < 0 then Error (Printf.sprintf "negative %s %d in %S" what v line) else Ok v
  in
  let positive what v =
    if v <= 0 then Error (Printf.sprintf "non-positive %s %d in %S" what v line) else Ok v
  in
  match split_ws line with
  | [] -> Error "empty line"
  | tag :: rest -> (
    match (tag, ints rest) with
    | _, Error e -> Error e
    | "A", Ok [ obj; site; ctx; size; thread ] ->
      let* obj = nonneg "object id" obj in
      let* site = nonneg "site id" site in
      let* ctx = nonneg "context id" ctx in
      let* size = positive "size" size in
      let* thread = nonneg "thread id" thread in
      Ok (Event.Alloc { obj; site; ctx; size; thread })
    | "L", Ok [ obj; offset; thread ] ->
      let* obj = nonneg "object id" obj in
      let* offset = nonneg "offset" offset in
      let* thread = nonneg "thread id" thread in
      Ok (Event.Access { obj; offset; write = false; thread })
    | "S", Ok [ obj; offset; thread ] ->
      let* obj = nonneg "object id" obj in
      let* offset = nonneg "offset" offset in
      let* thread = nonneg "thread id" thread in
      Ok (Event.Access { obj; offset; write = true; thread })
    | "F", Ok [ obj; thread ] ->
      let* obj = nonneg "object id" obj in
      let* thread = nonneg "thread id" thread in
      Ok (Event.Free { obj; thread })
    | "R", Ok [ obj; new_size; thread ] ->
      let* obj = nonneg "object id" obj in
      let* new_size = positive "size" new_size in
      let* thread = nonneg "thread id" thread in
      Ok (Event.Realloc { obj; new_size; thread })
    | "C", Ok [ instrs; thread ] ->
      let* instrs = nonneg "instruction count" instrs in
      let* thread = nonneg "thread id" thread in
      Ok (Event.Compute { instrs; thread })
    | _ -> Error (Printf.sprintf "unrecognised event line %S" line))

let write oc trace =
  Trace.iter (fun e -> output_string oc (event_to_line e); output_char oc '\n') trace

let to_string trace =
  let buf = Buffer.create (Trace.length trace * 16) in
  Trace.iter
    (fun e ->
      Buffer.add_string buf (event_to_line e);
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

let parse_lines lines =
  let trace = Trace.create () in
  let rec go lineno = function
    | [] -> Ok trace
    | line :: rest ->
      let trimmed = String.trim line in
      if trimmed = "" || (String.length trimmed > 0 && trimmed.[0] = '#') then go (lineno + 1) rest
      else (
        match event_of_line trimmed with
        | Ok e ->
          Trace.add trace e;
          go (lineno + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 lines

let of_string s = parse_lines (String.split_on_char '\n' s)

(* Line-by-line: only the current line is live, so reading never costs
   more than the decoded events themselves (the seed accumulated the
   whole file as a [string list] first — 2-3x the trace's own memory). *)
let iter_channel ic ~f =
  let rec go lineno =
    match input_line ic with
    | exception End_of_file -> Ok ()
    | line ->
      let trimmed = String.trim line in
      if trimmed = "" || trimmed.[0] = '#' then go (lineno + 1)
      else (
        match event_of_line trimmed with
        | Ok e ->
          f e;
          go (lineno + 1)
        | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1

let iter_file path ~f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> iter_channel ic ~f)

let read ic =
  let trace = Trace.create () in
  match iter_channel ic ~f:(Trace.add trace) with
  | Ok () -> Ok trace
  | Error _ as e -> e
