(* Streaming, bounded-memory traces.

   A [Stream.t] represents an event stream as a generator of fixed-size
   packed segments instead of one giant array: consumers fold over
   segments (each a {!Packed.t} view into a single reused buffer), so a
   pass over a trace of any length holds O(segment_events) trace memory.
   Streams are re-iterable — every iteration re-runs the underlying
   generator, which is deterministic for every source below. *)

type t = {
  segment_events : int;
  feed : (Packed.t -> unit) -> unit;
      (** push-based segment generator; re-run on every iteration.
          Emitted segments share one reused buffer and are only valid
          for the duration of the callback. *)
}

let default_segment_events = 1 lsl 16

let check_segment_events ~who n =
  if n <= 0 then invalid_arg (who ^ ": segment_events must be positive")

let create ?(segment_events = default_segment_events) gen =
  check_segment_events ~who:"Stream.create" segment_events;
  let feed emit =
    let buf = Packed.Buf.create segment_events in
    let flush () =
      if Packed.Buf.length buf > 0 then begin
        emit (Packed.Buf.view buf);
        Packed.Buf.clear buf
      end
    in
    gen (fun e ->
        Packed.Buf.add buf e;
        if Packed.Buf.is_full buf then flush ());
    flush ()
  in
  { segment_events; feed }

let segment_events t = t.segment_events

let iter_segments t f =
  let base = ref 0 in
  t.feed (fun seg ->
      f ~base:!base seg;
      base := !base + Packed.length seg)

let iter_events t f =
  iter_segments t (fun ~base seg ->
      for i = 0 to Packed.length seg - 1 do
        f (base + i) (Packed.get seg i)
      done)

let length t =
  let n = ref 0 in
  iter_segments t (fun ~base:_ seg -> n := !n + Packed.length seg);
  !n

let fold_segments t ~init ~f =
  let acc = ref init in
  iter_segments t (fun ~base seg -> acc := f !acc ~base seg);
  !acc

(* ---- sources --------------------------------------------------------- *)

let of_trace ?segment_events trace =
  create ?segment_events (fun push -> Trace.iter push trace)

(* Already-packed traces are segmented by array blits — the per-event
   boxing path of [create] is bypassed entirely. *)
let of_packed ?(segment_events = default_segment_events) packed =
  check_segment_events ~who:"Stream.of_packed" segment_events;
  let feed emit =
    let buf = Packed.Buf.create segment_events in
    let n = Packed.length packed in
    let pos = ref 0 in
    while !pos < n do
      let len = min segment_events (n - !pos) in
      Packed.Buf.clear buf;
      Packed.Buf.blit_packed buf packed ~pos:!pos ~len;
      emit (Packed.Buf.view buf);
      pos := !pos + len
    done
  in
  { segment_events; feed }

let of_text_file ?segment_events path =
  create ?segment_events (fun push ->
      match Serialize.iter_file path ~f:push with
      | Ok () -> ()
      | Error msg -> failwith (path ^ ": " ^ msg))

(* Binary files are decoded frame-aware: for framed (v2 and columnar
   v3) input the segment is flushed at every frame boundary, so
   checkpoint boundaries (= segment boundaries) coincide with the
   file's integrity-check units.  A frame larger than [segment_events]
   still flushes whenever the buffer fills, so segments never exceed
   their declared size.  The container is auto-detected from the
   header: v1/v2 take the event-at-a-time {!Binfmt} decoder, v3 the
   columnar one — whole decoded frames are blitted into the segment
   buffer, never boxed per event. *)
let of_binary_file ?(segment_events = default_segment_events) ?(backend = `Mmap)
    path =
  check_segment_events ~who:"Stream.of_binary_file" segment_events;
  (* The segment buffer, frame-decode scratch and (mmap backend) file
     mapping are cached on the stream value and shared by successive
     passes (scratch is fully rewritten on each one), so re-iteration
     costs no re-allocation and no re-mapping.  Like the buffer reuse
     itself, this assumes one iteration of a given [t] at a time —
     iterate a fresh stream per domain. *)
  let buf = lazy (Packed.Buf.create segment_events) in
  let decoder = lazy (Columnar.decoder_create ()) in
  let big = lazy (Prefix_util.Bigio.load path) in
  let feed emit =
    let buf = Lazy.force buf in
    Packed.Buf.clear buf;
    let flush () =
      if Packed.Buf.length buf > 0 then begin
        emit (Packed.Buf.view buf);
        Packed.Buf.clear buf
      end
    in
    let on_columnar_frame frame =
      let n = Packed.length frame in
      if n <= segment_events && Packed.Buf.length buf = 0 then
        (* Whole frame fits in one segment: hand the decoder's
           packed view straight through — no copy.  Like every
           emitted segment it is only valid for the duration of
           the callback. *)
        emit frame
      else begin
        let pos = ref 0 in
        while !pos < n do
          let room = segment_events - Packed.Buf.length buf in
          let len = min room (n - !pos) in
          Packed.Buf.blit_packed buf frame ~pos:!pos ~len;
          pos := !pos + len;
          if Packed.Buf.is_full buf then flush ()
        done;
        flush ()
      end
    in
    let on_event e =
      Packed.Buf.add buf e;
      if Packed.Buf.is_full buf then flush ()
    in
    let result =
      match backend with
      | `Mmap ->
        let big = Lazy.force big in
        let columnar =
          match Binfmt.big_version big with
          | Ok v -> v = Columnar.version_columnar
          | Error msg -> failwith (path ^ ": " ^ msg)
        in
        if columnar then
          Columnar.iter_big ~decoder:(Lazy.force decoder) big ~f:on_columnar_frame
        else Binfmt.iter_big big ~on_frame:flush ~f:on_event
      | `Channel ->
        let columnar =
          match Binfmt.file_version path with
          | Ok v -> v = Columnar.version_columnar
          | Error msg -> failwith (path ^ ": " ^ msg)
        in
        if columnar then
          Columnar.iter_file ~decoder:(Lazy.force decoder) path ~f:on_columnar_frame
        else Binfmt.iter_file path ~on_frame:flush ~f:on_event
    in
    match result with
    | Ok () -> flush ()
    | Error msg -> failwith (path ^ ": " ^ msg)
  in
  { segment_events; feed }

(* ---- prefetch pipelining --------------------------------------------- *)

exception Consumer_abort

(* Decode ahead of replay: a producer (spawned per pass) runs the
   underlying stream and copies each segment into one of two hand-off
   buffers — the double-buffered decoder scratch — while the consumer
   replays the other.  Classic bounded buffer of depth 2: the producer
   is at most one segment ahead, so memory stays O(2·segment_events)
   and the emitted segment sequence is exactly the underlying one
   (same order, same contents, same boundaries — byte-identical
   reports downstream).  Segments obey the usual contract: valid only
   for the duration of the callback. *)
let prefetched ?spawn t =
  let spawn =
    match spawn with
    | Some s -> s
    | None -> fun f -> let d = Domain.spawn f in fun () -> Domain.join d
  in
  let segment_events = t.segment_events in
  let feed emit =
    let bufs =
      [| Packed.Buf.create segment_events; Packed.Buf.create segment_events |]
    in
    let full = [| false; false |] in
    let finished = ref false in
    let aborted = ref false in
    let perr = ref None in
    let mu = Mutex.create () in
    let cond = Condition.create () in
    let producer () =
      (try
         let slot = ref 0 in
         t.feed (fun seg ->
             let s = !slot in
             Mutex.lock mu;
             while full.(s) && not !aborted do
               Condition.wait cond mu
             done;
             let ab = !aborted in
             Mutex.unlock mu;
             if ab then raise Consumer_abort;
             let b = bufs.(s) in
             Packed.Buf.clear b;
             Packed.Buf.blit_packed b seg ~pos:0 ~len:(Packed.length seg);
             Mutex.lock mu;
             full.(s) <- true;
             Condition.broadcast cond;
             Mutex.unlock mu;
             slot := 1 - s)
       with
      | Consumer_abort -> ()
      | e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock mu;
        perr := Some (e, bt);
        Mutex.unlock mu);
      Mutex.lock mu;
      finished := true;
      Condition.broadcast cond;
      Mutex.unlock mu
    in
    let join = spawn producer in
    (* Consumer drains slots in the same alternating order the producer
       fills them, so the next undelivered segment is always at [slot]. *)
    (try
       let slot = ref 0 in
       let continue = ref true in
       while !continue do
         let s = !slot in
         Mutex.lock mu;
         while (not full.(s)) && not !finished do
           Condition.wait cond mu
         done;
         let has = full.(s) in
         Mutex.unlock mu;
         if has then begin
           emit (Packed.Buf.view bufs.(s));
           Mutex.lock mu;
           full.(s) <- false;
           Condition.broadcast cond;
           Mutex.unlock mu;
           slot := 1 - s
         end
         else continue := false
       done
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       Mutex.lock mu;
       aborted := true;
       Condition.broadcast cond;
       Mutex.unlock mu;
       join ();
       Printexc.raise_with_backtrace e bt);
    join ();
    match !perr with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()
  in
  { segment_events; feed }

(* ---- sinks ----------------------------------------------------------- *)

(* One frame per stream segment (sliced when a segment exceeds
   [frame_events]), so segment boundaries survive a spool-to-file
   round trip. *)
let to_columnar_file ?frame_events t path =
  Prefix_util.Fsio.atomic_write path (fun buf ->
      let w = Columnar.Writer.create ?frame_events buf in
      iter_segments t (fun ~base:_ seg -> Columnar.Writer.add_segment w seg);
      Columnar.Writer.finish w)

let to_trace t =
  let trace = Trace.create () in
  iter_events t (fun _ e -> Trace.add trace e);
  trace

let to_packed t = Packed.of_trace (to_trace t)
