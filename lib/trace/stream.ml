(* Streaming, bounded-memory traces.

   A [Stream.t] represents an event stream as a generator of fixed-size
   packed segments instead of one giant array: consumers fold over
   segments (each a {!Packed.t} view into a single reused buffer), so a
   pass over a trace of any length holds O(segment_events) trace memory.
   Streams are re-iterable — every iteration re-runs the underlying
   generator, which is deterministic for every source below. *)

type t = {
  segment_events : int;
  feed : (Packed.t -> unit) -> unit;
      (** push-based segment generator; re-run on every iteration.
          Emitted segments share one reused buffer and are only valid
          for the duration of the callback. *)
}

let default_segment_events = 1 lsl 16

let check_segment_events ~who n =
  if n <= 0 then invalid_arg (who ^ ": segment_events must be positive")

let create ?(segment_events = default_segment_events) gen =
  check_segment_events ~who:"Stream.create" segment_events;
  let feed emit =
    let buf = Packed.Buf.create segment_events in
    let flush () =
      if Packed.Buf.length buf > 0 then begin
        emit (Packed.Buf.view buf);
        Packed.Buf.clear buf
      end
    in
    gen (fun e ->
        Packed.Buf.add buf e;
        if Packed.Buf.is_full buf then flush ());
    flush ()
  in
  { segment_events; feed }

let segment_events t = t.segment_events

let iter_segments t f =
  let base = ref 0 in
  t.feed (fun seg ->
      f ~base:!base seg;
      base := !base + Packed.length seg)

let iter_events t f =
  iter_segments t (fun ~base seg ->
      for i = 0 to Packed.length seg - 1 do
        f (base + i) (Packed.get seg i)
      done)

let length t =
  let n = ref 0 in
  iter_segments t (fun ~base:_ seg -> n := !n + Packed.length seg);
  !n

let fold_segments t ~init ~f =
  let acc = ref init in
  iter_segments t (fun ~base seg -> acc := f !acc ~base seg);
  !acc

(* ---- sources --------------------------------------------------------- *)

let of_trace ?segment_events trace =
  create ?segment_events (fun push -> Trace.iter push trace)

(* Already-packed traces are segmented by array blits — the per-event
   boxing path of [create] is bypassed entirely. *)
let of_packed ?(segment_events = default_segment_events) packed =
  check_segment_events ~who:"Stream.of_packed" segment_events;
  let feed emit =
    let buf = Packed.Buf.create segment_events in
    let n = Packed.length packed in
    let pos = ref 0 in
    while !pos < n do
      let len = min segment_events (n - !pos) in
      Packed.Buf.clear buf;
      Packed.Buf.blit_packed buf packed ~pos:!pos ~len;
      emit (Packed.Buf.view buf);
      pos := !pos + len
    done
  in
  { segment_events; feed }

let of_text_file ?segment_events path =
  create ?segment_events (fun push ->
      match Serialize.iter_file path ~f:push with
      | Ok () -> ()
      | Error msg -> failwith (path ^ ": " ^ msg))

(* Binary files are decoded frame-aware: for framed (v2 and columnar
   v3) input the segment is flushed at every frame boundary, so
   checkpoint boundaries (= segment boundaries) coincide with the
   file's integrity-check units.  A frame larger than [segment_events]
   still flushes whenever the buffer fills, so segments never exceed
   their declared size.  The container is auto-detected from the
   header: v1/v2 take the event-at-a-time {!Binfmt} decoder, v3 the
   columnar one — whole decoded frames are blitted into the segment
   buffer, never boxed per event. *)
let of_binary_file ?(segment_events = default_segment_events) path =
  check_segment_events ~who:"Stream.of_binary_file" segment_events;
  (* The segment buffer and frame-decode scratch are cached on the
     stream value and shared by successive passes (they are fully
     rewritten on each one), so re-iteration costs no re-allocation.
     Like the buffer reuse itself, this assumes one iteration of a
     given [t] at a time — iterate a fresh stream per domain. *)
  let buf = lazy (Packed.Buf.create segment_events) in
  let decoder = lazy (Columnar.decoder_create ()) in
  let feed emit =
    let buf = Lazy.force buf in
    Packed.Buf.clear buf;
    let flush () =
      if Packed.Buf.length buf > 0 then begin
        emit (Packed.Buf.view buf);
        Packed.Buf.clear buf
      end
    in
    let columnar =
      match Binfmt.file_version path with
      | Ok v -> v = Columnar.version_columnar
      | Error msg -> failwith (path ^ ": " ^ msg)
    in
    let result =
      if columnar then
        Columnar.iter_file ~decoder:(Lazy.force decoder) path ~f:(fun frame ->
            let n = Packed.length frame in
            if n <= segment_events && Packed.Buf.length buf = 0 then
              (* Whole frame fits in one segment: hand the decoder's
                 packed view straight through — no copy.  Like every
                 emitted segment it is only valid for the duration of
                 the callback. *)
              emit frame
            else begin
              let pos = ref 0 in
              while !pos < n do
                let room = segment_events - Packed.Buf.length buf in
                let len = min room (n - !pos) in
                Packed.Buf.blit_packed buf frame ~pos:!pos ~len;
                pos := !pos + len;
                if Packed.Buf.is_full buf then flush ()
              done;
              flush ()
            end)
      else
        Binfmt.iter_file path ~on_frame:flush ~f:(fun e ->
            Packed.Buf.add buf e;
            if Packed.Buf.is_full buf then flush ())
    in
    match result with
    | Ok () -> flush ()
    | Error msg -> failwith (path ^ ": " ^ msg)
  in
  { segment_events; feed }

(* ---- sinks ----------------------------------------------------------- *)

(* One frame per stream segment (sliced when a segment exceeds
   [frame_events]), so segment boundaries survive a spool-to-file
   round trip. *)
let to_columnar_file ?frame_events t path =
  Prefix_util.Fsio.atomic_write path (fun buf ->
      let w = Columnar.Writer.create ?frame_events buf in
      iter_segments t (fun ~base:_ seg -> Columnar.Writer.add_segment w seg);
      Columnar.Writer.finish w)

let to_trace t =
  let trace = Trace.create () in
  iter_events t (fun _ e -> Trace.add trace e);
  trace

let to_packed t = Packed.of_trace (to_trace t)
