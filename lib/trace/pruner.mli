(** Trace pruning (§2.1: "From the pruned trace, we identified ... hot
    HDS").

    Profiling traces are large; the layout analysis only needs the
    events concerning hot objects.  Pruning keeps every [Alloc], [Free]
    and [Realloc] (allocation *order* and instance numbering must be
    preserved exactly — the counters of §2.2.1 are defined over the full
    allocation stream) but drops accesses to cold objects, and can
    additionally thin dense same-object access runs, which carry no
    inter-object locality information. *)

type config = {
  keep_objects : int -> bool;  (** accesses to these objects survive *)
  max_run : int;
      (** cap on consecutive same-object accesses kept (default 4;
          [max_int] keeps all) *)
}

val config_for_hot : ?coverage:float -> Trace_stats.t -> config
(** Keep the hot objects of the analysis (default coverage 0.9),
    [max_run] 4. *)

val prune : config -> Trace.t -> Trace.t
(** The pruned trace.  Guarantees:
    - every non-[Access] event of the input is present, in order;
    - every kept [Access] appears in input order;
    - validity is preserved (a valid input prunes to a valid output). *)

val reduction : before:Trace.t -> after:Trace.t -> float
(** Fraction of events removed, in [0,1]. *)
