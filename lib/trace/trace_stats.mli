(** Per-object and per-site statistics over a recorded trace.

    This is the analysis front-end of the PreFix pipeline (Figure 8): from
    the raw trace we derive, for every dynamic object, its allocation site,
    call-stack signature, size, access count and lifetime interval, and for
    every static site the ordered list of dynamic instances it produced.
    Hot-object selection (the basis of the paper's Figure 1) lives here. *)

type obj_info = {
  obj : int;  (** dynamic object id *)
  site : int;  (** static malloc site *)
  ctx : int;  (** call-stack signature (HALO-style) *)
  size : int;  (** final size after any reallocs *)
  alloc_size : int;  (** size at allocation *)
  accesses : int;  (** number of Access events *)
  alloc_index : int;  (** trace position of the Alloc event *)
  free_index : int option;  (** trace position of the Free event, if freed *)
  instance : int;  (** 1-based dynamic allocation instance within [site] *)
}

type site_info = {
  site_id : int;
  alloc_count : int;  (** dynamic allocations from this site *)
  site_objects : int list;  (** object ids in allocation order *)
  site_accesses : int;  (** total accesses to this site's objects *)
}

type t

val analyze : Trace.t -> t
(** Single pass over the trace building all statistics (packs the
    trace first; equivalent to [analyze_packed (Packed.of_trace t)]). *)

val analyze_packed : Packed.t -> t
(** Same statistics straight off a packed trace — use this when the
    caller already holds a {!Packed.t} so the stream is only packed
    once. *)

val analyze_stream : Stream.t -> t
(** Online single-pass fold over a segment stream: identical results to
    {!analyze_packed} on the materialized trace, but holding only one
    segment of trace memory at a time. *)

val objects : t -> obj_info list
(** All dynamic objects in allocation order.  When an object id is
    reused (corrupted / lenient traces), every incarnation appears
    once — reuse no longer double-counts the latest incarnation. *)

val obj_info : t -> int -> obj_info
(** Info for one object id — the {e latest} incarnation when the id was
    reused; raises [Not_found] for unknown ids. *)

val sites : t -> site_info list
(** All static sites, ascending by id. *)

val site_info : t -> int -> site_info

val total_heap_accesses : t -> int

val trace_length : t -> int
(** Number of events the analysis consumed (the trace/stream length). *)

val max_live_objects : t -> int
(** Maximum number of simultaneously-live objects at any trace point —
    the quantity that makes object recycling applicable (§2.4).  Only
    the first Free of an object ends its lifetime: duplicate frees
    (tolerated by lenient replay) no longer drive the live count
    negative, and a reused id counts as at most one live object. *)

val reused_ids : t -> int
(** Number of Alloc events whose object id was already known — i.e. how
    many incarnations beyond the first each id contributed.  0 for
    well-formed traces. *)

val max_live_objects_of_site : t -> int -> int
(** Same, restricted to objects from one site. *)

val hot_objects : ?coverage:float -> ?min_accesses:int -> t -> obj_info list
(** [hot_objects ~coverage t] is the smallest prefix of objects in
    descending access order whose accesses cover at least [coverage]
    (default 0.9) of all heap accesses.  Objects accessed fewer than
    [min_accesses] times (default 4) never qualify, however much
    coverage is still missing — an object touched once or twice is
    cold no matter what.  These are the paper's "hot heap objects". *)

val heap_access_share : t -> int list -> float
(** Fraction (0..1) of all heap accesses that go to the given objects. *)

val lifetimes_overlap : t -> int -> int -> bool
(** Whether two objects' [alloc,free) trace intervals intersect. *)

(** {2 Online collector}

    The analysis is a single left-to-right fold, exposed so long
    streamed analyses can be checkpointed mid-pass: [feed] segments in
    order, [finish] once at the end.  [analyze_stream] is exactly
    [collector () |> feed over every segment |> finish].  The collector
    is plain data (hashtables, lists, counters) — serializable with
    [Marshal] for crash-safe resume. *)

type collector

val collector : unit -> collector

val feed : collector -> base:int -> Packed.t -> unit
(** Consume one packed segment whose first event has global index
    [base].  Segments must be fed in stream order. *)

val events_fed : collector -> int
(** Events consumed so far (the resume cursor). *)

val finish : collector -> t
