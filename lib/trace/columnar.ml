(* Columnar compressed trace container (format v3).

   Binfmt v2 frames interleave every event's fields, so decoding is an
   event-at-a-time state machine that boxes an [Event.t] per event.
   This container keeps the frame/footer machinery of v2 verbatim —
   same "FRME" header (event count, cumulative count, payload length,
   CRC32), same checksummed "FEND" footer, so crash safety, strict
   rejection and lenient marker-resync carry over — but each frame's
   payload is column-oriented:

     1. tag index        n_runs, then (tag byte, run length) pairs —
                         run-length encoded, and exactly the run
                         partition the executor's tag-specialized
                         dispatch wants
     2. site dictionary  sorted unique alloc sites, delta-varint
     3. obj column       zig-zag varint deltas, chained over the
                         non-Compute events of the frame (Compute rows
                         are implicitly object 0)
     4. alloc sites      dictionary indices, uvarint
     5. alloc sizes      zig-zag varint
     6. alloc ctxs       zig-zag varint deltas (chained per frame)
     7. access offsets   zig-zag varint
     8. access writes    bit-packed, 8 flags/byte, LSB first
     9. realloc sizes    zig-zag varint
    10. compute instrs   zig-zag varint
    11. thread index     n_runs, then (thread varint, run length) pairs

   The decoder writes each column straight into flat int arrays — the
   {!Packed.t} layout — with per-run bulk fills and no per-event
   allocation, so a decoded frame is replay-ready as is
   ({!Packed.of_arrays} wraps the scratch arrays without copying).
   Value columns are signed varints even where values are normally
   non-negative: fault-injected traces carry negative sizes/offsets
   and must still round-trip. *)

module Crc32 = Prefix_util.Crc32

let magic = Binfmt.magic
let version_columnar = 3
let frame_marker = Binfmt.frame_marker
let footer_marker = Binfmt.footer_marker
let default_frame_events = Binfmt.default_frame_events

(* ---- encoding -------------------------------------------------------- *)

let put_uvarint = Binfmt.put_uvarint
let put_varint = Binfmt.put_varint
let put_u32le = Binfmt.put_u32le

(* One frame's payload for events [pos, pos+len) of [p], appended to
   [payload].  Column buffers are built in one main pass (plus a site
   pre-pass) and concatenated in layout order. *)
let encode_range payload (p : Packed.t) ~pos ~len =
  let tags = p.Packed.tag
  and objs = p.Packed.obj
  and fas = p.Packed.fa
  and fbs = p.Packed.fb
  and fcs = p.Packed.fc
  and threads = p.Packed.thread in
  let stop = pos + len in
  (* 1. run-length tag index *)
  let tag_runs = Buffer.create 64 in
  let n_runs = ref 0 in
  let i = ref pos in
  while !i < stop do
    let t = Array.unsafe_get tags !i in
    let j = ref (!i + 1) in
    while !j < stop && Array.unsafe_get tags !j = t do incr j done;
    Buffer.add_char tag_runs (Char.chr t);
    put_uvarint tag_runs (!j - !i);
    incr n_runs;
    i := !j
  done;
  let tag_b = Buffer.create (Buffer.length tag_runs + 4) in
  put_uvarint tag_b !n_runs;
  Buffer.add_buffer tag_b tag_runs;
  (* 2. site dictionary (sorted unique alloc sites) *)
  let sites = ref [] in
  for k = pos to stop - 1 do
    if Array.unsafe_get tags k = Packed.tag_alloc then
      sites := Array.unsafe_get fas k :: !sites
  done;
  let dict = Array.of_list (List.sort_uniq compare !sites) in
  let dict_index = Hashtbl.create (max 16 (Array.length dict)) in
  Array.iteri (fun ix s -> Hashtbl.replace dict_index s ix) dict;
  let dict_b = Buffer.create 64 in
  put_uvarint dict_b (Array.length dict);
  let prev = ref 0 in
  Array.iter
    (fun s ->
      put_varint dict_b (s - !prev);
      prev := s)
    dict;
  (* 3-10. value columns, one main pass *)
  let obj_b = Buffer.create (len + 16) in
  let asite_b = Buffer.create 64 in
  let asize_b = Buffer.create 64 in
  let actx_b = Buffer.create 64 in
  let aoff_b = Buffer.create 64 in
  let awr_b = Buffer.create 16 in
  let arel_b = Buffer.create 16 in
  let acomp_b = Buffer.create 16 in
  let wbits = ref 0 in
  let wn = ref 0 in
  let prev_obj = ref 0 in
  let prev_ctx = ref 0 in
  for k = pos to stop - 1 do
    let t = Array.unsafe_get tags k in
    if t <> Packed.tag_compute then begin
      let o = Array.unsafe_get objs k in
      put_varint obj_b (o - !prev_obj);
      prev_obj := o
    end;
    if t = Packed.tag_alloc then begin
      put_uvarint asite_b (Hashtbl.find dict_index (Array.unsafe_get fas k));
      put_varint asize_b (Array.unsafe_get fbs k);
      let ctx = Array.unsafe_get fcs k in
      put_varint actx_b (ctx - !prev_ctx);
      prev_ctx := ctx
    end
    else if t = Packed.tag_access then begin
      put_varint aoff_b (Array.unsafe_get fas k);
      if Array.unsafe_get fbs k <> 0 then wbits := !wbits lor (1 lsl !wn);
      incr wn;
      if !wn = 8 then begin
        Buffer.add_char awr_b (Char.chr !wbits);
        wbits := 0;
        wn := 0
      end
    end
    else if t = Packed.tag_realloc then put_varint arel_b (Array.unsafe_get fas k)
    else if t = Packed.tag_compute then put_varint acomp_b (Array.unsafe_get fas k)
  done;
  if !wn > 0 then Buffer.add_char awr_b (Char.chr !wbits);
  (* 11. run-length thread index *)
  let thr_b = Buffer.create 16 in
  let n_truns = ref 0 in
  let thr_runs = Buffer.create 16 in
  let i = ref pos in
  while !i < stop do
    let th = Array.unsafe_get threads !i in
    let j = ref (!i + 1) in
    while !j < stop && Array.unsafe_get threads !j = th do incr j done;
    put_varint thr_runs th;
    put_uvarint thr_runs (!j - !i);
    incr n_truns;
    i := !j
  done;
  put_uvarint thr_b !n_truns;
  Buffer.add_buffer thr_b thr_runs;
  (* concatenate in layout order *)
  Buffer.add_buffer payload tag_b;
  Buffer.add_buffer payload dict_b;
  Buffer.add_buffer payload obj_b;
  Buffer.add_buffer payload asite_b;
  Buffer.add_buffer payload asize_b;
  Buffer.add_buffer payload actx_b;
  Buffer.add_buffer payload aoff_b;
  Buffer.add_buffer payload awr_b;
  Buffer.add_buffer payload arel_b;
  Buffer.add_buffer payload acomp_b;
  Buffer.add_buffer payload thr_b

module Writer = struct
  type t = {
    buf : Buffer.t;
    frame_events : int;
    payload : Buffer.t;
    mutable cum : int;
    mutable frames : int;
    mutable finished : bool;
  }

  let create ?(frame_events = default_frame_events) buf =
    if frame_events <= 0 then
      invalid_arg "Columnar.Writer.create: frame_events must be positive";
    Buffer.add_string buf magic;
    put_uvarint buf version_columnar;
    { buf;
      frame_events;
      payload = Buffer.create 4096;
      cum = 0;
      frames = 0;
      finished = false }

  let emit_frame w p ~pos ~len =
    Buffer.clear w.payload;
    encode_range w.payload p ~pos ~len;
    Buffer.add_string w.buf frame_marker;
    put_uvarint w.buf len;
    put_uvarint w.buf w.cum;
    put_uvarint w.buf (Buffer.length w.payload);
    put_u32le w.buf (Crc32.string (Buffer.contents w.payload));
    Buffer.add_buffer w.buf w.payload;
    w.cum <- w.cum + len;
    w.frames <- w.frames + 1

  let add_segment w p =
    if w.finished then invalid_arg "Columnar.Writer.add_segment: writer finished";
    let n = Packed.length p in
    let pos = ref 0 in
    while !pos < n do
      let len = min w.frame_events (n - !pos) in
      emit_frame w p ~pos:!pos ~len;
      pos := !pos + len
    done

  let finish w =
    if w.finished then invalid_arg "Columnar.Writer.finish: writer finished";
    w.finished <- true;
    let fb = Buffer.create 16 in
    put_uvarint fb w.frames;
    put_uvarint fb w.cum;
    Buffer.add_string w.buf footer_marker;
    Buffer.add_buffer w.buf fb;
    put_u32le w.buf (Crc32.string (Buffer.contents fb))
end

let write_buffer ?frame_events buf p =
  let w = Writer.create ?frame_events buf in
  Writer.add_segment w p;
  Writer.finish w

let to_bytes ?frame_events p =
  let buf = Buffer.create (Packed.length p * 3) in
  write_buffer ?frame_events buf p;
  Buffer.to_bytes buf

let write_file ?frame_events path p =
  Prefix_util.Fsio.atomic_write path (fun buf -> write_buffer ?frame_events buf p)

(* ---- decoding -------------------------------------------------------- *)

(* Reusable frame-decode scratch: the column arrays are resized
   geometrically and shared with the [Packed.t] handed to consumers
   (zero-copy), so a streaming pass allocates O(max frame) however many
   frames flow through. *)
type decoder = {
  mutable cap : int;
  mutable d_tag : int array;
  mutable d_obj : int array;
  mutable d_fa : int array;
  mutable d_fb : int array;
  mutable d_fc : int array;
  mutable d_thread : int array;
  mutable runs_cap : int;
  mutable runs_tag : int array;
  mutable runs_len : int array;
  (* Per-tag run index, rebuilt per frame from the tag pass: offsets
     and lengths of the runs of each tag, so every column pass walks
     only its own tag's runs instead of scanning the full run list. *)
  tr_n : int array;
  tr_off : int array array;
  tr_len : int array array;
  mutable dict_cap : int;
  mutable dict : int array;
}

let decoder_create () =
  { cap = 0;
    d_tag = [||];
    d_obj = [||];
    d_fa = [||];
    d_fb = [||];
    d_fc = [||];
    d_thread = [||];
    runs_cap = 0;
    runs_tag = [||];
    runs_len = [||];
    tr_n = Array.make 5 0;
    tr_off = Array.make 5 [||];
    tr_len = Array.make 5 [||];
    dict_cap = 0;
    dict = [||] }

let grow_to n cur = max n (max 16 (2 * cur))

let ensure_cap d n =
  if n > d.cap then begin
    let c = grow_to n d.cap in
    d.cap <- c;
    d.d_tag <- Array.make c 0;
    d.d_obj <- Array.make c 0;
    d.d_fa <- Array.make c 0;
    d.d_fb <- Array.make c 0;
    d.d_fc <- Array.make c 0;
    d.d_thread <- Array.make c 0
  end

let ensure_runs d n =
  if n > d.runs_cap then begin
    let c = grow_to n d.runs_cap in
    d.runs_cap <- c;
    d.runs_tag <- Array.make c 0;
    d.runs_len <- Array.make c 0;
    for t = 0 to 4 do
      d.tr_off.(t) <- Array.make c 0;
      d.tr_len.(t) <- Array.make c 0
    done
  end

let ensure_dict d n =
  if n > d.dict_cap then begin
    let c = grow_to n d.dict_cap in
    d.dict_cap <- c;
    d.dict <- Array.make c 0
  end

exception Corrupt of string

let fail msg = raise (Corrupt msg)

(* Decode one CRC-verified payload at [data[pos, pos+plen)] into [d] and
   return the frame as a zero-copy packed view over the scratch arrays
   (valid until the next decode into [d]).  All structural claims are
   validated, so a bit-flipped payload that somehow passes the CRC still
   cannot crash the caller or fabricate out-of-range columns. *)
let decode_payload d data ~pos:pos0 ~plen ~n_events =
  try
    let limit = pos0 + plen in
    if limit > Bytes.length data then fail "truncated frame payload";
    let pos = ref pos0 in
    let u8 () =
      if !pos >= limit then fail "truncated column";
      let b = Char.code (Bytes.unsafe_get data !pos) in
      incr pos;
      b
    in
    (* Exception-based varint readers, flattened into iterative loops
       with a single-byte fast path: these run two-to-three times per
       event and dominate decode time.  [unsafe_get] is guarded by the
       [limit] check; shifts stay in 0..56 (9 bytes = 63 bits), exactly
       the encoder's range. *)
    let slow_tail first_byte =
      let acc = ref (first_byte land 0x7f) in
      let shift = ref 7 in
      let p = ref (!pos + 1) in
      let more = ref true in
      while !more do
        if !shift > 56 then fail "varint too long";
        if !p >= limit then fail "truncated column";
        let b = Char.code (Bytes.unsafe_get data !p) in
        incr p;
        acc := !acc lor ((b land 0x7f) lsl !shift);
        shift := !shift + 7;
        if b land 0x80 = 0 then more := false
      done;
      pos := !p;
      !acc
    in
    let uv () =
      let p = !pos in
      if p >= limit then fail "truncated column";
      let b = Char.code (Bytes.unsafe_get data p) in
      if b < 0x80 then begin
        pos := p + 1;
        b
      end
      else begin
        let acc = slow_tail b in
        if acc < 0 then fail "varint overflows";
        acc
      end
    in
    let sv () =
      let p = !pos in
      if p >= limit then fail "truncated column";
      let b = Char.code (Bytes.unsafe_get data p) in
      let acc =
        if b < 0x80 then begin
          pos := p + 1;
          b
        end
        else slow_tail b
      in
      (acc lsr 1) lxor (- (acc land 1))
    in
    ensure_cap d n_events;
    let tag_a = d.d_tag
    and obj_a = d.d_obj
    and fa_a = d.d_fa
    and fb_a = d.d_fb
    and fc_a = d.d_fc
    and thread_a = d.d_thread in
    (* 1. tag runs *)
    let n_runs = uv () in
    if n_runs > n_events then fail "implausible run count";
    ensure_runs d n_runs;
    let runs_tag = d.runs_tag and runs_len = d.runs_len in
    let filled = ref 0 in
    let n_alloc = ref 0 and n_access = ref 0 in
    Array.fill d.tr_n 0 5 0;
    for r = 0 to n_runs - 1 do
      let t = u8 () in
      if t > Packed.tag_compute then fail "bad tag in run index";
      let rl = uv () in
      if rl <= 0 || !filled + rl > n_events then fail "tag runs overflow event count";
      runs_tag.(r) <- t;
      runs_len.(r) <- rl;
      Array.fill tag_a !filled rl t;
      let tn = Array.unsafe_get d.tr_n t in
      Array.unsafe_set (Array.unsafe_get d.tr_off t) tn !filled;
      Array.unsafe_set (Array.unsafe_get d.tr_len t) tn rl;
      Array.unsafe_set d.tr_n t (tn + 1);
      if t = Packed.tag_alloc then n_alloc := !n_alloc + rl
      else if t = Packed.tag_access then n_access := !n_access + rl;
      filled := !filled + rl
    done;
    if !filled <> n_events then fail "tag runs disagree with event count";
    (* 2. site dictionary *)
    let n_sites = uv () in
    if n_sites > !n_alloc then fail "implausible dictionary size";
    ensure_dict d n_sites;
    let dict = d.dict in
    let prev = ref 0 in
    for s = 0 to n_sites - 1 do
      prev := !prev + sv ();
      dict.(s) <- !prev
    done;
    (* 3. obj column (Compute rows are implicitly 0) *)
    let prev_obj = ref 0 in
    let off = ref 0 in
    for r = 0 to n_runs - 1 do
      let rl = Array.unsafe_get runs_len r in
      if Array.unsafe_get runs_tag r = Packed.tag_compute then
        Array.fill obj_a !off rl 0
      else
        for k = !off to !off + rl - 1 do
          prev_obj := !prev_obj + sv ();
          Array.unsafe_set obj_a k !prev_obj
        done;
      off := !off + rl
    done;
    (* Per-column passes: each walks only its own tag's runs, via the
       per-tag index built in the tag pass above. *)
    let iter_runs tag fill =
      let offs = Array.unsafe_get d.tr_off tag
      and lens = Array.unsafe_get d.tr_len tag in
      for r = 0 to Array.unsafe_get d.tr_n tag - 1 do
        fill (Array.unsafe_get offs r) (Array.unsafe_get lens r)
      done
    in
    (* 4. alloc sites (dictionary indices) -> fa *)
    iter_runs Packed.tag_alloc (fun off rl ->
        for k = off to off + rl - 1 do
          let ix = uv () in
          if ix >= n_sites then fail "site index out of dictionary range";
          Array.unsafe_set fa_a k (Array.unsafe_get dict ix)
        done);
    (* 5. alloc sizes -> fb *)
    iter_runs Packed.tag_alloc (fun off rl ->
        for k = off to off + rl - 1 do
          Array.unsafe_set fb_a k (sv ())
        done);
    (* 6. alloc ctxs (delta-chained) -> fc *)
    let prev_ctx = ref 0 in
    iter_runs Packed.tag_alloc (fun off rl ->
        for k = off to off + rl - 1 do
          prev_ctx := !prev_ctx + sv ();
          Array.unsafe_set fc_a k !prev_ctx
        done);
    (* 7. access offsets -> fa *)
    iter_runs Packed.tag_access (fun off rl ->
        for k = off to off + rl - 1 do
          Array.unsafe_set fa_a k (sv ())
        done);
    (* 8. access write flags (bit-packed) -> fb *)
    let bitn = ref 0 in
    let wcur = ref 0 in
    iter_runs Packed.tag_access (fun off rl ->
        for k = off to off + rl - 1 do
          if !bitn land 7 = 0 then wcur := u8 ();
          Array.unsafe_set fb_a k ((!wcur lsr (!bitn land 7)) land 1);
          incr bitn
        done);
    (* 9. realloc new sizes -> fa *)
    iter_runs Packed.tag_realloc (fun off rl ->
        for k = off to off + rl - 1 do
          Array.unsafe_set fa_a k (sv ())
        done);
    (* 10. compute instrs -> fa *)
    iter_runs Packed.tag_compute (fun off rl ->
        for k = off to off + rl - 1 do
          Array.unsafe_set fa_a k (sv ())
        done);
    (* Zero the fields each tag leaves undefined, matching
       {!Packed.of_trace}'s layout exactly (bulk fills per run). *)
    iter_runs Packed.tag_access (fun off rl -> Array.fill fc_a off rl 0);
    iter_runs Packed.tag_free (fun off rl ->
        Array.fill fa_a off rl 0;
        Array.fill fb_a off rl 0;
        Array.fill fc_a off rl 0);
    iter_runs Packed.tag_realloc (fun off rl ->
        Array.fill fb_a off rl 0;
        Array.fill fc_a off rl 0);
    iter_runs Packed.tag_compute (fun off rl ->
        Array.fill fb_a off rl 0;
        Array.fill fc_a off rl 0);
    (* 11. thread runs *)
    let n_truns = uv () in
    if n_truns > n_events then fail "implausible thread run count";
    let toff = ref 0 in
    for _ = 1 to n_truns do
      let th = sv () in
      let rl = uv () in
      if rl <= 0 || !toff + rl > n_events then fail "thread runs overflow event count";
      Array.fill thread_a !toff rl th;
      toff := !toff + rl
    done;
    if !toff <> n_events then fail "thread runs disagree with event count";
    if !pos <> limit then fail "frame payload length mismatch";
    Ok
      (Packed.of_arrays ~len:n_events ~tag:tag_a ~obj:obj_a ~fa:fa_a ~fb:fb_a
         ~fc:fc_a ~thread:thread_a)
  with Corrupt msg -> Error msg

(* ---- strict whole-file decode ---------------------------------------- *)

let get_uvarint = Binfmt.get_uvarint
let get_u32le = Binfmt.get_u32le

let check_header (c : Binfmt.cursor) =
  let ( let* ) = Result.bind in
  let data = c.Binfmt.data in
  let* () =
    if Bytes.length data < 4 then
      Error (Printf.sprintf "empty or truncated file (offset %d)" (Bytes.length data))
    else if Bytes.sub_string data 0 4 <> magic then Error "bad magic"
    else begin
      c.Binfmt.pos <- 4;
      Ok ()
    end
  in
  let* v = get_uvarint c in
  if v <> version_columnar then
    Error (Printf.sprintf "unsupported version %d (columnar is %d)" v version_columnar)
  else Ok ()

(* Concatenate per-frame copies into one packed trace. *)
let concat_chunks chunks total =
  let tag = Array.make total 0
  and obj = Array.make total 0
  and fa = Array.make total 0
  and fb = Array.make total 0
  and fc = Array.make total 0
  and thread = Array.make total 0 in
  let off = ref 0 in
  List.iter
    (fun (p : Packed.t) ->
      let n = Packed.length p in
      Array.blit p.Packed.tag 0 tag !off n;
      Array.blit p.Packed.obj 0 obj !off n;
      Array.blit p.Packed.fa 0 fa !off n;
      Array.blit p.Packed.fb 0 fb !off n;
      Array.blit p.Packed.fc 0 fc !off n;
      Array.blit p.Packed.thread 0 thread !off n;
      off := !off + n)
    (List.rev chunks);
  Packed.of_arrays ~len:total ~tag ~obj ~fa ~fb ~fc ~thread

(* Copy a decoded frame out of the decoder scratch (materializing
   readers only; the streaming path never copies). *)
let copy_frame (p : Packed.t) =
  let n = Packed.length p in
  Packed.of_arrays ~len:n
    ~tag:(Array.sub p.Packed.tag 0 n)
    ~obj:(Array.sub p.Packed.obj 0 n)
    ~fa:(Array.sub p.Packed.fa 0 n)
    ~fb:(Array.sub p.Packed.fb 0 n)
    ~fc:(Array.sub p.Packed.fc 0 n)
    ~thread:(Array.sub p.Packed.thread 0 n)

let read data =
  let ( let* ) = Result.bind in
  let c = { Binfmt.data; pos = 0 } in
  let* () = check_header c in
  let len = Bytes.length data in
  let d = decoder_create () in
  let chunks = ref [] in
  let decoded = ref 0 in
  let frames = ref 0 in
  let rec loop () =
    if c.Binfmt.pos + 4 > len then
      Error (Printf.sprintf "truncated file (missing footer) at offset %d" c.Binfmt.pos)
    else begin
      let marker = Bytes.sub_string data c.Binfmt.pos 4 in
      c.Binfmt.pos <- c.Binfmt.pos + 4;
      if marker = frame_marker then begin
        let frame_off = c.Binfmt.pos - 4 in
        let* events = get_uvarint c in
        let* cum = get_uvarint c in
        let* plen = get_uvarint c in
        let* crc = get_u32le c in
        let* () =
          if c.Binfmt.pos + plen > len then
            Error (Printf.sprintf "truncated frame payload at offset %d" c.Binfmt.pos)
          else Ok ()
        in
        let* () =
          (* Every event contributes at least one byte to some value
             column (obj delta or Compute instrs). *)
          if events > plen then
            Error
              (Printf.sprintf "implausible event count %d for %d payload bytes" events
                 plen)
          else Ok ()
        in
        let* () =
          if cum <> !decoded then
            Error
              (Printf.sprintf
                 "frame at offset %d claims cumulative count %d but %d events decoded"
                 frame_off cum !decoded)
          else Ok ()
        in
        let* () =
          if Crc32.sub_bytes data ~pos:c.Binfmt.pos ~len:plen <> crc then
            Error (Printf.sprintf "frame CRC mismatch at offset %d" frame_off)
          else Ok ()
        in
        let* frame = decode_payload d data ~pos:c.Binfmt.pos ~plen ~n_events:events in
        chunks := copy_frame frame :: !chunks;
        decoded := !decoded + events;
        incr frames;
        c.Binfmt.pos <- c.Binfmt.pos + plen;
        loop ()
      end
      else if marker = footer_marker then begin
        let fstart = c.Binfmt.pos in
        let* nframes = get_uvarint c in
        let* nevents = get_uvarint c in
        let fend = c.Binfmt.pos in
        let* crc = get_u32le c in
        let* () =
          if Crc32.sub_bytes data ~pos:fstart ~len:(fend - fstart) <> crc then
            Error "footer CRC mismatch"
          else Ok ()
        in
        let* () =
          if nframes <> !frames || nevents <> !decoded then
            Error
              (Printf.sprintf
                 "footer totals (%d frames, %d events) disagree with stream (%d frames, \
                  %d events)"
                 nframes nevents !frames !decoded)
          else Ok ()
        in
        if c.Binfmt.pos <> len then
          Error (Printf.sprintf "trailing bytes after footer at offset %d" c.Binfmt.pos)
        else Ok (concat_chunks !chunks !decoded)
      end
      else Error (Printf.sprintf "bad frame marker at offset %d" (c.Binfmt.pos - 4))
    end
  in
  loop ()

(* ---- lenient decode --------------------------------------------------- *)

type lenient = {
  cl_packed : Packed.t;
  cl_lost : Binfmt.lost_range list;
  cl_frames_ok : int;
  cl_frames_skipped : int;
  cl_total_events : int option;
}

let lenient_events_lost l =
  List.fold_left
    (fun acc (r : Binfmt.lost_range) -> acc + (r.lost_to - r.lost_from))
    0 l.cl_lost

let read_lenient data =
  let ( let* ) = Result.bind in
  let c = { Binfmt.data; pos = 0 } in
  let* () = check_header c in
  let len = Bytes.length data in
  let d = decoder_create () in
  let chunks = ref [] in
  let kept = ref 0 in
  let lost = ref [] in
  let orig = ref 0 in
  let ok_frames = ref 0 in
  let skipped = ref 0 in
  let total = ref None in
  let add_lost a b =
    if b > a then lost := { Binfmt.lost_from = a; lost_to = b } :: !lost
  in
  let marker_at p =
    p + 4 <= len
    && (let m = Bytes.sub_string data p 4 in
        m = frame_marker || m = footer_marker)
  in
  let rec scan p = if p + 4 > len then len else if marker_at p then p else scan (p + 1) in
  let try_frame p =
    let c = { Binfmt.data; pos = p + 4 } in
    let parse =
      let* events = get_uvarint c in
      let* cum = get_uvarint c in
      let* plen = get_uvarint c in
      let* crc = get_u32le c in
      if c.Binfmt.pos + plen > len || events > plen then Error "bounds"
      else if Crc32.sub_bytes data ~pos:c.Binfmt.pos ~len:plen <> crc then Error "crc"
      else
        let* frame = decode_payload d data ~pos:c.Binfmt.pos ~plen ~n_events:events in
        Ok (copy_frame frame, cum, c.Binfmt.pos + plen)
    in
    Result.to_option parse
  in
  let try_footer p =
    let c = { Binfmt.data; pos = p + 4 } in
    let parse =
      let* _nframes = get_uvarint c in
      let* nevents = get_uvarint c in
      let fend = c.Binfmt.pos in
      let* crc = get_u32le c in
      if Crc32.sub_bytes data ~pos:(p + 4) ~len:(fend - (p + 4)) <> crc then Error "crc"
      else Ok nevents
    in
    Result.to_option parse
  in
  let rec loop p =
    if p + 4 > len then ()
    else
      let m = Bytes.sub_string data p 4 in
      if m = frame_marker then
        match try_frame p with
        | Some (frame, cum, next) when cum >= !orig ->
          add_lost !orig cum;
          chunks := frame :: !chunks;
          kept := !kept + Packed.length frame;
          orig := cum + Packed.length frame;
          incr ok_frames;
          loop next
        | _ ->
          incr skipped;
          loop (scan (p + 1))
      else if m = footer_marker then begin
        match try_footer p with
        | Some nevents when nevents >= !orig ->
          add_lost !orig nevents;
          orig := nevents;
          total := Some nevents
        | _ ->
          incr skipped;
          loop (scan (p + 1))
      end
      else begin
        incr skipped;
        loop (scan (p + 1))
      end
  in
  loop c.Binfmt.pos;
  Ok
    { cl_packed = concat_chunks !chunks !kept;
      cl_lost = List.rev !lost;
      cl_frames_ok = !ok_frames;
      cl_frames_skipped = !skipped;
      cl_total_events = !total }

(* ---- streaming decode ------------------------------------------------- *)

(* Strict frame-at-a-time walk off a channel: O(frame) memory, the
   callback's packed view shares the decoder scratch and is only valid
   for the duration of the call. *)
let iter_channel ?(decoder = decoder_create ()) ic ~f =
  let ( let* ) = Result.bind in
  let* () =
    match really_input_string ic 4 with
    | exception End_of_file ->
      Error (Printf.sprintf "empty or truncated file (offset %d)" (pos_in ic))
    | m -> if m <> magic then Error "bad magic" else Ok ()
  in
  let get_uv () =
    let rec go shift acc =
      match input_char ic with
      | exception End_of_file -> Error "truncated varint"
      | ch ->
        let b = Char.code ch in
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then if acc < 0 then Error "varint overflows" else Ok acc
        else if shift > 56 then Error "varint too long"
        else go (shift + 7) acc
    in
    go 0 0
  in
  let* v = get_uv () in
  let* () =
    if v <> version_columnar then
      Error (Printf.sprintf "unsupported version %d (columnar is %d)" v version_columnar)
    else Ok ()
  in
  let remaining () =
    match in_channel_length ic - pos_in ic with
    | exception Sys_error _ -> max_int
    | r -> r
  in
  let decoded = ref 0 in
  let frames = ref 0 in
  let payload = ref Bytes.empty in
  let rec loop () =
    match really_input_string ic 4 with
    | exception End_of_file ->
      Error (Printf.sprintf "truncated file (missing footer) at offset %d" (pos_in ic))
    | marker when marker = frame_marker ->
      let frame_off = pos_in ic - 4 in
      let* events = get_uv () in
      let* cum = get_uv () in
      let* plen = get_uv () in
      let* () =
        if plen > remaining () then
          Error
            (Printf.sprintf "implausible frame payload length %d at offset %d" plen
               frame_off)
        else Ok ()
      in
      let* () =
        if events > plen then
          Error
            (Printf.sprintf "implausible event count %d for %d payload bytes" events plen)
        else Ok ()
      in
      let* () =
        if cum <> !decoded then
          Error
            (Printf.sprintf
               "frame at offset %d claims cumulative count %d but %d events decoded"
               frame_off cum !decoded)
        else Ok ()
      in
      let crc_bytes = Bytes.create 4 in
      let* () =
        match really_input ic crc_bytes 0 4 with
        | exception End_of_file -> Error "truncated checksum"
        | () -> Ok ()
      in
      let b i = Char.code (Bytes.get crc_bytes i) in
      let crc = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
      if Bytes.length !payload < plen then payload := Bytes.create (grow_to plen (Bytes.length !payload));
      let* () =
        match really_input ic !payload 0 plen with
        | exception End_of_file ->
          Error (Printf.sprintf "truncated frame payload at offset %d" frame_off)
        | () -> Ok ()
      in
      let* () =
        if Crc32.sub_bytes !payload ~pos:0 ~len:plen <> crc then
          Error (Printf.sprintf "frame CRC mismatch at offset %d" frame_off)
        else Ok ()
      in
      let* frame = decode_payload decoder !payload ~pos:0 ~plen ~n_events:events in
      f frame;
      decoded := !decoded + events;
      incr frames;
      loop ()
    | marker when marker = footer_marker ->
      let fb = Buffer.create 16 in
      let get_uvarint_copy () =
        let rec go shift acc =
          match input_char ic with
          | exception End_of_file -> Error "truncated varint"
          | ch ->
            Buffer.add_char fb ch;
            let b = Char.code ch in
            let acc = acc lor ((b land 0x7f) lsl shift) in
            if b land 0x80 = 0 then
              if acc < 0 then Error "varint overflows" else Ok acc
            else if shift > 56 then Error "varint too long"
            else go (shift + 7) acc
        in
        go 0 0
      in
      let* nframes = get_uvarint_copy () in
      let* nevents = get_uvarint_copy () in
      let crc_bytes = Bytes.create 4 in
      let* () =
        match really_input ic crc_bytes 0 4 with
        | exception End_of_file -> Error "truncated checksum"
        | () -> Ok ()
      in
      let b i = Char.code (Bytes.get crc_bytes i) in
      let crc = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
      let* () =
        if Crc32.string (Buffer.contents fb) <> crc then Error "footer CRC mismatch"
        else Ok ()
      in
      let* () =
        if nframes <> !frames || nevents <> !decoded then
          Error
            (Printf.sprintf
               "footer totals (%d frames, %d events) disagree with stream (%d frames, \
                %d events)"
               nframes nevents !frames !decoded)
        else Ok ()
      in
      (match input_char ic with
      | exception End_of_file -> Ok ()
      | _ ->
        Error (Printf.sprintf "trailing bytes after footer at offset %d" (pos_in ic - 1)))
    | _ -> Error (Printf.sprintf "bad frame marker at offset %d" (pos_in ic - 4))
  in
  loop ()

let iter_file ?decoder path ~f =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> iter_channel ?decoder ic ~f)

(* ---- mmap (bigstring) streaming decode -------------------------------- *)

module Bigio = Prefix_util.Bigio

(* Twin of [decode_payload] reading column bytes straight out of a
   {!Bigio.t} mapping — the columnar hot path with zero payload copies.
   Deliberately duplicated rather than functorized over the byte
   source: the varint fast path runs two-to-three times per event and
   an indirect call per byte would dominate.  Keep in sync with
   [decode_payload] above. *)
let decode_payload_big d (data : Bigio.t) ~pos:pos0 ~plen ~n_events =
  try
    let limit = pos0 + plen in
    if limit > Bigio.length data then fail "truncated frame payload";
    let pos = ref pos0 in
    let u8 () =
      if !pos >= limit then fail "truncated column";
      let b = Char.code (Bigio.unsafe_get data !pos) in
      incr pos;
      b
    in
    let slow_tail first_byte =
      let acc = ref (first_byte land 0x7f) in
      let shift = ref 7 in
      let p = ref (!pos + 1) in
      let more = ref true in
      while !more do
        if !shift > 56 then fail "varint too long";
        if !p >= limit then fail "truncated column";
        let b = Char.code (Bigio.unsafe_get data !p) in
        incr p;
        acc := !acc lor ((b land 0x7f) lsl !shift);
        shift := !shift + 7;
        if b land 0x80 = 0 then more := false
      done;
      pos := !p;
      !acc
    in
    let uv () =
      let p = !pos in
      if p >= limit then fail "truncated column";
      let b = Char.code (Bigio.unsafe_get data p) in
      if b < 0x80 then begin
        pos := p + 1;
        b
      end
      else begin
        let acc = slow_tail b in
        if acc < 0 then fail "varint overflows";
        acc
      end
    in
    let sv () =
      let p = !pos in
      if p >= limit then fail "truncated column";
      let b = Char.code (Bigio.unsafe_get data p) in
      let acc =
        if b < 0x80 then begin
          pos := p + 1;
          b
        end
        else slow_tail b
      in
      (acc lsr 1) lxor (- (acc land 1))
    in
    ensure_cap d n_events;
    let tag_a = d.d_tag
    and obj_a = d.d_obj
    and fa_a = d.d_fa
    and fb_a = d.d_fb
    and fc_a = d.d_fc
    and thread_a = d.d_thread in
    (* 1. tag runs *)
    let n_runs = uv () in
    if n_runs > n_events then fail "implausible run count";
    ensure_runs d n_runs;
    let runs_tag = d.runs_tag and runs_len = d.runs_len in
    let filled = ref 0 in
    let n_alloc = ref 0 and n_access = ref 0 in
    Array.fill d.tr_n 0 5 0;
    for r = 0 to n_runs - 1 do
      let t = u8 () in
      if t > Packed.tag_compute then fail "bad tag in run index";
      let rl = uv () in
      if rl <= 0 || !filled + rl > n_events then fail "tag runs overflow event count";
      runs_tag.(r) <- t;
      runs_len.(r) <- rl;
      Array.fill tag_a !filled rl t;
      let tn = Array.unsafe_get d.tr_n t in
      Array.unsafe_set (Array.unsafe_get d.tr_off t) tn !filled;
      Array.unsafe_set (Array.unsafe_get d.tr_len t) tn rl;
      Array.unsafe_set d.tr_n t (tn + 1);
      if t = Packed.tag_alloc then n_alloc := !n_alloc + rl
      else if t = Packed.tag_access then n_access := !n_access + rl;
      filled := !filled + rl
    done;
    if !filled <> n_events then fail "tag runs disagree with event count";
    (* 2. site dictionary *)
    let n_sites = uv () in
    if n_sites > !n_alloc then fail "implausible dictionary size";
    ensure_dict d n_sites;
    let dict = d.dict in
    let prev = ref 0 in
    for s = 0 to n_sites - 1 do
      prev := !prev + sv ();
      dict.(s) <- !prev
    done;
    (* 3. obj column (Compute rows are implicitly 0) *)
    let prev_obj = ref 0 in
    let off = ref 0 in
    for r = 0 to n_runs - 1 do
      let rl = Array.unsafe_get runs_len r in
      if Array.unsafe_get runs_tag r = Packed.tag_compute then
        Array.fill obj_a !off rl 0
      else
        for k = !off to !off + rl - 1 do
          prev_obj := !prev_obj + sv ();
          Array.unsafe_set obj_a k !prev_obj
        done;
      off := !off + rl
    done;
    let iter_runs tag fill =
      let offs = Array.unsafe_get d.tr_off tag
      and lens = Array.unsafe_get d.tr_len tag in
      for r = 0 to Array.unsafe_get d.tr_n tag - 1 do
        fill (Array.unsafe_get offs r) (Array.unsafe_get lens r)
      done
    in
    (* 4. alloc sites (dictionary indices) -> fa *)
    iter_runs Packed.tag_alloc (fun off rl ->
        for k = off to off + rl - 1 do
          let ix = uv () in
          if ix >= n_sites then fail "site index out of dictionary range";
          Array.unsafe_set fa_a k (Array.unsafe_get dict ix)
        done);
    (* 5. alloc sizes -> fb *)
    iter_runs Packed.tag_alloc (fun off rl ->
        for k = off to off + rl - 1 do
          Array.unsafe_set fb_a k (sv ())
        done);
    (* 6. alloc ctxs (delta-chained) -> fc *)
    let prev_ctx = ref 0 in
    iter_runs Packed.tag_alloc (fun off rl ->
        for k = off to off + rl - 1 do
          prev_ctx := !prev_ctx + sv ();
          Array.unsafe_set fc_a k !prev_ctx
        done);
    (* 7. access offsets -> fa *)
    iter_runs Packed.tag_access (fun off rl ->
        for k = off to off + rl - 1 do
          Array.unsafe_set fa_a k (sv ())
        done);
    (* 8. access write flags (bit-packed) -> fb *)
    let bitn = ref 0 in
    let wcur = ref 0 in
    iter_runs Packed.tag_access (fun off rl ->
        for k = off to off + rl - 1 do
          if !bitn land 7 = 0 then wcur := u8 ();
          Array.unsafe_set fb_a k ((!wcur lsr (!bitn land 7)) land 1);
          incr bitn
        done);
    (* 9. realloc new sizes -> fa *)
    iter_runs Packed.tag_realloc (fun off rl ->
        for k = off to off + rl - 1 do
          Array.unsafe_set fa_a k (sv ())
        done);
    (* 10. compute instrs -> fa *)
    iter_runs Packed.tag_compute (fun off rl ->
        for k = off to off + rl - 1 do
          Array.unsafe_set fa_a k (sv ())
        done);
    iter_runs Packed.tag_access (fun off rl -> Array.fill fc_a off rl 0);
    iter_runs Packed.tag_free (fun off rl ->
        Array.fill fa_a off rl 0;
        Array.fill fb_a off rl 0;
        Array.fill fc_a off rl 0);
    iter_runs Packed.tag_realloc (fun off rl ->
        Array.fill fb_a off rl 0;
        Array.fill fc_a off rl 0);
    iter_runs Packed.tag_compute (fun off rl ->
        Array.fill fb_a off rl 0;
        Array.fill fc_a off rl 0);
    (* 11. thread runs *)
    let n_truns = uv () in
    if n_truns > n_events then fail "implausible thread run count";
    let toff = ref 0 in
    for _ = 1 to n_truns do
      let th = sv () in
      let rl = uv () in
      if rl <= 0 || !toff + rl > n_events then fail "thread runs overflow event count";
      Array.fill thread_a !toff rl th;
      toff := !toff + rl
    done;
    if !toff <> n_events then fail "thread runs disagree with event count";
    if !pos <> limit then fail "frame payload length mismatch";
    Ok
      (Packed.of_arrays ~len:n_events ~tag:tag_a ~obj:obj_a ~fa:fa_a ~fb:fb_a
         ~fc:fc_a ~thread:thread_a)
  with Corrupt msg -> Error msg

(* Strict frame-at-a-time walk over an mmapped container: markers, CRCs
   and column bytes all read from the mapping, no payload copy at all.
   Same validation and error reporting as [iter_channel]. *)
let iter_big ?(decoder = decoder_create ()) (big : Bigio.t) ~f =
  let ( let* ) = Result.bind in
  let len = Bigio.length big in
  let pos = ref 0 in
  let get_uv () =
    let rec go shift acc =
      if !pos >= len then Error "truncated varint"
      else begin
        let b = Char.code (Bigio.unsafe_get big !pos) in
        incr pos;
        let acc = acc lor ((b land 0x7f) lsl shift) in
        if b land 0x80 = 0 then if acc < 0 then Error "varint overflows" else Ok acc
        else if shift > 56 then Error "varint too long"
        else go (shift + 7) acc
      end
    in
    go 0 0
  in
  let get_u32 () =
    if !pos + 4 > len then Error "truncated checksum"
    else begin
      let b i = Char.code (Bigio.unsafe_get big (!pos + i)) in
      let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
      pos := !pos + 4;
      Ok v
    end
  in
  let* () =
    if len < 4 then Error (Printf.sprintf "empty or truncated file (offset %d)" len)
    else if Bigio.sub_string big ~pos:0 ~len:4 <> magic then Error "bad magic"
    else begin
      pos := 4;
      Ok ()
    end
  in
  let* v = get_uv () in
  let* () =
    if v <> version_columnar then
      Error (Printf.sprintf "unsupported version %d (columnar is %d)" v version_columnar)
    else Ok ()
  in
  let decoded = ref 0 in
  let frames = ref 0 in
  let rec loop () =
    if !pos + 4 > len then
      (* The channel twin consumes the (< 4) remaining bytes before
         hitting [End_of_file], so it reports the file length. *)
      Error (Printf.sprintf "truncated file (missing footer) at offset %d" len)
    else begin
      let marker = Bigio.sub_string big ~pos:!pos ~len:4 in
      pos := !pos + 4;
      if marker = frame_marker then begin
        let frame_off = !pos - 4 in
        let* events = get_uv () in
        let* cum = get_uv () in
        let* plen = get_uv () in
        let* () =
          if plen > len - !pos then
            Error
              (Printf.sprintf "implausible frame payload length %d at offset %d" plen
                 frame_off)
          else Ok ()
        in
        let* () =
          if events > plen then
            Error
              (Printf.sprintf "implausible event count %d for %d payload bytes" events
                 plen)
          else Ok ()
        in
        let* () =
          if cum <> !decoded then
            Error
              (Printf.sprintf
                 "frame at offset %d claims cumulative count %d but %d events decoded"
                 frame_off cum !decoded)
          else Ok ()
        in
        let* crc = get_u32 () in
        let* () =
          if !pos + plen > len then
            Error (Printf.sprintf "truncated frame payload at offset %d" frame_off)
          else Ok ()
        in
        let* () =
          if Crc32.sub_big big ~pos:!pos ~len:plen <> crc then
            Error (Printf.sprintf "frame CRC mismatch at offset %d" frame_off)
          else Ok ()
        in
        let* frame = decode_payload_big decoder big ~pos:!pos ~plen ~n_events:events in
        f frame;
        decoded := !decoded + events;
        incr frames;
        pos := !pos + plen;
        loop ()
      end
      else if marker = footer_marker then begin
        let fstart = !pos in
        let* nframes = get_uv () in
        let* nevents = get_uv () in
        let fend = !pos in
        let* crc = get_u32 () in
        let* () =
          if Crc32.sub_big big ~pos:fstart ~len:(fend - fstart) <> crc then
            Error "footer CRC mismatch"
          else Ok ()
        in
        let* () =
          if nframes <> !frames || nevents <> !decoded then
            Error
              (Printf.sprintf
                 "footer totals (%d frames, %d events) disagree with stream (%d frames, \
                  %d events)"
                 nframes nevents !frames !decoded)
          else Ok ()
        in
        if !pos <> len then
          Error (Printf.sprintf "trailing bytes after footer at offset %d" !pos)
        else Ok ()
      end
      else Error (Printf.sprintf "bad frame marker at offset %d" (!pos - 4))
    end
  in
  loop ()

let with_file_data path k =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let data = Bytes.create len in
      really_input ic data 0 len;
      k data)

let read_file path = with_file_data path read

let read_file_lenient path = with_file_data path read_lenient
