type anomaly =
  | Duplicate_alloc
  | Use_after_free
  | Unknown_access
  | Out_of_bounds
  | Double_free
  | Unknown_free
  | Unknown_realloc
  | Nonpositive_size
  | Negative_field
  | Leak

let all =
  [ Duplicate_alloc;
    Use_after_free;
    Unknown_access;
    Out_of_bounds;
    Double_free;
    Unknown_free;
    Unknown_realloc;
    Nonpositive_size;
    Negative_field;
    Leak ]

let name = function
  | Duplicate_alloc -> "duplicate_alloc"
  | Use_after_free -> "use_after_free"
  | Unknown_access -> "unknown_access"
  | Out_of_bounds -> "out_of_bounds"
  | Double_free -> "double_free"
  | Unknown_free -> "unknown_free"
  | Unknown_realloc -> "unknown_realloc"
  | Nonpositive_size -> "nonpositive_size"
  | Negative_field -> "negative_field"
  | Leak -> "leak"

type report = {
  events_in : int;
  events_out : int;
  counts : (anomaly * int) list;
  dropped : int;
  synthesized : int;
  rewritten : int;
}

let count report a = try List.assoc a report.counts with Not_found -> 0

let total report = List.fold_left (fun acc (_, n) -> acc + n) 0 report.counts

(* Real programs exit with objects still live, so a leak by itself does
   not make a trace unreplayable — every other kind does. *)
let structural report = total report - count report Leak

let clean report = structural report = 0

let pp_report ppf r =
  Format.fprintf ppf "%d events in, %d out; %d anomalies" r.events_in r.events_out
    (total r);
  if total r > 0 then begin
    Format.fprintf ppf " (";
    let first = ref true in
    List.iter
      (fun (a, n) ->
        if n > 0 then begin
          if not !first then Format.fprintf ppf ", ";
          first := false;
          Format.fprintf ppf "%s %d" (name a) n
        end)
      r.counts;
    Format.fprintf ppf "); %d dropped, %d synthesized, %d rewritten" r.dropped
      r.synthesized r.rewritten
  end

let report_to_string r = Format.asprintf "%a" pp_report r

(* Single pass over the event stream.  [out = Some trace] repairs into
   [trace]; [None] only classifies.  Object state mirrors the strict
   executor's view: a sanitized trace is exactly one a strict
   {!Prefix_runtime.Executor} accepts. *)
type obj_state = Live of int (* size *) | Freed

let granule = 16

let run ~out t =
  let states : (int, obj_state) Hashtbl.t = Hashtbl.create 1024 in
  let counts = Hashtbl.create 16 in
  let dropped = ref 0 and synthesized = ref 0 and rewritten = ref 0 in
  let note a = Hashtbl.replace counts a (1 + Option.value ~default:0 (Hashtbl.find_opt counts a)) in
  let emit e = match out with Some o -> Trace.add o e | None -> () in
  let synth e =
    incr synthesized;
    emit e
  in
  let drop () = incr dropped in
  (* Clamp a negative thread id (repair counts once per field). *)
  let fix_thread thread =
    if thread < 0 then begin
      note Negative_field;
      incr rewritten;
      0
    end
    else thread
  in
  Trace.iter
    (fun e ->
      match (e : Event.t) with
      | Compute { instrs; thread } ->
        let thread = fix_thread thread in
        let instrs =
          if instrs < 0 then begin
            note Negative_field;
            incr rewritten;
            0
          end
          else instrs
        in
        emit (Compute { instrs; thread })
      | Alloc { obj; site; ctx; size; thread } ->
        let thread = fix_thread thread in
        let size =
          if size <= 0 then begin
            note Nonpositive_size;
            incr rewritten;
            granule
          end
          else size
        in
        (match Hashtbl.find_opt states obj with
        | Some (Live _) ->
          (* Colliding id: the previous incarnation's free was lost —
             synthesize it so the id is re-allocatable. *)
          note Duplicate_alloc;
          synth (Free { obj; thread })
        | Some Freed | None -> ());
        Hashtbl.replace states obj (Live size);
        emit (Alloc { obj; site; ctx; size; thread })
      | Access { obj; offset; write; thread } -> (
        let thread = fix_thread thread in
        let materialize kind =
          (* Unknown or freed object: synthesize an allocation large
             enough for this access so replay can proceed. *)
          note kind;
          let size = max granule (((max offset 0 + 1) + granule - 1) / granule * granule) in
          synth (Alloc { obj; site = 0; ctx = 0; size; thread });
          Hashtbl.replace states obj (Live size);
          size
        in
        let size =
          match Hashtbl.find_opt states obj with
          | Some (Live size) -> size
          | Some Freed -> materialize Use_after_free
          | None -> materialize Unknown_access
        in
        let offset =
          if offset < 0 then begin
            note Negative_field;
            incr rewritten;
            0
          end
          else if offset >= size then begin
            note Out_of_bounds;
            incr rewritten;
            size - 1
          end
          else offset
        in
        emit (Access { obj; offset; write; thread }))
      | Free { obj; thread } -> (
        let thread = fix_thread thread in
        match Hashtbl.find_opt states obj with
        | Some (Live _) ->
          Hashtbl.replace states obj Freed;
          emit (Free { obj; thread })
        | Some Freed ->
          note Double_free;
          drop ()
        | None ->
          note Unknown_free;
          drop ())
      | Realloc { obj; new_size; thread } -> (
        let thread = fix_thread thread in
        let new_size =
          if new_size <= 0 then begin
            note Nonpositive_size;
            incr rewritten;
            granule
          end
          else new_size
        in
        match Hashtbl.find_opt states obj with
        | Some (Live _) ->
          Hashtbl.replace states obj (Live new_size);
          emit (Realloc { obj; new_size; thread })
        | Some Freed | None ->
          (* Realloc of a dead or unknown id acts as a fresh allocation
             of the requested size. *)
          note Unknown_realloc;
          incr rewritten;
          Hashtbl.replace states obj (Live new_size);
          emit (Alloc { obj; site = 0; ctx = 0; size = new_size; thread = max thread 0 }))
      )
    t;
  (* Objects still live at the end: dropped frees or a truncated tail.
     Repair closes them so the sanitized trace is leak-free. *)
  let leaked =
    Hashtbl.fold (fun obj st acc -> match st with Live _ -> obj :: acc | Freed -> acc) states []
    |> List.sort compare
  in
  List.iter
    (fun obj ->
      note Leak;
      synth (Free { obj; thread = 0 }))
    leaked;
  let counts = List.map (fun a -> (a, Option.value ~default:0 (Hashtbl.find_opt counts a))) all in
  fun events_out ->
    { events_in = Trace.length t;
      events_out;
      counts;
      dropped = !dropped;
      synthesized = !synthesized;
      rewritten = !rewritten }

let scan t = (run ~out:None t) (Trace.length t)

let sanitize t =
  let out = Trace.create ~capacity:(Trace.length t) () in
  let mk = run ~out:(Some out) t in
  (out, mk (Trace.length out))

let check t =
  let r = scan t in
  if clean r then Ok t else Error r

module Metric = Prefix_obs.Metric

let export_metrics r =
  List.iter
    (fun (a, n) -> Metric.add (Metric.counter ("sanitizer." ^ name a)) n)
    r.counts;
  Metric.add (Metric.counter "sanitizer.events_dropped") r.dropped;
  Metric.add (Metric.counter "sanitizer.events_synthesized") r.synthesized;
  Metric.add (Metric.counter "sanitizer.events_rewritten") r.rewritten
