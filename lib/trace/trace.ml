type t = {
  mutable events : Event.t array;
  mutable len : int;
}

let dummy : Event.t = Event.Compute { instrs = 0; thread = 0 }

let create ?(capacity = 1024) () =
  let capacity = max capacity 16 in
  { events = Array.make capacity dummy; len = 0 }

let length t = t.len

let grow t =
  let cap = Array.length t.events in
  let events = Array.make (cap * 2) dummy in
  Array.blit t.events 0 events 0 t.len;
  t.events <- events

let add t e =
  if t.len = Array.length t.events then grow t;
  t.events.(t.len) <- e;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Trace.get: index out of bounds";
  t.events.(i)

let iter f t =
  for i = 0 to t.len - 1 do
    f t.events.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.events.(i)
  done

let fold f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.events.(i)
  done;
  !acc

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.events.(i) :: acc) in
  go (t.len - 1) []

let of_list es =
  match es with
  | [] -> create ()
  | _ ->
    (* Array.of_list is a single exact-capacity pass — no re-growth. *)
    let events = Array.of_list es in
    { events; len = Array.length events }

let append a b =
  let len = a.len + b.len in
  let events = Array.make (max 16 len) dummy in
  Array.blit a.events 0 events 0 a.len;
  Array.blit b.events 0 events a.len b.len;
  { events; len }

let filter p t =
  let events = Array.make (max 16 t.len) dummy in
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    let e = t.events.(i) in
    if p e then begin
      events.(!n) <- e;
      incr n
    end
  done;
  { events; len = !n }

type violation =
  | Access_before_alloc of { obj : int; index : int }
  | Free_before_alloc of { obj : int; index : int }
  | Realloc_before_alloc of { obj : int; index : int }
  | Double_alloc of { obj : int; index : int }
  | Double_free of { obj : int; index : int }
  | Use_after_free of { obj : int; index : int }
  | Negative_size of { obj : int; index : int }
  | Offset_out_of_bounds of { obj : int; offset : int; size : int; index : int }

let pp_violation ppf = function
  | Access_before_alloc { obj; index } ->
    Format.fprintf ppf "event %d: object %d used before allocation" index obj
  | Free_before_alloc { obj; index } ->
    Format.fprintf ppf "event %d: object %d freed before allocation" index obj
  | Realloc_before_alloc { obj; index } ->
    Format.fprintf ppf "event %d: object %d realloc'd before allocation" index obj
  | Double_alloc { obj; index } ->
    Format.fprintf ppf "event %d: object id %d allocated twice" index obj
  | Double_free { obj; index } ->
    Format.fprintf ppf "event %d: object %d freed twice" index obj
  | Use_after_free { obj; index } ->
    Format.fprintf ppf "event %d: object %d used after free" index obj
  | Negative_size { obj; index } ->
    Format.fprintf ppf "event %d: object %d has non-positive size" index obj
  | Offset_out_of_bounds { obj; offset; size; index } ->
    Format.fprintf ppf "event %d: object %d access at offset %d outside size %d" index obj
      offset size

type obj_state = Live of int (* current size *) | Freed

let validate t =
  let states : (int, obj_state) Hashtbl.t = Hashtbl.create 1024 in
  let violations = ref [] in
  let report v = violations := v :: !violations in
  iteri
    (fun index e ->
      match (e : Event.t) with
      | Compute _ -> ()
      | Alloc { obj; size; _ } -> (
        if size <= 0 then report (Negative_size { obj; index });
        match Hashtbl.find_opt states obj with
        | Some _ -> report (Double_alloc { obj; index })
        | None -> Hashtbl.replace states obj (Live size))
      | Access { obj; offset; _ } -> (
        match Hashtbl.find_opt states obj with
        | None -> report (Access_before_alloc { obj; index })
        | Some Freed -> report (Use_after_free { obj; index })
        | Some (Live size) ->
          if offset < 0 || offset >= size then
            report (Offset_out_of_bounds { obj; offset; size; index }))
      | Free { obj; _ } -> (
        match Hashtbl.find_opt states obj with
        | None -> report (Free_before_alloc { obj; index })
        | Some Freed -> report (Double_free { obj; index })
        | Some (Live _) -> Hashtbl.replace states obj Freed)
      | Realloc { obj; new_size; _ } -> (
        if new_size <= 0 then report (Negative_size { obj; index });
        match Hashtbl.find_opt states obj with
        | None -> report (Realloc_before_alloc { obj; index })
        | Some Freed -> report (Use_after_free { obj; index })
        | Some (Live _) -> Hashtbl.replace states obj (Live new_size)))
    t;
  List.rev !violations

let num_objects t =
  fold (fun n e -> match (e : Event.t) with Alloc _ -> n + 1 | _ -> n) 0 t

let num_accesses t =
  fold (fun n e -> match (e : Event.t) with Access _ -> n + 1 | _ -> n) 0 t

let total_instructions t =
  fold
    (fun n e ->
      match (e : Event.t) with
      | Access _ -> n + 1
      | Compute { instrs; _ } -> n + instrs
      | _ -> n)
    0 t
