type t = {
  len : int;
  tag : int array;
  obj : int array;
  fa : int array;
  fb : int array;
  fc : int array;
  thread : int array;
}

let tag_alloc = 0
let tag_access = 1
let tag_free = 2
let tag_realloc = 3
let tag_compute = 4

let length t = t.len

let of_trace tr =
  let len = Trace.length tr in
  let tag = Array.make len 0 in
  let obj = Array.make len 0 in
  let fa = Array.make len 0 in
  let fb = Array.make len 0 in
  let fc = Array.make len 0 in
  let thread = Array.make len 0 in
  Trace.iteri
    (fun i e ->
      match (e : Event.t) with
      | Alloc a ->
        tag.(i) <- tag_alloc;
        obj.(i) <- a.obj;
        fa.(i) <- a.site;
        fb.(i) <- a.size;
        fc.(i) <- a.ctx;
        thread.(i) <- a.thread
      | Access a ->
        tag.(i) <- tag_access;
        obj.(i) <- a.obj;
        fa.(i) <- a.offset;
        fb.(i) <- (if a.write then 1 else 0);
        thread.(i) <- a.thread
      | Free f ->
        tag.(i) <- tag_free;
        obj.(i) <- f.obj;
        thread.(i) <- f.thread
      | Realloc r ->
        tag.(i) <- tag_realloc;
        obj.(i) <- r.obj;
        fa.(i) <- r.new_size;
        thread.(i) <- r.thread
      | Compute c ->
        tag.(i) <- tag_compute;
        fa.(i) <- c.instrs;
        thread.(i) <- c.thread)
    tr;
  { len; tag; obj; fa; fb; fc; thread }

let of_arrays ~len ~tag ~obj ~fa ~fb ~fc ~thread =
  if len < 0 then invalid_arg "Packed.of_arrays: negative length";
  if
    Array.length tag < len || Array.length obj < len || Array.length fa < len
    || Array.length fb < len || Array.length fc < len
    || Array.length thread < len
  then invalid_arg "Packed.of_arrays: column shorter than len";
  { len; tag; obj; fa; fb; fc; thread }

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Packed.get: index out of bounds";
  let obj = t.obj.(i) and thread = t.thread.(i) in
  match t.tag.(i) with
  | 0 -> Event.Alloc { obj; site = t.fa.(i); ctx = t.fc.(i); size = t.fb.(i); thread }
  | 1 -> Event.Access { obj; offset = t.fa.(i); write = t.fb.(i) <> 0; thread }
  | 2 -> Event.Free { obj; thread }
  | 3 -> Event.Realloc { obj; new_size = t.fa.(i); thread }
  | _ -> Event.Compute { instrs = t.fa.(i); thread }

let to_trace t =
  let tr = Trace.create ~capacity:(max 16 t.len) () in
  for i = 0 to t.len - 1 do
    Trace.add tr (get t i)
  done;
  tr

let nop_alloc _ ~obj:_ ~site:_ ~ctx:_ ~size:_ ~thread:_ = ()
let nop_access _ ~obj:_ ~offset:_ ~write:_ ~thread:_ = ()
let nop_obj _ ~obj:_ ~thread:_ = ()
let nop_realloc _ ~obj:_ ~new_size:_ ~thread:_ = ()
let nop_compute _ ~instrs:_ ~thread:_ = ()

let iteri ?(alloc = nop_alloc) ?(access = nop_access) ?(free = nop_obj)
    ?(realloc = nop_realloc) ?(compute = nop_compute) t =
  for i = 0 to t.len - 1 do
    let obj = Array.unsafe_get t.obj i and thread = Array.unsafe_get t.thread i in
    match Array.unsafe_get t.tag i with
    | 0 ->
      alloc i ~obj ~site:(Array.unsafe_get t.fa i) ~ctx:(Array.unsafe_get t.fc i)
        ~size:(Array.unsafe_get t.fb i) ~thread
    | 1 ->
      access i ~obj ~offset:(Array.unsafe_get t.fa i)
        ~write:(Array.unsafe_get t.fb i <> 0)
        ~thread
    | 2 -> free i ~obj ~thread
    | 3 -> realloc i ~obj ~new_size:(Array.unsafe_get t.fa i) ~thread
    | _ -> compute i ~instrs:(Array.unsafe_get t.fa i) ~thread
  done

(* ---- segment buffers -------------------------------------------------

   A [Buf.t] is a reusable fixed-capacity packed segment: the streaming
   engine fills one, hands a {!view} of it to the consumer, clears it
   and fills it again.  The arrays are allocated once per stream, so a
   bounded-memory pass over an arbitrarily long event source allocates
   O(segment) however many events flow through. *)

module Buf = struct
  type packed = t

  type t = {
    cap : int;
    mutable blen : int;
    btag : int array;
    bobj : int array;
    bfa : int array;
    bfb : int array;
    bfc : int array;
    bthread : int array;
  }

  let create cap =
    if cap <= 0 then invalid_arg "Packed.Buf.create: capacity must be positive";
    { cap;
      blen = 0;
      btag = Array.make cap 0;
      bobj = Array.make cap 0;
      bfa = Array.make cap 0;
      bfb = Array.make cap 0;
      bfc = Array.make cap 0;
      bthread = Array.make cap 0 }

  let capacity b = b.cap
  let length b = b.blen
  let is_full b = b.blen = b.cap
  let clear b = b.blen <- 0

  let add b (e : Event.t) =
    if b.blen = b.cap then invalid_arg "Packed.Buf.add: segment full";
    let i = b.blen in
    (* fb/fc are only written by Alloc/Access, so stale values from the
       previous segment must be cleared for the other tags. *)
    (match e with
    | Alloc a ->
      b.btag.(i) <- tag_alloc;
      b.bobj.(i) <- a.obj;
      b.bfa.(i) <- a.site;
      b.bfb.(i) <- a.size;
      b.bfc.(i) <- a.ctx;
      b.bthread.(i) <- a.thread
    | Access a ->
      b.btag.(i) <- tag_access;
      b.bobj.(i) <- a.obj;
      b.bfa.(i) <- a.offset;
      b.bfb.(i) <- (if a.write then 1 else 0);
      b.bfc.(i) <- 0;
      b.bthread.(i) <- a.thread
    | Free f ->
      b.btag.(i) <- tag_free;
      b.bobj.(i) <- f.obj;
      b.bfa.(i) <- 0;
      b.bfb.(i) <- 0;
      b.bfc.(i) <- 0;
      b.bthread.(i) <- f.thread
    | Realloc r ->
      b.btag.(i) <- tag_realloc;
      b.bobj.(i) <- r.obj;
      b.bfa.(i) <- r.new_size;
      b.bfb.(i) <- 0;
      b.bfc.(i) <- 0;
      b.bthread.(i) <- r.thread
    | Compute c ->
      b.btag.(i) <- tag_compute;
      b.bobj.(i) <- 0;
      b.bfa.(i) <- c.instrs;
      b.bfb.(i) <- 0;
      b.bfc.(i) <- 0;
      b.bthread.(i) <- c.thread);
    b.blen <- i + 1

  (* The view shares the buffer's arrays (len <= capacity bounds every
     consumer loop), so it is only valid until the next [clear]/[add]. *)
  let view b : packed =
    { len = b.blen;
      tag = b.btag;
      obj = b.bobj;
      fa = b.bfa;
      fb = b.bfb;
      fc = b.bfc;
      thread = b.bthread }

  let blit_packed b (src : packed) ~pos ~len =
    if len < 0 || pos < 0 || pos + len > src.len then
      invalid_arg "Packed.Buf.blit_packed: bad range";
    if b.blen + len > b.cap then invalid_arg "Packed.Buf.blit_packed: segment full";
    let d = b.blen in
    Array.blit src.tag pos b.btag d len;
    Array.blit src.obj pos b.bobj d len;
    Array.blit src.fa pos b.bfa d len;
    Array.blit src.fb pos b.bfb d len;
    Array.blit src.fc pos b.bfc d len;
    Array.blit src.thread pos b.bthread d len;
    b.blen <- d + len
end

let total_instructions t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    let tag = Array.unsafe_get t.tag i in
    if tag = tag_access then incr n
    else if tag = tag_compute then n := !n + Array.unsafe_get t.fa i
  done;
  !n

let num_accesses t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if Array.unsafe_get t.tag i = tag_access then incr n
  done;
  !n
