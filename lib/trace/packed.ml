type t = {
  len : int;
  tag : int array;
  obj : int array;
  fa : int array;
  fb : int array;
  fc : int array;
  thread : int array;
}

let tag_alloc = 0
let tag_access = 1
let tag_free = 2
let tag_realloc = 3
let tag_compute = 4

let length t = t.len

let of_trace tr =
  let len = Trace.length tr in
  let tag = Array.make len 0 in
  let obj = Array.make len 0 in
  let fa = Array.make len 0 in
  let fb = Array.make len 0 in
  let fc = Array.make len 0 in
  let thread = Array.make len 0 in
  Trace.iteri
    (fun i e ->
      match (e : Event.t) with
      | Alloc a ->
        tag.(i) <- tag_alloc;
        obj.(i) <- a.obj;
        fa.(i) <- a.site;
        fb.(i) <- a.size;
        fc.(i) <- a.ctx;
        thread.(i) <- a.thread
      | Access a ->
        tag.(i) <- tag_access;
        obj.(i) <- a.obj;
        fa.(i) <- a.offset;
        fb.(i) <- (if a.write then 1 else 0);
        thread.(i) <- a.thread
      | Free f ->
        tag.(i) <- tag_free;
        obj.(i) <- f.obj;
        thread.(i) <- f.thread
      | Realloc r ->
        tag.(i) <- tag_realloc;
        obj.(i) <- r.obj;
        fa.(i) <- r.new_size;
        thread.(i) <- r.thread
      | Compute c ->
        tag.(i) <- tag_compute;
        fa.(i) <- c.instrs;
        thread.(i) <- c.thread)
    tr;
  { len; tag; obj; fa; fb; fc; thread }

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Packed.get: index out of bounds";
  let obj = t.obj.(i) and thread = t.thread.(i) in
  match t.tag.(i) with
  | 0 -> Event.Alloc { obj; site = t.fa.(i); ctx = t.fc.(i); size = t.fb.(i); thread }
  | 1 -> Event.Access { obj; offset = t.fa.(i); write = t.fb.(i) <> 0; thread }
  | 2 -> Event.Free { obj; thread }
  | 3 -> Event.Realloc { obj; new_size = t.fa.(i); thread }
  | _ -> Event.Compute { instrs = t.fa.(i); thread }

let to_trace t =
  let tr = Trace.create ~capacity:(max 16 t.len) () in
  for i = 0 to t.len - 1 do
    Trace.add tr (get t i)
  done;
  tr

let nop_alloc _ ~obj:_ ~site:_ ~ctx:_ ~size:_ ~thread:_ = ()
let nop_access _ ~obj:_ ~offset:_ ~write:_ ~thread:_ = ()
let nop_obj _ ~obj:_ ~thread:_ = ()
let nop_realloc _ ~obj:_ ~new_size:_ ~thread:_ = ()
let nop_compute _ ~instrs:_ ~thread:_ = ()

let iteri ?(alloc = nop_alloc) ?(access = nop_access) ?(free = nop_obj)
    ?(realloc = nop_realloc) ?(compute = nop_compute) t =
  for i = 0 to t.len - 1 do
    let obj = Array.unsafe_get t.obj i and thread = Array.unsafe_get t.thread i in
    match Array.unsafe_get t.tag i with
    | 0 ->
      alloc i ~obj ~site:(Array.unsafe_get t.fa i) ~ctx:(Array.unsafe_get t.fc i)
        ~size:(Array.unsafe_get t.fb i) ~thread
    | 1 ->
      access i ~obj ~offset:(Array.unsafe_get t.fa i)
        ~write:(Array.unsafe_get t.fb i <> 0)
        ~thread
    | 2 -> free i ~obj ~thread
    | 3 -> realloc i ~obj ~new_size:(Array.unsafe_get t.fa i) ~thread
    | _ -> compute i ~instrs:(Array.unsafe_get t.fa i) ~thread
  done

let total_instructions t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    let tag = Array.unsafe_get t.tag i in
    if tag = tag_access then incr n
    else if tag = tag_compute then n := !n + Array.unsafe_get t.fa i
  done;
  !n

let num_accesses t =
  let n = ref 0 in
  for i = 0 to t.len - 1 do
    if Array.unsafe_get t.tag i = tag_access then incr n
  done;
  !n
