(** Compact binary trace format.

    Profiling traces run to millions of events; the text format of
    {!Serialize} is convenient but ~16 bytes/event.  This format uses a
    one-byte tag plus LEB128 varints with per-field delta encoding
    (object ids and sites are strongly local), typically 3-5 bytes per
    event.  The format is self-describing: a 4-byte magic, a format
    version, then the event stream.

    Encoding details (little-endian varints, zig-zag for deltas):
    - tag 0: Alloc  (Δobj, Δsite, Δctx, size, thread)
    - tag 1: load   (Δobj, offset, thread)
    - tag 2: store  (Δobj, offset, thread)
    - tag 3: Free   (Δobj, thread)
    - tag 4: Realloc (Δobj, new_size, thread)
    - tag 5: Compute (instrs, thread) *)

val magic : string
(** ["PFXT"]. *)

val version : int

val write : Buffer.t -> Trace.t -> unit
(** Append the encoded trace to a buffer. *)

val to_bytes : Trace.t -> bytes

val read : bytes -> (Trace.t, string) result
(** Decode; [Error] on bad magic, version, truncation, or a malformed
    varint. *)

val write_file : string -> Trace.t -> unit
val read_file : string -> (Trace.t, string) result

val iter_channel : in_channel -> f:(Event.t -> unit) -> (unit, string) result
(** Streaming decode straight off a (buffered) channel: [f] is called
    once per event, no trace and no whole-file copy is materialized.
    Stops at the first corruption with the same errors as {!read}. *)

val iter_file : string -> f:(Event.t -> unit) -> (unit, string) result
(** {!iter_channel} over a freshly opened binary file (always closed).
    Raises [Sys_error] if the file cannot be opened. *)
