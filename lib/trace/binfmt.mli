(** Compact binary trace format.

    Profiling traces run to millions of events; the text format of
    {!Serialize} is convenient but ~16 bytes/event.  This format uses a
    one-byte tag plus LEB128 varints with per-field delta encoding
    (object ids and sites are strongly local), typically 3-5 bytes per
    event.  The format is self-describing: a 4-byte magic, a format
    version, then the event stream.

    Encoding details (little-endian varints, zig-zag for deltas):
    - tag 0: Alloc  (Δobj, Δsite, Δctx, size, thread)
    - tag 1: load   (Δobj, offset, thread)
    - tag 2: store  (Δobj, offset, thread)
    - tag 3: Free   (Δobj, thread)
    - tag 4: Realloc (Δobj, new_size, thread)
    - tag 5: Compute (instrs, thread)

    {b Format v1} is the legacy layout: header, total event count, then
    one undelimited event stream — a single flipped byte makes
    everything after it undecodable.

    {b Format v2} (framed) chunks the stream into length-prefixed
    frames, each carrying its own event count, the cumulative event
    count before it, and a CRC32 of its payload; the delta state resets
    at each frame so frames decode independently.  A checksummed footer
    records the frame/event totals, making truncation detectable.  The
    strict readers reject any corruption; {!read_lenient} skips corrupt
    frames (resynchronizing on the frame marker) and reports exactly
    which event ranges were lost.  Both versions are readable by
    {!read} / {!iter_channel}. *)

val magic : string
(** ["PFXT"]. *)

val version : int
(** 1 — the legacy unframed format, still written by {!write} and
    always readable. *)

val version_framed : int
(** 2 — the framed, checksummed format of {!write_framed}. *)

val default_frame_events : int
(** Events per frame when unspecified (65536, matching
    {!Stream.default_segment_events} so frame boundaries and stream
    segment boundaries coincide). *)

val frame_marker : string
(** ["FRME"] — starts every frame of a framed container (v2 and the
    columnar v3 of {!Columnar}). *)

val footer_marker : string
(** ["FEND"] — starts the checksummed totals footer. *)

(** {2 Wire primitives}

    The LEB128/zig-zag vocabulary shared by every container version
    (and by {!Columnar}'s per-column encodings).  Signed varints treat
    the zig-zag image as a full 63-bit unsigned pattern — logical
    shifts on both sides — so min_int/max_int-scale deltas round-trip;
    the unsigned getters still reject a decoded sign bit as corruption
    ("varint overflows"). *)

val put_uvarint : Buffer.t -> int -> unit
(** Append an unsigned LEB128 varint.  Raises [Invalid_argument] on a
    negative argument. *)

val put_varint : Buffer.t -> int -> unit
(** Append a signed (zig-zag) varint; total for all of [int]. *)

val put_u32le : Buffer.t -> int -> unit
(** Append a 32-bit little-endian word (checksums). *)

type cursor = { data : bytes; mutable pos : int }
(** A decode position inside a byte buffer; getters advance [pos]. *)

val get_uvarint : cursor -> (int, string) result
(** Decode an unsigned varint; [Error] on truncation, a value beyond 9
    bytes, or a set sign bit. *)

val get_varint : cursor -> (int, string) result
(** Decode a signed (zig-zag) varint; the sign bit is a legal payload
    bit here, so the whole [int] range round-trips. *)

val get_u32le : cursor -> (int, string) result

val write : Buffer.t -> Trace.t -> unit
(** Append the v1 encoding of the trace to a buffer. *)

val to_bytes : Trace.t -> bytes

val write_framed : ?frame_events:int -> Buffer.t -> Trace.t -> unit
(** Append the framed (v2) encoding.  Raises [Invalid_argument] when
    [frame_events <= 0]. *)

val to_bytes_framed : ?frame_events:int -> Trace.t -> bytes

val read : bytes -> (Trace.t, string) result
(** Decode either format version; [Error] on bad magic, version,
    truncation, malformed varints, or (v2) any CRC/footer mismatch.
    An input shorter than the magic reports
    ["empty or truncated file (offset N)"]. *)

val write_file : string -> Trace.t -> unit
(** v1 file writer (kept for compatibility). *)

val write_file_framed : ?frame_events:int -> string -> Trace.t -> unit
(** Framed (v2) file writer; the file is written via temp + atomic
    rename so a crash never leaves a truncated trace behind. *)

val read_file : string -> (Trace.t, string) result

(** {2 Lenient framed decode} *)

type lost_range = { lost_from : int; lost_to : int }
(** Half-open range [\[lost_from, lost_to)] of original-stream event
    indices that could not be recovered. *)

type lenient = {
  lr_trace : Trace.t;  (** surviving events, in stream order *)
  lr_lost : lost_range list;  (** ascending, non-overlapping *)
  lr_frames_ok : int;
  lr_frames_skipped : int;  (** resynchronization count *)
  lr_total_events : int option;
      (** footer total when a valid footer was found; [None] means the
          file is truncated and the tail loss is unknowable *)
}

val read_lenient : bytes -> (lenient, string) result
(** Best-effort decode of a framed (v2) file: corrupt frames are
    skipped by scanning for the next frame marker, and each good
    frame's cumulative event count pins exactly which event ranges were
    lost.  [Error] only when the header itself is unusable (missing
    magic, not v2).  Callers typically hand [lr_trace] to
    {!Sanitizer.sanitize} to repair the dangling frees/accesses the
    lost ranges leave behind. *)

val read_file_lenient : string -> (lenient, string) result

val lenient_events_lost : lenient -> int
(** Total events in [lr_lost]. *)

val pp_lost_range : Format.formatter -> lost_range -> unit

(** {2 Streaming decode} *)

val iter_channel :
  ?on_frame:(unit -> unit) -> in_channel -> f:(Event.t -> unit) -> (unit, string) result
(** Streaming decode straight off a (buffered) channel: [f] is called
    once per event, no trace and no whole-file copy is materialized
    (v2 holds one frame at a time).  Stops at the first corruption with
    the same errors as {!read}; an empty channel reports
    ["empty or truncated file (offset N)"].  For v2 input [on_frame]
    fires after each frame's events (never for v1) — the streaming
    engine uses it to cut segments exactly at frame boundaries. *)

val iter_file :
  ?on_frame:(unit -> unit) -> string -> f:(Event.t -> unit) -> (unit, string) result
(** {!iter_channel} over a freshly opened binary file (always closed).
    Raises [Sys_error] if the file cannot be opened. *)

val file_version : string -> (int, string) result
(** Sniff a file's container version (magic + version varint only):
    1/2 are the formats decoded here, {!Columnar.version_columnar} is
    the columnar container.  [Error] on bad magic or truncation; raises
    [Sys_error] if the file cannot be opened. *)

(** {2 Zero-copy (mmap) strict decode}

    Twins of {!iter_channel} running over a {!Prefix_util.Bigio.t}
    mapping of the whole container: the frame walk, CRC checks and
    event decode read straight from the mapped region — no channel and
    no payload copy.  Same events, same rejections as the channel
    path (differentially tested). *)

val iter_big :
  ?on_frame:(unit -> unit) -> Prefix_util.Bigio.t -> f:(Event.t -> unit) ->
  (unit, string) result
(** Strict v1/v2 decode over a mapped container; [on_frame] fires after
    each v2 frame's events, exactly like {!iter_channel}. *)

val big_version : Prefix_util.Bigio.t -> (int, string) result
(** {!file_version} over an already-loaded mapping. *)
