(** Growable buffers of trace events with the validity checks the analysis
    passes depend on (alloc-before-use, no double free, no use-after-free). *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val add : t -> Event.t -> unit
(** Append one event.  No validation is performed here; call {!validate}
    once recording is complete. *)

val get : t -> int -> Event.t
(** Random access; raises [Invalid_argument] out of bounds. *)

val iter : (Event.t -> unit) -> t -> unit

val iteri : (int -> Event.t -> unit) -> t -> unit

val fold : ('a -> Event.t -> 'a) -> 'a -> t -> 'a

val to_list : t -> Event.t list

val of_list : Event.t list -> t

val append : t -> t -> t
(** [append a b] is a fresh trace with all of [a]'s events then [b]'s,
    built with two blits into an exact-capacity buffer. *)

val filter : (Event.t -> bool) -> t -> t

type violation =
  | Access_before_alloc of { obj : int; index : int }
  | Free_before_alloc of { obj : int; index : int }
  | Realloc_before_alloc of { obj : int; index : int }
  | Double_alloc of { obj : int; index : int }
  | Double_free of { obj : int; index : int }
  | Use_after_free of { obj : int; index : int }
  | Negative_size of { obj : int; index : int }
  | Offset_out_of_bounds of { obj : int; offset : int; size : int; index : int }

val pp_violation : Format.formatter -> violation -> unit

val validate : t -> violation list
(** Full well-formedness check of a recorded trace; empty list means valid.
    Workload generators are property-tested against this. *)

val num_objects : t -> int
(** Number of distinct dynamic objects allocated. *)

val num_accesses : t -> int
(** Number of [Access] events. *)

val total_instructions : t -> int
(** Accesses (1 instruction each) plus all [Compute] instructions; the
    baseline dynamic-instruction count before any allocator costs. *)
