(** Streaming, bounded-memory traces.

    A stream represents an event source as a generator of fixed-size
    packed segments ({!Packed.t} chunks filled from one reused
    {!Packed.Buf}) instead of a single materialized array, so a pass
    over a trace of any length holds O([segment_events]) trace memory.

    Streams are {e re-iterable}: every {!iter_segments} (or derived
    consumer) re-runs the underlying generator from the start.  All
    the sources below are deterministic, so repeated passes observe
    identical events. *)

type t

val default_segment_events : int
(** 65536 events per segment. *)

val create : ?segment_events:int -> ((Event.t -> unit) -> unit) -> t
(** [create gen] wraps a push-based event generator: each iteration
    calls [gen push] and [gen] must call [push] once per event, in
    order.  Raises [Invalid_argument] when [segment_events <= 0]. *)

val segment_events : t -> int

val iter_segments : t -> (base:int -> Packed.t -> unit) -> unit
(** One pass: the callback receives each segment together with the
    global index of its first event ([base]).  Segments share one
    reused buffer — they are valid only for the duration of the
    callback and must not be retained. *)

val iter_events : t -> (int -> Event.t -> unit) -> unit
(** Boxed per-event iteration (cold paths / tests); the [int] is the
    global event index. *)

val fold_segments : t -> init:'a -> f:('a -> base:int -> Packed.t -> 'a) -> 'a

val length : t -> int
(** Total event count; consumes one full pass. *)

(** {1 Sources} *)

val of_trace : ?segment_events:int -> Trace.t -> t

val of_packed : ?segment_events:int -> Packed.t -> t
(** Segments are produced by array blits from the packed trace — no
    per-event boxing. *)

val of_text_file : ?segment_events:int -> string -> t
(** Streams the textual format line by line ({!Serialize}); never holds
    more than one segment of decoded events.  Iterating raises
    [Failure "<path>: line N: ..."] on a malformed line and [Sys_error]
    if the file cannot be opened (checked on each pass). *)

val of_binary_file :
  ?segment_events:int -> ?backend:[ `Mmap | `Channel ] -> string -> t
(** Streams a binary trace file through a fixed refill buffer,
    auto-detecting the container from the header: Binfmt v1/v2 decode
    event-at-a-time, the columnar v3 container decodes whole frames
    into flat columns and blits them in — no per-event boxing
    ({!Columnar}).  For framed input (v2 and v3) a segment is cut at
    every frame boundary (and whenever the buffer fills), so stream
    segment boundaries — and therefore checkpoint boundaries —
    coincide with the file's integrity-check units.

    [backend] selects the byte source (segments are identical either
    way): [`Mmap] (default) maps the whole file once
    ({!Prefix_util.Bigio}) and decodes straight from the mapping — no
    channel, no payload copies, and re-iteration costs no re-read;
    [`Channel] is the buffered-[in_channel] decode path (what PR 8
    shipped), kept for benchmarking and for inputs where mapping is
    undesirable.  [`Mmap] falls back to reading the file into memory
    when it cannot be mapped.

    Iterating raises [Failure] on corruption, [Sys_error] on open
    failure. *)

val prefetched : ?spawn:((unit -> unit) -> unit -> unit) -> t -> t
(** [prefetched t] overlaps decode with consumption: each pass spawns
    a producer that runs [t]'s generator one segment ahead, handing
    segments over through two alternating buffers (double-buffered
    scratch), so segment N+1 decodes while segment N is being
    consumed.  The emitted segment sequence is exactly [t]'s — same
    order, contents and boundaries — so downstream reports are
    byte-identical; memory is bounded by two extra segments.  [spawn]
    overrides how the producer is started (e.g. on a
    {!Prefix_parallel.Pool} worker via [Pool.submit]); it must run its
    argument exactly once, possibly concurrently, and the returned
    thunk must join it.  Defaults to [Domain.spawn]/[Domain.join].
    Consumer exceptions abort the producer and re-raise; producer
    exceptions (e.g. decode [Failure]) re-raise at the consumer after
    the handed-over segments are drained. *)

val to_columnar_file : ?frame_events:int -> t -> string -> unit
(** Spool the stream into a columnar (v3) container, one frame per
    segment (atomic write).  [of_binary_file] on the result replays
    the same segments. *)

(** {1 Sinks (materialize — for tests and small traces)} *)

val to_trace : t -> Trace.t

val to_packed : t -> Packed.t
