(** Line-oriented text (de)serialization of traces.

    The format is one event per line:

    {v
    A <obj> <site> <ctx> <size> <thread>     allocation
    L <obj> <offset> <thread>                load
    S <obj> <offset> <thread>                store
    F <obj> <thread>                         free
    R <obj> <new_size> <thread>              realloc
    C <instrs> <thread>                      compute block
    v}

    Blank lines and lines starting with ['#'] are ignored on input. *)

val event_to_line : Event.t -> string

val event_of_line : string -> (Event.t, string) result
(** [Error msg] on malformed input. *)

val write : out_channel -> Trace.t -> unit

val to_string : Trace.t -> string

val read : in_channel -> (Trace.t, string) result
(** Reads line by line — memory is bounded by the decoded trace itself,
    never by a buffered copy of the file.  Errors carry the exact
    (1-based) line number. *)

val of_string : string -> (Trace.t, string) result

val iter_channel : in_channel -> f:(Event.t -> unit) -> (unit, string) result
(** Streaming decode: [f] is called once per event as each line is
    parsed; no trace is materialized.  Stops at the first malformed
    line with [Error "line N: ..."]. *)

val iter_file : string -> f:(Event.t -> unit) -> (unit, string) result
(** {!iter_channel} over a freshly opened (and always closed) file.
    Raises [Sys_error] if the file cannot be opened. *)
