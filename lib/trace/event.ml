type t =
  | Alloc of { obj : int; site : int; ctx : int; size : int; thread : int }
  | Access of { obj : int; offset : int; write : bool; thread : int }
  | Free of { obj : int; thread : int }
  | Realloc of { obj : int; new_size : int; thread : int }
  | Compute of { instrs : int; thread : int }

let pp ppf = function
  | Alloc { obj; site; ctx; size; thread } ->
    Format.fprintf ppf "alloc obj=%d site=%d ctx=%d size=%d t=%d" obj site ctx size thread
  | Access { obj; offset; write; thread } ->
    Format.fprintf ppf "%s obj=%d off=%d t=%d" (if write then "store" else "load") obj offset thread
  | Free { obj; thread } -> Format.fprintf ppf "free obj=%d t=%d" obj thread
  | Realloc { obj; new_size; thread } ->
    Format.fprintf ppf "realloc obj=%d size=%d t=%d" obj new_size thread
  | Compute { instrs; thread } -> Format.fprintf ppf "compute n=%d t=%d" instrs thread

let to_string t = Format.asprintf "%a" pp t

let thread = function
  | Alloc { thread; _ }
  | Access { thread; _ }
  | Free { thread; _ }
  | Realloc { thread; _ }
  | Compute { thread; _ } -> thread

let is_heap_access = function Access _ -> true | _ -> false
