let magic = "PFXT"
let version = 1

(* --- varints --- *)

let put_uvarint buf n =
  if n < 0 then invalid_arg "Binfmt: negative unsigned varint";
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (-(n land 1))

let put_varint buf n = put_uvarint buf (zigzag n)

type cursor = { data : bytes; mutable pos : int }

let get_uvarint c =
  let rec go shift acc =
    if c.pos >= Bytes.length c.data then Error "truncated varint"
    else begin
      let b = Char.code (Bytes.get c.data c.pos) in
      c.pos <- c.pos + 1;
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then
        (* High continuation bytes can shift into the sign bit on
           corrupted input; an unsigned varint is never negative. *)
        if acc < 0 then Error "varint overflows" else Ok acc
      else if shift > 56 then Error "varint too long"
      else go (shift + 7) acc
    end
  in
  go 0 0

let get_varint c = Result.map unzigzag (get_uvarint c)

(* --- encoding --- *)

type state = { mutable obj : int; mutable site : int; mutable ctx : int }

let write buf trace =
  Buffer.add_string buf magic;
  put_uvarint buf version;
  put_uvarint buf (Trace.length trace);
  let st = { obj = 0; site = 0; ctx = 0 } in
  Trace.iter
    (fun e ->
      match (e : Event.t) with
      | Alloc { obj; site; ctx; size; thread } ->
        Buffer.add_char buf '\000';
        put_varint buf (obj - st.obj);
        put_varint buf (site - st.site);
        put_varint buf (ctx - st.ctx);
        put_uvarint buf size;
        put_uvarint buf thread;
        st.obj <- obj;
        st.site <- site;
        st.ctx <- ctx
      | Access { obj; offset; write; thread } ->
        Buffer.add_char buf (if write then '\002' else '\001');
        put_varint buf (obj - st.obj);
        put_uvarint buf offset;
        put_uvarint buf thread;
        st.obj <- obj
      | Free { obj; thread } ->
        Buffer.add_char buf '\003';
        put_varint buf (obj - st.obj);
        put_uvarint buf thread;
        st.obj <- obj
      | Realloc { obj; new_size; thread } ->
        Buffer.add_char buf '\004';
        put_varint buf (obj - st.obj);
        put_uvarint buf new_size;
        put_uvarint buf thread;
        st.obj <- obj
      | Compute { instrs; thread } ->
        Buffer.add_char buf '\005';
        put_uvarint buf instrs;
        put_uvarint buf thread)
    trace

let to_bytes trace =
  let buf = Buffer.create (Trace.length trace * 5) in
  write buf trace;
  Buffer.to_bytes buf

let read data =
  let ( let* ) = Result.bind in
  let c = { data; pos = 0 } in
  let* () =
    if Bytes.length data < 4 || Bytes.sub_string data 0 4 <> magic then Error "bad magic"
    else begin
      c.pos <- 4;
      Ok ()
    end
  in
  let* v = get_uvarint c in
  let* () = if v <> version then Error (Printf.sprintf "unsupported version %d" v) else Ok () in
  let* count = get_uvarint c in
  (* Every encoded event occupies at least 3 bytes (tag + two varint
     fields); a count beyond that bound is a corrupted header and must
     not drive the buffer allocation below. *)
  let* () =
    if count > (Bytes.length data - c.pos) then
      Error (Printf.sprintf "implausible event count %d for %d payload bytes" count
               (Bytes.length data - c.pos))
    else Ok ()
  in
  let trace = Trace.create ~capacity:(min count (1 lsl 20)) () in
  let st = { obj = 0; site = 0; ctx = 0 } in
  let rec events remaining =
    if remaining = 0 then Ok trace
    else if c.pos >= Bytes.length data then Error "truncated stream"
    else begin
      let tag = Char.code (Bytes.get c.data c.pos) in
      c.pos <- c.pos + 1;
      let* e =
        match tag with
        | 0 ->
          let* dobj = get_varint c in
          let* dsite = get_varint c in
          let* dctx = get_varint c in
          let* size = get_uvarint c in
          let* thread = get_uvarint c in
          st.obj <- st.obj + dobj;
          st.site <- st.site + dsite;
          st.ctx <- st.ctx + dctx;
          Ok (Event.Alloc { obj = st.obj; site = st.site; ctx = st.ctx; size; thread })
        | 1 | 2 ->
          let* dobj = get_varint c in
          let* offset = get_uvarint c in
          let* thread = get_uvarint c in
          st.obj <- st.obj + dobj;
          Ok (Event.Access { obj = st.obj; offset; write = tag = 2; thread })
        | 3 ->
          let* dobj = get_varint c in
          let* thread = get_uvarint c in
          st.obj <- st.obj + dobj;
          Ok (Event.Free { obj = st.obj; thread })
        | 4 ->
          let* dobj = get_varint c in
          let* new_size = get_uvarint c in
          let* thread = get_uvarint c in
          st.obj <- st.obj + dobj;
          Ok (Event.Realloc { obj = st.obj; new_size; thread })
        | 5 ->
          let* instrs = get_uvarint c in
          let* thread = get_uvarint c in
          Ok (Event.Compute { instrs; thread })
        | t -> Error (Printf.sprintf "unknown tag %d at offset %d" t (c.pos - 1))
      in
      Trace.add trace e;
      events (remaining - 1)
    end
  in
  events count

(* --- streaming decode -------------------------------------------------

   Mirrors [read] but pulls bytes from a (stdlib-buffered) channel, so
   decoding holds O(1) memory regardless of file size: no [bytes] copy
   of the whole file, no materialized trace — each event is pushed to
   the caller as soon as it is decoded. *)

let get_uvarint_ch ic =
  let rec go shift acc =
    match input_char ic with
    | exception End_of_file -> Error "truncated varint"
    | ch ->
      let b = Char.code ch in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then if acc < 0 then Error "varint overflows" else Ok acc
      else if shift > 56 then Error "varint too long"
      else go (shift + 7) acc
  in
  go 0 0

let get_varint_ch ic = Result.map unzigzag (get_uvarint_ch ic)

let iter_channel ic ~f =
  let ( let* ) = Result.bind in
  let* () =
    match really_input_string ic 4 with
    | exception End_of_file -> Error "bad magic"
    | m -> if m <> magic then Error "bad magic" else Ok ()
  in
  let* v = get_uvarint_ch ic in
  let* () = if v <> version then Error (Printf.sprintf "unsupported version %d" v) else Ok () in
  let* count = get_uvarint_ch ic in
  let* () =
    (* Same header-plausibility bound as [read]: at least one payload
       byte per claimed event must remain in the channel. *)
    match in_channel_length ic - pos_in ic with
    | exception Sys_error _ -> Ok ()
    | remaining ->
      if count > remaining then
        Error (Printf.sprintf "implausible event count %d for %d payload bytes" count remaining)
      else Ok ()
  in
  let st = { obj = 0; site = 0; ctx = 0 } in
  let rec events remaining =
    if remaining = 0 then Ok ()
    else
      match input_char ic with
      | exception End_of_file -> Error "truncated stream"
      | tag_ch ->
        let tag = Char.code tag_ch in
        let* e =
          match tag with
          | 0 ->
            let* dobj = get_varint_ch ic in
            let* dsite = get_varint_ch ic in
            let* dctx = get_varint_ch ic in
            let* size = get_uvarint_ch ic in
            let* thread = get_uvarint_ch ic in
            st.obj <- st.obj + dobj;
            st.site <- st.site + dsite;
            st.ctx <- st.ctx + dctx;
            Ok (Event.Alloc { obj = st.obj; site = st.site; ctx = st.ctx; size; thread })
          | 1 | 2 ->
            let* dobj = get_varint_ch ic in
            let* offset = get_uvarint_ch ic in
            let* thread = get_uvarint_ch ic in
            st.obj <- st.obj + dobj;
            Ok (Event.Access { obj = st.obj; offset; write = tag = 2; thread })
          | 3 ->
            let* dobj = get_varint_ch ic in
            let* thread = get_uvarint_ch ic in
            st.obj <- st.obj + dobj;
            Ok (Event.Free { obj = st.obj; thread })
          | 4 ->
            let* dobj = get_varint_ch ic in
            let* new_size = get_uvarint_ch ic in
            let* thread = get_uvarint_ch ic in
            st.obj <- st.obj + dobj;
            Ok (Event.Realloc { obj = st.obj; new_size; thread })
          | 5 ->
            let* instrs = get_uvarint_ch ic in
            let* thread = get_uvarint_ch ic in
            Ok (Event.Compute { instrs; thread })
          | t -> Error (Printf.sprintf "unknown tag %d at offset %d" t (pos_in ic - 1))
        in
        f e;
        events (remaining - 1)
  in
  events count

let iter_file path ~f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> iter_channel ic ~f)

let write_file path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create (Trace.length trace * 5) in
      write buf trace;
      Buffer.output_buffer oc buf)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let data = Bytes.create len in
      really_input ic data 0 len;
      read data)
