module Crc32 = Prefix_util.Crc32
module Bigio = Prefix_util.Bigio

let magic = "PFXT"
let version = 1
let version_framed = 2
let frame_marker = "FRME"
let footer_marker = "FEND"
let default_frame_events = 1 lsl 16

(* --- varints --- *)

(* Encode [n] as an unsigned LEB128 varint, treating the full 63-bit
   pattern as unsigned: the logical shift makes the loop terminate even
   when bit 62 (OCaml's sign bit) is set, which zigzag produces for
   |n| >= 2^61.  At most 9 bytes (ceil 63/7). *)
let put_uvarint63 buf n =
  let n = ref n in
  let continue = ref true in
  while !continue do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_char buf (Char.chr b);
      continue := false
    end
    else Buffer.add_char buf (Char.chr (b lor 0x80))
  done

let put_uvarint buf n =
  if n < 0 then invalid_arg "Binfmt: negative unsigned varint";
  put_uvarint63 buf n

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag n = (n lsr 1) lxor (-(n land 1))

let put_varint buf n = put_uvarint63 buf (zigzag n)

let put_u32le buf n =
  Buffer.add_char buf (Char.chr (n land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 8) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 16) land 0xff));
  Buffer.add_char buf (Char.chr ((n lsr 24) land 0xff))

type cursor = { data : bytes; mutable pos : int }

(* Decode the full-63-bit companion of {!put_uvarint63}: the sign bit is
   a legal payload bit here (zigzag of a min_int-scale delta), so only
   length is bounded (9 bytes carry exactly 63 bits). *)
let get_uvarint63 c =
  let rec go shift acc =
    if c.pos >= Bytes.length c.data then Error "truncated varint"
    else begin
      let b = Char.code (Bytes.get c.data c.pos) in
      c.pos <- c.pos + 1;
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Ok acc
      else if shift > 56 then Error "varint too long"
      else go (shift + 7) acc
    end
  in
  go 0 0

let get_uvarint c =
  match get_uvarint63 c with
  | Ok acc when acc < 0 ->
    (* High continuation bytes can shift into the sign bit on corrupted
       input; an unsigned varint is never negative. *)
    Error "varint overflows"
  | r -> r

let get_varint c = Result.map unzigzag (get_uvarint63 c)

let get_u32le c =
  if c.pos + 4 > Bytes.length c.data then Error "truncated checksum"
  else begin
    let b i = Char.code (Bytes.get c.data (c.pos + i)) in
    let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    c.pos <- c.pos + 4;
    Ok v
  end

(* --- encoding --- *)

type state = { mutable obj : int; mutable site : int; mutable ctx : int }

let fresh_state () = { obj = 0; site = 0; ctx = 0 }

let reset_state st =
  st.obj <- 0;
  st.site <- 0;
  st.ctx <- 0

let encode_event buf st (e : Event.t) =
  match e with
  | Alloc { obj; site; ctx; size; thread } ->
    Buffer.add_char buf '\000';
    put_varint buf (obj - st.obj);
    put_varint buf (site - st.site);
    put_varint buf (ctx - st.ctx);
    put_uvarint buf size;
    put_uvarint buf thread;
    st.obj <- obj;
    st.site <- site;
    st.ctx <- ctx
  | Access { obj; offset; write; thread } ->
    Buffer.add_char buf (if write then '\002' else '\001');
    put_varint buf (obj - st.obj);
    put_uvarint buf offset;
    put_uvarint buf thread;
    st.obj <- obj
  | Free { obj; thread } ->
    Buffer.add_char buf '\003';
    put_varint buf (obj - st.obj);
    put_uvarint buf thread;
    st.obj <- obj
  | Realloc { obj; new_size; thread } ->
    Buffer.add_char buf '\004';
    put_varint buf (obj - st.obj);
    put_uvarint buf new_size;
    put_uvarint buf thread;
    st.obj <- obj
  | Compute { instrs; thread } ->
    Buffer.add_char buf '\005';
    put_uvarint buf instrs;
    put_uvarint buf thread

let write buf trace =
  Buffer.add_string buf magic;
  put_uvarint buf version;
  put_uvarint buf (Trace.length trace);
  let st = fresh_state () in
  Trace.iter (fun e -> encode_event buf st e) trace

let to_bytes trace =
  let buf = Buffer.create (Trace.length trace * 5) in
  write buf trace;
  Buffer.to_bytes buf

(* --- framed encoding (format v2) --------------------------------------

   The event stream is chunked into frames of [frame_events] events.
   Each frame carries its own event count, the cumulative event count
   before it, the payload length and a CRC32 of the payload; the delta
   state resets at every frame boundary so frames decode independently
   (which is what lets the lenient reader resynchronize past a corrupt
   frame without poisoning the rest of the stream).  A footer with
   frame/event totals (itself checksummed) makes truncation
   detectable. *)

let write_framed ?(frame_events = default_frame_events) buf trace =
  if frame_events <= 0 then
    invalid_arg "Binfmt.write_framed: frame_events must be positive";
  Buffer.add_string buf magic;
  put_uvarint buf version_framed;
  let payload = Buffer.create (min (Trace.length trace) frame_events * 5) in
  let st = fresh_state () in
  let in_frame = ref 0 in
  let cum = ref 0 in
  let frames = ref 0 in
  let flush () =
    if !in_frame > 0 then begin
      Buffer.add_string buf frame_marker;
      put_uvarint buf !in_frame;
      put_uvarint buf !cum;
      put_uvarint buf (Buffer.length payload);
      put_u32le buf (Crc32.string (Buffer.contents payload));
      Buffer.add_buffer buf payload;
      cum := !cum + !in_frame;
      incr frames;
      in_frame := 0;
      Buffer.clear payload;
      reset_state st
    end
  in
  Trace.iter
    (fun e ->
      encode_event payload st e;
      incr in_frame;
      if !in_frame = frame_events then flush ())
    trace;
  flush ();
  let fb = Buffer.create 16 in
  put_uvarint fb !frames;
  put_uvarint fb !cum;
  Buffer.add_string buf footer_marker;
  Buffer.add_buffer buf fb;
  put_u32le buf (Crc32.string (Buffer.contents fb))

let to_bytes_framed ?frame_events trace =
  let buf = Buffer.create (Trace.length trace * 5) in
  write_framed ?frame_events buf trace;
  Buffer.to_bytes buf

(* --- decoding --- *)

let decode_event c st =
  let ( let* ) = Result.bind in
  if c.pos >= Bytes.length c.data then Error "truncated stream"
  else begin
    let tag = Char.code (Bytes.get c.data c.pos) in
    c.pos <- c.pos + 1;
    match tag with
    | 0 ->
      let* dobj = get_varint c in
      let* dsite = get_varint c in
      let* dctx = get_varint c in
      let* size = get_uvarint c in
      let* thread = get_uvarint c in
      st.obj <- st.obj + dobj;
      st.site <- st.site + dsite;
      st.ctx <- st.ctx + dctx;
      Ok (Event.Alloc { obj = st.obj; site = st.site; ctx = st.ctx; size; thread })
    | 1 | 2 ->
      let* dobj = get_varint c in
      let* offset = get_uvarint c in
      let* thread = get_uvarint c in
      st.obj <- st.obj + dobj;
      Ok (Event.Access { obj = st.obj; offset; write = tag = 2; thread })
    | 3 ->
      let* dobj = get_varint c in
      let* thread = get_uvarint c in
      st.obj <- st.obj + dobj;
      Ok (Event.Free { obj = st.obj; thread })
    | 4 ->
      let* dobj = get_varint c in
      let* new_size = get_uvarint c in
      let* thread = get_uvarint c in
      st.obj <- st.obj + dobj;
      Ok (Event.Realloc { obj = st.obj; new_size; thread })
    | 5 ->
      let* instrs = get_uvarint c in
      let* thread = get_uvarint c in
      Ok (Event.Compute { instrs; thread })
    | t -> Error (Printf.sprintf "unknown tag %d at offset %d" t (c.pos - 1))
  end

let read_v1 c =
  let ( let* ) = Result.bind in
  let data = c.data in
  let* count = get_uvarint c in
  (* Every encoded event occupies at least 3 bytes (tag + two varint
     fields); a count beyond that bound is a corrupted header and must
     not drive the buffer allocation below. *)
  let* () =
    if count > (Bytes.length data - c.pos) then
      Error (Printf.sprintf "implausible event count %d for %d payload bytes" count
               (Bytes.length data - c.pos))
    else Ok ()
  in
  let trace = Trace.create ~capacity:(min count (1 lsl 20)) () in
  let st = fresh_state () in
  let rec events remaining =
    if remaining = 0 then Ok trace
    else
      let* e = decode_event c st in
      Trace.add trace e;
      events (remaining - 1)
  in
  events count

(* Strict v2 decode: any CRC mismatch, marker corruption, cumulative
   count discrepancy or missing/invalid footer is an error. *)
let read_v2 c =
  let ( let* ) = Result.bind in
  let data = c.data in
  let len = Bytes.length data in
  let trace = Trace.create () in
  let decoded = ref 0 in
  let frames = ref 0 in
  let rec loop () =
    if c.pos + 4 > len then
      Error (Printf.sprintf "truncated file (missing footer) at offset %d" c.pos)
    else begin
      let marker = Bytes.sub_string data c.pos 4 in
      c.pos <- c.pos + 4;
      if marker = frame_marker then begin
        let frame_off = c.pos - 4 in
        let* events = get_uvarint c in
        let* cum = get_uvarint c in
        let* plen = get_uvarint c in
        let* crc = get_u32le c in
        let* () =
          if c.pos + plen > len then
            Error (Printf.sprintf "truncated frame payload at offset %d" c.pos)
          else Ok ()
        in
        let* () =
          if events > plen then
            Error
              (Printf.sprintf "implausible event count %d for %d payload bytes" events
                 plen)
          else Ok ()
        in
        let* () =
          if cum <> !decoded then
            Error
              (Printf.sprintf
                 "frame at offset %d claims cumulative count %d but %d events decoded"
                 frame_off cum !decoded)
          else Ok ()
        in
        let* () =
          if Crc32.sub_bytes data ~pos:c.pos ~len:plen <> crc then
            Error (Printf.sprintf "frame CRC mismatch at offset %d" frame_off)
          else Ok ()
        in
        let limit = c.pos + plen in
        let st = fresh_state () in
        let rec events_loop remaining =
          if remaining = 0 then
            if c.pos = limit then Ok ()
            else Error (Printf.sprintf "frame payload length mismatch at offset %d" frame_off)
          else
            let* e = decode_event c st in
            Trace.add trace e;
            incr decoded;
            events_loop (remaining - 1)
        in
        let* () = events_loop events in
        incr frames;
        loop ()
      end
      else if marker = footer_marker then begin
        let fstart = c.pos in
        let* nframes = get_uvarint c in
        let* nevents = get_uvarint c in
        let fend = c.pos in
        let* crc = get_u32le c in
        let* () =
          if Crc32.sub_bytes data ~pos:fstart ~len:(fend - fstart) <> crc then
            Error "footer CRC mismatch"
          else Ok ()
        in
        let* () =
          if nframes <> !frames || nevents <> !decoded then
            Error
              (Printf.sprintf
                 "footer totals (%d frames, %d events) disagree with stream (%d frames, \
                  %d events)"
                 nframes nevents !frames !decoded)
          else Ok ()
        in
        if c.pos <> len then
          Error (Printf.sprintf "trailing bytes after footer at offset %d" c.pos)
        else Ok trace
      end
      else Error (Printf.sprintf "bad frame marker at offset %d" (c.pos - 4))
    end
  in
  loop ()

let check_header c =
  let data = c.data in
  let ( let* ) = Result.bind in
  let* () =
    if Bytes.length data < 4 then
      Error
        (Printf.sprintf "empty or truncated file (offset %d)" (Bytes.length data))
    else if Bytes.sub_string data 0 4 <> magic then Error "bad magic"
    else begin
      c.pos <- 4;
      Ok ()
    end
  in
  get_uvarint c

let read data =
  let ( let* ) = Result.bind in
  let c = { data; pos = 0 } in
  let* v = check_header c in
  if v = version then read_v1 c
  else if v = version_framed then read_v2 c
  else Error (Printf.sprintf "unsupported version %d" v)

(* --- lenient framed decode --------------------------------------------

   Best-effort recovery over a (possibly corrupted) v2 file: corrupt
   frames are skipped by resynchronizing on the next frame/footer
   marker, and because every good frame carries its cumulative event
   count, the exact ranges of lost events are reported.  The surviving
   trace is what callers hand to {!Sanitizer.sanitize} — dangling
   frees/accesses from the lost ranges are then repaired there. *)

type lost_range = { lost_from : int; lost_to : int }

type lenient = {
  lr_trace : Trace.t;
  lr_lost : lost_range list;
  lr_frames_ok : int;
  lr_frames_skipped : int;
  lr_total_events : int option;
}

let lenient_events_lost l =
  List.fold_left (fun acc r -> acc + (r.lost_to - r.lost_from)) 0 l.lr_lost

let pp_lost_range ppf r =
  Format.fprintf ppf "events [%d, %d)" r.lost_from r.lost_to

let read_lenient data =
  let ( let* ) = Result.bind in
  let c = { data; pos = 0 } in
  let* v = check_header c in
  let* () =
    if v = version_framed then Ok ()
    else if v = version then Error "lenient decode requires a framed (v2) file"
    else Error (Printf.sprintf "unsupported version %d" v)
  in
  let len = Bytes.length data in
  let trace = Trace.create () in
  let lost = ref [] in
  let orig = ref 0 in (* original-stream event index accounted for so far *)
  let ok_frames = ref 0 in
  let skipped = ref 0 in
  let total = ref None in
  let add_lost a b = if b > a then lost := { lost_from = a; lost_to = b } :: !lost in
  let marker_at p = p + 4 <= len && (let m = Bytes.sub_string data p 4 in m = frame_marker || m = footer_marker) in
  (* Resync: scan byte-by-byte for the next plausible marker. *)
  let rec scan p = if p + 4 > len then len else if marker_at p then p else scan (p + 1) in
  let try_frame p =
    let c = { data; pos = p + 4 } in
    let parse =
      let* events = get_uvarint c in
      let* cum = get_uvarint c in
      let* plen = get_uvarint c in
      let* crc = get_u32le c in
      if c.pos + plen > len || events > plen then Error "bounds"
      else if Crc32.sub_bytes data ~pos:c.pos ~len:plen <> crc then Error "crc"
      else begin
        let limit = c.pos + plen in
        let st = fresh_state () in
        let rec events_loop remaining acc =
          if remaining = 0 then
            if c.pos = limit then Ok (List.rev acc) else Error "length"
          else
            let* e = decode_event c st in
            events_loop (remaining - 1) (e :: acc)
        in
        let* es = events_loop events [] in
        Ok (es, cum, c.pos)
      end
    in
    Result.to_option parse
  in
  let try_footer p =
    let c = { data; pos = p + 4 } in
    let parse =
      let* _nframes = get_uvarint c in
      let* nevents = get_uvarint c in
      let fend = c.pos in
      let* crc = get_u32le c in
      if Crc32.sub_bytes data ~pos:(p + 4) ~len:(fend - (p + 4)) <> crc then Error "crc"
      else Ok nevents
    in
    Result.to_option parse
  in
  let rec loop p =
    if p + 4 > len then ()
    else
      let m = Bytes.sub_string data p 4 in
      if m = frame_marker then
        match try_frame p with
        | Some (es, cum, next) when cum >= !orig ->
          add_lost !orig cum;
          List.iter (Trace.add trace) es;
          orig := cum + List.length es;
          incr ok_frames;
          loop next
        | _ ->
          incr skipped;
          loop (scan (p + 1))
      else if m = footer_marker then begin
        match try_footer p with
        | Some nevents when nevents >= !orig ->
          add_lost !orig nevents;
          orig := nevents;
          total := Some nevents
          (* Anything after a valid footer is ignored. *)
        | _ ->
          incr skipped;
          loop (scan (p + 1))
      end
      else begin
        incr skipped;
        loop (scan (p + 1))
      end
  in
  loop c.pos;
  Ok
    { lr_trace = trace;
      lr_lost = List.rev !lost;
      lr_frames_ok = !ok_frames;
      lr_frames_skipped = !skipped;
      lr_total_events = !total }

(* --- streaming decode -------------------------------------------------

   Mirrors [read] but pulls bytes from a (stdlib-buffered) channel, so
   decoding holds O(1) memory regardless of file size: no [bytes] copy
   of the whole file, no materialized trace — each event is pushed to
   the caller as soon as it is decoded.  For framed (v2) files the
   optional [on_frame] callback fires after each frame's events; the
   streaming engine uses it to align segment boundaries with frame
   boundaries. *)

let get_uvarint63_ch ic =
  let rec go shift acc =
    match input_char ic with
    | exception End_of_file -> Error "truncated varint"
    | ch ->
      let b = Char.code ch in
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Ok acc
      else if shift > 56 then Error "varint too long"
      else go (shift + 7) acc
  in
  go 0 0

let get_uvarint_ch ic =
  match get_uvarint63_ch ic with
  | Ok acc when acc < 0 -> Error "varint overflows"
  | r -> r

let get_varint_ch ic = Result.map unzigzag (get_uvarint63_ch ic)

let iter_channel_v1 ic ~f =
  let ( let* ) = Result.bind in
  let* count = get_uvarint_ch ic in
  let* () =
    (* Same header-plausibility bound as [read]: at least one payload
       byte per claimed event must remain in the channel. *)
    match in_channel_length ic - pos_in ic with
    | exception Sys_error _ -> Ok ()
    | remaining ->
      if count > remaining then
        Error (Printf.sprintf "implausible event count %d for %d payload bytes" count remaining)
      else Ok ()
  in
  let st = fresh_state () in
  let rec events remaining =
    if remaining = 0 then Ok ()
    else
      match input_char ic with
      | exception End_of_file -> Error "truncated stream"
      | tag_ch ->
        let tag = Char.code tag_ch in
        let* e =
          match tag with
          | 0 ->
            let* dobj = get_varint_ch ic in
            let* dsite = get_varint_ch ic in
            let* dctx = get_varint_ch ic in
            let* size = get_uvarint_ch ic in
            let* thread = get_uvarint_ch ic in
            st.obj <- st.obj + dobj;
            st.site <- st.site + dsite;
            st.ctx <- st.ctx + dctx;
            Ok (Event.Alloc { obj = st.obj; site = st.site; ctx = st.ctx; size; thread })
          | 1 | 2 ->
            let* dobj = get_varint_ch ic in
            let* offset = get_uvarint_ch ic in
            let* thread = get_uvarint_ch ic in
            st.obj <- st.obj + dobj;
            Ok (Event.Access { obj = st.obj; offset; write = tag = 2; thread })
          | 3 ->
            let* dobj = get_varint_ch ic in
            let* thread = get_uvarint_ch ic in
            st.obj <- st.obj + dobj;
            Ok (Event.Free { obj = st.obj; thread })
          | 4 ->
            let* dobj = get_varint_ch ic in
            let* new_size = get_uvarint_ch ic in
            let* thread = get_uvarint_ch ic in
            st.obj <- st.obj + dobj;
            Ok (Event.Realloc { obj = st.obj; new_size; thread })
          | 5 ->
            let* instrs = get_uvarint_ch ic in
            let* thread = get_uvarint_ch ic in
            Ok (Event.Compute { instrs; thread })
          | t -> Error (Printf.sprintf "unknown tag %d at offset %d" t (pos_in ic - 1))
        in
        f e;
        events (remaining - 1)
  in
  events count

(* Channel-based strict v2 decode: each frame is read whole (bounded by
   its declared payload length), CRC-checked, then decoded with the
   bytes cursor — O(frame) memory. *)
let iter_channel_v2 ?(on_frame = fun () -> ()) ic ~f =
  let ( let* ) = Result.bind in
  let decoded = ref 0 in
  let frames = ref 0 in
  let remaining () =
    match in_channel_length ic - pos_in ic with
    | exception Sys_error _ -> max_int
    | r -> r
  in
  let rec loop () =
    match really_input_string ic 4 with
    | exception End_of_file ->
      Error (Printf.sprintf "truncated file (missing footer) at offset %d" (pos_in ic))
    | marker when marker = frame_marker ->
      let frame_off = pos_in ic - 4 in
      let* events = get_uvarint_ch ic in
      let* cum = get_uvarint_ch ic in
      let* plen = get_uvarint_ch ic in
      let* () =
        if plen > remaining () then
          Error
            (Printf.sprintf "implausible frame payload length %d at offset %d" plen
               frame_off)
        else Ok ()
      in
      let* () =
        if events > plen then
          Error
            (Printf.sprintf "implausible event count %d for %d payload bytes" events plen)
        else Ok ()
      in
      let* () =
        if cum <> !decoded then
          Error
            (Printf.sprintf
               "frame at offset %d claims cumulative count %d but %d events decoded"
               frame_off cum !decoded)
        else Ok ()
      in
      let crc_bytes = Bytes.create 4 in
      let* () =
        match really_input ic crc_bytes 0 4 with
        | exception End_of_file -> Error "truncated checksum"
        | () -> Ok ()
      in
      let b i = Char.code (Bytes.get crc_bytes i) in
      let crc = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
      let payload = Bytes.create plen in
      let* () =
        match really_input ic payload 0 plen with
        | exception End_of_file ->
          Error (Printf.sprintf "truncated frame payload at offset %d" frame_off)
        | () -> Ok ()
      in
      let* () =
        if Crc32.bytes payload <> crc then
          Error (Printf.sprintf "frame CRC mismatch at offset %d" frame_off)
        else Ok ()
      in
      let c = { data = payload; pos = 0 } in
      let st = fresh_state () in
      let rec events_loop n =
        if n = 0 then
          if c.pos = plen then Ok ()
          else Error (Printf.sprintf "frame payload length mismatch at offset %d" frame_off)
        else
          let* e = decode_event c st in
          f e;
          incr decoded;
          events_loop (n - 1)
      in
      let* () = events_loop events in
      incr frames;
      on_frame ();
      loop ()
    | marker when marker = footer_marker ->
      let fb = Buffer.create 16 in
      let get_uvarint_copy () =
        (* The footer CRC covers the totals' encoded bytes, so they are
           re-captured as they are read. *)
        let rec go shift acc =
          match input_char ic with
          | exception End_of_file -> Error "truncated varint"
          | ch ->
            Buffer.add_char fb ch;
            let b = Char.code ch in
            let acc = acc lor ((b land 0x7f) lsl shift) in
            if b land 0x80 = 0 then
              if acc < 0 then Error "varint overflows" else Ok acc
            else if shift > 56 then Error "varint too long"
            else go (shift + 7) acc
        in
        go 0 0
      in
      let* nframes = get_uvarint_copy () in
      let* nevents = get_uvarint_copy () in
      let crc_bytes = Bytes.create 4 in
      let* () =
        match really_input ic crc_bytes 0 4 with
        | exception End_of_file -> Error "truncated checksum"
        | () -> Ok ()
      in
      let b i = Char.code (Bytes.get crc_bytes i) in
      let crc = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
      let* () =
        if Crc32.string (Buffer.contents fb) <> crc then Error "footer CRC mismatch"
        else Ok ()
      in
      let* () =
        if nframes <> !frames || nevents <> !decoded then
          Error
            (Printf.sprintf
               "footer totals (%d frames, %d events) disagree with stream (%d frames, \
                %d events)"
               nframes nevents !frames !decoded)
        else Ok ()
      in
      (match input_char ic with
      | exception End_of_file -> Ok ()
      | _ -> Error (Printf.sprintf "trailing bytes after footer at offset %d" (pos_in ic - 1)))
    | _ -> Error (Printf.sprintf "bad frame marker at offset %d" (pos_in ic - 4))
  in
  loop ()

let iter_channel ?on_frame ic ~f =
  let ( let* ) = Result.bind in
  let* () =
    match really_input_string ic 4 with
    | exception End_of_file ->
      Error (Printf.sprintf "empty or truncated file (offset %d)" (pos_in ic))
    | m -> if m <> magic then Error "bad magic" else Ok ()
  in
  let* v = get_uvarint_ch ic in
  if v = version then iter_channel_v1 ic ~f
  else if v = version_framed then iter_channel_v2 ?on_frame ic ~f
  else Error (Printf.sprintf "unsupported version %d" v)

let iter_file ?on_frame path ~f =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> iter_channel ?on_frame ic ~f)

(* Container sniff: magic + version varint only.  Lets callers dispatch
   between the event-interleaved decoders here and the columnar (v3)
   decoder of {!Columnar} without reading the body. *)
let file_version path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      match really_input_string ic 4 with
      | exception End_of_file ->
        Error (Printf.sprintf "empty or truncated file (offset %d)" (pos_in ic))
      | m -> if m <> magic then Error "bad magic" else get_uvarint_ch ic)

(* --- mmap (bigstring) strict decode -----------------------------------

   Twin of the channel decoders above over a {!Prefix_util.Bigio.t}
   mapping: the whole container is addressable, so the frame walk, CRC
   checks and event decode read straight from the mapped region — no
   channel, no payload copy.  Deliberately duplicated rather than
   functorized over the byte source: a functor would cost an indirect
   call per byte fetch on this, the hottest decode loop in the repo.
   Keep in sync with [decode_event] / [iter_channel_v1] /
   [iter_channel_v2] above. *)

type bigcursor = { big : Bigio.t; mutable bpos : int; blimit : int }

let get_uvarint63_big c =
  let rec go shift acc =
    if c.bpos >= c.blimit then Error "truncated varint"
    else begin
      let b = Char.code (Bigio.unsafe_get c.big c.bpos) in
      c.bpos <- c.bpos + 1;
      let acc = acc lor ((b land 0x7f) lsl shift) in
      if b land 0x80 = 0 then Ok acc
      else if shift > 56 then Error "varint too long"
      else go (shift + 7) acc
    end
  in
  go 0 0

let get_uvarint_big c =
  match get_uvarint63_big c with
  | Ok acc when acc < 0 -> Error "varint overflows"
  | r -> r

let get_varint_big c = Result.map unzigzag (get_uvarint63_big c)

let get_u32le_big c =
  if c.bpos + 4 > c.blimit then Error "truncated checksum"
  else begin
    let b i = Char.code (Bigio.unsafe_get c.big (c.bpos + i)) in
    let v = b 0 lor (b 1 lsl 8) lor (b 2 lsl 16) lor (b 3 lsl 24) in
    c.bpos <- c.bpos + 4;
    Ok v
  end

let big_sub_string big ~pos ~len = Bigio.sub_string big ~pos ~len

(* [base] is subtracted from offsets in error strings so v2 payload
   errors report payload-relative positions — exactly what the channel
   decoder reports, since it hands each payload to a fresh bytes
   cursor.  v1 passes [base = 0] (absolute offsets, like [pos_in]). *)
let decode_event_big c ~base st =
  let ( let* ) = Result.bind in
  if c.bpos >= c.blimit then Error "truncated stream"
  else begin
    let tag = Char.code (Bigio.unsafe_get c.big c.bpos) in
    c.bpos <- c.bpos + 1;
    match tag with
    | 0 ->
      let* dobj = get_varint_big c in
      let* dsite = get_varint_big c in
      let* dctx = get_varint_big c in
      let* size = get_uvarint_big c in
      let* thread = get_uvarint_big c in
      st.obj <- st.obj + dobj;
      st.site <- st.site + dsite;
      st.ctx <- st.ctx + dctx;
      Ok (Event.Alloc { obj = st.obj; site = st.site; ctx = st.ctx; size; thread })
    | 1 | 2 ->
      let* dobj = get_varint_big c in
      let* offset = get_uvarint_big c in
      let* thread = get_uvarint_big c in
      st.obj <- st.obj + dobj;
      Ok (Event.Access { obj = st.obj; offset; write = tag = 2; thread })
    | 3 ->
      let* dobj = get_varint_big c in
      let* thread = get_uvarint_big c in
      st.obj <- st.obj + dobj;
      Ok (Event.Free { obj = st.obj; thread })
    | 4 ->
      let* dobj = get_varint_big c in
      let* new_size = get_uvarint_big c in
      let* thread = get_uvarint_big c in
      st.obj <- st.obj + dobj;
      Ok (Event.Realloc { obj = st.obj; new_size; thread })
    | 5 ->
      let* instrs = get_uvarint_big c in
      let* thread = get_uvarint_big c in
      Ok (Event.Compute { instrs; thread })
    | t -> Error (Printf.sprintf "unknown tag %d at offset %d" t (c.bpos - 1 - base))
  end

let iter_big_v1 c ~f =
  let ( let* ) = Result.bind in
  let* count = get_uvarint_big c in
  let* () =
    if count > c.blimit - c.bpos then
      Error
        (Printf.sprintf "implausible event count %d for %d payload bytes" count
           (c.blimit - c.bpos))
    else Ok ()
  in
  let st = fresh_state () in
  let rec events remaining =
    if remaining = 0 then Ok ()
    else
      let* e = decode_event_big c ~base:0 st in
      f e;
      events (remaining - 1)
  in
  events count

let iter_big_v2 ?(on_frame = fun () -> ()) c ~f =
  let ( let* ) = Result.bind in
  let len = c.blimit in
  let decoded = ref 0 in
  let frames = ref 0 in
  let rec loop () =
    if c.bpos + 4 > len then
      (* The channel twin consumes the (< 4) remaining bytes before
         hitting [End_of_file], so it reports the file length. *)
      Error (Printf.sprintf "truncated file (missing footer) at offset %d" len)
    else begin
      let marker = big_sub_string c.big ~pos:c.bpos ~len:4 in
      c.bpos <- c.bpos + 4;
      if marker = frame_marker then begin
        let frame_off = c.bpos - 4 in
        let* events = get_uvarint_big c in
        let* cum = get_uvarint_big c in
        let* plen = get_uvarint_big c in
        let* () =
          if plen > len - c.bpos then
            Error
              (Printf.sprintf "implausible frame payload length %d at offset %d" plen
                 frame_off)
          else Ok ()
        in
        let* () =
          if events > plen then
            Error
              (Printf.sprintf "implausible event count %d for %d payload bytes" events
                 plen)
          else Ok ()
        in
        let* () =
          if cum <> !decoded then
            Error
              (Printf.sprintf
                 "frame at offset %d claims cumulative count %d but %d events decoded"
                 frame_off cum !decoded)
          else Ok ()
        in
        let* crc = get_u32le_big c in
        let* () =
          if c.bpos + plen > len then
            Error (Printf.sprintf "truncated frame payload at offset %d" frame_off)
          else Ok ()
        in
        let* () =
          if Crc32.sub_big c.big ~pos:c.bpos ~len:plen <> crc then
            Error (Printf.sprintf "frame CRC mismatch at offset %d" frame_off)
          else Ok ()
        in
        let base = c.bpos in
        let pc = { big = c.big; bpos = base; blimit = base + plen } in
        let st = fresh_state () in
        let rec events_loop n =
          if n = 0 then
            if pc.bpos = base + plen then Ok ()
            else
              Error
                (Printf.sprintf "frame payload length mismatch at offset %d" frame_off)
          else
            let* e = decode_event_big pc ~base st in
            f e;
            incr decoded;
            events_loop (n - 1)
        in
        let* () = events_loop events in
        c.bpos <- base + plen;
        incr frames;
        on_frame ();
        loop ()
      end
      else if marker = footer_marker then begin
        let fstart = c.bpos in
        let* nframes = get_uvarint_big c in
        let* nevents = get_uvarint_big c in
        let fend = c.bpos in
        let* crc = get_u32le_big c in
        let* () =
          if Crc32.sub_big c.big ~pos:fstart ~len:(fend - fstart) <> crc then
            Error "footer CRC mismatch"
          else Ok ()
        in
        let* () =
          if nframes <> !frames || nevents <> !decoded then
            Error
              (Printf.sprintf
                 "footer totals (%d frames, %d events) disagree with stream (%d frames, \
                  %d events)"
                 nframes nevents !frames !decoded)
          else Ok ()
        in
        if c.bpos <> len then
          Error (Printf.sprintf "trailing bytes after footer at offset %d" c.bpos)
        else Ok ()
      end
      else Error (Printf.sprintf "bad frame marker at offset %d" (c.bpos - 4))
    end
  in
  loop ()

let check_header_big c =
  let ( let* ) = Result.bind in
  let* () =
    if c.blimit < 4 then
      Error (Printf.sprintf "empty or truncated file (offset %d)" c.blimit)
    else if big_sub_string c.big ~pos:0 ~len:4 <> magic then Error "bad magic"
    else begin
      c.bpos <- 4;
      Ok ()
    end
  in
  get_uvarint_big c

let iter_big ?on_frame big ~f =
  let ( let* ) = Result.bind in
  let c = { big; bpos = 0; blimit = Bigio.length big } in
  let* v = check_header_big c in
  if v = version then iter_big_v1 c ~f
  else if v = version_framed then iter_big_v2 ?on_frame c ~f
  else Error (Printf.sprintf "unsupported version %d" v)

(* Container sniff over an already-loaded mapping — same contract as
   {!file_version} without reopening the file. *)
let big_version big =
  let c = { big; bpos = 0; blimit = Bigio.length big } in
  check_header_big c

let write_file path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      let buf = Buffer.create (Trace.length trace * 5) in
      write buf trace;
      Buffer.output_buffer oc buf)

(* New trace files are framed; written atomically so a crash mid-write
   never leaves a half-encoded file behind. *)
let write_file_framed ?frame_events path trace =
  Prefix_util.Fsio.atomic_write path (fun buf -> write_framed ?frame_events buf trace)

let with_file_data path k =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let data = Bytes.create len in
      really_input ic data 0 len;
      k data)

let read_file path = with_file_data path read

let read_file_lenient path = with_file_data path read_lenient
