type config = {
  keep_objects : int -> bool;
  max_run : int;
}

let config_for_hot ?(coverage = 0.9) stats =
  let hot = Hashtbl.create 256 in
  List.iter
    (fun (o : Trace_stats.obj_info) -> Hashtbl.replace hot o.obj ())
    (Trace_stats.hot_objects ~coverage stats);
  { keep_objects = Hashtbl.mem hot; max_run = 4 }

let prune cfg trace =
  let out = Trace.create ~capacity:(Trace.length trace / 2) () in
  let last_obj = ref min_int in
  let run = ref 0 in
  Trace.iter
    (fun e ->
      match (e : Event.t) with
      | Access { obj; _ } ->
        if cfg.keep_objects obj then begin
          if obj = !last_obj then incr run
          else begin
            last_obj := obj;
            run := 1
          end;
          if !run <= cfg.max_run then Trace.add out e
        end
        else begin
          (* A dropped access still breaks temporal adjacency: runs are
             defined over the original trace, not the pruned one. *)
          last_obj := min_int;
          run := 0
        end
      | _ ->
        (* Allocation-order events always survive; they also break any
           access run. *)
        last_obj := min_int;
        run := 0;
        Trace.add out e)
    trace;
  out

let reduction ~before ~after =
  let b = Trace.length before in
  if b = 0 then 0.
  else 1. -. (float_of_int (Trace.length after) /. float_of_int b)
