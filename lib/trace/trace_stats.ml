type obj_info = {
  obj : int;
  site : int;
  ctx : int;
  size : int;
  alloc_size : int;
  accesses : int;
  alloc_index : int;
  free_index : int option;
  instance : int;
}

type site_info = {
  site_id : int;
  alloc_count : int;
  site_objects : int list;
  site_accesses : int;
}

type t = {
  objs : (int, obj_info) Hashtbl.t;
  order : int list; (* object ids in allocation order *)
  site_tbl : (int, site_info) Hashtbl.t;
  total_accesses : int;
  max_live : int;
  trace_len : int;
}

let analyze_packed packed =
  let objs : (int, obj_info) Hashtbl.t = Hashtbl.create 1024 in
  let site_counts : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let site_objs : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let total_accesses = ref 0 in
  let live = ref 0 in
  let max_live = ref 0 in
  Packed.iteri
    ~alloc:(fun index ~obj ~site ~ctx ~size ~thread:_ ->
      let instance = 1 + Option.value ~default:0 (Hashtbl.find_opt site_counts site) in
      Hashtbl.replace site_counts site instance;
      Hashtbl.replace site_objs site
        (obj :: Option.value ~default:[] (Hashtbl.find_opt site_objs site));
      Hashtbl.replace objs obj
        { obj; site; ctx; size; alloc_size = size; accesses = 0; alloc_index = index;
          free_index = None; instance };
      order := obj :: !order;
      incr live;
      if !live > !max_live then max_live := !live)
    ~access:(fun _ ~obj ~offset:_ ~write:_ ~thread:_ ->
      incr total_accesses;
      match Hashtbl.find_opt objs obj with
      | None -> ()
      | Some info -> Hashtbl.replace objs obj { info with accesses = info.accesses + 1 })
    ~free:(fun index ~obj ~thread:_ ->
      match Hashtbl.find_opt objs obj with
      | None -> ()
      | Some info ->
        Hashtbl.replace objs obj { info with free_index = Some index };
        decr live)
    ~realloc:(fun _ ~obj ~new_size ~thread:_ ->
      match Hashtbl.find_opt objs obj with
      | None -> ()
      | Some info -> Hashtbl.replace objs obj { info with size = new_size })
    packed;
  let site_tbl = Hashtbl.create 64 in
  Hashtbl.iter
    (fun site_id alloc_count ->
      let site_objects = List.rev (Option.value ~default:[] (Hashtbl.find_opt site_objs site_id)) in
      let site_accesses =
        List.fold_left (fun acc o -> acc + (Hashtbl.find objs o).accesses) 0 site_objects
      in
      Hashtbl.replace site_tbl site_id { site_id; alloc_count; site_objects; site_accesses })
    site_counts;
  { objs;
    order = List.rev !order;
    site_tbl;
    total_accesses = !total_accesses;
    max_live = !max_live;
    trace_len = Packed.length packed }

let analyze trace = analyze_packed (Packed.of_trace trace)

let objects t = List.map (fun o -> Hashtbl.find t.objs o) t.order

let obj_info t obj =
  match Hashtbl.find_opt t.objs obj with
  | Some info -> info
  | None -> raise Not_found

let sites t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.site_tbl []
  |> List.sort (fun a b -> compare a.site_id b.site_id)

let site_info t site =
  match Hashtbl.find_opt t.site_tbl site with
  | Some s -> s
  | None -> raise Not_found

let total_heap_accesses t = t.total_accesses

let max_live_objects t = t.max_live

let max_live_objects_of_site t site =
  match Hashtbl.find_opt t.site_tbl site with
  | None -> 0
  | Some s ->
    (* Sweep the per-object intervals of this site. *)
    let events =
      List.concat_map
        (fun o ->
          let info = Hashtbl.find t.objs o in
          let fin = Option.value ~default:t.trace_len info.free_index in
          [ (info.alloc_index, 1); (fin, -1) ])
        s.site_objects
      |> List.sort compare
    in
    let live = ref 0 and best = ref 0 in
    List.iter
      (fun (_, d) ->
        live := !live + d;
        if !live > !best then best := !live)
      events;
    !best

let hot_objects ?(coverage = 0.9) ?(min_accesses = 4) t =
  let all =
    objects t
    |> List.filter (fun o -> o.accesses >= max 1 min_accesses)
    |> List.sort (fun a b -> compare b.accesses a.accesses)
  in
  let target = coverage *. float_of_int t.total_accesses in
  let rec take acc covered = function
    | [] -> List.rev acc
    | o :: rest ->
      if covered >= target then List.rev acc
      else take (o :: acc) (covered +. float_of_int o.accesses) rest
  in
  take [] 0. all

let heap_access_share t objs =
  if t.total_accesses = 0 then 0.
  else
    let seen = Hashtbl.create (List.length objs) in
    let acc =
      List.fold_left
        (fun acc o ->
          if Hashtbl.mem seen o then acc
          else begin
            Hashtbl.replace seen o ();
            match Hashtbl.find_opt t.objs o with
            | None -> acc
            | Some info -> acc + info.accesses
          end)
        0 objs
    in
    float_of_int acc /. float_of_int t.total_accesses

let lifetimes_overlap t a b =
  let ia = obj_info t a and ib = obj_info t b in
  let fin i = Option.value ~default:t.trace_len i.free_index in
  ia.alloc_index < fin ib && ib.alloc_index < fin ia
