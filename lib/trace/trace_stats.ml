type obj_info = {
  obj : int;
  site : int;
  ctx : int;
  size : int;
  alloc_size : int;
  accesses : int;
  alloc_index : int;
  free_index : int option;
  instance : int;
}

type site_info = {
  site_id : int;
  alloc_count : int;
  site_objects : int list;
  site_accesses : int;
}

type t = {
  objs : (int, obj_info) Hashtbl.t; (* current (latest) incarnation per id *)
  all_objects : obj_info list; (* every incarnation, allocation order *)
  site_tbl : (int, site_info) Hashtbl.t;
  site_members : (int, obj_info list) Hashtbl.t; (* per-incarnation, alloc order *)
  total_accesses : int;
  max_live : int;
  reused : int;
  trace_len : int;
}

(* ---- online collector ------------------------------------------------

   The analysis is a single left-to-right fold, so it streams: [feed] a
   packed segment at a time (with the global index of its first event)
   and [finish] once.  [analyze]/[analyze_packed]/[analyze_stream] are
   all the same collector, which is what makes the streamed and
   materialized statistics exactly equal. *)

type collector = {
  c_objs : (int, obj_info) Hashtbl.t;
  mutable c_archived : obj_info list; (* superseded incarnations of reused ids *)
  c_site_counts : (int, int) Hashtbl.t;
  c_site_objs : (int, int list) Hashtbl.t; (* reversed allocation order *)
  mutable c_total_accesses : int;
  mutable c_live : int;
  mutable c_max_live : int;
  mutable c_reused : int;
  mutable c_len : int;
}

let collector () =
  { c_objs = Hashtbl.create 1024;
    c_archived = [];
    c_site_counts = Hashtbl.create 64;
    c_site_objs = Hashtbl.create 64;
    c_total_accesses = 0;
    c_live = 0;
    c_max_live = 0;
    c_reused = 0;
    c_len = 0 }

let feed c ~base packed =
  let c_objs = c.c_objs in
  Packed.iteri
    ~alloc:(fun index ~obj ~site ~ctx ~size ~thread:_ ->
      let index = base + index in
      (* A reused id starts a new incarnation: the old info is archived
         (not overwritten, which double-counted the id in [objects])
         and, if the old incarnation was never freed, it stops being
         live here — an id names at most one live object. *)
      (match Hashtbl.find_opt c_objs obj with
      | None -> ()
      | Some old ->
        c.c_reused <- c.c_reused + 1;
        c.c_archived <- old :: c.c_archived;
        if old.free_index = None then c.c_live <- c.c_live - 1);
      let instance = 1 + Option.value ~default:0 (Hashtbl.find_opt c.c_site_counts site) in
      Hashtbl.replace c.c_site_counts site instance;
      Hashtbl.replace c.c_site_objs site
        (obj :: Option.value ~default:[] (Hashtbl.find_opt c.c_site_objs site));
      Hashtbl.replace c_objs obj
        { obj; site; ctx; size; alloc_size = size; accesses = 0; alloc_index = index;
          free_index = None; instance };
      c.c_live <- c.c_live + 1;
      if c.c_live > c.c_max_live then c.c_max_live <- c.c_live)
    ~access:(fun _ ~obj ~offset:_ ~write:_ ~thread:_ ->
      c.c_total_accesses <- c.c_total_accesses + 1;
      match Hashtbl.find_opt c_objs obj with
      | None -> ()
      | Some info -> Hashtbl.replace c_objs obj { info with accesses = info.accesses + 1 })
    ~free:(fun index ~obj ~thread:_ ->
      let index = base + index in
      match Hashtbl.find_opt c_objs obj with
      | None -> ()
      | Some info ->
        (* Only the first Free ends the lifetime; a duplicate free (which
           lenient replay tolerates) must not drive [live] negative. *)
        if info.free_index = None then begin
          Hashtbl.replace c_objs obj { info with free_index = Some index };
          c.c_live <- c.c_live - 1
        end)
    ~realloc:(fun _ ~obj ~new_size ~thread:_ ->
      match Hashtbl.find_opt c_objs obj with
      | None -> ()
      | Some info -> Hashtbl.replace c_objs obj { info with size = new_size })
    packed;
  c.c_len <- c.c_len + Packed.length packed

let finish c =
  let current = Hashtbl.fold (fun _ info acc -> info :: acc) c.c_objs [] in
  let all_objects =
    List.sort (fun a b -> compare a.alloc_index b.alloc_index) (c.c_archived @ current)
  in
  let site_members = Hashtbl.create 64 in
  List.iter
    (fun info ->
      Hashtbl.replace site_members info.site
        (info :: Option.value ~default:[] (Hashtbl.find_opt site_members info.site)))
    (List.rev all_objects);
  let site_tbl = Hashtbl.create 64 in
  Hashtbl.iter
    (fun site_id alloc_count ->
      let site_objects =
        List.rev (Option.value ~default:[] (Hashtbl.find_opt c.c_site_objs site_id))
      in
      let site_accesses =
        List.fold_left
          (fun acc (info : obj_info) -> acc + info.accesses)
          0
          (Option.value ~default:[] (Hashtbl.find_opt site_members site_id))
      in
      Hashtbl.replace site_tbl site_id { site_id; alloc_count; site_objects; site_accesses })
    c.c_site_counts;
  { objs = c.c_objs;
    all_objects;
    site_tbl;
    site_members;
    total_accesses = c.c_total_accesses;
    max_live = c.c_max_live;
    reused = c.c_reused;
    trace_len = c.c_len }

let events_fed c = c.c_len

let analyze_packed packed =
  let c = collector () in
  feed c ~base:0 packed;
  finish c

let analyze trace = analyze_packed (Packed.of_trace trace)

let analyze_stream stream =
  let c = collector () in
  Stream.iter_segments stream (fun ~base seg -> feed c ~base seg);
  finish c

let objects t = t.all_objects

let obj_info t obj =
  match Hashtbl.find_opt t.objs obj with
  | Some info -> info
  | None -> raise Not_found

let sites t =
  Hashtbl.fold (fun _ s acc -> s :: acc) t.site_tbl []
  |> List.sort (fun a b -> compare a.site_id b.site_id)

let site_info t site =
  match Hashtbl.find_opt t.site_tbl site with
  | Some s -> s
  | None -> raise Not_found

let total_heap_accesses t = t.total_accesses

let max_live_objects t = t.max_live

let reused_ids t = t.reused

let trace_length t = t.trace_len

let max_live_objects_of_site t site =
  match Hashtbl.find_opt t.site_members site with
  | None -> 0
  | Some members ->
    (* Sweep the per-incarnation intervals of this site. *)
    let events =
      List.concat_map
        (fun (info : obj_info) ->
          let fin = Option.value ~default:t.trace_len info.free_index in
          [ (info.alloc_index, 1); (fin, -1) ])
        members
      |> List.sort compare
    in
    let live = ref 0 and best = ref 0 in
    List.iter
      (fun (_, d) ->
        live := !live + d;
        if !live > !best then best := !live)
      events;
    !best

let hot_objects ?(coverage = 0.9) ?(min_accesses = 4) t =
  let all =
    objects t
    |> List.filter (fun o -> o.accesses >= max 1 min_accesses)
    |> List.sort (fun a b -> compare b.accesses a.accesses)
  in
  let target = coverage *. float_of_int t.total_accesses in
  let rec take acc covered = function
    | [] -> List.rev acc
    | o :: rest ->
      if covered >= target then List.rev acc
      else take (o :: acc) (covered +. float_of_int o.accesses) rest
  in
  take [] 0. all

let heap_access_share t objs =
  if t.total_accesses = 0 then 0.
  else
    let seen = Hashtbl.create (List.length objs) in
    let acc =
      List.fold_left
        (fun acc o ->
          if Hashtbl.mem seen o then acc
          else begin
            Hashtbl.replace seen o ();
            match Hashtbl.find_opt t.objs o with
            | None -> acc
            | Some info -> acc + info.accesses
          end)
        0 objs
    in
    float_of_int acc /. float_of_int t.total_accesses

let lifetimes_overlap t a b =
  let ia = obj_info t a and ib = obj_info t b in
  let fin i = Option.value ~default:t.trace_len i.free_index in
  ia.alloc_index < fin ib && ib.alloc_index < fin ia
