(** Struct-of-arrays encoding of an event stream.

    A {!Trace.t} stores boxed {!Event.t} variants — one heap block per
    event, pointer-chased on every replay.  [Packed.t] stores the same
    stream as parallel flat [int array]s (tag / object id / two payload
    fields / alloc context / thread), built once with {!of_trace} and
    then shared read-only by every consumer: replays touch dense,
    cache-friendly memory and allocate nothing per event.

    The boxed [Trace.t] stays the construction- and sanitizer-facing
    representation; convert at the replay boundary.  {!to_trace}
    inverts {!of_trace} exactly ([to_trace (of_trace t)] reproduces
    [t] event for event — property-tested). *)

type t = private {
  len : int;
  tag : int array;  (** event kind per index; see the [tag_*] codes *)
  obj : int array;  (** object id (0 for [Compute]) *)
  fa : int array;
      (** Alloc: site; Access: offset; Realloc: new_size; Compute: instrs *)
  fb : int array;  (** Alloc: size; Access: 1 when a write else 0 *)
  fc : int array;  (** Alloc: ctx (0 for every other kind) *)
  thread : int array;
}
(** The arrays are exposed read-only ([private]) so hot loops index
    them directly instead of paying a closure per event. *)

val tag_alloc : int  (** = 0 *)

val tag_access : int  (** = 1 *)

val tag_free : int  (** = 2 *)

val tag_realloc : int  (** = 3 *)

val tag_compute : int  (** = 4 *)

val length : t -> int

val of_trace : Trace.t -> t
(** One pass over the boxed trace; the packed arrays have exact
    capacity. *)

val to_trace : t -> Trace.t
(** Exact inverse of {!of_trace}. *)

val of_arrays :
  len:int ->
  tag:int array ->
  obj:int array ->
  fa:int array ->
  fb:int array ->
  fc:int array ->
  thread:int array ->
  t
(** Wrap caller-built column arrays as a packed trace {e without
    copying} — the columnar decoder's zero-copy path ({!Columnar}).
    The arrays are shared, so the result is only as immutable as the
    caller's discipline; each must be at least [len] long (checked).
    Tags must be valid [tag_*] codes and per-tag unused fields must be
    0, exactly as {!of_trace} lays them out — the columnar decoder
    guarantees this. *)

val get : t -> int -> Event.t
(** Reconstruct one boxed event (for debugging / cold paths); raises
    [Invalid_argument] out of bounds. *)

val iteri :
  ?alloc:(int -> obj:int -> site:int -> ctx:int -> size:int -> thread:int -> unit) ->
  ?access:(int -> obj:int -> offset:int -> write:bool -> thread:int -> unit) ->
  ?free:(int -> obj:int -> thread:int -> unit) ->
  ?realloc:(int -> obj:int -> new_size:int -> thread:int -> unit) ->
  ?compute:(int -> instrs:int -> thread:int -> unit) ->
  t ->
  unit
(** Unboxed iteration: each callback receives the event index plus the
    variant's fields as plain ints — no [Event.t] is materialized.
    Omitted callbacks default to ignoring their events. *)

(** Reusable fixed-capacity packed segment, the unit of the streaming
    engine ({!Stream}): fill, hand a {!Buf.view} to the consumer, clear,
    refill.  One [Buf.t] bounds the memory of a pass over an
    arbitrarily long event source. *)
module Buf : sig
  type packed := t

  type t

  val create : int -> t
  (** Fixed capacity (events); raises [Invalid_argument] when <= 0. *)

  val capacity : t -> int

  val length : t -> int

  val is_full : t -> bool

  val clear : t -> unit

  val add : t -> Event.t -> unit
  (** Append one event; raises [Invalid_argument] when full. *)

  val view : t -> packed
  (** The buffered events as a packed segment.  The segment {e shares}
      the buffer's arrays: it is valid only until the next [clear] or
      [add], and must not be retained by consumers. *)

  val blit_packed : t -> packed -> pos:int -> len:int -> unit
  (** Bulk-append a slice of an existing packed trace (array blits, no
      per-event boxing). *)
end

val total_instructions : t -> int
(** Same quantity as {!Trace.total_instructions}: accesses count one
    instruction each, plus all [Compute] instructions. *)

val num_accesses : t -> int
