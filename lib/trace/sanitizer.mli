(** Trace sanitizer: single-pass validation, anomaly classification and
    repair of possibly-corrupted event streams.

    Real deployments feed the replay stack traces that drifted from the
    profile: dropped frees (leaks), duplicate frees, colliding
    allocation ids, out-of-order events, truncated tails, mutated
    sizes.  The sanitizer classifies each such anomaly into a per-kind
    counter and can {e repair} the stream — synthesize the missing
    allocation, drop the stray free, clamp the corrupt size — into a
    trace that a strict {!Prefix_runtime.Executor} replays without
    raising.  Counters are exported through the {!Prefix_obs.Metric}
    registry as [sanitizer.<kind>]. *)

type anomaly =
  | Duplicate_alloc  (** alloc of an id that is still live *)
  | Use_after_free  (** access to a freed id *)
  | Unknown_access  (** access to a never-allocated id *)
  | Out_of_bounds  (** access offset outside the object's size *)
  | Double_free  (** free of a freed id *)
  | Unknown_free  (** free of a never-allocated id *)
  | Unknown_realloc  (** realloc of a freed or never-allocated id *)
  | Nonpositive_size  (** alloc/realloc size [<= 0] *)
  | Negative_field  (** negative offset, thread or instruction count *)
  | Leak  (** object still live at end of trace (dropped free / truncation) *)

val all : anomaly list
(** Every kind, in a fixed order (the order of [report.counts]). *)

val name : anomaly -> string
(** Stable snake_case name, also the metric suffix. *)

type report = {
  events_in : int;
  events_out : int;  (** [= events_in] for {!scan} *)
  counts : (anomaly * int) list;  (** one entry per {!all} member *)
  dropped : int;  (** events removed by repair *)
  synthesized : int;  (** events invented by repair (allocs, closing frees) *)
  rewritten : int;  (** events kept with a field fixed (clamped size/offset) *)
}
(** For {!scan}, [dropped]/[synthesized]/[rewritten] describe what a
    repair {e would} do. *)

val count : report -> anomaly -> int

val total : report -> int
(** Sum of all anomaly counts. *)

val structural : report -> int
(** Sum of all anomaly counts except {!Leak}: realistic traces end with
    objects still live, and a leak alone never breaks a strict replay. *)

val clean : report -> bool
(** [structural = 0].  Leaks are reported and repaired but do not make
    a trace unclean. *)

val pp_report : Format.formatter -> report -> unit

val report_to_string : report -> string

val scan : Trace.t -> report
(** Classify without building a repaired trace. *)

val sanitize : Trace.t -> Trace.t * report
(** Repair: returns a trace with every anomaly fixed — replayable by a
    strict executor and leak-free — plus the classification report.
    A clean input round-trips unchanged. *)

val check : Trace.t -> (Trace.t, report) result
(** Reject: [Ok t] iff the trace is anomaly-free, otherwise the
    structured report (used by strict mode to fail fast). *)

val export_metrics : report -> unit
(** Add the report's counters into the {!Prefix_obs.Metric} registry
    ([sanitizer.duplicate_alloc], ..., [sanitizer.events_dropped],
    [sanitizer.events_synthesized], [sanitizer.events_rewritten]).
    No-op while observability is off. *)
