(** Memory-trace events.

    A trace is the sequence of heap-relevant actions a program performs, as
    DynamoRIO would record them for the paper (Figure 8).  Identifiers:

    - [obj]: dynamic object identifier, unique per allocation over the whole
      trace (never reused, even after [Free]).
    - [site]: static malloc-site identifier (the program-counter of the
      allocation call in the original binary).
    - [ctx]: call-stack signature of the allocation, as HALO hashes it.
      Distinct program paths can share a [ctx] — that imprecision is exactly
      the pollution mechanism the paper analyses (§2.2).
    - [thread]: logical thread id; single-threaded workloads use 0. *)

type t =
  | Alloc of { obj : int; site : int; ctx : int; size : int; thread : int }
      (** Object creation via malloc/new at a static site. *)
  | Access of { obj : int; offset : int; write : bool; thread : int }
      (** A load/store of one word within [obj] at byte [offset]. *)
  | Free of { obj : int; thread : int }
      (** Deallocation. *)
  | Realloc of { obj : int; new_size : int; thread : int }
      (** Resize in place or by moving; keeps the same dynamic id. *)
  | Compute of { instrs : int; thread : int }
      (** [instrs] non-memory instructions executed between heap actions;
          drives the instruction-count and cycle models. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val thread : t -> int
(** The thread performing the event. *)

val is_heap_access : t -> bool
(** True only for [Access]. *)
