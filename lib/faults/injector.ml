module Trace = Prefix_trace.Trace
module Event = Prefix_trace.Event
module Rng = Prefix_util.Rng

type kind =
  | Drop_frees
  | Duplicate_frees
  | Collide_ids
  | Reorder
  | Truncate
  | Mutate_sizes

let all_kinds =
  [ Drop_frees; Duplicate_frees; Collide_ids; Reorder; Truncate; Mutate_sizes ]

let kind_name = function
  | Drop_frees -> "drop-frees"
  | Duplicate_frees -> "dup-frees"
  | Collide_ids -> "collide-ids"
  | Reorder -> "reorder"
  | Truncate -> "truncate"
  | Mutate_sizes -> "mutate-sizes"

let kind_of_name s =
  match List.find_opt (fun k -> kind_name k = s) all_kinds with
  | Some k -> Ok k
  | None ->
    Error
      (Printf.sprintf "unknown fault kind %S (one of: %s)" s
         (String.concat ", " (List.map kind_name all_kinds)))

let kind_index k =
  let rec go i = function
    | [] -> 0
    | k' :: _ when k' = k -> i
    | _ :: rest -> go (i + 1) rest
  in
  go 0 all_kinds

(* One rng stream per (kind, seed) so campaigns over several kinds with
   the same seed do not correlate. *)
let rng_for kind seed = Rng.create ((seed * 1_000_003) + kind_index kind + 1)

(* Pick [max 1 (rate * |candidates|)] distinct members, deterministically. *)
let pick_victims rng rate candidates =
  let arr = Array.of_list candidates in
  let n = Array.length arr in
  if n = 0 then []
  else begin
    let k = min n (max 1 (int_of_float (rate *. float_of_int n))) in
    Rng.shuffle rng arr;
    Array.to_list (Array.sub arr 0 k)
  end

let indices_where p t =
  let acc = ref [] in
  Trace.iteri (fun i e -> if p e then acc := i :: !acc) t;
  List.rev !acc

let in_set victims =
  let tbl = Hashtbl.create (List.length victims * 2) in
  List.iter (fun i -> Hashtbl.replace tbl i ()) victims;
  Hashtbl.mem tbl

let is_free (e : Event.t) = match e with Free _ -> true | _ -> false
let is_alloc (e : Event.t) = match e with Alloc _ -> true | _ -> false

let drop_frees rng rate t =
  let hit = in_set (pick_victims rng rate (indices_where is_free t)) in
  let out = Trace.create ~capacity:(Trace.length t) () in
  Trace.iteri (fun i e -> if not (hit i) then Trace.add out e) t;
  out

let duplicate_frees rng rate t =
  let hit = in_set (pick_victims rng rate (indices_where is_free t)) in
  let out = Trace.create ~capacity:(Trace.length t + 16) () in
  Trace.iteri
    (fun i e ->
      Trace.add out e;
      if hit i then Trace.add out e)
    t;
  out

(* Rewrite a victim allocation's object id to an id that is live at
   that point (profile/deployment drift where two allocation streams
   share an id).  The victim's own accesses and free then dangle. *)
let collide_ids rng rate t =
  let hit = in_set (pick_victims rng rate (indices_where is_alloc t)) in
  let live = Hashtbl.create 1024 in
  let live_list = ref [] in
  let out = Trace.create ~capacity:(Trace.length t) () in
  Trace.iteri
    (fun i e ->
      let e =
        match (e : Event.t) with
        | Alloc ({ obj; _ } as a) when hit i && !live_list <> [] ->
          let arr = Array.of_list !live_list in
          let victim = Rng.choose rng arr in
          if victim = obj then Event.Alloc a else Event.Alloc { a with obj = victim }
        | e -> e
      in
      (* Liveness tracks the ORIGINAL stream so later picks stay realistic. *)
      (match (e : Event.t) with
      | Alloc { obj; _ } ->
        if not (Hashtbl.mem live obj) then begin
          Hashtbl.replace live obj ();
          live_list := obj :: !live_list
        end
      | Free { obj; _ } ->
        if Hashtbl.mem live obj then begin
          Hashtbl.remove live obj;
          live_list := List.filter (fun o -> o <> obj) !live_list
        end
      | _ -> ());
      Trace.add out e)
    t;
  out

(* Displace victims a short distance forward: events arrive out of
   order the way buffered multi-threaded recording delivers them. *)
let reorder rng rate t =
  let n = Trace.length t in
  let victims = pick_victims rng rate (List.init (max 0 (n - 1)) (fun i -> i)) in
  let arr = Array.init n (Trace.get t) in
  List.iter
    (fun i ->
      let d = Rng.int_in rng 1 8 in
      let j = min (n - 1) (i + d) in
      let tmp = arr.(i) in
      arr.(i) <- arr.(j);
      arr.(j) <- tmp)
    victims;
  let out = Trace.create ~capacity:n () in
  Array.iter (Trace.add out) arr;
  out

let truncate rng rate t =
  let n = Trace.length t in
  (* Cut between rate/2 and rate of the tail, rng-jittered. *)
  let cut = max 1 (int_of_float (rate *. float_of_int n)) in
  let cut = if cut <= 1 then 1 else Rng.int_in rng (max 1 (cut / 2)) cut in
  let keep = max 0 (n - cut) in
  let out = Trace.create ~capacity:keep () in
  for i = 0 to keep - 1 do
    Trace.add out (Trace.get t i)
  done;
  out

let mutate_sizes rng rate t =
  let hit = in_set (pick_victims rng rate (indices_where is_alloc t)) in
  let out = Trace.create ~capacity:(Trace.length t) () in
  Trace.iteri
    (fun i e ->
      let e =
        match (e : Event.t) with
        | Alloc ({ size; _ } as a) when hit i ->
          let size' =
            match Rng.int rng 4 with
            | 0 -> 0 (* nonpositive: crashes a strict malloc *)
            | 1 -> -size (* negative *)
            | 2 -> max 1 (size / 4) (* shrunk: later accesses go out of bounds *)
            | _ -> (size * 9) + 8 (* inflated: region pressure / exhaustion *)
          in
          Event.Alloc { a with size = size' }
        | e -> e
      in
      Trace.add out e)
    t;
  out

let inject kind ~seed ?(rate = 0.01) t =
  let rng = rng_for kind seed in
  match kind with
  | Drop_frees -> drop_frees rng rate t
  | Duplicate_frees -> duplicate_frees rng rate t
  | Collide_ids -> collide_ids rng rate t
  | Reorder -> reorder rng rate t
  | Truncate -> truncate rng rate t
  | Mutate_sizes -> mutate_sizes rng rate t
