(* Crash-recovery campaign: prove kill-then-resume is lossless.

   For each case (a benchmark list and a domain count) the parent first
   runs the full durable benchmark in a forked child to get the clean
   reference report, then runs a chain of children over one shared
   checkpoint directory, each child rigged — via the
   {!Prefix_runtime.Checkpoint} after-save hook — to SIGKILL itself
   after its k-th checkpoint write (k drawn from a seeded RNG).  Between
   children the parent sometimes tears the newest checkpoint file
   (truncation or a byte flip), exercising the CRC + .prev fallback.
   When a child finally completes, its report must be byte-identical to
   the clean reference.

   The parent stays single-domain throughout (it only forks and waits);
   every durable run — including the clean reference — happens in a
   child, so forking never races a domain pool.  Children with jobs=2
   replay two benchmarks across a pool, putting kill points inside
   concurrent checkpoint writers.

   Every kill lands on a checkpoint-write boundary by construction, and
   each child performs at least one save before dying (saves only
   happen after new progress), so the chain terminates. *)

module Checkpoint = Prefix_runtime.Checkpoint
module Durable = Prefix_experiments.Durable
module Workload = Prefix_workloads.Workload
module Fsio = Prefix_util.Fsio

type config = {
  benches : string list;
  dir : string;  (* campaign root; one subdirectory per case instance *)
  seed : int;
  target_kills : int;  (* keep cycling cases until this many kills *)
  scale : Workload.scale;  (* evaluation scale of the durable runs *)
  segment_events : int;
  every : int;  (* checkpoint every N segments *)
}

let default_config ~dir =
  { benches = [ "libc"; "swissmap" ];
    dir;
    seed = 42;
    target_kills = 20;
    scale = Workload.Profiling;
    segment_events = 1024;
    every = 1 }

type case = { c_benches : string list; c_jobs : int }

type summary = {
  s_cases : int;  (* case instances driven to completion *)
  s_kills : int;
  s_torn : int;  (* torn-checkpoint injections *)
  s_resumes : int;  (* children that resumed an interrupted run *)
  s_divergences : (string * string) list;  (* case dir, detail *)
  s_failures : (string * string) list;  (* case dir, detail *)
}

let ok s = s.s_divergences = [] && s.s_failures = [] && s.s_cases > 0

(* ---- child side ----------------------------------------------------- *)

let ( // ) = Filename.concat

let durable_cfg cfg ~dir ~jobs =
  { Durable.dir;
    every = cfg.every;
    (* Unthrottled: the campaign wants a kill point at every boundary. *)
    throttle_ms = 0.;
    guardrails = Checkpoint.no_guardrails;
    jobs;
    scale = cfg.scale;
    streaming = true;
    segment_events = Some cfg.segment_events }

(* Run the case's benchmarks durably and leave the concatenated report
   (plus a distinguishable error file on failure) in [dir].  Runs in a
   forked child: exits via [Unix._exit] so the parent's buffers and
   at_exit handlers never run twice. *)
let child_main cfg ~dir ~jobs ~kill_after () =
  (match kill_after with
  | Some k ->
    Checkpoint.reset_saves ();
    Checkpoint.set_after_save (fun n ->
        if n >= k then Unix.kill (Unix.getpid ()) Sys.sigkill)
  | None -> ());
  match
    let results = Durable.run_many (durable_cfg cfg ~dir ~jobs) cfg.benches in
    String.concat "" (List.map Durable.render results)
  with
  | report ->
    Fsio.atomic_write_string (dir // "report") report;
    Unix._exit 0
  | exception e ->
    (try Fsio.atomic_write_string (dir // "error") (Printexc.to_string e)
     with _ -> ());
    Unix._exit 4

let fork_child cfg ~dir ~jobs ~kill_after =
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
    (* Keep child noise (logs, alcotest-style output) out of the
       campaign's own report. *)
    (try
       let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
       Unix.dup2 devnull Unix.stdout;
       Unix.dup2 devnull Unix.stderr;
       Unix.close devnull
     with Unix.Unix_error _ -> ());
    child_main cfg ~dir ~jobs ~kill_after ()
  | pid ->
    let _, status = Unix.waitpid [] pid in
    status

(* ---- torn-write injection ------------------------------------------- *)

let checkpoint_files dir =
  let acc = ref [] in
  let rec walk d =
    match Sys.readdir d with
    | exception Sys_error _ -> ()
    | entries ->
      Array.iter
        (fun e ->
          let p = d // e in
          if Sys.is_directory p then walk p
          else if Filename.check_suffix e ".ckpt" then acc := p :: !acc)
        entries
  in
  walk dir;
  List.sort compare !acc

(* Deliberately non-atomic corruption of one checkpoint file, as a
   crash mid-write would leave it.  The .prev rotation must absorb
   this. *)
let tear_one rng dir =
  match checkpoint_files dir with
  | [] -> false
  | files ->
    let path = List.nth files (Random.State.int rng (List.length files)) in
    (match Fsio.read_file path with
    | Error _ -> false
    | Ok data ->
      let n = String.length data in
      if n = 0 then false
      else begin
        let data' =
          if Random.State.bool rng then
            (* torn tail: keep a prefix *)
            String.sub data 0 (Random.State.int rng n)
          else begin
            (* bit flip somewhere in the body *)
            let b = Bytes.of_string data in
            let i = Random.State.int rng n in
            Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x40));
            Bytes.to_string b
          end
        in
        let oc = open_out_bin path in
        output_string oc data';
        close_out oc;
        true
      end)

(* ---- parent side ---------------------------------------------------- *)

let max_children_per_case = 500

let run ?(progress = fun _ -> ()) cfg =
  if cfg.benches = [] then invalid_arg "Crash.run: no benchmarks";
  List.iter
    (fun b -> ignore (Prefix_workloads.Registry.find b))
    cfg.benches;
  Fsio.mkdir_p cfg.dir;
  (* jobs=1 exercises each benchmark alone; jobs=2 pairs them so kill
     points land inside pooled, concurrent checkpoint writers. *)
  let cases =
    List.map (fun b -> { c_benches = [ b ]; c_jobs = 1 }) cfg.benches
    @
    match cfg.benches with
    | _ :: _ :: _ -> [ { c_benches = cfg.benches; c_jobs = 2 } ]
    | _ -> []
  in
  let kills = ref 0 and torn = ref 0 and resumes = ref 0 in
  let divergences = ref [] and failures = ref [] in
  let cases_done = ref 0 in
  let cycle = ref 0 in
  while
    !kills < cfg.target_kills
    && !divergences = [] && !failures = []
    && !cycle < 200
  do
    List.iteri
      (fun i case ->
        if !kills < cfg.target_kills && !divergences = [] && !failures = []
        then begin
          let tag = Printf.sprintf "case-%d-%d" !cycle i in
          let dir = cfg.dir // tag in
          let clean_dir = cfg.dir // (tag ^ "-clean") in
          let case_cfg = { cfg with benches = case.c_benches } in
          let rng =
            Random.State.make [| cfg.seed; !cycle; i; 0x5eed |]
          in
          progress
            (Printf.sprintf "%s: %s, jobs %d" tag
               (String.concat "+" case.c_benches)
               case.c_jobs);
          (* Clean reference, uninterrupted (also forked: the parent
             must stay single-domain). *)
          (match
             fork_child case_cfg ~dir:clean_dir ~jobs:case.c_jobs
               ~kill_after:None
           with
          | Unix.WEXITED 0 -> ()
          | status ->
            let detail =
              match status with
              | Unix.WEXITED n ->
                Printf.sprintf "clean run exited %d%s" n
                  (match Fsio.read_file (clean_dir // "error") with
                  | Ok e -> ": " ^ e
                  | Error _ -> "")
              | Unix.WSIGNALED s ->
                Printf.sprintf "clean run killed by signal %d" s
              | Unix.WSTOPPED s -> Printf.sprintf "clean run stopped %d" s
            in
            failures := (tag, detail) :: !failures);
          (* Kill chain over one shared checkpoint directory. *)
          let attempts = ref 0 in
          let completed = ref false in
          while
            (not !completed) && !failures = [] && !attempts < max_children_per_case
          do
            incr attempts;
            if !attempts > 1 then incr resumes;
            (* Later attempts get a wider kill window so the chain
               outruns torn-write rollbacks. *)
            let kill_after = 1 + Random.State.int rng (2 + (!attempts / 3)) in
            match
              fork_child case_cfg ~dir ~jobs:case.c_jobs
                ~kill_after:(Some kill_after)
            with
            | Unix.WSIGNALED s when s = Sys.sigkill ->
              incr kills;
              (* Occasionally also tear the newest on-disk state, as a
                 crash mid-write would. *)
              if Random.State.int rng 5 = 0 && tear_one rng dir then incr torn
            | Unix.WEXITED 0 -> completed := true
            | Unix.WEXITED n ->
              failures :=
                ( tag,
                  Printf.sprintf "child exited %d after %d kills%s" n !kills
                    (match Fsio.read_file (dir // "error") with
                    | Ok e -> ": " ^ e
                    | Error _ -> "") )
                :: !failures
            | Unix.WSIGNALED s ->
              failures :=
                (tag, Printf.sprintf "child killed by unexpected signal %d" s)
                :: !failures
            | Unix.WSTOPPED s ->
              failures := (tag, Printf.sprintf "child stopped %d" s) :: !failures
          done;
          if (not !completed) && !failures = [] then
            failures :=
              ( tag,
                Printf.sprintf "no completion after %d children"
                  max_children_per_case )
              :: !failures;
          if !failures = [] then begin
            match
              (Fsio.read_file (dir // "report"), Fsio.read_file (clean_dir // "report"))
            with
            | Ok got, Ok want when got = want -> incr cases_done
            | Ok got, Ok want ->
              divergences :=
                ( tag,
                  Printf.sprintf
                    "resumed report diverges from clean run (%d vs %d bytes)"
                    (String.length got) (String.length want) )
                :: !divergences
            | Error e, _ | _, Error e ->
              failures := (tag, "missing report: " ^ e) :: !failures
          end;
          progress
            (Printf.sprintf "%s: %d kills total, %d torn, %s" tag !kills !torn
               (if !failures = [] && !divergences = [] then "ok" else "FAILED"))
        end)
      cases;
    incr cycle
  done;
  { s_cases = !cases_done;
    s_kills = !kills;
    s_torn = !torn;
    s_resumes = !resumes;
    s_divergences = List.rev !divergences;
    s_failures = List.rev !failures }

let report s =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf
       "crash campaign: %d cases completed, %d kills, %d resumes, %d torn \
        checkpoints\n"
       s.s_cases s.s_kills s.s_resumes s.s_torn);
  List.iter
    (fun (tag, d) -> Buffer.add_string buf (Printf.sprintf "DIVERGENCE %s: %s\n" tag d))
    s.s_divergences;
  List.iter
    (fun (tag, d) -> Buffer.add_string buf (Printf.sprintf "FAILURE %s: %s\n" tag d))
    s.s_failures;
  Buffer.add_string buf
    (if ok s then "crash campaign: all resumed reports byte-identical\n"
     else "crash campaign: FAILED\n");
  Buffer.contents buf
