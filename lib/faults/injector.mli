(** Deterministic, seed-driven fault injectors over event streams.

    Each injector takes a well-formed trace and returns a corrupted
    copy modelling one way real recorded traces go wrong in deployment:
    lost frees, duplicated frees, colliding allocation ids, events
    delivered out of order, a truncated tail, or mutated allocation
    sizes.  Injection is a pure function of [(kind, seed, rate, trace)]
    — campaigns are exactly reproducible from their seed list. *)

type kind =
  | Drop_frees  (** remove frees: objects leak *)
  | Duplicate_frees  (** repeat frees: double-free *)
  | Collide_ids  (** an alloc reuses an id that is still live *)
  | Reorder  (** displace events forward a short distance *)
  | Truncate  (** cut the tail of the stream *)
  | Mutate_sizes  (** corrupt alloc sizes: zero, negative, shrunk, inflated *)

val all_kinds : kind list

val kind_name : kind -> string
(** Stable CLI-facing name, e.g. ["drop-frees"]. *)

val kind_of_name : string -> (kind, string) result

val inject : kind -> seed:int -> ?rate:float -> Prefix_trace.Trace.t -> Prefix_trace.Trace.t
(** [inject kind ~seed ~rate t] corrupts roughly [rate] (default 1%) of
    the kind's candidate events — at least one when any candidate
    exists, so every injection produces a detectable fault on non-empty
    inputs.  The input trace is not modified. *)
