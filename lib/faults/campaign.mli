(** Fault-injection campaign driver: sweep fault kinds x benchmarks x
    policies x seeds and verify the robustness layer end to end.

    Each run corrupts a benchmark's profiling-scale trace with one
    seeded fault, then exercises both failure postures:

    - {b lenient}: the corrupted stream is replayed directly under
      {!Prefix_runtime.Executor} in [Lenient] mode — the campaign
      asserts this never raises and that the replay's memory footprint
      never exceeds the clean run's ([drift_ok]);
    - {b strict}: {!Prefix_trace.Sanitizer.check} must reject the
      corrupted stream with a structured report, and the repaired trace
      from {!Prefix_trace.Sanitizer.sanitize} must replay cleanly under
      the fail-fast strict executor. *)

type policy_id = Hds | Halo | Block | Prefix

val all_policies : policy_id list

val policy_name : policy_id -> string

val policy_of_name : string -> (policy_id, string) result

type config = {
  benches : string list;
  policies : policy_id list;
  kinds : Injector.kind list;
  seeds : int;  (** fault seeds [0 .. seeds-1] per combination *)
  rate : float;  (** fraction of candidate events corrupted per injection *)
  region_cap : int option;
      (** per-region byte cap for HDS/HALO pools (and the Block
          policy's block space) during the lenient replay, to exercise
          exhaustion -> malloc degradation *)
  stream : bool;
      (** replay the clean reference leg through
          {!Prefix_runtime.Executor.run_stream} instead of the packed
          fast path (byte-identical metrics) *)
}

val default_config : config
(** All 13 benchmarks, all four policies, every fault kind, 8 seeds,
    1% rate, no region cap, materialized clean leg. *)

type run = {
  bench : string;
  policy : string;
  kind : Injector.kind;
  fault_seed : int;
  scan : Prefix_trace.Sanitizer.report;
  recovered : int;
  degraded : int;
  strict_rejected : bool;
  region_peak : int;
      (** peak region bytes during the lenient replay — reported in the
          table (not gated: drop-free faults legitimately raise it) *)
  lenient_exn : string option;
  repaired_exn : string option;
  drift : float;
  drift_ok : bool;
}

type summary = { cfg : config; runs : run list }

val run : ?jobs:int -> ?progress:(string -> unit) -> config -> summary
(** Execute the sweep across a domain pool of [jobs] (default 1 — the
    sequential path).  Per-benchmark contexts are built first, then the
    benches x policies x kinds x seeds grid is sharded one run per
    task; records merge back in grid order, so the summary (and its
    rendered report) is byte-identical for every [jobs].  [progress] is
    called once per benchmark as its context is built — from the worker
    domain when [jobs > 1]. *)

val exceptions : summary -> string list
(** Human-readable description of every uncaught exception (must be
    empty for a healthy robustness layer). *)

val drift_violations : summary -> run list

val ok : summary -> bool
(** No uncaught exceptions and no drift violations. *)

val report : summary -> string
(** Render the per-(fault, policy) anomaly/degradation table plus the
    exception and drift summaries. *)
