module Trace = Prefix_trace.Trace
module Trace_stats = Prefix_trace.Trace_stats
module Sanitizer = Prefix_trace.Sanitizer
module Workload = Prefix_workloads.Workload
module Registry = Prefix_workloads.Registry
module Pipeline = Prefix_core.Pipeline
module Plan = Prefix_core.Plan
module Executor = Prefix_runtime.Executor
module Policy = Prefix_runtime.Policy
module Hds_policy = Prefix_runtime.Hds_policy
module Halo_policy = Prefix_runtime.Halo_policy
module Prefix_policy = Prefix_runtime.Prefix_policy
module Tablefmt = Prefix_util.Tablefmt

type policy_id = Hds | Halo | Block | Prefix

let all_policies = [ Hds; Halo; Block; Prefix ]

let policy_name = function
  | Hds -> "HDS"
  | Halo -> "HALO"
  | Block -> "Block"
  | Prefix -> "PreFix"

let policy_of_name s =
  match List.find_opt (fun p -> String.lowercase_ascii (policy_name p) = String.lowercase_ascii s) all_policies with
  | Some p -> Ok p
  | None ->
    Error
      (Printf.sprintf "unknown policy %S (one of: %s)" s
         (String.concat ", " (List.map policy_name all_policies)))

type config = {
  benches : string list;
  policies : policy_id list;
  kinds : Injector.kind list;
  seeds : int;  (** fault seeds 0 .. seeds-1 per combination *)
  rate : float;
  region_cap : int option;
      (** per-region byte cap for HDS/HALO in the lenient replay, to
          exercise exhaustion degradation *)
  stream : bool;
      (** replay the clean reference leg through the streaming engine
          ([Executor.run_stream]) instead of the packed fast path *)
}

let default_config =
  { benches = Registry.names;
    policies = all_policies;
    kinds = Injector.all_kinds;
    seeds = 8;
    rate = 0.01;
    region_cap = None;
    stream = false }

type run = {
  bench : string;
  policy : string;
  kind : Injector.kind;
  fault_seed : int;
  scan : Sanitizer.report;  (** sanitizer classification of the corrupted trace *)
  recovered : int;  (** lenient-executor recovery actions *)
  degraded : int;  (** policy degraded fallbacks (region exhaustion etc.) *)
  strict_rejected : bool;  (** [Sanitizer.check] refused the corrupted trace *)
  region_peak : int;  (** peak region bytes held during the lenient replay *)
  lenient_exn : string option;  (** exception escaping the lenient replay *)
  repaired_exn : string option;  (** exception escaping the strict replay of the repaired trace *)
  drift : float;  (** |mem_refs - clean| / clean *)
  drift_ok : bool;  (** corrupted replay never touches more memory than the clean one *)
}

type summary = { cfg : config; runs : run list }

let exceptions s =
  List.concat_map
    (fun r ->
      let tag which = function
        | Some e -> [ Printf.sprintf "%s/%s/%s/seed %d (%s): %s" r.bench r.policy
                        (Injector.kind_name r.kind) r.fault_seed which e ]
        | None -> []
      in
      tag "lenient" r.lenient_exn @ tag "repaired" r.repaired_exn)
    s.runs

let drift_violations s = List.filter (fun r -> not r.drift_ok) s.runs

let ok s = exceptions s = [] && drift_violations s = []

(* One benchmark's fixed context: trace, plans, per-policy clean replays. *)
type bench_ctx = {
  wl : Workload.t;
  trace : Trace.t;
  pols : (policy_id * (Policy.mode -> int option -> Prefix_heap.Allocator.t -> Policy.t)) list;
  clean_refs : (policy_id * int) list;
}

let profile_seed = 7

let bench_ctx ?(policies = all_policies) ?(stream = false) name =
  let wl = Registry.find name in
  let trace = wl.generate ~scale:Workload.Profiling ~seed:profile_seed () in
  let packed = Prefix_trace.Packed.of_trace trace in
  let stats = Trace_stats.analyze_packed packed in
  let costs = Executor.default_config.costs in
  let mk = function
    | Hds ->
      let plan = Hds_policy.plan_of_trace stats trace in
      fun mode cap heap -> Hds_policy.policy ~mode ?region_cap:cap costs heap plan Policy.no_classification
    | Halo ->
      let plan = Prefix_halo.Halo.plan_of_trace stats trace in
      fun mode cap heap -> Halo_policy.policy ~mode ?region_cap:cap costs heap plan Policy.no_classification
    | Block ->
      let plan = Prefix_runtime.Block_policy.plan_of_trace trace in
      fun mode cap heap ->
        Prefix_runtime.Block_policy.policy ~mode ?block_cap:cap costs heap plan
          Policy.no_classification
    | Prefix ->
      let plan = Pipeline.plan_with_stats ~variant:Plan.HdsHot stats trace in
      fun mode _cap heap -> Prefix_policy.policy ~mode costs heap plan Policy.no_classification
  in
  let pols = List.map (fun p -> (p, mk p)) policies in
  let clean_refs =
    List.map
      (fun (p, mk) ->
        (* The clean reference leg optionally goes through the streaming
           engine — byte-identical metrics, exercised by `fuzz --stream`. *)
        let o =
          if stream then
            Executor.run_stream ~policy:(mk Policy.Strict None)
              (Prefix_trace.Stream.of_packed packed)
          else Executor.run_packed ~policy:(mk Policy.Strict None) packed
        in
        (p, o.Executor.metrics.mem_refs))
      pols
  in
  { wl; trace; pols; clean_refs }

let one_run cfg ctx (pid, mk) kind fault_seed =
  let corrupted = Injector.inject kind ~seed:fault_seed ~rate:cfg.rate ctx.trace in
  let scan = Sanitizer.scan corrupted in
  Sanitizer.export_metrics scan;
  let strict_rejected = Result.is_error (Sanitizer.check corrupted) in
  (* Leg 1: the corrupted stream straight into a lenient replay —
     graceful degradation must make this crash-free. *)
  let lenient_exn, recovered, degraded, region_peak, refs =
    let p = ref None in
    let policy heap =
      let pol = mk Policy.Lenient cfg.region_cap heap in
      p := Some pol;
      pol
    in
    match Executor.run ~mode:Policy.Lenient ~policy corrupted with
    | o ->
      let degraded, region_peak =
        match !p with
        | Some pol ->
          (pol.Policy.stats.degraded_fallbacks, pol.Policy.stats.region_peak_bytes)
        | None -> (0, 0)
      in
      ( None,
        Executor.recovery_total o.recovery,
        degraded,
        region_peak,
        Some o.Executor.metrics.mem_refs )
    | exception e -> (Some (Printexc.to_string e), 0, 0, 0, None)
  in
  (* Leg 2: sanitize, then replay the repaired trace strictly — the
     repair must produce a trace the fail-fast path accepts. *)
  let repaired_exn =
    let repaired, _ = Sanitizer.sanitize corrupted in
    match Executor.run ~mode:Policy.Strict ~policy:(mk Policy.Strict None) repaired with
    | _ -> None
    | exception e -> Some (Printexc.to_string e)
  in
  let clean = List.assoc pid ctx.clean_refs in
  let drift, drift_ok =
    match refs with
    | Some r ->
      (float_of_int (abs (r - clean)) /. float_of_int (max 1 clean), r <= clean)
    | None -> (1., false)
  in
  let module Metric = Prefix_obs.Metric in
  Metric.incr (Metric.counter "campaign.runs");
  if lenient_exn <> None || repaired_exn <> None then
    Metric.incr (Metric.counter "campaign.exceptions");
  if not drift_ok then Metric.incr (Metric.counter "campaign.drift_violations");
  Prefix_obs.Recorder.poll
    ~label:(Printf.sprintf "fault:%s/%s/%s" ctx.wl.name (policy_name pid)
              (Injector.kind_name kind))
    ();
  { bench = ctx.wl.name;
    policy = policy_name pid;
    kind;
    fault_seed;
    scan;
    recovered;
    degraded;
    strict_rejected;
    region_peak;
    lenient_exn;
    repaired_exn;
    drift;
    drift_ok }

module Pool = Prefix_parallel.Pool

let run ?(jobs = 1) ?(progress = fun _ -> ()) cfg =
  Pool.with_pool ~jobs @@ fun pool ->
  (* Phase 1: per-benchmark contexts (trace, plans, clean replays) fan
     out across the pool; each is built once and then only read. *)
  let ctxs =
    Pool.map pool
      (fun bench ->
        progress (Printf.sprintf "campaign: %s" bench);
        bench_ctx ~policies:cfg.policies ~stream:cfg.stream bench)
      cfg.benches
  in
  (* Phase 2: the benches x policies x kinds x seeds grid, sharded one
     run per task.  The grid is laid out — and Pool.map merges — in
     exactly the nested-loop order of the sequential path, and each run
     derives all randomness from its own (kind, fault_seed) injector,
     so report text and verdicts are identical for any [jobs]. *)
  let grid =
    List.concat_map
      (fun ctx ->
        List.concat_map
          (fun pol ->
            List.concat_map
              (fun kind ->
                List.init cfg.seeds (fun fault_seed -> (ctx, pol, kind, fault_seed)))
              cfg.kinds)
          ctx.pols)
      ctxs
  in
  let runs =
    Pool.map pool
      (fun (ctx, pol, kind, fault_seed) -> one_run cfg ctx pol kind fault_seed)
      grid
  in
  { cfg; runs }

(* ---- report ---- *)

let report s =
  let buf = Buffer.create 4096 in
  let tbl =
    Tablefmt.create
      ~headers:
        [ "fault"; "policy"; "runs"; "anomalies"; "leaks"; "rejected"; "recovered";
          "degraded"; "peak region B"; "max drift"; "exceptions" ]
  in
  List.iter
    (fun kind ->
      List.iter
        (fun pid ->
          let pname = policy_name pid in
          let rs =
            List.filter (fun r -> r.kind = kind && r.policy = pname) s.runs
          in
          if rs <> [] then begin
            let sum f = List.fold_left (fun a r -> a + f r) 0 rs in
            let anomalies = sum (fun r -> Sanitizer.structural r.scan) in
            let leaks = sum (fun r -> Sanitizer.count r.scan Sanitizer.Leak) in
            let rejected = sum (fun r -> if r.strict_rejected then 1 else 0) in
            let recovered = sum (fun r -> r.recovered) in
            let degraded = sum (fun r -> r.degraded) in
            let exns =
              sum (fun r ->
                  (if r.lenient_exn <> None then 1 else 0)
                  + if r.repaired_exn <> None then 1 else 0)
            in
            let max_drift = List.fold_left (fun a r -> max a r.drift) 0. rs in
            (* Reported, not gated: a drop-free injection legitimately
               raises the corrupted run's region residency. *)
            let peak_region = List.fold_left (fun a r -> max a r.region_peak) 0 rs in
            Tablefmt.add_row tbl
              [ Injector.kind_name kind; pname; string_of_int (List.length rs);
                Tablefmt.fmt_int anomalies; Tablefmt.fmt_int leaks;
                string_of_int rejected; Tablefmt.fmt_int recovered;
                Tablefmt.fmt_int degraded; Tablefmt.fmt_int peak_region;
                Printf.sprintf "%.2f%%" (100. *. max_drift); string_of_int exns ]
          end)
        s.cfg.policies)
    s.cfg.kinds;
  Buffer.add_string buf (Tablefmt.render tbl);
  let n = List.length s.runs in
  let exns = exceptions s in
  let dv = drift_violations s in
  Buffer.add_string buf
    (Printf.sprintf
       "\n%d campaign runs (%d benchmarks x %d policies x %d fault kinds x %d seeds)\n"
       n
       (List.length s.cfg.benches)
       (List.length s.cfg.policies)
       (List.length s.cfg.kinds)
       s.cfg.seeds);
  Buffer.add_string buf
    (Printf.sprintf "uncaught exceptions: %d%s\n" (List.length exns)
       (if exns = [] then " (lenient replay is crash-free; repaired traces replay strictly)"
        else ""));
  List.iter (fun e -> Buffer.add_string buf ("  " ^ e ^ "\n")) exns;
  Buffer.add_string buf
    (Printf.sprintf "metric-drift violations: %d%s\n" (List.length dv)
       (if dv = [] then " (corrupted replays stay within the clean run's footprint)"
        else ""));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "  %s/%s/%s/seed %d: drift %.2f%%\n" r.bench r.policy
           (Injector.kind_name r.kind) r.fault_seed (100. *. r.drift)))
    dv;
  Buffer.contents buf
