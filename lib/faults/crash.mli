(** Crash-recovery campaign: SIGKILL durable runs at randomized
    checkpoint boundaries, resume them, and require the final report to
    be byte-identical to an uninterrupted run's.

    Each case runs one or two benchmarks (jobs 1 and 2 — the pooled
    case puts kill points inside concurrent checkpoint writers) as a
    chain of forked children over a shared checkpoint directory.  A
    child SIGKILLs itself after its k-th checkpoint write (seeded RNG);
    between children the parent sometimes tears the newest checkpoint
    file — truncation or a byte flip — to exercise the CRC + [.prev]
    fallback.  The parent stays single-domain: every durable run,
    including the clean reference, happens in a child, so forking never
    races a domain pool.

    Cases cycle (fresh directories, fresh kill schedules) until
    [target_kills] kills have been exercised. *)

type config = {
  benches : string list;
  dir : string;  (** campaign root; one subdirectory per case instance *)
  seed : int;
  target_kills : int;
  scale : Prefix_workloads.Workload.scale;
  segment_events : int;
  every : int;  (** checkpoint every N segments *)
}

val default_config : dir:string -> config
(** libc + swissmap, seed 42, 20 kills, Profiling evaluation scale,
    1024-event segments, checkpoint every segment. *)

type summary = {
  s_cases : int;
  s_kills : int;
  s_torn : int;
  s_resumes : int;
  s_divergences : (string * string) list;
  s_failures : (string * string) list;
}

val run : ?progress:(string -> unit) -> config -> summary
(** Raises [Invalid_argument] on an empty benchmark list and [Failure]
    on unknown benchmark names. *)

val ok : summary -> bool
(** No divergences, no failures, at least one case completed. *)

val report : summary -> string
