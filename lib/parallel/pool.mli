(** Fixed-size domain pool with deterministic fan-out/merge.

    A pool owns [jobs - 1] worker domains plus the submitting domain
    (which drains the queue alongside the workers while a {!map} is in
    flight), so [jobs] tasks make progress at once.  Task results are
    merged back {e in input order} regardless of which domain ran which
    task or in what order they finished, so a pooled [map] is
    observationally identical to [List.map] whenever the tasks are
    independent — the property every consumer (harness, fuzz campaign,
    bench repetitions) relies on for byte-identical reports.

    [jobs = 1] short-circuits the machinery entirely: no domains are
    spawned and {!map} {e is} [List.map], the exact legacy sequential
    path.

    Exceptions raised by a task are caught on the worker, carried back
    with their backtrace, and re-raised on the submitting domain once
    every task of the batch has settled; when several tasks fail the
    one earliest in input order wins.

    Utilization is exported through {!Prefix_obs.Metric} (subject to
    the global {!Prefix_obs.Control} switch):

    - ["parallel.tasks"]   — tasks executed, on any domain;
    - ["parallel.steals"]  — tasks the submitting domain stole from the
                             queue instead of waiting idle;
    - ["parallel.idle_ns"] — cumulative nanoseconds workers spent
                             parked on an empty queue. *)

type t

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [[1, 64]] — the
    default for every CLI [--jobs] flag. *)

val create : jobs:int -> t
(** Spawn a pool of [max 1 jobs] slots ([jobs - 1] worker domains).
    Pools are cheap but not free (one OS thread per worker); reuse one
    pool across successive [map]s rather than creating one per call. *)

val jobs : t -> int
(** The slot count the pool was created with (>= 1). *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] applies [f] to every element of [xs] across the pool
    and returns the results in the order of [xs].  Tasks must not
    depend on each other; [f] runs concurrently with itself. *)

val submit : t -> (unit -> unit) -> unit -> unit
(** [submit t task] enqueues [task] for a worker domain and returns a
    join thunk: calling it blocks until the task has run and re-raises
    (with its backtrace) anything the task raised.  Used to run a
    stream-prefetch producer concurrently with its consumer
    ({!Prefix_trace.Stream.prefetched}); unlike {!map} the submitting
    domain does {e not} steal the task, so it really runs
    concurrently.  Raises [Invalid_argument] on a 1-slot pool (no
    worker to run on — executing inline would deadlock a
    producer/consumer pair) or after {!shutdown}. *)

val shutdown : t -> unit
(** Drain and join the worker domains.  Idempotent.  Calling {!map}
    after [shutdown] raises [Invalid_argument]. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f] runs [f] with a fresh pool and always shuts it
    down afterwards, even when [f] raises. *)
