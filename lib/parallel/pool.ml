module Metric = Prefix_obs.Metric
module Clock = Prefix_obs.Clock

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable live : bool;
  mutable workers : unit Domain.t array;
}

(* Handles are re-acquired per use, not cached at module load, so the
   counters survive a Metric.reset (the `stats` subcommand resets the
   registry after this module is initialised). *)
let tasks_counter () = Metric.counter "parallel.tasks"
let steals_counter () = Metric.counter "parallel.steals"
let idle_counter () = Metric.counter "parallel.idle_ns"
let depth_gauge () = Metric.gauge "parallel.queue_depth"

(* Call with [t.mutex] held. *)
let note_depth t = Metric.set (depth_gauge ()) (float_of_int (Queue.length t.queue))

let default_jobs () = max 1 (min 64 (Domain.recommended_domain_count ()))

let jobs t = t.jobs

(* Block until a task is available (returned without running it) or the
   pool is shut down (None).  Time parked on the empty queue is
   reported as parallel.idle_ns. *)
let next_task t =
  Mutex.lock t.mutex;
  let idle = ref 0L in
  while Queue.is_empty t.queue && t.live do
    let t0 = Clock.now_ns () in
    Condition.wait t.work t.mutex;
    idle := Int64.add !idle (Int64.sub (Clock.now_ns ()) t0)
  done;
  let task = Queue.take_opt t.queue in
  note_depth t;
  Mutex.unlock t.mutex;
  if !idle <> 0L then Metric.add (idle_counter ()) (Int64.to_int !idle);
  task

let rec worker_loop t =
  match next_task t with
  | None -> ()
  | Some task ->
    task ();
    worker_loop t

let create ~jobs =
  let jobs = max 1 jobs in
  (* Register the utilization counters up front so they appear in
     snapshots even while every worker is still parked (a parked worker
     only flushes its idle time when it next takes a task or shuts
     down). *)
  ignore (tasks_counter ());
  ignore (steals_counter ());
  ignore (idle_counter ());
  ignore (depth_gauge ());
  let t =
    { jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      live = true;
      workers = [||] }
  in
  t.workers <- Array.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let was_live = t.live in
  t.live <- false;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  if was_live then Array.iter Domain.join t.workers

(* Fire-and-forget task with a join handle: the prefetch pipeline runs
   a stream producer on a worker while the submitting domain consumes.
   No synchronous fallback for 1-slot pools — a producer run inline
   would deadlock against its own consumer, so that misuse is rejected
   loudly instead. *)
let submit t task =
  if t.jobs <= 1 then
    invalid_arg "Pool.submit: needs a pool with at least one worker (jobs >= 2)";
  let mu = Mutex.create () in
  let cond = Condition.create () in
  let done_ = ref false in
  let err = ref None in
  let run () =
    (try task () with e -> err := Some (e, Printexc.get_raw_backtrace ()));
    Metric.incr (tasks_counter ());
    Mutex.lock mu;
    done_ := true;
    Condition.broadcast cond;
    Mutex.unlock mu
  in
  Mutex.lock t.mutex;
  if not t.live then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add run t.queue;
  note_depth t;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  fun () ->
    Mutex.lock mu;
    while not !done_ do
      Condition.wait cond mu
    done;
    Mutex.unlock mu;
    match !err with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ()

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f xs =
  if t.jobs <= 1 then List.map f xs
  else begin
    let items = Array.of_list xs in
    let n = Array.length items in
    if n <= 1 then List.map f xs
    else begin
      let results = Array.make n None in
      let remaining = Atomic.make n in
      let run i =
        let r =
          try Ok (f items.(i))
          with e -> Error (e, Printexc.get_raw_backtrace ())
        in
        results.(i) <- Some r;
        Metric.incr (tasks_counter ());
        (* The last finisher wakes the submitter, which may be parked in
           the settle loop below with no queue work left to steal. *)
        if Atomic.fetch_and_add remaining (-1) = 1 then begin
          Mutex.lock t.mutex;
          Condition.broadcast t.work;
          Mutex.unlock t.mutex
        end
      in
      Mutex.lock t.mutex;
      if not t.live then begin
        Mutex.unlock t.mutex;
        invalid_arg "Pool.map: pool is shut down"
      end;
      for i = 0 to n - 1 do
        Queue.add (fun () -> run i) t.queue
      done;
      note_depth t;
      Condition.broadcast t.work;
      Mutex.unlock t.mutex;
      (* The submitting domain works the queue too instead of idling. *)
      let rec steal () =
        Mutex.lock t.mutex;
        let task = Queue.take_opt t.queue in
        note_depth t;
        Mutex.unlock t.mutex;
        match task with
        | Some task ->
          task ();
          Metric.incr (steals_counter ());
          steal ()
        | None -> ()
      in
      steal ();
      (* Queue is empty; wait for in-flight tasks on the workers. *)
      Mutex.lock t.mutex;
      while Atomic.get remaining > 0 do
        Condition.wait t.work t.mutex
      done;
      Mutex.unlock t.mutex;
      (* Merge in input order; the earliest failure wins. *)
      Array.iter
        (function
          | Some (Error (e, bt)) -> Printexc.raise_with_backtrace e bt
          | Some (Ok _) | None -> ())
        results;
      Array.to_list
        (Array.map
           (function
             | Some (Ok v) -> v
             | Some (Error _) | None -> assert false)
           results)
    end
  end
