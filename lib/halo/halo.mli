(** HALO baseline: post-link heap layout optimisation (Savage & Jones,
    CGO 2020), reimplemented at the fidelity the paper's comparison
    needs.

    HALO disambiguates allocation-site instances by their calling
    context (a call-stack signature), groups contexts by access
    affinity, and redirects every allocation whose signature belongs to
    a group into that group's dedicated memory pool.  Two properties
    matter for the comparison with PreFix (§1, Table 1):

    - {e Imperfect separation}: every object allocated under a grouped
      signature goes to the pool, hot or not, so pools are polluted by
      cold objects sharing a calling context with hot ones.
    - {e No reordering}: pool objects appear in allocation order.

    The affinity analysis below follows the HALO recipe: contexts whose
    objects are accessed close together in the trace have high affinity
    and end up in the same group. *)

type plan = {
  groups : int list list;
      (** Each group is a list of call-stack signatures ([ctx] values)
          whose allocations share one pool. *)
  hot_ctxs : int list;
      (** All grouped signatures, flattened (for membership tests). *)
}

type config = {
  hot_ctx_coverage : float;
      (** Select contexts owning hot objects covering this fraction of
          heap accesses (default 0.9). *)
  affinity_window : int;
      (** Two accesses within this many heap accesses of each other
          count as affine (default 64). *)
  min_affinity : float;
      (** Minimum normalised affinity to merge two contexts into one
          group (default 0.1). *)
}

val default_config : config

val plan_of_trace :
  ?config:config ->
  Prefix_trace.Trace_stats.t ->
  Prefix_trace.Trace.t ->
  plan
(** Run the HALO profile analysis: pick hot contexts, build the
    affinity matrix over them, and group greedily by descending
    affinity. *)

val ctx_in_plan : plan -> int -> int option
(** [ctx_in_plan p ctx] is the group index the signature belongs to,
    if any — the runtime "check against a signature" of Table 1. *)
