module Trace = Prefix_trace.Trace
module Trace_stats = Prefix_trace.Trace_stats
module Event = Prefix_trace.Event

type plan = { groups : int list list; hot_ctxs : int list }

type config = {
  hot_ctx_coverage : float;
  affinity_window : int;
  min_affinity : float;
}

let default_config = { hot_ctx_coverage = 0.9; affinity_window = 64; min_affinity = 0.1 }

(* Contexts that allocate at least one hot object. *)
let hot_contexts config stats =
  let hot = Trace_stats.hot_objects ~coverage:config.hot_ctx_coverage stats in
  let ctxs = Hashtbl.create 64 in
  List.iter
    (fun (o : Trace_stats.obj_info) ->
      let cur = Option.value ~default:0 (Hashtbl.find_opt ctxs o.ctx) in
      Hashtbl.replace ctxs o.ctx (cur + o.accesses))
    hot;
  Hashtbl.fold (fun ctx w acc -> (ctx, w) :: acc) ctxs []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.map fst

(* Affinity: sliding window over the heap-access stream; every pair of hot
   contexts co-occurring within the window gets a tick.  Normalised by the
   smaller context's access count. *)
let affinity_matrix config stats trace hot_ctxs =
  let is_hot_ctx = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace is_hot_ctx c ()) hot_ctxs;
  let ctx_of_obj = Hashtbl.create 1024 in
  List.iter
    (fun (o : Trace_stats.obj_info) ->
      if Hashtbl.mem is_hot_ctx o.ctx then Hashtbl.replace ctx_of_obj o.obj o.ctx)
    (Trace_stats.objects stats);
  let counts : (int * int, int) Hashtbl.t = Hashtbl.create 256 in
  let ctx_accesses : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let window = Queue.create () in
  let bump tbl k = Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)) in
  Trace.iter
    (fun e ->
      match (e : Event.t) with
      | Access { obj; _ } -> (
        match Hashtbl.find_opt ctx_of_obj obj with
        | None -> ()
        | Some ctx ->
          bump ctx_accesses ctx;
          Queue.iter
            (fun other ->
              if other <> ctx then begin
                let key = (min ctx other, max ctx other) in
                bump counts key
              end)
            window;
          Queue.push ctx window;
          if Queue.length window > config.affinity_window then ignore (Queue.pop window))
      | _ -> ())
    trace;
  let accesses c = Option.value ~default:0 (Hashtbl.find_opt ctx_accesses c) in
  Hashtbl.fold
    (fun (a, b) ticks acc ->
      let denom = min (accesses a) (accesses b) in
      if denom = 0 then acc
      else ((a, b), float_of_int ticks /. float_of_int denom) :: acc)
    counts []
  |> List.sort (fun (_, x) (_, y) -> compare y x)

(* Greedy union-find grouping over pairs above the affinity threshold. *)
let group config pairs hot_ctxs =
  let parent = Hashtbl.create 64 in
  List.iter (fun c -> Hashtbl.replace parent c c) hot_ctxs;
  let rec find c =
    let p = Hashtbl.find parent c in
    if p = c then c
    else begin
      let root = find p in
      Hashtbl.replace parent c root;
      root
    end
  in
  let union a b =
    let ra = find a and rb = find b in
    if ra <> rb then Hashtbl.replace parent ra rb
  in
  List.iter (fun ((a, b), w) -> if w >= config.min_affinity then union a b) pairs;
  let groups : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun c ->
      let r = find c in
      Hashtbl.replace groups r (c :: Option.value ~default:[] (Hashtbl.find_opt groups r)))
    hot_ctxs;
  Hashtbl.fold (fun _ g acc -> List.sort compare g :: acc) groups []
  |> List.sort compare

let plan_of_trace ?(config = default_config) stats trace =
  let hot_ctxs = hot_contexts config stats in
  let pairs = affinity_matrix config stats trace hot_ctxs in
  let groups = group config pairs hot_ctxs in
  { groups; hot_ctxs }

let ctx_in_plan plan ctx =
  let rec go i = function
    | [] -> None
    | g :: rest -> if List.mem ctx g then Some i else go (i + 1) rest
  in
  go 0 plan.groups
