module Rng = Prefix_util.Rng

let sweep b ?(write = false) ?(stride = 16) obj =
  let size = Builder.size_of b obj in
  let off = ref 0 in
  while !off < size do
    Builder.access b ~write obj !off;
    off := !off + stride
  done

let stream_sweep b ?(stride = 16) ?(rounds = 1) objs =
  for _ = 1 to rounds do
    List.iter
      (fun obj ->
        let size = Builder.size_of b obj in
        (* A few touches per visit: enough to bring the line(s) in, not a
           full sweep — streams are about inter-object order. *)
        let touches = max 1 (min 4 (size / stride)) in
        for i = 0 to touches - 1 do
          Builder.access b obj (i * stride)
        done)
      objs
  done

let touch b obj = Builder.access b obj 0

let cold_block b ~site ?ctx ?(size = 64) n =
  List.init n (fun _ ->
      let obj = Builder.alloc b ~site ?ctx size in
      Builder.access b obj 0;
      obj)

let churn b ~site ?ctx ?(size = 64) ?(touches = 2) n =
  for _ = 1 to n do
    let obj = Builder.alloc b ~site ?ctx size in
    for i = 0 to touches - 1 do
      Builder.access b obj (i * 16 mod size)
    done;
    Builder.free b obj
  done

let scan_working_set b objs ?(stride = 64) () =
  List.iter
    (fun obj ->
      let size = Builder.size_of b obj in
      let off = ref 0 in
      while !off < size do
        Builder.access b obj !off;
        off := !off + stride
      done)
    objs

let random_accesses b objs ~n =
  let arr = Array.of_list objs in
  if Array.length arr > 0 then
    for _ = 1 to n do
      let obj = Rng.choose (Builder.rng b) arr in
      let size = Builder.size_of b obj in
      let off = Rng.int (Builder.rng b) (max 1 (size / 16)) * 16 in
      let off = if off >= size then 0 else off in
      Builder.access b obj off
    done
