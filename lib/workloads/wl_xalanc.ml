(* xalanc — XSLT processor.

   Two allocation sites matter (Table 2: fixed ids, 2 sites, 2
   counters): the DOM-node allocator and the string-data allocator.
   During parsing each produces a mix of long-lived hot nodes (the parts
   of the document the stylesheet keeps revisiting) and plenty of cold
   nodes, interleaved — so the hot set is scattered in the baseline and
   the HDS [8] region receives every node the sites produce (Table 4:
   54 hot of 27,464).  XPath evaluation then walks fixed node→string
   chains repeatedly. *)

module W = Workload
module B = Builder

let site_nodes = 1
let site_strings = 2
let site_cold = 10 (* stylesheet internals, long-lived cold *)

let node_bytes = 48
let string_bytes = 32

let n_hot_pairs = 118 (* 236 hot objects *)

let fill ?threads ~scale b =
  ignore threads;
  let rounds = W.iterations scale ~base:700 in
  (* --- Parse: hot (node,string) pairs with cold nodes in between, all
     from the same two sites.  The number of cold siblings varies with
     document structure, so the hot ids form no progression: genuinely
     *fixed* id sets (Table 2), and the two sites cannot share a counter
     because their combined numbering fits no supported pattern
     either. *)
  let pairs =
    List.init n_hot_pairs (fun i ->
        let node = B.alloc b ~site:site_nodes node_bytes in
        let str = B.alloc b ~site:site_strings string_bytes in
        (* cold siblings from both sites; count depends on the element *)
        let cold_n = B.alloc b ~site:site_nodes node_bytes in
        let cold_s = B.alloc b ~site:site_strings string_bytes in
        B.access b cold_n 0;
        B.access b cold_s 0;
        if i mod 2 = 0 then begin
          let cold_n2 = B.alloc b ~site:site_nodes node_bytes in
          B.access b cold_n2 0
        end;
        if i mod 5 = 0 then begin
          let cold_s2 = B.alloc b ~site:site_strings string_bytes in
          B.access b cold_s2 0
        end;
        (node, str))
  in
  ignore (Patterns.cold_block b ~site:site_cold ~size:2048 24);
  let pair_arr = Array.of_list pairs in
  (* --- Transform: XPath traversals over chains of 4 pairs. *)
  for r = 0 to rounds - 1 do
    for k = 0 to 7 do
      let base = (r + (k * 17)) mod n_hot_pairs in
      (* chain of 4 consecutive pairs: node then its string *)
      for j = 0 to 3 do
        let node, str = pair_arr.((base + j) mod n_hot_pairs) in
        B.access b node 0;
        B.access b str 0
      done
    done;
    (* Result-tree construction: transient cold. *)
    Patterns.churn b ~site:site_cold ~size:128 ~touches:2 3;
    B.compute b 1800
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "xalanc";
    description = "XSLT processor: two sites, node/string chains";
    bench_threads = false;
    generate;
    fill }
