(* libc — FreeBench-style library micro-benchmark (string/regex tables).

   Two subsystems build parse tables at startup: each uses three sites
   in tandem (entry, transition list, accept set), so the six sites
   share two counters whose hot ids are the consecutive prefix of the
   shared numbering (Table 2: fixed ids, 6 sites, 2 counters).  The
   run phase walks fixed chains of entries — most hot objects belong to
   streams (Table 5: 384 of 438) — plus a few scratch singletons that
   sit on shared lines with cold neighbours, which is why PreFix:HDS
   (-2.77%) beats PreFix:HDS+Hot (-0.93%) here, as in perl.  The
   baseline run is very short, so all wins are small. *)

module W = Workload
module B = Builder

let entry_bytes = 32
let groups = [ [ 1; 2; 3 ]; [ 4; 5; 6 ] ]
let site_cold = 20
let n_chains = 48 (* chains of 8 entries: 384 stream objects *)
let chain_len = 8
let n_scratch = 27 (* singletons with glued cold companions *)

let fill ?threads ~scale b =
  ignore threads;
  let rounds = W.iterations scale ~base:800 in
  (* --- Table build: chains drawn from one group at a time; each chain
     interleaves a couple of cold helper cells from the same sites. *)
  let group_arr = Array.of_list groups in
  let chains =
    List.init n_chains (fun c ->
        let sites = Array.of_list group_arr.(c mod 2) in
        List.init chain_len (fun i ->
            let site = sites.(i mod Array.length sites) in
            let e = B.alloc b ~site entry_bytes in
            (* Interned string data from the same site lands between the
               entries: the hot ids become the regular pattern {1,3,...}
               and the HDS [8] region inherits the interleaving. *)
            let pad = B.alloc b ~site entry_bytes in
            B.access b pad 0;
            e))
  in

  (* Companion-first order varies with the input, so the scratch site's
     hot ids are a fixed set rather than a progression. *)
  let scratch =
    List.init n_scratch (fun i ->
        if i mod 3 = 0 then begin
          let companion = B.alloc b ~site:7 entry_bytes in
          let s = B.alloc b ~site:7 entry_bytes in
          B.access b companion 0;
          (s, companion)
        end
        else begin
          let s = B.alloc b ~site:7 entry_bytes in
          let companion = B.alloc b ~site:7 entry_bytes in
          B.access b companion 0;
          (s, companion)
        end)
  in
  ignore (Patterns.cold_block b ~site:site_cold ~size:256 16);
  let chain_arr = Array.of_list chains in
  let scratch_arr = Array.of_list scratch in
  (* --- Run: chain walks and singleton touches. *)
  for r = 0 to rounds - 1 do
    for k = 0 to 2 do
      let chain = chain_arr.((r + (k * 11)) mod n_chains) in
      List.iter (fun e -> B.access b e 0) chain
    done;
    (* On the evaluation input the singleton's glued companion is read
       with it every time (profile-vs-reality divergence, as in perl). *)
    for _k = 0 to 4 do
      let s, companion = scratch_arr.(Prefix_util.Rng.int (B.rng b) n_scratch) in
      B.access b s 0;
      if scale <> W.Profiling then B.access b companion 0;
      B.access b s 16;
      if scale <> W.Profiling then B.access b companion 16
    done;
    Patterns.churn b ~site:site_cold ~size:96 ~touches:1 2;
    B.compute b 2600
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "libc";
    description = "library tables: tandem trios, stream-dominated hot set";
    bench_threads = false;
    generate;
    fill }
