let all =
  [ Wl_mysql.workload;
    Wl_perl.workload;
    Wl_mcf.workload;
    Wl_omnetpp.workload;
    Wl_xalanc.workload;
    Wl_povray.workload;
    Wl_roms.workload;
    Wl_leela.workload;
    Wl_swissmap.workload;
    Wl_libc.workload;
    Wl_health.workload;
    Wl_ft.workload;
    Wl_analyzer.workload ]

let find name = List.find (fun (w : Workload.t) -> w.name = name) all

let names = List.map (fun (w : Workload.t) -> w.name) all
