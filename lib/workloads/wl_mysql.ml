(* mysql — database server workload.

   The hot objects are a handful of large, long-lived buffers (buffer-pool
   blocks, key caches, sort buffers) identified by fixed instance ids on
   ten allocation sites (Table 2: fixed ids, 10 sites, 6 counters; sites
   that initialise together share a counter).  The buffers grow by realloc
   as load arrives: in the baseline each growth moves the buffer (copy +
   cold cache lines); PreFix preallocates each buffer at its profiled
   maximum, so every growth stays in place (Figure 6's common case) —
   that, plus very strong intra-object locality, is why PreFix:Hot wins
   on mysql while object reordering adds nothing (§3.3), and why peak
   memory jumps (Table 6: preallocation at maximum size up front).

   The same sites also allocate cold per-query scratch buffers, giving
   HDS its mild pollution (Table 4: 2 hot of 80).

   Multithreaded mode (Figure 10): each hot buffer is owned and accessed
   by one thread. *)

module W = Workload
module B = Builder

let site_catalog = 40 (* cold: schema/catalog entries, long-lived *)
let site_scratch = 41 (* cold: per-query scratch *)

let initial_bytes = 8 * 1024
let n_growth_events = 32

(* The training input drives every pool to its configured maximum; the
   evaluation input stops earlier — which is exactly why the paper's
   mysql peak memory jumps from 18 MB to 426 MB: PreFix preallocates at
   the profiled maxima (Table 6). *)
let grown_bytes = function
  | Workload.Profiling -> 40 * 1024
  | Workload.Long | Workload.Huge -> 24 * 1024

(* Setup order defines counter sharing: sites initialising back-to-back
   share a counter.  Groups: {1,2} {3} {4,5} {6,7} {8,9} {10}. *)
let groups = [ [ 1; 2 ]; [ 3 ]; [ 4; 5 ]; [ 6; 7 ]; [ 8; 9 ]; [ 10 ] ]

let fill ?(threads = 1) ~scale b =
  let queries = W.iterations scale ~base:512 in
  (* --- Server startup: allocate the pools group by group.  Sites 1-3
     allocate two hot buffers each; the rest one.  Catalog entries load
     in between, spreading the pools in the baseline heap. *)
  let buffers = ref [] in
  List.iter
    (fun group ->
      let hot_per_site = if List.exists (fun s -> s <= 3) group then 2 else 1 in
      for inst = 1 to hot_per_site do
        ignore inst;
        List.iter
          (fun site -> buffers := B.alloc b ~site initial_bytes :: !buffers)
          group
      done;
      ignore (Patterns.cold_block b ~site:site_catalog ~size:512 12);
      (* Per-connection scratch from the same sites, handed out while the
         group initialises — which is why different groups cannot share a
         counter (their hot ids would not stay one consecutive run). *)
      List.iter (fun site -> ignore (Patterns.cold_block b ~site ~size:1024 5)) group)
    groups;
  let buffers = Array.of_list (List.rev !buffers) in
  let n_buf = Array.length buffers in
  (* --- Query processing: each query sweeps two buffers (B-tree pages,
     sort runs) with dense intra-object locality and churns scratch. *)
  (* Pools grow incrementally as load arrives: a fixed number of growth
     events spread evenly over the run (so training and evaluation
     inputs perform the same schedule and reach the same profiled
     maxima).  Every event's target size is strictly larger than any
     block freed by an earlier move, so in the baseline each growth
     relocates the pool to fresh, cache-cold memory — the recurring cost
     PreFix's full-size preallocation removes. *)
  let growth_interval = max 1 (queries / n_growth_events) in
  let growth_step = ((grown_bytes scale) - initial_bytes) / n_growth_events in
  for q = 0 to queries - 1 do
    let owner = q mod max 1 threads in
    if threads > 1 then B.set_thread b owner;
    if (q + 1) mod growth_interval = 0 then begin
      let idx = ((q + 1) / growth_interval) - 1 in
      if idx < n_growth_events then begin
        let buf = buffers.(idx mod n_buf) in
        let cur = B.size_of b buf in
        B.realloc b buf (max cur (initial_bytes + ((idx + 1) * growth_step)))
      end
    end;
    let b1 = buffers.(q mod n_buf) and b2 = buffers.((q * 7) mod n_buf) in
    Patterns.sweep b ~stride:64 b1;
    Patterns.sweep b ~stride:128 b2;
    Patterns.churn b ~site:site_scratch ~size:256 ~touches:3 4;
    B.compute b 3000
  done;
  B.set_thread b 0;
  Array.iter (fun buf -> B.free b buf) buffers;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "mysql";
    description = "database server: large realloc-grown buffers, fixed ids";
    bench_threads = true;
    generate;
    fill }
