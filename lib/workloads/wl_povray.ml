(* povray — ray tracer.

   Per ray, the intersection pipeline allocates a fixed set of eight
   small records — one from each of eight sites, always in the same
   order ("in tandem") — uses them through the shading computation and
   frees them before the next ray.  Every dynamic instance is of
   interest, so Table 2 reports "all ids, 8 sites, 1 counter", and the
   lifetime pattern is exactly what object recycling exploits (§2.4):
   PreFix preallocates one block of slots and cycles through it, saving
   the malloc/free pair per record (Table 6: 10,833 calls avoided) and
   keeping the records on the same few lines forever.  The dominant cost
   is shading arithmetic, so the end-to-end win is modest (-3.44%).

   In the baseline the records' addresses wander: long-lived texture
   cache entries allocated between rays consume the freed holes, so each
   ray's records land somewhere new. *)

module W = Workload
module B = Builder

let n_record_sites = 8
let record_bytes = 48
let site_texture = 20 (* cold long-lived texture cache entries *)
let site_scene = 21 (* cold scene metadata *)

let fill ?threads ~scale b =
  ignore threads;
  let rays = W.iterations scale ~base:2400 in
  (* Scene load: long-lived cold data. *)
  ignore (Patterns.cold_block b ~site:site_scene ~size:1024 48);
  for ray = 0 to rays - 1 do
    (* Intersection records, allocated in tandem. *)
    let records =
      List.init n_record_sites (fun i -> B.alloc b ~site:(i + 1) record_bytes)
    in
    (* Shading: several passes over the records (normal, colour, depth). *)
    for pass = 0 to 2 do
      List.iter
        (fun r ->
          B.access b r 0;
          B.access b r (16 * pass))
        records
    done;
    B.compute b 36_000;
    (* Texture-cache growth fragments the freed record space. *)
    if ray mod 7 = 0 then ignore (Patterns.cold_block b ~site:site_texture ~size:record_bytes 2);
    List.iter (fun r -> B.free b r) records
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "povray";
    description = "ray tracer: tandem per-ray records, object recycling";
    bench_threads = false;
    generate;
    fill }
