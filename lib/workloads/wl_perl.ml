(* perl — interpreter workload.

   Hundreds of small scalar-value cells (SV headers and bodies) are hot;
   bodies live on the same sites as headers, allocated alternately, so a
   site's hot ids form the *regular* pattern {1,3,5,...} (Table 2: regular
   & fixed, 15 sites, 7 counters).  Opcode evaluation walks fixed operand
   chains — hot data streams of 4-6 cells in a stable order, which is why
   reordered placement (PreFix:HDS) beats allocation-order placement
   (PreFix:Hot).

   The interpreter also keeps short-lived scratch SVs that are born next
   to a cold companion cell and always accessed together with it: in the
   baseline both share a cache line, so pulling only the scratch SV into
   the preallocated region costs a line — that is why PreFix:HDS+Hot is
   slightly *worse* than PreFix:HDS here (§3.3: "the Hot singleton
   objects at the end ... their original ordering with the cold object
   seems to be better for locality").

   Heavy pollution for HDS [8]: the chain sites keep allocating transient
   pad cells in the run loop (Table 4: 76 hot of 32,977,460). *)

module W = Workload
module B = Builder

let sv_bytes = 32

(* 15 hot sites in 7 tandem groups (one per interpreter subsystem). *)
let groups = [ [ 1; 2 ]; [ 3; 4 ]; [ 5; 6 ]; [ 7; 8 ]; [ 9; 10 ]; [ 11; 12 ]; [ 13; 14; 15 ] ]

let site_cold = 31 (* long-lived cold interpreter state *)

let n_chains = 24 (* operand chains (hot data streams) *)
let chain_len = 5
let n_scratch = 54 (* hot singletons with cold companions *)

let fill ?threads ~scale b =
  ignore threads;
  let ops = W.iterations scale ~base:800 in
  (* --- Compile phase: build operand chains.  Each chain draws its cells
     from one site group; header allocations (odd instances) are the hot
     cells, body allocations (even instances) are cold.  Live cold state
     interleaves, spreading chains across pages. *)
  let group_arr = Array.of_list groups in
  let chains =
    List.init n_chains (fun c ->
        let group = group_arr.(c mod Array.length group_arr) in
        let sites = Array.of_list group in
        let chain =
          List.init chain_len (fun i ->
              let site = sites.(i mod Array.length sites) in
              (* hot header *)
              let header = B.alloc b ~site sv_bytes in
              (* cold body from the same site: even shared-counter id *)
              let body = B.alloc b ~site sv_bytes in
              B.access b body 0;
              (* lexer/state blocks push the next cell onto another page
                 in the baseline; the HDS [8] region excludes them, so
                 redirecting the chain sites already helps (paper: -6.3%)
                 even though the bodies still dilute it vs PreFix *)
              ignore (Patterns.cold_block b ~site:site_cold ~size:512 1);
              header)
        in
        ignore (Patterns.cold_block b ~site:site_cold ~size:192 3);
        chain)
  in
  (* --- Scratch singletons, each glued to a cold companion cell.  The
     companion comes from the same site and the two sides alternate
     irregularly, so the site's hot ids form no progression: a *fixed*
     id set (the "fixed" half of Table 2's "regular & fixed"). *)
  let scratch =
    List.init n_scratch (fun i ->
        if i mod 3 = 0 then begin
          let companion = B.alloc b ~site:16 sv_bytes in
          let s = B.alloc b ~site:16 sv_bytes in
          B.access b companion 0;
          (s, companion)
        end
        else begin
          let s = B.alloc b ~site:16 sv_bytes in
          let companion = B.alloc b ~site:16 sv_bytes in
          B.access b companion 0;
          (s, companion)
        end)
  in
  let chain_arr = Array.of_list chains in
  let scratch_arr = Array.of_list scratch in
  (* --- Run loop: opcode dispatch. *)
  for op = 0 to ops - 1 do
    (* Walk a few operand chains in stream order. *)
    for k = 0 to 3 do
      let chain = chain_arr.((op + (k * 7)) mod n_chains) in
      List.iter (fun cell -> B.access b cell 0) chain;
      List.iter (fun cell -> B.access b cell 16) chain
    done;
    (* Scratch singletons.  On the evaluation input (but not on the
       short training input) each is accessed together with its cold
       companion, which shares the singleton's cache line in the
       baseline layout — so moving only the singleton into the region
       costs a second line.  This is the profile-vs-reality divergence
       behind the paper's "original ordering with the cold object seems
       to be better" observation (§3.3). *)
    for _k = 0 to 3 do
      let s, companion = scratch_arr.(Prefix_util.Rng.int (B.rng b) n_scratch) in
      B.access b s 0;
      if scale <> W.Profiling then B.access b companion 0;
      B.access b s 16;
      if scale <> W.Profiling then B.access b companion 16
    done;
    (* Transient pads from the chain sites: HDS pollution. *)
    if op mod 2 = 0 then
      List.iter
        (fun group ->
          let site = List.hd group in
          Patterns.churn b ~site ~size:sv_bytes ~touches:1 1)
        groups;
    (* Cold interpreter bookkeeping with LLC footprint. *)
    Patterns.churn b ~site:site_cold ~size:512 ~touches:2 2;
    B.compute b 1200
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "perl";
    description = "interpreter: operand-chain streams, regular ids, glued singletons";
    bench_threads = false;
    generate;
    fill }
