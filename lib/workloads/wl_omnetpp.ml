(* omnetpp — discrete-event network simulator.

   The simulator's long-lived infrastructure (modules, gates, queues,
   channel descriptors) is hot: ~230 small objects from 52 allocation
   sites, initialised subsystem by subsystem so the sites share 6
   counters with fixed hot ids (Table 2: fixed ids, 52 sites, 6
   counters).  Event processing walks module→gate→queue triples — hot
   data streams — which is why PreFix:HDS beats PreFix:Hot (§3.3).

   Crucially, the *same* 52 sites allocate transient message objects on
   every simulated event, so the HDS [8] region fills with cold messages
   (Table 4: 67 hot of 123,727) and HDS gains nothing (+0.6%). *)

module W = Workload
module B = Builder

let obj_bytes = 32
let sites_per_subsystem = [ 9; 9; 9; 9; 8; 8 ] (* 52 sites total *)
let site_cold = 90 (* long-lived cold topology tables *)
let n_triples = 30 (* module/gate/queue access streams *)

let fill ?threads ~scale b =
  ignore threads;
  let events = W.iterations scale ~base:900 in
  (* --- Network setup: each subsystem initialises its sites in tandem;
     every site contributes one fixed hot object, then 3-4 cold
     configuration records.  Cold topology tables interleave. *)
  let infra = ref [] in
  let next_site = ref 1 in
  let subsystem_sites =
    List.map
      (fun n ->
        let sites = List.init n (fun i -> !next_site + i) in
        next_site := !next_site + n;
        sites)
      sites_per_subsystem
  in
  List.iter
    (fun sites ->
      (* Hot pass: one object per site, in tandem (the shared-counter ids
         form the consecutive prefix 1..n).  Cold topology records from an
         unrelated site land between them, spreading the hot objects in
         the baseline heap without disturbing the shared counter. *)
      let alloc_infra site =
        let o = B.alloc b ~site obj_bytes in
        (* Two cold descriptors (topology entry, statistics block) land
           right next to each object, overlapping its cache lines in the
           baseline layout, plus filler spreading the hot set. *)
        let c1 = B.alloc b ~site:site_cold obj_bytes in
        ignore (Patterns.cold_block b ~site:site_cold ~size:1024 2);
        let c2 = B.alloc b ~site:site_cold obj_bytes in
        B.access b c1 0;
        B.access b c2 0;
        infra := (o, (c1, c2)) :: !infra
      in
      List.iter alloc_infra sites;
      (* Second and third hot passes bring the count to ~230. *)
      List.iter alloc_infra sites;
      List.iter (fun site -> if site mod 2 = 0 then alloc_infra site) sites;
      (* Cold configuration records from the same sites. *)
      List.iter (fun site -> ignore (Patterns.cold_block b ~site ~size:obj_bytes 3)) sites;
      ignore (Patterns.cold_block b ~site:site_cold ~size:384 10))
    subsystem_sites;
  let infra = Array.of_list (List.rev !infra) in
  let n_infra = Array.length infra in
  (* Fixed module→gate→queue triples used as event-processing streams. *)
  let triples =
    Array.init n_triples (fun t ->
        [ fst infra.(t * 13 mod n_infra);
          fst infra.(((t * 13) + 5) mod n_infra);
          fst infra.(((t * 13) + 11) mod n_infra) ])
  in
  let in_triple = Hashtbl.create 128 in
  Array.iter (fun triple -> List.iter (fun o -> Hashtbl.replace in_triple o ()) triple) triples;
  let all_sites = List.concat subsystem_sites in
  let all_sites_arr = Array.of_list all_sites in
  (* --- Event loop. *)
  for e = 0 to events - 1 do
    (* Process a handful of events: each walks a triple stream twice and
       exchanges a transient message allocated from an infrastructure
       site (the pollution). *)
    for k = 0 to 7 do
      let triple = triples.((e + (k * 7)) mod n_triples) in
      List.iter (fun o -> B.access b o 0) triple;
      List.iter (fun o -> B.access b o 16) triple;
      let site = all_sites_arr.((e + k) mod Array.length all_sites_arr) in
      Patterns.churn b ~site ~size:obj_bytes ~touches:2 2
    done;
    (* Scheduler sampling: the future-event set touches a random subset
       of modules each round. *)
    ignore in_triple;
    ignore scale;
    for _s = 0 to 31 do
      let o, (_c1, _c2) = infra.(Prefix_util.Rng.int (B.rng b) n_infra) in
      B.access b o 0;
      B.access b o 16
    done;
    (* Future-event-set bookkeeping: cold. *)
    Patterns.churn b ~site:site_cold ~size:256 ~touches:2 2;
    B.compute b 1500
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "omnetpp";
    description = "discrete-event simulator: 52 sites, message churn pollution";
    bench_threads = false;
    generate;
    fill }
