(* analyzer — log/trace analysis service (fleetbench-style).

   Tens of thousands of small parsed-record structs are appended while
   the input is read and then scanned over and over by the analysis
   passes: nearly all of them are hot (Table 5: 103,613 hot objects) but
   almost none belong to streams — the only HDS is the trio of big index
   tables consulted during every scan (Table 5: 3 HDS objects).  Hence
   PreFix:HDS alone recovers only the index-table win (-18.4%) while
   PreFix:Hot gets the full packed-record win (-57.1%) and HDS+Hot both
   (-58.9%).  TLB misses virtually disappear (0.62% → 0%).

   Sites (Table 2 reports fixed & all ids, 5 sites, 3 counters; our
   model uses 4 sites / 3 counters): site 1 holds the three fixed index
   tables; site 2 allocates the record structs ("all ids"); sites 4-5
   allocate the per-source cursor pair (fixed ids, shared counter). *)

module W = Workload
module B = Builder

let site_index = 1
let site_record = 2
let site_cursor_a = 4
let site_cursor_b = 5
let site_line = 12 (* cold raw-line buffers between records *)
let site_report = 13 (* cold report fragments *)

let n_records = 2600
let record_bytes = 48
let index_bytes = 48
let cursor_bytes = 64

let fill ?threads ~scale b =
  ignore threads;
  let passes = W.iterations scale ~base:64 in
  (* --- Index tables: three fixed hot ids on site 1 (cold spill tables
     follow). *)
  (* The "indexes" are three small root descriptors (hash seeds, bucket
     directories) consulted together on every index probe.  Spill tables
     load between them, so the baseline puts the trio on three distant
     pages and every probe costs three cold lines + walks; PreFix:HDS
     packs them onto one line — that alone is the paper's -18.4%. *)
  let indexes =
    List.init 3 (fun _ ->
        let ix = B.alloc b ~site:site_index index_bytes in
        ignore (Patterns.cold_block b ~site:site_line ~size:4096 2);
        ix)
  in
  ignore (Patterns.cold_block b ~site:site_index ~size:index_bytes 2);
  (* --- Cursors: one hot pair, tandem (fixed {1,2} under one counter),
     then cold rewind cursors. *)
  let cur_a = B.alloc b ~site:site_cursor_a cursor_bytes in
  let cur_b = B.alloc b ~site:site_cursor_b cursor_bytes in
  ignore (Patterns.cold_block b ~site:site_cursor_a ~size:cursor_bytes 3);
  ignore (Patterns.cold_block b ~site:site_cursor_b ~size:cursor_bytes 3);
  (* --- Ingest: header+payload in tandem per record, raw line buffers
     in between (cold, surviving), spreading the records far beyond the
     TLB reach in the baseline.  Most records are allocated through
     source-specific parsing paths whose call-stack signatures differ
     between the training and evaluation inputs, so HALO's profile only
     captures a fraction of them (the paper's -17.6% vs PreFix's
     -57.1%); PreFix's dynamic instance ids are immune. *)
  let records =
    Array.init n_records (fun i ->
        let salt = if scale <> W.Profiling && i mod 8 <> 0 then 5000 else 0 in
        let r = B.alloc b ~site:site_record ~ctx:(site_record + salt) record_bytes in
        ignore (Patterns.cold_block b ~site:site_line ~size:208 (if i mod 3 = 0 then 2 else 1));
        r)
  in
  (* --- Analysis passes: full scans in hash order (different every
     pass, so the records form no stream), consulting the index-table
     trio at a fixed cadence — the single detectable stream. *)
  let order = Array.init n_records (fun i -> i) in
  for pass = 0 to passes - 1 do
    Prefix_util.Rng.shuffle (B.rng b) order;
    Array.iteri
      (fun k i ->
        let r = records.(i) in
        B.access b r 0;
        B.access b r 16;
        if k mod 8 = 0 then
          List.iter (fun ix -> B.access b ix (k * 16 mod index_bytes)) indexes)
      order;
    B.access b cur_a 0;
    B.access b cur_b 0;
    Patterns.churn b ~site:site_report ~size:192 ~touches:2 3;
    B.compute b 3200;
    ignore pass
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "analyzer";
    description = "log analyzer: packed record scans plus one index-table stream";
    bench_threads = false;
    generate;
    fill }
