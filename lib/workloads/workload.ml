type scale = Profiling | Long | Huge

let scale_name = function Profiling -> "profiling" | Long -> "long" | Huge -> "huge"

type t = {
  name : string;
  description : string;
  bench_threads : bool;
  generate : ?threads:int -> scale:scale -> seed:int -> unit -> Prefix_trace.Trace.t;
  fill : ?threads:int -> scale:scale -> Builder.t -> unit;
}

let iterations scale ~base =
  match scale with
  | Profiling -> max 1 (base / 8)
  | Long -> base
  | Huge -> base * 10

let of_fill fill : ?threads:int -> scale:scale -> seed:int -> unit -> Prefix_trace.Trace.t
    =
 fun ?threads ~scale ~seed () ->
  let b = Builder.create ~seed () in
  fill ?threads ~scale b;
  Builder.trace b

let generate_stream w ?threads ~scale ~seed ?segment_events () =
  Prefix_trace.Stream.create ?segment_events (fun push ->
      (* A fresh builder per pass keeps the stream re-iterable: the
         generators are deterministic in [seed], so every pass pushes
         the identical event sequence without materializing it. *)
      let b = Builder.create ~seed ~sink:push () in
      w.fill ?threads ~scale b)
