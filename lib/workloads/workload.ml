type scale = Profiling | Long

let scale_name = function Profiling -> "profiling" | Long -> "long"

type t = {
  name : string;
  description : string;
  bench_threads : bool;
  generate : ?threads:int -> scale:scale -> seed:int -> unit -> Prefix_trace.Trace.t;
}

let iterations scale ~base =
  match scale with Profiling -> max 1 (base / 8) | Long -> base
