(* health — Olden hospital simulation.

   The benchmark links every patient into village waiting lists that the
   simulation revisits on every timestep; essentially every list cell
   and patient record is equally hot (§3.3: "large number of objects
   that are equally hot", which is why PreFix:Hot, PreFix:HDS+Hot and
   HALO all do very well while PreFix:HDS alone gains little — only the
   small "ward" chains below are detectable streams, matching the
   paper's 213 HDS objects out of 1.7 million hot ones).

   Sites (Table 2: fixed & all ids, 3 sites, 2 counters): site 1
   allocates the fixed village structures (plus cold seasonal tables, so
   its ids are "fixed"); sites 2 and 3 allocate patient records and list
   cells in tandem — every instance hot, one shared counter, "all ids".
   Transient waiting-room bookkeeping lands between the pairs, so the
   baseline spreads the hot set far beyond the TLB reach and LLC — the
   paper's health TLB miss rate drops from 10% to 0.1% after the
   transformation.

   Access structure per step: (a) the ward chains — a fixed subset of
   cells visited in a fixed order (streams; their site becomes the one
   the HDS [8] baseline redirects, capturing the cells but not the
   patient records: partial separation, -35.9% vs PreFix's -43.4%);
   (b) a full randomized round over every (cell, patient) pair (hot but
   streamless). *)

module W = Workload
module B = Builder
module Rng = Prefix_util.Rng

let site_village = 1
let site_patient = 2
let site_cell = 3
let site_waiting = 9 (* transient bookkeeping, cold *)
let site_ledger = 10 (* persistent cold records *)

let n_villages = 6
let village_bytes = 256
let cell_bytes = 32
let patient_bytes = 32
let population = 4000
let n_ward = 110 (* cells chained in fixed ward order *)

let fill ?threads ~scale b =
  ignore threads;
  let steps = W.iterations scale ~base:40 in
  (* --- Setup: villages (fixed ids 1..6 on site 1). *)
  let villages =
    List.init n_villages (fun _ ->
        let v = B.alloc b ~site:site_village village_bytes in
        ignore (Patterns.cold_block b ~site:site_ledger ~size:512 4);
        v)
  in
  (* The village site also allocates cold seasonal tables, so its
     pattern is genuinely "fixed", not "all". *)
  ignore (Patterns.cold_block b ~site:site_village ~size:village_bytes 5);
  (* --- Admission: the whole population arrives up front; patient and
     cell in tandem, bookkeeping spreading them apart in the baseline. *)
  let pairs =
    Array.init population (fun i ->
        let patient = B.alloc b ~site:site_patient patient_bytes in
        (* Admission bookkeeping from the same site lands between the
           record and its list cell: in the baseline (and in the HDS [8]
           region, which inherits the site's whole allocation stream) a
           patient visit costs two cache lines, while PreFix's regular
           ids pack the pair onto one. *)
        if i mod 4 = 0 then begin
          let book = B.alloc b ~site:site_patient 96 in
          B.access b book 0
        end;
        let cell = B.alloc b ~site:site_cell cell_bytes in
        if i mod 2 = 0 then Patterns.churn b ~site:site_waiting ~size:96 ~touches:1 1
        else ignore (Patterns.cold_block b ~site:site_ledger ~size:160 1);
        (cell, patient))
  in
  let wards = Array.init n_ward (fun i -> pairs.(i * 31 mod population)) in
  (* --- Simulation. *)
  let order = Array.init population (fun i -> i) in
  for step = 0 to steps - 1 do
    (* Ward rounds: fixed-order cell/patient chains (the hot data
       streams — both list sites become "interesting" for HDS [8]). *)
    Array.iter
      (fun (cell, patient) ->
        B.access b cell 0;
        B.access b patient 0)
      wards;
    (* Full check of every patient, in an order that depends on triage
       priorities — different every step, so no stream structure. *)
    Rng.shuffle (B.rng b) order;
    Array.iter
      (fun i ->
        let cell, patient = pairs.(i) in
        B.access b cell 0;
        B.access b patient 0)
      order;
    List.iter (fun v -> B.access b v (step * 16 mod village_bytes)) villages;
    Patterns.churn b ~site:site_waiting ~size:96 ~touches:1 4;
    B.compute b 6000
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "health";
    description = "Olden hospital lists: everything equally hot, TLB-bound";
    bench_threads = false;
    generate;
    fill }
