(* leela — Go engine (Monte-Carlo tree search).

   Each playout expands a chain of search-tree nodes: for every ply it
   allocates a node, its statistics block, a move list and a child index
   — four sites, always in the same order — walks the chain a few times
   to back up the result, and tears the whole expansion down before the
   next playout (Table 2: all ids, 4 sites, 1 counter).  Allocation and
   deallocation dominate: the paper avoids 30 million malloc/free calls
   and executes 25% fewer instructions (Table 6), with peak memory
   dropping 28→20 MB because the recycled block replaces a fragmented
   heap.  That is the purest object-recycling benchmark (-25.3%). *)

module W = Workload
module B = Builder

let n_sites = 4
let node_bytes = 64
let plies = 12 (* expansion depth per playout *)
let site_board = 10 (* cold: persistent board/pattern tables *)
let site_history = 11 (* cold: growing game history, fragments the heap *)

let fill ?threads ~scale b =
  ignore threads;
  let playouts = W.iterations scale ~base:640 in
  ignore (Patterns.cold_block b ~site:site_board ~size:2048 16);
  for p = 0 to playouts - 1 do
    (* Expansion: plies * 4 tandem allocations. *)
    let chain =
      List.concat_map
        (fun ply ->
          ignore ply;
          List.init n_sites (fun i -> B.alloc b ~site:(i + 1) node_bytes))
        (List.init plies Fun.id)
    in
    (* Descent + backup: four walks over the chain. *)
    for _ = 1 to 4 do
      List.iter (fun o -> B.access b o 0) chain
    done;
    B.compute b 24_000;
    (* Game history grows, nibbling the freed space. *)
    if p mod 5 = 0 then ignore (Patterns.cold_block b ~site:site_history ~size:112 2);
    List.iter (fun o -> B.free b o) chain
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "leela";
    description = "MCTS engine: allocation-dominated playout expansions";
    bench_threads = false;
    generate;
    fill }
