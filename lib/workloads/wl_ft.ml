(* ft — Ptrdist minimum-spanning-tree benchmark (Fibonacci-heap based).

   The graph's vertex and heap-node structures — thousands of small
   objects from two sites allocated while the input graph is read — are
   touched constantly by the MST computation: every round visits every
   vertex/heap-node pair (in a work-queue order that varies round to
   round) and runs decrease-key cascades along fixed neighbour chains
   (the detectable hot data streams; Table 5 reports 868 stream objects
   out of 20,000 hot ones, so PreFix:HDS alone gains almost nothing,
   -1.0%).

   The same two sites allocate parser temporaries *between* the hot
   pairs, so (a) each site's hot ids are the regular pattern {1,3,5,...}
   — precisely capturable by PreFix, (b) the HDS [8] region, which takes
   everything those sites allocate, stays diluted (Table 4: 13,334 hot
   of 40,000), and (c) the cold temporaries separate the vertex from its
   heap node in the baseline so each pair costs two cache lines where
   the packed region pays one.  Half of the separate input buffers share
   the vertex wrapper's calling context, dragging cold objects into
   HALO's pool (partial win, the paper's -47% vs PreFix's -74%). *)

module W = Workload
module B = Builder
module Rng = Prefix_util.Rng

let site_vertex = 1
let site_heapnode = 2
let site_aux = 3
let site_input = 9 (* cold input buffers *)

let n_vertices = 3000
let vertex_bytes = 32
let heapnode_bytes = 32
let n_aux = 4
let aux_bytes = 512
let chain_len = 4
let n_chains = 110 (* 440 objects in neighbour chains *)

let fill ?threads ~scale b =
  ignore threads;
  let rounds = W.iterations scale ~base:56 in
  (* --- Read the graph.  Per vertex: hot vertex, parser temporary from
     the same site, hot heap node, parser temporary from its site —
     regular hot ids {1,3,5,...} on both sites, and the hot pair is
     split across cache lines in the baseline. *)
  let ctx_wrapper = 100 in
  let pairs =
    Array.init n_vertices (fun i ->
        let v = B.alloc b ~site:site_vertex ~ctx:ctx_wrapper vertex_bytes in
        let t1 = B.alloc b ~site:site_vertex ~ctx:902 64 in
        B.access b t1 0;
        let h = B.alloc b ~site:site_heapnode heapnode_bytes in
        let t2 = B.alloc b ~site:site_heapnode ~ctx:901 64 in
        B.access b t2 0;
        let n_inputs = if i mod 2 = 0 then 2 else 1 in
        ignore
          (Patterns.cold_block b ~site:site_input
             ~ctx:(if i mod 2 = 0 then ctx_wrapper else site_input)
             ~size:176 n_inputs);
        (v, h))
  in
  (* Auxiliary structures: fixed ids on site 3 (plus cold ones after). *)
  let aux = List.init n_aux (fun _ -> B.alloc b ~site:site_aux aux_bytes) in
  ignore (Patterns.cold_block b ~site:site_aux ~size:aux_bytes 3);
  (* Fixed neighbour chains (the streams): vertices at deterministic
     stride-ish positions. *)
  let chains =
    Array.init n_chains (fun c ->
        List.init chain_len (fun j ->
            let v, h = pairs.((c * 9 + (j * 137)) mod n_vertices) in
            if j mod 2 = 0 then v else h))
  in
  (* --- MST rounds. *)
  let order = Array.init n_vertices (fun i -> i) in
  for r = 0 to rounds - 1 do
    (* Work-queue scan: every vertex and its heap node, in an order set
       by the evolving priority queue — different every round. *)
    Rng.shuffle (B.rng b) order;
    Array.iter
      (fun i ->
        let v, h = pairs.(i) in
        B.access b v 0;
        B.access b h 0)
      order;
    (* Decrease-key cascades along fixed chains. *)
    for k = 0 to 39 do
      let chain = chains.((r + (k * 7)) mod n_chains) in
      List.iter (fun o -> B.access b o 0) chain;
      List.iter (fun o -> B.access b o 16) chain
    done;
    List.iter (fun a -> Patterns.sweep b ~stride:128 a) aux;
    B.compute b 800
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "ft";
    description = "Ptrdist MST: thousands of hot vertices/heap nodes";
    bench_threads = false;
    generate;
    fill }
