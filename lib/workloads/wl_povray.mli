(** The povray benchmark model; see the implementation header comment
    for the structure it reproduces and the paper data it is tuned
    against. *)

val workload : Workload.t
