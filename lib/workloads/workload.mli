(** Synthetic benchmark models.

    The paper evaluates on native binaries (SPEC, Olden, Ptrdist,
    FreeBench, fleetbench, mysql) that cannot run inside this
    reproduction; each is replaced by a workload model that emits an
    allocation/access/free event trace with the same {e structure} the
    paper reports for it: number and size of hot objects, hot data
    stream membership, allocation-site counts and id patterns
    (Table 2), lifetime shape (recycling or not), and the interleaving
    of hot allocations with cold ones that gives the baseline its poor
    locality.  See DESIGN.md §2 for the substitution argument.

    Scales: [Profiling] is the short training-input run used to build
    plans; [Long] is the evaluation run (more iterations, more cold
    churn, slightly perturbed behaviour so profile and reality differ
    the way Table 5 shows). *)

type scale = Profiling | Long

val scale_name : scale -> string

type t = {
  name : string;
  description : string;
  bench_threads : bool;
      (** whether the model honours [threads] (mysql, mcf — Fig 10) *)
  generate : ?threads:int -> scale:scale -> seed:int -> unit -> Prefix_trace.Trace.t;
}

val iterations : scale -> base:int -> int
(** Standard iteration scaling: profiling runs are ~8x shorter. *)
