(** Synthetic benchmark models.

    The paper evaluates on native binaries (SPEC, Olden, Ptrdist,
    FreeBench, fleetbench, mysql) that cannot run inside this
    reproduction; each is replaced by a workload model that emits an
    allocation/access/free event trace with the same {e structure} the
    paper reports for it: number and size of hot objects, hot data
    stream membership, allocation-site counts and id patterns
    (Table 2), lifetime shape (recycling or not), and the interleaving
    of hot allocations with cold ones that gives the baseline its poor
    locality.  See DESIGN.md §2 for the substitution argument.

    Scales: [Profiling] is the short training-input run used to build
    plans; [Long] is the evaluation run (more iterations, more cold
    churn, slightly perturbed behaviour so profile and reality differ
    the way Table 5 shows); [Huge] is ~10x [Long], sized for the
    streaming engine — materializing it is deliberately painful. *)

type scale = Profiling | Long | Huge

val scale_name : scale -> string

type t = {
  name : string;
  description : string;
  bench_threads : bool;
      (** whether the model honours [threads] (mysql, mcf — Fig 10) *)
  generate : ?threads:int -> scale:scale -> seed:int -> unit -> Prefix_trace.Trace.t;
  fill : ?threads:int -> scale:scale -> Builder.t -> unit;
      (** The model body: emits the whole event sequence into an
          existing builder.  [generate] and {!generate_stream} are both
          thin wrappers over this. *)
}

val iterations : scale -> base:int -> int
(** Standard iteration scaling: profiling runs are ~8x shorter than
    [Long]; [Huge] is 10x [Long]. *)

val of_fill :
  (?threads:int -> scale:scale -> Builder.t -> unit) ->
  ?threads:int ->
  scale:scale ->
  seed:int ->
  unit ->
  Prefix_trace.Trace.t
(** Materializing wrapper: fresh builder, run the fill, return its
    trace.  Every workload's [generate] is [of_fill fill]. *)

val generate_stream :
  t ->
  ?threads:int ->
  scale:scale ->
  seed:int ->
  ?segment_events:int ->
  unit ->
  Prefix_trace.Stream.t
(** Push-based generation: the returned stream runs [fill] with a
    builder whose events feed segments directly, so no trace is ever
    materialized — event-for-event identical to [generate] with the
    same arguments (property-tested).  Each iteration of the stream
    re-runs the deterministic generator. *)
