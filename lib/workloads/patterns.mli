(** Reusable access/allocation motifs shared by the workload models. *)

val sweep : Builder.t -> ?write:bool -> ?stride:int -> int -> unit
(** [sweep b obj] touches an object at offsets 0, stride, 2*stride ...
    (default stride 16) — dense intra-object traversal. *)

val stream_sweep : Builder.t -> ?stride:int -> ?rounds:int -> int list -> unit
(** Hot-data-stream access: visits the objects in order, repeatedly
    ([rounds], default 1), touching each at a handful of offsets per
    visit.  This is the inter-object pattern whose locality PreFix's
    reordering captures. *)

val touch : Builder.t -> int -> unit
(** One read at offset 0. *)

val cold_block : Builder.t -> site:int -> ?ctx:int -> ?size:int -> int -> int list
(** [cold_block b ~site n] allocates [n] cold objects (default 64 B),
    touching each once — the interleaving filler that spreads the
    baseline's hot objects apart. *)

val churn : Builder.t -> site:int -> ?ctx:int -> ?size:int -> ?touches:int -> int -> unit
(** Allocate, briefly use and free [n] transient objects. *)

val scan_working_set : Builder.t -> int list -> ?stride:int -> unit -> unit
(** Stream once over every object in the list (cold-capacity pressure
    on the caches). *)

val random_accesses : Builder.t -> int list -> n:int -> unit
(** [n] uniformly random (object, aligned offset) reads. *)
