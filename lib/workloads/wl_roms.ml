(* roms — ocean-model stencil code (SPEC 554.roms_r).

   Every timestep allocates twenty temporary work grids — one per solver
   stage site, in a fixed tandem order — runs several stencil passes over
   them and frees them at the end of the step (Table 2: all ids, 20
   sites, 1 counter).  Between steps, diagnostic records are appended and
   survive, so in the baseline the freed grid space fragments and each
   step's grids move to new addresses with cold caches and fresh TLB
   entries.  Object recycling pins the twenty grids to one preallocated
   block that stays cache- and TLB-resident for the whole run (-17.8%,
   with 1.4M malloc/free calls avoided at a negligible instruction-count
   change — the win is locality, Table 6). *)

module W = Workload
module B = Builder

let n_grid_sites = 20
let grid_bytes = 1024
let site_diag = 40 (* cold persistent diagnostics *)
let site_forcing = 41 (* cold forcing data, loaded once *)

let fill ?threads ~scale b =
  ignore threads;
  let steps = W.iterations scale ~base:400 in
  ignore (Patterns.cold_block b ~site:site_forcing ~size:4096 32);
  for _step = 0 to steps - 1 do
    (* Work grids for this step, in tandem. *)
    let grids =
      List.init n_grid_sites (fun i -> B.alloc b ~site:(i + 1) grid_bytes)
    in
    (* Stencil passes: predictor and corrector, both forward.  The
       grids are transient (fresh ids every step), so no cross-step
       stream structure exists for the detector. *)
    List.iter (fun g -> Patterns.sweep b ~stride:64 g) grids;
    List.iter (fun g -> Patterns.sweep b ~stride:64 g) grids;
    B.compute b 2600;
    (* Diagnostics survive the step and nibble at the freed space. *)
    ignore (Patterns.cold_block b ~site:site_diag ~size:512 6);
    List.iter (fun g -> B.free b g) grids
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "roms";
    description = "ocean model: per-timestep work grids, recycling";
    bench_threads = false;
    generate;
    fill }
