(* swissmap — fleetbench hash-table benchmark.

   A single allocation site creates the tables' backing stores: a small
   group of tables is created, filled, probed and destroyed, over and
   over (§2.2.1: "a small group of objects are created, used, and freed,
   and this pattern is repeated").  Every dynamic instance matters —
   Table 2: all ids, 1 site, 1 counter — and recycling maps the endless
   instance stream onto a fixed slot block (Figure 7), cutting peak
   memory roughly in half (Table 6: 619 → 318 MB) because the baseline
   heap keeps fragmenting under the interleaved metadata allocations. *)

module W = Workload
module B = Builder

let site_backing = 1
let site_meta = 5 (* cold: persistent table metadata / iterators *)
let group_size = 8
let backing_bytes = 512

let fill ?threads ~scale b =
  ignore threads;
  let rounds = W.iterations scale ~base:700 in
  for r = 0 to rounds - 1 do
    (* Build a group of tables. *)
    let tables =
      List.init group_size (fun _ -> B.alloc b ~site:site_backing backing_bytes)
    in
    (* Fill: sequential stores. *)
    List.iter (fun t -> Patterns.sweep b ~write:true ~stride:64 t) tables;
    (* Probe: random lookups across the group. *)
    Patterns.random_accesses b tables ~n:160;
    B.compute b 11_000;
    (* Metadata survives, fragmenting the freed backing space. *)
    if r mod 3 = 0 then ignore (Patterns.cold_block b ~site:site_meta ~size:144 2);
    List.iter (fun t -> B.free b t) tables
  done;
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "swissmap";
    description = "hash-table churn: one site, recycled backing stores";
    bench_threads = false;
    generate;
    fill }
