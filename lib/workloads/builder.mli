(** Trace construction helper used by every workload model.

    Tracks live objects and their sizes so the generators cannot emit
    out-of-bounds accesses or use-after-free events (the trace validity
    property tests also enforce this downstream). *)

type t

val create : ?seed:int -> ?sink:(Prefix_trace.Event.t -> unit) -> unit -> t
(** With [sink], every emitted event is pushed to it instead of being
    appended to the builder's trace (which then stays empty): the
    streaming generation path.  Memory is bounded by the live-object
    table either way. *)

val trace : t -> Prefix_trace.Trace.t
(** The trace built so far (shared, not copied); empty when the builder
    was created with a [sink]. *)

val rng : t -> Prefix_util.Rng.t

val set_thread : t -> int -> unit
(** Subsequent events are attributed to this thread (default 0). *)

val thread : t -> int

val alloc : t -> site:int -> ?ctx:int -> int -> int
(** [alloc t ~site size] emits an allocation and returns the fresh
    object id.  [ctx] is the
    HALO-style call-stack signature and defaults to [site] (a site
    reached from a single calling context). *)

val access : t -> ?write:bool -> int -> int -> unit
(** [access t obj offset]; bounds-checked against the object's current
    size. *)

val free : t -> int -> unit

val realloc : t -> int -> int -> unit

val compute : t -> int -> unit
(** Emit a block of non-memory instructions. *)

val size_of : t -> int -> int
(** Current size of a live object. *)

val is_live : t -> int -> bool

val live_objects : t -> int list
(** All currently live object ids (unspecified order). *)
