(* mcf — SPEC network-simplex solver (§2.2.1 discusses it at length).

   Six hot objects from six distinct malloc sites: the first three are the
   input network itself (node array, arc array, dummy-arc array) — large
   arrays that exceed the last-level cache and are swept every psimplex
   iteration.  The arc and dummy-arc arrays are *realloc-grown* as the
   network expands: in the baseline each growth moves the array and the
   next sweep runs on cold lines, while PreFix preallocates the profiled
   maximum so growth stays in place (Figure 6's common case).  The other
   three hot objects are small pricing structures consulted after every
   arc group — a hot data stream spread across three pages in the
   baseline and colocated on one by PreFix.

   Each trio is allocated "in tandem", so each shares one counter and the
   hot ids are the fixed prefix {1,2,3} of the shared numbering (Table 2:
   fixed ids, 6 sites, 2 counters).  The pricing sites later allocate cold
   objects inside the solver loop (the Figure 3 pattern), which is exactly
   what pollutes the HDS [8] region (Table 4: 4 hot of 33) and defeats
   call-stack signatures (§2.2: "3 sites had 30 other object allocations
   with the same call stack").

   Multithreaded mode (Figure 10): one thread allocates, all threads run
   pricing iterations. *)

module W = Workload
module B = Builder

let site_nodes = 1
let site_arcs = 2
let site_dummy = 3
let site_price1 = 4
let site_price2 = 5
let site_price3 = 6
let site_tree = 20 (* cold spanning-tree scratch *)
let site_basket = 21 (* cold candidate baskets *)

(* The pricing sites share their calling context with basket allocations
   (a common allocation wrapper), which is what HALO sees. *)
let ctx_pricing = 104

let array_bytes = 192 * 1024
let array_initial = 128 * 1024
let price_bytes = 48

let fill ?(threads = 1) ~scale b =
  let rounds = W.iterations scale ~base:480 in
  (* --- Input parsing: the network arrays, interleaved with parser scratch
     that stays live (spreading the arrays apart in the baseline heap). *)
  let graph =
    List.map
      (fun site ->
        (* Arc-like arrays start small and are grown below. *)
        let size = if site = site_nodes then array_bytes else array_initial in
        let o = B.alloc b ~site size in
        ignore (Patterns.cold_block b ~site:site_tree ~size:256 10);
        o)
      [ site_nodes; site_arcs; site_dummy ]
  in
  (* The graph sites also allocate parser scratch of their own, which
     splits the graph counter from the pricing counter (their combined
     hot ids would not stay consecutive). *)
  List.iter
    (fun site -> ignore (Patterns.cold_block b ~site ~size:256 2))
    [ site_nodes; site_arcs; site_dummy ];
  (* --- Solver setup: pricing structures, each separated by live cold
     state so the baseline spreads them over distinct pages.  Same ctx as
     the basket wrapper. *)
  let pricing =
    List.mapi
      (fun i site ->
        let o = B.alloc b ~site ~ctx:ctx_pricing price_bytes in
        (* Candidate-basket buffers from the same sites (and calling
           context) separate the pricing structures in the baseline heap
           and dilute both the HDS [8] region and HALO's pool.  The
           irregular count keeps the shared hot ids a fixed set. *)
        ignore
          (Patterns.cold_block b ~site ~ctx:ctx_pricing ~size:2048
             (if i = 1 then 2 else 1));
        o)
      [ site_price1; site_price2; site_price3 ]
  in
  ignore site_basket;
  (* The pricing sites keep allocating cold baskets during the run — the
     Figure 3 loop: hot instance first, cold ones after. *)
  let pollute_pricing () =
    List.iter
      (fun site ->
        ignore (Patterns.cold_block b ~site ~ctx:ctx_pricing ~size:price_bytes 2))
      [ site_price1; site_price2; site_price3 ]
  in
  for _ = 1 to 5 do
    pollute_pricing ()
  done;
  let nodes, arcs, dummy =
    match graph with [ n; a; d ] -> (n, a, d) | _ -> assert false
  in
  (* --- psimplex iterations: sweep the arc arrays (capacity pressure) and
     consult the pricing stream after every arc group.  The network keeps
     growing: the arc arrays are reallocated towards their final size at
     fixed points of the run. *)
  let growth_points = [ rounds / 4; rounds / 2 ] in
  for r = 0 to rounds - 1 do
    if threads > 1 then B.set_thread b (r mod threads);
    if List.mem r growth_points then begin
      let step = (array_bytes - array_initial) / List.length growth_points in
      List.iter
        (fun o ->
          let cur = B.size_of b o in
          B.realloc b o (min array_bytes (cur + step)))
        [ arcs; dummy ]
    end;
    for j = 0 to 95 do
      let limit = min (B.size_of b arcs) (B.size_of b dummy) in
      let off = j * 4160 mod limit / 16 * 16 in
      B.access b nodes off;
      B.access b arcs off;
      B.access b dummy off;
      (* Pricing consultation: one touch per structure, in stream order. *)
      List.iter (fun p -> B.access b p 0) pricing
    done;
    (* Spanning-tree update: transient scratch from a cold site. *)
    Patterns.churn b ~site:site_tree ~size:128 ~touches:2 2;
    B.compute b 2000
  done;
  B.set_thread b 0;
  List.iter (fun o -> B.free b o) (pricing @ graph);
  ()

let generate = W.of_fill fill

let workload =
  { W.name = "mcf";
    description = "SPEC CPU network simplex: six hot objects, two tandem trios";
    bench_threads = true;
    generate;
    fill }
