module Trace = Prefix_trace.Trace
module Event = Prefix_trace.Event
module Rng = Prefix_util.Rng

type t = {
  trace : Trace.t;
  sink : (Event.t -> unit) option;
  rng : Rng.t;
  sizes : (int, int) Hashtbl.t; (* live objects only *)
  mutable next_obj : int;
  mutable thread : int;
}

let create ?(seed = 1) ?sink () =
  { trace = Trace.create ();
    sink;
    rng = Rng.create seed;
    sizes = Hashtbl.create 1024;
    next_obj = 1;
    thread = 0 }

(* With a sink, events are pushed out instead of appended: the builder's
   trace stays empty and memory is bounded by the live-object table —
   the streaming engine's generation path. *)
let emit t e = match t.sink with Some push -> push e | None -> Trace.add t.trace e

let trace t = t.trace
let rng t = t.rng
let set_thread t th = t.thread <- th
let thread t = t.thread

let alloc t ~site ?ctx size =
  if size <= 0 then invalid_arg "Builder.alloc: size must be positive";
  let ctx = Option.value ~default:site ctx in
  let obj = t.next_obj in
  t.next_obj <- t.next_obj + 1;
  Hashtbl.replace t.sizes obj size;
  emit t (Event.Alloc { obj; site; ctx; size; thread = t.thread });
  obj

let check_live t obj fn =
  match Hashtbl.find_opt t.sizes obj with
  | Some size -> size
  | None -> invalid_arg (Printf.sprintf "Builder.%s: object %d is not live" fn obj)

let access t ?(write = false) obj offset =
  let size = check_live t obj "access" in
  if offset < 0 || offset >= size then
    invalid_arg
      (Printf.sprintf "Builder.access: offset %d outside object %d (size %d)" offset obj size);
  emit t (Event.Access { obj; offset; write; thread = t.thread })

let free t obj =
  ignore (check_live t obj "free");
  Hashtbl.remove t.sizes obj;
  emit t (Event.Free { obj; thread = t.thread })

let realloc t obj new_size =
  if new_size <= 0 then invalid_arg "Builder.realloc: size must be positive";
  ignore (check_live t obj "realloc");
  Hashtbl.replace t.sizes obj new_size;
  emit t (Event.Realloc { obj; new_size; thread = t.thread })

let compute t instrs =
  if instrs > 0 then emit t (Event.Compute { instrs; thread = t.thread })

let size_of t obj = check_live t obj "size_of"

let is_live t obj = Hashtbl.mem t.sizes obj

let live_objects t = Hashtbl.fold (fun o _ acc -> o :: acc) t.sizes []
