(** All thirteen benchmark models, in the paper's table order. *)

val all : Workload.t list

val find : string -> Workload.t
(** Lookup by name; raises [Not_found]. *)

val names : string list
