(* splitmix64: fast, splittable, passes BigCrush on its 64-bit output.
   Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
   Generators", OOPSLA 2014. *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let next_raw t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let bits64 = next_raw

let split t =
  let s = next_raw t in
  { state = s }

let copy t = { state = t.state }

(* Non-negative 62-bit int from the top bits. *)
let next_nonneg t = Int64.to_int (Int64.shift_right_logical (next_raw t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = Int.max_int - (Int.max_int mod bound) in
  let rec go () =
    let v = next_nonneg t in
    if v >= limit then go () else v mod bound
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (next_raw t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (next_raw t) 1L = 1L

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))

let geometric t p =
  if not (p > 0. && p <= 1.) then invalid_arg "Rng.geometric: p out of (0,1]";
  if p >= 1. then 0
  else
    let u =
      let rec nonzero () =
        let u = float t 1.0 in
        if u <= 0. then nonzero () else u
      in
      nonzero ()
    in
    int_of_float (Float.log u /. Float.log1p (-.p))

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Rng.zipf: n must be positive";
  if n = 1 then 0
  else begin
    (* Rejection-inversion (Hörmann & Derflinger) specialised to integer
       ranks 1..n; returns 0-based rank. *)
    let s = if s <= 0. then 1e-9 else s in
    let h x = if Float.abs (1. -. s) < 1e-12 then Float.log x else (x ** (1. -. s)) /. (1. -. s) in
    let h_inv x =
      if Float.abs (1. -. s) < 1e-12 then Float.exp x
      else ((1. -. s) *. x) ** (1. /. (1. -. s))
    in
    let hx0 = h 0.5 -. (1.0 ** -.s) in
    let hn = h (float_of_int n +. 0.5) in
    let rec go () =
      let u = hx0 +. float t (hn -. hx0) in
      let x = h_inv u in
      let k = Float.round x in
      let k = if k < 1. then 1. else if k > float_of_int n then float_of_int n else k in
      if u >= h (k +. 0.5) -. (k ** -.s) then int_of_float k - 1 else go ()
    in
    go ()
  end
