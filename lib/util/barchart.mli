(** Horizontal ASCII bar charts for the figure reproductions.

    The paper's Figures 1 and 10-14 are bar charts; the harness prints
    both the exact values (as tables) and these quick-glance bars. *)

type t

val create : ?width:int -> ?unit_label:string -> title:string -> unit -> t
(** [width] is the maximum bar length in characters (default 48). *)

val add : t -> label:string -> float -> unit
(** Append one bar.  Negative values render to the left of the axis. *)

val add_pair : t -> label:string -> float -> float -> unit
(** Two bars on one label (e.g. baseline vs optimized), rendered as two
    adjacent rows marked [a] and [b]. *)

val render : t -> string
(** Bars are scaled to the largest absolute value added. *)
