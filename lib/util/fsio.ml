(* Crash-safe file output.

   Every artifact this project writes (reports, telemetry, benchmark
   JSON, checkpoints) goes through [atomic_write_string]: the content is
   written to a temporary file in the destination directory, fsynced,
   and renamed over the target.  A crash at any point leaves either the
   old file or the new one — never a truncated hybrid.  [with_retry]
   adds bounded retry-with-backoff for transient I/O errors (ENOSPC
   races, NFS hiccups), used by the checkpoint and telemetry writers. *)

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let default_attempts = 3
let default_backoff_ms = 20

let with_retry ?(attempts = default_attempts) ?(backoff_ms = default_backoff_ms) f =
  if attempts <= 0 then invalid_arg "Fsio.with_retry: attempts must be positive";
  let rec go n backoff =
    match f () with
    | v -> v
    | exception ((Sys_error _ | Unix.Unix_error _) as e) ->
      if n >= attempts then raise e
      else begin
        (* Exponential backoff, capped implicitly by the attempt bound. *)
        Unix.sleepf (float_of_int backoff /. 1000.);
        go (n + 1) (backoff * 2)
      end
  in
  go 1 backoff_ms

(* Read the process umask without changing it (there is no query-only
   call). *)
let current_umask () =
  let u = Unix.umask 0 in
  ignore (Unix.umask u);
  u

(* Flush the directory entry for a just-renamed file: without this the
   rename itself can be lost on power failure even though the file data
   was fsynced.  Some filesystems refuse fsync on a directory fd — that
   is a durability downgrade, not an error. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* The temp file lives in the destination directory so the final rename
   never crosses a filesystem boundary (rename is only atomic within
   one). *)
let atomic_write_string ?(fsync = true) ?attempts ?backoff_ms path content =
  let write () =
    let dir = Filename.dirname path in
    mkdir_p dir;
    let tmp =
      Filename.temp_file ~temp_dir:dir ("." ^ Filename.basename path ^ ".") ".tmp"
    in
    Fun.protect
      ~finally:(fun () -> if Sys.file_exists tmp then try Sys.remove tmp with Sys_error _ -> ())
      (fun () ->
        let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o644 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            (* [Filename.temp_file] creates the file 0o600; published
               artifacts get the regular-file default instead, still
               honoring the caller's umask. *)
            Unix.fchmod fd (0o644 land lnot (current_umask ()));
            let b = Bytes.unsafe_of_string content in
            let len = Bytes.length b in
            let pos = ref 0 in
            while !pos < len do
              pos := !pos + Unix.write fd b !pos (len - !pos)
            done;
            if fsync then Unix.fsync fd);
        Sys.rename tmp path;
        if fsync then fsync_dir dir)
  in
  with_retry ?attempts ?backoff_ms write

let atomic_write ?fsync ?attempts ?backoff_ms path f =
  let buf = Buffer.create 4096 in
  f buf;
  atomic_write_string ?fsync ?attempts ?backoff_ms path (Buffer.contents buf)

let read_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (in_channel_length ic) with
        | s -> Ok s
        | exception End_of_file -> Error (path ^ ": truncated while reading"))
