(** CRC-32 (IEEE 802.3 polynomial, as used by zlib and PNG).

    Integrity check for the framed trace format and checkpoint files:
    detects torn writes, truncation and bit flips without any external
    dependency.  All results are in [0, 2^32). *)

val bytes : bytes -> int

val string : string -> int

val sub_bytes : bytes -> pos:int -> len:int -> int
(** Raises [Invalid_argument] when the slice is out of bounds. *)

val sub_string : string -> pos:int -> len:int -> int

val sub_big : Bigio.t -> pos:int -> len:int -> int
(** CRC over a mapped-file region; raises [Invalid_argument] when the
    slice is out of bounds. *)

val update : int -> int -> int
(** [update crc byte] advances a raw (pre-finalization) accumulator —
    exposed for incremental hashing; most callers want the whole-buffer
    functions above. *)
