(** Plain-text table rendering for experiment reports.

    Every experiment harness prints a paper-style table; this module keeps
    the column alignment logic in one place. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : headers:string list -> t
(** New table with the given column headers.  Columns default to
    right-alignment except the first, which is left-aligned. *)

val set_aligns : t -> align list -> unit
(** Override per-column alignment (list length must match headers). *)

val add_row : t -> string list -> unit
(** Append a row; short rows are padded with empty cells, long rows raise
    [Invalid_argument]. *)

val add_sep : t -> unit
(** Append a horizontal separator line. *)

val render : t -> string
(** Render to a string (trailing newline included). *)

val print : t -> unit
(** [render] then [print_string]. *)

(** Numeric cell helpers used throughout the experiment tables. *)

val fmt_pct : float -> string
(** Signed percentage with 2 decimals, e.g. ["-21.70%"] / ["+3.90%"]. *)

val fmt_f : ?dec:int -> float -> string
(** Fixed-point float, default 2 decimals. *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. ["1,733,376"]. *)
