(* CRC-32 (IEEE 802.3, the zlib/PNG polynomial), table-driven.

   The framed trace format and the checkpoint container both need a
   cheap integrity check with no external dependency; MD5 (Digest) is
   ~10x slower and overkill for torn-write detection.  The table is
   built once at startup (256 words). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1) else c := !c lsr 1
         done;
         !c))

let update crc b =
  let t = Lazy.force table in
  (crc lsr 8) lxor t.((crc lxor b) land 0xff)

let sub_bytes data ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length data then
    invalid_arg "Crc32.sub_bytes";
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    let b = Char.code (Bytes.unsafe_get data i) in
    crc := (!crc lsr 8) lxor t.((!crc lxor b) land 0xff)
  done;
  !crc lxor 0xFFFFFFFF

(* Same loop over a bigstring region — the mmap-backed decode path
   checks frame CRCs without copying the payload out of the mapping. *)
let sub_big (data : Bigio.t) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigio.length data then
    invalid_arg "Crc32.sub_big";
  let t = Lazy.force table in
  let crc = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    let b = Char.code (Bigio.unsafe_get data i) in
    crc := (!crc lsr 8) lxor t.((!crc lxor b) land 0xff)
  done;
  !crc lxor 0xFFFFFFFF

let bytes data = sub_bytes data ~pos:0 ~len:(Bytes.length data)

let string s = bytes (Bytes.unsafe_of_string s)

let sub_string s ~pos ~len = sub_bytes (Bytes.unsafe_of_string s) ~pos ~len
