let sum xs = List.fold_left ( +. ) 0. xs

let mean = function
  | [] -> 0.
  | xs -> sum xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.
  | xs ->
    (* log of a non-positive sample is -inf/NaN and would poison the
       whole summary silently; refuse the input instead. *)
    List.iter
      (fun x ->
        if not (x > 0.) then
          invalid_arg "Stats.geomean: samples must be positive")
      xs;
    let n = float_of_int (List.length xs) in
    Float.exp (sum (List.map (fun x -> Float.log x) xs) /. n)

let percentile p = function
  | [] -> 0.
  | xs ->
    (* p < 0 used to index the array at -1; p > 100 interpolated past
       the last element. *)
    if not (p >= 0. && p <= 100.) then
      invalid_arg "Stats.percentile: p must be in [0, 100]";
    let arr = Array.of_list xs in
    Array.sort Float.compare arr;
    let n = Array.length arr in
    if n = 1 then arr.(0)
    else begin
      let rank = p /. 100. *. float_of_int (n - 1) in
      let lo = int_of_float (Float.floor rank) in
      let hi = min (lo + 1) (n - 1) in
      let frac = rank -. float_of_int lo in
      (arr.(lo) *. (1. -. frac)) +. (arr.(hi) *. frac)
    end

let variance_around m xs = mean (List.map (fun x -> (x -. m) ** 2.) xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ -> Float.sqrt (variance_around (mean xs) xs)

let stddev_sample xs =
  match xs with
  | [] | [ _ ] -> 0.
  | _ ->
    let n = float_of_int (List.length xs) in
    (* Bessel's correction: rescale the population variance by n/(n-1). *)
    Float.sqrt (variance_around (mean xs) xs *. n /. (n -. 1.))

let pct_change ~before ~after =
  if before = 0. then 0. else (after -. before) /. before *. 100.

let ratio a b = if b = 0. then 0. else a /. b

type histogram = {
  lo : float;
  width : float;
  counts : int array;
  mutable total : int;
  mutable underflow : int;
  mutable overflow : int;
  mutable sum : float;
}

let histogram ~lo ~hi ~buckets =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  if not (hi > lo) then invalid_arg "Stats.histogram: hi must exceed lo";
  { lo;
    width = (hi -. lo) /. float_of_int buckets;
    counts = Array.make buckets 0;
    total = 0;
    underflow = 0;
    overflow = 0;
    sum = 0. }

let hist_add h x =
  let n = Array.length h.counts in
  let hi = h.lo +. (h.width *. float_of_int n) in
  if x < h.lo then h.underflow <- h.underflow + 1
  else if x > hi then h.overflow <- h.overflow + 1
  else begin
    (* The top bucket is closed ([lo + (n-1)w, hi]) so a sample exactly
       at [hi] — histogram over [0, 100] fed 100., say — counts as
       in-range, matching the advertised span.  The [min] also absorbs
       float rounding for x just below hi. *)
    let idx = min (n - 1) (int_of_float (Float.floor ((x -. h.lo) /. h.width))) in
    h.counts.(idx) <- h.counts.(idx) + 1
  end;
  h.total <- h.total + 1;
  h.sum <- h.sum +. x

let hist_counts h = Array.copy h.counts
let hist_sum h = h.sum
let hist_total h = h.total
let hist_underflow h = h.underflow
let hist_overflow h = h.overflow
let hist_lo h = h.lo
let hist_width h = h.width
