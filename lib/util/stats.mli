(** Small numeric helpers shared by the trace analyser, the experiment
    harness and the report printers. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean; 0 on the empty list.  The domain is strictly
    positive samples (ratios, normalized times): any sample [<= 0.] or
    NaN raises [Invalid_argument] instead of silently returning NaN. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation between
    closest ranks; 0 on the empty list.  Raises [Invalid_argument] when
    [p] is outside [0,100] (or NaN).  Sorting uses [Float.compare], so
    NaN samples order deterministically (first) instead of poisoning
    the sort. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists of length < 2. *)

val stddev_sample : float list -> float
(** Sample standard deviation (Bessel's n-1 correction); 0 on lists of
    length < 2.  Use this when the list is a sample of a larger
    population — e.g. run-to-run variance over a handful of seeds. *)

val sum : float list -> float

val pct_change : before:float -> after:float -> float
(** [(after - before) / before * 100]; 0 when [before = 0]. *)

val ratio : float -> float -> float
(** Safe division; 0 when the denominator is 0. *)

type histogram
(** Fixed-width bucket histogram over [lo, hi]; the top bucket is
    closed ([lo + (buckets-1)*width, hi]) so a sample exactly at [hi]
    is in range.  Samples outside the range are NOT clamped into the
    edge buckets (that used to distort the edge counts silently); they
    are tallied in dedicated underflow and overflow counters instead,
    so no sample is ever lost without a record. *)

val histogram : lo:float -> hi:float -> buckets:int -> histogram
val hist_add : histogram -> float -> unit

val hist_counts : histogram -> int array
(** In-range samples only; sums to
    [hist_total - hist_underflow - hist_overflow]. *)

val hist_total : histogram -> int
(** Every sample ever added, in range or not. *)

val hist_sum : histogram -> float
(** Sum of every sample ever added (in range or not), for mean and
    OpenMetrics [_sum] exposition. *)

val hist_underflow : histogram -> int
(** Samples below [lo]. *)

val hist_overflow : histogram -> int
(** Samples strictly above [hi]. *)

val hist_lo : histogram -> float
val hist_width : histogram -> float
(** Bucket geometry, for rendering. *)
