(** Small numeric helpers shared by the trace analyser, the experiment
    harness and the report printers. *)

val mean : float list -> float
(** Arithmetic mean; 0 on the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 on the empty list. *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [0,100], linear interpolation between
    closest ranks; 0 on the empty list. *)

val stddev : float list -> float
(** Population standard deviation; 0 on lists of length < 2. *)

val sum : float list -> float

val pct_change : before:float -> after:float -> float
(** [(after - before) / before * 100]; 0 when [before = 0]. *)

val ratio : float -> float -> float
(** Safe division; 0 when the denominator is 0. *)

type histogram
(** Fixed-width bucket histogram over [lo, hi). *)

val histogram : lo:float -> hi:float -> buckets:int -> histogram
val hist_add : histogram -> float -> unit
val hist_counts : histogram -> int array
val hist_total : histogram -> int
