(** Crash-safe file output: write-temp + fsync + atomic rename, with
    bounded retry-with-backoff for transient I/O errors.

    A crash (or SIGKILL) at any point during a write leaves either the
    previous file contents or the new ones on disk — never a truncated
    artifact.  Used by every report/JSON emitter and by the checkpoint
    writer. *)

val mkdir_p : string -> unit
(** Create a directory and its missing parents (0o755).  Raises
    [Unix.Unix_error] when a component cannot be created. *)

val with_retry : ?attempts:int -> ?backoff_ms:int -> (unit -> 'a) -> 'a
(** Run [f], retrying on [Sys_error] / [Unix.Unix_error] up to
    [attempts] times total (default 3) with exponentially growing
    sleeps starting at [backoff_ms] (default 20).  The last failure is
    re-raised. *)

val atomic_write_string :
  ?fsync:bool -> ?attempts:int -> ?backoff_ms:int -> string -> string -> unit
(** [atomic_write_string path content] writes [content] to a temp file
    in [path]'s directory, fsyncs it (unless [~fsync:false]), and
    renames it over [path], then fsyncs the directory so the rename
    itself is durable.  The result carries the regular-file mode
    ([0o644] filtered by the process umask), not the temp file's
    private [0o600].  Missing parent directories are created.  Retries
    transient failures per {!with_retry}. *)

val atomic_write :
  ?fsync:bool -> ?attempts:int -> ?backoff_ms:int -> string -> (Buffer.t -> unit) -> unit
(** Buffer-building convenience over {!atomic_write_string}. *)

val read_file : string -> (string, string) result
(** Whole-file read (binary); [Error msg] when the file cannot be
    opened or read. *)
